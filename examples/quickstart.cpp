// Quickstart: declare a schema, load a dirty database and constraints from
// text, pick a chain generator, and ask for operational consistent answers
// — exactly and approximately.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "constraints/constraint_parser.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/ocqa.h"
#include "repair/sampler.h"

int main() {
  using namespace opcqa;

  // 1. Schema: one relation Emp(name, dept).
  Schema schema;
  schema.AddRelation("Emp", 2);

  // 2. A dirty instance: ann is recorded in two departments.
  Database db = *ParseDatabase(schema,
                               "Emp(ann, sales). Emp(ann, hr). "
                               "Emp(bob, sales). Emp(carol, hr).");

  // 3. The key constraint: name determines department.
  ConstraintSet sigma =
      *ParseConstraints(schema, "key: Emp(x,y), Emp(x,z) -> y = z");
  std::printf("D = { %s }\n", db.ToString().c_str());
  std::printf("Σ = { %s }\n", sigma[0].ToString(schema).c_str());
  std::printf("consistent? %s\n\n", Satisfies(db, sigma) ? "yes" : "no");

  // 4. A query: which departments might ann be in?
  Query q = *ParseQuery(schema, "Q(y) := Emp(ann, y)");
  std::printf("Q: %s\n\n", q.ToString(schema).c_str());

  // 5. Exact operational consistent answers under the uniform chain.
  UniformChainGenerator generator;
  OcaResult oca = ComputeOca(db, sigma, generator, q);
  std::printf("exact OCA (uniform chain):\n");
  for (const auto& [tuple, p] : oca.answers) {
    std::printf("  %s with probability %s (≈ %.4f)\n",
                TupleToString(tuple).c_str(), p.ToString().c_str(),
                p.ToDouble());
  }

  // 6. The same, approximated with additive error ε = δ = 0.1
  //    (Theorem 9; n = 150 chain walks).
  Sampler sampler(db, sigma, &generator, /*seed=*/2024);
  ApproxOcaResult approx = sampler.EstimateOca(q, 0.1, 0.1);
  std::printf("\napproximate OCA (n = %zu walks):\n", approx.walks);
  for (const auto& [tuple, estimate] : approx.estimates) {
    std::printf("  %s with estimate %.4f\n", TupleToString(tuple).c_str(),
                estimate);
  }

  // 7. The repair distribution itself.
  EnumerationResult repairs = EnumerateRepairs(db, sigma, generator);
  std::printf("\noperational repairs ([[D]]_MΣ):\n");
  for (const RepairInfo& info : repairs.repairs) {
    std::printf("  p = %-6s { %s }\n", info.probability.ToString().c_str(),
                info.repair.ToString().c_str());
  }
  return 0;
}
