// opcqa_cli — command-line operational consistent query answering.
//
// A downstream-user-facing driver: schema, database and constraints come
// from files, the query from the command line; answering is exact (chain
// enumeration) or approximate (Theorem 9 sampling).
//
// Usage (FO query modes):
//   opcqa_cli --schema=s.txt --db=d.txt --constraints=c.txt
//             --query='Q(x) := R(x,y)'  (repeatable: each --query is
//             answered in turn over the same database)
//             [--generator=uniform|deletions|minchange]
//             [--mode=exact|approx] [--eps=0.1] [--delta=0.1] [--seed=42]
//             [--threads=N]  (0 = all cores; answers are identical for
//             every thread count)
//             [--memo]  (exact mode: transposition-table memoization of
//             shared repair-space suffixes; answers are identical with it
//             on or off — it only changes how fast they arrive)
//             [--memo-persist]  (exact mode: keep the repair space cached
//             across the --query list — repair/repair_cache.h — so every
//             query after the first replays the first one's chain walk;
//             implies --memo)
//             [--memo-bytes=N]  (byte budget for the memo table / each
//             cache root; 0 = entries-only budget)
//             [--memo-dir=PATH]  (disk tier, src/storage/: restore the
//             repair space from PATH's canonical snapshots on start and
//             spill it back on exit, so a *fresh process* over the same
//             database warm-starts from this run's chain walks; implies
//             --memo-persist)
//             [--memo-disk-bytes=N]  (byte budget for --memo-dir — base
//             snapshots plus delta logs, whole roots deleted oldest
//             first; 0 = unbounded)
//             [--memo-delta=0|1]  (default 1: once a root's base
//             snapshot exists, spills append only the newly admitted
//             entries to its delta log; 0 rewrites the whole base every
//             spill — the PR-5 behavior)
//             [--memo-compact-ratio=X]  (compact a delta log into a
//             fresh base once it exceeds X times the base size;
//             default 0.5, <= 0 compacts on every spill)
//             [--memo-memory-bytes=N]  (memory-tier byte budget across
//             all cache roots: overflow demotes the lowest-retention
//             root to the disk tier early; 0 = off)
//             [--plan=auto|walk|rewrite]  (exact mode: route each query
//             through the query planner — src/planner/ — and print the
//             decision. `auto` answers FO-rewritable queries inside the
//             proven-coincident fragment with the Koutris–Wijsen
//             rewriting, skipping the chain walk entirely; `walk` forces
//             the walk; `rewrite` errors on out-of-fragment queries
//             instead of silently walking. Rewriting reports *certain*
//             answers (CP = 1) — the full CP distribution needs a walk)
//             [--show-repairs] [--show-chain]
//             [--metrics]  (print the merged metrics-registry snapshot —
//             src/obs/ — on stderr; serve mode always prints it)
//             [--trace-out=FILE]  (tracing builds: Chrome trace_event
//             JSON of the run's spans, loadable in Perfetto / about:tracing)
//             [--slow-ms=N]  (tracing builds: span tree of every request
//             slower than N ms, on stderr)
//
// Usage (serve-trace mode — replay a request log through OcqaServer,
// src/server/; trace format in server/trace.h):
//   opcqa_cli --schema=s.txt --db=d.txt --constraints=c.txt
//             --serve-trace=t.trace
//             [--serve-workers=N]  (server worker threads; 0 = all cores)
//             [--serve-out=PATH]  (write rendered responses to PATH
//             instead of stdout; stdout/PATH carry *only* the canonical
//             responses, so two runs diff byte-for-byte — the serving
//             summary goes to stderr)
//             [--serve-baseline]  (replay the same trace serially on one
//             session per tenant instead of the server — the reference
//             output concurrent serving must reproduce exactly)
//             [--memo-bytes --memo-dir --memo-disk-bytes --threads
//             --plan]  (shared-cache / per-session knobs, as above; with
//             --memo-dir the server's shared cache restores from and
//             spills to the snapshot directory, so a rerun serves warm)
//
// Usage (SQL mode — the Section 5 scheme; keys as table:pos[,pos...],
// ';'-separated):
//   opcqa_cli --schema=s.txt --db=d.txt --mode=sql
//             --sql='SELECT c0 FROM R' --keys='R:0'
//             [--eps --delta --seed]
//
// File formats:
//   schema:       one "Name/arity" per line, '#' comments
//   database:     facts "R(a,b)." separated by '.', '#' comments
//   constraints:  one per line, e.g. "key: R(x,y), R(x,z) -> y = z"
//
// SQL-mode tables expose columns c0, c1, ... per relation position.
//
// Exit codes: 0 = answered (including degraded runs, which warn on
// stderr), 1 = hard failure, 2 = usage error. `--help` prints the full
// flag table (the normative list docs/KNOBS.md is CI-checked against)
// and exits 0.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "constraints/constraint_parser.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/stats_export.h"
#include "obs/trace.h"
#include "planner/planner.h"
#include "relational/fact_parser.h"
#include "repair/ocqa.h"
#include "repair/priority_generator.h"
#include "repair/repair_cache.h"
#include "repair/sampler.h"
#include "server/ocqa_server.h"
#include "server/trace.h"
#include "sql/approx_runner.h"
#include "util/string_util.h"

namespace {

using namespace opcqa;

struct Options {
  std::string schema_path, db_path, constraints_path;
  std::vector<std::string> query_texts;  // answered in order
  std::string sql_text, keys_spec;
  std::string generator = "uniform";
  std::string mode = "exact";
  double eps = 0.1, delta = 0.1;
  uint64_t seed = 42;
  size_t threads = 1;  // 0 = all cores; results identical either way
  bool memo = false;   // exact mode: memoize shared repair-space suffixes
  bool memo_persist = false;  // share the repair space across --query list
  size_t memo_bytes = 0;      // byte budget (0 = entries-only budget)
  std::string memo_dir;       // disk tier directory (empty = memory only)
  size_t memo_disk_bytes = 0;  // disk budget for --memo-dir (0 = unbounded)
  bool memo_delta = true;      // delta spills (0 = always rewrite the base)
  double memo_compact_ratio = 0.5;  // log/base compaction threshold
  size_t memo_memory_bytes = 0;  // cross-root memory budget (0 = off)
  std::string plan;  // exact mode: planner dispatch (empty = flag unset,
                     // behave exactly as before the planner existed)
  std::string serve_trace;      // request-log path — serve-trace mode
  size_t serve_workers = 0;     // server worker threads (0 = all cores)
  std::string serve_out;        // rendered responses file (empty = stdout)
  bool serve_baseline = false;  // serial per-tenant replay, not the server
  bool show_repairs = false;
  bool show_chain = false;
  bool metrics = false;    // print the merged registry snapshot on stderr
  std::string trace_out;   // Chrome trace JSON path (tracing builds)
  double slow_ms = -1;     // slow-query span-tree threshold (< 0 = off)
};

/// Parses "R:0;S:0,1" into SQL table keys against `schema`.
Result<std::vector<sql::TableKey>> ParseKeysSpec(const Schema& schema,
                                                 const std::string& spec) {
  std::vector<sql::TableKey> keys;
  for (const std::string& piece : Split(spec, ';')) {
    std::string entry = Trim(piece);
    if (entry.empty()) continue;
    size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("key spec needs table:positions — " +
                                     entry);
    }
    sql::TableKey key;
    key.table = Trim(entry.substr(0, colon));
    PredId pred = schema.FindRelation(key.table);
    if (pred == Schema::kNotFound) {
      return Status::NotFound("unknown relation in --keys: " + key.table);
    }
    for (const std::string& pos_text :
         Split(entry.substr(colon + 1), ',')) {
      int position = std::atoi(Trim(pos_text).c_str());
      if (position < 0 ||
          static_cast<uint32_t>(position) >= schema.Arity(pred)) {
        return Status::OutOfRange("key position out of range: " +
                                  pos_text);
      }
      key.key_positions.push_back(static_cast<size_t>(position));
    }
    if (key.key_positions.empty()) {
      return Status::InvalidArgument("empty key position list for " +
                                     key.table);
    }
    keys.push_back(std::move(key));
  }
  if (keys.empty()) {
    return Status::InvalidArgument("--keys declared no key constraints");
  }
  return keys;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<Schema> ParseSchemaFile(const std::string& text) {
  Schema schema;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string line = Trim(raw_line);
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;
    size_t slash = line.find('/');
    if (slash == std::string::npos) {
      return Status::InvalidArgument("schema line must be Name/arity: " +
                                     line);
    }
    std::string name = Trim(line.substr(0, slash));
    std::string arity_text = Trim(line.substr(slash + 1));
    if (!IsIdentifier(name)) {
      return Status::InvalidArgument("bad relation name: " + name);
    }
    int arity = std::atoi(arity_text.c_str());
    if (arity <= 0) {
      return Status::InvalidArgument("bad arity in schema line: " + line);
    }
    if (schema.FindRelation(name) != Schema::kNotFound) {
      return Status::AlreadyExists("relation declared twice: " + name);
    }
    schema.AddRelation(name, static_cast<uint32_t>(arity));
  }
  if (schema.size() == 0) {
    return Status::InvalidArgument("schema file declares no relations");
  }
  return schema;
}

// Exit-code policy, kept consistent across the FO/SQL/serve-trace modes
// and asserted by the CI e2e:
//   0  answered — including *degraded* runs (failed spills, tripped disk
//      breaker, quarantined snapshots, isolated worker panics) which
//      additionally print a "warning: degraded ..." line on stderr;
//   1  hard failure — missing/unparseable input files, unwritable
//      --serve-out, a chain too large for --mode=exact;
//   2  usage — unknown flags or bad flag *values* (generator, mode,
//      plan, keys), missing required flags.

// The complete flag reference, printed by --help (exit 0). One line per
// flag: "  --name=VALUE  (default/required)  what it does". docs/KNOBS.md
// is the normative knob table and CI diffs the flag names listed here
// against it — add new flags in both places.
void PrintHelp() {
  std::printf(
      "opcqa_cli — operational consistent query answering "
      "(Calautti–Libkin–Pieris, PODS 2018)\n"
      "\n"
      "usage: opcqa_cli --schema=F --db=F --constraints=F "
      "--query='Q(x) := R(x,y)' [flags]\n"
      "   or: opcqa_cli --schema=F --db=F --constraints=F "
      "--serve-trace=F [flags]\n"
      "   or: opcqa_cli --schema=F --db=F --mode=sql --sql='SELECT ...' "
      "--keys='R:0;S:0,1' [flags]\n"
      "\n"
      "input flags:\n"
      "  --schema=FILE        (required) relation declarations, one "
      "Name/arity per line\n"
      "  --db=FILE            (required) facts \"R(a,b).\" separated by "
      "'.'\n"
      "  --constraints=FILE   (required outside --mode=sql) one "
      "constraint per line\n"
      "  --query=TEXT         FO query 'Q(x) := R(x,y)'; repeatable, "
      "answered in order\n"
      "  --sql=TEXT           (--mode=sql) SELECT statement over columns "
      "c0, c1, ...\n"
      "  --keys=SPEC          (--mode=sql) key positions "
      "'R:0;S:0,1'\n"
      "\n"
      "answering flags:\n"
      "  --generator=NAME     (default: uniform) uniform | deletions | "
      "minchange\n"
      "  --mode=NAME          (default: exact) exact | approx | sql\n"
      "  --eps=X              (default: 0.1) approx/sql additive error "
      "bound\n"
      "  --delta=X            (default: 0.1) approx/sql failure "
      "probability\n"
      "  --seed=N             (default: 42) sampling seed\n"
      "  --threads=N          (default: 1) enumeration threads; 0 = all "
      "cores\n"
      "  --plan=NAME          (default: unset) auto | walk | rewrite — "
      "planner dispatch\n"
      "\n"
      "repair-space cache flags:\n"
      "  --memo               (default: off) memoize shared repair-space "
      "suffixes\n"
      "  --memo-persist       (default: off) share the repair space "
      "across the --query list; implies --memo\n"
      "  --memo-bytes=N       (default: 0) byte budget per memo table / "
      "cache root; 0 = entries-only\n"
      "  --memo-dir=PATH      (default: unset) disk tier directory; "
      "implies --memo-persist\n"
      "  --memo-disk-bytes=N  (default: 0) byte budget for --memo-dir "
      "(bases + delta logs); 0 = unbounded\n"
      "  --memo-delta=0|1     (default: 1) append-only delta spills once "
      "a base snapshot exists; 0 = always rewrite the base\n"
      "  --memo-compact-ratio=X  (default: 0.5) compact the delta log "
      "into a fresh base once it exceeds this fraction of the base; <= 0 "
      "compacts every spill\n"
      "  --memo-memory-bytes=N   (default: 0) memory-tier byte budget "
      "across all cache roots; overflow demotes the lowest-retention "
      "root to disk; 0 = off\n"
      "\n"
      "serve-trace flags:\n"
      "  --serve-trace=FILE   replay a request log through OcqaServer "
      "(format: server/trace.h)\n"
      "  --serve-workers=N    (default: 0) server worker threads; 0 = "
      "all cores\n"
      "  --serve-out=PATH     (default: stdout) write canonical "
      "responses to PATH\n"
      "  --serve-baseline     (default: off) serial per-tenant replay "
      "instead of the server\n"
      "\n"
      "observability flags:\n"
      "  --metrics            (default: off) print the merged metrics "
      "registry snapshot on stderr (serve mode always prints it)\n"
      "  --trace-out=FILE     (default: unset) write a Chrome "
      "trace_event JSON of the run's spans (needs a tracing build, "
      "-DOPCQA_TRACING=ON)\n"
      "  --slow-ms=N          (default: unset) print the span tree of "
      "every request slower than N ms to stderr (tracing builds)\n"
      "\n"
      "output flags:\n"
      "  --show-repairs       (default: off) print the repair "
      "distribution\n"
      "  --show-chain         (default: off) print the repairing chain "
      "tree\n"
      "  --help               print this reference and exit 0\n"
      "\n"
      "exit codes: 0 = answered (degraded runs warn on stderr), 1 = hard "
      "failure, 2 = usage error\n");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int UsageFail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

/// End-of-run observability artifacts: the Chrome trace (--trace-out),
/// the slow-query span trees (--slow-ms) and, when `print_metrics`, the
/// registry snapshot — all on stderr / side files, never stdout, so the
/// canonical answer stream stays byte-diffable. Returns the exit code.
int FlushObservability(const Options& opt, bool print_metrics) {
#ifdef OPCQA_TRACING
  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  if (tracer.enabled()) {
    std::vector<obs::SpanRecord> spans = tracer.Collect();
    if (opt.slow_ms >= 0) {
      for (uint64_t id : obs::TraceRequestIds(spans)) {
        if (obs::RequestWallMs(spans, id) < opt.slow_ms) continue;
        std::fprintf(stderr, "slow request:\n%s",
                     obs::RenderSpanTree(spans, id).c_str());
      }
    }
    if (!opt.trace_out.empty()) {
      std::ofstream out(opt.trace_out, std::ios::binary);
      if (!out) {
        return Fail(Status::Internal("cannot write " + opt.trace_out));
      }
      out << obs::ExportChromeTrace(spans);
    }
  }
#endif
  if (print_metrics) {
    std::fputs(obs::MetricsRegistry::Global().Snapshot().RenderText().c_str(),
               stderr);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return 0;
    }
    if (ParseFlag(arg, "schema", &opt.schema_path)) continue;
    if (ParseFlag(arg, "db", &opt.db_path)) continue;
    if (ParseFlag(arg, "constraints", &opt.constraints_path)) continue;
    if (ParseFlag(arg, "query", &value)) {
      opt.query_texts.push_back(value);
      continue;
    }
    if (ParseFlag(arg, "sql", &opt.sql_text)) continue;
    if (ParseFlag(arg, "keys", &opt.keys_spec)) continue;
    if (ParseFlag(arg, "generator", &opt.generator)) continue;
    if (ParseFlag(arg, "mode", &opt.mode)) continue;
    if (ParseFlag(arg, "eps", &value)) {
      opt.eps = std::atof(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "delta", &value)) {
      opt.delta = std::atof(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "seed", &value)) {
      opt.seed = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(arg, "threads", &value)) {
      opt.threads = static_cast<size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (arg == "--memo") {
      opt.memo = true;
      continue;
    }
    if (arg == "--memo-persist") {
      opt.memo_persist = true;
      opt.memo = true;
      continue;
    }
    if (ParseFlag(arg, "memo-bytes", &value)) {
      opt.memo_bytes = static_cast<size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "memo-dir", &value)) {
      opt.memo_dir = value;
      opt.memo_persist = true;  // a disk tier needs the persistent cache
      opt.memo = true;
      continue;
    }
    if (ParseFlag(arg, "memo-disk-bytes", &value)) {
      opt.memo_disk_bytes = static_cast<size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "memo-delta", &value)) {
      opt.memo_delta = value != "0";
      continue;
    }
    if (ParseFlag(arg, "memo-compact-ratio", &value)) {
      opt.memo_compact_ratio = std::atof(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "memo-memory-bytes", &value)) {
      opt.memo_memory_bytes = static_cast<size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "plan", &opt.plan)) continue;
    if (ParseFlag(arg, "serve-trace", &opt.serve_trace)) continue;
    if (ParseFlag(arg, "serve-workers", &value)) {
      opt.serve_workers = static_cast<size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "serve-out", &opt.serve_out)) continue;
    if (arg == "--serve-baseline") {
      opt.serve_baseline = true;
      continue;
    }
    if (arg == "--show-repairs") {
      opt.show_repairs = true;
      continue;
    }
    if (arg == "--show-chain") {
      opt.show_chain = true;
      continue;
    }
    if (arg == "--metrics") {
      opt.metrics = true;
      continue;
    }
    if (ParseFlag(arg, "trace-out", &opt.trace_out)) continue;
    if (ParseFlag(arg, "slow-ms", &value)) {
      opt.slow_ms = std::atof(value.c_str());
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    return 2;
  }
  if (opt.memo_disk_bytes != 0 && opt.memo_dir.empty()) {
    std::fprintf(stderr,
                 "warning: --memo-disk-bytes has no effect without "
                 "--memo-dir (no disk tier configured)\n");
  }
  if (!opt.plan.empty() && opt.mode != "exact") {
    std::fprintf(stderr,
                 "warning: --plan only affects --mode=exact (the sampler "
                 "and SQL modes always walk)\n");
  }
  bool sql_mode = opt.mode == "sql";
  bool serve_mode = !opt.serve_trace.empty();
  bool fo_inputs_ok = !opt.constraints_path.empty() &&
                      (!opt.query_texts.empty() || serve_mode);
  bool sql_inputs_ok = !opt.sql_text.empty() && !opt.keys_spec.empty();
  if (opt.schema_path.empty() || opt.db_path.empty() ||
      (sql_mode ? !sql_inputs_ok : !fo_inputs_ok)) {
    std::fprintf(stderr,
                 "usage: opcqa_cli --schema=F --db=F --constraints=F "
                 "--query='Q(x) := ...' [--query=... more] "
                 "[--generator=uniform|deletions|minchange] "
                 "[--mode=exact|approx] [--eps --delta --seed --threads "
                 "--memo --memo-persist --memo-bytes=N --memo-dir=PATH "
                 "--memo-disk-bytes=N --memo-delta=0|1 "
                 "--memo-compact-ratio=X --memo-memory-bytes=N "
                 "--plan=auto|walk|rewrite] "
                 "[--show-repairs] [--show-chain]\n"
                 "   or: opcqa_cli --schema=F --db=F --constraints=F "
                 "--serve-trace=F [--serve-workers=N --serve-out=PATH "
                 "--serve-baseline --memo-bytes --memo-dir "
                 "--memo-disk-bytes --threads --plan]\n"
                 "   or: opcqa_cli --schema=F --db=F --mode=sql "
                 "--sql='SELECT ...' --keys='R:0;S:0,1' "
                 "[--eps --delta --seed]\n"
                 "run opcqa_cli --help for the full flag reference\n");
    return 2;
  }

  if (!opt.trace_out.empty() || opt.slow_ms >= 0) {
#ifdef OPCQA_TRACING
    obs::SpanTracer::Global().Enable();
#else
    std::fprintf(stderr,
                 "warning: --trace-out/--slow-ms need a tracing build "
                 "(-DOPCQA_TRACING=ON); continuing without spans\n");
#endif
  }

  Result<std::string> schema_text = ReadFile(opt.schema_path);
  if (!schema_text.ok()) return Fail(schema_text.status());
  Result<Schema> schema = ParseSchemaFile(*schema_text);
  if (!schema.ok()) return Fail(schema.status());

  Result<std::string> db_text = ReadFile(opt.db_path);
  if (!db_text.ok()) return Fail(db_text.status());
  Result<Database> db = ParseDatabase(*schema, *db_text);
  if (!db.ok()) return Fail(db.status());

  if (sql_mode) {
    Result<std::vector<sql::TableKey>> keys =
        ParseKeysSpec(*schema, opt.keys_spec);
    if (!keys.ok()) return UsageFail(keys.status());
    sql::Catalog catalog = sql::Catalog::FromDatabase(*db);
    sql::SqlApproxRunner runner(std::move(catalog), keys.value(),
                                opt.seed);
    Result<sql::SqlApproxResult> result =
        runner.RunWithGuarantee(opt.sql_text, opt.eps, opt.delta);
    if (!result.ok()) return Fail(result.status());
    std::printf("rewritten SQL: %s\n", result->rewritten_sql.c_str());
    std::printf("answer frequencies over %zu rounds (additive error ≤ "
                "%.3f with confidence ≥ %.3f, per tuple):\n",
                result->rounds, opt.eps, 1 - opt.delta);
    for (const auto& [row, frequency] : result->frequency) {
      std::string rendered = "(";
      for (size_t i = 0; i < row.size(); ++i) {
        rendered += (i ? "," : "") + ConstName(row[i]);
      }
      rendered += ")";
      std::printf("  %-24s ≈ %.4f\n", rendered.c_str(), frequency);
    }
    return FlushObservability(opt, opt.metrics);
  }

  Result<std::string> constraints_text = ReadFile(opt.constraints_path);
  if (!constraints_text.ok()) return Fail(constraints_text.status());
  Result<ConstraintSet> constraints =
      ParseConstraints(*schema, *constraints_text);
  if (!constraints.ok()) return Fail(constraints.status());

  if (serve_mode) {
    Result<std::string> trace_text = ReadFile(opt.serve_trace);
    if (!trace_text.ok()) return Fail(trace_text.status());
    Result<std::vector<server::Request>> requests =
        server::ParseTrace(*schema, *trace_text);
    if (!requests.ok()) return Fail(requests.status());

    std::vector<server::Response> responses;
    if (opt.serve_baseline) {
      // The reference timeline: every tenant's requests on one private
      // session, strictly in trace order. Concurrent serving must
      // reproduce this output byte-for-byte.
      gen::Workload workload;
      workload.schema = std::make_shared<Schema>(*schema);
      workload.db = *db;
      workload.constraints = *constraints;
      engine::SessionOptions session_options;
      session_options.enumeration.threads = opt.threads;
      session_options.enumeration.memoize = true;
      responses = server::ReplaySerial(
          workload, *requests, server::ReplayMode::kSessionPerTenant,
          session_options);
      std::fprintf(stderr,
                   "serve-trace baseline: %zu requests replayed serially "
                   "(one session per tenant)\n",
                   requests->size());
    } else {
      server::ServerOptions server_options;
      server_options.workers = opt.serve_workers;
      server_options.enumeration.threads = opt.threads;
      server_options.cache.max_bytes_per_root = opt.memo_bytes;
      server_options.cache.snapshot_dir = opt.memo_dir;
      server_options.cache.max_disk_bytes = opt.memo_disk_bytes;
      server_options.cache.delta_spill = opt.memo_delta;
      server_options.cache.log_compaction_ratio = opt.memo_compact_ratio;
      server_options.cache.max_memory_bytes = opt.memo_memory_bytes;
      if (!opt.plan.empty()) {
        Result<planner::PlanMode> plan_mode =
            planner::ParsePlanMode(opt.plan);
        if (!plan_mode.ok()) return UsageFail(plan_mode.status());
        server_options.plan = *plan_mode;
      }
      server::OcqaServer ocqa_server(*db, *constraints, server_options);
      responses = ocqa_server.SubmitAll(*requests);

      // Flush the disk tier before reporting, so the spill counters (and
      // the degraded-run warning) describe what actually reached disk
      // instead of deferring to destructor-time spills nobody observes.
      if (!opt.memo_dir.empty()) ocqa_server.PersistCache();

      // The aggregated snapshot — queue, shared cache, disk tier, every
      // tenant's planner, plus the registry's latency histograms — as ONE
      // merged RenderText() on stderr, so stdout stays a canonical
      // byte-diffable response stream. (This replaced the hand-rolled
      // serve:/cache:/disk:/plan: counter lines.)
      server::ServerStats stats = ocqa_server.Stats();
      auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
      obs::MetricsSnapshot merged = obs::MetricsRegistry::Global().Snapshot();
      obs::ExportServerStats(stats, &merged);
      std::fputs(merged.RenderText().c_str(), stderr);
      // Degraded-but-answered: every request got a canonical response
      // (possibly an error status that serial replay reproduces), but a
      // hardening path fired along the way. Warn loudly, exit 0 — the
      // CI e2e asserts this split against hard failures (1).
      if (stats.panics > 0 || stats.disk.failed_spills > 0 ||
          stats.disk.breaker_trips > 0 || stats.disk.quarantined > 0) {
        std::fprintf(stderr,
                     "warning: degraded serve run — %llu isolated "
                     "panic(s), %llu failed spill(s), %llu breaker "
                     "trip(s), %llu quarantined snapshot(s); responses "
                     "are complete and canonical\n",
                     u(stats.panics), u(stats.disk.failed_spills),
                     u(stats.disk.breaker_trips),
                     u(stats.disk.quarantined));
      }
    }

    std::string rendered = server::RenderResponses(std::move(responses));
    if (opt.serve_out.empty()) {
      std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    } else {
      std::ofstream out(opt.serve_out, std::ios::binary);
      if (!out) {
        return Fail(Status::Internal("cannot write " + opt.serve_out));
      }
      out << rendered;
    }
    // The serve summary above already is the merged metrics snapshot, so
    // --metrics needs a separate print only on the baseline path.
    return FlushObservability(opt, opt.metrics && opt.serve_baseline);
  }

  std::vector<Query> queries;
  for (const std::string& query_text : opt.query_texts) {
    Result<Query> query = ParseQuery(*schema, query_text);
    if (!query.ok()) return Fail(query.status());
    queries.push_back(std::move(query.value()));
  }

  std::printf("schema:      %s\n", schema->ToString().c_str());
  std::printf("database:    %zu facts, consistent: %s\n", db->size(),
              Satisfies(*db, *constraints) ? "yes" : "no");
  std::printf("constraints: %zu\n", constraints->size());
  for (const Query& query : queries) {
    std::printf("query:       %s\n", query.ToString(*schema).c_str());
  }
  std::printf("\n");

  UniformChainGenerator uniform;
  DeletionOnlyUniformGenerator deletions;
  PriorityChainGenerator minchange = PriorityChainGenerator::MinimalChange();
  const ChainGenerator* generator = nullptr;
  if (opt.generator == "uniform") {
    generator = &uniform;
  } else if (opt.generator == "deletions") {
    generator = &deletions;
  } else if (opt.generator == "minchange") {
    generator = &minchange;
  } else {
    return UsageFail(Status::InvalidArgument("unknown generator: " +
                                             opt.generator));
  }

  if (opt.show_chain) {
    std::printf("repairing chain:\n%s\n",
                RenderChainTree(*db, *constraints, *generator).c_str());
  }

  if (opt.mode == "exact") {
    // --memo-persist: one cache shared by the whole --query list, so the
    // first query pays for the chain walk and the rest replay it.
    // --memo-dir additionally restores/spills the repair space from/to a
    // snapshot directory, so a rerun in a fresh process starts warm.
    RepairCacheOptions cache_options;
    cache_options.max_bytes_per_root = opt.memo_bytes;
    cache_options.snapshot_dir = opt.memo_dir;
    cache_options.max_disk_bytes = opt.memo_disk_bytes;
    cache_options.delta_spill = opt.memo_delta;
    cache_options.log_compaction_ratio = opt.memo_compact_ratio;
    cache_options.max_memory_bytes = opt.memo_memory_bytes;
    RepairSpaceCache cache(cache_options);
    EnumerationOptions enum_options;
    enum_options.threads = opt.threads;
    enum_options.memoize = opt.memo;
    enum_options.memo_max_bytes = opt.memo_bytes;
    if (opt.memo_persist) enum_options.cache = &cache;
    // --plan: dispatch each query through the planner. Without the flag
    // the CLI behaves (and prints) exactly as before the planner existed.
    bool use_planner = !opt.plan.empty();
    planner::QueryPlanner planner;
    if (use_planner) {
      Result<planner::PlanMode> plan_mode = planner::ParsePlanMode(opt.plan);
      if (!plan_mode.ok()) return UsageFail(plan_mode.status());
      planner.set_mode(*plan_mode);
    }
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const Query& query = queries[qi];
      OPCQA_TRACE_REQUEST(qi + 1, "cli");
      OPCQA_TRACE_SPAN("cli.query");
      if (queries.size() > 1) {
        std::printf("== query %zu: %s\n", qi + 1,
                    query.ToString(*schema).c_str());
      }
      if (use_planner) {
        Result<planner::QueryPlan> plan =
            planner.Plan(*db, *constraints, *generator, query);
        if (!plan.ok()) return Fail(plan.status());
        std::printf("plan:        %s — %s\n",
                    planner::PlanKindName(plan->kind),
                    plan->reason.c_str());
        if (plan->kind == planner::PlanKind::kRewriting) {
          std::set<Tuple> certain =
              planner::EvaluateCertain(*db, query, plan->rewritten);
          std::printf("certain operational answers (CP = 1, FO rewriting "
                      "— no chain walk):\n");
          for (const Tuple& tuple : certain) {
            std::printf("  %s\n", TupleToString(tuple).c_str());
          }
          if (certain.empty()) std::printf("  (no certain tuple)\n");
          continue;
        }
      }
      OcaResult oca =
          ComputeOca(*db, *constraints, *generator, query, enum_options);
      if (oca.enumeration.truncated) {
        return Fail(Status::ResourceExhausted(
            "chain too large for exact answering; use --mode=approx"));
      }
      if (opt.memo) {
        const MemoStats& memo = oca.enumeration.memo_stats;
        uint64_t probes = memo.hits + memo.misses;
        std::printf("memoization: %zu states visited, %llu replayed hits "
                    "(%.1f%% hit rate), %zu table entries, %llu hash "
                    "collisions, %llu evictions, %zu bytes\n",
                    oca.enumeration.states_visited,
                    static_cast<unsigned long long>(memo.hits),
                    probes == 0 ? 0.0 : 100.0 * memo.hits / probes,
                    memo.entries,
                    static_cast<unsigned long long>(memo.collisions),
                    static_cast<unsigned long long>(memo.evictions),
                    memo.bytes);
      }
      std::printf("exact operational consistent answers "
                  "(success mass %s, failing mass %s):\n",
                  oca.success_mass.ToString().c_str(),
                  oca.failing_mass.ToString().c_str());
      for (const auto& [tuple, p] : oca.answers) {
        std::printf("  %-24s %s  (≈ %.6f)\n", TupleToString(tuple).c_str(),
                    p.ToString().c_str(), p.ToDouble());
      }
      if (oca.answers.empty()) std::printf("  (no tuple has CP > 0)\n");
      if (opt.show_repairs) {
        std::printf("\nrepair distribution:\n");
        for (const RepairInfo& info : oca.enumeration.repairs) {
          std::printf("  p = %-10s { %s }\n",
                      info.probability.ToString().c_str(),
                      info.repair.ToString().c_str());
        }
      }
    }
    if (use_planner) {
      const planner::PlannerStats& stats = planner.stats();
      std::printf("\nplanner: %llu rewriting / %llu walk plans, "
                  "%llu plan-cache hits, %llu misses\n",
                  static_cast<unsigned long long>(stats.rewrite_plans),
                  static_cast<unsigned long long>(stats.walk_plans),
                  static_cast<unsigned long long>(stats.plan_cache_hits),
                  static_cast<unsigned long long>(stats.plan_cache_misses));
    }
    if (opt.memo_persist) {
      // Make this run's chain walks durable before reporting, so the
      // printed spill counters describe what the next process will find.
      if (!opt.memo_dir.empty()) cache.Persist();
      MemoStats total = cache.TotalStats();
      std::printf("\npersistent cache: %zu roots, %zu entries, %zu bytes "
                  "(delta payloads %.1fx smaller than full copies), "
                  "%llu hits / %llu misses across %zu queries\n",
                  cache.roots(), total.entries, total.bytes,
                  total.payload_bytes == 0
                      ? 1.0
                      : static_cast<double>(total.full_payload_bytes) /
                            static_cast<double>(total.payload_bytes),
                  static_cast<unsigned long long>(total.hits),
                  static_cast<unsigned long long>(total.misses),
                  queries.size());
      if (!opt.memo_dir.empty()) {
        DiskTierStats disk = cache.disk_stats();
        std::printf("disk tier (%s): %llu spills (%llu bytes), "
                    "%llu restores (%llu bytes), %llu rejected snapshots"
                    "%s\n",
                    opt.memo_dir.c_str(),
                    static_cast<unsigned long long>(disk.spills),
                    static_cast<unsigned long long>(disk.spill_bytes),
                    static_cast<unsigned long long>(disk.restores),
                    static_cast<unsigned long long>(disk.restore_bytes),
                    static_cast<unsigned long long>(
                        disk.rejected_snapshots),
                    disk.failed_spills == 0 ? "" : " [SPILLS FAILING]");
        std::printf("disk tier v2: %llu delta appends, %llu compactions, "
                    "%llu compressed bytes written, %llu promotions / "
                    "%llu demotions\n",
                    static_cast<unsigned long long>(disk.delta_appends),
                    static_cast<unsigned long long>(disk.compactions),
                    static_cast<unsigned long long>(disk.compressed_bytes),
                    static_cast<unsigned long long>(disk.promotions),
                    static_cast<unsigned long long>(disk.demotions));
        if (disk.failed_spills > 0 || disk.breaker_trips > 0 ||
            disk.quarantined > 0) {
          std::fprintf(stderr,
                       "warning: degraded run — %llu spill(s) failed to "
                       "write to %s (%llu breaker trip(s), %llu "
                       "quarantined snapshot(s)); answers are exact, but "
                       "the next process will compute cold\n",
                       static_cast<unsigned long long>(disk.failed_spills),
                       opt.memo_dir.c_str(),
                       static_cast<unsigned long long>(disk.breaker_trips),
                       static_cast<unsigned long long>(disk.quarantined));
        }
      }
    }
  } else if (opt.mode == "approx") {
    SamplerOptions sampler_options;
    sampler_options.threads = opt.threads;
    Sampler sampler(*db, *constraints, generator, opt.seed, sampler_options);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const Query& query = queries[qi];
      OPCQA_TRACE_REQUEST(qi + 1, "cli");
      OPCQA_TRACE_SPAN("cli.query");
      if (queries.size() > 1) {
        std::printf("== query %zu: %s\n", qi + 1,
                    query.ToString(*schema).c_str());
      }
      ApproxOcaResult approx =
          sampler.EstimateOca(query, opt.eps, opt.delta);
      std::printf("approximate answers (n = %zu walks, additive error ≤ "
                  "%.3f with confidence ≥ %.3f, per tuple):\n",
                  approx.walks, opt.eps, 1 - opt.delta);
      for (const auto& [tuple, estimate] : approx.estimates) {
        std::printf("  %-24s ≈ %.4f\n", TupleToString(tuple).c_str(),
                    estimate);
      }
      if (approx.failing_walks > 0) {
        std::printf("warning: %zu/%zu walks hit failing sequences; "
                    "estimates are for the unconditioned numerator (use a "
                    "non-failing generator such as "
                    "--generator=deletions)\n",
                    approx.failing_walks, approx.walks);
      }
    }
  } else {
    return UsageFail(Status::InvalidArgument("unknown mode: " + opt.mode));
  }
  return FlushObservability(opt, opt.metrics);
}
