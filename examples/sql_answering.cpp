// SQL front-end walkthrough: load dirty tables into a catalog, run plain
// SQL, then execute the Section 5 approximation loop — the rewriting
// R ↦ (SELECT * FROM R EXCEPT SELECT * FROM R_del) with n(ε,δ) sampled
// rounds — to get per-tuple answer probabilities with an additive
// guarantee.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/sql_answering

#include <cstdio>

#include "sql/approx_runner.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/rewriter.h"

int main() {
  using namespace opcqa;
  using engine::Relation;

  // 1. Two tables from conflicting sources: orders has a key violation on
  //    order id (two different amounts for ord2), customers is clean.
  Relation orders("orders", {"id", "customer", "amount"});
  auto row = [](std::initializer_list<const char*> names) {
    engine::Row r;
    for (const char* n : names) r.push_back(Const(n));
    return r;
  };
  orders.Add(row({"ord1", "ann", "120"}));
  orders.Add(row({"ord2", "bob", "75"}));
  orders.Add(row({"ord2", "bob", "750"}));  // conflicting report
  orders.Add(row({"ord3", "carol", "60"}));

  Relation customers("customers", {"name", "city"});
  customers.Add(row({"ann", "rome"}));
  customers.Add(row({"bob", "oslo"}));
  customers.Add(row({"carol", "rome"}));

  sql::Catalog catalog;
  catalog.Register("orders", orders);
  catalog.Register("customers", customers);

  // 2. Plain SQL over the dirty data (both ord2 amounts show up).
  const char* kQuery =
      "SELECT o.id, o.amount, c.city "
      "FROM orders o, customers c WHERE o.customer = c.name";
  auto dirty = sql::ExecuteSql(kQuery, catalog).value();
  std::printf("dirty answers (%zu rows):\n%s\n", dirty.size(),
              dirty.ToString().c_str());

  // 3. The Section 5 loop: key on orders.id, ε = δ = 0.1 → 150 rounds.
  sql::SqlApproxRunner runner(catalog, {sql::TableKey{"orders", {0}}},
                              /*seed=*/7);
  auto result = runner.RunWithGuarantee(kQuery, 0.1, 0.1).value();
  std::printf("rewritten SQL:\n  %s\n\n", result.rewritten_sql.c_str());
  std::printf("answer probabilities over %zu sampled key repairs:\n",
              result.rounds);
  for (const auto& [answer, frequency] : result.frequency) {
    std::printf("  (");
    for (size_t i = 0; i < answer.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", ConstName(answer[i]).c_str());
    }
    std::printf(")  ~ %.3f\n", frequency);
  }
  std::printf("\nclean rows keep probability 1; the conflicting ord2 "
              "amounts split the mass ~0.5/0.5 — graded answers the "
              "classical certain-answer semantics would simply drop.\n");

  // 4. Aggregation through SQL on one sampled repair: total order volume.
  auto deletions = runner.SampleDeletions();
  sql::Catalog repaired = catalog;
  for (auto& [table, del] : deletions) {
    repaired.Register(table + "__del", std::move(del));
  }
  auto stmt = sql::Parse("SELECT SUM(amount) AS total FROM orders").value();
  auto rewritten =
      sql::RewriteWithDeletions(stmt, {{"orders", "orders__del"}});
  auto total = sql::Execute(*rewritten, repaired).value();
  std::printf("\nSUM(amount) on one sampled repair: %s\n",
              ConstName(total.rows()[0][0]).c_str());
  return 0;
}
