// Data-integration scenario (introduction + Example 5): facts from
// conflicting sources carry trust levels; the trust chain generator turns
// them into a repair distribution that can also distrust *both* sources —
// something the classical repair semantics cannot model.

#include <cstdio>

#include "constraints/constraint_parser.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/ocqa.h"
#include "repair/trust_generator.h"

int main() {
  using namespace opcqa;

  // Phone numbers integrated from three directories.
  Schema schema;
  schema.AddRelation("Phone", 2);
  Database db = *ParseDatabase(schema,
                               "Phone(ann, 111). Phone(ann, 222). "
                               "Phone(bob, 333). Phone(bob, 444). "
                               "Phone(carol, 555).");
  ConstraintSet sigma =
      *ParseConstraints(schema, "key: Phone(x,y), Phone(x,z) -> y = z");

  // Source trust: directory A (ann:111, bob:333) is curated, directory B
  // (ann:222) is stale, directory C (bob:444, carol:555) is middling.
  std::map<Fact, Rational> trust;
  trust[Fact::Make(schema, "Phone", {"ann", "111"})] = Rational(9, 10);
  trust[Fact::Make(schema, "Phone", {"ann", "222"})] = Rational(2, 10);
  trust[Fact::Make(schema, "Phone", {"bob", "333"})] = Rational(9, 10);
  trust[Fact::Make(schema, "Phone", {"bob", "444"})] = Rational(5, 10);
  trust[Fact::Make(schema, "Phone", {"carol", "555"})] = Rational(8, 10);
  TrustChainGenerator generator(trust);

  std::printf("Integrated (dirty) data: %s\n\n", db.ToString().c_str());

  EnumerationResult repairs = EnumerateRepairs(db, sigma, generator);
  std::printf("Repair distribution under source trust:\n");
  for (const RepairInfo& info : repairs.repairs) {
    std::printf("  p ≈ %.4f  { %s }\n", info.probability.ToDouble(),
                info.repair.ToString().c_str());
  }

  Query q = *ParseQuery(schema, "Q(x,y) := Phone(x,y)");
  OcaResult oca = ComputeOca(db, sigma, generator, q);
  std::printf("\nPer-fact degrees of certainty:\n");
  for (const auto& [tuple, p] : oca.answers) {
    std::printf("  Phone%s : %.4f\n", TupleToString(tuple).c_str(),
                p.ToDouble());
  }

  // The introduction's observation: with 50%-reliable sources the pair
  // {remove ann:111, remove ann:222, remove both} splits 0.375/0.375/0.25.
  std::printf("\nWith equally (un)trusted sources the framework still "
              "reserves probability for trusting neither source:\n");
  Schema pair_schema;
  pair_schema.AddRelation("R", 2);
  Database pair_db = *ParseDatabase(pair_schema, "R(a,b). R(a,c).");
  ConstraintSet pair_key =
      *ParseConstraints(pair_schema, "R(x,y), R(x,z) -> y = z");
  TrustChainGenerator half({}, Rational(1, 2));
  EnumerationResult pair_repairs =
      EnumerateRepairs(pair_db, pair_key, half);
  for (const RepairInfo& info : pair_repairs.repairs) {
    std::printf("  p = %-5s { %s }\n", info.probability.ToString().c_str(),
                info.repair.ToString().c_str());
  }
  return 0;
}
