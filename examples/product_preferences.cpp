// The paper's running example (Sections 3–4): conflicting product
// preferences repaired by a support-weighted Markov chain (Example 4),
// ending in Example 7's headline answer — "a is the most preferred product
// with degree of certainty 0.45", which classical CQA cannot express.

#include <cstdio>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/abc.h"
#include "repair/ocqa.h"
#include "repair/preference_generator.h"

int main() {
  using namespace opcqa;

  gen::Workload w = gen::PaperPreferenceExample();
  std::printf("Dirty preference data:\n  %s\n", w.db.ToString().c_str());
  std::printf("Constraint: %s\n\n",
              w.constraints[0].ToString(*w.schema).c_str());

  PreferenceChainGenerator generator(w.schema->RelationOrDie("Pref"));

  // The repairing Markov chain of the paper's figure.
  std::printf("Repairing Markov chain (the figure in Section 3):\n%s\n",
              RenderChainTree(w.db, w.constraints, generator).c_str());

  // Example 6: the repair distribution.
  EnumerationResult repairs =
      EnumerateRepairs(w.db, w.constraints, generator);
  std::printf("Operational repairs with probabilities (Example 6):\n");
  for (const RepairInfo& info : repairs.repairs) {
    std::printf("  p = %-6s ≈ %.4f  { %s }\n",
                info.probability.ToString().c_str(),
                info.probability.ToDouble(), info.repair.ToString().c_str());
  }

  // Example 7: the most-preferred-product query.
  Query q = *ParseQuery(*w.schema,
                        "Q(x) := forall y (Pref(x,y) | x = y)");
  std::printf("\nQ(x) = 'x is preferred over every other product':\n  %s\n",
              q.ToString(*w.schema).c_str());

  OcaResult oca = ComputeOca(w.db, w.constraints, generator, q);
  std::printf("\nOperational consistent answers:\n");
  for (const auto& [tuple, p] : oca.answers) {
    std::printf("  %s with degree of certainty %s = %.2f\n",
                TupleToString(tuple).c_str(), p.ToString().c_str(),
                p.ToDouble());
  }

  // What classical CQA would say.
  Result<std::vector<Database>> abc = AbcRepairs(w.db, w.constraints);
  std::set<Tuple> certain = CertainAnswers(*abc, q);
  std::printf("\nClassical (ABC) certain answers: %s\n",
              certain.empty() ? "{} — nothing can be said"
                              : "non-empty (unexpected)");
  std::printf("\nThe operational framework reports (a, 0.45) where the "
              "classical one reports nothing.\n");
  return 0;
}
