// Consistent aggregation demo (Section 6, "More Expressive Languages"):
// an inventory whose stock counts are disputed between sources. Classical
// range semantics answers "SUM is somewhere in [lo, hi]"; the operational
// framework answers with the full probability distribution of SUM, its
// expectation and variance, and lets a trust-aware chain skew the result
// toward the more reliable source.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/aggregation_demo

#include <cstdio>

#include "constraints/constraint_parser.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/aggregation.h"
#include "repair/trust_generator.h"

int main() {
  using namespace opcqa;

  // Stock(item, count): two items have conflicting counts.
  Schema schema;
  schema.AddRelation("Stock", 2);
  Database db = *ParseDatabase(schema,
                               "Stock(bolts, 100). Stock(bolts, 40). "
                               "Stock(nuts, 75). "
                               "Stock(washers, 20). Stock(washers, 90).");
  ConstraintSet sigma =
      *ParseConstraints(schema, "key: Stock(x,y), Stock(x,z) -> y = z");
  Query q = *ParseQuery(schema, "Q(x,y) := Stock(x,y)");

  std::printf("D = { %s }\n\n", db.ToString().c_str());

  // 1. Uniform chain: every repair choice equally likely.
  UniformChainGenerator uniform;
  EnumerationResult chain = EnumerateRepairs(db, sigma, uniform);
  auto sum = ComputeAggregateDistribution(chain, q, AggregateKind::kSum, 1)
                 .value();
  std::printf("SUM(count) under the uniform chain:\n");
  std::printf("  classical range: [%s, %s]\n", sum.glb->ToString().c_str(),
              sum.lub->ToString().c_str());
  std::printf("  distribution:\n");
  for (const auto& [value, mass] : sum.distribution) {
    std::printf("    SUM = %-5s with probability %s\n",
                value.ToString().c_str(), mass.ToString().c_str());
  }
  std::printf("  E[SUM] = %s (≈ %.2f), Var = %s\n\n",
              sum.expectation.ToString().c_str(),
              sum.expectation.ToDouble(), sum.variance.ToString().c_str());

  // 2. Trust-aware chain (Example 5): the first source (which reported
  //    bolts=100, washers=20) is 80% reliable, the second only 40%.
  std::map<Fact, Rational> trust = {
      {Fact::Make(schema, "Stock", {"bolts", "100"}), Rational(4, 5)},
      {Fact::Make(schema, "Stock", {"bolts", "40"}), Rational(2, 5)},
      {Fact::Make(schema, "Stock", {"washers", "20"}), Rational(4, 5)},
      {Fact::Make(schema, "Stock", {"washers", "90"}), Rational(2, 5)},
  };
  TrustChainGenerator trusted(trust, Rational(1, 2));
  EnumerationResult trusted_chain = EnumerateRepairs(db, sigma, trusted);
  auto trusted_sum =
      ComputeAggregateDistribution(trusted_chain, q, AggregateKind::kSum, 1)
          .value();
  std::printf("SUM(count) under the trust chain (source A 0.8 / B 0.4):\n");
  for (const auto& [value, mass] : trusted_sum.distribution) {
    std::printf("    SUM = %-5s with probability %s (≈ %.3f)\n",
                value.ToString().c_str(), mass.ToString().c_str(),
                mass.ToDouble());
  }
  std::printf("  E[SUM] = %s (≈ %.2f)\n",
              trusted_sum.expectation.ToString().c_str(),
              trusted_sum.expectation.ToDouble());
  std::printf("\nthe expectation shifts toward source A's figures — the "
              "range [%s, %s] alone could never show that.\n",
              trusted_sum.glb->ToString().c_str(),
              trusted_sum.lub->ToString().c_str());

  // 3. MIN/MAX are range-certain or not depending on where conflicts sit.
  auto min_dist =
      ComputeAggregateDistribution(chain, q, AggregateKind::kMin, 1).value();
  auto max_dist =
      ComputeAggregateDistribution(chain, q, AggregateKind::kMax, 1).value();
  std::printf("\nMIN range [%s, %s]%s; MAX range [%s, %s]%s\n",
              min_dist.glb->ToString().c_str(),
              min_dist.lub->ToString().c_str(),
              min_dist.IsCertain() ? " (certain)" : "",
              max_dist.glb->ToString().c_str(),
              max_dist.lub->ToString().c_str(),
              max_dist.IsCertain() ? " (certain)" : "");
  return 0;
}
