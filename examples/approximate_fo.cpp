// Approximate CQA for a first-order query far beyond the classical
// tractability frontier: a quantified, negated query over a database with
// dozens of key conflicts. Exact enumeration would need ~3^40 chain
// states; the Theorem 9 sampler answers it in milliseconds with an
// explicit (ε,δ) guarantee.

#include <cstdio>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/sampler.h"

int main() {
  using namespace opcqa;

  // 60 keys, 40 of them with two conflicting values.
  gen::Workload w = gen::MakeKeyViolationWorkload(60, 40, 2, /*seed=*/7);
  std::printf("dirty instance: %zu facts, %zu conflicting keys\n",
              w.db.size(), size_t{40});

  // FO query with universal quantification and negation: keys whose value
  // is 'uncontested among small values' — here simply: x has some value
  // and no second distinct value (i.e., x is conflict-free *after*
  // repair; trivially true per repair, so instead ask which (x,y) pairs
  // survive): we use two queries to show the machinery.
  Query survivors = *ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  Query unique_value = *ParseQuery(
      *w.schema,
      "Q(x) := exists y (R(x,y) & forall z (R(x,z) -> z = y))");

  UniformChainGenerator generator;
  Sampler sampler(w.db, w.constraints, &generator, /*seed=*/99);

  const double eps = 0.1, delta = 0.1;
  std::printf("additive-error approximation with eps = %.2f, delta = %.2f "
              "(n = %zu walks)\n\n",
              eps, delta, Sampler::NumSamples(eps, delta));

  ApproxOcaResult approx = sampler.EstimateOca(survivors, eps, delta);
  size_t certain_like = 0, contested = 0;
  for (const auto& [tuple, estimate] : approx.estimates) {
    if (estimate > 0.95) {
      ++certain_like;
    } else {
      ++contested;
    }
  }
  std::printf("R(x,y) tuples: %zu with estimate > 0.95 (clean keys), %zu "
              "contested\n",
              certain_like, contested);

  // Show a handful of contested estimates (exact value would be 1/3 for
  // each value of a 2-conflict under the uniform chain: keep-this,
  // keep-other, drop-both).
  std::printf("\nsample of contested tuples (uniform-chain CP ≈ 1/3):\n");
  size_t shown = 0;
  for (const auto& [tuple, estimate] : approx.estimates) {
    if (estimate <= 0.95 && shown < 5) {
      std::printf("  R%s ≈ %.3f\n", TupleToString(tuple).c_str(), estimate);
      ++shown;
    }
  }

  // The ∀-query: every clean key has a unique value in every repair
  // (estimate ≈ 1); conflicting keys keep a unique value unless both
  // values were dropped (estimate ≈ 2/3).
  ApproxOcaResult unique = sampler.EstimateOca(unique_value, eps, delta);
  double sum_clean = 0, sum_conflicted = 0;
  size_t n_clean = 0, n_conflicted = 0;
  for (const auto& [tuple, estimate] : unique.estimates) {
    if (estimate > 0.95) {
      sum_clean += estimate;
      ++n_clean;
    } else {
      sum_conflicted += estimate;
      ++n_conflicted;
    }
  }
  std::printf("\n'unique value after repair' per key: %zu keys ≈ 1.0; %zu "
              "conflicted keys mean estimate %.3f (exact 2/3)\n",
              n_clean, n_conflicted,
              n_conflicted ? sum_conflicted / n_conflicted : 0.0);
  std::printf("\nwalk statistics: %zu walks, %zu total steps, 0 failing "
              "(deletion-only repairs of key violations — Prop. 8)\n",
              unique.walks, unique.total_steps);
  return 0;
}
