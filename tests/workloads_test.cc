// Tests for workload generators and paper fixtures.

#include <gtest/gtest.h>

#include "constraints/satisfaction.h"
#include "constraints/violation.h"
#include "gen/workloads.h"
#include "repair/ocqa.h"
#include "util/string_util.h"

namespace opcqa {
namespace {

TEST(PaperFixturesTest, PreferenceExampleMatchesSection3) {
  gen::Workload w = gen::PaperPreferenceExample();
  EXPECT_EQ(w.db.size(), 6u);
  EXPECT_EQ(w.constraints.size(), 1u);
  EXPECT_TRUE(w.constraints[0].is_dc());
  EXPECT_FALSE(Satisfies(w.db, w.constraints));
  // Two symmetric conflicts; each yields two body homomorphisms
  // ((x,y) and (y,x)), so |V(D,Σ)| = 4.
  EXPECT_EQ(ComputeViolations(w.db, w.constraints).size(), 4u);
}

TEST(PaperFixturesTest, Example1Shape) {
  gen::Workload w = gen::PaperExample1();
  EXPECT_EQ(w.db.size(), 3u);
  EXPECT_EQ(w.constraints.size(), 2u);
  EXPECT_TRUE(w.constraints[0].is_tgd());
  EXPECT_TRUE(w.constraints[1].is_egd());
  EXPECT_EQ(w.constraints[0].label(), "sigma");
  EXPECT_EQ(w.constraints[1].label(), "eta");
}

TEST(PaperFixturesTest, FailingExampleShape) {
  gen::Workload w = gen::PaperFailingExample();
  EXPECT_EQ(w.db.size(), 1u);
  EXPECT_FALSE(Satisfies(w.db, w.constraints));
  EXPECT_FALSE(IsDenialOnly(w.constraints));
}

TEST(GeneratorTest, PreferenceWorkloadDeterministicPerSeed) {
  gen::Workload w1 = gen::MakePreferenceWorkload(10, 20, 0.3, 42);
  gen::Workload w2 = gen::MakePreferenceWorkload(10, 20, 0.3, 42);
  EXPECT_EQ(w1.db.ToString(), w2.db.ToString());
  gen::Workload w3 = gen::MakePreferenceWorkload(10, 20, 0.3, 43);
  EXPECT_NE(w1.db.ToString(), w3.db.ToString());
}

TEST(GeneratorTest, PreferenceWorkloadConflictsScaleWithFraction) {
  gen::Workload none = gen::MakePreferenceWorkload(12, 30, 0.0, 1);
  gen::Workload lots = gen::MakePreferenceWorkload(12, 30, 0.9, 1);
  EXPECT_TRUE(Satisfies(none.db, none.constraints));
  EXPECT_FALSE(Satisfies(lots.db, lots.constraints));
}

TEST(GeneratorTest, KeyViolationWorkloadCounts) {
  gen::Workload w = gen::MakeKeyViolationWorkload(10, 3, 4, 5);
  // 7 clean keys + 3 groups of 4.
  EXPECT_EQ(w.db.size(), 7u + 12u);
  ViolationSet violations = ComputeViolations(w.db, w.constraints);
  // Per violating group: ordered pairs of distinct values = 4·3 = 12.
  EXPECT_EQ(violations.size(), 3u * 12u);
}

TEST(GeneratorTest, KeyViolationWorkloadCleanWhenNoViolations) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 0, 2, 6);
  EXPECT_TRUE(Satisfies(w.db, w.constraints));
}

TEST(GeneratorTest, TrustWorkloadAssignsTrustToEveryFact) {
  gen::TrustWorkload tw = gen::MakeTrustWorkload(6, 2, 2, 7);
  for (const Fact& fact : tw.workload.db.AllFacts()) {
    auto it = tw.trust.find(fact);
    ASSERT_TRUE(it != tw.trust.end());
    EXPECT_GT(it->second, Rational(0));
    EXPECT_LE(it->second, Rational(1));
  }
}

TEST(GeneratorTest, InclusionWorkloadMissingWitnesses) {
  gen::Workload all_missing = gen::MakeInclusionWorkload(5, 1.0, 8);
  EXPECT_FALSE(Satisfies(all_missing.db, all_missing.constraints));
  EXPECT_EQ(ComputeViolations(all_missing.db, all_missing.constraints).size(),
            5u);
  gen::Workload none_missing = gen::MakeInclusionWorkload(5, 0.0, 8);
  EXPECT_TRUE(Satisfies(none_missing.db, none_missing.constraints));
}

TEST(GeneratorTest, JoinWorkloadHasThreeRelationsAndKeys) {
  gen::Workload w = gen::MakeJoinWorkload(20, 3, 9);
  EXPECT_EQ(w.schema->size(), 3u);
  EXPECT_EQ(w.constraints.size(), 3u);
  EXPECT_TRUE(IsDenialOnly(w.constraints));
  EXPECT_GE(w.db.size(), 60u);
}

TEST(GeneratorTest, WorkloadSchemaOwnership) {
  // The workload keeps its schema alive (databases hold raw pointers).
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 1, 2, 10);
  EXPECT_EQ(&w.db.schema(), w.schema.get());
}

// ---------------------------------------------------------------------
// The Proposition 7 hardness gadget (3-SAT → key repairs).
// ---------------------------------------------------------------------

// Applies an assignment to a SAT workload: keeps Assign(v, value) per the
// assignment, deletes the complement (one specific key repair).
Database ApplyAssignment(const gen::SatWorkload& sat,
                         const std::map<size_t, bool>& assignment) {
  Database db = sat.workload.db;
  PredId assign = sat.workload.schema->RelationOrDie("Assign");
  for (const auto& [v, value] : assignment) {
    db.Erase(Fact(assign, {Const(StrCat("var", v)),
                           Const(value ? "0" : "1")}));
  }
  return db;
}

TEST(SatGadgetTest, PlantedInstanceStructure) {
  gen::SatWorkload sat = gen::MakePlantedSatWorkload(5, 12, /*seed=*/3);
  EXPECT_EQ(sat.num_vars, 5u);
  EXPECT_EQ(sat.num_clauses, 12u);
  EXPECT_EQ(sat.planted_assignment.size(), 5u);
  // 2 Assign facts per var + 1 Clause + 3 Lit per clause.
  EXPECT_EQ(sat.workload.db.size(), 5 * 2 + 12 * 4);
  EXPECT_TRUE(IsDenialOnly(sat.workload.constraints));
}

TEST(SatGadgetTest, PlantedAssignmentSatisfiesTheQuery) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    gen::SatWorkload sat = gen::MakePlantedSatWorkload(6, 15, seed);
    Query q = gen::SatQuery(sat.workload);
    Database repaired = ApplyAssignment(sat, sat.planted_assignment);
    EXPECT_EQ(q.Evaluate(repaired), (std::set<Tuple>{{}}))
        << "seed " << seed;
  }
}

TEST(SatGadgetTest, DirtyInstanceTriviallySatisfiesTheQuery) {
  // Before repairing, both truth values are present, so every literal is
  // "true" — the query only becomes discriminating on repairs.
  gen::SatWorkload sat = gen::MakePlantedSatWorkload(4, 8, /*seed=*/5);
  Query q = gen::SatQuery(sat.workload);
  EXPECT_EQ(q.Evaluate(sat.workload.db), (std::set<Tuple>{{}}));
}

TEST(SatGadgetTest, UnsatInstanceHasNoSatisfyingRepair) {
  gen::SatWorkload sat = gen::MakeUnsatWorkload(2);
  EXPECT_EQ(sat.num_clauses, 4u);
  Query q = gen::SatQuery(sat.workload);
  // All four assignments falsify some clause.
  for (size_t mask = 0; mask < 4; ++mask) {
    std::map<size_t, bool> assignment = {{0, (mask & 1) != 0},
                                         {1, (mask & 2) != 0}};
    Database repaired = ApplyAssignment(sat, assignment);
    EXPECT_TRUE(q.Evaluate(repaired).empty()) << "mask " << mask;
  }
}

TEST(SatGadgetTest, CpPositiveIffSatisfiable) {
  // Small enough to enumerate the full chain: CP(()) > 0 on a planted
  // instance, CP(()) = 0 on the unsatisfiable one (Proposition 7's
  // reduction in action).
  gen::SatWorkload sat = gen::MakePlantedSatWorkload(3, 4, /*seed=*/11);
  UniformChainGenerator gen;
  Query q = gen::SatQuery(sat.workload);
  Rational cp = ComputeTupleProbability(sat.workload.db,
                                        sat.workload.constraints, gen, q,
                                        Tuple{});
  EXPECT_GT(cp, Rational(0));

  gen::SatWorkload unsat = gen::MakeUnsatWorkload(2);
  Query uq = gen::SatQuery(unsat.workload);
  Rational ucp = ComputeTupleProbability(unsat.workload.db,
                                         unsat.workload.constraints, gen,
                                         uq, Tuple{});
  EXPECT_EQ(ucp, Rational(0));
}

}  // namespace
}  // namespace opcqa
