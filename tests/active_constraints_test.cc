// Tests for the active-integrity-constraint chain generator (Section 6).

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/active_constraints.h"
#include "repair/ocqa.h"
#include "repair/repair_enumerator.h"

namespace opcqa {
namespace {

class ActiveConstraintsTest : public ::testing::Test {
 protected:
  ActiveConstraintsTest() {
    schema_.AddRelation("R", 2);
    schema_.AddRelation("S", 2);
    schema_.AddRelation("Log", 2);
  }

  Database Db(std::string_view text) {
    return ParseDatabase(schema_, text).value();
  }
  ConstraintSet Sigma(std::string_view text) {
    return ParseConstraints(schema_, text).value();
  }

  Schema schema_;
};

TEST_F(ActiveConstraintsTest, NoPreferencesIsUniform) {
  Database db = Db("R(a,b). R(a,c).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  ActiveConstraintGenerator gen({});
  EnumerationResult result = EnumerateRepairs(db, sigma, gen);
  ASSERT_EQ(result.repairs.size(), 3u);
  for (const RepairInfo& info : result.repairs) {
    EXPECT_EQ(info.probability, Rational(1, 3));
  }
}

TEST_F(ActiveConstraintsTest, BodyAtomPreferenceSkewsTheChoice) {
  // Prefer deleting the image of the *second* body atom (R(x,z)) with
  // weight 3. Both single-fact deletions match it (through one of the two
  // symmetric violations); the pair deletion keeps weight 1 → 3/7, 3/7,
  // 1/7.
  Database db = Db("R(a,b). R(a,c).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  ActionPreference preference;
  preference.constraint_index = 0;
  preference.kind = Operation::Kind::kRemove;
  preference.body_atom_index = 1;
  preference.weight = Rational(3);
  ActiveConstraintGenerator gen({preference});

  EnumerationResult result = EnumerateRepairs(db, sigma, gen);
  ASSERT_EQ(result.repairs.size(), 3u);
  // Both single-fact deletions match the preference through one of the
  // two symmetric violations (h may send z to either b or c), so both get
  // weight 3; the pair deletion matches neither pattern (weight 1).
  Database keep_b = Db("R(a,b).");
  Database keep_c = Db("R(a,c).");
  Database keep_none(&schema_);
  EXPECT_EQ(result.ProbabilityOf(keep_b), Rational(3, 7));
  EXPECT_EQ(result.ProbabilityOf(keep_c), Rational(3, 7));
  EXPECT_EQ(result.ProbabilityOf(keep_none), Rational(1, 7));
}

TEST_F(ActiveConstraintsTest, ZeroWeightPrunesOperations) {
  // Forbid the pair deletion by giving unmatched operations weight 0 and
  // single-fact deletions weight 1: the "choose exactly one survivor"
  // policy of classical subset repairs.
  Database db = Db("R(a,b). R(a,c).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  ActionPreference first, second;
  first.constraint_index = 0;
  first.kind = Operation::Kind::kRemove;
  first.body_atom_index = 0;
  first.weight = Rational(1);
  second = first;
  second.body_atom_index = 1;
  ActiveConstraintGenerator gen({first, second},
                                /*default_weight=*/Rational(0));
  EnumerationResult result = EnumerateRepairs(db, sigma, gen);
  // The pair deletion has probability 0 → only two repairs remain.
  ASSERT_EQ(result.repairs.size(), 2u);
  for (const RepairInfo& info : result.repairs) {
    EXPECT_EQ(info.probability, Rational(1, 2));
    EXPECT_EQ(info.repair.size(), 1u);
  }
}

TEST_F(ActiveConstraintsTest, InsertionPreferenceFavoursCompletion) {
  // Inclusion dependency R ⊆ S (full TGD): a violation can be fixed by
  // inserting S(a,b) or deleting R(a,b). Prefer the insertion 4:1.
  Database db = Db("R(a,b).");
  ConstraintSet sigma = Sigma("R(x,y) -> S(x,y)");
  ActionPreference prefer_insert;
  prefer_insert.constraint_index = 0;
  prefer_insert.kind = Operation::Kind::kAdd;
  prefer_insert.weight = Rational(4);
  ActiveConstraintGenerator gen({prefer_insert});

  EnumerationResult result = EnumerateRepairs(db, sigma, gen);
  Database completed = Db("R(a,b). S(a,b).");
  Database emptied(&schema_);
  EXPECT_EQ(result.ProbabilityOf(completed), Rational(4, 5));
  EXPECT_EQ(result.ProbabilityOf(emptied), Rational(1, 5));
}

TEST_F(ActiveConstraintsTest, AllForbiddenFallsBackToUniform) {
  // Every operation weighted 0: Definition 5 still needs a distribution,
  // so the generator falls back to uniform instead of emitting all-zeros.
  Database db = Db("R(a,b). R(a,c).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  ActiveConstraintGenerator gen({}, /*default_weight=*/Rational(0));
  EnumerationResult result = EnumerateRepairs(db, sigma, gen);
  ASSERT_EQ(result.repairs.size(), 3u);
  EXPECT_EQ(result.success_mass, Rational(1));
}

TEST_F(ActiveConstraintsTest, PreferencesOnlyAffectTheirConstraint) {
  // Two independent violations: a key conflict on R and a DC pair on S.
  // A preference on the key constraint must not skew the S choice.
  Database db = Db("R(a,b). R(a,c). S(d,e). S(e,d).");
  ConstraintSet sigma = Sigma(
      "R(x,y), R(x,z) -> y = z\n"
      "S(x,y), S(y,x) -> false");
  ActionPreference preference;
  preference.constraint_index = 0;  // the key on R
  preference.kind = Operation::Kind::kRemove;
  preference.body_atom_index = 0;
  preference.weight = Rational(10);
  ActiveConstraintGenerator gen({preference});

  EnumerationResult result = EnumerateRepairs(db, sigma, gen);
  EXPECT_EQ(result.success_mass, Rational(1));
  // Marginal over the S-component: by symmetry of the S deletions, the
  // repairs keeping S(d,e) and those keeping S(e,d) carry equal mass.
  Rational keep_de(0), keep_ed(0);
  for (const RepairInfo& info : result.repairs) {
    bool de = info.repair.Contains(Fact::Make(schema_, "S", {"d", "e"}));
    bool ed = info.repair.Contains(Fact::Make(schema_, "S", {"e", "d"}));
    if (de && !ed) keep_de += info.probability;
    if (ed && !de) keep_ed += info.probability;
  }
  EXPECT_EQ(keep_de, keep_ed);
}

TEST_F(ActiveConstraintsTest, WorksAsOcqaGenerator) {
  Database db = Db("R(a,b). R(a,c).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  ActionPreference keep_first;
  keep_first.constraint_index = 0;
  keep_first.kind = Operation::Kind::kRemove;
  keep_first.body_atom_index = 1;
  keep_first.weight = Rational(3);
  ActiveConstraintGenerator gen({keep_first});
  Query q = ParseQuery(schema_, "Q(x,y) := R(x,y)").value();
  OcaResult oca = ComputeOca(db, sigma, gen, q);
  EXPECT_EQ(oca.Probability({Const("a"), Const("b")}), Rational(3, 7));
  EXPECT_EQ(oca.Probability({Const("a"), Const("c")}), Rational(3, 7));
}

}  // namespace
}  // namespace opcqa
