// Tests for the disk tier (src/storage/ + the RepairSpaceCache
// integration): canonical snapshot round trips with byte-identical
// answers, a genuine fresh-process warm start (fork + exec), rejection of
// corrupt/truncated/version-mismatched snapshots with cold-compute
// fallback, disk GC under max_disk_bytes, spill-on-LRU-eviction, the
// twice-missed admission filter, the hardening paths (bounded Put retry,
// two-strike quarantine, crashed-writer temp sweep, disk-tier circuit
// breaker trip + recovery), and a concurrent spill-while-querying run
// (TSan-gated in CI).

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/workloads.h"
#include "repair/repair_cache.h"
#include "repair/repair_enumerator.h"
#include "storage/canonical.h"
#include "storage/snapshot_store.h"

namespace opcqa {
namespace {

namespace fs = std::filesystem;

/// A fresh temp directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string pattern =
        (fs::temp_directory_path() / "opcqa_storage_XXXXXX").string();
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    char* made = ::mkdtemp(buffer.data());
    EXPECT_NE(made, nullptr);
    path_ = made == nullptr ? std::string() : made;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ignored;
      fs::remove_all(path_, ignored);
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

EnumerationOptions MemoOptions(RepairSpaceCache* cache) {
  EnumerationOptions options;
  options.memoize = true;
  options.cache = cache;
  return options;
}

RepairCacheOptions DiskOptions(const std::string& dir,
                               size_t max_disk_bytes = 0) {
  RepairCacheOptions options;
  options.snapshot_dir = dir;
  options.max_disk_bytes = max_disk_bytes;
  return options;
}

void ExpectSameDistribution(const EnumerationResult& result,
                            const EnumerationResult& base) {
  EXPECT_EQ(result.success_mass, base.success_mass);
  EXPECT_EQ(result.failing_mass, base.failing_mass);
  EXPECT_EQ(result.states_visited, base.states_visited);
  EXPECT_EQ(result.absorbing_states, base.absorbing_states);
  EXPECT_EQ(result.successful_sequences, base.successful_sequences);
  EXPECT_EQ(result.failing_sequences, base.failing_sequences);
  EXPECT_EQ(result.max_depth, base.max_depth);
  ASSERT_EQ(result.repairs.size(), base.repairs.size());
  for (size_t i = 0; i < base.repairs.size(); ++i) {
    EXPECT_EQ(result.repairs[i].repair, base.repairs[i].repair) << i;
    EXPECT_EQ(result.repairs[i].probability, base.repairs[i].probability)
        << i;
    EXPECT_EQ(result.repairs[i].num_sequences,
              base.repairs[i].num_sequences)
        << i;
  }
}

/// Runs the PR-4-style cold phase: two enumerations (the admission filter
/// records subtrees once their keys have been seen twice, so the second
/// pass admits the chain-root entry), then spills to `dir`.
void WarmDiskTier(const gen::Workload& w, const ChainGenerator& generator,
                  const std::string& dir) {
  RepairSpaceCache cache(DiskOptions(dir));
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  cache.Persist();
  ASSERT_GE(cache.disk_stats().spills, 1u);
}

/// The snapshot file the cache writes for `w` under the uniform
/// generator with default (pruning) options.
fs::path SnapshotPathFor(const gen::Workload& w,
                         const ChainGenerator& generator,
                         const std::string& dir) {
  storage::SnapshotIdentity identity;
  identity.db_text = w.db.ToString();
  identity.constraints_digest =
      storage::RenderConstraints(*w.schema, w.constraints);
  identity.generator_identity = generator.cache_identity();
  identity.prune = true;
  return fs::path(dir) / storage::SnapshotStore::FileName(
                             storage::StableFingerprint(identity));
}

// ---------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------

TEST(StorageSnapshotTest, WarmStartFromDiskIsByteIdenticalAndSkipsWalks) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});

  TempDir dir;
  size_t cold_entries = 0;
  {
    RepairSpaceCache cache(DiskOptions(dir.path()));
    EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
    EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
    cold_entries = cache.TotalStats().entries;
    // Destruction spills (session close) — no explicit Persist() needed.
  }
  ASSERT_TRUE(fs::exists(SnapshotPathFor(w, generator, dir.path())));

  RepairSpaceCache warm_cache(DiskOptions(dir.path()));
  EnumerationResult warm = EnumerateRepairs(w.db, w.constraints, generator,
                                            MemoOptions(&warm_cache));
  // The restored root entry replays the whole chain: one probe, one hit,
  // zero states actually walked.
  EXPECT_EQ(warm.memo_stats.hits, 1u);
  EXPECT_EQ(warm.memo_stats.misses, 0u);
  ExpectSameDistribution(warm, base);
  DiskTierStats disk = warm_cache.disk_stats();
  EXPECT_EQ(disk.restores, 1u);
  EXPECT_GT(disk.restore_bytes, 0u);
  EXPECT_EQ(disk.rejected_snapshots, 0u);
  // Every admitted entry of the cold table survived the round trip.
  EXPECT_EQ(warm_cache.TotalStats().entries, cold_entries);
}

TEST(StorageSnapshotTest, EncodeDecodeRoundTripAndIdentityVerification) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/7);
  UniformChainGenerator generator;
  RepairSpaceCache cache;  // memory-only: source of a persistent table
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  std::shared_ptr<TranspositionTable> table =
      cache.TableFor(w.db, w.constraints, generator, true);
  ASSERT_NE(table, nullptr);
  ASSERT_GT(table->size(), 0u);

  storage::SnapshotIdentity identity;
  identity.db_text = w.db.ToString();
  identity.constraints_digest =
      storage::RenderConstraints(*w.schema, w.constraints);
  identity.generator_identity = generator.cache_identity();
  identity.prune = true;
  std::string bytes = storage::EncodeSnapshot(identity, w.db, *table);

  Result<std::shared_ptr<TranspositionTable>> decoded =
      storage::DecodeSnapshot(bytes, identity, w.db, w.constraints,
                              TranspositionTable::kDefaultMaxEntries, 0);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)->size(), table->size());

  // Same bytes against a different root: every identity component is
  // verified for real, so the snapshot is rejected, not aliased.
  gen::Workload other = gen::MakeKeyViolationWorkload(5, 3, 2, /*seed=*/7);
  storage::SnapshotIdentity other_identity = identity;
  other_identity.db_text = other.db.ToString();
  Result<std::shared_ptr<TranspositionTable>> rejected =
      storage::DecodeSnapshot(bytes, other_identity, other.db,
                              other.constraints,
                              TranspositionTable::kDefaultMaxEntries, 0);
  EXPECT_FALSE(rejected.ok());
}

// ---------------------------------------------------------------------
// Fresh-process warm start (the real cross-process property)
// ---------------------------------------------------------------------

// Child half of CrossProcessWarmStart: runs in a *fresh process* (fork +
// exec), so every fact, constant and variable is re-interned from scratch
// and all process-local ids/hashes differ from the writer's lifetime.
// Skipped unless the parent set the snapshot-directory env var.
TEST(StorageSnapshotTest, ChildProcessWarmStart) {
  const char* dir = std::getenv("OPCQA_STORAGE_CHILD_DIR");
  if (dir == nullptr) {
    GTEST_SKIP() << "child half of CrossProcessWarmStart";
  }
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});
  RepairSpaceCache cache(DiskOptions(dir));
  EnumerationResult warm =
      EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  ASSERT_EQ(cache.disk_stats().restores, 1u);
  ASSERT_EQ(warm.memo_stats.hits, 1u);
  ASSERT_EQ(warm.memo_stats.misses, 0u);
  ExpectSameDistribution(warm, base);
}

TEST(StorageSnapshotTest, CrossProcessWarmStart) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  UniformChainGenerator generator;
  TempDir dir;
  WarmDiskTier(w, generator, dir.path());

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Fresh process image: exec, don't just fork — a forked child would
    // inherit this process's interners and prove nothing.
    ::setenv("OPCQA_STORAGE_CHILD_DIR", dir.path().c_str(), 1);
    ::execl("/proc/self/exe", "storage_test",
            "--gtest_filter=StorageSnapshotTest.ChildProcessWarmStart",
            static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "fresh-process warm start failed; rerun with "
         "OPCQA_STORAGE_CHILD_DIR for details";
}

// ---------------------------------------------------------------------
// Corruption, truncation, version mismatch → cold compute
// ---------------------------------------------------------------------

class StorageRejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/19);
    base_ = EnumerateRepairs(w_.db, w_.constraints, generator_, {});
    WarmDiskTier(w_, generator_, dir_.path());
    snapshot_ = SnapshotPathFor(w_, generator_, dir_.path());
    ASSERT_TRUE(fs::exists(snapshot_));
  }

  /// A damaged snapshot must degrade to cold compute with byte-identical
  /// answers and one counted rejection.
  void ExpectRejectedButCorrect() {
    RepairSpaceCache cache(DiskOptions(dir_.path()));
    EnumerationResult result = EnumerateRepairs(
        w_.db, w_.constraints, generator_, MemoOptions(&cache));
    DiskTierStats disk = cache.disk_stats();
    EXPECT_EQ(disk.restores, 0u);
    EXPECT_EQ(disk.rejected_snapshots, 1u);
    EXPECT_GT(result.memo_stats.misses, 0u);  // genuinely walked cold
    ExpectSameDistribution(result, base_);
  }

  gen::Workload w_;
  UniformChainGenerator generator_;
  EnumerationResult base_;
  TempDir dir_;
  fs::path snapshot_;
};

TEST_F(StorageRejectionTest, FlippedPayloadByteIsRejected) {
  std::fstream file(snapshot_, std::ios::in | std::ios::out |
                                   std::ios::binary);
  ASSERT_TRUE(file.good());
  size_t size = fs::file_size(snapshot_);
  file.seekp(static_cast<std::streamoff>(size / 2));
  char byte = 0;
  file.seekg(static_cast<std::streamoff>(size / 2));
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  file.seekp(static_cast<std::streamoff>(size / 2));
  file.write(&byte, 1);
  file.close();
  ExpectRejectedButCorrect();
}

TEST_F(StorageRejectionTest, TruncatedSnapshotIsRejected) {
  size_t size = fs::file_size(snapshot_);
  fs::resize_file(snapshot_, size / 3);
  ExpectRejectedButCorrect();
}

TEST_F(StorageRejectionTest, FutureFormatVersionIsRejected) {
  // Byte 8 is the low byte of the little-endian format version, right
  // after the 8-byte magic.
  std::fstream file(snapshot_, std::ios::in | std::ios::out |
                                   std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekp(8);
  char version = static_cast<char>(storage::kSnapshotFormatVersion + 1);
  file.write(&version, 1);
  file.close();
  ExpectRejectedButCorrect();
}

TEST_F(StorageRejectionTest, EmptySnapshotFileIsRejected) {
  fs::resize_file(snapshot_, 0);
  ExpectRejectedButCorrect();
}

// ---------------------------------------------------------------------
// Disk GC and spill-on-eviction
// ---------------------------------------------------------------------

TEST(StorageSnapshotTest, DiskGcRespectsMaxDiskBytesOldestFirst) {
  UniformChainGenerator generator;
  TempDir dir;
  std::vector<gen::Workload> workloads;
  for (size_t keys : {4, 5, 6}) {
    // Distinct database shapes → three distinct roots and snapshots.
    workloads.push_back(gen::MakeKeyViolationWorkload(keys, 3, 2, 101));
  }
  // Budget of one byte: after every spill the GC deletes everything but
  // the newest snapshot, oldest first.
  RepairSpaceCache cache(DiskOptions(dir.path(), /*max_disk_bytes=*/1));
  for (const gen::Workload& w : workloads) {
    EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
    // Distinct mtimes so "oldest" is well defined even on coarse clocks.
    cache.Persist();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  size_t snapshots = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().extension() == ".snap") ++snapshots;
  }
  EXPECT_EQ(snapshots, 1u);
  // The survivor is the newest root's snapshot.
  EXPECT_TRUE(fs::exists(
      SnapshotPathFor(workloads.back(), generator, dir.path())));
  EXPECT_FALSE(fs::exists(
      SnapshotPathFor(workloads.front(), generator, dir.path())));
}

TEST(StorageSnapshotTest, UnwritableDirectoryCountsFailedSpills) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/3);
  UniformChainGenerator generator;
  // A path that can never become a directory: spills must fail loudly
  // (counted), never crash, and queries must be unaffected.
  RepairCacheOptions options = DiskOptions("/dev/null/opcqa-snapshots");
  RepairSpaceCache cache(options);
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  EXPECT_GT(result.repairs.size(), 0u);
  cache.Persist();
  DiskTierStats disk = cache.disk_stats();
  EXPECT_EQ(disk.spills, 0u);
  EXPECT_GE(disk.failed_spills, 1u);
}

TEST(StorageSnapshotTest, LruRootEvictionSpillsToDisk) {
  UniformChainGenerator generator;
  gen::Workload first = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/31);
  gen::Workload second = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/32);
  EnumerationResult base =
      EnumerateRepairs(first.db, first.constraints, generator, {});
  TempDir dir;
  {
    RepairCacheOptions options = DiskOptions(dir.path());
    options.max_roots = 1;
    RepairSpaceCache cache(options);
    // Warm the first root (two passes admit its chain-root entry), then
    // querying a second database evicts it — the spill must preserve it.
    EnumerateRepairs(first.db, first.constraints, generator,
                     MemoOptions(&cache));
    EnumerateRepairs(first.db, first.constraints, generator,
                     MemoOptions(&cache));
    EnumerateRepairs(second.db, second.constraints, generator,
                     MemoOptions(&cache));
    EXPECT_EQ(cache.roots(), 1u);  // only the second root is resident
  }
  // A fresh cache warm-starts the *evicted* root from its spill.
  RepairSpaceCache warm_cache(DiskOptions(dir.path()));
  EnumerationResult warm = EnumerateRepairs(
      first.db, first.constraints, generator, MemoOptions(&warm_cache));
  EXPECT_EQ(warm_cache.disk_stats().restores, 1u);
  EXPECT_EQ(warm.memo_stats.hits, 1u);
  EXPECT_EQ(warm.memo_stats.misses, 0u);
  ExpectSameDistribution(warm, base);
}

// ---------------------------------------------------------------------
// Admission filter (persistent tables only)
// ---------------------------------------------------------------------

TEST(AdmissionFilterTest, RecordsOnlyTwiceMissedKeys) {
  StateKey key{11, 22};
  std::set<FactId> removed;
  ViolationSet eliminated;
  auto outcome = std::make_shared<MemoOutcome>();
  outcome->states = 5;

  TranspositionTable filtered;
  filtered.EnableAdmissionFilter();
  // First completion (one prior miss, as in a real walk): deferred.
  EXPECT_EQ(filtered.Lookup(key, removed, eliminated), nullptr);
  filtered.Insert(key, removed, eliminated, outcome);
  EXPECT_EQ(filtered.size(), 0u);
  EXPECT_EQ(filtered.stats().admission_deferred, 1u);
  // Second reach: the key has now missed twice — admitted.
  EXPECT_EQ(filtered.Lookup(key, removed, eliminated), nullptr);
  filtered.Insert(key, removed, eliminated, outcome);
  EXPECT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.Lookup(key, removed, eliminated), outcome);

  // Scratch tables admit immediately — the PR-4 behavior is untouched.
  TranspositionTable scratch;
  scratch.Insert(key, removed, eliminated, outcome);
  EXPECT_EQ(scratch.size(), 1u);
  EXPECT_EQ(scratch.stats().admission_deferred, 0u);

  // Disk-restored entries bypass the filter: they proved their replay
  // value in a previous process.
  TranspositionTable restored;
  restored.EnableAdmissionFilter();
  restored.RestoreEntry(key, {}, {}, outcome);
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.Lookup(key, removed, eliminated), outcome);
}

// ---------------------------------------------------------------------
// Hardening: retry, quarantine, crashed-writer sweep, circuit breaker
// ---------------------------------------------------------------------

TEST(StorageHardeningTest, PutRetriesBeforeFailingCleanly) {
  storage::SnapshotStoreOptions options;
  // A path that can never become a directory: every attempt fails the
  // same way, so an exhausted Put surfaces the error instead of aborting.
  options.directory = "/dev/null/opcqa-retry";
  options.put_retries = 2;
  options.retry_backoff_ms = 0;
  storage::SnapshotStore store(options);
  Status put = store.Put(1, "bytes");
  EXPECT_FALSE(put.ok());
  EXPECT_EQ(store.Stats().put_retries, 2u);  // two retries, then give up
}

TEST(StorageHardeningTest, TwoCorruptionStrikesQuarantineTheSnapshot) {
  TempDir dir;
  storage::SnapshotStoreOptions options;
  options.directory = dir.path();
  storage::SnapshotStore store(options);
  ASSERT_TRUE(store.Put(42, "payload").ok());

  // One strike is forgiven: transient decode failures (torn concurrent
  // rewrite, cosmic ray in the page cache) must not nuke a good file.
  store.MarkCorrupt(42);
  EXPECT_FALSE(store.IsQuarantined(42));
  ASSERT_TRUE(store.Get(42).ok());

  // The second strike moves the bytes to quarantine/ for post-mortem and
  // stops probing the fingerprint.
  store.MarkCorrupt(42);
  EXPECT_TRUE(store.IsQuarantined(42));
  EXPECT_EQ(store.Get(42).status().code(), StatusCode::kNotFound);
  fs::path quarantined = fs::path(dir.path()) /
                         storage::SnapshotStore::kQuarantineDirName /
                         storage::SnapshotStore::FileName(42);
  EXPECT_TRUE(fs::exists(quarantined));
  EXPECT_EQ(store.Stats().quarantined, 1u);

  // Further strikes are no-ops; a fresh Put gives the root a clean slate.
  store.MarkCorrupt(42);
  EXPECT_EQ(store.Stats().quarantined, 1u);
  ASSERT_TRUE(store.Put(42, "fresh").ok());
  EXPECT_FALSE(store.IsQuarantined(42));
  Result<std::string> bytes = store.Get(42);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "fresh");
}

TEST(StorageHardeningTest, CrashedWriterTempsAreSweptAtOpenAndPut) {
  TempDir dir;
  auto make_temp = [&](const std::string& name, bool stale) {
    fs::path path = fs::path(dir.path()) / name;
    std::ofstream(path) << "partial";
    if (stale) {
      fs::last_write_time(path, fs::file_time_type::clock::now() -
                                    std::chrono::hours(2));
    }
    return path;
  };
  fs::path stale = make_temp(".tmp-root-00000000000000aa.snap.9.0", true);
  fs::path fresh = make_temp(".tmp-root-00000000000000bb.snap.9.1", false);

  // Construction sweeps the crashed writer's leftover but leaves the
  // fresh temp alone — it may be another process's in-flight spill.
  storage::SnapshotStoreOptions options;
  options.directory = dir.path();
  storage::SnapshotStore store(options);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));
  EXPECT_EQ(store.Stats().swept_temps, 1u);

  // The sweep also runs on every Put, so a long-lived process converges
  // without reopening the store.
  fs::path later = make_temp(".tmp-root-00000000000000cc.snap.9.2", true);
  ASSERT_TRUE(store.Put(7, "hello").ok());
  EXPECT_FALSE(fs::exists(later));
  EXPECT_EQ(store.Stats().swept_temps, 2u);
  Result<std::string> bytes = store.Get(7);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "hello");
}

TEST(StorageHardeningTest, BreakerTripsToMemoryOnlyAfterRepeatedFailures) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/3);
  UniformChainGenerator generator;
  RepairCacheOptions options = DiskOptions("/dev/null/opcqa-breaker");
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_ms = 60000;  // stays open for the whole test
  RepairSpaceCache cache(options);
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));

  // First spill fails on the unwritable tier (after the store's bounded
  // retries) and trips the breaker.
  cache.Persist();
  DiskTierStats tripped = cache.disk_stats();
  EXPECT_EQ(tripped.failed_spills, 1u);
  EXPECT_EQ(tripped.breaker_trips, 1u);
  EXPECT_GE(tripped.put_retries, 2u);

  // While open, further spills are skipped (the root stays dirty) instead
  // of burning IO on a tier that is known bad.
  cache.Persist();
  DiskTierStats open = cache.disk_stats();
  EXPECT_EQ(open.failed_spills, 1u);
  EXPECT_GE(open.breaker_skips, 1u);
}

TEST(StorageHardeningTest, BreakerRecoversAfterCooldown) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/3);
  UniformChainGenerator generator;
  TempDir dir;
  // Block the tier with a regular file where the snapshot directory
  // should be: every Put fails until the file is removed.
  fs::path blocked = fs::path(dir.path()) / "tier";
  std::ofstream(blocked) << "in the way";

  RepairCacheOptions options = DiskOptions(blocked.string());
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_ms = 30;
  RepairSpaceCache cache(options);
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  cache.Persist();
  ASSERT_EQ(cache.disk_stats().breaker_trips, 1u);
  ASSERT_EQ(cache.disk_stats().spills, 0u);

  // Tier repaired + cooldown elapsed: the half-open probe succeeds and
  // the dirty root finally reaches disk.
  fs::remove(blocked);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  cache.Persist();
  DiskTierStats recovered = cache.disk_stats();
  EXPECT_EQ(recovered.spills, 1u);
  EXPECT_EQ(recovered.failed_spills, 1u);
  EXPECT_EQ(recovered.breaker_trips, 1u);

  // And the spill is real: a fresh cache warm-starts from it.
  RepairSpaceCache warm(DiskOptions(blocked.string()));
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&warm));
  EXPECT_EQ(warm.disk_stats().restores, 1u);
}

// ---------------------------------------------------------------------
// Concurrent spill while querying (TSan-gated in CI)
// ---------------------------------------------------------------------

TEST(StorageSnapshotTest, ConcurrentSpillWhileQueryingIsSafeAndIdentical) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/41);
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});

  TempDir dir;
  for (int round = 0; round < 3; ++round) {
    RepairSpaceCache cache(DiskOptions(dir.path()));
    EnumerationResult results[2];
    {
      std::thread queries([&] {
        for (EnumerationResult& result : results) {
          result = EnumerateRepairs(w.db, w.constraints, generator,
                                    MemoOptions(&cache));
        }
      });
      std::thread spiller([&] {
        // Race snapshots against live inserts: each spill serializes a
        // consistent point-in-time view of the striped table.
        for (int i = 0; i < 4; ++i) cache.Persist();
      });
      queries.join();
      spiller.join();
    }
    for (const EnumerationResult& result : results) {
      ExpectSameDistribution(result, base);
    }
  }
  // Whatever the interleaving, the final snapshot restores cleanly.
  RepairSpaceCache warm_cache(DiskOptions(dir.path()));
  EnumerationResult warm = EnumerateRepairs(w.db, w.constraints, generator,
                                            MemoOptions(&warm_cache));
  EXPECT_EQ(warm_cache.disk_stats().rejected_snapshots, 0u);
  EXPECT_EQ(warm_cache.disk_stats().restores, 1u);
  ExpectSameDistribution(warm, base);
}

}  // namespace
}  // namespace opcqa
