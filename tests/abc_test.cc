// Tests for the classical ABC repair baseline and certain answers.

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/abc.h"

namespace opcqa {
namespace {

TEST(ConflictHypergraphTest, EdgesAreViolationImages) {
  gen::Workload w = gen::PaperPreferenceExample();
  std::vector<std::vector<Fact>> edges =
      ConflictHypergraph(w.db, w.constraints);
  // Two symmetric conflicts: {(a,b),(b,a)} and {(a,c),(c,a)}.
  EXPECT_EQ(edges.size(), 2u);
  for (const auto& edge : edges) EXPECT_EQ(edge.size(), 2u);
}

TEST(AbcSubsetRepairsTest, ConsistentDatabaseIsItsOwnRepair) {
  Schema schema;
  schema.AddRelation("R", 2);
  Database db = *ParseDatabase(schema, "R(a,b).");
  ConstraintSet sigma = *ParseConstraints(schema, "R(x,y), R(x,z) -> y = z");
  Result<std::vector<Database>> repairs = AbcSubsetRepairs(db, sigma);
  ASSERT_TRUE(repairs.ok());
  ASSERT_EQ(repairs->size(), 1u);
  EXPECT_EQ((*repairs)[0], db);
}

TEST(AbcSubsetRepairsTest, KeyPairHasTwoClassicalRepairs) {
  // Unlike the operational semantics (which also reaches ∅), the ABC
  // semantics of {R(a,b), R(a,c)} has exactly the two max subsets.
  gen::Workload w = gen::PaperKeyPairExample();
  Result<std::vector<Database>> repairs = AbcRepairs(w.db, w.constraints);
  ASSERT_TRUE(repairs.ok());
  EXPECT_EQ(repairs->size(), 2u);
  for (const Database& r : *repairs) {
    EXPECT_EQ(r.size(), 1u);
    EXPECT_TRUE(Satisfies(r, w.constraints));
  }
}

TEST(AbcSubsetRepairsTest, PreferenceExampleHasFourRepairs) {
  gen::Workload w = gen::PaperPreferenceExample();
  Result<std::vector<Database>> repairs = AbcRepairs(w.db, w.constraints);
  ASSERT_TRUE(repairs.ok());
  // 2 independent conflicts × 2 choices each.
  EXPECT_EQ(repairs->size(), 4u);
  for (const Database& r : *repairs) {
    EXPECT_EQ(r.size(), 4u);  // 6 facts − 2 deletions
    EXPECT_TRUE(Satisfies(r, w.constraints));
  }
}

TEST(AbcSubsetRepairsTest, OverlappingConflictsThreeValues) {
  // R(a,b), R(a,c), R(a,d): repairs keep exactly one value.
  Schema schema;
  schema.AddRelation("R", 2);
  Database db = *ParseDatabase(schema, "R(a,b). R(a,c). R(a,d).");
  ConstraintSet sigma = *ParseConstraints(schema, "R(x,y), R(x,z) -> y = z");
  Result<std::vector<Database>> repairs = AbcSubsetRepairs(db, sigma);
  ASSERT_TRUE(repairs.ok());
  EXPECT_EQ(repairs->size(), 3u);
  for (const Database& r : *repairs) EXPECT_EQ(r.size(), 1u);
}

TEST(AbcSubsetRepairsTest, SingleFactEdgeForcesDeletionEverywhere) {
  // Pref(a,a) violates the DC alone: it is in no repair.
  Schema schema;
  schema.AddRelation("Pref", 2);
  Database db = *ParseDatabase(schema, "Pref(a,a). Pref(a,b).");
  ConstraintSet sigma =
      *ParseConstraints(schema, "Pref(x,y), Pref(y,x) -> false");
  Result<std::vector<Database>> repairs = AbcSubsetRepairs(db, sigma);
  ASSERT_TRUE(repairs.ok());
  ASSERT_EQ(repairs->size(), 1u);
  EXPECT_FALSE((*repairs)[0].Contains(Fact::Make(schema, "Pref", {"a", "a"})));
  EXPECT_TRUE((*repairs)[0].Contains(Fact::Make(schema, "Pref", {"a", "b"})));
}

TEST(AbcBruteForceTest, TinyInclusionHasDeleteAndInsertRepairs) {
  gen::Workload w = gen::TinyInclusionExample();
  Result<std::vector<Database>> repairs =
      AbcRepairsBruteForce(w.db, w.constraints);
  ASSERT_TRUE(repairs.ok()) << repairs.status().ToString();
  ASSERT_EQ(repairs->size(), 2u);
  // ∅ (delete U(a)) and {U(a), V(a)} (insert the witness).
  EXPECT_TRUE((*repairs)[0].empty());
  EXPECT_EQ((*repairs)[1].size(), 2u);
}

TEST(AbcBruteForceTest, RefusesHugeBases) {
  gen::Workload w = gen::PaperExample1();  // base has 45 facts
  Result<std::vector<Database>> repairs =
      AbcRepairsBruteForce(w.db, w.constraints);
  EXPECT_FALSE(repairs.ok());
  EXPECT_EQ(repairs.status().code(), StatusCode::kResourceExhausted);
}

TEST(AbcViaChainTest, Example1RepairsMatchHandComputation) {
  // D = {R(a,b), R(a,c), T(a,b)}, σ: R(x,y)→∃z S(x,y,z), key on R.
  // ABC repairs: keep one R-fact and add one witness (3 witnesses each),
  // or drop both R-facts: 3 + 3 + 1 = 7.
  gen::Workload w = gen::PaperExample1();
  Result<std::vector<Database>> repairs =
      AbcRepairsViaChain(w.db, w.constraints);
  ASSERT_TRUE(repairs.ok()) << repairs.status().ToString();
  EXPECT_EQ(repairs->size(), 7u);
  for (const Database& r : *repairs) {
    EXPECT_TRUE(Satisfies(r, w.constraints)) << r.ToString();
    EXPECT_TRUE(r.Contains(Fact::Make(*w.schema, "T", {"a", "b"})));
  }
}

TEST(AbcViaChainTest, Example2RepairsMatchHandComputation) {
  // Σ′ = {T(x,y)→R(x,y); key}. ABC repairs of {R(a,b),R(a,c),T(a,b)}:
  // {R(a,b),T(a,b)} (∆={R(a,c)}) and {R(a,c)} (∆={R(a,b),T(a,b)}).
  gen::Workload w = gen::PaperExample2();
  Result<std::vector<Database>> repairs =
      AbcRepairsViaChain(w.db, w.constraints);
  ASSERT_TRUE(repairs.ok()) << repairs.status().ToString();
  ASSERT_EQ(repairs->size(), 2u);
  Database keep_b(w.schema.get());
  keep_b.Insert(Fact::Make(*w.schema, "R", {"a", "b"}));
  keep_b.Insert(Fact::Make(*w.schema, "T", {"a", "b"}));
  Database keep_c(w.schema.get());
  keep_c.Insert(Fact::Make(*w.schema, "R", {"a", "c"}));
  EXPECT_TRUE(std::find(repairs->begin(), repairs->end(), keep_b) !=
              repairs->end());
  EXPECT_TRUE(std::find(repairs->begin(), repairs->end(), keep_c) !=
              repairs->end());
}

TEST(AbcViaChainTest, AgreesWithHypergraphOnDenialOnly) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, seed);
    Result<std::vector<Database>> hyper =
        AbcSubsetRepairs(w.db, w.constraints);
    Result<std::vector<Database>> chain =
        AbcRepairsViaChain(w.db, w.constraints);
    ASSERT_TRUE(hyper.ok() && chain.ok());
    EXPECT_EQ(*hyper, *chain) << "seed " << seed;
  }
}

TEST(AbcViaChainTest, AgreesWithBruteForceOnTinyTgd) {
  gen::Workload w = gen::TinyInclusionExample();
  Result<std::vector<Database>> brute =
      AbcRepairsBruteForce(w.db, w.constraints);
  Result<std::vector<Database>> chain =
      AbcRepairsViaChain(w.db, w.constraints);
  ASSERT_TRUE(brute.ok() && chain.ok());
  EXPECT_EQ(*brute, *chain);
}

TEST(CertainAnswersTest, IntersectionAcrossRepairs) {
  gen::Workload w = gen::PaperKeyPairExample();
  Result<std::vector<Database>> repairs = AbcRepairs(w.db, w.constraints);
  ASSERT_TRUE(repairs.ok());
  Result<Query> q_some = ParseQuery(*w.schema, "Q() := exists y R(a,y)");
  Result<Query> q_b = ParseQuery(*w.schema, "Q(y) := R(a,y)");
  ASSERT_TRUE(q_some.ok() && q_b.ok());
  // ∃y R(a,y) holds in both repairs → certain.
  EXPECT_EQ(CertainAnswers(*repairs, *q_some).size(), 1u);
  // No specific value is in both repairs.
  EXPECT_TRUE(CertainAnswers(*repairs, *q_b).empty());
}

TEST(CertainAnswersTest, EmptyRepairListGivesEmptyAnswers) {
  gen::Workload w = gen::PaperKeyPairExample();
  Result<Query> q = ParseQuery(*w.schema, "Q() := true");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(CertainAnswers({}, *q).empty());
}

TEST(AbcDispatchTest, RoutesByConstraintClass) {
  // Denial-only → hypergraph path (works on big-ish instances).
  gen::Workload keys = gen::MakeKeyViolationWorkload(10, 4, 2, 1);
  EXPECT_TRUE(AbcRepairs(keys.db, keys.constraints).ok());
  // Tiny TGD → brute force path.
  gen::Workload tiny = gen::TinyInclusionExample();
  EXPECT_TRUE(AbcRepairs(tiny.db, tiny.constraints).ok());
  // Big TGD → via-chain path.
  gen::Workload ex1 = gen::PaperExample1();
  Result<std::vector<Database>> repairs = AbcRepairs(ex1.db, ex1.constraints);
  ASSERT_TRUE(repairs.ok());
  EXPECT_EQ(repairs->size(), 7u);
}

}  // namespace
}  // namespace opcqa
