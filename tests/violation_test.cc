// Tests for V(D,Σ) — Definition 2 — including the worked Example 1.

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "constraints/violation.h"
#include "gen/workloads.h"
#include "relational/fact_parser.h"

namespace opcqa {
namespace {

class ViolationTest : public ::testing::Test {
 protected:
  ViolationTest() {
    schema_.AddRelation("R", 2);
    schema_.AddRelation("S", 3);
    schema_.AddRelation("T", 2);
  }
  Schema schema_;
};

TEST_F(ViolationTest, NoViolationsOnConsistentDatabase) {
  ConstraintSet sigma =
      *ParseConstraints(schema_, "R(x,y), R(x,z) -> y = z");
  Database db = *ParseDatabase(schema_, "R(a,b). R(c,d).");
  EXPECT_TRUE(ComputeViolations(db, sigma).empty());
}

TEST_F(ViolationTest, EgdViolationsComeInSymmetricPairs) {
  // h = {x→a,y→b,z→c} and h' = {x→a,y→c,z→b} are distinct violations of
  // the same key (the paper's Example 1 lists both h2 and h3).
  ConstraintSet sigma =
      *ParseConstraints(schema_, "R(x,y), R(x,z) -> y = z");
  Database db = *ParseDatabase(schema_, "R(a,b). R(a,c).");
  ViolationSet violations = ComputeViolations(db, sigma);
  EXPECT_EQ(violations.size(), 2u);
}

TEST_F(ViolationTest, Example1ViolationInventory) {
  // Example 1: D = {R(a,b), R(a,c), T(a,b)}, Σ = {σ, η}. The example names
  // (σ,h1) with h1 = {x→a, y→b}, and (η,h2), (η,h3). σ is violated for
  // both R-facts, so |V| = 2 (σ) + 2 (η) = 4.
  gen::Workload w = gen::PaperExample1();
  ViolationSet violations = ComputeViolations(w.db, w.constraints);
  EXPECT_EQ(violations.size(), 4u);
  size_t tgd_violations = 0, egd_violations = 0;
  for (const Violation& v : violations) {
    if (w.constraints[v.constraint_index].is_tgd()) ++tgd_violations;
    if (w.constraints[v.constraint_index].is_egd()) ++egd_violations;
  }
  EXPECT_EQ(tgd_violations, 2u);
  EXPECT_EQ(egd_violations, 2u);
}

TEST_F(ViolationTest, TgdViolationDisappearsWithWitness) {
  ConstraintSet sigma =
      *ParseConstraints(schema_, "R(x,y) -> exists z: S(x,y,z)");
  Database db = *ParseDatabase(schema_, "R(a,b).");
  EXPECT_EQ(ComputeViolations(db, sigma).size(), 1u);
  db.Insert(Fact::Make(schema_, "S", {"a", "b", "w"}));
  EXPECT_TRUE(ComputeViolations(db, sigma).empty());
}

TEST_F(ViolationTest, IsViolationRechecksAgainstOtherDatabase) {
  ConstraintSet sigma =
      *ParseConstraints(schema_, "R(x,y), R(x,z) -> y = z");
  Database db = *ParseDatabase(schema_, "R(a,b). R(a,c).");
  ViolationSet violations = ComputeViolations(db, sigma);
  ASSERT_FALSE(violations.empty());
  const Violation& v = *violations.begin();
  EXPECT_TRUE(IsViolation(db, sigma, v));
  // After deleting R(a,c) the violation's body image is gone.
  Database repaired = db;
  repaired.Erase(Fact::Make(schema_, "R", {"a", "c"}));
  EXPECT_FALSE(IsViolation(repaired, sigma, v));
}

TEST_F(ViolationTest, IsViolationDetectsNewWitness) {
  ConstraintSet sigma =
      *ParseConstraints(schema_, "R(x,y) -> exists z: S(x,y,z)");
  Database db = *ParseDatabase(schema_, "R(a,b).");
  ViolationSet violations = ComputeViolations(db, sigma);
  ASSERT_EQ(violations.size(), 1u);
  const Violation& v = *violations.begin();
  Database with_witness = db;
  with_witness.Insert(Fact::Make(schema_, "S", {"a", "b", "w"}));
  EXPECT_FALSE(IsViolation(with_witness, sigma, v));
}

TEST_F(ViolationTest, BodyImageIsSortedSetOfFacts) {
  ConstraintSet sigma =
      *ParseConstraints(schema_, "R(x,y), R(y,x) -> false");
  Database db = *ParseDatabase(schema_, "R(a,b). R(b,a).");
  ViolationSet violations = ComputeViolations(db, sigma);
  ASSERT_FALSE(violations.empty());
  for (const Violation& v : violations) {
    std::vector<Fact> image = BodyImage(sigma, v);
    EXPECT_EQ(image.size(), 2u);
    EXPECT_TRUE(std::is_sorted(image.begin(), image.end()));
  }
}

TEST_F(ViolationTest, SelfLoopBodyImageCollapsesToOneFact) {
  ConstraintSet sigma =
      *ParseConstraints(schema_, "R(x,y), R(y,x) -> false");
  Database db = *ParseDatabase(schema_, "R(a,a).");
  ViolationSet violations = ComputeViolations(db, sigma);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(BodyImage(sigma, *violations.begin()).size(), 1u);
}

TEST_F(ViolationTest, ViolationOrderingIsStable) {
  ConstraintSet sigma =
      *ParseConstraints(schema_, "R(x,y), R(x,z) -> y = z");
  Database db = *ParseDatabase(schema_, "R(a,b). R(a,c). R(a,d).");
  ViolationSet v1 = ComputeViolations(db, sigma);
  ViolationSet v2 = ComputeViolations(db, sigma);
  EXPECT_EQ(v1, v2);
  // 3 conflicting values → ordered pairs (y,z), y≠z: 6 violations.
  EXPECT_EQ(v1.size(), 6u);
}

TEST_F(ViolationTest, ToStringMentionsLabelAndImage) {
  ConstraintSet sigma =
      *ParseConstraints(schema_, "key: R(x,y), R(x,z) -> y = z");
  Database db = *ParseDatabase(schema_, "R(a,b). R(a,c).");
  ViolationSet violations = ComputeViolations(db, sigma);
  ASSERT_FALSE(violations.empty());
  std::string s = violations.begin()->ToString(schema_, sigma);
  EXPECT_NE(s.find("key"), std::string::npos);
  EXPECT_NE(s.find("R(a,b)"), std::string::npos);
}

}  // namespace
}  // namespace opcqa
