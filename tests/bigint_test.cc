#include "util/bigint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace opcqa {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.ToInt64(), 0);
}

TEST(BigIntTest, FromInt64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-42}, int64_t{1} << 40, -(int64_t{1} << 40),
                    std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()}) {
    BigInt b(v);
    EXPECT_TRUE(b.FitsInt64()) << v;
    EXPECT_EQ(b.ToInt64(), v);
  }
}

TEST(BigIntTest, FromUint64) {
  BigInt b(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(b.ToString(), "18446744073709551615");
  EXPECT_FALSE(b.FitsInt64());
}

TEST(BigIntTest, FromStringParsesSignedDecimals) {
  EXPECT_EQ(BigInt::FromString("0")->ToInt64(), 0);
  EXPECT_EQ(BigInt::FromString("-12345")->ToInt64(), -12345);
  EXPECT_EQ(BigInt::FromString("+7")->ToInt64(), 7);
  EXPECT_EQ(BigInt::FromString("123456789012345678901234567890")->ToString(),
            "123456789012345678901234567890");
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt(std::numeric_limits<uint64_t>::max());
  BigInt one(int64_t{1});
  EXPECT_EQ((a + one).ToString(), "18446744073709551616");
}

TEST(BigIntTest, SubtractionAndSigns) {
  BigInt a(int64_t{100});
  BigInt b(int64_t{250});
  EXPECT_EQ((a - b).ToInt64(), -150);
  EXPECT_EQ((b - a).ToInt64(), 150);
  EXPECT_EQ((a - a).ToInt64(), 0);
  EXPECT_FALSE((a - a).is_negative());
}

TEST(BigIntTest, MixedSignAddition) {
  EXPECT_EQ((BigInt(-5) + BigInt(3)).ToInt64(), -2);
  EXPECT_EQ((BigInt(5) + BigInt(-3)).ToInt64(), 2);
  EXPECT_EQ((BigInt(-5) + BigInt(-3)).ToInt64(), -8);
  EXPECT_EQ((BigInt(-5) + BigInt(5)).ToInt64(), 0);
}

TEST(BigIntTest, MultiplicationSchoolbook) {
  BigInt a = *BigInt::FromString("123456789123456789");
  BigInt b = *BigInt::FromString("987654321987654321");
  EXPECT_EQ((a * b).ToString(), "121932631356500531347203169112635269");
}

TEST(BigIntTest, MultiplicationSigns) {
  EXPECT_EQ((BigInt(-3) * BigInt(4)).ToInt64(), -12);
  EXPECT_EQ((BigInt(-3) * BigInt(-4)).ToInt64(), 12);
  EXPECT_EQ((BigInt(0) * BigInt(-4)).ToInt64(), 0);
  EXPECT_FALSE((BigInt(0) * BigInt(-4)).is_negative());
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToInt64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToInt64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToInt64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).ToInt64(), 3);
}

TEST(BigIntTest, RemainderFollowsDividendSign) {
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToInt64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToInt64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToInt64(), 1);
}

TEST(BigIntTest, LargeDivMod) {
  BigInt a = *BigInt::FromString("121932631356500531347203169112635269");
  BigInt b = *BigInt::FromString("123456789123456789");
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q.ToString(), "987654321987654321");
  EXPECT_TRUE(r.is_zero());
  // Non-exact division: a+1.
  BigInt::DivMod(a + BigInt(1), b, &q, &r);
  EXPECT_EQ(q.ToString(), "987654321987654321");
  EXPECT_EQ(r.ToInt64(), 1);
}

TEST(BigIntTest, DivModInvariantQuotientTimesDivisorPlusRemainder) {
  // Property: a == q*b + r with |r| < |b|, across sign combinations.
  for (int64_t av : {12345, -12345}) {
    for (int64_t bv : {7, -7, 123, -123}) {
      BigInt a(av), b(bv), q, r;
      BigInt::DivMod(a, b, &q, &r);
      EXPECT_EQ(q * b + r, a) << av << "/" << bv;
      EXPECT_LT(r.Abs(), b.Abs());
    }
  }
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(5), BigInt(0)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToInt64(), 0);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToInt64(), 1);
}

TEST(BigIntTest, PowSmallExponents) {
  EXPECT_EQ(BigInt(2).Pow(10).ToInt64(), 1024);
  EXPECT_EQ(BigInt(10).Pow(0).ToInt64(), 1);
  EXPECT_EQ(BigInt(3).Pow(40).ToString(), "12157665459056928801");
  EXPECT_EQ(BigInt(-2).Pow(3).ToInt64(), -8);
}

TEST(BigIntTest, CompareTotalOrder) {
  BigInt values[] = {BigInt(-100), BigInt(-1), BigInt(0), BigInt(1),
                     *BigInt::FromString("99999999999999999999")};
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(values[i] < values[j], i < j);
      EXPECT_EQ(values[i] == values[j], i == j);
    }
  }
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt(2).Pow(100).BitLength(), 101u);
}

TEST(BigIntTest, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigInt(0).ToDouble(), 0.0);
  EXPECT_DOUBLE_EQ(BigInt(12345).ToDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-12345).ToDouble(), -12345.0);
  double big = BigInt(2).Pow(100).ToDouble();
  EXPECT_NEAR(big, std::ldexp(1.0, 100), std::ldexp(1.0, 60));
}

TEST(BigIntTest, HashEqualValuesAgree) {
  BigInt a = *BigInt::FromString("123456789012345678901234567890");
  BigInt b = *BigInt::FromString("123456789012345678901234567890");
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), (-a).Hash());
}

TEST(BigIntTest, ToStringRoundTripProperty) {
  // Property: FromString(ToString(x)) == x for a spread of magnitudes.
  BigInt x(int64_t{1});
  for (int i = 0; i < 30; ++i) {
    x = x * BigInt(123456789) + BigInt(987654321);
    EXPECT_EQ(*BigInt::FromString(x.ToString()), x);
    EXPECT_EQ(*BigInt::FromString((-x).ToString()), -x);
  }
}

// Parameterized: arithmetic consistency against int64 for small operands.
class BigIntSmallArithTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(BigIntSmallArithTest, MatchesNativeArithmetic) {
  auto [a, b] = GetParam();
  EXPECT_EQ((BigInt(a) + BigInt(b)).ToInt64(), a + b);
  EXPECT_EQ((BigInt(a) - BigInt(b)).ToInt64(), a - b);
  EXPECT_EQ((BigInt(a) * BigInt(b)).ToInt64(), a * b);
  if (b != 0) {
    EXPECT_EQ((BigInt(a) / BigInt(b)).ToInt64(), a / b);
    EXPECT_EQ((BigInt(a) % BigInt(b)).ToInt64(), a % b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, BigIntSmallArithTest,
    ::testing::Values(std::pair<int64_t, int64_t>{0, 0},
                      std::pair<int64_t, int64_t>{1, -1},
                      std::pair<int64_t, int64_t>{17, 5},
                      std::pair<int64_t, int64_t>{-17, 5},
                      std::pair<int64_t, int64_t>{17, -5},
                      std::pair<int64_t, int64_t>{-17, -5},
                      std::pair<int64_t, int64_t>{1000000007, 998244353},
                      std::pair<int64_t, int64_t>{-1000000007, 3},
                      std::pair<int64_t, int64_t>{123456, 789},
                      std::pair<int64_t, int64_t>{1, 1000000000}));

}  // namespace
}  // namespace opcqa
