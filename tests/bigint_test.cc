#include "util/bigint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace opcqa {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.ToInt64(), 0);
}

TEST(BigIntTest, FromInt64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-42}, int64_t{1} << 40, -(int64_t{1} << 40),
                    std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()}) {
    BigInt b(v);
    EXPECT_TRUE(b.FitsInt64()) << v;
    EXPECT_EQ(b.ToInt64(), v);
  }
}

TEST(BigIntTest, FromUint64) {
  BigInt b(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(b.ToString(), "18446744073709551615");
  EXPECT_FALSE(b.FitsInt64());
}

TEST(BigIntTest, FromStringParsesSignedDecimals) {
  EXPECT_EQ(BigInt::FromString("0")->ToInt64(), 0);
  EXPECT_EQ(BigInt::FromString("-12345")->ToInt64(), -12345);
  EXPECT_EQ(BigInt::FromString("+7")->ToInt64(), 7);
  EXPECT_EQ(BigInt::FromString("123456789012345678901234567890")->ToString(),
            "123456789012345678901234567890");
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt(std::numeric_limits<uint64_t>::max());
  BigInt one(int64_t{1});
  EXPECT_EQ((a + one).ToString(), "18446744073709551616");
}

TEST(BigIntTest, SubtractionAndSigns) {
  BigInt a(int64_t{100});
  BigInt b(int64_t{250});
  EXPECT_EQ((a - b).ToInt64(), -150);
  EXPECT_EQ((b - a).ToInt64(), 150);
  EXPECT_EQ((a - a).ToInt64(), 0);
  EXPECT_FALSE((a - a).is_negative());
}

TEST(BigIntTest, MixedSignAddition) {
  EXPECT_EQ((BigInt(-5) + BigInt(3)).ToInt64(), -2);
  EXPECT_EQ((BigInt(5) + BigInt(-3)).ToInt64(), 2);
  EXPECT_EQ((BigInt(-5) + BigInt(-3)).ToInt64(), -8);
  EXPECT_EQ((BigInt(-5) + BigInt(5)).ToInt64(), 0);
}

TEST(BigIntTest, MultiplicationSchoolbook) {
  BigInt a = *BigInt::FromString("123456789123456789");
  BigInt b = *BigInt::FromString("987654321987654321");
  EXPECT_EQ((a * b).ToString(), "121932631356500531347203169112635269");
}

TEST(BigIntTest, MultiplicationSigns) {
  EXPECT_EQ((BigInt(-3) * BigInt(4)).ToInt64(), -12);
  EXPECT_EQ((BigInt(-3) * BigInt(-4)).ToInt64(), 12);
  EXPECT_EQ((BigInt(0) * BigInt(-4)).ToInt64(), 0);
  EXPECT_FALSE((BigInt(0) * BigInt(-4)).is_negative());
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToInt64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToInt64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToInt64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).ToInt64(), 3);
}

TEST(BigIntTest, RemainderFollowsDividendSign) {
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToInt64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToInt64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToInt64(), 1);
}

TEST(BigIntTest, LargeDivMod) {
  BigInt a = *BigInt::FromString("121932631356500531347203169112635269");
  BigInt b = *BigInt::FromString("123456789123456789");
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q.ToString(), "987654321987654321");
  EXPECT_TRUE(r.is_zero());
  // Non-exact division: a+1.
  BigInt::DivMod(a + BigInt(1), b, &q, &r);
  EXPECT_EQ(q.ToString(), "987654321987654321");
  EXPECT_EQ(r.ToInt64(), 1);
}

TEST(BigIntTest, DivModInvariantQuotientTimesDivisorPlusRemainder) {
  // Property: a == q*b + r with |r| < |b|, across sign combinations.
  for (int64_t av : {12345, -12345}) {
    for (int64_t bv : {7, -7, 123, -123}) {
      BigInt a(av), b(bv), q, r;
      BigInt::DivMod(a, b, &q, &r);
      EXPECT_EQ(q * b + r, a) << av << "/" << bv;
      EXPECT_LT(r.Abs(), b.Abs());
    }
  }
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(5), BigInt(0)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToInt64(), 0);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToInt64(), 1);
}

TEST(BigIntTest, PowSmallExponents) {
  EXPECT_EQ(BigInt(2).Pow(10).ToInt64(), 1024);
  EXPECT_EQ(BigInt(10).Pow(0).ToInt64(), 1);
  EXPECT_EQ(BigInt(3).Pow(40).ToString(), "12157665459056928801");
  EXPECT_EQ(BigInt(-2).Pow(3).ToInt64(), -8);
}

TEST(BigIntTest, CompareTotalOrder) {
  BigInt values[] = {BigInt(-100), BigInt(-1), BigInt(0), BigInt(1),
                     *BigInt::FromString("99999999999999999999")};
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(values[i] < values[j], i < j);
      EXPECT_EQ(values[i] == values[j], i == j);
    }
  }
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt(2).Pow(100).BitLength(), 101u);
}

TEST(BigIntTest, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigInt(0).ToDouble(), 0.0);
  EXPECT_DOUBLE_EQ(BigInt(12345).ToDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-12345).ToDouble(), -12345.0);
  double big = BigInt(2).Pow(100).ToDouble();
  EXPECT_NEAR(big, std::ldexp(1.0, 100), std::ldexp(1.0, 60));
}

TEST(BigIntTest, HashEqualValuesAgree) {
  BigInt a = *BigInt::FromString("123456789012345678901234567890");
  BigInt b = *BigInt::FromString("123456789012345678901234567890");
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), (-a).Hash());
}

TEST(BigIntTest, ToStringRoundTripProperty) {
  // Property: FromString(ToString(x)) == x for a spread of magnitudes.
  BigInt x(int64_t{1});
  for (int i = 0; i < 30; ++i) {
    x = x * BigInt(123456789) + BigInt(987654321);
    EXPECT_EQ(*BigInt::FromString(x.ToString()), x);
    EXPECT_EQ(*BigInt::FromString((-x).ToString()), -x);
  }
}

// ---------------------------------------------------------------------
// Small-value fast paths: ≤64-bit operands route through native/128-bit
// arithmetic; these cases pin the fast path to the general (big) path at
// the boundaries where the routing decision flips.
// ---------------------------------------------------------------------

TEST(BigIntFastPathTest, TwoLimbTimesTwoLimbMatchesSchoolbook) {
  // Largest two-limb magnitudes: the product needs four limbs.
  BigInt max64(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ((max64 * max64).ToString(),
            "340282366920938463426481119284349108225");
  EXPECT_EQ(((-max64) * max64).ToString(),
            "-340282366920938463426481119284349108225");
  // One limb × two limbs across the carry boundary.
  BigInt limb(uint64_t{0xffffffffu});
  BigInt over(uint64_t{1} << 32);
  EXPECT_EQ((limb * over).ToString(), "18446744069414584320");
  // Fast path × zero.
  EXPECT_TRUE((max64 * BigInt(0)).is_zero());
  // (a*b)/b == a and (a*b)%b == 0 right at the uint64 edge.
  EXPECT_EQ((max64 * limb) / limb, max64);
  EXPECT_TRUE(((max64 * limb) % limb).is_zero());
}

TEST(BigIntFastPathTest, U64DivModAgreesWithWideDivision) {
  BigInt max64(std::numeric_limits<uint64_t>::max());
  BigInt divisor(uint64_t{0x100000001u});  // straddles the limb boundary
  BigInt q, r;
  BigInt::DivMod(max64, divisor, &q, &r);
  EXPECT_EQ(q * divisor + r, max64);
  EXPECT_LT(r, divisor);
  // The same dividend pushed past two limbs exercises the wide path; the
  // two paths must agree on a shared sub-instance.
  BigInt wide = max64 * BigInt(7) + BigInt(3);
  BigInt wq, wr;
  BigInt::DivMod(wide, max64, &wq, &wr);
  EXPECT_EQ(wq, BigInt(7));
  EXPECT_EQ(wr, BigInt(3));
}

TEST(BigIntFastPathTest, GcdNativeAndWideAgree) {
  // Both operands ≤64-bit → fully native Euclid.
  BigInt a(static_cast<uint64_t>(uint64_t{2} * 3 * 5 * 7 * 11 * 1000000007u));
  BigInt b(static_cast<uint64_t>(uint64_t{3} * 7 * 13 * 998244353u));
  EXPECT_EQ(BigInt::Gcd(a, b), BigInt(21));
  EXPECT_EQ(BigInt::Gcd(-a, b), BigInt::Gcd(a, -b));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), b), b);
  // Wide operands contract into the native finish: gcd(2^100·3, 2^90·5)
  // = 2^90.
  BigInt wide_a = BigInt(2).Pow(100) * BigInt(3);
  BigInt wide_b = BigInt(2).Pow(90) * BigInt(5);
  EXPECT_EQ(BigInt::Gcd(wide_a, wide_b), BigInt(2).Pow(90));
}

TEST(BigIntFastPathTest, CompoundAssignmentMutatesInPlace) {
  // Accumulation loop: += over mixed signs, crossing zero and the limb
  // boundary, stays equal to the rebuilt value.
  BigInt acc(0);
  BigInt check(0);
  int64_t deltas[] = {std::numeric_limits<int64_t>::max(), -1, 1,
                      -std::numeric_limits<int64_t>::max(), 42, -100};
  for (int64_t d : deltas) {
    acc += BigInt(d);
    check = check + BigInt(d);
    EXPECT_EQ(acc, check) << d;
  }
  acc -= BigInt(-58);
  EXPECT_EQ(acc, BigInt(0));
  // Multiplicative accumulation through the 64→128-bit boundary.
  BigInt prod(std::numeric_limits<uint64_t>::max());
  prod *= prod;  // self-aliasing
  EXPECT_EQ(prod, BigInt(std::numeric_limits<uint64_t>::max()) *
                      BigInt(std::numeric_limits<uint64_t>::max()));
  prod *= BigInt(-3);
  EXPECT_EQ(prod.ToString(),
            "-1020847100762815390279443357853047324675");
  prod /= BigInt(-3);
  prod %= prod + BigInt(1);
  EXPECT_EQ(prod, BigInt(std::numeric_limits<uint64_t>::max()) *
                      BigInt(std::numeric_limits<uint64_t>::max()));
}

TEST(BigIntFastPathTest, SignSurvivesCarryIntoBit64) {
  // Same-sign magnitudes summing to exactly 2^64 wrap the native uint64
  // to 0; the sign must come from the carry-aware magnitude, not the
  // wrapped low bits.
  BigInt min64(std::numeric_limits<int64_t>::min());
  EXPECT_EQ((min64 + min64).ToString(), "-18446744073709551616");
  EXPECT_EQ((min64 - (-min64)).ToString(), "-18446744073709551616");
  BigInt half(uint64_t{1} << 63);
  EXPECT_EQ((half + half).ToString(), "18446744073709551616");
  EXPECT_EQ(((-half) - half).ToString(), "-18446744073709551616");
}

TEST(BigIntFastPathTest, CompoundSelfAliasing) {
  BigInt x(12345);
  x += x;
  EXPECT_EQ(x, BigInt(24690));
  x -= x;
  EXPECT_TRUE(x.is_zero());
  BigInt y(-7);
  y *= y;
  EXPECT_EQ(y, BigInt(49));
  y /= y;
  EXPECT_EQ(y, BigInt(1));
  y %= y;
  EXPECT_TRUE(y.is_zero());
  // Wide self-aliasing too (schoolbook path).
  BigInt w = BigInt(2).Pow(100);
  w += w;
  EXPECT_EQ(w, BigInt(2).Pow(101));
  w *= w;
  EXPECT_EQ(w, BigInt(2).Pow(202));
}

TEST(BigIntFastPathTest, InPlaceDivisionSigns) {
  BigInt a(-17);
  a /= BigInt(5);
  EXPECT_EQ(a, BigInt(-3));  // truncation toward zero
  BigInt b(-17);
  b %= BigInt(5);
  EXPECT_EQ(b, BigInt(-2));  // remainder keeps the dividend's sign
  BigInt c(17);
  c /= BigInt(-5);
  EXPECT_EQ(c, BigInt(-3));
  BigInt d(15);
  d /= BigInt(-5);
  EXPECT_EQ(d, BigInt(-3));
  BigInt e(4);
  e /= BigInt(-5);
  EXPECT_TRUE(e.is_zero());
  EXPECT_FALSE(e.is_negative());  // no negative zero
}

// Parameterized: arithmetic consistency against int64 for small operands.
class BigIntSmallArithTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(BigIntSmallArithTest, MatchesNativeArithmetic) {
  auto [a, b] = GetParam();
  EXPECT_EQ((BigInt(a) + BigInt(b)).ToInt64(), a + b);
  EXPECT_EQ((BigInt(a) - BigInt(b)).ToInt64(), a - b);
  EXPECT_EQ((BigInt(a) * BigInt(b)).ToInt64(), a * b);
  if (b != 0) {
    EXPECT_EQ((BigInt(a) / BigInt(b)).ToInt64(), a / b);
    EXPECT_EQ((BigInt(a) % BigInt(b)).ToInt64(), a % b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, BigIntSmallArithTest,
    ::testing::Values(std::pair<int64_t, int64_t>{0, 0},
                      std::pair<int64_t, int64_t>{1, -1},
                      std::pair<int64_t, int64_t>{17, 5},
                      std::pair<int64_t, int64_t>{-17, 5},
                      std::pair<int64_t, int64_t>{17, -5},
                      std::pair<int64_t, int64_t>{-17, -5},
                      std::pair<int64_t, int64_t>{1000000007, 998244353},
                      std::pair<int64_t, int64_t>{-1000000007, 3},
                      std::pair<int64_t, int64_t>{123456, 789},
                      std::pair<int64_t, int64_t>{1, 1000000000}));

}  // namespace
}  // namespace opcqa
