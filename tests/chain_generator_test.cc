// Tests for chain generators — Definition 5 stochasticity, the uniform
// generator of Proposition 4, Example 4 (preference) and Example 5 (trust).

#include <gtest/gtest.h>

#include "gen/workloads.h"
#include "repair/preference_generator.h"
#include "repair/trust_generator.h"

namespace opcqa {
namespace {

RepairingState RootState(const gen::Workload& w) {
  return RepairingState(RepairContext::Make(w.db, w.constraints));
}

TEST(ChainGeneratorTest, UniformDistributesEqually) {
  gen::Workload w = gen::PaperKeyPairExample();
  RepairingState root = RootState(w);
  std::vector<Operation> exts = root.ValidExtensions();
  ASSERT_EQ(exts.size(), 3u);
  UniformChainGenerator gen;
  std::vector<Rational> probs = CheckedProbabilities(gen, root, exts);
  for (const Rational& p : probs) EXPECT_EQ(p, Rational(1, 3));
}

TEST(ChainGeneratorTest, DeletionOnlyUniformExcludesAdditions) {
  gen::Workload w = gen::PaperExample1();
  RepairingState root = RootState(w);
  std::vector<Operation> exts = root.ValidExtensions();
  DeletionOnlyUniformGenerator gen;
  EXPECT_TRUE(gen.supports_only_deletions());
  std::vector<Rational> probs = CheckedProbabilities(gen, root, exts);
  size_t deletions = 0;
  for (size_t i = 0; i < exts.size(); ++i) {
    if (exts[i].is_add()) {
      EXPECT_TRUE(probs[i].is_zero());
    } else {
      ++deletions;
      EXPECT_FALSE(probs[i].is_zero());
    }
  }
  EXPECT_GT(deletions, 0u);
}

TEST(ChainGeneratorTest, LambdaGeneratorWrapsFunction) {
  gen::Workload w = gen::PaperKeyPairExample();
  RepairingState root = RootState(w);
  std::vector<Operation> exts = root.ValidExtensions();
  LambdaChainGenerator gen(
      "first-always",
      [](const RepairingState&, const std::vector<Operation>& ops) {
        std::vector<Rational> probs(ops.size(), Rational(0));
        probs[0] = Rational(1);
        return probs;
      });
  EXPECT_EQ(gen.name(), "first-always");
  std::vector<Rational> probs = CheckedProbabilities(gen, root, exts);
  EXPECT_EQ(probs[0], Rational(1));
}

// ---- Example 4: the preference generator reproduces the figure's edges.

TEST(PreferenceGeneratorTest, RootEdgeProbabilitiesMatchFigure) {
  gen::Workload w = gen::PaperPreferenceExample();
  PredId pref = w.schema->RelationOrDie("Pref");
  RepairingState root = RootState(w);
  std::vector<Operation> exts = root.ValidExtensions();
  PreferenceChainGenerator gen(pref);
  std::vector<Rational> probs = CheckedProbabilities(gen, root, exts);

  auto prob_of = [&](const char* x, const char* y) -> Rational {
    Operation op = Operation::Remove({Fact::Make(*w.schema, "Pref", {x, y})});
    for (size_t i = 0; i < exts.size(); ++i) {
      if (exts[i] == op) return probs[i];
    }
    ADD_FAILURE() << "extension not found: " << op.ToString(*w.schema);
    return Rational(-1);
  };
  // The figure: −(a,b): 2/9, −(b,a): 3/9, −(a,c): 1/9, −(c,a): 3/9.
  EXPECT_EQ(prob_of("a", "b"), Rational(2, 9));
  EXPECT_EQ(prob_of("b", "a"), Rational(3, 9));
  EXPECT_EQ(prob_of("a", "c"), Rational(1, 9));
  EXPECT_EQ(prob_of("c", "a"), Rational(3, 9));
}

TEST(PreferenceGeneratorTest, SecondLevelMatchesFigure) {
  gen::Workload w = gen::PaperPreferenceExample();
  PredId pref = w.schema->RelationOrDie("Pref");
  RepairingState state = RootState(w);
  // Follow the figure's branch −(b,a).
  state.Apply(Operation::Remove({Fact::Make(*w.schema, "Pref", {"b", "a"})}));
  std::vector<Operation> exts = state.ValidExtensions();
  PreferenceChainGenerator gen(pref);
  std::vector<Rational> probs = CheckedProbabilities(gen, state, exts);
  auto prob_of = [&](const char* x, const char* y) -> Rational {
    Operation op = Operation::Remove({Fact::Make(*w.schema, "Pref", {x, y})});
    for (size_t i = 0; i < exts.size(); ++i) {
      if (exts[i] == op) return probs[i];
    }
    return Rational(-1);
  };
  // Figure: after −(b,a): −(a,c) has 1/4, −(c,a) has 3/4.
  EXPECT_EQ(prob_of("a", "c"), Rational(1, 4));
  EXPECT_EQ(prob_of("c", "a"), Rational(3, 4));
}

TEST(PreferenceGeneratorTest, PairDeletionsGetZero) {
  gen::Workload w = gen::PaperPreferenceExample();
  PredId pref = w.schema->RelationOrDie("Pref");
  RepairingState root = RootState(w);
  std::vector<Operation> exts = root.ValidExtensions();
  PreferenceChainGenerator gen(pref);
  std::vector<Rational> probs = gen.Probabilities(root, exts);
  for (size_t i = 0; i < exts.size(); ++i) {
    if (exts[i].size() > 1) {
      EXPECT_TRUE(probs[i].is_zero());
    }
  }
}

// ---- Example 5: the trust generator.

TEST(TrustGeneratorTest, EqualTrustGivesIntroductionNumbers) {
  gen::Workload w = gen::PaperKeyPairExample();
  RepairingState root = RootState(w);
  std::vector<Operation> exts = root.ValidExtensions();
  ASSERT_EQ(exts.size(), 3u);
  // tr = 1/2 for both facts (the introduction's 50% reliable sources).
  TrustChainGenerator gen({}, Rational(1, 2));
  std::vector<Rational> probs = CheckedProbabilities(gen, root, exts);
  Fact ab = Fact::Make(*w.schema, "R", {"a", "b"});
  Fact ac = Fact::Make(*w.schema, "R", {"a", "c"});
  for (size_t i = 0; i < exts.size(); ++i) {
    if (exts[i] == Operation::Remove({ab}) ||
        exts[i] == Operation::Remove({ac})) {
      EXPECT_EQ(probs[i], Rational(3, 8)) << "single deletions get 0.375";
    } else {
      EXPECT_EQ(probs[i], Rational(1, 4)) << "pair deletion gets 0.25";
    }
  }
}

TEST(TrustGeneratorTest, HigherTrustIsKeptMoreOften) {
  gen::Workload w = gen::PaperKeyPairExample();
  Fact ab = Fact::Make(*w.schema, "R", {"a", "b"});
  Fact ac = Fact::Make(*w.schema, "R", {"a", "c"});
  TrustChainGenerator gen({{ab, Rational(9, 10)}, {ac, Rational(1, 10)}});
  RepairingState root = RootState(w);
  std::vector<Operation> exts = root.ValidExtensions();
  std::vector<Rational> probs = CheckedProbabilities(gen, root, exts);
  Rational p_drop_ab, p_drop_ac;
  for (size_t i = 0; i < exts.size(); ++i) {
    if (exts[i] == Operation::Remove({ab})) p_drop_ab = probs[i];
    if (exts[i] == Operation::Remove({ac})) p_drop_ac = probs[i];
  }
  // The trusted fact ab is dropped less often than the untrusted ac.
  EXPECT_LT(p_drop_ab, p_drop_ac);
}

TEST(TrustGeneratorTest, RelativeTrustFormula) {
  TrustChainGenerator gen({}, Rational(1, 2));
  Schema schema;
  schema.AddRelation("R", 2);
  Fact ab = Fact::Make(schema, "R", {"a", "b"});
  Fact ac = Fact::Make(schema, "R", {"a", "c"});
  EXPECT_EQ(gen.RelativeTrust(ab, ac), Rational(1, 2));
  TrustChainGenerator skewed({{ab, Rational(3, 4)}, {ac, Rational(1, 4)}});
  EXPECT_EQ(skewed.RelativeTrust(ab, ac), Rational(3, 4));
  EXPECT_EQ(skewed.RelativeTrust(ac, ab), Rational(1, 4));
}

TEST(TrustGeneratorTest, MultiplePairsStillSumToOne) {
  // Two violating keys: the normalization over |VΣ| must keep the total 1
  // (checked internally by CheckedProbabilities).
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/7);
  RepairingState root = RootState(w);
  std::vector<Operation> exts = root.ValidExtensions();
  TrustChainGenerator gen({}, Rational(1, 2));
  std::vector<Rational> probs = CheckedProbabilities(gen, root, exts);
  EXPECT_EQ(probs.size(), exts.size());
}

}  // namespace
}  // namespace opcqa
