// Tests for repairing sequences — Definition 4 — anchored on the paper's
// Examples 2 and 3 and the failing-sequence instance of Section 3.

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "gen/workloads.h"
#include "repair/repairing_state.h"

namespace opcqa {
namespace {

Fact MakeR(const Schema& schema, const char* a, const char* b) {
  return Fact::Make(schema, "R", {a, b});
}

TEST(RepairingStateTest, EmptySequenceOverConsistentDatabaseIsSuccessful) {
  gen::Workload w = gen::PaperExample1();
  Database consistent(w.schema.get());
  consistent.Insert(Fact::Make(*w.schema, "T", {"a", "b"}));
  auto context = RepairContext::Make(consistent, w.constraints);
  RepairingState state(context);
  EXPECT_TRUE(state.IsConsistent());
  EXPECT_TRUE(state.ValidExtensions().empty());
  EXPECT_TRUE(state.IsComplete());
  EXPECT_TRUE(state.IsSuccessful());
  EXPECT_FALSE(state.IsFailing());
}

TEST(RepairingStateTest, InitialStateExposesViolations) {
  gen::Workload w = gen::PaperExample1();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  EXPECT_FALSE(state.IsConsistent());
  EXPECT_EQ(state.violations().size(), 4u);
  EXPECT_EQ(state.depth(), 0u);
  EXPECT_FALSE(state.ValidExtensions().empty());
}

TEST(RepairingStateTest, ApplyAdvancesStateAndTracksSequence) {
  gen::Workload w = gen::PaperKeyPairExample();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  std::vector<Operation> exts = state.ValidExtensions();
  ASSERT_EQ(exts.size(), 3u);  // −R(a,b), −R(a,c), −both
  Operation op = Operation::Remove({MakeR(*w.schema, "a", "b")});
  ASSERT_TRUE(state.CanApply(op));
  state.Apply(op);
  EXPECT_EQ(state.depth(), 1u);
  EXPECT_TRUE(state.IsConsistent());
  EXPECT_TRUE(state.IsSuccessful());
  EXPECT_EQ(state.current().size(), 1u);
}

// Example 2: Σ′ = {T(x,y) → R(x,y); key}. The sequence
// −{R(a,b),R(a,c)} ; +R(a,b) satisfies req1/req2 and repairs, but is ruled
// out by No Cancellation.
TEST(RepairingStateTest, Example2NoCancellationForbidsReAddition) {
  gen::Workload w = gen::PaperExample2();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  Operation remove_both = Operation::Remove(
      {MakeR(*w.schema, "a", "b"), MakeR(*w.schema, "a", "c")});
  ASSERT_TRUE(state.CanApply(remove_both))
      << "removing both key-conflicting facts must be a valid start";
  state.Apply(remove_both);
  // Now T(a,b) → R(a,b) is violated; +R(a,b) would fix it but cancels the
  // earlier deletion.
  Operation re_add = Operation::Add({MakeR(*w.schema, "a", "b")});
  EXPECT_FALSE(state.CanApply(re_add));
  std::vector<Operation> exts = state.ValidExtensions();
  for (const Operation& op : exts) {
    EXPECT_FALSE(op == re_add);
  }
}

// Example 3: Σ = {σ: R(x,y) → ∃z S(x,y,z); key}. After +S(a,b,c), the
// deletion −R(a,b) would leave S(a,b,c) unjustified — Global Justification
// of Additions forbids it.
TEST(RepairingStateTest, Example3GlobalJustificationBlocksDeletion) {
  gen::Workload w = gen::PaperExample1();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  Fact witness = Fact::Make(*w.schema, "S", {"a", "b", "c"});
  Operation add_witness = Operation::Add({witness});
  ASSERT_TRUE(state.CanApply(add_witness));
  state.Apply(add_witness);
  // −R(a,b) is justified locally (it fixes key violations) but would
  // retroactively unjustify the addition.
  Operation remove_ab = Operation::Remove({MakeR(*w.schema, "a", "b")});
  EXPECT_FALSE(state.CanApply(remove_ab));
  // −R(a,c) keeps R(a,b), so the addition stays justified.
  Operation remove_ac = Operation::Remove({MakeR(*w.schema, "a", "c")});
  EXPECT_TRUE(state.CanApply(remove_ac));
}

// The failing sequence of Section 3: D = {R(a)}, Σ = {R(x)→T(x), T(x)→⊥}.
// s = +T(a) is complete but fails.
TEST(RepairingStateTest, FailingSequenceExample) {
  gen::Workload w = gen::PaperFailingExample();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  Fact ta = Fact::Make(*w.schema, "T", {"a"});
  Operation add_t = Operation::Add({ta});
  ASSERT_TRUE(state.CanApply(add_t));
  state.Apply(add_t);
  EXPECT_FALSE(state.IsConsistent());
  // −T(a) would cancel the addition; −R(a) is not justified for the DC
  // violation (its body image is {T(a)}).
  EXPECT_TRUE(state.ValidExtensions().empty());
  EXPECT_TRUE(state.IsComplete());
  EXPECT_TRUE(state.IsFailing());
  EXPECT_FALSE(state.IsSuccessful());
}

// The same instance CAN be repaired by deleting R(a) first.
TEST(RepairingStateTest, FailingInstanceHasSuccessfulSibling) {
  gen::Workload w = gen::PaperFailingExample();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  Operation remove_r = Operation::Remove({Fact::Make(*w.schema, "R", {"a"})});
  ASSERT_TRUE(state.CanApply(remove_r));
  state.Apply(remove_r);
  EXPECT_TRUE(state.IsSuccessful());
  EXPECT_TRUE(state.current().empty());
}

TEST(RepairingStateTest, Req2BlocksViolationResurrection) {
  // Σ = {U(x) → V(x)}. After +V(a) the instance is repaired; −V(a) would
  // both cancel the addition and resurrect the eliminated violation, so it
  // must be invalid (here it is also not justified — all three conditions
  // reject it independently).
  Schema schema;
  schema.AddRelation("U", 1);
  schema.AddRelation("V", 1);
  Database db(&schema);
  db.Insert(Fact::Make(schema, "U", {"a"}));
  ConstraintSet sigma = *ParseConstraints(schema, "U(x) -> V(x)");
  auto context = RepairContext::Make(db, sigma);
  RepairingState state(context);
  Operation add_v = Operation::Add({Fact::Make(schema, "V", {"a"})});
  ASSERT_TRUE(state.CanApply(add_v));
  state.Apply(add_v);
  EXPECT_TRUE(state.IsSuccessful());
  // −V(a) would both cancel and resurrect; it must be invalid.
  EXPECT_FALSE(state.CanApply(
      Operation::Remove({Fact::Make(schema, "V", {"a"})})));
}

TEST(RepairingStateTest, OperationsOutsideBaseAreRejected) {
  gen::Workload w = gen::PaperKeyPairExample();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  // A fact with a constant outside dom(B): not a legal operation target.
  Fact foreign = Fact::Make(*w.schema, "R", {"a", "zz_outside"});
  EXPECT_FALSE(state.CanApply(Operation::Add({foreign})));
}

TEST(RepairingStateTest, SequenceLengthIsPolynomiallyBounded) {
  // Proposition 2 consequence: every maximal sequence terminates. Run a
  // greedy walk taking the first valid extension each time and check it
  // completes (and stays within a generous bound).
  gen::Workload w = gen::PaperExample1();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  size_t steps = 0;
  while (true) {
    std::vector<Operation> exts = state.ValidExtensions();
    if (exts.empty()) break;
    state.ApplyTrusted(exts.front());
    ASSERT_LT(++steps, 100u) << "sequence did not terminate";
  }
  EXPECT_TRUE(state.IsComplete());
}

TEST(RepairingStateTest, RevertRestoresStateExactly) {
  gen::Workload w = gen::PaperExample1();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  Database db_before = state.Snapshot();
  ViolationSet violations_before = state.violations();
  size_t hash_before = state.current().Hash();
  std::vector<Operation> exts_before = state.ValidExtensions();
  for (const Operation& op : exts_before) {
    state.ApplyTrusted(op);
    state.Revert();
    EXPECT_TRUE(state.current() == db_before);
    EXPECT_EQ(state.current().Hash(), hash_before);
    EXPECT_EQ(state.violations(), violations_before);
    EXPECT_EQ(state.depth(), 0u);
    // The extension set (and hence the chain) is fully restored too.
    EXPECT_EQ(state.ValidExtensions(), exts_before);
  }
}

TEST(RepairingStateTest, RevertUnwindsMultiStepSequences) {
  // Walk to an absorbing state, recording snapshots, then unwind and check
  // every intermediate state is restored bit-for-bit.
  gen::Workload w = gen::PaperExample1();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  std::vector<Database> snapshots;
  std::vector<ViolationSet> violation_history;
  while (true) {
    std::vector<Operation> exts = state.ValidExtensions();
    if (exts.empty()) break;
    snapshots.push_back(state.Snapshot());
    violation_history.push_back(state.violations());
    state.ApplyTrusted(exts.front());
    ASSERT_LT(state.depth(), 100u);
  }
  while (state.depth() > 0) {
    state.Revert();
    EXPECT_TRUE(state.current() == snapshots[state.depth()]);
    EXPECT_EQ(state.violations(), violation_history[state.depth()]);
  }
  EXPECT_TRUE(state.current() == context->initial);
}

TEST(RepairingStateTest, RestoreRewindsToMark) {
  gen::Workload w = gen::PaperExample1();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  std::vector<Operation> exts = state.ValidExtensions();
  ASSERT_FALSE(exts.empty());
  state.ApplyTrusted(exts.front());
  size_t mark = state.Mark();
  Database at_mark = state.Snapshot();
  while (!state.IsComplete()) {
    state.ApplyTrusted(state.ValidExtensions().front());
  }
  state.Restore(mark);
  EXPECT_EQ(state.depth(), mark);
  EXPECT_TRUE(state.current() == at_mark);
}

TEST(RepairingStateTest, SnapshotIsFrozen) {
  gen::Workload w = gen::PaperKeyPairExample();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  Database snapshot = state.Snapshot();
  state.ApplyTrusted(state.ValidExtensions().front());
  EXPECT_FALSE(snapshot == state.current())
      << "mutating the state must not affect an earlier snapshot";
  EXPECT_TRUE(snapshot == context->initial);
}

TEST(RepairingStateTest, ForkContinuesIndependently) {
  gen::Workload w = gen::PaperKeyPairExample();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  std::vector<Operation> exts = state.ValidExtensions();
  ASSERT_EQ(exts.size(), 3u);
  RepairingState fork = state.Fork();
  fork.ApplyTrusted(exts[0]);
  state.ApplyTrusted(exts[1]);
  EXPECT_FALSE(fork.current() == state.current());
  // The fork can revert its own step, but not past the fork point.
  fork.Revert();
  EXPECT_TRUE(fork.current() == context->initial);
}

TEST(RepairingStateTest, ApplyTrustedMatchesApply) {
  gen::Workload w = gen::PaperKeyPairExample();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState a(context), b(context);
  Operation op = Operation::Remove({MakeR(*w.schema, "a", "b")});
  a.Apply(op);
  b.ApplyTrusted(op);
  EXPECT_EQ(a.current(), b.current());
  EXPECT_EQ(a.violations(), b.violations());
}

}  // namespace
}  // namespace opcqa
