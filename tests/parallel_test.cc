// Tests for the parallel execution layer: the ParallelFor/ThreadPool
// utility, concurrency-safe FactStore interning, and the determinism
// contract — multi-threaded enumeration and sampling are byte-identical to
// serial for every thread count, including under max_states truncation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "relational/fact_store.h"
#include "repair/repair_enumerator.h"
#include "repair/sampler.h"
#include "util/parallel.h"
#include "util/random.h"

namespace opcqa {
namespace {

// ---------------------------------------------------------------------
// ParallelFor / ThreadPool
// ---------------------------------------------------------------------

TEST(ParallelForTest, DefaultThreadsIsPositive) {
  EXPECT_GE(DefaultThreads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(kN, threads, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(ParallelForTest, HandlesEmptyAndMoreThreadsThanWork) {
  ParallelFor(0, 8, [&](size_t) { FAIL() << "no indices to run"; });
  std::atomic<size_t> ran{0};
  ParallelFor(3, 64, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3u);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  std::atomic<size_t> total{0};
  ParallelFor(4, 4, [&](size_t) {
    ParallelFor(5, 4, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 20u);
}

TEST(ParallelForTest, ParallelMapPreservesIndexOrder) {
  std::vector<size_t> out =
      ParallelMap<size_t>(100, 8, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

// ---------------------------------------------------------------------
// FactStore under concurrent interning
// ---------------------------------------------------------------------

TEST(FactStoreConcurrencyTest, ConcurrentInternAgreesWithSerial) {
  // 8 workers intern overlapping fact sets (including wide, arity-4 facts)
  // while racing readers resolve already-published ids. Every fact must end
  // up with exactly one id, resolvable lock-free from any thread.
  FactStore& store = FactStore::Global();
  constexpr size_t kWorkers = 8;
  constexpr ConstId kBase = 1u << 20;  // avoid clashing with other tests
  std::vector<std::vector<FactId>> ids(kWorkers);
  ParallelFor(kWorkers, kWorkers, [&](size_t w) {
    for (ConstId k = 0; k < 500; ++k) {
      // Overlap: workers w and w+1 share half their facts.
      ConstId x = kBase + static_cast<ConstId>((w / 2) * 1000) + k;
      ids[w].push_back(store.Intern(0, &x, 1));
      ConstId wide[4] = {x, x + 1, x + 2, x + 3};
      ids[w].push_back(store.Intern(1, wide, 4));
      // Lock-free read-back of everything interned so far on this worker.
      FactView view = store.View(ids[w].back());
      EXPECT_EQ(view.arity, 4u);
      EXPECT_EQ(view.args[0], x);
      EXPECT_EQ(view.args[3], x + 3);
    }
  });
  // Same fact → same id, across workers and against a serial re-intern.
  for (size_t w = 0; w < kWorkers; ++w) {
    for (size_t i = 0; i < ids[w].size(); ++i) {
      Fact fact = store.ToFact(ids[w][i]);
      EXPECT_EQ(store.Intern(fact), ids[w][i]);
      EXPECT_EQ(store.Find(fact), ids[w][i]);
    }
    // Workers 2k and 2k+1 interned identical fact sequences → same ids.
    if (w + 1 < kWorkers && w % 2 == 0) {
      EXPECT_EQ(ids[w], ids[w + 1]);
    }
  }
}

TEST(FactStoreConcurrencyTest, ShardTaggedIdsStayDensePerShard) {
  FactStore& store = FactStore::Global();
  size_t before = store.size();
  constexpr ConstId kBase = 1u << 21;
  for (ConstId k = 0; k < 256; ++k) {
    ConstId args[2] = {kBase + k, kBase + k};
    FactId id = store.Intern(0, args, 2);
    // Round-trips through the accessors without locking.
    EXPECT_EQ(store.pred(id), 0u);
    EXPECT_EQ(store.arity(id), 2u);
    EXPECT_EQ(store.args(id)[0], kBase + k);
    EXPECT_EQ(store.Compare(id, id), 0);
  }
  EXPECT_EQ(store.size(), before + 256);
}

// ---------------------------------------------------------------------
// Enumerator determinism: serial vs sharded-parallel
// ---------------------------------------------------------------------

void ExpectIdenticalResults(const EnumerationResult& a,
                            const EnumerationResult& b,
                            const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.success_mass, b.success_mass);
  EXPECT_EQ(a.failing_mass, b.failing_mass);
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.absorbing_states, b.absorbing_states);
  EXPECT_EQ(a.successful_sequences, b.successful_sequences);
  EXPECT_EQ(a.failing_sequences, b.failing_sequences);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_EQ(a.truncated, b.truncated);
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].repair, b.repairs[i].repair) << "repair " << i;
    EXPECT_EQ(a.repairs[i].probability, b.repairs[i].probability)
        << "repair " << i;
    EXPECT_EQ(a.repairs[i].num_sequences, b.repairs[i].num_sequences)
        << "repair " << i;
  }
}

TEST(ParallelEnumeratorTest, ByteIdenticalToSerialAcrossThreadCounts) {
  UniformChainGenerator generator;
  struct Case {
    std::string name;
    gen::Workload workload;
  };
  std::vector<Case> cases;
  cases.push_back({"preference", gen::PaperPreferenceExample()});
  cases.push_back({"example1-tgd", gen::PaperExample1()});
  cases.push_back({"failing", gen::PaperFailingExample()});
  cases.push_back({"keys", gen::MakeKeyViolationWorkload(5, 4, 2, 11)});
  for (const Case& c : cases) {
    EnumerationOptions serial;
    serial.threads = 1;
    EnumerationResult base =
        EnumerateRepairs(c.workload.db, c.workload.constraints, generator,
                         serial);
    for (size_t threads : {size_t{2}, size_t{8}}) {
      EnumerationOptions parallel = serial;
      parallel.threads = threads;
      EnumerationResult result =
          EnumerateRepairs(c.workload.db, c.workload.constraints, generator,
                           parallel);
      ExpectIdenticalResults(base, result,
                             c.name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelEnumeratorTest, TruncationPathIsDeterministic) {
  // The budget is replayed in root-branch order, so truncated results —
  // which repairs were aggregated, every counter, the truncated flag —
  // match serial DFS truncation exactly for every thread count.
  UniformChainGenerator generator;
  gen::Workload w = gen::MakeKeyViolationWorkload(6, 6, 3, /*seed=*/3);
  for (size_t max_states : {size_t{50}, size_t{500}, size_t{5000}}) {
    EnumerationOptions serial;
    serial.threads = 1;
    serial.max_states = max_states;
    EnumerationResult base =
        EnumerateRepairs(w.db, w.constraints, generator, serial);
    EXPECT_TRUE(base.truncated) << max_states;
    EXPECT_LE(base.states_visited, max_states + 1);
    for (size_t threads : {size_t{2}, size_t{8}}) {
      EnumerationOptions parallel = serial;
      parallel.threads = threads;
      EnumerationResult result =
          EnumerateRepairs(w.db, w.constraints, generator, parallel);
      ExpectIdenticalResults(base, result,
                             "max_states=" + std::to_string(max_states) +
                                 " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelEnumeratorTest, DeletionOnlyGeneratorParallel) {
  // Zero-probability pruning at the root must shard identically.
  DeletionOnlyUniformGenerator generator;
  gen::Workload w = gen::PaperExample1();
  EnumerationOptions serial;
  serial.threads = 1;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, serial);
  EnumerationOptions parallel;
  parallel.threads = 8;
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, generator, parallel);
  ExpectIdenticalResults(base, result, "deletion-only threads=8");
  EXPECT_TRUE(result.failing_mass.is_zero());
}

TEST(ParallelEnumeratorTest, ProbabilityOfUsesTheIndex) {
  UniformChainGenerator generator;
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, 5);
  EnumerationOptions options;
  options.threads = 4;
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, generator, options);
  ASSERT_EQ(result.repairs_by_database.size(), result.repairs.size());
  // Index lookups agree with a linear scan for every repair + a miss.
  for (const RepairInfo& info : result.repairs) {
    EXPECT_EQ(result.ProbabilityOf(info.repair), info.probability);
  }
  Database absent(w.schema.get());
  absent.Insert(Fact::Make(*w.schema, "R", {"nosuch", "fact"}));
  EXPECT_TRUE(result.ProbabilityOf(absent).is_zero());
}

// ---------------------------------------------------------------------
// Sampler determinism across thread counts
// ---------------------------------------------------------------------

TEST(ParallelSamplerTest, EstimatesIdenticalAcrossThreadCounts) {
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  SamplerOptions serial_options;
  serial_options.threads = 1;
  Sampler serial(w.db, w.constraints, &generator, /*seed=*/77,
                 serial_options);
  ApproxOcaResult base = serial.EstimateOcaWithWalks(*q, 300);
  double base_tuple = serial.EstimateTuple(*q, {Const("b")}, 0.1, 0.1);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    SamplerOptions options;
    options.threads = threads;
    Sampler sampler(w.db, w.constraints, &generator, /*seed=*/77, options);
    ApproxOcaResult result = sampler.EstimateOcaWithWalks(*q, 300);
    EXPECT_EQ(result.estimates, base.estimates) << "threads " << threads;
    EXPECT_EQ(result.successful_walks, base.successful_walks);
    EXPECT_EQ(result.failing_walks, base.failing_walks);
    EXPECT_EQ(result.total_steps, base.total_steps);
    EXPECT_EQ(sampler.EstimateTuple(*q, {Const("b")}, 0.1, 0.1), base_tuple)
        << "threads " << threads;
  }
}

TEST(ParallelSamplerTest, FailingWalksIdenticalAcrossThreadCounts) {
  // Walk outcomes (success vs failure) must not depend on scheduling even
  // when the chain can fail.
  gen::Workload w = gen::PaperFailingExample();
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q() := true");
  ASSERT_TRUE(q.ok());
  std::vector<size_t> failing;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SamplerOptions options;
    options.threads = threads;
    Sampler sampler(w.db, w.constraints, &generator, /*seed=*/5, options);
    failing.push_back(sampler.EstimateOcaWithWalks(*q, 200).failing_walks);
  }
  EXPECT_EQ(failing[0], failing[1]);
  EXPECT_EQ(failing[0], failing[2]);
}

TEST(ParallelSamplerTest, RepeatedEstimatesAreIndependentYetReproducible) {
  // Successive estimation calls consume disjoint walk-index ranges: two
  // calls on one sampler must not replay identical walks, while the same
  // call sequence on an identically-seeded sampler reproduces everything.
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  Sampler a(w.db, w.constraints, &generator, /*seed=*/21);
  Sampler b(w.db, w.constraints, &generator, /*seed=*/21);
  ApproxOcaResult first = a.EstimateOcaWithWalks(*q, 150);
  ApproxOcaResult second = a.EstimateOcaWithWalks(*q, 150);
  EXPECT_NE(first.estimates, second.estimates)
      << "repeated estimates replayed identical walks";
  EXPECT_EQ(first.estimates, b.EstimateOcaWithWalks(*q, 150).estimates);
  EXPECT_EQ(second.estimates, b.EstimateOcaWithWalks(*q, 150).estimates);
}

TEST(ParallelSamplerTest, WalkStreamsArePureFunctionsOfSeedAndIndex) {
  gen::Workload w = gen::PaperPreferenceExample();
  UniformChainGenerator generator;
  Sampler sampler(w.db, w.constraints, &generator, /*seed=*/13);
  // Same index twice → identical walk; the sampler's stateful stream does
  // not interfere.
  WalkResult first = sampler.RunWalkAt(4);
  sampler.RunWalk();
  WalkResult again = sampler.RunWalkAt(4);
  EXPECT_EQ(first.final_db, again.final_db);
  EXPECT_EQ(first.steps, again.steps);
  // Distinct indices explore distinct outcomes somewhere in a small range.
  bool saw_difference = false;
  for (uint64_t i = 1; i < 16 && !saw_difference; ++i) {
    saw_difference = !(sampler.RunWalkAt(i).final_db == first.final_db);
  }
  EXPECT_TRUE(saw_difference);
}

TEST(RngStreamTest, DeterministicAndDecorrelated) {
  Rng a = Rng::Stream(42, 0);
  Rng b = Rng::Stream(42, 0);
  EXPECT_EQ(a.Next(), b.Next());
  Rng c = Rng::Stream(42, 1);
  Rng d = Rng::Stream(43, 0);
  // Streams and seeds both move the sequence.
  uint64_t a1 = a.Next();
  EXPECT_NE(a1, c.Next());
  EXPECT_NE(a1, d.Next());
}

}  // namespace
}  // namespace opcqa
