// Cross-module integration tests: exact engine vs sampler vs engine-level
// executor on shared workloads, plus end-to-end scenario walkthroughs.

#include <gtest/gtest.h>

#include "engine/key_repair_executor.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/abc.h"
#include "repair/ocqa.h"
#include "repair/preference_generator.h"
#include "repair/sampler.h"
#include "repair/trust_generator.h"

namespace opcqa {
namespace {

// Sampler estimates converge to the exact CP values (same chain).
TEST(IntegrationTest, SamplerConvergesToExactOcqa) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/31);
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult exact = ComputeOca(w.db, w.constraints, gen, *q);
  Sampler sampler(w.db, w.constraints, &gen, /*seed=*/32);
  ApproxOcaResult approx = sampler.EstimateOcaWithWalks(*q, 4000);
  for (const auto& [tuple, p] : exact.answers) {
    EXPECT_NEAR(approx.Estimate(tuple), p.ToDouble(), 0.04)
        << TupleToString(tuple);
  }
}

// The trust chain (Example 5) and exact enumeration agree with sampling.
TEST(IntegrationTest, TrustChainExactVsSampled) {
  gen::TrustWorkload tw = gen::MakeTrustWorkload(3, 2, 2, /*seed=*/33);
  TrustChainGenerator gen(tw.trust);
  Result<Query> q = ParseQuery(*tw.workload.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult exact =
      ComputeOca(tw.workload.db, tw.workload.constraints, gen, *q);
  Sampler sampler(tw.workload.db, tw.workload.constraints, &gen,
                  /*seed=*/34);
  ApproxOcaResult approx = sampler.EstimateOcaWithWalks(*q, 4000);
  for (const auto& [tuple, p] : exact.answers) {
    EXPECT_NEAR(approx.Estimate(tuple), p.ToDouble(), 0.04)
        << TupleToString(tuple);
  }
}

// The Section 5 engine loop approximates the keep-one chain: compare with
// exact OCQA under a keep-one generator (pair deletions zeroed out).
TEST(IntegrationTest, EngineExecutorMatchesKeepOneChain) {
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 2, 2, /*seed=*/35);
  // Keep-one chain: uniform over single-fact deletions only.
  LambdaChainGenerator keep_one(
      "keep-one",
      [](const RepairingState&, const std::vector<Operation>& ops) {
        size_t singles = 0;
        for (const Operation& op : ops) {
          if (op.is_remove() && op.size() == 1) ++singles;
        }
        std::vector<Rational> probs;
        probs.reserve(ops.size());
        for (const Operation& op : ops) {
          probs.push_back(op.is_remove() && op.size() == 1
                              ? Rational(1, static_cast<int64_t>(singles))
                              : Rational(0));
        }
        return probs;
      },
      /*deletions_only=*/true);
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult exact = ComputeOca(w.db, w.constraints, keep_one, *q);

  engine::KeyRepairExecutor executor(
      w.db, {engine::KeySpec{w.schema->RelationOrDie("R"), {0}}},
      /*seed=*/36);
  engine::ApproxAnswers approx = executor.Run(*q, 4000);
  for (const auto& [tuple, p] : exact.answers) {
    EXPECT_NEAR(approx.Frequency(tuple), p.ToDouble(), 0.04)
        << TupleToString(tuple);
  }
}

// Certain answers are a conservative floor for OCA at threshold 1 on
// denial-only instances (deletion chains reach every ABC repair, so a
// tuple answered in all chain repairs is in particular certain... and
// vice versa: certain tuples hold in every subset repair, hence in every
// chain repair, so CP = 1).
TEST(IntegrationTest, CertainAnswersEqualProbabilityOneAnswers) {
  gen::Workload w = gen::MakePreferenceWorkload(6, 10, 0.5, /*seed=*/37);
  if (Satisfies(w.db, w.constraints)) GTEST_SKIP() << "no conflicts drawn";
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := Pref(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  Result<std::vector<Database>> abc = AbcRepairs(w.db, w.constraints);
  ASSERT_TRUE(abc.ok());
  std::set<Tuple> certain = CertainAnswers(*abc, *q);
  std::vector<Tuple> prob_one = oca.AnswersAtLeast(Rational(1));
  std::set<Tuple> prob_one_set(prob_one.begin(), prob_one.end());
  EXPECT_EQ(certain, prob_one_set);
}

// Example 7 retold end-to-end with every layer: parse everything from
// text, build the generator, compute exact OCA, approximate it, and
// compare against the ABC baseline.
TEST(IntegrationTest, Example7FullStack) {
  gen::Workload w = gen::PaperPreferenceExample();
  PreferenceChainGenerator gen(w.schema->RelationOrDie("Pref"));
  Result<Query> q =
      ParseQuery(*w.schema, "Q(x) := forall y (Pref(x,y) | x = y)");
  ASSERT_TRUE(q.ok());

  OcaResult exact = ComputeOca(w.db, w.constraints, gen, *q);
  ASSERT_EQ(exact.answers.size(), 1u);
  EXPECT_EQ(exact.Probability({Const("a")}), Rational(9, 20));

  Sampler sampler(w.db, w.constraints, &gen, /*seed=*/38);
  double estimate = sampler.EstimateTuple(*q, {Const("a")}, 0.05, 0.05);
  EXPECT_NEAR(estimate, 0.45, 0.05);

  Result<std::vector<Database>> abc = AbcRepairs(w.db, w.constraints);
  ASSERT_TRUE(abc.ok());
  EXPECT_TRUE(CertainAnswers(*abc, *q).empty());
}

// Inclusion-dependency chains: additions happen, global justification is
// exercised, and the final repairs satisfy the TGD.
TEST(IntegrationTest, InclusionChainEndToEnd) {
  gen::Workload w = gen::MakeInclusionWorkload(3, 1.0, /*seed=*/39);
  UniformChainGenerator gen;
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  ASSERT_FALSE(result.truncated);
  ASSERT_FALSE(result.repairs.empty());
  bool some_repair_with_addition = false;
  for (const RepairInfo& info : result.repairs) {
    EXPECT_TRUE(Satisfies(info.repair, w.constraints));
    std::vector<Fact> added, removed;
    info.repair.SymmetricDifference(w.db, &removed, &added);
    (void)removed;
    if (!added.empty()) some_repair_with_addition = true;
  }
  EXPECT_TRUE(some_repair_with_addition);
  EXPECT_EQ(result.success_mass + result.failing_mass, Rational(1));
}

// Everything composes for FO queries with negation on repaired data.
TEST(IntegrationTest, NegationQueryOverRepairs) {
  gen::Workload w = gen::PaperPreferenceExample();
  UniformChainGenerator gen;
  // "x is never dominated": ∀y ¬Pref(y,x).
  Result<Query> q =
      ParseQuery(*w.schema, "Q(x) := forall y (not Pref(y,x))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  // d is always dominated (Pref(a,d), Pref(b,d) stay in all repairs): no
  // entry for d; every other element is undominated in some repair.
  EXPECT_TRUE(oca.Probability({Const("d")}).is_zero());
  EXPECT_GT(oca.Probability({Const("a")}), Rational(0));
}

}  // namespace
}  // namespace opcqa
