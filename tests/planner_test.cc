// Tests for the query-complexity planner (src/planner/): primary-key
// extraction, Koutris–Wijsen attack-graph classification, the certain-
// answer FO rewriting (validated against the classical ABC oracle), and
// the dispatch gates — rewriting answers must be byte-identical to the
// chain walk exactly where the planner claims coincidence, the walk must
// be kept where the semantics provably diverge, and plans must be
// invalidated when the database mutates.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "constraints/constraint_parser.h"
#include "engine/ocqa_session.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "planner/attack_graph.h"
#include "planner/certain_rewriting.h"
#include "planner/planner.h"
#include "repair/abc.h"
#include "repair/ocqa.h"
#include "repair/priority_generator.h"
#include "sql/exact_runner.h"

namespace opcqa {
namespace {

using planner::CertaintyClassification;
using planner::ClassifyCertainty;
using planner::CompileCertainRewriting;
using planner::EvaluateCertain;
using planner::PlanKind;
using planner::PlanMode;

Query MustParseQuery(const Schema& schema, const std::string& text) {
  Result<Query> query = ParseQuery(schema, text);
  OPCQA_CHECK(query.ok()) << query.status().ToString();
  return std::move(query).value();
}

ConstraintSet MustParseConstraints(const Schema& schema,
                                   const std::string& text) {
  Result<ConstraintSet> constraints = ParseConstraints(schema, text);
  OPCQA_CHECK(constraints.ok()) << constraints.status().ToString();
  return std::move(constraints).value();
}

/// R/2 conflicted on key k0, S/2 conflict-free; both key position 0.
gen::Workload MixedConflictWorkload() {
  auto schema = std::make_shared<Schema>();
  PredId r = schema->AddRelation("R", 2);
  PredId s = schema->AddRelation("S", 2);
  Database db(schema.get());
  db.Insert(Fact(r, {Const("k0"), Const("b")}));
  db.Insert(Fact(r, {Const("k0"), Const("c")}));
  db.Insert(Fact(r, {Const("k1"), Const("d")}));
  db.Insert(Fact(s, {Const("b"), Const("e")}));
  db.Insert(Fact(s, {Const("c"), Const("f")}));
  ConstraintSet sigma = MustParseConstraints(
      *schema,
      "keyR: R(x,y), R(x,z) -> y = z\n"
      "keyS: S(x,y), S(x,z) -> y = z");
  return gen::Workload{std::move(schema), std::move(db), std::move(sigma)};
}

// ---------------------------------------------------------------------
// Attack-graph classification
// ---------------------------------------------------------------------

TEST(AttackGraphTest, PathJoinIsRewritable) {
  // The canonical FO-rewritable join R([x],y), S([y],z): R attacks S but
  // nothing attacks R, so elimination succeeds.
  gen::Workload w = MixedConflictWorkload();
  Query q = MustParseQuery(*w.schema,
                           "Q(x) := exists y, z (R(x,y), S(y,z))");
  CertaintyClassification cls =
      ClassifyCertainty(q, w.constraints, *w.schema);
  EXPECT_TRUE(cls.rewritable) << cls.reason;
  ASSERT_EQ(cls.elimination_order.size(), 2u);
  EXPECT_EQ(cls.elimination_order[0], 0u);  // R first (unattacked)
  ASSERT_EQ(cls.attacks.size(), 1u);
  EXPECT_EQ(cls.attacks[0].from, 0u);
  EXPECT_EQ(cls.attacks[0].to, 1u);
}

TEST(AttackGraphTest, AttackCycleIsRejected) {
  // R([x],y), S([y],x): R attacks S through y and S attacks R through x —
  // the textbook coNP-hard cycle.
  gen::Workload w = MixedConflictWorkload();
  Query q = MustParseQuery(*w.schema,
                           "Q() := exists x, y (R(x,y), S(y,x))");
  CertaintyClassification cls =
      ClassifyCertainty(q, w.constraints, *w.schema);
  EXPECT_FALSE(cls.rewritable);
  EXPECT_NE(cls.reason.find("cyclic"), std::string::npos) << cls.reason;
}

TEST(AttackGraphTest, SelfJoinIsRejected) {
  gen::Workload w = MixedConflictWorkload();
  Query q = MustParseQuery(*w.schema,
                           "Q(x) := exists y, z (R(x,y), R(x,z))");
  CertaintyClassification cls =
      ClassifyCertainty(q, w.constraints, *w.schema);
  EXPECT_FALSE(cls.rewritable);
  EXPECT_NE(cls.reason.find("self-join"), std::string::npos) << cls.reason;
}

TEST(AttackGraphTest, NonKeyConstraintsAreRejected) {
  // The preference denial constraint is not a key-style EGD.
  gen::Workload w = gen::PaperPreferenceExample();
  Query q = MustParseQuery(*w.schema, "Q(x) := exists y Pref(x,y)");
  CertaintyClassification cls =
      ClassifyCertainty(q, w.constraints, *w.schema);
  EXPECT_FALSE(cls.rewritable);
}

// ---------------------------------------------------------------------
// Rewriting correctness — against the classical ABC repair oracle.
// The rewriting decides *classical* certainty, so it must agree with
// ∩_{D′ ∈ ABC repairs} Q(D′) on every classified query, including ones
// the planner would refuse to dispatch operationally.
// ---------------------------------------------------------------------

std::set<Tuple> ClassicalOracle(const gen::Workload& w, const Query& q) {
  Result<std::vector<Database>> repairs = AbcRepairs(w.db, w.constraints);
  OPCQA_CHECK(repairs.ok());
  return CertainAnswers(*repairs, q);
}

void ExpectRewritingMatchesOracle(const gen::Workload& w,
                                  const std::string& query_text) {
  Query q = MustParseQuery(*w.schema, query_text);
  CertaintyClassification cls =
      ClassifyCertainty(q, w.constraints, *w.schema);
  ASSERT_TRUE(cls.rewritable) << cls.reason;
  Result<Query> rewritten = CompileCertainRewriting(q, cls);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_EQ(EvaluateCertain(w.db, q, *rewritten), ClassicalOracle(w, q))
      << query_text;
}

TEST(CertainRewritingTest, MatchesAbcOracleOnKeyWorkloads) {
  gen::Workload keyed = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/77);
  ExpectRewritingMatchesOracle(keyed, "Q(x,y) := R(x,y)");
  ExpectRewritingMatchesOracle(keyed, "Q(x) := exists y R(x,y)");
  ExpectRewritingMatchesOracle(keyed, "Q(y) := exists x R(x,y)");

  gen::Workload mixed = MixedConflictWorkload();
  ExpectRewritingMatchesOracle(mixed,
                               "Q(x) := exists y, z (R(x,y), S(y,z))");
  ExpectRewritingMatchesOracle(mixed, "Q(x,y) := S(x,y)");
}

TEST(CertainRewritingTest, MatchesAbcOracleOnJoinWorkload) {
  gen::Workload w = gen::MakeJoinWorkload(6, 2, /*seed=*/5);
  ExpectRewritingMatchesOracle(
      w, "Q(a,d) := exists b, c (R(a,b), S(b,c), T(c,d))");
  ExpectRewritingMatchesOracle(w, "Q(a) := exists b R(a,b)");
}

TEST(CertainRewritingTest, ConstantsInQueryAreHandled) {
  gen::Workload w = MixedConflictWorkload();
  // k1's group is conflict-free, k0's is conflicted.
  ExpectRewritingMatchesOracle(w, "Q(y) := R(k1,y)");
  ExpectRewritingMatchesOracle(w, "Q(y) := R(k0,y)");
}

// ---------------------------------------------------------------------
// Dispatch gates: coincidence with the operational walk
// ---------------------------------------------------------------------

TEST(PlannerDispatchTest, QuantifierFreeQueryRewritesAndMatchesWalk) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/77);
  Query q = MustParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  UniformChainGenerator generator;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    engine::SessionOptions rewriting_options;
    rewriting_options.enumeration.threads = threads;
    engine::OcqaSession auto_session(w.db, w.constraints, rewriting_options);
    Result<engine::CertainAnswersResult> fast =
        auto_session.CertainAnswers(generator, q);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(fast->plan, PlanKind::kRewriting) << fast->plan_reason;

    engine::SessionOptions walk_options = rewriting_options;
    walk_options.plan = PlanMode::kWalk;
    engine::OcqaSession walk_session(w.db, w.constraints, walk_options);
    Result<engine::CertainAnswersResult> slow =
        walk_session.CertainAnswers(generator, q);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(slow->plan, PlanKind::kMemoizedWalk);
    // Byte-identical answers: same tuples, same (sorted) order.
    EXPECT_EQ(fast->answers, slow->answers) << "threads=" << threads;
  }
}

TEST(PlannerDispatchTest, ConflictFreeRelationsRewriteAndMatchWalk) {
  // S is conflict-free, so gate 2(b) lets the existential query rewrite.
  gen::Workload w = MixedConflictWorkload();
  Query q = MustParseQuery(*w.schema, "Q(x) := exists y S(x,y)");
  UniformChainGenerator generator;
  engine::OcqaSession auto_session(w.db, w.constraints);
  Result<engine::CertainAnswersResult> fast =
      auto_session.CertainAnswers(generator, q);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->plan, PlanKind::kRewriting) << fast->plan_reason;

  engine::SessionOptions walk_options;
  walk_options.plan = PlanMode::kWalk;
  engine::OcqaSession walk_session(w.db, w.constraints, walk_options);
  Result<engine::CertainAnswersResult> slow =
      walk_session.CertainAnswers(generator, q);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->answers, slow->answers);
}

TEST(PlannerDispatchTest, ExistentialOverConflictedRelationWalks) {
  // ∃y R(x,y) over a conflicted R: a repairing sequence may delete a whole
  // key group (−{R(k0,b), R(k0,c)} is justified), so k0 is classically
  // certain but NOT operationally certain. The planner must walk.
  gen::Workload w = MixedConflictWorkload();
  Query q = MustParseQuery(*w.schema, "Q(x) := exists y R(x,y)");
  UniformChainGenerator generator;
  engine::OcqaSession session(w.db, w.constraints);
  Result<engine::CertainAnswersResult> result =
      session.CertainAnswers(generator, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, PlanKind::kMemoizedWalk) << result->plan_reason;
  EXPECT_EQ(session.PlanStats().walk_plans, 1u);
  EXPECT_EQ(session.PlanStats().rewrite_plans, 0u);

  // The divergence is real: classically certain k0 is absent operationally.
  std::set<Tuple> classical = ClassicalOracle(w, q);
  EXPECT_EQ(classical.count({Const("k0")}), 1u);
  std::vector<Tuple> walked = result->answers;
  EXPECT_EQ(std::count(walked.begin(), walked.end(), Tuple{Const("k0")}), 0);
  EXPECT_EQ(std::count(walked.begin(), walked.end(), Tuple{Const("k1")}), 1);
}

TEST(PlannerDispatchTest, NonUniformGeneratorWalks) {
  // Gate 0: preference-style generators prune reachable repairs, so even a
  // quantifier-free query must walk.
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/77);
  Query q = MustParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  PriorityChainGenerator minchange = PriorityChainGenerator::MinimalChange();
  engine::OcqaSession session(w.db, w.constraints);
  Result<engine::CertainAnswersResult> result =
      session.CertainAnswers(minchange, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, PlanKind::kMemoizedWalk) << result->plan_reason;
}

TEST(PlannerDispatchTest, OutOfFragmentConstraintsWalk) {
  gen::Workload w = gen::PaperPreferenceExample();
  Query q = MustParseQuery(*w.schema, "Q(x) := exists y Pref(x,y)");
  UniformChainGenerator generator;
  engine::OcqaSession session(w.db, w.constraints);
  Result<engine::CertainAnswersResult> result =
      session.CertainAnswers(generator, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, PlanKind::kMemoizedWalk) << result->plan_reason;
  // Cross-check against the raw enumerator's CP = 1 filter.
  OcaResult oca = ComputeOca(w.db, w.constraints, generator, q, {});
  EXPECT_EQ(result->answers, oca.AnswersAtLeast(Rational(1)));
}

TEST(PlannerDispatchTest, ForcedRewriteErrorsOutsideFragment) {
  gen::Workload w = gen::PaperPreferenceExample();
  Query q = MustParseQuery(*w.schema, "Q(x) := exists y Pref(x,y)");
  UniformChainGenerator generator;
  engine::SessionOptions options;
  options.plan = PlanMode::kRewrite;
  engine::OcqaSession session(w.db, w.constraints, options);
  Result<engine::CertainAnswersResult> result =
      session.CertainAnswers(generator, q);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("outside the proven-coincident"),
            std::string::npos)
      << result.status().ToString();
}

TEST(PlannerDispatchTest, PlanCacheHitsAndMutationInvalidation) {
  gen::Workload w = MixedConflictWorkload();
  Query q = MustParseQuery(*w.schema, "Q(x) := exists y S(x,y)");
  UniformChainGenerator generator;
  engine::OcqaSession session(w.db, w.constraints);

  ASSERT_TRUE(session.CertainAnswers(generator, q).ok());
  ASSERT_TRUE(session.CertainAnswers(generator, q).ok());
  EXPECT_EQ(session.PlanStats().plan_cache_hits, 1u);
  EXPECT_EQ(session.PlanStats().plan_cache_misses, 1u);
  EXPECT_EQ(session.PlanStats().rewrite_plans, 2u);

  // A second S-fact under key "b" flips gate 2(b): the cached rewriting
  // plan must not replay.
  Fact conflict = Fact::Make(*w.schema, "S", {"b", "g"});
  ASSERT_TRUE(session.InsertFact(conflict));
  EXPECT_EQ(session.PlanStats().invalidations, 1u);
  Result<engine::CertainAnswersResult> after =
      session.CertainAnswers(generator, q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->plan, PlanKind::kMemoizedWalk) << after->plan_reason;
  EXPECT_EQ(session.PlanStats().plan_cache_misses, 2u);

  // Removing the conflict restores the rewriting plan.
  ASSERT_TRUE(session.EraseFact(conflict));
  EXPECT_EQ(session.PlanStats().invalidations, 2u);
  Result<engine::CertainAnswersResult> restored =
      session.CertainAnswers(generator, q);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->plan, PlanKind::kRewriting) << restored->plan_reason;
}

// ---------------------------------------------------------------------
// SQL fast path
// ---------------------------------------------------------------------

TEST(SqlCertainTest, ProjectionRewritesAndMatchesWalk) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/77);
  std::vector<sql::TableKey> keys = {{"R", {0}}};

  Result<sql::SqlExactRunner> fast =
      sql::SqlExactRunner::Make(w.db, keys);
  ASSERT_TRUE(fast.ok());
  Result<sql::SqlCertainResult> rewritten =
      fast->RunCertain("SELECT c0, c1 FROM R");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->plan, PlanKind::kRewriting)
      << rewritten->plan_reason;

  sql::SqlExactOptions walk_options;
  walk_options.plan = PlanMode::kWalk;
  Result<sql::SqlExactRunner> slow =
      sql::SqlExactRunner::Make(w.db, keys, walk_options);
  ASSERT_TRUE(slow.ok());
  Result<sql::SqlCertainResult> walked =
      slow->RunCertain("SELECT c0, c1 FROM R");
  ASSERT_TRUE(walked.ok());
  EXPECT_EQ(walked->plan, PlanKind::kMemoizedWalk);
  EXPECT_EQ(rewritten->rows, walked->rows);
  EXPECT_EQ(rewritten->columns, walked->columns);

  // Agreement with the full-distribution runner's CP = 1 slice.
  Result<sql::SqlExactResult> full = slow->Run("SELECT c0, c1 FROM R");
  ASSERT_TRUE(full.ok());
  std::vector<engine::Row> certain;
  for (const auto& [row, p] : full->probability) {
    if (p == Rational(1)) certain.push_back(row);
  }
  EXPECT_EQ(rewritten->rows, certain);
}

TEST(SqlCertainTest, UntranslatableStatementFallsBackToWalk) {
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 1, 2, /*seed=*/3);
  Result<sql::SqlExactRunner> runner =
      sql::SqlExactRunner::Make(w.db, {{"R", {0}}});
  ASSERT_TRUE(runner.ok());
  Result<sql::SqlCertainResult> result =
      runner->RunCertain("SELECT COUNT(*) FROM R");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, PlanKind::kMemoizedWalk);
  EXPECT_NE(result->plan_reason.find("not translatable"), std::string::npos)
      << result->plan_reason;
  EXPECT_EQ(runner->PlanStats().rewrite_plans, 0u);
}

TEST(SqlCertainTest, WhereEqualityJoinRewrites) {
  // A and B are conflict-free (gate 2(b) holds for the join), C carries
  // the conflicts the walk has to repair.
  auto schema = std::make_shared<Schema>();
  PredId a = schema->AddRelation("A", 2);
  PredId b = schema->AddRelation("B", 2);
  PredId c = schema->AddRelation("C", 2);
  Database db(schema.get());
  db.Insert(Fact(a, {Const("a0"), Const("j0")}));
  db.Insert(Fact(a, {Const("a1"), Const("j1")}));
  db.Insert(Fact(b, {Const("j0"), Const("b0")}));
  db.Insert(Fact(c, {Const("k"), Const("u")}));
  db.Insert(Fact(c, {Const("k"), Const("v")}));
  std::vector<sql::TableKey> keys = {{"A", {0}}, {"B", {0}}, {"C", {0}}};
  const char* join_sql = "SELECT A.c0 FROM A, B WHERE A.c1 = B.c0";

  Result<sql::SqlExactRunner> runner = sql::SqlExactRunner::Make(db, keys);
  ASSERT_TRUE(runner.ok());
  Result<sql::SqlCertainResult> result = runner->RunCertain(join_sql);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, PlanKind::kRewriting) << result->plan_reason;
  EXPECT_EQ(result->rows,
            std::vector<engine::Row>({Tuple{Const("a0")}}));

  sql::SqlExactOptions walk_options;
  walk_options.plan = PlanMode::kWalk;
  Result<sql::SqlExactRunner> slow =
      sql::SqlExactRunner::Make(db, keys, walk_options);
  ASSERT_TRUE(slow.ok());
  Result<sql::SqlCertainResult> walked = slow->RunCertain(join_sql);
  ASSERT_TRUE(walked.ok());
  EXPECT_EQ(walked->plan, PlanKind::kMemoizedWalk);
  EXPECT_EQ(result->rows, walked->rows);
}

}  // namespace
}  // namespace opcqa
