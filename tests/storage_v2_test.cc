// Tests for storage tier v2 (PR 9): the compressed v2 snapshot encoding
// and its v1 compatibility (including a fresh-process restore of a
// committed v1 fixture), per-root delta-log spills with valid-prefix
// recovery from torn or corrupt tails, log compaction (including under
// injected failure: the previous base must stay readable), the unified
// promote/demote residency counters, and the SnapshotStore's root-unit
// GC accounting (delta logs count toward max_disk_bytes and are never
// orphaned).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/workloads.h"
#include "repair/repair_cache.h"
#include "repair/repair_enumerator.h"
#include "storage/canonical.h"
#include "storage/snapshot_store.h"
#include "util/failpoint.h"

namespace opcqa {
namespace {

namespace fs = std::filesystem;

/// A fresh temp directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string pattern =
        (fs::temp_directory_path() / "opcqa_storage_v2_XXXXXX").string();
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    char* made = ::mkdtemp(buffer.data());
    EXPECT_NE(made, nullptr);
    path_ = made == nullptr ? std::string() : made;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ignored;
      fs::remove_all(path_, ignored);
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

EnumerationOptions MemoOptions(RepairSpaceCache* cache) {
  EnumerationOptions options;
  options.memoize = true;
  options.cache = cache;
  return options;
}

RepairCacheOptions DiskOptions(const std::string& dir) {
  RepairCacheOptions options;
  options.snapshot_dir = dir;
  return options;
}

void ExpectSameDistribution(const EnumerationResult& result,
                            const EnumerationResult& base) {
  EXPECT_EQ(result.success_mass, base.success_mass);
  EXPECT_EQ(result.failing_mass, base.failing_mass);
  EXPECT_EQ(result.states_visited, base.states_visited);
  EXPECT_EQ(result.absorbing_states, base.absorbing_states);
  EXPECT_EQ(result.successful_sequences, base.successful_sequences);
  EXPECT_EQ(result.failing_sequences, base.failing_sequences);
  EXPECT_EQ(result.max_depth, base.max_depth);
  ASSERT_EQ(result.repairs.size(), base.repairs.size());
  for (size_t i = 0; i < base.repairs.size(); ++i) {
    EXPECT_EQ(result.repairs[i].repair, base.repairs[i].repair) << i;
    EXPECT_EQ(result.repairs[i].probability, base.repairs[i].probability)
        << i;
    EXPECT_EQ(result.repairs[i].num_sequences, base.repairs[i].num_sequences)
        << i;
  }
}

storage::SnapshotIdentity IdentityFor(const gen::Workload& w,
                                      const ChainGenerator& generator) {
  storage::SnapshotIdentity identity;
  identity.db_text = w.db.ToString();
  identity.constraints_digest =
      storage::RenderConstraints(*w.schema, w.constraints);
  identity.generator_identity = generator.cache_identity();
  identity.prune = true;
  return identity;
}

fs::path BasePathFor(const gen::Workload& w, const ChainGenerator& generator,
                     const std::string& dir) {
  return fs::path(dir) / storage::SnapshotStore::FileName(
                             storage::StableFingerprint(
                                 IdentityFor(w, generator)));
}

fs::path LogPathFor(const gen::Workload& w, const ChainGenerator& generator,
                    const std::string& dir) {
  return fs::path(dir) / storage::SnapshotStore::LogFileName(
                             storage::StableFingerprint(
                                 IdentityFor(w, generator)));
}

/// A table warmed with two full enumerations of `w`: the twice-missed
/// admission filter admits every subtree (including the chain-root
/// entry) on the second pass.
std::shared_ptr<TranspositionTable> WarmTable(const gen::Workload& w,
                                              const ChainGenerator& generator,
                                              RepairSpaceCache* cache) {
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(cache));
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(cache));
  return cache->TableFor(w.db, w.constraints, generator, true);
}

/// Stamps `count` synthetic entries into `table`, each removing a
/// distinct nonempty subset of the root's facts (the bits of a running
/// counter over the first six fact ids). RestoreEntry bypasses the
/// admission filter, so each call dirties the table's sequence clock by
/// exactly one — precise, deterministic spill traffic for the delta-log
/// tests. The entries' keys can never collide with a real walk's states
/// (their removed sets differ), so real lookups never see them; tests
/// that assert enumeration results only do so on tables without them.
void AddSyntheticEntries(const gen::Workload& w, TranspositionTable* table,
                         size_t count, size_t* counter) {
  std::vector<FactId> ids = w.db.AllFactIds();
  ASSERT_GE(ids.size(), 6u);
  for (size_t i = 0; i < count; ++i) {
    size_t mask = ++*counter;  // 1-based: never an empty subset
    ASSERT_LT(mask, 1u << 6);
    std::vector<FactId> removed;
    for (size_t bit = 0; bit < 6; ++bit) {
      if (mask & (1u << bit)) removed.push_back(ids[bit]);
    }
    std::sort(removed.begin(), removed.end());
    auto outcome = std::make_shared<MemoOutcome>();
    outcome->states = 1;
    outcome->failing_mass = Rational(1);
    outcome->failing_sequences = 1;
    StateKey key{/*db_hash=*/0x517E + mask, /*eliminated_hash=*/0};
    table->RestoreEntry(key, std::move(removed), ViolationSet{}, outcome);
  }
}

// ---------------------------------------------------------------------
// v2 encoding vs v1: size, round trip, rejection
// ---------------------------------------------------------------------

TEST(StorageV2FormatTest, V2IsSmallerThanV1AndBothRoundTrip) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/23);
  UniformChainGenerator generator;
  RepairSpaceCache cache;  // memory-only source of a warmed table
  std::shared_ptr<TranspositionTable> table = WarmTable(w, generator, &cache);
  ASSERT_NE(table, nullptr);
  ASSERT_GT(table->size(), 0u);

  storage::SnapshotIdentity identity = IdentityFor(w, generator);
  std::string v1 = storage::EncodeSnapshotV1(identity, w.db, *table);
  std::string v2 = storage::EncodeSnapshot(identity, w.db, *table);
  // The varint + gap-code + string-dictionary encoding must actually pay
  // for its complexity.
  EXPECT_LT(v2.size(), v1.size())
      << "v2 snapshot not smaller: " << v2.size() << " vs v1 " << v1.size();

  for (const std::string* bytes : {&v1, &v2}) {
    Result<std::shared_ptr<TranspositionTable>> decoded =
        storage::DecodeSnapshot(*bytes, identity, w.db, w.constraints,
                                TranspositionTable::kDefaultMaxEntries, 0);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ((*decoded)->size(), table->size());
  }
}

TEST(StorageV2FormatTest, VersionAboveNewestIsRejected) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/29);
  UniformChainGenerator generator;
  RepairSpaceCache cache;
  std::shared_ptr<TranspositionTable> table = WarmTable(w, generator, &cache);
  ASSERT_NE(table, nullptr);

  storage::SnapshotIdentity identity = IdentityFor(w, generator);
  std::string bytes = storage::EncodeSnapshot(identity, w.db, *table);
  // Byte 8 is the low byte of the little-endian format version.
  bytes[8] = static_cast<char>(storage::kSnapshotFormatVersion + 1);
  Result<std::shared_ptr<TranspositionTable>> decoded =
      storage::DecodeSnapshot(bytes, identity, w.db, w.constraints,
                              TranspositionTable::kDefaultMaxEntries, 0);
  EXPECT_FALSE(decoded.ok());
}

// ---------------------------------------------------------------------
// Committed v1 fixture: genuinely old bytes, fresh-process restore
// ---------------------------------------------------------------------

// The deterministic workload the committed fixture was generated from.
// Changing it invalidates tests/fixtures/v1_key_violation.snap — rerun
// the writer below and re-commit.
gen::Workload FixtureWorkload() {
  return gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
}

// Fixture generator, not a test: skipped unless OPCQA_WRITE_V1_FIXTURE
// names the output path. Run once (after any intentional change to the
// fixture workload or the v1 encoder — which should never change) and
// commit the bytes:
//   OPCQA_WRITE_V1_FIXTURE=tests/fixtures/v1_key_violation.snap \
//     build/tests/storage_v2_test \
//     --gtest_filter=StorageV1FixtureTest.WriteV1Fixture
TEST(StorageV1FixtureTest, WriteV1Fixture) {
  const char* out = std::getenv("OPCQA_WRITE_V1_FIXTURE");
  if (out == nullptr) {
    GTEST_SKIP() << "fixture writer; set OPCQA_WRITE_V1_FIXTURE to run";
  }
  gen::Workload w = FixtureWorkload();
  UniformChainGenerator generator;
  RepairSpaceCache cache;
  std::shared_ptr<TranspositionTable> table = WarmTable(w, generator, &cache);
  ASSERT_NE(table, nullptr);
  ASSERT_GT(table->size(), 0u);
  std::string bytes =
      storage::EncodeSnapshotV1(IdentityFor(w, generator), w.db, *table);
  std::ofstream file(out, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(file.good()) << out;
  file.write(bytes.data(), static_cast<std::streamoff>(bytes.size()));
  ASSERT_TRUE(file.good());
}

// Child half of V1FixtureCrossProcessWarmStart — a fresh process image
// (fork + exec), so the fixture's symbolic facts re-intern against
// interners that never saw the writer process.
TEST(StorageV1FixtureTest, ChildWarmStartFromFixture) {
  const char* dir = std::getenv("OPCQA_STORAGE_V2_CHILD_DIR");
  if (dir == nullptr) {
    GTEST_SKIP() << "child half of V1FixtureCrossProcessWarmStart";
  }
  gen::Workload w = FixtureWorkload();
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});
  RepairSpaceCache cache(DiskOptions(dir));
  EnumerationResult warm =
      EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  ASSERT_EQ(cache.disk_stats().restores, 1u);
  ASSERT_EQ(cache.disk_stats().rejected_snapshots, 0u);
  ASSERT_EQ(warm.memo_stats.hits, 1u);
  ASSERT_EQ(warm.memo_stats.misses, 0u);
  ExpectSameDistribution(warm, base);
}

// A build that writes v2 must keep restoring the v1 snapshots previous
// releases left on disk. The committed fixture holds genuinely old
// bytes — produced by the v1 encoder, never re-encoded — and the child
// process proves the whole path: file → verify → re-intern → replay,
// byte-identical to cold compute.
TEST(StorageV1FixtureTest, V1FixtureCrossProcessWarmStart) {
  fs::path fixture =
      fs::path(OPCQA_TEST_FIXTURE_DIR) / "v1_key_violation.snap";
  ASSERT_TRUE(fs::exists(fixture))
      << fixture << " missing — regenerate with the WriteV1Fixture test";
  gen::Workload w = FixtureWorkload();
  UniformChainGenerator generator;
  TempDir dir;
  fs::copy_file(fixture, BasePathFor(w, generator, dir.path()));

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("OPCQA_STORAGE_V2_CHILD_DIR", dir.path().c_str(), 1);
    ::execl("/proc/self/exe", "storage_v2_test",
            "--gtest_filter=StorageV1FixtureTest.ChildWarmStartFromFixture",
            static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "v1 fixture warm start failed; rerun with "
         "OPCQA_STORAGE_V2_CHILD_DIR for details";
}

// ---------------------------------------------------------------------
// Delta spills: append, restore, torn tails, compaction
// ---------------------------------------------------------------------

TEST(DeltaSpillTest, WarmStartReplaysBasePlusDeltaLog) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/37);
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});
  TempDir dir;
  {
    RepairCacheOptions options = DiskOptions(dir.path());
    // Never compact: the appended record must survive to the restore.
    options.log_compaction_ratio = 1e9;
    RepairSpaceCache cache(options);
    // Pass 1 defers every insert (the twice-missed filter), so this
    // spill publishes an *empty* base and arms the delta path.
    EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
    cache.Persist();
    ASSERT_EQ(cache.disk_stats().spills, 1u);
    ASSERT_EQ(cache.disk_stats().delta_appends, 0u);
    // Pass 2 admits the whole chain; this spill must append one record
    // carrying every entry instead of rewriting the base.
    EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
    cache.Persist();
    DiskTierStats disk = cache.disk_stats();
    EXPECT_EQ(disk.spills, 1u);
    EXPECT_EQ(disk.delta_appends, 1u);
    EXPECT_EQ(disk.compactions, 0u);
    EXPECT_GT(disk.compressed_bytes, 0u);
  }
  ASSERT_TRUE(fs::exists(LogPathFor(w, generator, dir.path())));

  // The warm start's every entry — including the chain-root replay entry
  // — lives in the delta log, not the base.
  RepairSpaceCache warm_cache(DiskOptions(dir.path()));
  EnumerationResult warm = EnumerateRepairs(w.db, w.constraints, generator,
                                            MemoOptions(&warm_cache));
  DiskTierStats disk = warm_cache.disk_stats();
  EXPECT_EQ(disk.restores, 1u);
  EXPECT_EQ(disk.promotions, 1u);
  EXPECT_EQ(disk.rejected_snapshots, 0u);
  EXPECT_EQ(warm.memo_stats.hits, 1u);
  EXPECT_EQ(warm.memo_stats.misses, 0u);
  ExpectSameDistribution(warm, base);
}

TEST(DeltaSpillTest, CleanRootSpillsNothing) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/41);
  UniformChainGenerator generator;
  TempDir dir;
  RepairSpaceCache cache(DiskOptions(dir.path()));
  WarmTable(w, generator, &cache);
  cache.Persist();
  DiskTierStats first = cache.disk_stats();
  ASSERT_EQ(first.spills, 1u);
  // Nothing admitted since: the second Persist must not touch the disk
  // (no rewrite, no append), and neither must session close.
  cache.Persist();
  DiskTierStats second = cache.disk_stats();
  EXPECT_EQ(second.spills, 1u);
  EXPECT_EQ(second.delta_appends, 0u);
  EXPECT_EQ(second.compressed_bytes, first.compressed_bytes);
}

/// Builds base (all real entries) + one delta record (synthetic entries)
/// under `dir` and returns the log path. `counter` feeds
/// AddSyntheticEntries.
fs::path BuildBasePlusDelta(const gen::Workload& w,
                            const ChainGenerator& generator,
                            const std::string& dir, size_t* counter) {
  RepairCacheOptions options = DiskOptions(dir);
  options.log_compaction_ratio = 1e9;
  RepairSpaceCache cache(options);
  std::shared_ptr<TranspositionTable> table = WarmTable(w, generator, &cache);
  EXPECT_NE(table, nullptr);
  cache.Persist();  // base: every real entry
  EXPECT_EQ(cache.disk_stats().spills, 1u);
  AddSyntheticEntries(w, table.get(), 2, counter);
  cache.Persist();  // one delta record: the two synthetic entries
  EXPECT_EQ(cache.disk_stats().delta_appends, 1u);
  return LogPathFor(w, generator, dir);
}

TEST(DeltaSpillTest, TornLogTailFallsBackToBaseAndCompacts) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/43);
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});
  TempDir dir;
  size_t counter = 0;
  fs::path log = BuildBasePlusDelta(w, generator, dir.path(), &counter);
  size_t cold_entries = 0;
  {
    RepairSpaceCache probe(DiskOptions(dir.path()));
    EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&probe));
    // Untorn control: base + record restore, synthetic entries included.
    cold_entries = probe.TotalStats().entries;
    ASSERT_EQ(probe.disk_stats().restores, 1u);
    ASSERT_GE(cold_entries, 2u);
  }

  // Tear the record: drop the log's last four bytes, as a crash mid-
  // append would. The restore must keep the base (never cold), drop the
  // torn record, and schedule a compaction that deletes the dead log.
  ASSERT_TRUE(fs::exists(log));
  fs::resize_file(log, fs::file_size(log) - 4);
  RepairSpaceCache warm_cache(DiskOptions(dir.path()));
  EnumerationResult warm = EnumerateRepairs(w.db, w.constraints, generator,
                                            MemoOptions(&warm_cache));
  DiskTierStats disk = warm_cache.disk_stats();
  EXPECT_EQ(disk.restores, 1u);
  EXPECT_EQ(disk.rejected_snapshots, 0u);  // a torn tail is not corruption
  EXPECT_EQ(warm.memo_stats.hits, 1u);  // base replays the whole chain
  EXPECT_EQ(warm.memo_stats.misses, 0u);
  ExpectSameDistribution(warm, base);
  // The two synthetic entries lived only in the torn record.
  EXPECT_EQ(warm_cache.TotalStats().entries, cold_entries - 2);

  warm_cache.Persist();
  EXPECT_EQ(warm_cache.disk_stats().compactions, 1u);
  EXPECT_FALSE(fs::exists(log)) << "compaction must delete the dead log";
}

TEST(DeltaSpillTest, CorruptLogHeadIsIgnoredWholesale) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/47);
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});
  TempDir dir;
  size_t counter = 0;
  fs::path log = BuildBasePlusDelta(w, generator, dir.path(), &counter);

  // Flip a byte inside the head's identity payload (offset 30: past the
  // 8-byte magic, 4-byte version and 16-byte section frame). The head no
  // longer verifies, so *no* record may apply — base-only, never cold.
  std::fstream file(log, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(30);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  file.seekp(30);
  file.write(&byte, 1);
  file.close();

  RepairSpaceCache warm_cache(DiskOptions(dir.path()));
  EnumerationResult warm = EnumerateRepairs(w.db, w.constraints, generator,
                                            MemoOptions(&warm_cache));
  DiskTierStats disk = warm_cache.disk_stats();
  EXPECT_EQ(disk.restores, 1u);
  EXPECT_EQ(disk.rejected_snapshots, 1u);  // the dead log is counted
  EXPECT_EQ(warm.memo_stats.hits, 1u);
  EXPECT_EQ(warm.memo_stats.misses, 0u);
  ExpectSameDistribution(warm, base);
}

TEST(DeltaSpillTest, LogOutgrowingRatioCompactsIntoFreshBase) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/53);
  UniformChainGenerator generator;
  TempDir dir;
  RepairCacheOptions options = DiskOptions(dir.path());
  options.log_compaction_ratio = 0.0;  // every dirty spill compacts
  RepairSpaceCache cache(options);
  std::shared_ptr<TranspositionTable> table = WarmTable(w, generator, &cache);
  ASSERT_NE(table, nullptr);
  cache.Persist();
  ASSERT_EQ(cache.disk_stats().spills, 1u);
  size_t counter = 0;
  AddSyntheticEntries(w, table.get(), 2, &counter);
  cache.Persist();
  DiskTierStats disk = cache.disk_stats();
  // With the threshold at zero the dirty root rewrote its base instead
  // of appending — but only counts as a compaction once a log (or a
  // forced rewrite) was actually superseded, which a log-less root's
  // rewrite is not.
  EXPECT_EQ(disk.spills, 2u);
  EXPECT_EQ(disk.delta_appends, 0u);
  EXPECT_FALSE(fs::exists(LogPathFor(w, generator, dir.path())));
}

#ifdef OPCQA_FAILPOINTS
TEST(DeltaSpillTest, FailedCompactionLeavesPreviousBaseAndLogReadable) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/59);
  UniformChainGenerator generator;
  TempDir dir;
  size_t counter = 0;
  BuildBasePlusDelta(w, generator, dir.path(), &counter);
  size_t full_entries = 0;
  {
    RepairSpaceCache probe(DiskOptions(dir.path()));
    EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&probe));
    full_entries = probe.TotalStats().entries;
    ASSERT_EQ(probe.disk_stats().restores, 1u);
  }

  {
    // A dirty root whose compaction dies before Put must leave the
    // previous base + log untouched on disk (Put is atomic and the log
    // is only deleted after a durable Put).
    FailpointScope fp("repair_cache.compact",
                      FailpointSpec{FailpointAction::kError});
    RepairCacheOptions options = DiskOptions(dir.path());
    options.log_compaction_ratio = 0.0;  // force the compaction path
    RepairSpaceCache cache(options);
    std::shared_ptr<TranspositionTable> table =
        cache.TableFor(w.db, w.constraints, generator, true);
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(cache.disk_stats().restores, 1u);
    AddSyntheticEntries(w, table.get(), 1, &counter);
    cache.Persist();
    DiskTierStats disk = cache.disk_stats();
    EXPECT_GE(disk.failed_spills, 1u);
    EXPECT_EQ(disk.compactions, 0u);
  }  // destructor's spill fails the same way; both files must survive

  RepairSpaceCache after(DiskOptions(dir.path()));
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&after));
  EXPECT_EQ(after.disk_stats().restores, 1u);
  EXPECT_EQ(after.disk_stats().rejected_snapshots, 0u);
  EXPECT_EQ(after.TotalStats().entries, full_entries);
}
#endif  // OPCQA_FAILPOINTS

// ---------------------------------------------------------------------
// kill -9 mid-spill: SIGKILL during a delta append and during a base
// rewrite, real process death via fork + exec (the ROADMAP e2e item)
// ---------------------------------------------------------------------

#ifdef OPCQA_FAILPOINTS

/// The deterministic workload both kill -9 halves share.
gen::Workload KillWorkload() {
  return gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/73);
}

// Child half of KillNineMidDeltaAppend — parks inside the second
// AppendDelta (the armed delay failpoint sleeps 60 s at the top of the
// append, before any byte is written) until the parent's SIGKILL lands.
TEST(CrashRecoveryTest, ChildAppendUntilKilled) {
  const char* dir = std::getenv("OPCQA_STORAGE_V2_KILL_DIR");
  if (dir == nullptr) {
    GTEST_SKIP() << "child half of the kill -9 crash-recovery tests";
  }
  gen::Workload w = KillWorkload();
  UniformChainGenerator generator;
  RepairCacheOptions options = DiskOptions(dir);
  options.log_compaction_ratio = 1e9;  // never compact: pure append path
  RepairSpaceCache cache(options);
  std::shared_ptr<TranspositionTable> table = WarmTable(w, generator, &cache);
  ASSERT_NE(table, nullptr);
  cache.Persist();  // base: every real entry
  size_t counter = 0;
  AddSyntheticEntries(w, table.get(), 2, &counter);
  cache.Persist();  // append #1 — the valid prefix that must survive
  std::ofstream(fs::path(dir) / "ready").flush();  // parent may kill now
  AddSyntheticEntries(w, table.get(), 2, &counter);
  cache.Persist();  // append #2 parks in the delay; SIGKILL lands here
  ADD_FAILURE() << "parent failed to SIGKILL the parked child";
}

// Child half of KillNineMidBaseRewrite — parks inside the second
// WriteDurably (the base rewrite's temp file, before fopen), so the
// committed v1 base is still the newest durable state at death.
TEST(CrashRecoveryTest, ChildRewriteUntilKilled) {
  const char* dir = std::getenv("OPCQA_STORAGE_V2_KILL_DIR");
  if (dir == nullptr) {
    GTEST_SKIP() << "child half of the kill -9 crash-recovery tests";
  }
  gen::Workload w = KillWorkload();
  UniformChainGenerator generator;
  RepairCacheOptions options = DiskOptions(dir);
  options.log_compaction_ratio = 0.0;  // every dirty spill rewrites the base
  RepairSpaceCache cache(options);
  std::shared_ptr<TranspositionTable> table = WarmTable(w, generator, &cache);
  ASSERT_NE(table, nullptr);
  cache.Persist();  // base v1: write #1
  size_t counter = 0;
  AddSyntheticEntries(w, table.get(), 1, &counter);
  std::ofstream(fs::path(dir) / "ready").flush();  // parent may kill now
  cache.Persist();  // rewrite (write #2) parks in the delay; SIGKILL lands
  ADD_FAILURE() << "parent failed to SIGKILL the parked child";
}

/// Fork + execs this test binary running `child_filter` with the given
/// OPCQA_FAILPOINTS spec armed, waits for the child's ready marker in
/// `dir`, gives it a beat to park inside the delay failpoint, SIGKILLs
/// it, and asserts it really died by signal — no atexit, no destructors.
void RunChildUntilKilled(const std::string& dir, const char* child_filter,
                         const char* failpoints) {
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("OPCQA_STORAGE_V2_KILL_DIR", dir.c_str(), 1);
    ::setenv("OPCQA_FAILPOINTS", failpoints, 1);
    ::execl("/proc/self/exe", "storage_v2_test", child_filter,
            static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  fs::path marker = fs::path(dir) / "ready";
  for (int i = 0; i < 3000 && !fs::exists(marker); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(fs::exists(marker)) << "child never reached the doomed spill";
  // The doomed spill follows the marker immediately and then sleeps 60 s
  // inside the failpoint; half a second puts the child well inside it.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  std::error_code ignored;
  fs::remove(marker, ignored);
}

// A process SIGKILLed mid-delta-append must leave base + the pre-crash
// record as a valid prefix: the next process restores both (no rejected
// snapshot, no cold walk) and answers byte-identically.
TEST(CrashRecoveryTest, KillNineMidDeltaAppendKeepsValidPrefix) {
  gen::Workload w = KillWorkload();
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});
  TempDir dir;
  RunChildUntilKilled(
      dir.path(), "--gtest_filter=CrashRecoveryTest.ChildAppendUntilKilled",
      "storage.snapshot_store.append=delay,delay=60000,nth=2");
  // Both tiers survived: the base and the log holding append #1.
  ASSERT_TRUE(fs::exists(BasePathFor(w, generator, dir.path())));
  ASSERT_TRUE(fs::exists(LogPathFor(w, generator, dir.path())));

  RepairSpaceCache after(DiskOptions(dir.path()));
  EnumerationResult warm = EnumerateRepairs(w.db, w.constraints, generator,
                                            MemoOptions(&after));
  DiskTierStats disk = after.disk_stats();
  EXPECT_EQ(disk.restores, 1u);
  EXPECT_EQ(disk.rejected_snapshots, 0u);
  EXPECT_EQ(warm.memo_stats.hits, 1u);  // chain-root replay, never cold
  EXPECT_EQ(warm.memo_stats.misses, 0u);
  ExpectSameDistribution(warm, base);
}

// A process SIGKILLed mid-base-Put (the rewrite's temp file never
// renamed) must leave the previous committed base untouched: the next
// process restores it and answers byte-identically.
TEST(CrashRecoveryTest, KillNineMidBaseRewriteKeepsCommittedBase) {
  gen::Workload w = KillWorkload();
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});
  TempDir dir;
  RunChildUntilKilled(
      dir.path(), "--gtest_filter=CrashRecoveryTest.ChildRewriteUntilKilled",
      "storage.snapshot_store.write=delay,delay=60000,nth=2");
  ASSERT_TRUE(fs::exists(BasePathFor(w, generator, dir.path())));

  RepairSpaceCache after(DiskOptions(dir.path()));
  EnumerationResult warm = EnumerateRepairs(w.db, w.constraints, generator,
                                            MemoOptions(&after));
  DiskTierStats disk = after.disk_stats();
  EXPECT_EQ(disk.restores, 1u);
  EXPECT_EQ(disk.rejected_snapshots, 0u);
  EXPECT_EQ(warm.memo_stats.hits, 1u);
  EXPECT_EQ(warm.memo_stats.misses, 0u);
  ExpectSameDistribution(warm, base);
}

#endif  // OPCQA_FAILPOINTS

// ---------------------------------------------------------------------
// Write amplification: delta spills vs full rewrites
// ---------------------------------------------------------------------

TEST(DeltaSpillTest, DeltaSpillsCutBytesWrittenAtLeastThreefold) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/61);
  UniformChainGenerator generator;
  // Identical mutating workload under both modes: a warmed base, then
  // eight rounds of four admitted entries with a Persist after each —
  // the steady state of a long-lived session that keeps learning.
  auto bytes_written = [&](bool delta_spill) {
    TempDir dir;
    RepairCacheOptions options = DiskOptions(dir.path());
    options.delta_spill = delta_spill;
    options.log_compaction_ratio = 1e9;
    RepairSpaceCache cache(options);
    std::shared_ptr<TranspositionTable> table =
        WarmTable(w, generator, &cache);
    EXPECT_NE(table, nullptr);
    cache.Persist();
    size_t counter = 0;
    for (int round = 0; round < 8; ++round) {
      AddSyntheticEntries(w, table.get(), 4, &counter);
      cache.Persist();
    }
    DiskTierStats disk = cache.disk_stats();
    EXPECT_EQ(disk.failed_spills, 0u);
    if (delta_spill) {
      EXPECT_EQ(disk.delta_appends, 8u);
      EXPECT_EQ(disk.spills, 1u);
    } else {
      EXPECT_EQ(disk.delta_appends, 0u);
      EXPECT_EQ(disk.spills, 9u);
    }
    return disk.compressed_bytes;
  };
  uint64_t with_delta = bytes_written(true);
  uint64_t without_delta = bytes_written(false);
  // The PR 9 acceptance bar: >= 3x fewer bytes written on a mutating
  // workload (the CI pr9_disk_delta_ms series gates the time side).
  EXPECT_GE(without_delta, 3 * with_delta)
      << "full rewrites wrote " << without_delta << " bytes, delta spills "
      << with_delta;
}

// ---------------------------------------------------------------------
// Unified promote/demote residency
// ---------------------------------------------------------------------

TEST(ResidencyTest, EvictionDemotesAndRestorePromotes) {
  UniformChainGenerator generator;
  gen::Workload first = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/67);
  gen::Workload second = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/68);
  TempDir dir;
  RepairCacheOptions options = DiskOptions(dir.path());
  options.max_roots = 1;
  RepairSpaceCache cache(options);
  WarmTable(first, generator, &cache);
  EXPECT_EQ(cache.disk_stats().demotions, 0u);
  // The second root overflows max_roots: the first is demoted (its
  // state spilled), not just dropped.
  EnumerateRepairs(second.db, second.constraints, generator,
                   MemoOptions(&cache));
  EXPECT_EQ(cache.roots(), 1u);
  EXPECT_EQ(cache.disk_stats().demotions, 1u);
  EXPECT_EQ(cache.disk_stats().promotions, 0u);
  // Demotion spills run on the background pool; drain before probing the
  // demoted root so its snapshot is durably on disk.
  cache.Persist();
  // Touching the first root again promotes it from disk (and demotes
  // the second): a promotion is always also a restore.
  EnumerationResult warm = EnumerateRepairs(
      first.db, first.constraints, generator, MemoOptions(&cache));
  DiskTierStats disk = cache.disk_stats();
  EXPECT_EQ(disk.promotions, 1u);
  EXPECT_EQ(disk.restores, 1u);
  EXPECT_EQ(disk.demotions, 2u);
  EXPECT_EQ(warm.memo_stats.hits, 1u);
  EXPECT_EQ(warm.memo_stats.misses, 0u);
}

TEST(ResidencyTest, MemoryBudgetDemotesEarly) {
  UniformChainGenerator generator;
  gen::Workload first = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/71);
  gen::Workload second = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/72);
  TempDir dir;
  RepairCacheOptions options = DiskOptions(dir.path());
  options.max_roots = 8;  // never the binding constraint here
  options.max_memory_bytes = 1;
  RepairSpaceCache cache(options);
  WarmTable(first, generator, &cache);
  // Far over the byte budget, but the sole (most recently used) root is
  // never a victim — the budget cannot empty the cache.
  EXPECT_EQ(cache.roots(), 1u);
  WarmTable(second, generator, &cache);
  // The byte budget demoted the idle first root long before max_roots.
  EXPECT_EQ(cache.roots(), 1u);
  EXPECT_GE(cache.disk_stats().demotions, 1u);
  cache.Persist();  // drain the background demotion spill
  EXPECT_TRUE(fs::exists(BasePathFor(first, generator, dir.path())));
}

// ---------------------------------------------------------------------
// SnapshotStore: log accounting, root-unit GC, quarantine
// ---------------------------------------------------------------------

storage::SnapshotStoreOptions StoreOptions(const std::string& dir,
                                           size_t max_disk_bytes = 0) {
  storage::SnapshotStoreOptions options;
  options.directory = dir;
  options.max_disk_bytes = max_disk_bytes;
  return options;
}

TEST(SnapshotStoreDeltaTest, AppendWritesHeadOnceAndCountsTotalBytes) {
  TempDir dir;
  storage::SnapshotStore store(StoreOptions(dir.path()));
  ASSERT_TRUE(store.Put(1, "basebase").ok());  // 8 bytes
  ASSERT_TRUE(store.AppendDelta(1, "HEAD", "r1").ok());
  ASSERT_TRUE(store.AppendDelta(1, "HEAD", "r2").ok());  // head not repeated
  Result<std::string> log = store.GetLog(1);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(*log, "HEADr1r2");
  EXPECT_EQ(store.LogBytes(1), 8u);
  EXPECT_EQ(store.LogBytes(2), 0u);
  // Both tiers of the root count toward the directory budget.
  EXPECT_EQ(store.TotalBytes(), 16u);
  store.DeleteLog(1);
  EXPECT_EQ(store.GetLog(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.TotalBytes(), 8u);
}

TEST(SnapshotStoreDeltaTest, GcDeletesWholeRootsLogBeforeBase) {
  TempDir dir;
  // Budget fits exactly one 10-byte base: spilling a second root must
  // delete the first root's base AND its log (deleting only the base
  // would orphan the log forever).
  storage::SnapshotStore store(StoreOptions(dir.path(),
                                            /*max_disk_bytes=*/10));
  ASSERT_TRUE(store.Put(1, "0123456789").ok());
  ASSERT_TRUE(store.AppendDelta(1, "HEAD", "rec").ok());
  // Distinct mtimes so "oldest" is well defined on coarse clocks.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(store.Put(2, "0123456789").ok());
  fs::path base1 = fs::path(dir.path()) / storage::SnapshotStore::FileName(1);
  fs::path log1 =
      fs::path(dir.path()) / storage::SnapshotStore::LogFileName(1);
  fs::path base2 = fs::path(dir.path()) / storage::SnapshotStore::FileName(2);
  EXPECT_FALSE(fs::exists(base1));
  EXPECT_FALSE(fs::exists(log1));
  EXPECT_TRUE(fs::exists(base2));
  EXPECT_EQ(store.TotalBytes(), 10u);
}

TEST(SnapshotStoreDeltaTest, OrphanLogsAreSweptByGc) {
  TempDir dir;
  storage::SnapshotStore store(StoreOptions(dir.path(),
                                            /*max_disk_bytes=*/1 << 20));
  // A log with no base — a crashed compaction window's leftovers. No
  // restore will ever apply it, so GC removes it even under budget.
  fs::path orphan = fs::path(dir.path()) /
                    storage::SnapshotStore::LogFileName(0xabcdef);
  fs::create_directories(dir.path());
  std::ofstream(orphan) << "dead records";
  ASSERT_TRUE(fs::exists(orphan));
  ASSERT_TRUE(store.Put(1, "base").ok());  // any Put runs the GC pass
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_TRUE(fs::exists(fs::path(dir.path()) /
                         storage::SnapshotStore::FileName(1)));
}

TEST(SnapshotStoreDeltaTest, QuarantineTakesBaseAndLogTogether) {
  TempDir dir;
  storage::SnapshotStore store(StoreOptions(dir.path()));
  ASSERT_TRUE(store.Put(7, "base").ok());
  ASSERT_TRUE(store.AppendDelta(7, "HEAD", "rec").ok());
  store.MarkCorrupt(7);
  store.MarkCorrupt(7);
  ASSERT_TRUE(store.IsQuarantined(7));
  // Neither tier is probed any more, and neither lingers where GC would
  // see an orphan.
  EXPECT_EQ(store.Get(7).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.GetLog(7).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.AppendDelta(7, "HEAD", "rec").ok());
  fs::path quarantine =
      fs::path(dir.path()) / storage::SnapshotStore::kQuarantineDirName;
  EXPECT_TRUE(fs::exists(quarantine / storage::SnapshotStore::FileName(7)));
  EXPECT_TRUE(
      fs::exists(quarantine / storage::SnapshotStore::LogFileName(7)));
  EXPECT_FALSE(fs::exists(fs::path(dir.path()) /
                          storage::SnapshotStore::LogFileName(7)));
}

}  // namespace
}  // namespace opcqa
