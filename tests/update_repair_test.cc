// Tests for update-based repairing (Section 6, "Different Types of
// Updates").

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "constraints/satisfaction.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/ocqa.h"
#include "repair/update_repair.h"

namespace opcqa {
namespace {

class UpdateRepairTest : public ::testing::Test {
 protected:
  UpdateRepairTest() {
    schema_.AddRelation("R", 2);
    schema_.AddRelation("S", 3);
    schema_.AddRelation("T", 1);
  }

  Database Db(std::string_view text) {
    return ParseDatabase(schema_, text).value();
  }
  ConstraintSet Sigma(std::string_view text) {
    return ParseConstraints(schema_, text).value();
  }

  Schema schema_;
};

TEST_F(UpdateRepairTest, RecognizesSimpleKey) {
  auto keys = ExtractKeyEgds(schema_, Sigma("R(x,y), R(x,z) -> y = z"));
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  ASSERT_EQ(keys.value().size(), 1u);
  EXPECT_EQ(keys.value()[0].pred, schema_.RelationOrDie("R"));
  EXPECT_EQ(keys.value()[0].key_positions, (std::vector<size_t>{0}));
}

TEST_F(UpdateRepairTest, MergesMultipleEgdsOverOnePredicate) {
  // Two EGDs spell out a one-attribute key of the ternary S.
  auto keys = ExtractKeyEgds(
      schema_, Sigma("S(x,y1,y2), S(x,z1,z2) -> y1 = z1\n"
                     "S(x,y1,y2), S(x,z1,z2) -> y2 = z2"));
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  ASSERT_EQ(keys.value().size(), 1u);
  EXPECT_EQ(keys.value()[0].key_positions, (std::vector<size_t>{0}));
}

TEST_F(UpdateRepairTest, RejectsNonKeyConstraints) {
  EXPECT_FALSE(ExtractKeyEgds(schema_, Sigma("R(x,y) -> S(x,y,y)")).ok());
  EXPECT_FALSE(
      ExtractKeyEgds(schema_, Sigma("R(x,y), R(y,x) -> false")).ok());
  // EGD over two different predicates is not a key.
  EXPECT_FALSE(
      ExtractKeyEgds(schema_, Sigma("R(x,y), S(x,z,w) -> y = z")).ok());
  // EGD with three body atoms.
  EXPECT_FALSE(
      ExtractKeyEgds(schema_,
                     Sigma("R(x,y), R(x,z), R(x,w) -> y = z")).ok());
}

TEST_F(UpdateRepairTest, RepairSatisfiesKeysAndKeepsEveryKey) {
  Database db = Db("R(a,b). R(a,c). R(d,e). R(f,g). R(f,h).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  auto keys = ExtractKeyEgds(schema_, sigma).value();
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    UpdateRepairResult repair = SampleUpdateRepair(db, keys, &rng);
    EXPECT_TRUE(Satisfies(repair.db, sigma));
    // Exactly one fact per key: 3 keys → 3 facts, never fewer.
    EXPECT_EQ(repair.db.size(), 3u);
    EXPECT_EQ(repair.updates, 2u);          // one per violating group
    EXPECT_EQ(repair.groups_resolved, 2u);  // keys a and f
    // The clean tuple always survives unchanged.
    EXPECT_TRUE(repair.db.Contains(Fact::Make(schema_, "R", {"d", "e"})));
  }
}

TEST_F(UpdateRepairTest, UnkeyedRelationsPassThrough) {
  Database db = Db("R(a,b). R(a,c). T(t1). T(t2).");
  auto keys =
      ExtractKeyEgds(schema_, Sigma("R(x,y), R(x,z) -> y = z")).value();
  Rng rng(5);
  UpdateRepairResult repair = SampleUpdateRepair(db, keys, &rng);
  EXPECT_TRUE(repair.db.Contains(Fact::Make(schema_, "T", {"t1"})));
  EXPECT_TRUE(repair.db.Contains(Fact::Make(schema_, "T", {"t2"})));
}

TEST_F(UpdateRepairTest, UniformWinnerFrequencies) {
  Database db = Db("R(a,b). R(a,c).");
  auto keys =
      ExtractKeyEgds(schema_, Sigma("R(x,y), R(x,z) -> y = z")).value();
  Query q = ParseQuery(schema_, "Q(y) := R(a,y)").value();
  UpdateOcaResult result =
      EstimateUpdateOca(db, keys, q, /*runs=*/4000, /*seed=*/11);
  EXPECT_NEAR(result.Frequency({Const("b")}), 0.5, 0.03);
  EXPECT_NEAR(result.Frequency({Const("c")}), 0.5, 0.03);
  EXPECT_DOUBLE_EQ(result.mean_updates, 1.0);
}

TEST_F(UpdateRepairTest, TrustWeightsSkewTheWinner) {
  Database db = Db("R(a,b). R(a,c).");
  auto keys =
      ExtractKeyEgds(schema_, Sigma("R(x,y), R(x,z) -> y = z")).value();
  std::map<Fact, double> trust = {
      {Fact::Make(schema_, "R", {"a", "b"}), 3.0},
      {Fact::Make(schema_, "R", {"a", "c"}), 1.0},
  };
  Query q = ParseQuery(schema_, "Q(y) := R(a,y)").value();
  UpdateOcaResult result =
      EstimateUpdateOca(db, keys, q, /*runs=*/4000, /*seed=*/13, trust);
  EXPECT_NEAR(result.Frequency({Const("b")}), 0.75, 0.03);
  EXPECT_NEAR(result.Frequency({Const("c")}), 0.25, 0.03);
}

TEST_F(UpdateRepairTest, KeyPresenceIsCertainUnlikeDeletionRepairs) {
  // The contrast the module exists for: "does key a exist?" is certain
  // under update repairs but loses mass under deletion repairs (which may
  // remove the whole group).
  Database db = Db("R(a,b). R(a,c).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  Query exists_a = ParseQuery(schema_, "Q() := exists y: R(a,y)").value();

  auto keys = ExtractKeyEgds(schema_, sigma).value();
  UpdateOcaResult updates =
      EstimateUpdateOca(db, keys, exists_a, /*runs=*/500, /*seed=*/17);
  EXPECT_DOUBLE_EQ(updates.Frequency({}), 1.0);

  UniformChainGenerator uniform;
  Rational deletion_cp =
      ComputeTupleProbability(db, sigma, uniform, exists_a, Tuple{});
  EXPECT_EQ(deletion_cp, Rational(2, 3));  // the −{both} repair loses it
}

TEST_F(UpdateRepairTest, WorksOnGeneratedWorkloads) {
  gen::Workload w = gen::MakeKeyViolationWorkload(10, 6, 3, /*seed=*/29);
  auto keys = ExtractKeyEgds(*w.schema, w.constraints).value();
  Rng rng(31);
  UpdateRepairResult repair = SampleUpdateRepair(w.db, keys, &rng);
  EXPECT_TRUE(Satisfies(repair.db, w.constraints));
  EXPECT_EQ(repair.db.size(), 10u);  // one fact per key
  EXPECT_EQ(repair.groups_resolved, 6u);
  EXPECT_EQ(repair.updates, 6u * 2u);  // group size 3 → 2 rewrites each
}

}  // namespace
}  // namespace opcqa
