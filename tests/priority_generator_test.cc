// Tests for priority-based (preference) chain generators.

#include <gtest/gtest.h>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"
#include "repair/priority_generator.h"

namespace opcqa {
namespace {

TEST(PriorityGeneratorTest, TopPrioritySharesMassUniformly) {
  gen::Workload w = gen::PaperKeyPairExample();
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState root(context);
  std::vector<Operation> exts = root.ValidExtensions();
  ASSERT_EQ(exts.size(), 3u);
  PriorityChainGenerator gen = PriorityChainGenerator::MinimalChange();
  std::vector<Rational> probs = CheckedProbabilities(gen, root, exts);
  // Single-fact deletions (size 1) outrank the pair deletion (size 2).
  for (size_t i = 0; i < exts.size(); ++i) {
    if (exts[i].size() == 1) {
      EXPECT_EQ(probs[i], Rational(1, 2));
    } else {
      EXPECT_TRUE(probs[i].is_zero());
    }
  }
}

TEST(PriorityGeneratorTest, MinimalChangeNeverDropsBoth) {
  // Under minimal-change priority the "distrust both" repair (∅) is
  // unreachable: its probability is 0.
  gen::Workload w = gen::PaperKeyPairExample();
  PriorityChainGenerator gen = PriorityChainGenerator::MinimalChange();
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  EXPECT_EQ(result.repairs.size(), 2u);
  Database empty(w.schema.get());
  EXPECT_TRUE(result.ProbabilityOf(empty).is_zero());
}

TEST(PriorityGeneratorTest, MinimalChangeReachesExactlyAbcStyleRepairs) {
  // On the preference example, minimal change = single-atom deletions =
  // the four ABC repairs, uniformly 1/4 each (every repair needs two
  // single deletions; each order has probability 1/2·1/2... summed 1/4).
  gen::Workload w = gen::PaperPreferenceExample();
  PriorityChainGenerator gen = PriorityChainGenerator::MinimalChange();
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  ASSERT_EQ(result.repairs.size(), 4u);
  for (const RepairInfo& info : result.repairs) {
    EXPECT_EQ(info.probability, Rational(1, 4));
  }
}

TEST(PriorityGeneratorTest, DeleteLowestScoreFirstIsDeterministicHere) {
  gen::Workload w = gen::PaperKeyPairExample();
  Fact ab = Fact::Make(*w.schema, "R", {"a", "b"});
  Fact ac = Fact::Make(*w.schema, "R", {"a", "c"});
  PriorityChainGenerator gen =
      PriorityChainGenerator::DeleteLowestScoreFirst(
          {{ab, 10}, {ac, 1}});
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  // The low-score fact R(a,c) is deleted with certainty: one repair.
  ASSERT_EQ(result.repairs.size(), 1u);
  EXPECT_TRUE(result.repairs[0].repair.Contains(ab));
  EXPECT_FALSE(result.repairs[0].repair.Contains(ac));
  EXPECT_EQ(result.repairs[0].probability, Rational(1));
}

TEST(PriorityGeneratorTest, DefaultScoreAppliesToUnlistedFacts) {
  gen::Workload w = gen::PaperKeyPairExample();
  Fact ab = Fact::Make(*w.schema, "R", {"a", "b"});
  // ab listed with score 5; ac defaults to 0 → ac deleted first.
  PriorityChainGenerator gen =
      PriorityChainGenerator::DeleteLowestScoreFirst({{ab, 5}},
                                                     /*default_score=*/0);
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  ASSERT_EQ(result.repairs.size(), 1u);
  EXPECT_TRUE(result.repairs[0].repair.Contains(ab));
}

TEST(PriorityGeneratorTest, TieBreaksUniformly) {
  gen::Workload w = gen::PaperKeyPairExample();
  // Equal scores: both single deletions tie; pair deletion ranks below
  // (its max score equals the singles' but −|F| is not part of this rank,
  // so it ties too — all three share the top rank? No: pair's worst score
  // equals the singles' scores here, so all three tie and each repair
  // gets 1/3).
  PriorityChainGenerator gen =
      PriorityChainGenerator::DeleteLowestScoreFirst({}, /*default=*/0);
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  EXPECT_EQ(result.repairs.size(), 3u);
  for (const RepairInfo& info : result.repairs) {
    EXPECT_EQ(info.probability, Rational(1, 3));
  }
}

TEST(PriorityGeneratorTest, CustomRankFunctionWithState) {
  // Rank can inspect the state: prefer deleting facts whose key has the
  // most surviving tuples (load balancing). Just check it is well-formed.
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 2, 3, /*seed=*/70);
  PriorityChainGenerator gen(
      "load-balance",
      [](const RepairingState& state, const Operation& op) -> int64_t {
        return static_cast<int64_t>(state.current().size()) -
               static_cast<int64_t>(op.size());
      });
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  EXPECT_FALSE(result.repairs.empty());
  EXPECT_EQ(result.success_mass, Rational(1));
}

TEST(PriorityGeneratorTest, WorksWithOcqa) {
  gen::Workload w = gen::PaperPreferenceExample();
  PriorityChainGenerator gen = PriorityChainGenerator::MinimalChange();
  Result<Query> q =
      ParseQuery(*w.schema, "Q(x) := forall y (Pref(x,y) | x = y)");
  ASSERT_TRUE(q.ok());
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  // Under the uniform-over-ABC-repairs chain, a is an answer in 1 of 4.
  EXPECT_EQ(oca.Probability({Const("a")}), Rational(1, 4));
}

}  // namespace
}  // namespace opcqa
