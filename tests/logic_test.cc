// Tests for terms, atoms, conjunctions and homomorphism search.

#include <gtest/gtest.h>

#include "logic/homomorphism.h"
#include "relational/fact_parser.h"

namespace opcqa {
namespace {

TEST(TermTest, VariablesAndConstants) {
  Term x = Term::MakeVar("x");
  Term a = Term::MakeConst("a");
  EXPECT_TRUE(x.is_var());
  EXPECT_TRUE(a.is_const());
  EXPECT_EQ(x.ToString(), "x");
  EXPECT_EQ(a.ToString(), "a");
  EXPECT_EQ(Term::MakeVar("x"), x);
  EXPECT_NE(Term::MakeVar("y"), x);
}

TEST(TermTest, VariableAndConstantNamespacesAreDisjoint) {
  // A variable named "a" and a constant named "a" are different terms.
  EXPECT_NE(Term::MakeVar("a"), Term::MakeConst("a"));
}

class LogicFixture : public ::testing::Test {
 protected:
  LogicFixture() {
    r_ = schema_.AddRelation("R", 2);
    s_ = schema_.AddRelation("S", 1);
  }

  Atom RAtom(Term t1, Term t2) { return Atom(r_, {t1, t2}); }

  Schema schema_;
  PredId r_, s_;
};

TEST_F(LogicFixture, AtomBasics) {
  Atom atom = RAtom(Term::MakeVar("x"), Term::MakeConst("a"));
  EXPECT_FALSE(atom.is_ground());
  EXPECT_EQ(atom.ToString(schema_), "R(x,a)");
  std::vector<VarId> vars;
  atom.CollectVariables(&vars);
  EXPECT_EQ(vars, std::vector<VarId>{Var("x")});
  std::vector<ConstId> consts;
  atom.CollectConstants(&consts);
  EXPECT_EQ(consts, std::vector<ConstId>{Const("a")});
}

TEST_F(LogicFixture, GroundAtomToFact) {
  Atom atom = RAtom(Term::MakeConst("a"), Term::MakeConst("b"));
  EXPECT_TRUE(atom.is_ground());
  EXPECT_EQ(atom.ToFact(), Fact::Make(schema_, "R", {"a", "b"}));
}

TEST_F(LogicFixture, ConjunctionVariablesInFirstOccurrenceOrder) {
  Conjunction conj;
  conj.Add(RAtom(Term::MakeVar("y"), Term::MakeVar("x")));
  conj.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("z")));
  EXPECT_EQ(conj.Variables(),
            (std::vector<VarId>{Var("y"), Var("x"), Var("z")}));
}

TEST_F(LogicFixture, AssignmentBindApplyUnbind) {
  Assignment a;
  EXPECT_FALSE(a.IsBound(Var("x")));
  a.Bind(Var("x"), Const("a"));
  EXPECT_TRUE(a.IsBound(Var("x")));
  EXPECT_EQ(a.Apply(Term::MakeVar("x")), Const("a"));
  EXPECT_EQ(a.Apply(Term::MakeConst("b")), Const("b"));
  a.Unbind(Var("x"));
  EXPECT_FALSE(a.IsBound(Var("x")));
}

TEST_F(LogicFixture, AssignmentApplyAllDeduplicates) {
  Conjunction conj;
  conj.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("y")));
  conj.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("y")));
  Assignment a;
  a.Bind(Var("x"), Const("a"));
  a.Bind(Var("y"), Const("b"));
  EXPECT_EQ(a.ApplyAll(conj).size(), 1u);
}

TEST_F(LogicFixture, AssignmentExtendedBy) {
  Assignment small, big;
  small.Bind(Var("x"), Const("a"));
  big.Bind(Var("x"), Const("a"));
  big.Bind(Var("y"), Const("b"));
  EXPECT_TRUE(small.ExtendedBy(big));
  EXPECT_FALSE(big.ExtendedBy(small));
  Assignment conflicting;
  conflicting.Bind(Var("x"), Const("b"));
  EXPECT_FALSE(small.ExtendedBy(conflicting));
}

TEST_F(LogicFixture, FindAllHomomorphismsSingleAtom) {
  Database db = *ParseDatabase(schema_, "R(a,b). R(a,c). R(b,c).");
  Conjunction conj;
  conj.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("y")));
  EXPECT_EQ(AllHomomorphisms(conj, db, Assignment()).size(), 3u);
}

TEST_F(LogicFixture, HomomorphismJoinChain) {
  Database db = *ParseDatabase(schema_, "R(a,b). R(b,c). R(c,d).");
  Conjunction conj;
  conj.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("y")));
  conj.Add(RAtom(Term::MakeVar("y"), Term::MakeVar("z")));
  std::vector<Assignment> homs = AllHomomorphisms(conj, db, Assignment());
  // Chains: a->b->c and b->c->d.
  EXPECT_EQ(homs.size(), 2u);
}

TEST_F(LogicFixture, HomomorphismWithConstants) {
  Database db = *ParseDatabase(schema_, "R(a,b). R(b,b).");
  Conjunction conj;
  conj.Add(RAtom(Term::MakeConst("a"), Term::MakeVar("y")));
  std::vector<Assignment> homs = AllHomomorphisms(conj, db, Assignment());
  ASSERT_EQ(homs.size(), 1u);
  EXPECT_EQ(*homs[0].Get(Var("y")), Const("b"));
}

TEST_F(LogicFixture, HomomorphismRepeatedVariable) {
  Database db = *ParseDatabase(schema_, "R(a,b). R(b,b). R(c,c).");
  Conjunction conj;
  conj.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("x")));
  EXPECT_EQ(AllHomomorphisms(conj, db, Assignment()).size(), 2u);
}

TEST_F(LogicFixture, HomomorphismRespectsPartialAssignment) {
  Database db = *ParseDatabase(schema_, "R(a,b). R(b,c).");
  Conjunction conj;
  conj.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("y")));
  Assignment partial;
  partial.Bind(Var("x"), Const("b"));
  std::vector<Assignment> homs = AllHomomorphisms(conj, db, partial);
  ASSERT_EQ(homs.size(), 1u);
  EXPECT_EQ(*homs[0].Get(Var("y")), Const("c"));
}

TEST_F(LogicFixture, HasHomomorphismShortCircuits) {
  Database db = *ParseDatabase(schema_, "R(a,b).");
  Conjunction present, absent;
  present.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("y")));
  absent.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("x")));
  EXPECT_TRUE(HasHomomorphism(present, db, Assignment()));
  EXPECT_FALSE(HasHomomorphism(absent, db, Assignment()));
}

TEST_F(LogicFixture, CrossProductHomomorphismCount) {
  Database db = *ParseDatabase(schema_, "S(a). S(b). S(c).");
  Conjunction conj;
  conj.Add(Atom(s_, {Term::MakeVar("x")}));
  conj.Add(Atom(s_, {Term::MakeVar("y")}));
  // x and y independent: 3 * 3 homomorphisms.
  EXPECT_EQ(AllHomomorphisms(conj, db, Assignment()).size(), 9u);
}

TEST_F(LogicFixture, HomomorphismsMapIntoDatabaseOnly) {
  Database db = *ParseDatabase(schema_, "R(a,b).");
  Conjunction conj;
  conj.Add(RAtom(Term::MakeVar("x"), Term::MakeVar("y")));
  for (const Assignment& h : AllHomomorphisms(conj, db, Assignment())) {
    EXPECT_TRUE(db.Contains(h.Apply(conj.atoms()[0])));
  }
}

}  // namespace
}  // namespace opcqa
