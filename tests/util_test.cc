// Tests for Status/Result, Rng and string utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace opcqa {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[rng.UniformInt(5)];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 700) << value;  // expected 1000 each
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::map<size_t, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts.count(1), 0u);  // zero weight never sampled
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, WeightedIndexRationalWeights) {
  Rng rng(5);
  std::vector<Rational> weights = {Rational(1, 4), Rational(3, 4)};
  std::map<size_t, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / 8000, 0.75, 0.03);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitTopLevelRespectsParens) {
  EXPECT_EQ(SplitTopLevel("R(a,b), S(c)", ','),
            (std::vector<std::string>{"R(a,b)", " S(c)"}));
  EXPECT_EQ(SplitTopLevel("f(g(x,y),z), h", ','),
            (std::vector<std::string>{"f(g(x,y),z)", " h"}));
}

TEST(StringUtilTest, JoinAndStrCat) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(StrCat("x=", 42, "!"), "x=42!");
}

TEST(StringUtilTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("abc"));
  EXPECT_TRUE(IsIdentifier("_x1"));
  EXPECT_TRUE(IsIdentifier("R2"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1abc"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier("a b"));
}

}  // namespace
}  // namespace opcqa
