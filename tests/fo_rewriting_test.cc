// Tests for the FO rewriting of the deletion-sampling scheme (Section 6,
// "Query Rewriting").

#include <gtest/gtest.h>

#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/fo_rewriting.h"

namespace opcqa {
namespace {

class FoRewritingTest : public ::testing::Test {
 protected:
  FoRewritingTest() {
    r_ = schema_.AddRelation("R", 2);
    s_ = schema_.AddRelation("S", 2);
    extension_ = ExtendSchemaWithDeletions(schema_);
  }

  Database Db(std::string_view text) {
    return ParseDatabase(schema_, text).value();
  }

  /// Database over the *extended* schema with R_del/S_del facts.
  Database Extended(const Database& db,
                    const std::map<PredId, std::vector<Fact>>& deletions) {
    return MaterializeDeletions(db, extension_, deletions);
  }

  Schema schema_;
  PredId r_, s_;
  DeletionSchema extension_;
};

TEST_F(FoRewritingTest, SchemaExtensionPreservesIdsAndAddsCompanions) {
  EXPECT_EQ(extension_.schema->size(), 4u);
  EXPECT_EQ(extension_.schema->RelationName(r_), "R");
  PredId r_del = extension_.del_pred_of.at(r_);
  EXPECT_EQ(extension_.schema->RelationName(r_del), "R__del");
  EXPECT_EQ(extension_.schema->Arity(r_del), 2u);
}

TEST_F(FoRewritingTest, AtomRewritingAddsNegatedDeletionAtom) {
  Query q = ParseQuery(schema_, "Q(x,y) := R(x,y)").value();
  Query rewritten =
      RewriteQueryWithDeletionPredicates(q, extension_.del_pred_of);
  std::string rendered = rewritten.ToString(*extension_.schema);
  EXPECT_NE(rendered.find("R__del"), std::string::npos);
  EXPECT_NE(rendered.find("not ("), std::string::npos);
}

TEST_F(FoRewritingTest, UnmappedPredicatesAreShared) {
  Query q = ParseQuery(schema_, "Q(x) := exists y: R(x,y)").value();
  // Empty mapping: the rewriting is the identity (same formula object).
  FormulaPtr same = RewriteWithDeletionPredicates(q.body(), {});
  EXPECT_EQ(same, q.body());
}

TEST_F(FoRewritingTest, MaterializeDeletionsBuildsExtendedDatabase) {
  Database db = Db("R(a,b). R(a,c). S(b,d).");
  Database extended =
      Extended(db, {{r_, {Fact::Make(schema_, "R", {"a", "c"})}}});
  EXPECT_EQ(extended.size(), 4u);  // 3 original + 1 R__del
  PredId r_del = extension_.del_pred_of.at(r_);
  EXPECT_EQ(extended.FactsOf(r_del).size(), 1u);
}

TEST_F(FoRewritingTest, ConjunctiveQueryEquivalence) {
  // Q'(D ∪ R_del) = Q(D − R_del) for conjunctive queries.
  Database db = Db("R(a,b). R(a,c). S(b,d). S(c,e).");
  Fact deleted = Fact::Make(schema_, "R", {"a", "c"});
  Query q =
      ParseQuery(schema_, "Q(x,z) := exists y (R(x,y), S(y,z))").value();
  Query rewritten =
      RewriteQueryWithDeletionPredicates(q, extension_.del_pred_of);

  Database extended = Extended(db, {{r_, {deleted}}});
  std::set<Tuple> via_rewrite = rewritten.Evaluate(extended);

  Database repaired = db;
  repaired.Erase(deleted);
  std::set<Tuple> direct = q.Evaluate(repaired);

  EXPECT_EQ(via_rewrite, direct);
  EXPECT_EQ(via_rewrite,
            (std::set<Tuple>{{Const("a"), Const("d")}}));
}

TEST_F(FoRewritingTest, EquivalenceAcrossManyDeletionChoices) {
  Database db = Db("R(a,b). R(b,c). R(c,a). S(a,b). S(b,c).");
  Query q = ParseQuery(schema_, "Q(x) := exists y: (R(x,y), S(x,y))").value();
  Query rewritten =
      RewriteQueryWithDeletionPredicates(q, extension_.del_pred_of);
  std::vector<Fact> r_facts;
  for (FactId id : db.FactsOf(r_)) {
    r_facts.push_back(FactStore::Global().ToFact(id));
  }
  // Every subset of R-facts as the deletion choice.
  for (size_t mask = 0; mask < (1u << r_facts.size()); ++mask) {
    std::vector<Fact> deleted;
    Database repaired = db;
    for (size_t i = 0; i < r_facts.size(); ++i) {
      if (mask & (1u << i)) {
        deleted.push_back(r_facts[i]);
        repaired.Erase(r_facts[i]);
      }
    }
    Database extended = Extended(db, {{r_, deleted}});
    EXPECT_EQ(rewritten.Evaluate(extended), q.Evaluate(repaired))
        << "mask=" << mask;
  }
}

TEST_F(FoRewritingTest, RewritingCommutesWithConnectives) {
  // A query with ∨, ¬ and ∀ still rewrites structurally.
  Query q = ParseQuery(
      schema_,
      "Q(x) := forall y (not R(x,y) or exists z: S(y,z))").value();
  Query rewritten =
      RewriteQueryWithDeletionPredicates(q, extension_.del_pred_of);
  std::string rendered = rewritten.ToString(*extension_.schema);
  EXPECT_NE(rendered.find("R__del"), std::string::npos);
  EXPECT_NE(rendered.find("S__del"), std::string::npos);
}

TEST_F(FoRewritingTest, DomainDependentQueriesCanDiverge) {
  // The caveat documented in fo_rewriting.h: with active-domain semantics
  // a universal query can tell the two sides apart, because the deleted
  // fact's constants stay in the domain of D ∪ R_del.
  Database db = Db("R(a,a). R(b,c).");
  Fact deleted = Fact::Make(schema_, "R", {"b", "c"});
  Query q = ParseQuery(schema_, "Q() := forall x (exists y: R(x,y) or x = a)")
                .value();
  Query rewritten =
      RewriteQueryWithDeletionPredicates(q, extension_.del_pred_of);

  Database repaired = db;
  repaired.Erase(deleted);
  // Direct: domain of D − R_del is {a}; Q holds.
  EXPECT_EQ(q.Evaluate(repaired), (std::set<Tuple>{{}}));
  // Rewritten over D ∪ R_del: b and c are still in the domain, R(b,·) and
  // R(c,·) fail after the rewrite, and b ≠ a — Q' does not hold.
  Database extended = Extended(db, {{r_, {deleted}}});
  EXPECT_TRUE(rewritten.Evaluate(extended).empty());
}

TEST_F(FoRewritingTest, RewrittenSizeIsDataIndependent) {
  // "These queries themselves are dependent on the inconsistent database
  //  but their size is not": the rewriting depends only on Q.
  Query q = ParseQuery(schema_, "Q(x,y) := R(x,y), S(y,x)").value();
  Query rewritten =
      RewriteQueryWithDeletionPredicates(q, extension_.del_pred_of);
  std::string once = rewritten.ToString(*extension_.schema);
  // Rewriting again with the same mapping targets only original atoms, so
  // the text grows in a data-independent way; here we simply pin that the
  // transform is deterministic.
  Query again =
      RewriteQueryWithDeletionPredicates(q, extension_.del_pred_of);
  EXPECT_EQ(again.ToString(*extension_.schema), once);
}

}  // namespace
}  // namespace opcqa
