// Tests for symbols, schemas, facts, databases and the fact parser.

#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/fact_parser.h"
#include "relational/schema.h"
#include "relational/symbol_table.h"

namespace opcqa {
namespace {

TEST(SymbolTableTest, InterningIsIdempotent) {
  ConstId a1 = Const("some_constant_a");
  ConstId a2 = Const("some_constant_a");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(ConstName(a1), "some_constant_a");
}

TEST(SymbolTableTest, DistinctNamesDistinctIds) {
  EXPECT_NE(Const("sym_x"), Const("sym_y"));
}

TEST(SymbolTableTest, FindWithoutInterning) {
  EXPECT_EQ(SymbolTable::Global().Find("never_interned_name_xyz"),
            SymbolTable::kNotFound);
  Const("now_interned_name_xyz");
  EXPECT_NE(SymbolTable::Global().Find("now_interned_name_xyz"),
            SymbolTable::kNotFound);
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  PredId r = schema.AddRelation("R", 2);
  PredId s = schema.AddRelation("S", 3);
  EXPECT_NE(r, s);
  EXPECT_EQ(schema.FindRelation("R"), r);
  EXPECT_EQ(schema.FindRelation("S"), s);
  EXPECT_EQ(schema.FindRelation("T"), Schema::kNotFound);
  EXPECT_EQ(schema.Arity(r), 2u);
  EXPECT_EQ(schema.Arity(s), 3u);
  EXPECT_EQ(schema.RelationName(r), "R");
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.ToString(), "{R/2, S/3}");
}

TEST(FactTest, MakeAndPrint) {
  Schema schema;
  schema.AddRelation("R", 2);
  Fact f = Fact::Make(schema, "R", {"a", "b"});
  EXPECT_EQ(f.ToString(schema), "R(a,b)");
  EXPECT_EQ(f.arity(), 2u);
}

TEST(FactTest, OrderingAndEquality) {
  Schema schema;
  schema.AddRelation("R", 2);
  Fact ab = Fact::Make(schema, "R", {"a", "b"});
  Fact ab2 = Fact::Make(schema, "R", {"a", "b"});
  Fact ac = Fact::Make(schema, "R", {"a", "c"});
  EXPECT_EQ(ab, ab2);
  EXPECT_NE(ab, ac);
  EXPECT_EQ(ab.Hash(), ab2.Hash());
  EXPECT_TRUE(ab < ac || ac < ab);
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() {
    r_ = schema_.AddRelation("R", 2);
    s_ = schema_.AddRelation("S", 1);
  }
  Schema schema_;
  PredId r_, s_;
};

TEST_F(DatabaseTest, InsertEraseContains) {
  Database db(&schema_);
  Fact f = Fact::Make(schema_, "R", {"a", "b"});
  EXPECT_TRUE(db.Insert(f));
  EXPECT_FALSE(db.Insert(f));  // duplicate
  EXPECT_TRUE(db.Contains(f));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_TRUE(db.Erase(f));
  EXPECT_FALSE(db.Erase(f));
  EXPECT_TRUE(db.empty());
}

TEST_F(DatabaseTest, ActiveDomainSortedUnique) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"dom_b", "dom_a"}));
  db.Insert(Fact::Make(schema_, "S", {"dom_a"}));
  std::vector<ConstId> domain = db.ActiveDomain();
  EXPECT_EQ(domain.size(), 2u);
  EXPECT_TRUE(std::is_sorted(domain.begin(), domain.end()));
}

TEST_F(DatabaseTest, SymmetricDifference) {
  Database d1(&schema_), d2(&schema_);
  Fact ab = Fact::Make(schema_, "R", {"a", "b"});
  Fact ac = Fact::Make(schema_, "R", {"a", "c"});
  Fact sa = Fact::Make(schema_, "S", {"a"});
  d1.Insert(ab);
  d1.Insert(ac);
  d2.Insert(ab);
  d2.Insert(sa);
  std::vector<Fact> only1, only2;
  d1.SymmetricDifference(d2, &only1, &only2);
  EXPECT_EQ(only1, (std::vector<Fact>{ac}));
  EXPECT_EQ(only2, (std::vector<Fact>{sa}));
  EXPECT_EQ(d1.SymmetricDifferenceSize(d2), 2u);
  EXPECT_EQ(d1.SymmetricDifferenceSize(d1), 0u);
}

TEST_F(DatabaseTest, EqualityAndOrdering) {
  Database d1(&schema_), d2(&schema_);
  d1.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  d2.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  EXPECT_EQ(d1, d2);
  d2.Insert(Fact::Make(schema_, "S", {"a"}));
  EXPECT_FALSE(d1 == d2);
  EXPECT_TRUE(d1 < d2 || d2 < d1);
}

TEST_F(DatabaseTest, ToStringDeterministic) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "c"}));
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  Database db2(&schema_);
  db2.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  db2.Insert(Fact::Make(schema_, "R", {"a", "c"}));
  EXPECT_EQ(db.ToString(), db2.ToString());
}

TEST_F(DatabaseTest, FactsOfGroupsByRelation) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  db.Insert(Fact::Make(schema_, "S", {"a"}));
  EXPECT_EQ(db.FactsOf(r_).size(), 1u);
  EXPECT_EQ(db.FactsOf(s_).size(), 1u);
  EXPECT_EQ(db.AllFacts().size(), 2u);
}

TEST(FactParserTest, ParsesSimpleFact) {
  Schema schema;
  schema.AddRelation("R", 2);
  Result<Fact> f = ParseFact(schema, " R( a , b ) ");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f->ToString(schema), "R(a,b)");
}

TEST(FactParserTest, ParsesNumericConstants) {
  Schema schema;
  schema.AddRelation("Age", 2);
  Result<Fact> f = ParseFact(schema, "Age(bob, 42)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->ToString(schema), "Age(bob,42)");
}

TEST(FactParserTest, RejectsMalformedFacts) {
  Schema schema;
  schema.AddRelation("R", 2);
  EXPECT_FALSE(ParseFact(schema, "R(a,b").ok());
  EXPECT_FALSE(ParseFact(schema, "R a,b)").ok());
  EXPECT_FALSE(ParseFact(schema, "Unknown(a,b)").ok());
  EXPECT_FALSE(ParseFact(schema, "R(a)").ok());        // arity
  EXPECT_FALSE(ParseFact(schema, "R(a,b,c)").ok());    // arity
  EXPECT_FALSE(ParseFact(schema, "R(a, b c)").ok());   // bad token
  EXPECT_FALSE(ParseFact(schema, "2R(a,b)").ok());     // bad name
}

TEST(FactParserTest, ParsesWholeDatabaseWithComments) {
  Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  Result<Database> db = ParseDatabase(schema,
                                      "# preamble comment\n"
                                      "R(a,b). S(c).  # trailing comment\n"
                                      "R(a,c).\n");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->size(), 3u);
}

TEST(FactParserTest, EmptyDatabaseParses) {
  Schema schema;
  schema.AddRelation("R", 2);
  Result<Database> db = ParseDatabase(schema, "  \n # nothing \n");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->empty());
}

TEST(FactParserTest, PropagatesFactErrors) {
  Schema schema;
  schema.AddRelation("R", 2);
  EXPECT_FALSE(ParseDatabase(schema, "R(a,b). Bad(c,d).").ok());
}

}  // namespace
}  // namespace opcqa
