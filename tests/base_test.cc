// Tests for B(D,Σ) — the base of Definition 1.

#include <gtest/gtest.h>

#include "relational/base.h"
#include "relational/fact_parser.h"

namespace opcqa {
namespace {

class BaseTest : public ::testing::Test {
 protected:
  BaseTest() {
    r_ = schema_.AddRelation("R", 2);
    s_ = schema_.AddRelation("S", 1);
  }
  Schema schema_;
  PredId r_, s_;
};

TEST_F(BaseTest, DomainIsActiveDomainPlusExtras) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  ConstId extra = Const("sigma_const");
  BaseSpec base = BaseSpec::ForDatabase(db, {extra});
  EXPECT_EQ(base.domain().size(), 3u);
  EXPECT_TRUE(std::binary_search(base.domain().begin(), base.domain().end(),
                                 extra));
}

TEST_F(BaseTest, DomainDeduplicates) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "a"}));
  BaseSpec base = BaseSpec::ForDatabase(db, {Const("a")});
  EXPECT_EQ(base.domain().size(), 1u);
}

TEST_F(BaseTest, SizeIsSumOfPowers) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  db.Insert(Fact::Make(schema_, "S", {"c"}));
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  // |dom| = 3; R/2 contributes 9, S/1 contributes 3.
  EXPECT_EQ(base.Size(), BigInt(12));
}

TEST_F(BaseTest, ContainsChecksDomainMembership) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  EXPECT_TRUE(base.Contains(Fact::Make(schema_, "R", {"b", "a"})));
  EXPECT_TRUE(base.Contains(Fact::Make(schema_, "S", {"a"})));
  EXPECT_FALSE(base.Contains(Fact::Make(schema_, "R", {"a", "zzz_foreign"})));
}

TEST_F(BaseTest, ContainsAllDatabase) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  EXPECT_TRUE(base.ContainsAll(db));
  Database other(&schema_);
  other.Insert(Fact::Make(schema_, "R", {"a", "zzz_foreign2"}));
  EXPECT_FALSE(base.ContainsAll(other));
}

TEST_F(BaseTest, EnumerateProducesExactlyBaseSize) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  size_t count = 0;
  bool complete = base.Enumerate(
      [&](const Fact& fact) {
        EXPECT_TRUE(base.Contains(fact));
        ++count;
        return true;
      },
      1000000);
  EXPECT_TRUE(complete);
  EXPECT_EQ(BigInt(static_cast<uint64_t>(count)), base.Size());
}

TEST_F(BaseTest, EnumerateRespectsBudget) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  size_t count = 0;
  bool complete = base.Enumerate(
      [&](const Fact&) {
        ++count;
        return true;
      },
      3);
  EXPECT_FALSE(complete);
  EXPECT_EQ(count, 3u);
}

TEST_F(BaseTest, EnumerateEarlyStop) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  size_t count = 0;
  bool complete = base.Enumerate(
      [&](const Fact&) {
        ++count;
        return count < 2;
      },
      1000000);
  EXPECT_TRUE(complete);  // stopped by callback, not budget
  EXPECT_EQ(count, 2u);
}

TEST_F(BaseTest, EnumerateTuplesOdometerOrder) {
  Database db(&schema_);
  db.Insert(Fact::Make(schema_, "R", {"a", "b"}));
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  std::vector<std::vector<ConstId>> tuples;
  base.EnumerateTuples(
      2,
      [&](const std::vector<ConstId>& t) {
        tuples.push_back(t);
        return true;
      },
      1000);
  EXPECT_EQ(tuples.size(), 4u);  // 2 constants, arity 2
  EXPECT_TRUE(std::is_sorted(tuples.begin(), tuples.end()));
}

TEST_F(BaseTest, EmptyDomainEnumeratesNothing) {
  Database db(&schema_);
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  size_t count = 0;
  bool complete = base.Enumerate(
      [&](const Fact&) {
        ++count;
        return true;
      },
      1000);
  EXPECT_TRUE(complete);
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace opcqa
