// Tests for the anytime top-k / MAP repair search.

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "gen/workloads.h"
#include "relational/fact_parser.h"
#include "repair/preference_generator.h"
#include "repair/top_k.h"
#include "repair/trust_generator.h"

namespace opcqa {
namespace {

TEST(TopKTest, ExhaustiveSearchMatchesExactEnumeration) {
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 2, 2, /*seed=*/7);
  UniformChainGenerator generator;
  TopKResult top = TopKRepairs(w.db, w.constraints, generator,
                               /*k=*/1000);  // k larger than #repairs
  EnumerationResult exact =
      EnumerateRepairs(w.db, w.constraints, generator);
  ASSERT_TRUE(top.exact);
  ASSERT_TRUE(top.certified);
  ASSERT_EQ(top.repairs.size(), exact.repairs.size());
  for (size_t i = 0; i < top.repairs.size(); ++i) {
    EXPECT_EQ(top.repairs[i].repair, exact.repairs[i].repair);
    EXPECT_EQ(top.repairs[i].probability, exact.repairs[i].probability);
    EXPECT_EQ(top.repairs[i].num_sequences, exact.repairs[i].num_sequences);
  }
  EXPECT_EQ(top.explored_success_mass, exact.success_mass);
  EXPECT_TRUE(top.frontier_mass.is_zero());
}

TEST(TopKTest, MapRepairOnPaperExample) {
  // Example 6: the most probable repair keeps Pref(a,·) and removes
  // Pref(b,a), Pref(c,a) — probability 9/20.
  gen::Workload w = gen::PaperPreferenceExample();
  PreferenceChainGenerator generator(w.schema->RelationOrDie("Pref"));
  TopKResult top = TopKRepairs(w.db, w.constraints, generator, /*k=*/1);
  ASSERT_FALSE(top.repairs.empty());
  EXPECT_TRUE(top.certified);
  EXPECT_EQ(top.Map().probability, Rational(9, 20));
  EXPECT_FALSE(top.Map().repair.Contains(
      Fact::Make(*w.schema, "Pref", {"b", "a"})));
  EXPECT_FALSE(top.Map().repair.Contains(
      Fact::Make(*w.schema, "Pref", {"c", "a"})));
}

TEST(TopKTest, CertificationCanStopBeforeExhaustion) {
  // A heavily skewed trust chain: one repair carries almost all mass, so
  // the MAP repair certifies long before the chain is exhausted.
  Schema schema;
  schema.AddRelation("R", 2);
  Database db = ParseDatabase(
      schema, "R(a,b). R(a,c). R(d,e). R(d,f). R(g,h). R(g,i).").value();
  ConstraintSet sigma =
      ParseConstraints(schema, "key: R(x,y), R(x,z) -> y = z").value();
  std::map<Fact, Rational> trust;
  for (const char* kept : {"b", "e", "h"}) {
    trust.emplace(Fact::Make(schema, "R",
                             {std::string(1, kept[0] - 1), kept}),
                  Rational(99, 100));
  }
  // Facts not listed default to low trust.
  TrustChainGenerator generator(trust, Rational(1, 100));
  TopKResult top = TopKRepairs(db, sigma, generator, /*k=*/1);
  EXPECT_TRUE(top.certified);
  // Exact enumeration of the same chain for cross-checking the winner.
  EnumerationResult exact = EnumerateRepairs(db, sigma, generator);
  EXPECT_EQ(top.Map().repair, exact.repairs.front().repair);
  // The search may finish early; if it did, it visited fewer states.
  if (!top.exact) {
    EXPECT_LT(top.states_expanded, exact.states_visited);
    EXPECT_GT(top.frontier_mass, Rational(0));
  }
}

TEST(TopKTest, LowerBoundsNeverExceedTrueProbabilities) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/17);
  UniformChainGenerator generator;
  TopKOptions options;
  options.max_states = 300;  // force an early stop
  TopKResult top = TopKRepairs(w.db, w.constraints, generator, /*k=*/2,
                               options);
  EnumerationResult exact =
      EnumerateRepairs(w.db, w.constraints, generator);
  for (const RepairInfo& info : top.repairs) {
    EXPECT_LE(info.probability, exact.ProbabilityOf(info.repair))
        << info.repair.ToString();
  }
  // Mass accounting: explored + frontier = 1.
  EXPECT_EQ(top.explored_success_mass + top.explored_failing_mass +
                top.frontier_mass,
            Rational(1));
}

TEST(TopKTest, FrontierEpsilonStopsEarly) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/23);
  UniformChainGenerator generator;
  TopKOptions options;
  options.frontier_epsilon = Rational(1, 2);
  TopKResult top =
      TopKRepairs(w.db, w.constraints, generator, /*k=*/1, options);
  EXPECT_LE(top.frontier_mass, Rational(1, 2));
  EXPECT_FALSE(top.exact);
}

TEST(TopKTest, ConsistentDatabaseYieldsItself) {
  Schema schema;
  schema.AddRelation("R", 2);
  Database db = ParseDatabase(schema, "R(a,b).").value();
  ConstraintSet sigma =
      ParseConstraints(schema, "key: R(x,y), R(x,z) -> y = z").value();
  UniformChainGenerator generator;
  TopKResult top = TopKRepairs(db, sigma, generator, /*k=*/1);
  ASSERT_TRUE(top.exact);
  ASSERT_EQ(top.repairs.size(), 1u);
  EXPECT_EQ(top.Map().repair, db);
  EXPECT_EQ(top.Map().probability, Rational(1));
}

}  // namespace
}  // namespace opcqa
