// Tests for the Section 5 practical scheme (R − R_del loop).

#include <gtest/gtest.h>

#include "engine/key_repair_executor.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"

namespace opcqa {
namespace engine {
namespace {

KeySpec KeyOnFirst(const Schema& schema, const char* relation) {
  return KeySpec{schema.RelationOrDie(relation), {0}};
}

TEST(KeyRepairExecutorTest, SampledRelationsAreKeyConsistent) {
  gen::Workload w = gen::MakeKeyViolationWorkload(8, 4, 3, /*seed=*/21);
  KeyRepairExecutor executor(w.db, {KeyOnFirst(*w.schema, "R")}, /*seed=*/5);
  for (int round = 0; round < 10; ++round) {
    std::map<PredId, Relation> repaired = executor.SampleRepairedRelations();
    const Relation& r = repaired.at(w.schema->RelationOrDie("R"));
    std::set<ConstId> keys_seen;
    for (const Row& row : r.rows()) {
      EXPECT_TRUE(keys_seen.insert(row[0]).second)
          << "duplicate key survived: " << ConstName(row[0]);
    }
  }
}

TEST(KeyRepairExecutorTest, KeepOneUniformKeepsExactlyOnePerGroup) {
  gen::Workload w = gen::MakeKeyViolationWorkload(6, 3, 2, /*seed=*/2);
  KeyRepairExecutor executor(w.db, {KeyOnFirst(*w.schema, "R")}, /*seed=*/3);
  std::map<PredId, Relation> repaired = executor.SampleRepairedRelations();
  // 6 keys → 6 surviving rows (one per group).
  EXPECT_EQ(repaired.at(w.schema->RelationOrDie("R")).size(), 6u);
}

TEST(KeyRepairExecutorTest, NonKeyedRelationsPassThrough) {
  gen::Workload w = gen::MakeJoinWorkload(10, 2, /*seed=*/4);
  // Only R is keyed; S and T must be returned unchanged.
  KeyRepairExecutor executor(w.db, {KeyOnFirst(*w.schema, "R")}, /*seed=*/6);
  std::map<PredId, Relation> repaired = executor.SampleRepairedRelations();
  PredId s = w.schema->RelationOrDie("S");
  EXPECT_EQ(repaired.at(s).size(), executor.RelationOf(s).size());
}

TEST(KeyRepairExecutorTest, FrequenciesMatchExactOcqaOnKeyPair) {
  // The executor's n_t/n must converge to the uniform-pick semantics:
  // for D = {R(a,b), R(a,c)} with keep-one-uniform, each value survives
  // with probability 1/2.
  gen::Workload w = gen::PaperKeyPairExample();
  KeyRepairExecutor executor(w.db, {KeyOnFirst(*w.schema, "R")}, /*seed=*/7);
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  ApproxAnswers answers = executor.Run(*q, 2000);
  EXPECT_NEAR(answers.Frequency({Const("b")}), 0.5, 0.05);
  EXPECT_NEAR(answers.Frequency({Const("c")}), 0.5, 0.05);
}

TEST(KeyRepairExecutorTest, TrustWeightedSkewsSurvival) {
  gen::Workload w = gen::PaperKeyPairExample();
  ExecutorOptions options;
  options.policy = SurvivorPolicy::kTrustWeighted;
  options.trust[{Const("a"), Const("b")}] = 9.0;
  options.trust[{Const("a"), Const("c")}] = 1.0;
  KeyRepairExecutor executor(w.db, {KeyOnFirst(*w.schema, "R")}, /*seed=*/8,
                             options);
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  ApproxAnswers answers = executor.Run(*q, 2000);
  EXPECT_NEAR(answers.Frequency({Const("b")}), 0.9, 0.05);
  EXPECT_NEAR(answers.Frequency({Const("c")}), 0.1, 0.05);
}

TEST(KeyRepairExecutorTest, KeepNoneProbabilityDropsWholeGroups) {
  gen::Workload w = gen::PaperKeyPairExample();
  ExecutorOptions options;
  options.policy = SurvivorPolicy::kTrustWeighted;
  options.keep_none_probability = 1.0;  // always trust neither
  KeyRepairExecutor executor(w.db, {KeyOnFirst(*w.schema, "R")}, /*seed=*/9,
                             options);
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  ApproxAnswers answers = executor.Run(*q, 50);
  EXPECT_TRUE(answers.frequency.empty());
}

TEST(KeyRepairExecutorTest, AgreesWithChainSamplerOnJoinQuery) {
  // End-to-end consistency: the engine loop and the generic chain sampler
  // approximate the same uniform-subset-repair distribution for CQs.
  // (keep-one-uniform corresponds to the ABC-style subset repairs; compare
  // against exact OCQA restricted to keep-one chains.)
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 1, 2, /*seed=*/10);
  KeyRepairExecutor executor(w.db, {KeyOnFirst(*w.schema, "R")},
                             /*seed=*/11);
  Result<Query> q = ParseQuery(*w.schema, "Q(x) := exists y R(x, y)");
  ASSERT_TRUE(q.ok());
  ApproxAnswers answers = executor.Run(*q, 500);
  // Every key value is present in every keep-one repair.
  for (const auto& [tuple, freq] : answers.frequency) {
    EXPECT_DOUBLE_EQ(freq, 1.0) << TupleToString(tuple);
  }
  EXPECT_EQ(answers.frequency.size(), 3u);
}

TEST(KeyRepairExecutorTest, RunWithGuaranteeUsesHoeffdingSamples) {
  gen::Workload w = gen::PaperKeyPairExample();
  KeyRepairExecutor executor(w.db, {KeyOnFirst(*w.schema, "R")},
                             /*seed=*/12);
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  ApproxAnswers answers = executor.RunWithGuarantee(*q, 0.1, 0.1);
  EXPECT_EQ(answers.rounds, 150u);
}

TEST(KeyRepairExecutorTest, CompositeKeysGroupCorrectly) {
  // Key = both columns: no two identical rows exist (set semantics), so
  // nothing is ever deleted.
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/13);
  PredId r = w.schema->RelationOrDie("R");
  KeyRepairExecutor executor(w.db, {KeySpec{r, {0, 1}}}, /*seed=*/14);
  std::map<PredId, Relation> repaired = executor.SampleRepairedRelations();
  EXPECT_EQ(repaired.at(r).size(), w.db.FactsOf(r).size());
}

}  // namespace
}  // namespace engine
}  // namespace opcqa
