// Tests for ±F operations (Definition 1).

#include <gtest/gtest.h>

#include "relational/fact_parser.h"
#include "repair/operation.h"

namespace opcqa {
namespace {

class OperationTest : public ::testing::Test {
 protected:
  OperationTest() { schema_.AddRelation("R", 2); }
  Fact R(const char* a, const char* b) {
    return Fact::Make(schema_, "R", {a, b});
  }
  Schema schema_;
};

TEST_F(OperationTest, AddInsertsFacts) {
  Database db = *ParseDatabase(schema_, "R(a,b).");
  Operation op = Operation::Add({R("a", "c"), R("b", "c")});
  Database result = op.Apply(db);
  EXPECT_EQ(result.size(), 3u);
  EXPECT_TRUE(result.Contains(R("a", "c")));
  EXPECT_TRUE(result.Contains(R("b", "c")));
  // Original untouched (functional application).
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(OperationTest, RemoveErasesFacts) {
  Database db = *ParseDatabase(schema_, "R(a,b). R(a,c).");
  Operation op = Operation::Remove({R("a", "b")});
  Database result = op.Apply(db);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_FALSE(result.Contains(R("a", "b")));
}

TEST_F(OperationTest, FactsSortedAndDeduplicated) {
  Operation op = Operation::Add({R("b", "b"), R("a", "a"), R("b", "b")});
  EXPECT_EQ(op.size(), 2u);
  EXPECT_TRUE(std::is_sorted(op.facts().begin(), op.facts().end()));
}

TEST_F(OperationTest, SetSemanticsIdempotentApplication) {
  // Adding a present fact / removing an absent fact leaves sets unchanged.
  Database db = *ParseDatabase(schema_, "R(a,b).");
  EXPECT_EQ(Operation::Add({R("a", "b")}).Apply(db).size(), 1u);
  EXPECT_EQ(Operation::Remove({R("x", "y")}).Apply(db).size(), 1u);
}

TEST_F(OperationTest, TouchesAndIntersects) {
  Operation op = Operation::Remove({R("a", "b"), R("a", "c")});
  EXPECT_TRUE(op.Touches(R("a", "b")));
  EXPECT_FALSE(op.Touches(R("b", "a")));
  EXPECT_TRUE(op.Intersects({R("b", "a"), R("a", "c")}));
  EXPECT_FALSE(op.Intersects({R("b", "a")}));
}

TEST_F(OperationTest, OrderingDistinguishesKindAndFacts) {
  Operation add = Operation::Add({R("a", "b")});
  Operation remove = Operation::Remove({R("a", "b")});
  Operation add2 = Operation::Add({R("a", "c")});
  EXPECT_NE(add, remove);
  EXPECT_NE(add, add2);
  EXPECT_EQ(add, Operation::Add({R("a", "b")}));
  // A strict weak order exists (required for std::set<Operation>).
  EXPECT_TRUE((add < remove) != (remove < add));
}

TEST_F(OperationTest, ToStringShowsSignAndFacts) {
  EXPECT_EQ(Operation::Add({R("a", "b")}).ToString(schema_), "+{R(a,b)}");
  EXPECT_EQ(Operation::Remove({R("a", "b"), R("a", "c")}).ToString(schema_),
            "-{R(a,b), R(a,c)}");
}

TEST_F(OperationTest, SequenceToString) {
  OperationSequence seq;
  EXPECT_EQ(SequenceToString(seq, schema_), "ε");
  seq.push_back(Operation::Remove({R("a", "b")}));
  seq.push_back(Operation::Add({R("a", "c")}));
  EXPECT_EQ(SequenceToString(seq, schema_), "-{R(a,b)} ; +{R(a,c)}");
}

}  // namespace
}  // namespace opcqa
