// Tests for the observability layer (PR 10): histogram bucket geometry
// and percentiles against a sorted-vector oracle, snapshot merging under
// multi-threaded hammering (the TSan CI job runs this suite), the
// stats-export fold of the legacy structs, the Chrome trace_event
// exporter round-tripped through a real JSON parser, and — in tracing
// builds — span nesting/ordering, request attribution, and the
// tracing-on ≡ tracing-off answer byte-identity.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gen/workloads.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/stats_export.h"
#include "obs/trace.h"
#include "repair/repair_enumerator.h"

namespace opcqa {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::SpanRecord;

// ---------------------------------------------------------------------
// Histogram bucket geometry
// ---------------------------------------------------------------------

TEST(HistogramBucketTest, BucketsBracketTheirValuesAndStayNarrow) {
  // Every value lands in a bucket whose [low, high) brackets it, indices
  // are monotone in the value, and above the exact range a bucket's
  // bounds stay within 1.25x — the bound behind the 12.5% percentile
  // error contract.
  size_t previous = 0;
  for (uint64_t nanos : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull,
                         12345ull, 1000000ull, 777777777ull, 123456789012ull}) {
    size_t index = Histogram::BucketIndex(nanos);
    ASSERT_LT(index, Histogram::kBuckets) << nanos;
    EXPECT_GE(index, previous) << nanos;
    previous = index;
    EXPECT_LE(Histogram::BucketLow(index), nanos) << nanos;
    EXPECT_LT(nanos, Histogram::BucketHigh(index)) << nanos;
    if (nanos >= Histogram::kExactBuckets) {
      EXPECT_LE(Histogram::BucketHigh(index),
                (Histogram::BucketLow(index) * 5 + 3) / 4)
          << "bucket " << index << " wider than 1.25x";
    } else {
      EXPECT_EQ(Histogram::BucketHigh(index), Histogram::BucketLow(index) + 1)
          << "sub-16ns bucket not exact";
    }
  }
  // Overflow clamps into the last bucket instead of indexing out.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBuckets - 1);
}

// ---------------------------------------------------------------------
// Percentiles vs a sorted-vector oracle
// ---------------------------------------------------------------------

double OraclePercentile(std::vector<uint64_t> sorted_nanos, double q) {
  size_t rank = static_cast<size_t>(q * sorted_nanos.size());
  rank = std::clamp<size_t>(rank, 1, sorted_nanos.size());
  return static_cast<double>(sorted_nanos[rank - 1]) / 1e6;
}

TEST(HistogramPercentileTest, TracksSortedVectorOracleWithin13Percent) {
  Histogram* hist = MetricsRegistry::Global().GetHistogram("obs_test.oracle");
  // Log-uniform latencies over [1us, 100ms] — five decades, so every
  // percentile lands well inside the logarithmic bucket range.
  std::mt19937_64 rng(20180611);
  std::uniform_real_distribution<double> exponent(3.0, 8.0);
  std::vector<uint64_t> samples;
  for (int i = 0; i < 10000; ++i) {
    samples.push_back(static_cast<uint64_t>(std::pow(10.0, exponent(rng))));
  }
  for (uint64_t nanos : samples) hist->RecordNanos(nanos);
  std::sort(samples.begin(), samples.end());

  obs::HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, samples.size());
  EXPECT_DOUBLE_EQ(snap.min_ms, static_cast<double>(samples.front()) / 1e6);
  EXPECT_DOUBLE_EQ(snap.max_ms, static_cast<double>(samples.back()) / 1e6);
  double true_sum_ms = 0;
  for (uint64_t nanos : samples) true_sum_ms += nanos / 1e6;
  EXPECT_NEAR(snap.sum_ms, true_sum_ms, true_sum_ms * 1e-9);

  // Bucket width <= 1.25x puts the reported midpoint within 12.5% of the
  // true sample; a hair more tolerance absorbs the nearest-rank tie.
  for (auto [q, got] : {std::pair{0.50, snap.p50_ms}, {0.95, snap.p95_ms},
                        {0.99, snap.p99_ms}}) {
    double want = OraclePercentile(samples, q);
    EXPECT_GT(got, want * 0.87) << "p" << q * 100;
    EXPECT_LT(got, want * 1.13) << "p" << q * 100;
  }
}

TEST(HistogramPercentileTest, SubSixteenNanoSamplesAreExact) {
  Histogram* hist = MetricsRegistry::Global().GetHistogram("obs_test.exact");
  for (uint64_t nanos : {3ull, 3ull, 3ull, 7ull}) hist->RecordNanos(nanos);
  obs::HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, 4u);
  // Exact buckets report the sample itself (midpoint of [n, n+1) clamped
  // to observed bounds).
  EXPECT_DOUBLE_EQ(snap.p50_ms, 3.0 / 1e6);
  EXPECT_DOUBLE_EQ(snap.max_ms, 7.0 / 1e6);
}

// ---------------------------------------------------------------------
// Snapshot merge under hammering (the TSan job runs this)
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, EightThreadsHammerOneCounterAndHistogram) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter* counter = registry.GetCounter("obs_test.hammer");
  Histogram* hist = registry.GetHistogram("obs_test.hammer_ms");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        hist->RecordNanos(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  // Concurrent snapshots must be clean reads (TSan) and monotone
  // under-approximations — never above the final total.
  for (int probe = 0; probe < 50; ++probe) {
    obs::MetricsSnapshot snap = registry.Snapshot();
    auto it = snap.counters.find("obs_test.hammer");
    if (it != snap.counters.end()) {
      EXPECT_LE(it->second, uint64_t{kThreads} * kPerThread);
    }
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Total(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(hist->Snapshot().count, uint64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryTest, HandlesAreInternedAndKillSwitchDropsWrites) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter* counter = registry.GetCounter("obs_test.kill");
  EXPECT_EQ(counter, registry.GetCounter("obs_test.kill"));
  uint64_t before = counter->Total();
  registry.set_enabled(false);
  counter->Add(100);
  registry.set_enabled(true);
  EXPECT_EQ(counter->Total(), before);
  counter->Add(1);
  EXPECT_EQ(counter->Total(), before + 1);
}

// ---------------------------------------------------------------------
// Stats export: the legacy structs fold into one snapshot
// ---------------------------------------------------------------------

TEST(StatsExportTest, ServerStatsFoldIncludesNestedSubsystems) {
  server::ServerStats stats;
  stats.submitted = 11;
  stats.panics = 2;
  stats.tenants = 3;
  stats.cache.hits = 7;
  stats.cache.entries = 42;
  stats.disk.restores = 5;
  stats.planner.rewrite_plans = 4;
  obs::MetricsSnapshot snap;
  obs::ExportServerStats(stats, &snap);
  EXPECT_EQ(snap.counters.at("server.submitted"), 11u);
  EXPECT_EQ(snap.counters.at("server.panics"), 2u);
  EXPECT_EQ(snap.counters.at("cache.hits"), 7u);
  EXPECT_EQ(snap.counters.at("disk.restores"), 5u);
  EXPECT_EQ(snap.counters.at("planner.rewrite_plans"), 4u);
  EXPECT_EQ(snap.gauges.at("server.tenants"), 3);
  EXPECT_EQ(snap.gauges.at("cache.entries"), 42);
  std::string text = snap.RenderText();
  EXPECT_NE(text.find("== metrics snapshot =="), std::string::npos);
  EXPECT_NE(text.find("counter  disk.restores"), std::string::npos);
  EXPECT_NE(text.find("gauge    server.tenants"), std::string::npos);
}

// ---------------------------------------------------------------------
// Chrome trace export, validated by an actual JSON parser
// ---------------------------------------------------------------------

/// Minimal recursive-descent JSON validator: accepts exactly the RFC 8259
/// value grammar (no trailing garbage). Enough to prove the exporter
/// emits well-formed JSON — Perfetto's loader is stricter only about
/// semantics, not syntax.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (!Expect('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        }
      } else if (static_cast<unsigned char>(text_[pos_]) < 0x20) {
        return false;  // raw control characters are illegal in strings
      }
      ++pos_;
    }
    return Expect('"');
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *c) return false;
    }
    return true;
  }
  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::vector<SpanRecord> HandBuiltSpans() {
  // Two requests on two threads; request 7's spans nest three deep.
  auto span = [](const char* name, uint64_t req, const char* tenant,
                 uint32_t thread, uint32_t depth, uint64_t start,
                 uint64_t dur) {
    SpanRecord record;
    record.name = name;
    record.request_id = req;
    record.tenant = tenant;
    record.thread = thread;
    record.depth = depth;
    record.start_ns = start;
    record.dur_ns = dur;
    return record;
  };
  return {
      span("server.request", 7, "t\"quote", 0, 0, 1000, 900000),
      span("engine.enumerate", 7, "t\"quote", 0, 1, 2000, 800000),
      span("cache.probe", 7, "t\"quote", 0, 2, 3000, 10000),
      span("server.request", 9, "t1", 1, 0, 500000, 200000),
      span("planner.plan", 9, "t1", 1, 1, 510000, 5000),
  };
}

TEST(ChromeTraceTest, ExportParsesAsJsonAndEscapesArguments) {
  std::string json = obs::ExportChromeTrace(HandBuiltSpans());
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  // The quote inside the tenant name must arrive escaped, and the
  // duration events must carry the complete-event phase.
  EXPECT_NE(json.find("t\\\"quote"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Empty traces are still valid documents.
  EXPECT_TRUE(JsonValidator(obs::ExportChromeTrace({})).Valid());
}

TEST(ChromeTraceTest, RequestHelpersAttributeAndMeasure) {
  std::vector<SpanRecord> spans = HandBuiltSpans();
  EXPECT_EQ(obs::TraceRequestIds(spans), (std::vector<uint64_t>{7, 9}));
  // Request 7 spans [1000, 901000) ns → 0.9 ms.
  EXPECT_NEAR(obs::RequestWallMs(spans, 7), 0.9, 1e-9);
  EXPECT_NEAR(obs::RequestWallMs(spans, 9), 0.2, 1e-9);
  EXPECT_EQ(obs::RequestWallMs(spans, 42), 0.0);

  std::string tree = obs::RenderSpanTree(spans, 7);
  // Nested spans indent by depth, in start order, under a header line.
  size_t request = tree.find("request 7");
  size_t outer = tree.find("  server.request");
  size_t mid = tree.find("    engine.enumerate");
  size_t inner = tree.find("      cache.probe");
  ASSERT_NE(request, std::string::npos) << tree;
  ASSERT_NE(outer, std::string::npos) << tree;
  ASSERT_NE(mid, std::string::npos) << tree;
  ASSERT_NE(inner, std::string::npos) << tree;
  EXPECT_LT(request, outer);
  EXPECT_LT(outer, mid);
  EXPECT_LT(mid, inner);
  EXPECT_EQ(obs::RenderSpanTree(spans, 42), "");
}

// ---------------------------------------------------------------------
// Tracing builds: live span capture and answer byte-identity
// ---------------------------------------------------------------------

#ifdef OPCQA_TRACING

TEST(SpanTracerTest, CapturesNestingOrderingAndRequestContext) {
  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  tracer.Enable();
  {
    OPCQA_TRACE_REQUEST(31, "tenant-a");
    OPCQA_TRACE_SPAN("outer");
    {
      OPCQA_TRACE_SPAN("inner");
    }
    OPCQA_TRACE_SPAN("sibling");
  }
  tracer.Disable();
  std::vector<SpanRecord> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), 3u);
  // Collect orders by start time: outer opened first, then its children
  // in lexical order; depths record the nesting at entry.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].depth, 1u);
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.request_id, 31u);
    EXPECT_EQ(span.tenant, "tenant-a");
    EXPECT_LE(span.start_ns, span.start_ns + span.dur_ns);
  }
  // The inner span closed before its parent: containment holds.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
}

TEST(SpanTracerTest, RequestScopesRestoreAndEnableClears) {
  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  tracer.Enable();
  {
    OPCQA_TRACE_REQUEST(1, "a");
    {
      OPCQA_TRACE_REQUEST(2, "b");
      OPCQA_TRACE_SPAN("nested-request");
    }
    OPCQA_TRACE_SPAN("outer-request");
  }
  tracer.Disable();
  std::vector<SpanRecord> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "nested-request");
  EXPECT_EQ(spans[0].request_id, 2u);
  EXPECT_EQ(spans[0].tenant, "b");
  EXPECT_EQ(spans[1].name, "outer-request");
  EXPECT_EQ(spans[1].request_id, 1u);  // inner scope restored on exit
  EXPECT_EQ(spans[1].tenant, "a");
  // Re-arming clears the previous run's records.
  tracer.Enable();
  tracer.Disable();
  EXPECT_TRUE(tracer.Collect().empty());
}

TEST(SpanTracerTest, TracingOnAndOffAnswerIdentically) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/79);
  UniformChainGenerator generator;
  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  tracer.Disable();
  EnumerationResult off = EnumerateRepairs(w.db, w.constraints, generator, {});
  tracer.Enable();
  EnumerationResult on = EnumerateRepairs(w.db, w.constraints, generator, {});
  tracer.Disable();
  EXPECT_EQ(on.success_mass, off.success_mass);
  EXPECT_EQ(on.failing_mass, off.failing_mass);
  EXPECT_EQ(on.states_visited, off.states_visited);
  ASSERT_EQ(on.repairs.size(), off.repairs.size());
  for (size_t i = 0; i < off.repairs.size(); ++i) {
    EXPECT_EQ(on.repairs[i].repair, off.repairs[i].repair) << i;
    EXPECT_EQ(on.repairs[i].probability, off.repairs[i].probability) << i;
  }
  // The traced run really did record the instrumented engine spans.
  std::vector<SpanRecord> spans = tracer.Collect();
  EXPECT_TRUE(std::any_of(spans.begin(), spans.end(),
                          [](const SpanRecord& span) {
                            return span.name == "engine.enumerate";
                          }));
}

#endif  // OPCQA_TRACING

}  // namespace
}  // namespace opcqa
