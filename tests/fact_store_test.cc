// Tests for the process-global FactStore and the id-level Database
// operations built on it.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "relational/database.h"
#include "relational/fact_store.h"
#include "relational/schema.h"
#include "relational/symbol_table.h"
#include "util/random.h"

namespace opcqa {
namespace {

TEST(FactStoreTest, InterningIsIdempotent) {
  Fact fact(3, {Const("fs_a"), Const("fs_b")});
  FactId first = FactStore::Global().Intern(fact);
  FactId second = FactStore::Global().Intern(fact);
  EXPECT_EQ(first, second);
}

TEST(FactStoreTest, DistinctFactsDistinctIds) {
  Fact f1(3, {Const("fs_a"), Const("fs_b")});
  Fact f2(3, {Const("fs_b"), Const("fs_a")});
  Fact f3(4, {Const("fs_a"), Const("fs_b")});
  EXPECT_NE(InternFact(f1), InternFact(f2));
  EXPECT_NE(InternFact(f1), InternFact(f3));
}

TEST(FactStoreTest, RoundTripIsExact) {
  // Inline (arity ≤ 2) and pooled (arity > 2) storage both round-trip.
  for (size_t arity : {1u, 2u, 3u, 5u}) {
    std::vector<ConstId> args;
    for (size_t i = 0; i < arity; ++i) {
      args.push_back(Const("fs_rt_" + std::to_string(i)));
    }
    Fact fact(7, args);
    FactId id = InternFact(fact);
    EXPECT_EQ(FactStore::Global().ToFact(id), fact) << "arity " << arity;
    EXPECT_EQ(FactStore::Global().pred(id), fact.pred());
    EXPECT_EQ(FactStore::Global().arity(id), arity);
    EXPECT_EQ(FactStore::Global().hash(id), fact.Hash());
    FactView view = FactStore::Global().View(id);
    EXPECT_TRUE(std::equal(args.begin(), args.end(), view.args));
  }
}

TEST(FactStoreTest, FindDoesNotIntern) {
  Fact absent(9, {Const("fs_never_stored")});
  size_t before = FactStore::Global().size();
  EXPECT_EQ(FactStore::Global().Find(absent), FactStore::kNotFound);
  EXPECT_EQ(FactStore::Global().size(), before);
  FactId id = InternFact(absent);
  EXPECT_EQ(FactStore::Global().Find(absent), id);
}

TEST(FactStoreTest, CompareMatchesFactValueOrder) {
  std::vector<Fact> facts = {
      Fact(2, {Const("fs_c1")}),
      Fact(2, {Const("fs_c2")}),
      Fact(3, {Const("fs_c1"), Const("fs_c1")}),
      Fact(3, {Const("fs_c1"), Const("fs_c2"), Const("fs_c3")}),
  };
  for (const Fact& a : facts) {
    for (const Fact& b : facts) {
      int expected = a < b ? -1 : (b < a ? 1 : 0);
      EXPECT_EQ(FactStore::Global().Compare(InternFact(a), InternFact(b)),
                expected)
          << "comparing ids must match comparing fact values";
    }
  }
}

class IdDatabaseTest : public ::testing::Test {
 protected:
  IdDatabaseTest() {
    r_ = schema_.AddRelation("R", 2);
    s_ = schema_.AddRelation("S", 3);
  }

  Fact R(const char* a, const char* b) {
    return Fact::Make(schema_, "R", {a, b});
  }

  Schema schema_;
  PredId r_ = 0;
  PredId s_ = 0;
};

TEST_F(IdDatabaseTest, InsertIdAndEraseIdMirrorFactOperations) {
  Database db(&schema_);
  FactId id = InternFact(R("ida", "idb"));
  EXPECT_TRUE(db.InsertId(id));
  EXPECT_FALSE(db.InsertId(id));
  EXPECT_TRUE(db.ContainsId(id));
  EXPECT_TRUE(db.Contains(R("ida", "idb")));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_TRUE(db.EraseId(id));
  EXPECT_FALSE(db.EraseId(id));
  EXPECT_TRUE(db.empty());
}

TEST_F(IdDatabaseTest, FactsOfIsSortedByFactValue) {
  Database db(&schema_);
  db.Insert(R("z", "z"));
  db.Insert(R("a", "b"));
  db.Insert(R("m", "q"));
  const std::vector<FactId>& bucket = db.FactsOf(r_);
  ASSERT_EQ(bucket.size(), 3u);
  const FactStore& store = FactStore::Global();
  for (size_t i = 1; i < bucket.size(); ++i) {
    EXPECT_TRUE(store.Less(bucket[i - 1], bucket[i]));
  }
}

// Randomized cross-check: the id-level symmetric difference against a
// brute-force std::set reference.
TEST_F(IdDatabaseTest, SymmetricDifferenceMatchesBruteForce) {
  Rng rng(20260730);
  for (int round = 0; round < 50; ++round) {
    Database d1(&schema_);
    Database d2(&schema_);
    std::set<Fact> s1, s2;
    for (int i = 0; i < 30; ++i) {
      Fact fact = R(("sd_" + std::to_string(rng.UniformInt(10))).c_str(),
                    ("sd_" + std::to_string(rng.UniformInt(10))).c_str());
      if (rng.UniformInt(2) == 0) {
        d1.Insert(fact);
        s1.insert(fact);
      } else {
        d2.Insert(fact);
        s2.insert(fact);
      }
    }
    std::vector<Fact> only1, only2, ref1, ref2;
    d1.SymmetricDifference(d2, &only1, &only2);
    std::set_difference(s1.begin(), s1.end(), s2.begin(), s2.end(),
                        std::back_inserter(ref1));
    std::set_difference(s2.begin(), s2.end(), s1.begin(), s1.end(),
                        std::back_inserter(ref2));
    EXPECT_EQ(only1, ref1);
    EXPECT_EQ(only2, ref2);
    EXPECT_EQ(d1.SymmetricDifferenceSize(d2), ref1.size() + ref2.size());
  }
}

TEST_F(IdDatabaseTest, EqualityHashAndOrderAreValueBased) {
  Database d1(&schema_);
  Database d2(&schema_);
  // Same facts inserted in different orders.
  d1.Insert(R("eq_a", "eq_b"));
  d1.Insert(R("eq_c", "eq_d"));
  d2.Insert(R("eq_c", "eq_d"));
  d2.Insert(R("eq_a", "eq_b"));
  EXPECT_TRUE(d1 == d2);
  EXPECT_EQ(d1.Hash(), d2.Hash());
  EXPECT_FALSE(d1 < d2);
  EXPECT_FALSE(d2 < d1);
  d2.Insert(R("eq_e", "eq_f"));
  EXPECT_FALSE(d1 == d2);
  EXPECT_TRUE(d1 < d2 || d2 < d1);
}

}  // namespace
}  // namespace opcqa
