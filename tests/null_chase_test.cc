// Tests for the null-chase repair construction (Section 6, "Null Values").

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "constraints/satisfaction.h"
#include "constraints/weak_acyclicity.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/null_chase.h"
#include "repair/repair_enumerator.h"

namespace opcqa {
namespace {

class NullChaseTest : public ::testing::Test {
 protected:
  NullChaseTest() {
    schema_.AddRelation("R", 2);
    schema_.AddRelation("S", 2);
    schema_.AddRelation("T", 1);
  }

  Database Db(std::string_view text) {
    Result<Database> db = ParseDatabase(schema_, text);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.value();
  }
  ConstraintSet Sigma(std::string_view text) {
    Result<ConstraintSet> constraints = ParseConstraints(schema_, text);
    EXPECT_TRUE(constraints.ok()) << constraints.status().ToString();
    return constraints.value();
  }

  Schema schema_;
};

TEST_F(NullChaseTest, NullConstantsAreRecognized) {
  EXPECT_TRUE(IsNullConstant(Const("_:n0")));
  EXPECT_TRUE(IsNullConstant(Const("_:n17")));
  EXPECT_FALSE(IsNullConstant(Const("a")));
  EXPECT_FALSE(IsNullConstant(Const("n0")));
}

TEST_F(NullChaseTest, ConsistentDatabaseIsAFixpoint) {
  Database db = Db("R(a,b).");
  ConstraintSet sigma = Sigma("R(x,y), R(y,x) -> false");
  Rng rng(1);
  auto result = ChaseRepair(db, sigma, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().db, db);
  EXPECT_EQ(result.value().steps, 0u);
  EXPECT_EQ(result.value().nulls_created, 0u);
}

TEST_F(NullChaseTest, TgdViolationChasedWithFreshNull) {
  Database db = Db("R(a,b).");
  ConstraintSet sigma = Sigma("R(x,y) -> exists z: S(y,z)");
  Rng rng(1);
  auto result = ChaseRepair(db, sigma, &rng);
  ASSERT_TRUE(result.ok());
  const Database& chased = result.value().db;
  EXPECT_EQ(result.value().nulls_created, 1u);
  EXPECT_TRUE(HasNulls(chased));
  EXPECT_TRUE(Satisfies(chased, sigma));
  // The original facts survive; one S-fact with a null was added.
  EXPECT_TRUE(chased.Contains(Fact::Make(schema_, "R", {"a", "b"})));
  EXPECT_EQ(chased.size(), 2u);
}

TEST_F(NullChaseTest, FullTgdNeedsNoNull) {
  Database db = Db("R(a,b).");
  ConstraintSet sigma = Sigma("R(x,y) -> S(x,y)");
  Rng rng(1);
  auto result = ChaseRepair(db, sigma, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().nulls_created, 0u);
  EXPECT_TRUE(result.value().db.Contains(Fact::Make(schema_, "S", {"a", "b"})));
}

TEST_F(NullChaseTest, InventedNullSurvivesWhenKeyHasNoConflict) {
  // The inclusion dependency invents a null for the missing S(a,·); the
  // key on S[0] sees no conflict (keys a vs b), so the null survives.
  Database db = Db("R(a,b). S(b,c).");
  ConstraintSet sigma = Sigma(
      "R(x,y) -> exists z: S(x,z)\n"
      "S(x,y), S(x,z) -> y = z");
  Rng rng(1);
  auto result = ChaseRepair(db, sigma, &rng);
  ASSERT_TRUE(result.ok());
  const ChaseResult& chase = result.value();
  EXPECT_TRUE(Satisfies(chase.db, sigma));
  // S(a, _:n) was created and never unified (different key), so one null
  // remains; no deletion happened.
  EXPECT_EQ(chase.facts_deleted, 0u);
  EXPECT_EQ(chase.nulls_created, 1u);
}

TEST_F(NullChaseTest, EgdNullToConstantPromotion) {
  // The first TGD (fired first: lower constraint index, smaller h) invents
  // S(a,_:n0); the second demands the ground fact S(a,c); the key EGD then
  // promotes _:n0 to c, leaving a null-free chase result.
  Database db = Db("R(a,b). T(a).");
  ConstraintSet sigma = Sigma(
      "R(x,y) -> exists z: S(x,z)\n"
      "T(x) -> S(x,c)\n"
      "S(x,y), S(x,z) -> y = z");
  Rng rng(1);
  auto result = ChaseRepair(db, sigma, &rng);
  ASSERT_TRUE(result.ok());
  const ChaseResult& chase = result.value();
  EXPECT_TRUE(Satisfies(chase.db, sigma));
  EXPECT_EQ(chase.nulls_unified, 1u);
  EXPECT_FALSE(HasNulls(chase.db));
  EXPECT_EQ(chase.facts_deleted, 0u);
  EXPECT_EQ(chase.db.size(), 3u);  // R(a,b), T(a), S(a,c)
}

TEST_F(NullChaseTest, ConstantConflictResolvedByDeletion) {
  Database db = Db("R(a,b). R(a,c).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  Rng rng(5);
  auto result = ChaseRepair(db, sigma, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Satisfies(result.value().db, sigma));
  EXPECT_GE(result.value().facts_deleted, 1u);
  EXPECT_LE(result.value().db.size(), 1u);  // at most one of the two
}

TEST_F(NullChaseTest, DcViolationResolvedByDeletion) {
  Database db = Db("R(a,b). R(b,a).");
  ConstraintSet sigma = Sigma("R(x,y), R(y,x) -> false");
  Rng rng(5);
  auto result = ChaseRepair(db, sigma, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Satisfies(result.value().db, sigma));
}

TEST_F(NullChaseTest, DeterministicModeNeedsNoRng) {
  Database db = Db("R(a,b). R(a,c).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  ChaseOptions options;
  options.randomize_choices = false;
  auto first = ChaseRepair(db, sigma, nullptr, options);
  auto second = ChaseRepair(db, sigma, nullptr, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().db, second.value().db);
}

TEST_F(NullChaseTest, RandomizedModeWithoutRngIsAnError) {
  Database db = Db("R(a,b).");
  auto result = ChaseRepair(db, Sigma("R(x,y), R(y,x) -> false"), nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(NullChaseTest, NonTerminatingChaseHitsBudget) {
  // R(x,y) → ∃z R(y,z) is not weakly acyclic; the chase runs forever.
  ConstraintSet sigma = Sigma("R(x,y) -> exists z: R(y,z)");
  EXPECT_FALSE(IsWeaklyAcyclic(schema_, sigma));
  Database db = Db("R(a,b).");
  ChaseOptions options;
  options.max_steps = 50;
  Rng rng(1);
  auto result = ChaseRepair(db, sigma, &rng, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(NullChaseTest, WeaklyAcyclicChaseTerminatesOnLargerInstance) {
  gen::Workload w = gen::MakeInclusionWorkload(30, 0.5, /*seed=*/11);
  ASSERT_TRUE(IsWeaklyAcyclic(*w.schema, w.constraints));
  Rng rng(2);
  auto result = ChaseRepair(w.db, w.constraints, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Satisfies(result.value().db, w.constraints));
  // Inclusion repairs insert, never delete.
  EXPECT_EQ(result.value().facts_deleted, 0u);
}

TEST_F(NullChaseTest, NaiveAnswersDropNullTuples) {
  Database db = Db("R(a,b).");
  ConstraintSet sigma = Sigma("R(x,y) -> exists z: S(y,z)");
  Rng rng(1);
  auto chased = ChaseRepair(db, sigma, &rng);
  ASSERT_TRUE(chased.ok());
  Result<Query> all_s = ParseQuery(schema_, "Q(x,y) := S(x,y)");
  ASSERT_TRUE(all_s.ok());
  // S(b, _:n) exists but contains a null — not a certain answer.
  EXPECT_TRUE(NaiveAnswers(chased.value().db, *all_s).empty());
  // Its null-free projection is certain.
  Result<Query> proj = ParseQuery(schema_, "Q(x) := exists y: S(x,y)");
  ASSERT_TRUE(proj.ok());
  std::set<Tuple> answers = NaiveAnswers(chased.value().db, *proj);
  EXPECT_EQ(answers, (std::set<Tuple>{{Const("b")}}));
}

TEST_F(NullChaseTest, ExistingNullsAreNotReused) {
  // Null constants are not valid parser input; build the fact directly.
  Database db(&schema_);
  db.Insert(Fact(schema_.RelationOrDie("R"), {Const("_:n3"), Const("b")}));
  ConstraintSet sigma = Sigma("R(x,y) -> exists z: S(y,z)");
  Rng rng(1);
  auto result = ChaseRepair(db, sigma, &rng);
  ASSERT_TRUE(result.ok());
  // The fresh null must differ from the pre-existing _:n3.
  bool saw_fresh = false;
  for (ConstId c : result.value().db.ActiveDomain()) {
    if (IsNullConstant(c) && ConstName(c) != "_:n3") saw_fresh = true;
  }
  EXPECT_TRUE(saw_fresh);
}

TEST_F(NullChaseTest, EstimateChaseOcaFrequencies) {
  // Key conflict: R(a,b) vs R(a,c). Chase resolves by deleting a
  // non-empty subset of the two facts (3 equally likely choices), so each
  // fact survives with probability 1/3.
  Database db = Db("R(a,b). R(a,c).");
  ConstraintSet sigma = Sigma("R(x,y), R(x,z) -> y = z");
  Result<Query> q = ParseQuery(schema_, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  ChaseOcaResult result =
      EstimateChaseOca(db, sigma, *q, /*runs=*/3000, /*seed=*/17);
  EXPECT_EQ(result.failed_runs, 0u);
  EXPECT_NEAR(result.Frequency({Const("a"), Const("b")}), 1.0 / 3, 0.04);
  EXPECT_NEAR(result.Frequency({Const("a"), Const("c")}), 1.0 / 3, 0.04);
}

TEST_F(NullChaseTest, ChaseSucceedsWhereGroundedInsertionsFail) {
  // Section 3's failing instance: R(a) with R(x) → T(x), T(x) → ⊥ keeps
  // failing for the grounded framework; the chase deletes its way out.
  gen::Workload w = gen::PaperFailingExample();
  Rng rng(4);
  auto result = ChaseRepair(w.db, w.constraints, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Satisfies(result.value().db, w.constraints));
}

}  // namespace
}  // namespace opcqa
