#include "util/rational.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace opcqa {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.denominator(), BigInt(1));
}

TEST(RationalTest, ReducesOnConstruction) {
  Rational r(6, 8);
  EXPECT_EQ(r.numerator(), BigInt(3));
  EXPECT_EQ(r.denominator(), BigInt(4));
  EXPECT_EQ(r.ToString(), "3/4");
}

TEST(RationalTest, NormalizesSignToNumerator) {
  Rational r(3, -4);
  EXPECT_TRUE(r.is_negative());
  EXPECT_EQ(r.ToString(), "-3/4");
  Rational s(-3, -4);
  EXPECT_FALSE(s.is_negative());
  EXPECT_EQ(s.ToString(), "3/4");
}

TEST(RationalTest, ZeroNormalizesDenominator) {
  Rational r(0, 17);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.denominator(), BigInt(1));
}

TEST(RationalTest, WholeNumbersPrintWithoutDenominator) {
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(10, 2).ToString(), "5");
}

TEST(RationalTest, ArithmeticExact) {
  Rational a(1, 3);
  Rational b(1, 6);
  EXPECT_EQ((a + b).ToString(), "1/2");
  EXPECT_EQ((a - b).ToString(), "1/6");
  EXPECT_EQ((a * b).ToString(), "1/18");
  EXPECT_EQ((a / b).ToString(), "2");
}

TEST(RationalTest, PaperExample6Probability) {
  // Probability of the repair D − {Pref(b,a), Pref(c,a)}:
  // 3/9 · 3/4 + 3/9 · 3/5 = 9/20 = 0.45.
  Rational p =
      Rational(3, 9) * Rational(3, 4) + Rational(3, 9) * Rational(3, 5);
  EXPECT_EQ(p, Rational(9, 20));
  EXPECT_DOUBLE_EQ(p.ToDouble(), 0.45);
}

TEST(RationalTest, ComparisonCrossMultiplies) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(0), Rational(1, 1000000));
}

TEST(RationalTest, FromStringFractions) {
  EXPECT_EQ(*Rational::FromString("3/4"), Rational(3, 4));
  EXPECT_EQ(*Rational::FromString("-3/4"), Rational(-3, 4));
  EXPECT_EQ(*Rational::FromString("7"), Rational(7));
  EXPECT_EQ(*Rational::FromString("0.45"), Rational(9, 20));
  EXPECT_EQ(*Rational::FromString("-0.5"), Rational(-1, 2));
  EXPECT_EQ(*Rational::FromString(".25"), Rational(1, 4));
}

TEST(RationalTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(Rational::FromString("").ok());
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
  EXPECT_FALSE(Rational::FromString("1.").ok());
}

TEST(RationalTest, ToDoubleHandlesHugeNumeratorAndDenominator) {
  // Both operands far outside double range; the ratio is exactly 2.
  BigInt huge = BigInt(7).Pow(500);
  Rational r(huge * BigInt(2), huge);
  EXPECT_DOUBLE_EQ(r.ToDouble(), 2.0);
}

TEST(RationalTest, NegationAndCompoundOps) {
  Rational r(5, 6);
  EXPECT_EQ((-r).ToString(), "-5/6");
  r += Rational(1, 6);
  EXPECT_EQ(r, Rational(1));
  r *= Rational(3, 7);
  EXPECT_EQ(r, Rational(3, 7));
  r /= Rational(3, 7);
  EXPECT_EQ(r, Rational(1));
  r -= Rational(1);
  EXPECT_TRUE(r.is_zero());
}

TEST(RationalTest, HashConsistentWithEquality) {
  EXPECT_EQ(Rational(2, 4).Hash(), Rational(1, 2).Hash());
}

// Property: a chain of n uniform-branch probabilities sums to 1 exactly.
class RationalStochasticSumTest : public ::testing::TestWithParam<int> {};

TEST_P(RationalStochasticSumTest, UniformSharesSumToOne) {
  int n = GetParam();
  Rational share(1, n);
  Rational total;
  for (int i = 0; i < n; ++i) total += share;
  EXPECT_EQ(total, Rational(1));
}

INSTANTIATE_TEST_SUITE_P(Branching, RationalStochasticSumTest,
                         ::testing::Values(1, 2, 3, 7, 9, 20, 97, 360));

// Property: distributivity and associativity hold exactly.
class RationalAlgebraTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RationalAlgebraTest, FieldAxiomsHold) {
  auto [x, y, z] = GetParam();
  Rational a(x, 7), b(y, 11), c(z, 13);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a + b, b + a);
  if (!c.is_zero()) {
    EXPECT_EQ((a / c) * c, a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Triples, RationalAlgebraTest,
    ::testing::Combine(::testing::Values(-3, 0, 5),
                       ::testing::Values(-2, 1, 9),
                       ::testing::Values(-7, 0, 4)));

// Reduction rides the BigInt ≤64-bit gcd/divmod fast paths for the values
// chain probabilities actually produce; these cases pin canonical forms at
// and just past the native boundary.
TEST(RationalFastPathTest, ReductionAtNativeBoundaries) {
  int64_t max = std::numeric_limits<int64_t>::max();  // 2^63−1, odd
  EXPECT_EQ(Rational(max, max), Rational(1));
  EXPECT_EQ(Rational(-max, max), Rational(-1));
  // gcd(2^62, 2^63−2) = 2 under the native Euclid.
  Rational halved(int64_t{1} << 62, max - 1);
  EXPECT_EQ(halved.numerator(), BigInt(int64_t{1} << 61));
  EXPECT_EQ(halved.denominator(), BigInt((max - 1) / 2));
  // Accumulating 1/n keeps exact canonical sums across the boundary where
  // numerator/denominator outgrow 64 bits.
  Rational sum;
  Rational expected_half;
  for (int64_t n = 1; n <= 40; ++n) {
    sum += Rational(1, n * n + 1);
    if (n == 20) expected_half = sum;
  }
  EXPECT_EQ(sum - expected_half,
            [&] {
              Rational tail;
              for (int64_t n = 21; n <= 40; ++n) {
                tail += Rational(1, n * n + 1);
              }
              return tail;
            }());
  // Products of two just-under-64-bit factors reduce exactly (the
  // numerator crosses into multi-limb range).
  Rational wide = Rational(BigInt(max), BigInt(3)) *
                  Rational(BigInt(6), BigInt(max));
  EXPECT_EQ(wide, Rational(2));
}

TEST(RationalFastPathTest, GcdAwareOperatorsStayCanonical) {
  // The Knuth-style +,-,*,/ skip the full-product Reduce(); the results
  // must nevertheless be the exact canonical forms the reducing
  // constructor produces — Hash() and ToString() depend on it.
  std::vector<Rational> values;
  for (int64_t n : {-9, -4, -1, 0, 1, 2, 3, 7, 12}) {
    for (int64_t d : {1, 2, 3, 6, 35, 97}) {
      values.push_back(Rational(n, d));
    }
  }
  // A couple of multi-limb values too.
  values.push_back(Rational(BigInt(2).Pow(80) + BigInt(1), BigInt(3).Pow(50)));
  values.push_back(Rational(-(BigInt(5).Pow(40)), BigInt(2).Pow(70)));
  auto expect_canonical = [](const Rational& fast, const Rational& slow,
                             const char* op) {
    EXPECT_EQ(fast.numerator(), slow.numerator()) << op;
    EXPECT_EQ(fast.denominator(), slow.denominator()) << op;
    EXPECT_EQ(fast.ToString(), slow.ToString()) << op;
    EXPECT_EQ(fast.Hash(), slow.Hash()) << op;
  };
  for (const Rational& a : values) {
    for (const Rational& b : values) {
      expect_canonical(a + b,
                       Rational(a.numerator() * b.denominator() +
                                    b.numerator() * a.denominator(),
                                a.denominator() * b.denominator()),
                       "+");
      expect_canonical(a - b,
                       Rational(a.numerator() * b.denominator() -
                                    b.numerator() * a.denominator(),
                                a.denominator() * b.denominator()),
                       "-");
      expect_canonical(a * b,
                       Rational(a.numerator() * b.numerator(),
                                a.denominator() * b.denominator()),
                       "*");
      if (!b.is_zero()) {
        expect_canonical(a / b,
                         Rational(a.numerator() * b.denominator(),
                                  a.denominator() * b.numerator()),
                         "/");
      }
    }
  }
}

TEST(RationalFastPathTest, CompoundAssignmentMatchesRebuild) {
  Rational acc(1, 3);
  Rational check = acc;
  const Rational steps[] = {Rational(2, 5), Rational(-7, 11), Rational(4),
                            Rational(-1, 997), Rational(0)};
  for (const Rational& step : steps) {
    acc += step;
    check = check + step;
    EXPECT_EQ(acc, check);
    acc -= Rational(1, 7);
    check = check - Rational(1, 7);
    EXPECT_EQ(acc, check);
    acc *= Rational(3, 2);
    check = check * Rational(3, 2);
    EXPECT_EQ(acc, check);
  }
  acc /= Rational(9, 4);
  EXPECT_EQ(acc, check / Rational(9, 4));
}

}  // namespace
}  // namespace opcqa
