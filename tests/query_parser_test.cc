// Tests for the FO query/formula parser.

#include <gtest/gtest.h>

#include "logic/formula_parser.h"
#include "relational/fact_parser.h"

namespace opcqa {
namespace {

class QueryParserTest : public ::testing::Test {
 protected:
  QueryParserTest() {
    schema_.AddRelation("Pref", 2);
    schema_.AddRelation("R", 2);
    schema_.AddRelation("Role", 2);
    db_ = *ParseDatabase(schema_, "Pref(a,b). Pref(a,c). Pref(b,c).");
  }
  Schema schema_;
  Database db_;
};

TEST_F(QueryParserTest, ParsesSimpleConjunctiveQuery) {
  Result<Query> q = ParseQuery(schema_, "Q(x,y) := Pref(x,y)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->name(), "Q");
  EXPECT_EQ(q->arity(), 2u);
  EXPECT_TRUE(q->IsConjunctive());
  EXPECT_EQ(q->Evaluate(db_).size(), 3u);
}

TEST_F(QueryParserTest, ParsesJoinWithCommaConjunction) {
  Result<Query> q = ParseQuery(schema_, "Q(x,z) := Pref(x,y), Pref(y,z)");
  ASSERT_FALSE(q.ok());  // y is not declared in the head → error
}

TEST_F(QueryParserTest, ParsesJoinWithExistential) {
  Result<Query> q =
      ParseQuery(schema_, "Q(x,z) := exists y (Pref(x,y), Pref(y,z))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->IsConjunctive());
  std::set<Tuple> answers = q->Evaluate(db_);
  // a->b->c gives (a,c).
  EXPECT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers.count({Const("a"), Const("c")}));
}

TEST_F(QueryParserTest, ParsesExample7Query) {
  Result<Query> q =
      ParseQuery(schema_, "Q(x) := forall y (Pref(x,y) | x = y)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q->IsConjunctive());
  // On this consistent db, a is preferred over b and c → {(a)}.
  std::set<Tuple> answers = q->Evaluate(db_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers.count({Const("a")}));
}

TEST_F(QueryParserTest, UndeclaredIdentifiersAreConstants) {
  Result<Query> q = ParseQuery(schema_, "Q(u) := Role(u, admin)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& view = q->conjunctive_view();
  ASSERT_TRUE(view.has_value());
  const Atom& atom = view->body.atoms()[0];
  EXPECT_TRUE(atom.terms()[0].is_var());
  EXPECT_TRUE(atom.terms()[1].is_const());
  EXPECT_EQ(atom.terms()[1].constant(), Const("admin"));
}

TEST_F(QueryParserTest, BooleanQueryEmptyHead) {
  Result<Query> q = ParseQuery(schema_, "Q() := exists x Pref(x, b)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->arity(), 0u);
  EXPECT_EQ(q->Evaluate(db_).size(), 1u);
}

TEST_F(QueryParserTest, NegationAndInequality) {
  Result<Query> q =
      ParseQuery(schema_, "Q(x) := exists y (Pref(x,y) & not Pref(y,x))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->Evaluate(db_).size(), 2u);  // a and b
  Result<Query> q2 = ParseQuery(schema_, "Q(x,y) := Pref(x,y), x != y");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->Evaluate(db_).size(), 3u);
}

TEST_F(QueryParserTest, OperatorPrecedenceImpliesWeakest) {
  // Pref(x,y) -> Pref(x,y) | Pref(y,x) must parse as
  // Pref(x,y) -> (Pref(x,y) | Pref(y,x)), a tautology here.
  Result<Query> q = ParseQuery(
      schema_, "Q(x,y) := Pref(x,y) -> Pref(x,y) | Pref(y,x)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Tautology: all pairs of domain constants (3 constants → 9 pairs).
  EXPECT_EQ(q->Evaluate(db_).size(), 9u);
}

TEST_F(QueryParserTest, KeywordConnectives) {
  Result<Query> q = ParseQuery(
      schema_, "Q(x) := exists y (Pref(x,y) and not Pref(y,x)) or Pref(x,x)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST_F(QueryParserTest, QuantifierWithMultipleVariables) {
  Result<Query> q =
      ParseQuery(schema_, "Q() := exists x,y (Pref(x,y), Pref(y,x))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->Evaluate(db_).empty());  // no symmetric pair here
}

TEST_F(QueryParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery(schema_, "no define here").ok());
  EXPECT_FALSE(ParseQuery(schema_, "Q(x := Pref(x,x)").ok());
  EXPECT_FALSE(ParseQuery(schema_, "Q(x) := Unknown(x,x)").ok());
  EXPECT_FALSE(ParseQuery(schema_, "Q(x) := Pref(x)").ok());     // arity
  EXPECT_FALSE(ParseQuery(schema_, "Q(x) := Pref(x,y)").ok());   // free y
  EXPECT_FALSE(ParseQuery(schema_, "Q(x) := Pref(x,y) &&& z").ok());
  EXPECT_FALSE(ParseQuery(schema_, "Q(x) := (Pref(x,x)").ok());  // paren
}

TEST_F(QueryParserTest, FormulaParserStandalone) {
  Result<FormulaPtr> f =
      ParseFormula(schema_, "Pref(x,y) & x != y", {"x", "y"});
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->FreeVariables().size(), 2u);
}

TEST_F(QueryParserTest, FormulaToStringRoundTripsThroughParser) {
  Result<Query> q =
      ParseQuery(schema_, "Q(x) := forall y (Pref(x,y) | x = y)");
  ASSERT_TRUE(q.ok());
  std::string printed = q->body()->ToString(schema_);
  Result<FormulaPtr> again = ParseFormula(schema_, printed, {"x"});
  ASSERT_TRUE(again.ok()) << "failed to reparse: " << printed << " — "
                          << again.status().ToString();
  // Same evaluation behaviour on the fixture database.
  Query q2("Q2", {Var("x")}, *again);
  EXPECT_EQ(q->Evaluate(db_), q2.Evaluate(db_));
}

}  // namespace
}  // namespace opcqa
