// Tests for transposition-table memoization of the repair space:
// incremental state hashing, the soundness gate, collision verification
// against the real id-sets, and the bit-identity contract — memoized
// enumeration/counting/OCQA/top-k results equal the unmemoized ones for
// every thread count, including under truncation.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/counting.h"
#include "repair/memo.h"
#include "repair/ocqa.h"
#include "repair/preference_generator.h"
#include "repair/priority_generator.h"
#include "repair/top_k.h"
#include "repair/trust_generator.h"
#include "util/hash.h"

namespace opcqa {
namespace {

// ---------------------------------------------------------------------
// Incremental state hashing
// ---------------------------------------------------------------------

size_t RecomputedDbHash(const Database& db) {
  const FactStore& store = FactStore::Global();
  size_t h = 0;
  for (FactId id : db.AllFactIds()) h += HashMix64(store.hash(id));
  return h;
}

size_t RecomputedEliminatedHash(const ViolationSet& eliminated) {
  size_t h = 0;
  for (const Violation& v : eliminated) h += HashMix64(v.Hash());
  return h;
}

TEST(IncrementalHashTest, DatabaseHashIsOrderIndependentAndIncremental) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/7);
  // Fresh database built in reverse insertion order hashes identically.
  std::vector<Fact> facts = w.db.AllFacts();
  Database reversed(&w.db.schema());
  for (auto it = facts.rbegin(); it != facts.rend(); ++it) {
    reversed.Insert(*it);
  }
  EXPECT_EQ(reversed, w.db);
  EXPECT_EQ(reversed.Hash(), w.db.Hash());
  EXPECT_EQ(w.db.Hash(), RecomputedDbHash(w.db));
  // Insert + erase round-trips restore the hash exactly.
  Database copy = w.db;
  size_t before = copy.Hash();
  ASSERT_TRUE(copy.Erase(facts.front()));
  EXPECT_NE(copy.Hash(), before);
  ASSERT_TRUE(copy.Insert(facts.front()));
  EXPECT_EQ(copy.Hash(), before);
  // Disjoint databases (almost surely) hash differently.
  Database empty(&w.db.schema());
  EXPECT_NE(w.db.Hash(), empty.Hash());
}

TEST(IncrementalHashTest, StateFingerprintTracksApplyAndRevert) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/3);
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState state(context);
  // Walk two levels deep, checking the incrementally-maintained hashes
  // against from-scratch recomputations at every state.
  auto check = [&]() {
    EXPECT_EQ(state.db_hash(), RecomputedDbHash(state.current()));
    EXPECT_EQ(state.eliminated_hash(),
              RecomputedEliminatedHash(state.eliminated()));
  };
  check();
  size_t root_db_hash = state.db_hash();
  size_t root_elim_hash = state.eliminated_hash();
  std::vector<Operation> extensions = state.ValidExtensions();
  ASSERT_FALSE(extensions.empty());
  for (const Operation& op : extensions) {
    state.ApplyTrusted(op);
    check();
    for (const Operation& next : state.ValidExtensions()) {
      state.ApplyTrusted(next);
      check();
      state.Revert();
    }
    state.Revert();
    EXPECT_EQ(state.db_hash(), root_db_hash);
    EXPECT_EQ(state.eliminated_hash(), root_elim_hash);
  }
}

// ---------------------------------------------------------------------
// Soundness gate
// ---------------------------------------------------------------------

TEST(MemoizationApplicableTest, GatesOnDeletionOnlyChainsAndMemorylessness) {
  UniformChainGenerator uniform;
  DeletionOnlyUniformGenerator deletions;
  LambdaChainGenerator opaque(
      "opaque", [](const RepairingState& state,
                   const std::vector<Operation>& extensions) {
        std::vector<Rational> probs(extensions.size());
        probs[state.depth() % extensions.size()] = Rational(1);
        return probs;
      });

  gen::Workload keys = gen::MakeKeyViolationWorkload(3, 2, 2, /*seed=*/1);
  auto denial = RepairContext::Make(keys.db, keys.constraints);
  ASSERT_TRUE(denial->denial_only);
  EXPECT_TRUE(MemoizationApplicable(*denial, uniform, true));
  EXPECT_TRUE(MemoizationApplicable(*denial, uniform, false));
  // History-dependent generators never memoize.
  EXPECT_FALSE(MemoizationApplicable(*denial, opaque, true));

  gen::Workload tgd = gen::PaperExample1();
  auto general = RepairContext::Make(tgd.db, tgd.constraints);
  ASSERT_FALSE(general->denial_only);
  // Additions can enter the chain → the path matters.
  EXPECT_FALSE(MemoizationApplicable(*general, uniform, true));
  // A deletions-only generator with pruning keeps additions out.
  EXPECT_TRUE(MemoizationApplicable(*general, deletions, true));
  EXPECT_FALSE(MemoizationApplicable(*general, deletions, false));
}

// ---------------------------------------------------------------------
// Collision verification
// ---------------------------------------------------------------------

TEST(TranspositionTableTest, RejectsForcedHashCollisions) {
  gen::Workload w = gen::PaperKeyPairExample();
  FactStore& store = FactStore::Global();
  std::set<FactId> removed1 = {
      store.Intern(Fact::Make(*w.schema, "R", {"a", "b"}))};
  std::set<FactId> removed2 = {
      store.Intern(Fact::Make(*w.schema, "R", {"a", "c"}))};
  ASSERT_NE(removed1, removed2);

  // Lie about the key: both states claim the same fingerprint, as a real
  // 64-bit collision would.
  StateKey forged{/*db_hash=*/42, /*eliminated_hash=*/7};
  auto outcome1 = std::make_shared<MemoOutcome>();
  outcome1->states = 1;
  TranspositionTable table;
  table.Insert(forged, removed1, {}, outcome1);

  // Same key, different real removed-set → rejected, counted as a
  // collision.
  EXPECT_EQ(table.Lookup(forged, removed2, {}), nullptr);
  EXPECT_EQ(table.stats().collisions, 1u);
  // The genuine state still hits.
  EXPECT_EQ(table.Lookup(forged, removed1, {}), outcome1);
  EXPECT_EQ(table.stats().hits, 1u);

  // Both states can live under the colliding key side by side.
  auto outcome2 = std::make_shared<MemoOutcome>();
  outcome2->states = 2;
  table.Insert(forged, removed2, {}, outcome2);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Lookup(forged, removed1, {}), outcome1);
  EXPECT_EQ(table.Lookup(forged, removed2, {}), outcome2);

  // Differing eliminated sets are told apart the same way.
  Violation v{0, {}};
  table.Insert(StateKey{1, 2}, removed1, {v}, outcome1);
  EXPECT_EQ(table.Lookup(StateKey{1, 2}, removed1, {}), nullptr);
  EXPECT_EQ(table.Lookup(StateKey{1, 2}, removed1, {v}), outcome1);
}

TEST(TranspositionTableTest, BudgetOverflowEvictsCheapEntriesFirst) {
  // Entry budgets are enforced per stripe (16 stripes), so a cap of 16
  // allows one entry per stripe; pushing 64 cheap entries through must
  // evict, keep the table within budget, and keep the survivors serving
  // verified hits.
  gen::Workload w = gen::PaperKeyPairExample();
  FactStore& store = FactStore::Global();
  TranspositionTable table(/*max_entries=*/16);
  std::vector<std::set<FactId>> removed_sets;
  for (int i = 0; i < 64; ++i) {
    removed_sets.push_back({store.Intern(
        Fact::Make(*w.schema, "R", {"a", "x" + std::to_string(i)}))});
    auto outcome = std::make_shared<MemoOutcome>();
    outcome->states = 2;  // cost tier 0: no protection credits
    table.Insert(StateKey{static_cast<size_t>(i * 977), 0},
                 removed_sets.back(), {}, outcome);
  }
  MemoStats stats = table.stats();
  EXPECT_EQ(stats.inserts, 64u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(table.size(), 16u);
  EXPECT_EQ(stats.inserts - stats.evictions, stats.entries);
  // Every surviving entry still answers (and survivors exist).
  size_t live = 0;
  for (int i = 0; i < 64; ++i) {
    if (table.Lookup(StateKey{static_cast<size_t>(i * 977), 0},
                     removed_sets[static_cast<size_t>(i)], {}) != nullptr) {
      ++live;
    }
  }
  EXPECT_EQ(live, table.size());
}

TEST(TranspositionTableTest, ExpensiveSubtreesSurviveTheSweepLongest) {
  // One expensive entry (big virtual subtree → max protection credits)
  // among a stream of cheap ones hashed to the same stripe: the sweep
  // evicts the cheap entries and keeps the expensive one.
  gen::Workload w = gen::PaperKeyPairExample();
  FactStore& store = FactStore::Global();
  TranspositionTable table(/*max_entries=*/16);  // 1 entry per stripe
  std::set<FactId> expensive_removed = {
      store.Intern(Fact::Make(*w.schema, "R", {"a", "keep"}))};
  auto expensive = std::make_shared<MemoOutcome>();
  expensive->states = 1u << 16;  // top cost tier
  StateKey expensive_key{0, 0};
  table.Insert(expensive_key, expensive_removed, {}, expensive);
  // Force genuine same-stripe contention: keep only candidate keys whose
  // combined hash lands in the expensive entry's stripe.
  size_t stripe =
      expensive_key.Combined() % TranspositionTable::kNumStripes;
  size_t contenders = 0;
  for (size_t i = 1; contenders < 8; ++i) {
    StateKey key{i, 0};
    if (key.Combined() % TranspositionTable::kNumStripes != stripe) continue;
    ++contenders;
    std::set<FactId> removed = {store.Intern(
        Fact::Make(*w.schema, "R", {"a", "cheap" + std::to_string(i)}))};
    auto cheap = std::make_shared<MemoOutcome>();
    cheap->states = 2;
    table.Insert(key, removed, {}, cheap);
    // A hot entry: every verified hit refreshes its protection credits,
    // so no run of cheap newcomers can wear it down.
    EXPECT_EQ(table.Lookup(expensive_key, expensive_removed, {}), expensive);
  }
  EXPECT_EQ(table.Lookup(expensive_key, expensive_removed, {}), expensive);
  EXPECT_GT(table.stats().evictions, 0u);
}

// ---------------------------------------------------------------------
// Enumerator bit-identity, memo-on vs memo-off
// ---------------------------------------------------------------------

void ExpectIdenticalResults(const EnumerationResult& a,
                            const EnumerationResult& b,
                            const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.success_mass, b.success_mass);
  EXPECT_EQ(a.failing_mass, b.failing_mass);
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.absorbing_states, b.absorbing_states);
  EXPECT_EQ(a.successful_sequences, b.successful_sequences);
  EXPECT_EQ(a.failing_sequences, b.failing_sequences);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_EQ(a.truncated, b.truncated);
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].repair, b.repairs[i].repair) << "repair " << i;
    EXPECT_EQ(a.repairs[i].probability, b.repairs[i].probability)
        << "repair " << i;
    EXPECT_EQ(a.repairs[i].num_sequences, b.repairs[i].num_sequences)
        << "repair " << i;
  }
}

TEST(MemoizedEnumerationTest, ByteIdenticalAcrossGeneratorsAndThreads) {
  gen::Workload keys = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  gen::TrustWorkload trusted =
      gen::MakeTrustWorkload(4, 3, 2, /*seed=*/23);
  UniformChainGenerator uniform;
  PreferenceChainGenerator preference(0);
  TrustChainGenerator trust(trusted.trust);
  PriorityChainGenerator minchange = PriorityChainGenerator::MinimalChange();
  struct Case {
    std::string name;
    const gen::Workload* workload;
    const ChainGenerator* generator;
  };
  // Large enough that shared suffixes root multi-state subtrees — leaf
  // outcomes are deliberately not recorded (see CloseFrame).
  gen::Workload preference_example =
      gen::MakePreferenceWorkload(6, 12, 0.5, /*seed=*/13);
  std::vector<Case> cases = {
      {"keys/uniform", &keys, &uniform},
      {"keys/minchange", &keys, &minchange},
      {"preference", &preference_example, &preference},
      {"trust", &trusted.workload, &trust},
  };
  for (const Case& c : cases) {
    EnumerationOptions plain;
    plain.threads = 1;
    EnumerationResult base = EnumerateRepairs(
        c.workload->db, c.workload->constraints, *c.generator, plain);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      EnumerationOptions memo = plain;
      memo.memoize = true;
      memo.threads = threads;
      EnumerationResult result = EnumerateRepairs(
          c.workload->db, c.workload->constraints, *c.generator, memo);
      ExpectIdenticalResults(base, result,
                             c.name + " threads=" + std::to_string(threads));
      // The workloads above all share suffixes — the table must have
      // actually collapsed states, not just been carried along.
      EXPECT_GT(result.memo_stats.entries, 0u) << c.name;
      EXPECT_GT(result.memo_stats.hits, 0u) << c.name;
    }
  }
}

TEST(MemoizedEnumerationTest, TruncationIsByteIdentical) {
  UniformChainGenerator generator;
  gen::Workload w = gen::MakeKeyViolationWorkload(6, 6, 3, /*seed=*/3);
  for (size_t max_states : {size_t{50}, size_t{500}, size_t{5000}}) {
    EnumerationOptions plain;
    plain.threads = 1;
    plain.max_states = max_states;
    EnumerationResult base =
        EnumerateRepairs(w.db, w.constraints, generator, plain);
    ASSERT_TRUE(base.truncated);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      EnumerationOptions memo = plain;
      memo.memoize = true;
      memo.threads = threads;
      EnumerationResult result =
          EnumerateRepairs(w.db, w.constraints, generator, memo);
      ExpectIdenticalResults(base, result,
                             "max_states=" + std::to_string(max_states) +
                                 " threads=" + std::to_string(threads));
    }
  }
}

TEST(MemoizedEnumerationTest, CollapsesSharedSuffixesToDistinctStates) {
  // n independent conflicts: ~n!·cⁿ sequences but only 𝒪(cⁿ) distinct
  // states. The memoized walk must do real work proportional to the
  // latter: every distinct state is walked once, every revisit replays.
  UniformChainGenerator generator;
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  EnumerationOptions options;
  options.memoize = true;
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, generator, options);
  ASSERT_FALSE(result.truncated);
  const MemoStats& stats = result.memo_stats;
  EXPECT_GT(stats.hits, stats.entries);
  // Real walk ≈ misses (distinct states), far below the virtual count.
  EXPECT_LT(stats.misses, result.states_visited / 10);
}

TEST(MemoizedEnumerationTest, InapplicableCombinationsFallBackSilently) {
  // TGDs + a generator that can add facts: the knob must be ignored, the
  // results identical, the table unused.
  UniformChainGenerator uniform;
  gen::Workload w = gen::PaperExample1();
  EnumerationOptions plain;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, uniform, plain);
  EnumerationOptions memo = plain;
  memo.memoize = true;
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, uniform, memo);
  ExpectIdenticalResults(base, result, "tgd fallback");
  EXPECT_EQ(result.memo_stats.hits + result.memo_stats.misses, 0u);

  // Same instance under a deletions-only generator is memoizable.
  DeletionOnlyUniformGenerator deletions;
  EnumerationResult del_base =
      EnumerateRepairs(w.db, w.constraints, deletions, plain);
  EnumerationResult del_memo =
      EnumerateRepairs(w.db, w.constraints, deletions, memo);
  ExpectIdenticalResults(del_base, del_memo, "tgd deletions-only");
}

TEST(MemoizedEnumerationTest, BudgetPressureOnlyCostsSpeed) {
  // Entry and byte budgets force the eviction sweep mid-enumeration; the
  // results must stay byte-identical — eviction can only ever cause a
  // recomputation, never a wrong replay.
  UniformChainGenerator generator;
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  EnumerationOptions plain;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, plain);

  EnumerationOptions capped = plain;
  capped.memoize = true;
  capped.memo_max_entries = 4;  // 1 entry per stripe
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, generator, capped);
  ExpectIdenticalResults(base, result, "entry-capped table");
  EXPECT_GT(result.memo_stats.evictions, 0u);
  EXPECT_LE(result.memo_stats.entries, 16u);  // kNumStripes × 1

  EnumerationOptions byte_capped = plain;
  byte_capped.memoize = true;
  byte_capped.memo_max_bytes = 64 * 1024;
  EnumerationResult byte_result =
      EnumerateRepairs(w.db, w.constraints, generator, byte_capped);
  ExpectIdenticalResults(base, byte_result, "byte-capped table");
  EXPECT_LE(byte_result.memo_stats.bytes, 64u * 1024u);
}

// ---------------------------------------------------------------------
// Counting / OCQA / top-k on the memoized walk
// ---------------------------------------------------------------------

TEST(MemoizedCountingTest, CountingOcaMatchesUnmemoized) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/19);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  CountingOptions plain;
  CountingOcaResult base =
      CountingOca(w.db, w.constraints, generator, *q, plain);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    CountingOptions memo;
    memo.enumeration.memoize = true;
    memo.enumeration.threads = threads;
    CountingOcaResult result =
        CountingOca(w.db, w.constraints, generator, *q, memo);
    EXPECT_EQ(result.num_repairs, base.num_repairs) << threads;
    EXPECT_EQ(result.answers, base.answers) << threads;
  }
}

TEST(MemoizedOcqaTest, ConditionalProbabilitiesMatchUnmemoized) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/29);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult base = ComputeOca(w.db, w.constraints, generator, *q);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    EnumerationOptions options;
    options.memoize = true;
    options.threads = threads;
    OcaResult result =
        ComputeOca(w.db, w.constraints, generator, *q, options);
    EXPECT_EQ(result.answers, base.answers) << threads;
    EXPECT_EQ(result.success_mass, base.success_mass) << threads;
    EXPECT_EQ(result.failing_mass, base.failing_mass) << threads;
  }
}

TEST(MemoizedTopKTest, ExhaustiveSearchMatchesUnmerged) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/31);
  UniformChainGenerator generator;
  TopKOptions plain;
  TopKResult base = TopKRepairs(w.db, w.constraints, generator, 3, plain);
  ASSERT_TRUE(base.exact);
  TopKOptions memo;
  memo.memoize = true;
  TopKResult result = TopKRepairs(w.db, w.constraints, generator, 3, memo);
  ASSERT_TRUE(result.exact);
  EXPECT_TRUE(result.certified);
  EXPECT_EQ(result.explored_success_mass, base.explored_success_mass);
  EXPECT_EQ(result.explored_failing_mass, base.explored_failing_mass);
  EXPECT_TRUE(result.frontier_mass.is_zero());
  ASSERT_EQ(result.repairs.size(), base.repairs.size());
  for (size_t i = 0; i < base.repairs.size(); ++i) {
    EXPECT_EQ(result.repairs[i].repair, base.repairs[i].repair) << i;
    EXPECT_EQ(result.repairs[i].probability, base.repairs[i].probability)
        << i;
    EXPECT_EQ(result.repairs[i].num_sequences,
              base.repairs[i].num_sequences)
        << i;
  }
  // Shared suffixes expand once: the merged search must be strictly
  // smaller than the per-path one.
  EXPECT_LT(result.states_expanded, base.states_expanded);
}

TEST(MemoizedTopKTest, CertifiedMapAgreesUnderBudget) {
  gen::Workload w = gen::MakeKeyViolationWorkload(6, 5, 2, /*seed=*/37);
  UniformChainGenerator generator;
  TopKOptions plain;
  TopKResult base = TopKRepairs(w.db, w.constraints, generator, 1, plain);
  TopKOptions memo;
  memo.memoize = true;
  TopKResult result = TopKRepairs(w.db, w.constraints, generator, 1, memo);
  ASSERT_TRUE(base.certified);
  ASSERT_TRUE(result.certified);
  EXPECT_EQ(result.Map().repair, base.Map().repair);
}

}  // namespace
}  // namespace opcqa
