// Tests for the exact chain enumerator: hitting distribution existence
// (Proposition 3), mass conservation, truncation reporting.

#include <gtest/gtest.h>

#include "gen/workloads.h"
#include "repair/repair_enumerator.h"

namespace opcqa {
namespace {

TEST(EnumeratorTest, ConsistentDatabaseIsItsOwnUniqueRepair) {
  gen::Workload w = gen::PaperPreferenceExample();
  Database consistent(w.schema.get());
  consistent.Insert(Fact::Make(*w.schema, "Pref", {"a", "b"}));
  UniformChainGenerator gen;
  EnumerationResult result =
      EnumerateRepairs(consistent, w.constraints, gen);
  ASSERT_EQ(result.repairs.size(), 1u);
  EXPECT_EQ(result.repairs[0].repair, consistent);
  EXPECT_EQ(result.repairs[0].probability, Rational(1));
  EXPECT_EQ(result.success_mass, Rational(1));
  EXPECT_TRUE(result.failing_mass.is_zero());
  EXPECT_FALSE(result.truncated);
}

TEST(EnumeratorTest, MassConservation) {
  // success_mass + failing_mass == 1 exactly, for several workloads.
  UniformChainGenerator gen;
  for (auto maker : {gen::PaperPreferenceExample, gen::PaperExample1,
                     gen::PaperKeyPairExample, gen::PaperFailingExample}) {
    gen::Workload w = maker();
    EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
    ASSERT_FALSE(result.truncated);
    EXPECT_EQ(result.success_mass + result.failing_mass, Rational(1))
        << w.db.ToString();
  }
}

TEST(EnumeratorTest, RepairProbabilitiesArePositiveAndSorted) {
  gen::Workload w = gen::PaperPreferenceExample();
  UniformChainGenerator gen;
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  for (size_t i = 0; i < result.repairs.size(); ++i) {
    EXPECT_GT(result.repairs[i].probability, Rational(0));
    if (i > 0) {
      EXPECT_GE(result.repairs[i - 1].probability,
                result.repairs[i].probability);
    }
  }
}

TEST(EnumeratorTest, AllRepairsAreConsistentAndInsideBase) {
  gen::Workload w = gen::PaperExample1();
  UniformChainGenerator gen;
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  BaseSpec base = BaseSpec::ForDatabase(w.db, ConstantsOf(w.constraints));
  ASSERT_FALSE(result.repairs.empty());
  for (const RepairInfo& info : result.repairs) {
    EXPECT_TRUE(Satisfies(info.repair, w.constraints))
        << info.repair.ToString();
    EXPECT_TRUE(base.ContainsAll(info.repair));
  }
}

TEST(EnumeratorTest, FailingExampleSplitsMass) {
  // D = {R(a)}, Σ = {R(x)→T(x); T(x)→⊥}: ε branches uniformly into
  // +T(a) (failing) and −R(a) (successful repair ∅).
  gen::Workload w = gen::PaperFailingExample();
  UniformChainGenerator gen;
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  EXPECT_EQ(result.success_mass, Rational(1, 2));
  EXPECT_EQ(result.failing_mass, Rational(1, 2));
  EXPECT_EQ(result.failing_sequences, 1u);
  ASSERT_EQ(result.repairs.size(), 1u);
  EXPECT_TRUE(result.repairs[0].repair.empty());
}

TEST(EnumeratorTest, DeletionOnlyGeneratorNeverFails) {
  // Proposition 8: deletion-only ⇒ non-failing, even with TGDs around.
  gen::Workload w = gen::PaperExample1();
  DeletionOnlyUniformGenerator gen;
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  EXPECT_TRUE(result.failing_mass.is_zero());
  EXPECT_EQ(result.failing_sequences, 0u);
  EXPECT_EQ(result.success_mass, Rational(1));
}

TEST(EnumeratorTest, TruncationIsReported) {
  gen::Workload w = gen::MakeKeyViolationWorkload(6, 6, 3, /*seed=*/3);
  UniformChainGenerator gen;
  EnumerationOptions options;
  options.max_states = 50;
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, gen, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.states_visited, options.max_states + 1);
}

TEST(EnumeratorTest, ProbabilityOfLookup) {
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator gen;
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  ASSERT_EQ(result.repairs.size(), 3u);  // keep b, keep c, keep none
  Database keep_b(w.schema.get());
  keep_b.Insert(Fact::Make(*w.schema, "R", {"a", "b"}));
  EXPECT_EQ(result.ProbabilityOf(keep_b), Rational(1, 3));
  Database unrelated(w.schema.get());
  unrelated.Insert(Fact::Make(*w.schema, "R", {"b", "c"}));
  EXPECT_TRUE(result.ProbabilityOf(unrelated).is_zero());
}

TEST(EnumeratorTest, ZeroProbabilityBranchesArePruned) {
  gen::Workload w = gen::PaperExample1();
  // A generator that forbids additions via zero probability: enumeration
  // must never visit an addition branch.
  DeletionOnlyUniformGenerator gen;
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  for (const RepairInfo& info : result.repairs) {
    // Deletion-only repairs are subsets of D.
    std::vector<Fact> only_in_repair, only_in_d;
    info.repair.SymmetricDifference(w.db, &only_in_repair, &only_in_d);
    EXPECT_TRUE(only_in_repair.empty()) << info.repair.ToString();
  }
}

TEST(EnumeratorTest, RenderChainTreeShowsRootAndLeaves) {
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator gen;
  std::string tree = RenderChainTree(w.db, w.constraints, gen);
  EXPECT_NE(tree.find("ε"), std::string::npos);
  EXPECT_NE(tree.find("repair:"), std::string::npos);
  EXPECT_NE(tree.find("-{R(a,b)}"), std::string::npos);
}

TEST(EnumeratorTest, StatisticsAreCoherent) {
  gen::Workload w = gen::PaperPreferenceExample();
  UniformChainGenerator gen;
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  EXPECT_EQ(result.absorbing_states,
            result.successful_sequences + result.failing_sequences);
  size_t aggregated = 0;
  for (const RepairInfo& info : result.repairs) {
    aggregated += info.num_sequences;
  }
  EXPECT_EQ(aggregated, result.successful_sequences);
  EXPECT_GT(result.states_visited, result.absorbing_states);
  EXPECT_GT(result.max_depth, 0u);
}

}  // namespace
}  // namespace opcqa
