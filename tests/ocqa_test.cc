// Tests for exact operational consistent query answering (Section 4).

#include <gtest/gtest.h>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"
#include "repair/trust_generator.h"

namespace opcqa {
namespace {

TEST(OcqaTest, KeyPairUniformBooleanQuery) {
  // D = {R(a,b), R(a,c)}, key on R, uniform chain: repairs {R(a,b)},
  // {R(a,c)}, ∅, each 1/3. Q() := ∃x R(a,x) holds in two of them.
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q() := exists x R(a, x)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  EXPECT_EQ(oca.Probability({}), Rational(2, 3));
}

TEST(OcqaTest, PerTupleProbabilities) {
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  EXPECT_EQ(oca.Probability({Const("b")}), Rational(1, 3));
  EXPECT_EQ(oca.Probability({Const("c")}), Rational(1, 3));
  EXPECT_TRUE(oca.Probability({Const("a")}).is_zero());
  EXPECT_EQ(oca.answers.size(), 2u);
}

TEST(OcqaTest, TrustGeneratorShiftsProbabilities) {
  gen::Workload w = gen::PaperKeyPairExample();
  Fact ab = Fact::Make(*w.schema, "R", {"a", "b"});
  Fact ac = Fact::Make(*w.schema, "R", {"a", "c"});
  TrustChainGenerator gen({{ab, Rational(9, 10)}, {ac, Rational(1, 10)}});
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  // The highly trusted fact R(a,b) survives far more often.
  EXPECT_GT(oca.Probability({Const("b")}), oca.Probability({Const("c")}));
  // Exact values from Example 5's weight formulas with tr(ab)=0.9,
  // tr(ac)=0.1: tr_{ab|ac} = 9/10, tr_{ac|ab} = 1/10;
  // keep ab (drop ac): 9/10·(1−9/100) = 819/1000;
  // keep ac (drop ab): 1/10·(1−9/100) = 91/1000;
  // drop both: 1/10·9/10 = 90/1000.
  EXPECT_EQ(oca.Probability({Const("b")}), Rational(819, 1000));
  EXPECT_EQ(oca.Probability({Const("c")}), Rational(91, 1000));
}

TEST(OcqaTest, ConditionalProbabilityNormalizesBySuccessMass) {
  // Failing instance under the uniform chain: success mass 1/2; the empty
  // repair satisfies Q() := ¬∃x R(x) with conditional probability 1.
  gen::Workload w = gen::PaperFailingExample();
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q() := not (exists x R(x))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  EXPECT_EQ(oca.success_mass, Rational(1, 2));
  EXPECT_EQ(oca.failing_mass, Rational(1, 2));
  EXPECT_EQ(oca.Probability({}), Rational(1));
}

TEST(OcqaTest, NoRepairsMeansZeroEverywhere) {
  // A generator that always walks into the failing branch: no operational
  // repair exists, so CP ≡ 0 by the paper's convention.
  gen::Workload w = gen::PaperFailingExample();
  Fact ta = Fact::Make(*w.schema, "T", {"a"});
  LambdaChainGenerator gen(
      "always-fail",
      [&](const RepairingState&, const std::vector<Operation>& ops) {
        std::vector<Rational> probs(ops.size(), Rational(0));
        for (size_t i = 0; i < ops.size(); ++i) {
          if (ops[i] == Operation::Add({ta})) probs[i] = Rational(1);
        }
        return probs;
      });
  Result<Query> q = ParseQuery(*w.schema, "Q() := true");
  ASSERT_TRUE(q.ok());
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  EXPECT_TRUE(oca.success_mass.is_zero());
  EXPECT_TRUE(oca.answers.empty());
  EXPECT_TRUE(oca.Probability({}).is_zero());
}

TEST(OcqaTest, TupleProbabilityMatchesOcaEntry) {
  gen::Workload w = gen::PaperPreferenceExample();
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := Pref(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  for (const auto& [tuple, p] : oca.answers) {
    EXPECT_EQ(ComputeTupleProbability(w.db, w.constraints, gen, *q, tuple), p)
        << TupleToString(tuple);
  }
}

TEST(OcqaTest, UnconflictedFactsAreCertain) {
  // Pref(a,d) and Pref(b,d) appear in every repair: CP = 1.
  gen::Workload w = gen::PaperPreferenceExample();
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := Pref(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  EXPECT_EQ(oca.Probability({Const("a"), Const("d")}), Rational(1));
  EXPECT_EQ(oca.Probability({Const("b"), Const("d")}), Rational(1));
  std::vector<Tuple> certain = oca.AnswersAtLeast(Rational(1));
  EXPECT_EQ(certain.size(), 2u);
}

TEST(OcqaTest, AnswersAtLeastThreshold) {
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  EXPECT_EQ(oca.AnswersAtLeast(Rational(1, 3)).size(), 2u);
  EXPECT_EQ(oca.AnswersAtLeast(Rational(1, 2)).size(), 0u);
}

TEST(OcqaTest, OcaFromEnumerationReusesChain) {
  gen::Workload w = gen::PaperPreferenceExample();
  UniformChainGenerator gen;
  EnumerationResult enumeration =
      EnumerateRepairs(w.db, w.constraints, gen);
  Result<Query> q1 = ParseQuery(*w.schema, "Q(x,y) := Pref(x,y)");
  Result<Query> q2 =
      ParseQuery(*w.schema, "Q(x) := exists y Pref(x,y)");
  ASSERT_TRUE(q1.ok() && q2.ok());
  OcaResult oca1 = OcaFromEnumeration(enumeration, *q1);
  OcaResult oca2 = OcaFromEnumeration(enumeration, *q2);
  EXPECT_FALSE(oca1.answers.empty());
  EXPECT_FALSE(oca2.answers.empty());
  // Projection consistency: CP of ∃y Pref(x,y) ≥ CP of any Pref(x,y).
  for (const auto& [tuple, p] : oca1.answers) {
    EXPECT_GE(oca2.Probability({tuple[0]}), p);
  }
}

TEST(OcqaTest, ProbabilitiesAreWithinZeroOne) {
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 2, 2, /*seed=*/11);
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult oca = ComputeOca(w.db, w.constraints, gen, *q);
  for (const auto& [tuple, p] : oca.answers) {
    EXPECT_GT(p, Rational(0)) << TupleToString(tuple);
    EXPECT_LE(p, Rational(1)) << TupleToString(tuple);
  }
}

}  // namespace
}  // namespace opcqa
