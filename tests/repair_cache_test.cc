// Tests for the cross-query repair-space cache (repair/repair_cache.h):
// persistence across queries over one root, verified root identity,
// invalidation on database mutation, eviction under byte pressure with
// byte-identical results (including post-eviction replay), the
// delta-compression payload savings, the session/SQL layer threading, and
// a concurrent two-query-one-cache run (TSan-gated in CI).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/ocqa_session.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/repair_cache.h"
#include "repair/top_k.h"
#include "repair/trust_generator.h"
#include "sql/exact_runner.h"

namespace opcqa {
namespace {

EnumerationOptions MemoOptions(RepairSpaceCache* cache) {
  EnumerationOptions options;
  options.memoize = true;
  options.cache = cache;
  return options;
}

// ---------------------------------------------------------------------
// Cross-query persistence
// ---------------------------------------------------------------------

TEST(RepairSpaceCacheTest, ThirdQueryReplaysTheChainFromOneRootHit) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});

  RepairSpaceCache cache;
  EnumerationResult first =
      EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  EXPECT_GT(first.memo_stats.misses, 0u);
  // Persistent tables filter admissions (a key must miss twice before its
  // subtree is recorded), so the cold walk defers its single-visit states
  // instead of storing them.
  EXPECT_GT(first.memo_stats.admission_deferred, 0u);
  EnumerationResult second =
      EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  // The second query re-misses the chain root (its first insert was
  // probational) but replays the multi-visit suffixes the first walk
  // admitted; its own re-walk then admits the root entry.
  EXPECT_GT(second.memo_stats.hits, 0u);
  EXPECT_GT(second.memo_stats.misses, 0u);
  EnumerationResult third =
      EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  // From the third query on, the whole chain replays from the root entry:
  // exactly one probe, which hits.
  EXPECT_EQ(third.memo_stats.hits, 1u);
  EXPECT_EQ(third.memo_stats.misses, 0u);
  EXPECT_EQ(cache.roots(), 1u);

  for (const EnumerationResult* result : {&first, &second, &third}) {
    EXPECT_EQ(result->success_mass, base.success_mass);
    EXPECT_EQ(result->failing_mass, base.failing_mass);
    EXPECT_EQ(result->states_visited, base.states_visited);
    EXPECT_EQ(result->max_depth, base.max_depth);
    ASSERT_EQ(result->repairs.size(), base.repairs.size());
    for (size_t i = 0; i < base.repairs.size(); ++i) {
      EXPECT_EQ(result->repairs[i].repair, base.repairs[i].repair);
      EXPECT_EQ(result->repairs[i].probability, base.repairs[i].probability);
      EXPECT_EQ(result->repairs[i].num_sequences,
                base.repairs[i].num_sequences);
    }
  }
}

TEST(RepairSpaceCacheTest, DistinctTriplesGetDistinctRoots) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/5);
  gen::Workload other = gen::MakeKeyViolationWorkload(5, 3, 2, /*seed=*/5);
  ASSERT_FALSE(w.db == other.db);
  UniformChainGenerator uniform;
  DeletionOnlyUniformGenerator deletions;
  RepairSpaceCache cache;
  EnumerateRepairs(w.db, w.constraints, uniform, MemoOptions(&cache));
  EXPECT_EQ(cache.roots(), 1u);
  // Same database, different generator → separate repair space.
  EnumerateRepairs(w.db, w.constraints, deletions, MemoOptions(&cache));
  EXPECT_EQ(cache.roots(), 2u);
  // Different database → separate root again.
  EnumerateRepairs(other.db, other.constraints, uniform,
                   MemoOptions(&cache));
  EXPECT_EQ(cache.roots(), 3u);
  // Same triple as the first query → reused, not duplicated.
  EnumerateRepairs(w.db, w.constraints, uniform, MemoOptions(&cache));
  EXPECT_EQ(cache.roots(), 3u);
}

TEST(RepairSpaceCacheTest, TrustGeneratorsShareOnlyEqualParameterizations) {
  gen::TrustWorkload trusted = gen::MakeTrustWorkload(4, 3, 2, /*seed=*/23);
  TrustChainGenerator trust_a(trusted.trust);
  TrustChainGenerator trust_same(trusted.trust);
  TrustChainGenerator trust_other(trusted.trust, Rational(1, 3));
  EXPECT_EQ(trust_a.cache_identity(), trust_same.cache_identity());
  EXPECT_NE(trust_a.cache_identity(), trust_other.cache_identity());

  RepairSpaceCache cache;
  const gen::Workload& w = trusted.workload;
  EnumerateRepairs(w.db, w.constraints, trust_a, MemoOptions(&cache));
  EnumerateRepairs(w.db, w.constraints, trust_same, MemoOptions(&cache));
  EXPECT_EQ(cache.roots(), 1u);  // equal distributions share
  EnumerateRepairs(w.db, w.constraints, trust_other, MemoOptions(&cache));
  EXPECT_EQ(cache.roots(), 2u);  // different default trust must not
}

TEST(RepairSpaceCacheTest, GeneratorsWithoutIdentityNeverShare) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/5);
  // Memoryless but anonymous: sound to memoize within a call, unsound to
  // share across instances — the lambda could close over anything.
  LambdaChainGenerator anonymous(
      "anonymous-uniform",
      [](const RepairingState&, const std::vector<Operation>& extensions) {
        return std::vector<Rational>(
            extensions.size(),
            Rational(1, static_cast<int64_t>(extensions.size())));
      },
      /*deletions_only=*/false, /*memoryless=*/true);
  RepairSpaceCache cache;
  EXPECT_EQ(cache.TableFor(w.db, w.constraints, anonymous, true), nullptr);
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, anonymous,
                                              MemoOptions(&cache));
  EXPECT_EQ(cache.roots(), 0u);
  // The per-call scratch table still memoized within the call.
  EXPECT_GT(result.memo_stats.inserts, 0u);
}

// ---------------------------------------------------------------------
// Invalidation on database mutation
// ---------------------------------------------------------------------

TEST(RepairSpaceCacheTest, MutationInvalidatesStaleRootsAndAnswersFresh) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/17);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());

  engine::OcqaSession session(w.db, w.constraints);
  OcaResult warm = session.Answer(generator, *q);
  ASSERT_GT(session.CacheStats().entries, 0u);

  // Mutate: delete one conflicting fact through the session.
  std::vector<Fact> facts = w.db.AllFacts();
  ASSERT_TRUE(session.EraseFact(facts.front()));
  // The stale root was dropped eagerly — no entry of the old repair
  // space can ever be replayed against the new database.
  EXPECT_EQ(session.cache().roots(), 0u);

  OcaResult mutated = session.Answer(generator, *q);
  // Answers equal a from-scratch computation over the mutated database.
  Database fresh_db = session.database();
  OcaResult fresh = ComputeOca(fresh_db, w.constraints, generator, *q);
  EXPECT_EQ(mutated.answers, fresh.answers);
  EXPECT_EQ(mutated.success_mass, fresh.success_mass);
  EXPECT_NE(mutated.answers, warm.answers);  // the instance truly changed

  // And the mutated root is cached in turn (admitted once its key has
  // been seen twice — the third query replays from the single root hit).
  OcaResult mutated_again = session.Answer(generator, *q);
  EXPECT_EQ(mutated_again.answers, mutated.answers);
  OcaResult mutated_warm = session.Answer(generator, *q);
  EXPECT_EQ(mutated_warm.answers, mutated.answers);
  EXPECT_EQ(mutated_warm.enumeration.memo_stats.hits, 1u);
  EXPECT_EQ(mutated_warm.enumeration.memo_stats.misses, 0u);
}

TEST(RepairSpaceCacheTest, InsertAndEraseRoundTripStillFingerprintsSafely) {
  // Erase + re-insert restores the database content, so the *original*
  // root would be valid again — but the session dropped it; the point is
  // that a fresh root is built and the answers stay correct.
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/29);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  engine::OcqaSession session(w.db, w.constraints);
  OcaResult original = session.Answer(generator, *q);
  std::vector<Fact> facts = w.db.AllFacts();
  ASSERT_TRUE(session.EraseFact(facts.front()));
  ASSERT_TRUE(session.InsertFact(facts.front()));
  OcaResult round_tripped = session.Answer(generator, *q);
  EXPECT_EQ(round_tripped.answers, original.answers);
  EXPECT_EQ(round_tripped.success_mass, original.success_mass);
}

// ---------------------------------------------------------------------
// Eviction under pressure stays byte-identical
// ---------------------------------------------------------------------

TEST(RepairSpaceCacheTest, ByteBudgetEvictionKeepsResultsByteIdentical) {
  gen::Workload w = gen::MakeKeyViolationWorkload(6, 5, 2, /*seed=*/100);
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});

  RepairCacheOptions cache_options;
  cache_options.max_bytes_per_root = 48 * 1024;  // far below the full space
  RepairSpaceCache cache(cache_options);
  for (int round = 0; round < 3; ++round) {
    EnumerationResult result = EnumerateRepairs(
        w.db, w.constraints, generator, MemoOptions(&cache));
    SCOPED_TRACE("round " + std::to_string(round));
    EXPECT_EQ(result.success_mass, base.success_mass);
    EXPECT_EQ(result.failing_mass, base.failing_mass);
    EXPECT_EQ(result.states_visited, base.states_visited);
    ASSERT_EQ(result.repairs.size(), base.repairs.size());
    for (size_t i = 0; i < base.repairs.size(); ++i) {
      EXPECT_EQ(result.repairs[i].repair, base.repairs[i].repair);
      EXPECT_EQ(result.repairs[i].probability,
                base.repairs[i].probability);
    }
  }
  MemoStats stats = cache.TotalStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 48u * 1024u);
  // Post-eviction replay: warm rounds still found *something* to replay.
  EXPECT_GT(stats.hits, 0u);
}

// ---------------------------------------------------------------------
// Delta compression
// ---------------------------------------------------------------------

TEST(RepairSpaceCacheTest, DeltaPayloadsBeatFullDatabaseCopies) {
  // The realistic CQA shape: a large, mostly-clean database with a few
  // conflicts. Chains are depth-bounded (≤ #violating groups) while |D|
  // is large, so the removed-id deltas are ≈ depth-sized where PR-3
  // stored |D|-sized Database copies per key and per repair share —
  // the ratio grows like |D| / depth.
  gen::Workload w = gen::MakeKeyViolationWorkload(40, 4, 2, /*seed=*/100);
  UniformChainGenerator generator;
  RepairSpaceCache cache;
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  MemoStats stats = cache.TotalStats();
  ASSERT_GT(stats.entries, 50u);
  ASSERT_GT(stats.payload_bytes, 0u);
  EXPECT_GE(stats.full_payload_bytes, 4 * stats.payload_bytes)
      << "delta compression should cut payload bytes at least 4x on "
         "depth-bounded chains";
}

// ---------------------------------------------------------------------
// Top-k consumes cached subtrees
// ---------------------------------------------------------------------

TEST(RepairSpaceCacheTest, TopKConsumesSubtreesRecordedByEnumeration) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/31);
  UniformChainGenerator generator;
  TopKOptions plain;
  TopKResult base = TopKRepairs(w.db, w.constraints, generator, 3, plain);
  ASSERT_TRUE(base.exact);

  RepairSpaceCache cache;
  // Two enumerations: the admission filter records a subtree only after
  // its key was seen twice, so the second pass admits the root entry.
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  EnumerateRepairs(w.db, w.constraints, generator, MemoOptions(&cache));
  MemoStats before = cache.TotalStats();
  TopKOptions cached;
  cached.memoize = true;
  cached.cache = &cache;
  TopKResult result = TopKRepairs(w.db, w.constraints, generator, 3, cached);
  ASSERT_TRUE(result.exact);
  // The search actually consumed recorded subtrees...
  EXPECT_GT(cache.TotalStats().hits, before.hits);
  // ...and folding counts the virtual subtree, so the expansion counter
  // matches the plain exhaustive search state for state.
  EXPECT_EQ(result.states_expanded, base.states_expanded);
  EXPECT_EQ(result.explored_success_mass, base.explored_success_mass);
  EXPECT_EQ(result.explored_failing_mass, base.explored_failing_mass);
  ASSERT_EQ(result.repairs.size(), base.repairs.size());
  for (size_t i = 0; i < base.repairs.size(); ++i) {
    EXPECT_EQ(result.repairs[i].repair, base.repairs[i].repair) << i;
    EXPECT_EQ(result.repairs[i].probability, base.repairs[i].probability)
        << i;
    EXPECT_EQ(result.repairs[i].num_sequences,
              base.repairs[i].num_sequences)
        << i;
  }
}

// ---------------------------------------------------------------------
// SQL exact runner over the shared cache
// ---------------------------------------------------------------------

TEST(SqlExactRunnerTest, ExactProbabilitiesAndWarmSecondQuery) {
  // Two key groups of two tuples each. Under the uniform generator every
  // violating pair {α,β} has three resolutions — delete α, delete β, or
  // delete both (the Section 3 chain) — so each dirty row survives with
  // probability 1/3 and there are 3 × 3 = 9 operational repairs.
  Schema schema;
  schema.AddRelation("R", 2);
  Database db(&schema);
  db.Insert(Fact::Make(schema, "R", {"a", "b"}));
  db.Insert(Fact::Make(schema, "R", {"a", "c"}));
  db.Insert(Fact::Make(schema, "R", {"d", "e"}));
  db.Insert(Fact::Make(schema, "R", {"d", "f"}));

  sql::TableKey key;
  key.table = "R";
  key.key_positions = {0};
  Result<sql::SqlExactRunner> runner =
      sql::SqlExactRunner::Make(db, {key});
  ASSERT_TRUE(runner.ok());

  Result<sql::SqlExactResult> first = runner->Run("SELECT c0, c1 FROM R");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->num_repairs, 9u);
  EXPECT_EQ(first->success_mass, Rational(1));
  ASSERT_EQ(first->probability.size(), 4u);
  for (const auto& [row, p] : first->probability) {
    EXPECT_EQ(p, Rational(1, 3));
  }

  // A second statement over the same database re-walks the (probational)
  // root and admits it; from the third statement on the chain replays
  // from one root-entry hit.
  Result<sql::SqlExactResult> second =
      runner->Run("SELECT c0 FROM R WHERE c1 = 'b'");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->probability.size(), 1u);
  EXPECT_EQ(second->probability.begin()->second, Rational(1, 3));
  Result<sql::SqlExactResult> third =
      runner->Run("SELECT c1 FROM R WHERE c0 = 'a'");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->memo_stats.hits, 1u);
  EXPECT_EQ(third->memo_stats.misses, 0u);
  ASSERT_EQ(third->probability.size(), 2u);
  for (const auto& [row, p] : third->probability) {
    EXPECT_EQ(p, Rational(1, 3));
  }
}

// ---------------------------------------------------------------------
// Concurrent queries over one cache (TSan-gated in CI)
// ---------------------------------------------------------------------

TEST(RepairSpaceCacheTest, ConcurrentTwoQueryOneCacheIsSafeAndIdentical) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/41);
  UniformChainGenerator generator;
  EnumerationResult base =
      EnumerateRepairs(w.db, w.constraints, generator, {});

  for (int round = 0; round < 4; ++round) {
    RepairSpaceCache cache;
    EnumerationResult results[2];
    {
      // Two queries race on a cold cache: both walk, both insert into the
      // shared striped table, each may replay the other's subtrees.
      std::thread first([&] {
        EnumerationOptions options = MemoOptions(&cache);
        options.threads = 2;  // PR-2 pool underneath as well
        results[0] = EnumerateRepairs(w.db, w.constraints, generator,
                                      options);
      });
      std::thread second([&] {
        results[1] = EnumerateRepairs(w.db, w.constraints, generator,
                                      MemoOptions(&cache));
      });
      first.join();
      second.join();
    }
    EXPECT_EQ(cache.roots(), 1u);
    for (const EnumerationResult& result : results) {
      EXPECT_EQ(result.success_mass, base.success_mass);
      EXPECT_EQ(result.states_visited, base.states_visited);
      ASSERT_EQ(result.repairs.size(), base.repairs.size());
      for (size_t i = 0; i < base.repairs.size(); ++i) {
        EXPECT_EQ(result.repairs[i].repair, base.repairs[i].repair);
        EXPECT_EQ(result.repairs[i].probability,
                  base.repairs[i].probability);
      }
    }
  }
}

}  // namespace
}  // namespace opcqa
