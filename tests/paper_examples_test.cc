// End-to-end validation against the paper's worked examples: the Markov
// chain figure of Section 3, the repair distribution of Example 6, the
// operational consistent answers of Example 7, and Propositions 4 and 8.

#include <gtest/gtest.h>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/abc.h"
#include "repair/ocqa.h"
#include "repair/preference_generator.h"

namespace opcqa {
namespace {

class PreferenceExampleTest : public ::testing::Test {
 protected:
  PreferenceExampleTest()
      : w_(gen::PaperPreferenceExample()),
        pref_(w_.schema->RelationOrDie("Pref")),
        gen_(pref_) {}

  Fact P(const char* x, const char* y) {
    return Fact::Make(*w_.schema, "Pref", {x, y});
  }

  Database Without(std::initializer_list<Fact> removed) {
    Database db = w_.db;
    for (const Fact& f : removed) db.Erase(f);
    return db;
  }

  gen::Workload w_;
  PredId pref_;
  PreferenceChainGenerator gen_;
};

TEST_F(PreferenceExampleTest, Example6FourRepairsWithExactProbabilities) {
  EnumerationResult result = EnumerateRepairs(w_.db, w_.constraints, gen_);
  ASSERT_FALSE(result.truncated);
  ASSERT_EQ(result.repairs.size(), 4u);

  // Example 6, verbatim:
  //   D−{(a,b),(a,c)}: 2/9·1/3 + 1/9·2/4
  //   D−{(a,b),(c,a)}: 2/9·2/3 + 3/9·2/5
  //   D−{(b,a),(a,c)}: 3/9·1/4 + 1/9·2/4
  //   D−{(b,a),(c,a)}: 3/9·3/4 + 3/9·3/5
  Rational p1 =
      Rational(2, 9) * Rational(1, 3) + Rational(1, 9) * Rational(2, 4);
  Rational p2 =
      Rational(2, 9) * Rational(2, 3) + Rational(3, 9) * Rational(2, 5);
  Rational p3 =
      Rational(3, 9) * Rational(1, 4) + Rational(1, 9) * Rational(2, 4);
  Rational p4 =
      Rational(3, 9) * Rational(3, 4) + Rational(3, 9) * Rational(3, 5);

  EXPECT_EQ(result.ProbabilityOf(Without({P("a", "b"), P("a", "c")})), p1);
  EXPECT_EQ(result.ProbabilityOf(Without({P("a", "b"), P("c", "a")})), p2);
  EXPECT_EQ(result.ProbabilityOf(Without({P("b", "a"), P("a", "c")})), p3);
  EXPECT_EQ(result.ProbabilityOf(Without({P("b", "a"), P("c", "a")})), p4);

  // The headline number: P(D − {Pref(b,a), Pref(c,a)}) = 0.45 = 9/20.
  EXPECT_EQ(p4, Rational(9, 20));
  // The distribution is complete.
  EXPECT_EQ(p1 + p2 + p3 + p4, Rational(1));
  EXPECT_EQ(result.success_mass, Rational(1));
  EXPECT_TRUE(result.failing_mass.is_zero());
}

TEST_F(PreferenceExampleTest, EachRepairReachedByTwoSequences) {
  // Each of the four repairs arises from two orders of the two deletions.
  EnumerationResult result = EnumerateRepairs(w_.db, w_.constraints, gen_);
  for (const RepairInfo& info : result.repairs) {
    EXPECT_EQ(info.num_sequences, 2u) << info.repair.ToString();
  }
  EXPECT_EQ(result.successful_sequences, 8u);
}

TEST_F(PreferenceExampleTest, Example7OperationalAnswers) {
  // Q(x) := ∀y (Pref(x,y) ∨ x = y); OCA = {(a, 0.45)}.
  Result<Query> q =
      ParseQuery(*w_.schema, "Q(x) := forall y (Pref(x,y) | x = y)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  OcaResult oca = ComputeOca(w_.db, w_.constraints, gen_, *q);
  ASSERT_EQ(oca.answers.size(), 1u);
  const auto& [tuple, probability] = *oca.answers.begin();
  EXPECT_EQ(tuple, Tuple{Const("a")});
  EXPECT_EQ(probability, Rational(9, 20));
  EXPECT_DOUBLE_EQ(probability.ToDouble(), 0.45);
}

TEST_F(PreferenceExampleTest, Example7AbcCertainAnswersEmpty) {
  // The paper: "The set of the certain answers to Q under the ABC
  // semantics is empty."
  Result<Query> q =
      ParseQuery(*w_.schema, "Q(x) := forall y (Pref(x,y) | x = y)");
  ASSERT_TRUE(q.ok());
  Result<std::vector<Database>> repairs = AbcRepairs(w_.db, w_.constraints);
  ASSERT_TRUE(repairs.ok()) << repairs.status().ToString();
  EXPECT_EQ(repairs->size(), 4u);
  EXPECT_TRUE(CertainAnswers(*repairs, *q).empty());
}

TEST_F(PreferenceExampleTest, OperationalRepairsCoincideWithAbcRepairsHere) {
  // For this DC-only instance with single-atom deletions the operational
  // repairs are exactly the ABC repairs (with probabilities attached).
  EnumerationResult result = EnumerateRepairs(w_.db, w_.constraints, gen_);
  Result<std::vector<Database>> abc = AbcRepairs(w_.db, w_.constraints);
  ASSERT_TRUE(abc.ok());
  ASSERT_EQ(result.repairs.size(), abc->size());
  for (const RepairInfo& info : result.repairs) {
    EXPECT_TRUE(std::find(abc->begin(), abc->end(), info.repair) !=
                abc->end())
        << info.repair.ToString();
  }
}

TEST_F(PreferenceExampleTest, ChainTreeMatchesFigureStructure) {
  std::string tree = RenderChainTree(w_.db, w_.constraints, gen_);
  // Root has the four single-deletion branches of the figure.
  EXPECT_NE(tree.find("-{Pref(a,b)}  (p=2/9)"), std::string::npos) << tree;
  EXPECT_NE(tree.find("-{Pref(b,a)}  (p=1/3)"), std::string::npos) << tree;
  EXPECT_NE(tree.find("-{Pref(a,c)}  (p=1/9)"), std::string::npos) << tree;
  EXPECT_NE(tree.find("-{Pref(c,a)}  (p=1/3)"), std::string::npos) << tree;
  // Second-level edges 3/4 and 3/5 appear too.
  EXPECT_NE(tree.find("(p=3/4)"), std::string::npos);
  EXPECT_NE(tree.find("(p=3/5)"), std::string::npos);
}

// ---- Proposition 4: ABC ⊆ operational repairs under M^u. ----

class Proposition4Test
    : public ::testing::TestWithParam<gen::Workload (*)()> {};

TEST_P(Proposition4Test, EveryAbcRepairIsAnOperationalRepairUnderUniform) {
  gen::Workload w = GetParam()();
  UniformChainGenerator uniform;
  EnumerationResult operational =
      EnumerateRepairs(w.db, w.constraints, uniform);
  ASSERT_FALSE(operational.truncated);
  Result<std::vector<Database>> abc = AbcRepairs(w.db, w.constraints);
  ASSERT_TRUE(abc.ok()) << abc.status().ToString();
  for (const Database& repair : *abc) {
    EXPECT_GT(operational.ProbabilityOf(repair), Rational(0))
        << "ABC repair unreachable: " << repair.ToString();
  }
}

// Instances where an ABC oracle independent of the chain exists: the
// denial-only ones (conflict hypergraph) and tiny-TGD ones (brute force
// over the base). Example 1/2 are covered by abc_test's via-chain engine
// against hand-computed repair sets.
INSTANTIATE_TEST_SUITE_P(PaperInstances, Proposition4Test,
                         ::testing::Values(&gen::PaperPreferenceExample,
                                           &gen::PaperKeyPairExample,
                                           &gen::PaperFailingExample,
                                           &gen::TinyInclusionExample));

// ---- Proposition 8 on the paper instances with TGDs. ----

class Proposition8Test
    : public ::testing::TestWithParam<gen::Workload (*)()> {};

TEST_P(Proposition8Test, DeletionOnlyChainsHaveNoFailingMass) {
  gen::Workload w = GetParam()();
  DeletionOnlyUniformGenerator gen;
  EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
  ASSERT_FALSE(result.truncated);
  EXPECT_EQ(result.failing_sequences, 0u);
  EXPECT_EQ(result.success_mass, Rational(1));
}

INSTANTIATE_TEST_SUITE_P(PaperInstances, Proposition8Test,
                         ::testing::Values(&gen::PaperPreferenceExample,
                                           &gen::PaperKeyPairExample,
                                           &gen::PaperExample1,
                                           &gen::PaperExample2,
                                           &gen::PaperFailingExample));

}  // namespace
}  // namespace opcqa
