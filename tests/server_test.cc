// Tests for the serving front end (server/ocqa_server.h): byte-identity
// of concurrent multi-tenant serving against serial replay at several
// worker widths, root-level batching counters (N same-root requests →
// one walk), mutation-during-read isolation, deadline truncation under
// both exec modes, per-tenant admission rejection, the cache-pressure
// bypass, the planner fast lane, graceful shutdown (drain + shed with
// Unavailable), per-unit panic isolation, failure-bucket accounting,
// trace format round-trips, and the aggregated Stats() snapshot.
// TSan-gated in CI.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "server/ocqa_server.h"
#include "server/trace.h"

namespace opcqa {
namespace server {
namespace {

Query MustParseQuery(const Schema& schema, const std::string& text) {
  Result<Query> query = ParseQuery(schema, text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return *query;
}

Request ReadRequest(uint64_t id, const std::string& tenant,
                    const gen::Workload& w, const std::string& query_text,
                    const std::string& generator = "uniform-deletions") {
  Request request;
  request.id = id;
  request.tenant = tenant;
  request.kind = RequestKind::kAnswer;
  request.generator = generator;
  request.query = MustParseQuery(*w.schema, query_text);
  request.query_text = query_text;
  return request;
}

/// A generator that stalls every Probabilities() call until Release() —
/// pins the (sole) worker so later submissions demonstrably queue.
class GateGenerator {
 public:
  GateGenerator()
      : released_(promise_.get_future().share()),
        inner_(std::make_shared<UniformChainGenerator>()) {}

  std::shared_ptr<const ChainGenerator> Make() {
    auto released = released_;
    auto inner = inner_;
    return std::make_shared<LambdaChainGenerator>(
        "gate",
        [released, inner](const RepairingState& state,
                          const std::vector<Operation>& extensions) {
          released.wait();
          return inner->Probabilities(state, extensions);
        });
  }

  void Release() { promise_.set_value(); }

 private:
  std::promise<void> promise_;
  std::shared_future<void> released_;
  std::shared_ptr<UniformChainGenerator> inner_;
};

// ---------------------------------------------------------------------
// Byte-identity: batched concurrent serving vs serial replay
// ---------------------------------------------------------------------

TEST(OcqaServerTest, ConcurrentServingMatchesSerialReplayByteForByte) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  TraceSpec spec;
  spec.tenants = 4;
  spec.requests = 48;
  spec.write_fraction = 0.15;
  spec.certain_fraction = 0.2;
  spec.topk_fraction = 0.1;
  spec.seed = 3;
  std::vector<Request> trace = GenerateTrace(w, spec);

  // The two serial baselines agree with each other (caches change speed,
  // never answers)...
  std::string reference = RenderResponses(
      ReplaySerial(w, trace, ReplayMode::kSessionPerTenant));
  EXPECT_EQ(reference, RenderResponses(ReplaySerial(
                           w, trace, ReplayMode::kSessionPerRequest)));
  EXPECT_NE(reference.find("success_mass"), std::string::npos);

  // ...and the batched server reproduces them at every worker width.
  for (size_t workers : {1u, 2u, 8u}) {
    ServerOptions options;
    options.workers = workers;
    OcqaServer server(w.db, w.constraints, options);
    std::vector<Response> responses = server.SubmitAll(trace);
    EXPECT_EQ(reference, RenderResponses(std::move(responses)))
        << "workers=" << workers;

    ServerStats stats = server.Stats();
    EXPECT_EQ(stats.submitted, trace.size());
    EXPECT_EQ(stats.completed, trace.size());
    EXPECT_EQ(stats.rejected_admission, 0u);
    EXPECT_GT(stats.mutations, 0u);
    // One coherent aggregate across every tenant session: the shared
    // cache served replays, and the planner decided for each certain.
    EXPECT_GT(stats.replays, 0u);
    EXPECT_GT(stats.cache.hits, 0u);
    EXPECT_GT(stats.planner.rewrite_plans + stats.planner.walk_plans, 0u);
    EXPECT_GT(stats.tenants, 0u);
  }
}

// ---------------------------------------------------------------------
// Root-level batching
// ---------------------------------------------------------------------

TEST(OcqaServerTest, SameRootRequestsBatchBehindOneWalk) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  ServerOptions options;
  options.workers = 1;  // deterministic unit schedule
  OcqaServer server(w.db, w.constraints, options);
  GateGenerator gate;
  server.RegisterGenerator("gate", gate.Make());

  // The gate request pins the sole worker; everything submitted after it
  // queues. Its tenant differs, so it touches a different chain root.
  Request blocker = ReadRequest(0, "blocker", w, "QB() := exists x R(x,x)",
                                "gate");
  std::vector<std::future<Response>> futures;
  futures.push_back(server.Submit(blocker));

  constexpr size_t kSameRoot = 6;
  for (size_t i = 0; i < kSameRoot; ++i) {
    futures.push_back(
        server.Submit(ReadRequest(1 + i, "t0", w, "Q(x,y) := R(x,y)")));
  }
  gate.Release();
  std::vector<Response> responses;
  for (std::future<Response>& future : futures) {
    responses.push_back(future.get());
  }
  for (const Response& response : responses) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  // All same-root responses are identical bytes.
  for (size_t i = 2; i < responses.size(); ++i) {
    EXPECT_EQ(responses[1].payload, responses[i].payload);
  }

  // t0's first request formed its own unit (the tenant was idle); the
  // remaining kSameRoot-1 queued behind it and formed ONE batch. The
  // first walk admits the whole chain (admission filter off), so every
  // batch member is a pure root-entry replay: 2 walks total (gate root +
  // t0 root), never one per request.
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.walks, 2u);
  EXPECT_EQ(stats.replays, kSameRoot - 1);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, kSameRoot - 1);
}

// ---------------------------------------------------------------------
// Mutation-during-read isolation
// ---------------------------------------------------------------------

TEST(OcqaServerTest, MutationsFenceReadsWithinATenant) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/7);
  const std::string query = "Q(x,y) := R(x,y)";
  Fact extra = Fact::Make(*w.schema, "R", {"k0", "vnew"});

  std::vector<Request> trace;
  for (size_t t = 0; t < 2; ++t) {
    std::string tenant = t == 0 ? "a" : "b";
    uint64_t base = t * 10;
    trace.push_back(ReadRequest(base + 0, tenant, w, query));
    Request insert;
    insert.id = base + 1;
    insert.tenant = tenant;
    insert.kind = RequestKind::kInsert;
    insert.fact = extra;
    insert.fact_text = "R(k0,vnew)";
    trace.push_back(insert);
    trace.push_back(ReadRequest(base + 2, tenant, w, query));
    Request erase = insert;
    erase.id = base + 3;
    erase.kind = RequestKind::kErase;
    trace.push_back(erase);
    trace.push_back(ReadRequest(base + 4, tenant, w, query));
  }

  std::string reference = RenderResponses(
      ReplaySerial(w, trace, ReplayMode::kSessionPerTenant));
  ServerOptions options;
  options.workers = 8;
  OcqaServer server(w.db, w.constraints, options);
  std::vector<Response> responses = server.SubmitAll(trace);
  EXPECT_EQ(reference, RenderResponses(responses));

  // The mutation was visible: the post-insert read differs from the
  // pre-insert read, and the erase restored it.
  EXPECT_NE(responses[0].payload, responses[2].payload);
  EXPECT_EQ(responses[0].payload, responses[4].payload);
  EXPECT_EQ(server.Stats().mutations, 4u);
}

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

TEST(OcqaServerTest, DeadlineTruncationHonorsExecMode) {
  // Small enough to finish under the engine's default budget, big enough
  // that its chain blows through deadline_states = 8.
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  ServerOptions options;
  options.workers = 2;
  OcqaServer server(w.db, w.constraints, options);

  Request exact = ReadRequest(0, "t", w, "Q(x,y) := R(x,y)");
  exact.deadline_states = 8;
  exact.mode = ExecMode::kExact;
  Request anytime = exact;
  anytime.id = 1;
  anytime.mode = ExecMode::kAnytime;

  Response exact_response = server.Submit(exact).get();
  EXPECT_EQ(exact_response.status.code(), StatusCode::kResourceExhausted);

  Response anytime_response = server.Submit(anytime).get();
  EXPECT_TRUE(anytime_response.status.ok());
  EXPECT_TRUE(anytime_response.truncated);

  // Without a deadline the same request completes exactly.
  Request full = ReadRequest(2, "t", w, "Q(x,y) := R(x,y)");
  Response full_response = server.Submit(full).get();
  EXPECT_TRUE(full_response.status.ok());
  EXPECT_FALSE(full_response.truncated);

  EXPECT_GE(server.Stats().deadline_truncations, 2u);
}

// ---------------------------------------------------------------------
// Admission / QoS
// ---------------------------------------------------------------------

TEST(OcqaServerTest, PerTenantAdmissionRejectsOverBudget) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/7);
  ServerOptions options;
  options.workers = 1;
  OcqaServer server(w.db, w.constraints, options);
  GateGenerator gate;
  server.RegisterGenerator("gate", gate.Make());
  TenantOptions qos;
  qos.max_in_flight = 2;
  server.AddTenant("t", qos);

  // Request 1 runs (stalled on the gate), request 2 queues — budget full.
  auto f1 = server.Submit(ReadRequest(0, "t", w, "Q() := exists x R(x,x)",
                                      "gate"));
  auto f2 = server.Submit(ReadRequest(1, "t", w, "Q(x,y) := R(x,y)"));
  auto f3 = server.Submit(ReadRequest(2, "t", w, "Q(x,y) := R(x,y)"));
  Response rejected = f3.get();  // resolves immediately
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);

  // Another tenant is not affected by t's budget.
  auto other = server.Submit(ReadRequest(3, "u", w, "Q(x,y) := R(x,y)"));

  gate.Release();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  EXPECT_TRUE(other.get().status.ok());

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected_admission, 1u);
  // The budget frees as units complete: t can submit again.
  EXPECT_TRUE(
      server.Submit(ReadRequest(4, "t", w, "Q(x,y) := R(x,y)")).get()
          .status.ok());
}

// ---------------------------------------------------------------------
// Cache pressure
// ---------------------------------------------------------------------

TEST(OcqaServerTest, ColdRootsUnderPressureBypassTheSharedCache) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  ServerOptions options;
  options.workers = 1;
  options.cache.max_roots = 1;
  OcqaServer server(w.db, w.constraints, options);

  // Root 1 (uniform-deletions) computes into the shared cache.
  Response hot =
      server.Submit(ReadRequest(0, "t", w, "Q(x,y) := R(x,y)")).get();
  ASSERT_TRUE(hot.status.ok());
  EXPECT_EQ(server.cache().roots(), 1u);

  // Root 2 (uniform) is cold while the cache is at max_roots: it must
  // compute on a unit-private cache instead of evicting the live root.
  Response cold = server
                      .Submit(ReadRequest(1, "t", w, "Q(x,y) := R(x,y)",
                                          "uniform"))
                      .get();
  ASSERT_TRUE(cold.status.ok());
  ServerStats stats = server.Stats();
  EXPECT_GE(stats.pressure_bypasses, 1u);
  EXPECT_EQ(server.cache().roots(), 1u);  // the hot root survived

  // The hot root still replays.
  Response again =
      server.Submit(ReadRequest(2, "t", w, "Q(x,y) := R(x,y)")).get();
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.payload, hot.payload);
  EXPECT_GT(server.Stats().replays, 0u);
}

// ---------------------------------------------------------------------
// Planner fast lane
// ---------------------------------------------------------------------

TEST(OcqaServerTest, RewritableCertainTakesTheFastLane) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  ServerOptions options;
  options.workers = 1;
  OcqaServer server(w.db, w.constraints, options);

  // Quantifier-free over a key-constrained relation: inside the proven
  // fragment, so it plans kRewriting and never walks.
  Request certain = ReadRequest(0, "t", w, "Q(x,y) := R(x,y)");
  certain.kind = RequestKind::kCertain;
  Response response = server.Submit(certain).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.path, Response::Path::kRewriting);
  EXPECT_NE(response.payload.find("plan=rewriting"), std::string::npos);

  ServerStats stats = server.Stats();
  EXPECT_GE(stats.rewriting_fast_path, 1u);
  EXPECT_EQ(stats.walks, 0u);  // no chain walk happened at all

  // Byte-identical to the serial core.
  std::string reference = RenderResponses(
      ReplaySerial(w, {certain}, ReplayMode::kSessionPerRequest));
  EXPECT_EQ(reference, RenderResponses({response}));
}

// ---------------------------------------------------------------------
// Robustness: graceful shutdown, panic isolation, failure accounting
// ---------------------------------------------------------------------

TEST(OcqaServerTest, ShutdownDrainsAndShedsWithUnavailable) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/7);
  ServerOptions options;
  options.workers = 1;
  OcqaServer server(w.db, w.constraints, options);
  GateGenerator gate;
  server.RegisterGenerator("gate", gate.Make());

  // A pins the sole worker; B and C queue behind it.
  auto a = server.Submit(ReadRequest(0, "t", w, "Q() := exists x R(x,x)",
                                     "gate"));
  auto b = server.Submit(ReadRequest(1, "t", w, "Q(x,y) := R(x,y)"));
  auto c = server.Submit(ReadRequest(2, "u", w, "Q(x,y) := R(x,y)"));

  // Shutdown with an immediate deadline: the queued requests are shed
  // with Unavailable, while the in-flight gated unit is still awaited —
  // run it on a side thread so the test can release the gate.
  std::thread shutdown(
      [&server] { server.Shutdown(std::chrono::milliseconds(0)); });
  EXPECT_EQ(b.get().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(c.get().status.code(), StatusCode::kUnavailable);

  gate.Release();
  shutdown.join();
  // The in-flight unit was drained, not abandoned: its answer is intact.
  EXPECT_TRUE(a.get().status.ok());

  // Post-shutdown submissions are refused up front.
  Response late = server.Submit(ReadRequest(3, "t", w, "Q(x,y) := R(x,y)"))
                      .get();
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.shed, 3u);  // B, C at the deadline + the late submit
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.errors, 0u);  // shed requests never executed
}

TEST(OcqaServerTest, PanicInOneUnitIsIsolatedAndCounted) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 3, 2, /*seed=*/7);
  ServerOptions options;
  options.workers = 2;
  OcqaServer server(w.db, w.constraints, options);
  server.RegisterGenerator(
      "boom", std::make_shared<LambdaChainGenerator>(
                  "boom", [](const RepairingState&,
                             const std::vector<Operation>&)
                              -> std::vector<Rational> {
                    throw std::runtime_error("boom");
                  }));

  Response panicked =
      server.Submit(ReadRequest(0, "t", w, "Q(x,y) := R(x,y)", "boom"))
          .get();
  EXPECT_EQ(panicked.status.code(), StatusCode::kInternal);
  EXPECT_NE(panicked.status.message().find("worker panic"),
            std::string::npos);
  EXPECT_NE(panicked.status.message().find("boom"), std::string::npos);

  // The worker survived: the same server keeps answering correctly.
  Response after =
      server.Submit(ReadRequest(1, "t", w, "Q(x,y) := R(x,y)")).get();
  EXPECT_TRUE(after.status.ok());

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.panics, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_EQ(stats.errors, stats.timed_out + stats.failed);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(OcqaServerTest, FailureBucketsSeparateDeadlinesFromHardErrors) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  ServerOptions options;
  options.workers = 1;
  OcqaServer server(w.db, w.constraints, options);

  // An exact request with a tiny state deadline fails ResourceExhausted
  // during execution: that lands in timed_out, not failed.
  Request exact = ReadRequest(0, "t", w, "Q(x,y) := R(x,y)");
  exact.deadline_states = 8;
  exact.mode = ExecMode::kExact;
  EXPECT_EQ(server.Submit(exact).get().status.code(),
            StatusCode::kResourceExhausted);

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

// ---------------------------------------------------------------------
// Trace format
// ---------------------------------------------------------------------

TEST(ServeTraceTest, FormatParseRoundTripsAndReplaysIdentically) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  TraceSpec spec;
  spec.tenants = 3;
  spec.requests = 32;
  spec.write_fraction = 0.1;
  spec.topk_fraction = 0.1;
  spec.seed = 9;
  std::vector<Request> trace = GenerateTrace(w, spec);

  std::string text = FormatTrace(trace);
  Result<std::vector<Request>> parsed = ParseTrace(*w.schema, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), trace.size());
  EXPECT_EQ(FormatTrace(*parsed), text);

  EXPECT_EQ(
      RenderResponses(ReplaySerial(w, trace, ReplayMode::kSessionPerTenant)),
      RenderResponses(
          ReplaySerial(w, *parsed, ReplayMode::kSessionPerTenant)));
}

TEST(ServeTraceTest, ParseRejectsMalformedLines) {
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 2, 2, /*seed=*/1);
  EXPECT_FALSE(ParseTrace(*w.schema, "t0 answer exact\n").ok());
  EXPECT_FALSE(
      ParseTrace(*w.schema, "t0 frobnicate exact uniform 0 Q() := R(x,x)\n")
          .ok());
  EXPECT_FALSE(
      ParseTrace(*w.schema, "t0 topk exact uniform 0 0\n").ok());
  EXPECT_TRUE(ParseTrace(*w.schema, "# only a comment\n\n").ok());
}

}  // namespace
}  // namespace server
}  // namespace opcqa
