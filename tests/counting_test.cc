// Tests for the repair-counting semantics and expected answer counts.

#include <gtest/gtest.h>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/abc.h"
#include "repair/counting.h"
#include "repair/ocqa.h"
#include "repair/preference_generator.h"

namespace opcqa {
namespace {

TEST(CountingTest, UniformOverRepairsNotSequences) {
  // Key pair under the uniform chain: 3 repairs, each counted once, so
  // every surviving value has proportion 1/3 — here it coincides with the
  // hitting distribution, but the semantics differ in general (below).
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator gen;
  EnumerationResult enumeration = EnumerateRepairs(w.db, w.constraints, gen);
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a,y)");
  ASSERT_TRUE(q.ok());
  CountingOcaResult counting = CountingOcaFromEnumeration(enumeration, *q);
  EXPECT_EQ(counting.num_repairs, 3u);
  EXPECT_EQ(counting.Proportion({Const("b")}), Rational(1, 3));
  EXPECT_EQ(counting.Proportion({Const("c")}), Rational(1, 3));
}

TEST(CountingTest, DivergesFromHittingDistributionUnderSkewedChain) {
  // The preference chain weights repairs 9/20, 38/135, 5/36, 7/54 — but
  // the counting semantics sees four equally likely repairs, so the
  // Example 7 answer gets proportion 1/4 instead of probability 9/20.
  gen::Workload w = gen::PaperPreferenceExample();
  PreferenceChainGenerator gen(w.schema->RelationOrDie("Pref"));
  EnumerationResult enumeration = EnumerateRepairs(w.db, w.constraints, gen);
  Result<Query> q =
      ParseQuery(*w.schema, "Q(x) := forall y (Pref(x,y) | x = y)");
  ASSERT_TRUE(q.ok());
  CountingOcaResult counting = CountingOcaFromEnumeration(enumeration, *q);
  EXPECT_EQ(counting.num_repairs, 4u);
  EXPECT_EQ(counting.Proportion({Const("a")}), Rational(1, 4));
  OcaResult hitting = OcaFromEnumeration(enumeration, *q);
  EXPECT_EQ(hitting.Probability({Const("a")}), Rational(9, 20));
  EXPECT_NE(counting.Proportion({Const("a")}),
            hitting.Probability({Const("a")}));
}

TEST(CountingTest, OverExplicitAbcRepairList) {
  gen::Workload w = gen::PaperPreferenceExample();
  Result<std::vector<Database>> abc = AbcRepairs(w.db, w.constraints);
  ASSERT_TRUE(abc.ok());
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := Pref(x,y)");
  ASSERT_TRUE(q.ok());
  CountingOcaResult counting = CountingOcaFromRepairs(*abc, *q);
  EXPECT_EQ(counting.num_repairs, 4u);
  // Uncontested facts in all 4; conflicting atoms in exactly 2 of 4.
  EXPECT_EQ(counting.Proportion({Const("a"), Const("d")}), Rational(1));
  EXPECT_EQ(counting.Proportion({Const("a"), Const("b")}), Rational(1, 2));
  EXPECT_EQ(counting.Proportion({Const("b"), Const("a")}), Rational(1, 2));
}

TEST(CountingTest, EmptyRepairListYieldsNothing) {
  gen::Workload w = gen::PaperKeyPairExample();
  Result<Query> q = ParseQuery(*w.schema, "Q() := true");
  ASSERT_TRUE(q.ok());
  CountingOcaResult counting = CountingOcaFromRepairs({}, *q);
  EXPECT_EQ(counting.num_repairs, 0u);
  EXPECT_TRUE(counting.answers.empty());
  EXPECT_TRUE(counting.Proportion({}).is_zero());
}

TEST(CountingTest, ProportionsLieInUnitInterval) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 3, /*seed=*/60);
  UniformChainGenerator gen;
  EnumerationResult enumeration = EnumerateRepairs(w.db, w.constraints, gen);
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  CountingOcaResult counting = CountingOcaFromEnumeration(enumeration, *q);
  for (const auto& [tuple, p] : counting.answers) {
    EXPECT_GT(p, Rational(0));
    EXPECT_LE(p, Rational(1));
  }
}

TEST(ExpectedAnswerCountTest, EqualsSumOfTupleProbabilities) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/61);
  UniformChainGenerator gen;
  EnumerationResult enumeration = EnumerateRepairs(w.db, w.constraints, gen);
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  Rational expected = ExpectedAnswerCount(enumeration, *q);
  OcaResult oca = OcaFromEnumeration(enumeration, *q);
  Rational sum;
  for (const auto& [tuple, p] : oca.answers) sum += p;
  EXPECT_EQ(expected, sum);
}

TEST(ExpectedAnswerCountTest, PaperKeyPairValue) {
  // Repairs: {R(a,b)}, {R(a,c)}, ∅ — answer counts 1, 1, 0 → E = 2/3.
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator gen;
  EnumerationResult enumeration = EnumerateRepairs(w.db, w.constraints, gen);
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a,y)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ExpectedAnswerCount(enumeration, *q), Rational(2, 3));
}

TEST(ExpectedAnswerCountTest, ZeroWhenNoRepairs) {
  EnumerationResult empty;
  Schema schema;
  schema.AddRelation("R", 1);
  Result<Query> q = ParseQuery(schema, "Q(x) := R(x)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(ExpectedAnswerCount(empty, *q).is_zero());
}

}  // namespace
}  // namespace opcqa
