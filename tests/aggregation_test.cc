// Tests for consistent scalar aggregation over operational repairs
// (Section 6, "More Expressive Languages").

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/aggregation.h"
#include "repair/counting.h"

namespace opcqa {
namespace {

class AggregationTest : public ::testing::Test {
 protected:
  AggregationTest() {
    schema_.AddRelation("R", 2);
    // R(k, v): v is numeric; key on k. Group "a": values 10 / 20 conflict;
    // group "b": value 5 is clean.
    db_ = ParseDatabase(schema_, "R(a,10). R(a,20). R(b,5).").value();
    constraints_ = ParseConstraints(schema_, "R(x,y), R(x,z) -> y = z").value();
    query_ = ParseQuery(schema_, "Q(x,y) := R(x,y)").value();
    enumeration_ = EnumerateRepairs(db_, constraints_, generator_);
  }

  Schema schema_;
  Database db_;
  ConstraintSet constraints_;
  Query query_;
  UniformChainGenerator generator_;
  EnumerationResult enumeration_;
};

TEST(NumericValueOfTest, ParsesIntegers) {
  EXPECT_EQ(NumericValueOf(Const("42")).value(), Rational(42));
  EXPECT_EQ(NumericValueOf(Const("-7")).value(), Rational(-7));
  EXPECT_EQ(NumericValueOf(Const("0")).value(), Rational(0));
  // Arbitrarily large values round-trip exactly.
  EXPECT_EQ(NumericValueOf(Const("123456789012345678901234567890")).value()
                .ToString(),
            "123456789012345678901234567890");
  EXPECT_FALSE(NumericValueOf(Const("abc")).ok());
  EXPECT_FALSE(NumericValueOf(Const("1.5")).ok());
  EXPECT_FALSE(NumericValueOf(Const("-")).ok());
}

TEST(AggregateOfAnswersTest, EmptySetSemantics) {
  std::set<Tuple> empty;
  EXPECT_EQ(*AggregateOfAnswers(empty, AggregateKind::kCount, 0).value(),
            Rational(0));
  EXPECT_EQ(*AggregateOfAnswers(empty, AggregateKind::kSum, 0).value(),
            Rational(0));
  EXPECT_FALSE(
      AggregateOfAnswers(empty, AggregateKind::kMin, 0).value().has_value());
  EXPECT_FALSE(
      AggregateOfAnswers(empty, AggregateKind::kMax, 0).value().has_value());
  EXPECT_FALSE(
      AggregateOfAnswers(empty, AggregateKind::kAvg, 0).value().has_value());
}

TEST(AggregateOfAnswersTest, ComputesAllKinds) {
  std::set<Tuple> answers = {{Const("a"), Const("10")},
                             {Const("b"), Const("4")}};
  EXPECT_EQ(*AggregateOfAnswers(answers, AggregateKind::kCount, 1).value(),
            Rational(2));
  EXPECT_EQ(*AggregateOfAnswers(answers, AggregateKind::kSum, 1).value(),
            Rational(14));
  EXPECT_EQ(*AggregateOfAnswers(answers, AggregateKind::kMin, 1).value(),
            Rational(4));
  EXPECT_EQ(*AggregateOfAnswers(answers, AggregateKind::kMax, 1).value(),
            Rational(10));
  EXPECT_EQ(*AggregateOfAnswers(answers, AggregateKind::kAvg, 1).value(),
            Rational(7));
}

TEST(AggregateOfAnswersTest, ColumnOutOfRangeIsAnError) {
  std::set<Tuple> answers = {{Const("1")}};
  EXPECT_FALSE(AggregateOfAnswers(answers, AggregateKind::kSum, 3).ok());
}

TEST_F(AggregationTest, SumDistributionOverKeyRepairs) {
  // The uniform chain over {R(a,10), R(a,20)} reaches three repairs:
  // keep 10, keep 20, keep neither — each contributing R(b,5)'s 5.
  auto result = ComputeAggregateDistribution(enumeration_, query_,
                                             AggregateKind::kSum, 1);
  ASSERT_TRUE(result.ok());
  const AggregateDistribution& dist = result.value();
  EXPECT_EQ(dist.num_repairs, 3u);
  EXPECT_TRUE(dist.undefined_mass.is_zero());
  ASSERT_EQ(dist.distribution.size(), 3u);
  EXPECT_EQ(*dist.glb, Rational(5));    // both conflicting facts deleted
  EXPECT_EQ(*dist.lub, Rational(25));   // 20 + 5
  // Probabilities: each single deletion 1/3, pair deletion 1/3.
  EXPECT_EQ(dist.distribution.at(Rational(5)), Rational(1, 3));
  EXPECT_EQ(dist.distribution.at(Rational(15)), Rational(1, 3));
  EXPECT_EQ(dist.distribution.at(Rational(25)), Rational(1, 3));
  // E[SUM] = (5 + 15 + 25)/3 = 15, exactly.
  EXPECT_EQ(dist.expectation, Rational(15));
  // Var = E[X²] − E[X]² = (25 + 225 + 625)/3 − 225 = 200/3.
  EXPECT_EQ(dist.variance, Rational(200, 3));
}

TEST_F(AggregationTest, CountDistributionAndCertainty) {
  auto result = ComputeAggregateDistribution(enumeration_, query_,
                                             AggregateKind::kCount, 1);
  ASSERT_TRUE(result.ok());
  const AggregateDistribution& dist = result.value();
  // COUNT is 2 (one survivor) with prob 2/3, 1 (none) with prob 1/3.
  EXPECT_EQ(dist.distribution.at(Rational(2)), Rational(2, 3));
  EXPECT_EQ(dist.distribution.at(Rational(1)), Rational(1, 3));
  EXPECT_FALSE(dist.IsCertain());
  EXPECT_EQ(dist.expectation, Rational(5, 3));
}

TEST_F(AggregationTest, MinMaxRangeSemantics) {
  auto min_dist = ComputeAggregateDistribution(enumeration_, query_,
                                               AggregateKind::kMin, 1);
  auto max_dist = ComputeAggregateDistribution(enumeration_, query_,
                                               AggregateKind::kMax, 1);
  ASSERT_TRUE(min_dist.ok());
  ASSERT_TRUE(max_dist.ok());
  // MIN is always 5; the classical range semantics would report [5,5]:
  // the aggregate is *certain* despite the inconsistency — the key insight
  // of the scalar-aggregation paper.
  EXPECT_TRUE(min_dist.value().IsCertain());
  EXPECT_EQ(*min_dist.value().glb, Rational(5));
  EXPECT_EQ(*min_dist.value().lub, Rational(5));
  // MAX ranges over {5, 10, 20}.
  EXPECT_EQ(*max_dist.value().glb, Rational(5));
  EXPECT_EQ(*max_dist.value().lub, Rational(20));
  EXPECT_FALSE(max_dist.value().IsCertain());
}

TEST_F(AggregationTest, AvgIsExactRational) {
  auto result = ComputeAggregateDistribution(enumeration_, query_,
                                             AggregateKind::kAvg, 1);
  ASSERT_TRUE(result.ok());
  // AVG values: (10+5)/2, (20+5)/2, 5 → 15/2, 25/2, 5.
  EXPECT_EQ(result.value().distribution.at(Rational(15, 2)), Rational(1, 3));
  EXPECT_EQ(result.value().distribution.at(Rational(25, 2)), Rational(1, 3));
  EXPECT_EQ(result.value().distribution.at(Rational(5)), Rational(1, 3));
}

TEST_F(AggregationTest, UndefinedMassForMinOverEmptyableAnswers) {
  // Query only over group "a": the both-deleted repair has no answers.
  Query q = ParseQuery(schema_, "Q(y) := R(a,y)").value();
  auto result = ComputeAggregateDistribution(enumeration_, q,
                                             AggregateKind::kMin, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().undefined_mass, Rational(1, 3));
  // Conditioned on defined: MIN is 10 or 20, each 1/2.
  EXPECT_EQ(result.value().distribution.at(Rational(10)), Rational(1, 2));
  EXPECT_EQ(result.value().distribution.at(Rational(20)), Rational(1, 2));
}

TEST_F(AggregationTest, NonNumericColumnIsAnError) {
  // Column 0 holds the keys "a"/"b" — not numeric.
  auto result = ComputeAggregateDistribution(enumeration_, query_,
                                             AggregateKind::kSum, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AggregationTest, ExpectedCountMatchesSumOfTupleProbabilities) {
  // Linearity bridge: E[COUNT] = Σ_t CP(t) (see counting.h).
  auto dist = ComputeAggregateDistribution(enumeration_, query_,
                                           AggregateKind::kCount, 1);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist.value().expectation,
            ExpectedAnswerCount(enumeration_, query_));
}

TEST_F(AggregationTest, SampledExpectationConvergesToExact) {
  auto exact = ComputeAggregateDistribution(enumeration_, query_,
                                            AggregateKind::kSum, 1);
  ASSERT_TRUE(exact.ok());
  Sampler sampler(db_, constraints_, &generator_, /*seed=*/99);
  auto estimate = EstimateExpectedAggregate(sampler, query_,
                                            AggregateKind::kSum, 1,
                                            /*walks=*/4000);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate.value().undefined_walks, 0u);
  EXPECT_NEAR(estimate.value().expectation,
              exact.value().expectation.ToDouble(), 0.5);
}

}  // namespace
}  // namespace opcqa
