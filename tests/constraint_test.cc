// Tests for constraint classes, the constraint parser, and satisfaction.

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "constraints/satisfaction.h"
#include "relational/fact_parser.h"

namespace opcqa {
namespace {

class ConstraintTest : public ::testing::Test {
 protected:
  ConstraintTest() {
    schema_.AddRelation("R", 2);
    schema_.AddRelation("S", 3);
    schema_.AddRelation("T", 2);
    schema_.AddRelation("Pref", 2);
  }
  Schema schema_;
};

TEST_F(ConstraintTest, ParsesTgdWithExistential) {
  Result<Constraint> c =
      ParseConstraint(schema_, "R(x,y) -> exists z: S(x,y,z)");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->is_tgd());
  EXPECT_EQ(c->body().size(), 1u);
  EXPECT_EQ(c->head().size(), 1u);
  EXPECT_EQ(c->existential(), std::vector<VarId>{Var("z")});
}

TEST_F(ConstraintTest, ParsesTgdWithoutExistential) {
  Result<Constraint> c = ParseConstraint(schema_, "T(x,y) -> R(x,y)");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->is_tgd());
  EXPECT_TRUE(c->existential().empty());
}

TEST_F(ConstraintTest, ParsesEgdKey) {
  Result<Constraint> c = ParseConstraint(schema_, "R(x,y), R(x,z) -> y = z");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c->is_egd());
  EXPECT_EQ(c->eq_lhs(), Var("y"));
  EXPECT_EQ(c->eq_rhs(), Var("z"));
  EXPECT_EQ(c->body().size(), 2u);
}

TEST_F(ConstraintTest, ParsesDenialConstraintBothForms) {
  Result<Constraint> c1 =
      ParseConstraint(schema_, "Pref(x,y), Pref(y,x) -> false");
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  EXPECT_TRUE(c1->is_dc());
  Result<Constraint> c2 = ParseConstraint(schema_, "!(Pref(x,y), Pref(y,x))");
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  EXPECT_TRUE(c2->is_dc());
  EXPECT_EQ(c1->body().size(), c2->body().size());
}

TEST_F(ConstraintTest, ParsesLabels) {
  Result<Constraint> c =
      ParseConstraint(schema_, "mykey: R(x,y), R(x,z) -> y = z");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->label(), "mykey");
}

TEST_F(ConstraintTest, VariableNamingConvention) {
  EXPECT_TRUE(LooksLikeVariable("x"));
  EXPECT_TRUE(LooksLikeVariable("y2"));
  EXPECT_TRUE(LooksLikeVariable("z_1"));
  EXPECT_TRUE(LooksLikeVariable("w"));
  EXPECT_FALSE(LooksLikeVariable("a"));
  EXPECT_FALSE(LooksLikeVariable("admin"));
  EXPECT_FALSE(LooksLikeVariable("source1"));
  EXPECT_FALSE(LooksLikeVariable("42"));
  EXPECT_FALSE(LooksLikeVariable(""));
}

TEST_F(ConstraintTest, ConstantsInConstraints) {
  Result<Constraint> c = ParseConstraint(schema_, "R(x, admin) -> false");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->Constants(), std::vector<ConstId>{Const("admin")});
}

TEST_F(ConstraintTest, ParsesMultiAtomTgdHead) {
  Result<Constraint> c = ParseConstraint(
      schema_, "R(x,y) -> exists z,w: S(x,y,z), S(x,y,w)");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->head().size(), 2u);
  EXPECT_EQ(c->existential().size(), 2u);
}

TEST_F(ConstraintTest, ParsesConstraintSetWithCommentsAndLabels) {
  Result<ConstraintSet> set = ParseConstraints(schema_,
                                               "# two constraints\n"
                                               "sigma: R(x,y) -> exists z: "
                                               "S(x,y,z)\n"
                                               "eta: R(x,y), R(x,z) -> y = z");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->size(), 2u);
  EXPECT_TRUE((*set)[0].is_tgd());
  EXPECT_TRUE((*set)[1].is_egd());
  EXPECT_FALSE(IsDenialOnly(*set));
}

TEST_F(ConstraintTest, IsDenialOnlyDetection) {
  Result<ConstraintSet> set = ParseConstraints(
      schema_, "R(x,y), R(x,z) -> y = z ; Pref(x,y), Pref(y,x) -> false");
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(IsDenialOnly(*set));
}

TEST_F(ConstraintTest, RejectsMalformedConstraints) {
  EXPECT_FALSE(ParseConstraint(schema_, "R(x,y)").ok());           // no arrow
  EXPECT_FALSE(ParseConstraint(schema_, "-> R(x,y)").ok());        // no body
  EXPECT_FALSE(ParseConstraint(schema_, "R(x,y) -> a = b").ok());  // consts
  EXPECT_FALSE(ParseConstraint(schema_, "R(x,y) -> y = w").ok());  // w ∉ body
  EXPECT_FALSE(
      ParseConstraint(schema_, "R(x,y) -> exists y: S(x,y,y)").ok());
  EXPECT_FALSE(ParseConstraint(schema_, "Bad(x) -> false").ok());
  EXPECT_FALSE(ParseConstraint(schema_, "R(x,y) -> S(x,y,w)").ok());
}

TEST_F(ConstraintTest, ToStringIsReadable) {
  Result<Constraint> c =
      ParseConstraint(schema_, "k: R(x,y), R(x,z) -> y = z");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->ToString(schema_), "[k] R(x,y), R(x,z) -> y = z");
}

// ---- Satisfaction semantics ----

TEST_F(ConstraintTest, DcSatisfaction) {
  Constraint dc = *ParseConstraint(schema_, "Pref(x,y), Pref(y,x) -> false");
  Database ok = *ParseDatabase(schema_, "Pref(a,b). Pref(b,c).");
  Database bad = *ParseDatabase(schema_, "Pref(a,b). Pref(b,a).");
  EXPECT_TRUE(Satisfies(ok, dc));
  EXPECT_FALSE(Satisfies(bad, dc));
}

TEST_F(ConstraintTest, DcSelfLoopViolation) {
  // Pref(a,a) matches both atoms with x=y=a.
  Constraint dc = *ParseConstraint(schema_, "Pref(x,y), Pref(y,x) -> false");
  Database loop = *ParseDatabase(schema_, "Pref(a,a).");
  EXPECT_FALSE(Satisfies(loop, dc));
}

TEST_F(ConstraintTest, EgdSatisfaction) {
  Constraint key = *ParseConstraint(schema_, "R(x,y), R(x,z) -> y = z");
  Database ok = *ParseDatabase(schema_, "R(a,b). R(c,b).");
  Database bad = *ParseDatabase(schema_, "R(a,b). R(a,c).");
  EXPECT_TRUE(Satisfies(ok, key));
  EXPECT_FALSE(Satisfies(bad, key));
}

TEST_F(ConstraintTest, TgdSatisfaction) {
  Constraint tgd = *ParseConstraint(schema_, "R(x,y) -> exists z: S(x,y,z)");
  Database ok = *ParseDatabase(schema_, "R(a,b). S(a,b,c).");
  Database bad = *ParseDatabase(schema_, "R(a,b). S(a,a,a).");
  EXPECT_TRUE(Satisfies(ok, tgd));
  EXPECT_FALSE(Satisfies(bad, tgd));
}

TEST_F(ConstraintTest, TgdFullWitnessRequired) {
  // Multi-atom head: both head atoms must be present with the same witness.
  Constraint tgd = *ParseConstraint(
      schema_, "R(x,y) -> exists z: S(x,y,z), T(x,z)");
  Database partial = *ParseDatabase(schema_, "R(a,b). S(a,b,c). T(a,d).");
  EXPECT_FALSE(Satisfies(partial, tgd));
  Database full = *ParseDatabase(schema_, "R(a,b). S(a,b,c). T(a,c).");
  EXPECT_TRUE(Satisfies(full, tgd));
}

TEST_F(ConstraintTest, SetSatisfaction) {
  Result<ConstraintSet> set = ParseConstraints(
      schema_, "R(x,y), R(x,z) -> y = z\nPref(x,y), Pref(y,x) -> false");
  ASSERT_TRUE(set.ok());
  Database ok = *ParseDatabase(schema_, "R(a,b). Pref(a,b).");
  EXPECT_TRUE(Satisfies(ok, *set));
  Database bad = *ParseDatabase(schema_, "R(a,b). R(a,c). Pref(a,b).");
  EXPECT_FALSE(Satisfies(bad, *set));
}

TEST_F(ConstraintTest, EmptyDatabaseSatisfiesEverything) {
  Result<ConstraintSet> set = ParseConstraints(
      schema_,
      "R(x,y) -> exists z: S(x,y,z)\nR(x,y), R(x,z) -> y = z\n"
      "Pref(x,y), Pref(y,x) -> false");
  ASSERT_TRUE(set.ok());
  Database empty(&schema_);
  EXPECT_TRUE(Satisfies(empty, *set));
}

}  // namespace
}  // namespace opcqa
