// PR 8 capstone: deterministic chaos sweeps over the serving stack.
//
// Replays the PR 7 mixed mutating trace on a disk-tier-backed OcqaServer
// while failpoints (util/failpoint.h) inject errors, corruption, delays
// and worker crashes — every registered site one at a time, and 50
// seeded randomized combinations. The invariant for every run:
//
//   * every OK response is byte-identical to the clean serial replay's
//     response for the same request id (faults change speed or
//     availability, never answers), and
//   * every non-OK response carries a correctly-coded, counted
//     degradation — Internal (injected error / isolated panic),
//     ResourceExhausted (deadline/admission) or Unavailable (shutdown) —
//     reconciled against ServerStats' shed/timed_out/failed buckets,
//
// and never a crash, hang (ctest timeout) or TSan report. The registry
// itself (spec grammar, seeded per-site streams, trigger modes) is unit-
// tested here too, since this is the only failpoint-build test binary.
//
// Without OPCQA_FAILPOINTS the sweep is vacuously green: the sites
// compile to nothing, so the binary reduces to one skipped test (the
// tier-1 suite stays failpoint-free; CI's `failpoints` job builds with
// -DOPCQA_FAILPOINTS=ON and runs the real thing).

#include <gtest/gtest.h>

#ifndef OPCQA_FAILPOINTS

TEST(ChaosTest, RequiresFailpointBuild) {
  GTEST_SKIP() << "built without OPCQA_FAILPOINTS; the chaos sweep runs in "
                  "the dedicated CI job (-DOPCQA_FAILPOINTS=ON)";
}

#else  // OPCQA_FAILPOINTS

#include <unistd.h>

#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gen/workloads.h"
#include "server/ocqa_server.h"
#include "server/trace.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace opcqa {
namespace {

using server::GenerateTrace;
using server::OcqaServer;
using server::RenderResponses;
using server::ReplayMode;
using server::ReplaySerial;
using server::Request;
using server::Response;
using server::ServerOptions;
using server::ServerStats;
using server::TraceSpec;

class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/opcqa_chaos_XXXXXX";
    char* dir = ::mkdtemp(templ);
    EXPECT_NE(dir, nullptr);
    path_ = dir != nullptr ? dir : "/tmp/opcqa_chaos_fallback";
  }
  ~TempDir() {
    std::string command = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(command.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------
// Registry unit tests
// ---------------------------------------------------------------------

Status GuardedOperation() {
  OPCQA_FAILPOINT("chaos_test.guarded");
  return Status::Ok();
}

TEST(FailpointRegistryTest, MacroReturnsInjectedErrorOnlyWhileArmed) {
  EXPECT_TRUE(GuardedOperation().ok());
  {
    FailpointScope fp("chaos_test.guarded", FailpointSpec{});
    Status status = GuardedOperation();
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("chaos_test.guarded"),
              std::string::npos);
  }
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_FALSE(FailpointRegistry::Global().Armed());
}

TEST(FailpointRegistryTest, NthAndCountTriggers) {
  FailpointSpec spec;
  spec.nth = 3;
  {
    FailpointScope fp("chaos_test.guarded", spec);
    EXPECT_TRUE(GuardedOperation().ok());
    EXPECT_TRUE(GuardedOperation().ok());
    EXPECT_FALSE(GuardedOperation().ok());  // the 3rd hit
    EXPECT_TRUE(GuardedOperation().ok());
    FailpointStats stats =
        FailpointRegistry::Global().StatsFor("chaos_test.guarded");
    EXPECT_EQ(stats.hits, 4u);
    EXPECT_EQ(stats.fires, 1u);
  }
  FailpointSpec counted;
  counted.max_fires = 2;
  {
    FailpointScope fp("chaos_test.guarded", counted);
    EXPECT_FALSE(GuardedOperation().ok());
    EXPECT_FALSE(GuardedOperation().ok());
    EXPECT_TRUE(GuardedOperation().ok());  // disarmed after 2 fires
  }
}

TEST(FailpointRegistryTest, ProbabilityStreamIsSeedDeterministic) {
  FailpointSpec spec;
  spec.probability = 0.5;
  auto pattern = [&]() {
    std::vector<bool> fires;
    FailpointRegistry::Global().SetSeed(1234);
    for (int i = 0; i < 64; ++i) fires.push_back(!GuardedOperation().ok());
    return fires;
  };
  FailpointScope fp("chaos_test.guarded", spec);
  std::vector<bool> first = pattern();
  std::vector<bool> second = pattern();
  EXPECT_EQ(first, second);
  size_t fired = 0;
  for (bool fire : first) fired += fire ? 1 : 0;
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, first.size());
  FailpointRegistry::Global().SetSeed(99);
  std::vector<bool> reseeded;
  for (int i = 0; i < 64; ++i) reseeded.push_back(!GuardedOperation().ok());
  EXPECT_NE(first, reseeded);  // 2^-64 flake odds, effectively impossible
}

TEST(FailpointRegistryTest, SpecGrammarParsesAndRejects) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  EXPECT_TRUE(registry
                  .EnableFromSpec("chaos_test.guarded=error,p=0.25,count=7;"
                                  "chaos_test.other=crash,nth=3")
                  .ok());
  EXPECT_TRUE(registry.Armed());
  registry.DisableAll();
  EXPECT_FALSE(registry.Armed());

  EXPECT_FALSE(registry.EnableFromSpec("no-equals-sign").ok());
  EXPECT_FALSE(registry.EnableFromSpec("site=explode").ok());
  EXPECT_FALSE(registry.EnableFromSpec("site=error,p=1.5").ok());
  EXPECT_FALSE(registry.EnableFromSpec("site=error,nth=0").ok());
  EXPECT_FALSE(registry.EnableFromSpec("site=error,bogus=1").ok());
  registry.DisableAll();
}

TEST(FailpointRegistryTest, CrashActionThrowsFailpointPanic) {
  FailpointSpec spec;
  spec.action = FailpointAction::kCrash;
  FailpointScope fp("chaos_test.guarded", spec);
  EXPECT_THROW(GuardedOperation(), FailpointPanic);
}

// ---------------------------------------------------------------------
// The chaos sweep
// ---------------------------------------------------------------------

struct ChaosRun {
  std::vector<Response> responses;
  ServerStats stats;
};

/// The PR 7 mixed mutating trace (tests/server_test.cc and
/// bench_e18_serving.cc shape): 4 tenants, reads + mutations, certain
/// and top-k members, root skew.
std::vector<Request> MixedTrace(const gen::Workload& w) {
  TraceSpec spec;
  spec.tenants = 4;
  spec.requests = 48;
  spec.write_fraction = 0.15;
  spec.certain_fraction = 0.2;
  spec.topk_fraction = 0.1;
  spec.seed = 3;
  return GenerateTrace(w, spec);
}

ChaosRun RunServed(const gen::Workload& w, const std::vector<Request>& trace,
                   const std::string& snapshot_dir) {
  ServerOptions options;
  options.workers = 4;
  options.cache.snapshot_dir = snapshot_dir;
  // Small root budget: tenant mutations fork fresh roots, so the LRU
  // keeps spilling and re-restoring — the storage and repair_cache
  // sites see real traffic inside a single run.
  options.cache.max_roots = 3;
  // Aggressive compaction threshold: re-restored roots that dirty again
  // flip between delta appends and log compactions within one run, so
  // the storage.snapshot_store.append and repair_cache.compact sites
  // see real traffic (not just the base-spill path).
  options.cache.log_compaction_ratio = 0.05;
  // Short cooldown so a tripped breaker also exercises half-open
  // recovery within the run instead of staying memory-only to the end.
  options.cache.breaker_cooldown_ms = 20;
  OcqaServer server(w.db, w.constraints, options);
  ChaosRun run;
  run.responses = server.SubmitAll(trace);
  run.stats = server.Stats();
  return run;
}

/// The chaos invariant (see file comment).
void AssertDegradedCleanly(const std::vector<Response>& clean,
                           const ChaosRun& run, const std::string& label) {
  std::map<uint64_t, const Response*> clean_by_id;
  for (const Response& response : clean) {
    ASSERT_TRUE(response.status.ok())
        << "clean reference must be fault-free: "
        << response.status.ToString();
    clean_by_id[response.id] = &response;
  }
  ASSERT_EQ(run.responses.size(), clean.size()) << label;
  uint64_t observed_failures = 0;
  for (const Response& response : run.responses) {
    auto it = clean_by_id.find(response.id);
    ASSERT_NE(it, clean_by_id.end()) << label << " id=" << response.id;
    if (response.status.ok()) {
      EXPECT_EQ(response.payload, it->second->payload)
          << label << " id=" << response.id
          << ": an injected fault changed an answer";
      EXPECT_EQ(response.truncated, it->second->truncated)
          << label << " id=" << response.id;
    } else {
      ++observed_failures;
      StatusCode code = response.status.code();
      EXPECT_TRUE(code == StatusCode::kInternal ||
                  code == StatusCode::kResourceExhausted ||
                  code == StatusCode::kUnavailable)
          << label << " id=" << response.id
          << " degraded with the wrong code: "
          << response.status.ToString();
    }
  }
  // Counted degradation: nothing was rejected at admission in these
  // sweeps, so every failure is an executed-and-failed response and the
  // stats buckets must reconcile exactly.
  EXPECT_EQ(run.stats.rejected_admission, 0u) << label;
  EXPECT_EQ(run.stats.shed, 0u) << label;
  EXPECT_EQ(run.stats.completed, run.responses.size()) << label;
  EXPECT_EQ(run.stats.errors, observed_failures) << label;
  EXPECT_EQ(run.stats.timed_out + run.stats.failed, run.stats.errors)
      << label;
}

/// A spec that makes sense for `site` (error for Status sites, corrupt
/// for the buffer site, crash for the worker-path sites).
FailpointSpec DriveFor(std::string_view site) {
  FailpointSpec spec;
  if (site == "storage.snapshot_store.corrupt") {
    spec.action = FailpointAction::kCorrupt;
    spec.probability = 1.0;  // every disk read comes back flipped
  } else if (site == "server.unit" || site == "engine.session.enumerate") {
    spec.action = FailpointAction::kCrash;
    spec.probability = 0.15;
  } else {
    spec.action = FailpointAction::kError;
    spec.probability = 0.5;
  }
  return spec;
}

TEST(ChaosTest, EveryRegisteredSiteOneAtATime) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  std::vector<Request> trace = MixedTrace(w);
  std::vector<Response> clean =
      ReplaySerial(w, trace, ReplayMode::kSessionPerTenant);

  uint64_t site_index = 0;
  for (const char* site : kFailpointSites) {
    SCOPED_TRACE(site);
    TempDir dir;
    FailpointScope fp(site, DriveFor(site));
    FailpointRegistry::Global().SetSeed(0xC0FFEE ^ site_index++);
    // Two runs against one snapshot directory: the first spills, the
    // second probes a populated disk tier, so read/corrupt/restore
    // sites fire on warm-start traffic too.
    AssertDegradedCleanly(clean, RunServed(w, trace, dir.path()),
                          std::string(site) + " cold");
    AssertDegradedCleanly(clean, RunServed(w, trace, dir.path()),
                          std::string(site) + " warm");
  }
}

TEST(ChaosTest, RandomizedSiteCombinations) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  std::vector<Request> trace = MixedTrace(w);
  std::vector<Response> clean =
      ReplaySerial(w, trace, ReplayMode::kSessionPerTenant);

  constexpr size_t kSites = sizeof(kFailpointSites) / sizeof(*kFailpointSites);
  constexpr int kIterations = 50;
  TempDir dir;  // shared across iterations: stale snapshots are legal
  Rng rng(0xC4A05);
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    FailpointRegistry& registry = FailpointRegistry::Global();
    size_t enabled = 1 + rng.UniformInt(4);  // 1..4 sites at once
    for (size_t pick = 0; pick < enabled; ++pick) {
      std::string_view site = kFailpointSites[rng.UniformInt(kSites)];
      FailpointSpec spec = DriveFor(site);
      if (rng.Bernoulli(0.25)) {
        // A quarter of the drives become pure latency instead: delays
        // must never change an answer or produce an error.
        spec.action = FailpointAction::kDelay;
        spec.delay_ms = 1;
        spec.probability = 0.3;
      } else if (spec.action == FailpointAction::kError) {
        spec.probability = 0.05 + 0.55 * rng.UniformDouble();
        if (rng.Bernoulli(0.3)) spec.max_fires = 1;  // transient blip
      }
      registry.Enable(std::string(site), spec);
    }
    registry.SetSeed(static_cast<uint64_t>(iteration) * 7919 + 17);
    ChaosRun run = RunServed(w, trace, dir.path());
    registry.DisableAll();
    AssertDegradedCleanly(clean, run, "combination");
  }
}

TEST(ChaosTest, ShutdownUnderInjectedFaultsShedsCleanly) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 4, 2, /*seed=*/11);
  std::vector<Request> trace = MixedTrace(w);
  std::vector<Response> clean =
      ReplaySerial(w, trace, ReplayMode::kSessionPerTenant);
  std::map<uint64_t, const Response*> clean_by_id;
  for (const Response& response : clean) clean_by_id[response.id] = &response;

  TempDir dir;
  FailpointSpec crash = DriveFor("server.unit");
  FailpointScope fp("server.unit", crash);
  FailpointRegistry::Global().SetSeed(404);

  ServerOptions options;
  options.workers = 2;
  options.cache.snapshot_dir = dir.path();
  OcqaServer server(w.db, w.constraints, options);
  std::vector<std::future<Response>> futures;
  futures.reserve(trace.size());
  for (const Request& request : trace) {
    Request copy = request;
    futures.push_back(server.Submit(std::move(copy)));
  }
  // Zero-deadline shutdown races the workers: whatever was queued but
  // unstarted is shed with Unavailable, everything else completes.
  server.Shutdown(std::chrono::milliseconds(0));
  Request late;
  late.id = trace.size() + 1;
  late.tenant = "late";
  late.kind = server::RequestKind::kAnswer;
  late.generator = "uniform-deletions";
  EXPECT_EQ(server.Submit(std::move(late)).get().status.code(),
            StatusCode::kUnavailable);

  uint64_t shed = 0;
  for (std::future<Response>& future : futures) {
    Response response = future.get();  // nothing hangs, nothing is dropped
    if (response.status.ok()) {
      auto it = clean_by_id.find(response.id);
      ASSERT_NE(it, clean_by_id.end());
      EXPECT_EQ(response.payload, it->second->payload)
          << "id=" << response.id;
    } else if (response.status.code() == StatusCode::kUnavailable) {
      ++shed;
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kInternal)
          << response.status.ToString();
    }
  }
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.shed, shed + 1);  // + the post-shutdown submission
}

}  // namespace
}  // namespace opcqa

#endif  // OPCQA_FAILPOINTS
