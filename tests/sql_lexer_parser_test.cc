// Tests for the SQL lexer and parser.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace opcqa {
namespace sql {
namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

TEST(SqlLexer, TokenizesSelectStatement) {
  auto tokens = Lex("SELECT a.x FROM r AS a WHERE a.y = 'v1'");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& token : tokens.value()) kinds.push_back(token.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kSelect, TokenKind::kIdentifier, TokenKind::kDot,
      TokenKind::kIdentifier, TokenKind::kFrom, TokenKind::kIdentifier,
      TokenKind::kAs, TokenKind::kIdentifier, TokenKind::kWhere,
      TokenKind::kIdentifier, TokenKind::kDot, TokenKind::kIdentifier,
      TokenKind::kEq, TokenKind::kString, TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(SqlLexer, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("select Select SELECT sElEcT");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i + 1 < tokens.value().size(); ++i) {
    EXPECT_EQ(tokens.value()[i].kind, TokenKind::kSelect);
  }
}

TEST(SqlLexer, IdentifiersPreserveCase) {
  auto tokens = Lex("MyTable");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens.value()[0].text, "MyTable");
}

TEST(SqlLexer, StringEscapes) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens.value()[0].text, "it's");
}

TEST(SqlLexer, UnterminatedStringIsAnError) {
  auto tokens = Lex("SELECT 'oops");
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
}

TEST(SqlLexer, ComparisonOperators) {
  auto tokens = Lex("= <> != < <= > >=");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& token : tokens.value()) kinds.push_back(token.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kEq, TokenKind::kNeq, TokenKind::kNeq, TokenKind::kLt,
      TokenKind::kLe, TokenKind::kGt, TokenKind::kGe, TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(SqlLexer, LineCommentsAreSkipped) {
  auto tokens = Lex("SELECT -- the select list\n x FROM r");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value().size(), 5u);  // SELECT x FROM r <end>
}

TEST(SqlLexer, TracksLineAndColumn) {
  auto tokens = Lex("SELECT\n  x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[1].line, 2u);
  EXPECT_EQ(tokens.value()[1].column, 3u);
}

TEST(SqlLexer, StrayCharacterIsAnError) {
  auto tokens = Lex("SELECT #");
  ASSERT_FALSE(tokens.ok());
}

TEST(SqlLexer, NumbersAreSingleTokens) {
  auto tokens = Lex("123 45");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens.value()[0].text, "123");
  EXPECT_EQ(tokens.value()[1].text, "45");
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

TEST(SqlParser, SimpleSelect) {
  auto stmt = Parse("SELECT x, y FROM r");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt.value()->kind, Statement::Kind::kSelect);
  const SelectCore& core = stmt.value()->select;
  EXPECT_FALSE(core.select_star);
  ASSERT_EQ(core.items.size(), 2u);
  EXPECT_EQ(core.items[0].operand.column, "x");
  EXPECT_EQ(core.items[1].operand.column, "y");
  ASSERT_EQ(core.from.size(), 1u);
  EXPECT_EQ(core.from[0].table, "r");
  EXPECT_EQ(core.from[0].alias, "r");
  EXPECT_EQ(core.where, nullptr);
}

TEST(SqlParser, SelectStar) {
  auto stmt = Parse("SELECT * FROM r");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt.value()->select.select_star);
}

TEST(SqlParser, AliasesWithAndWithoutAs) {
  auto stmt = Parse("SELECT a.x AS col1, b.y col2 FROM r AS a, s b");
  ASSERT_TRUE(stmt.ok());
  const SelectCore& core = stmt.value()->select;
  EXPECT_EQ(core.items[0].alias, "col1");
  EXPECT_EQ(core.items[1].alias, "col2");
  EXPECT_EQ(core.from[0].alias, "a");
  EXPECT_EQ(core.from[1].alias, "b");
}

TEST(SqlParser, WhereConditionPrecedence) {
  // AND binds tighter than OR.
  auto stmt = Parse("SELECT x FROM r WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  const ConditionPtr& where = stmt.value()->select.where;
  ASSERT_NE(where, nullptr);
  ASSERT_EQ(where->kind, Condition::Kind::kOr);
  ASSERT_EQ(where->children.size(), 2u);
  EXPECT_EQ(where->children[0]->kind, Condition::Kind::kCompare);
  EXPECT_EQ(where->children[1]->kind, Condition::Kind::kAnd);
}

TEST(SqlParser, NotAndParentheses) {
  auto stmt = Parse("SELECT x FROM r WHERE NOT (a = 1 OR b = 2)");
  ASSERT_TRUE(stmt.ok());
  const ConditionPtr& where = stmt.value()->select.where;
  ASSERT_EQ(where->kind, Condition::Kind::kNot);
  EXPECT_EQ(where->children[0]->kind, Condition::Kind::kOr);
}

TEST(SqlParser, DerivedTable) {
  auto stmt = Parse("SELECT t.x FROM (SELECT x FROM r) AS t");
  ASSERT_TRUE(stmt.ok());
  const SelectCore& core = stmt.value()->select;
  ASSERT_EQ(core.from.size(), 1u);
  EXPECT_TRUE(core.from[0].is_derived());
  EXPECT_EQ(core.from[0].alias, "t");
}

TEST(SqlParser, DerivedTableRequiresAlias) {
  auto stmt = Parse("SELECT x FROM (SELECT x FROM r)");
  ASSERT_FALSE(stmt.ok());
}

TEST(SqlParser, SetOperations) {
  auto stmt = Parse("SELECT x FROM r UNION SELECT x FROM s");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->kind, Statement::Kind::kUnion);

  stmt = Parse("SELECT x FROM r EXCEPT SELECT x FROM s");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->kind, Statement::Kind::kExcept);

  stmt = Parse("SELECT x FROM r INTERSECT SELECT x FROM s");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->kind, Statement::Kind::kIntersect);
}

TEST(SqlParser, IntersectBindsTighterThanUnion) {
  auto stmt = Parse(
      "SELECT x FROM r UNION SELECT x FROM s INTERSECT SELECT x FROM t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt.value()->kind, Statement::Kind::kUnion);
  EXPECT_EQ(stmt.value()->right->kind, Statement::Kind::kIntersect);
}

TEST(SqlParser, SetOpsAreLeftAssociative) {
  auto stmt = Parse(
      "SELECT x FROM r EXCEPT SELECT x FROM s EXCEPT SELECT x FROM t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt.value()->kind, Statement::Kind::kExcept);
  EXPECT_EQ(stmt.value()->left->kind, Statement::Kind::kExcept);
  EXPECT_EQ(stmt.value()->right->kind, Statement::Kind::kSelect);
}

TEST(SqlParser, Aggregates) {
  auto stmt = Parse(
      "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM r GROUP BY k");
  ASSERT_TRUE(stmt.ok());
  const SelectCore& core = stmt.value()->select;
  ASSERT_EQ(core.items.size(), 6u);
  EXPECT_EQ(core.items[0].agg, AggregateFn::kNone);
  EXPECT_EQ(core.items[1].agg, AggregateFn::kCountStar);
  EXPECT_EQ(core.items[2].agg, AggregateFn::kSum);
  EXPECT_EQ(core.items[3].agg, AggregateFn::kMin);
  EXPECT_EQ(core.items[4].agg, AggregateFn::kMax);
  EXPECT_EQ(core.items[5].agg, AggregateFn::kAvg);
  ASSERT_EQ(core.group_by.size(), 1u);
  EXPECT_EQ(core.group_by[0].column, "k");
}

TEST(SqlParser, CountDistinctColumn) {
  auto stmt = Parse("SELECT COUNT(v) FROM r");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->select.items[0].agg, AggregateFn::kCount);
}

TEST(SqlParser, UnionAllIsRejected) {
  auto stmt = Parse("SELECT x FROM r UNION ALL SELECT x FROM s");
  ASSERT_FALSE(stmt.ok());
}

TEST(SqlParser, TrailingSemicolonAllowed) {
  EXPECT_TRUE(Parse("SELECT x FROM r;").ok());
}

TEST(SqlParser, TrailingGarbageIsAnError) {
  auto stmt = Parse("SELECT x FROM r garbage extra");
  ASSERT_FALSE(stmt.ok());
}

TEST(SqlParser, MissingFromIsAnError) {
  EXPECT_FALSE(Parse("SELECT x").ok());
}

TEST(SqlParser, ErrorsCarryPosition) {
  auto stmt = Parse("SELECT x\nFROM");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("line 2"), std::string::npos);
}

TEST(SqlParser, RoundTripThroughToString) {
  const char* queries[] = {
      "SELECT x, y FROM r",
      "SELECT DISTINCT a.x AS out FROM r AS a, s AS b WHERE a.x = b.y",
      "SELECT * FROM r WHERE x = 'v' AND y <> 'w'",
      "SELECT k, COUNT(*) AS n FROM r GROUP BY k",
      "SELECT x FROM (SELECT x FROM r EXCEPT SELECT x FROM rdel) AS t",
      "SELECT x FROM r UNION SELECT x FROM s INTERSECT SELECT x FROM t",
      "SELECT x FROM r WHERE NOT (x = 1 OR x = 2)",
  };
  for (const char* query : queries) {
    auto first = Parse(query);
    ASSERT_TRUE(first.ok()) << query;
    std::string rendered = first.value()->ToString();
    auto second = Parse(rendered);
    ASSERT_TRUE(second.ok()) << rendered;
    EXPECT_EQ(second.value()->ToString(), rendered) << query;
  }
}

}  // namespace
}  // namespace sql
}  // namespace opcqa
