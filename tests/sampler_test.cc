// Tests for the Sample algorithm and the additive-error scheme (Section 5,
// Theorem 9, Proposition 10). Statistical assertions use fixed seeds and
// tolerances far looser than the corresponding concentration bounds.

#include <gtest/gtest.h>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"
#include "repair/preference_generator.h"
#include "repair/sampler.h"

namespace opcqa {
namespace {

TEST(SamplerTest, NumSamplesMatchesPaperFigure) {
  // "for ε = δ = 0.1, for example, it is 150".
  EXPECT_EQ(Sampler::NumSamples(0.1, 0.1), 150u);
  // Monotonicity: tighter ε/δ need more samples.
  EXPECT_GT(Sampler::NumSamples(0.05, 0.1), Sampler::NumSamples(0.1, 0.1));
  EXPECT_GT(Sampler::NumSamples(0.1, 0.01), Sampler::NumSamples(0.1, 0.1));
}

TEST(SamplerTest, WalksTerminateAndSucceedOnNonFailingChains) {
  gen::Workload w = gen::PaperPreferenceExample();
  PreferenceChainGenerator gen(w.schema->RelationOrDie("Pref"));
  Sampler sampler(w.db, w.constraints, &gen, /*seed=*/42);
  for (int i = 0; i < 50; ++i) {
    WalkResult walk = sampler.RunWalk();
    EXPECT_TRUE(walk.successful);
    EXPECT_EQ(walk.steps, 2u);  // exactly two conflicts to resolve
    EXPECT_TRUE(Satisfies(walk.final_db, w.constraints));
  }
}

TEST(SamplerTest, WalksAreDeterministicGivenSeed) {
  gen::Workload w = gen::PaperPreferenceExample();
  PreferenceChainGenerator gen(w.schema->RelationOrDie("Pref"));
  Sampler s1(w.db, w.constraints, &gen, 7);
  Sampler s2(w.db, w.constraints, &gen, 7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s1.RunWalk().final_db, s2.RunWalk().final_db);
  }
}

TEST(SamplerTest, EstimateMatchesExactWithinEpsilon) {
  // The Example 7 value CP(a) = 0.45, approximated at ε = δ = 0.1.
  gen::Workload w = gen::PaperPreferenceExample();
  PreferenceChainGenerator gen(w.schema->RelationOrDie("Pref"));
  Result<Query> q =
      ParseQuery(*w.schema, "Q(x) := forall y (Pref(x,y) | x = y)");
  ASSERT_TRUE(q.ok());
  Sampler sampler(w.db, w.constraints, &gen, /*seed=*/123);
  double estimate = sampler.EstimateTuple(*q, {Const("a")}, 0.1, 0.1);
  EXPECT_NEAR(estimate, 0.45, 0.1);
}

TEST(SamplerTest, EstimateOcaCoversAllLikelyTuples) {
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  Sampler sampler(w.db, w.constraints, &gen, /*seed=*/9);
  ApproxOcaResult result = sampler.EstimateOca(*q, 0.05, 0.05);
  EXPECT_EQ(result.walks, Sampler::NumSamples(0.05, 0.05));
  EXPECT_EQ(result.failing_walks, 0u);
  // Exact CPs are 1/3 each; both estimates must be within ε = 0.05 (the
  // assertion holds with probability ≥ 95%, and the seed is fixed).
  EXPECT_NEAR(result.Estimate({Const("b")}), 1.0 / 3, 0.05);
  EXPECT_NEAR(result.Estimate({Const("c")}), 1.0 / 3, 0.05);
}

TEST(SamplerTest, HoeffdingGuaranteeHoldsAcrossSeeds) {
  // Repeat the (ε,δ) estimate over many seeds; the fraction of runs with
  // error > ε must not wildly exceed δ. With ε=0.15, δ=0.2 and 40 seeds,
  // expected failures ≤ 8; assert ≤ 16 (twice the budget).
  gen::Workload w = gen::PaperKeyPairExample();
  UniformChainGenerator gen;
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  const double eps = 0.15, delta = 0.2, exact = 1.0 / 3;
  int failures = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Sampler sampler(w.db, w.constraints, &gen, seed);
    double estimate = sampler.EstimateTuple(*q, {Const("b")}, eps, delta);
    if (std::abs(estimate - exact) > eps) ++failures;
  }
  EXPECT_LE(failures, 16);
}

TEST(SamplerTest, FailingWalksAreReportedNotHidden) {
  gen::Workload w = gen::PaperFailingExample();
  UniformChainGenerator gen;  // not non-failing here: +T(a) dead-ends
  Result<Query> q = ParseQuery(*w.schema, "Q() := true");
  ASSERT_TRUE(q.ok());
  Sampler sampler(w.db, w.constraints, &gen, /*seed=*/5);
  ApproxOcaResult result = sampler.EstimateOcaWithWalks(*q, 200);
  EXPECT_GT(result.failing_walks, 50u);   // expect ≈100
  EXPECT_GT(result.successful_walks, 50u);
  EXPECT_EQ(result.failing_walks + result.successful_walks, 200u);
}

TEST(SamplerTest, EstimatesEqualExactForDeterministicChain) {
  // A generator with a single positive-probability path: the estimate is
  // exact regardless of n.
  gen::Workload w = gen::PaperKeyPairExample();
  Fact ab = Fact::Make(*w.schema, "R", {"a", "b"});
  LambdaChainGenerator gen(
      "always-drop-ab",
      [&](const RepairingState&, const std::vector<Operation>& ops) {
        std::vector<Rational> probs(ops.size(), Rational(0));
        for (size_t i = 0; i < ops.size(); ++i) {
          if (ops[i] == Operation::Remove({ab})) probs[i] = Rational(1);
        }
        return probs;
      },
      /*deletions_only=*/true);
  Result<Query> q = ParseQuery(*w.schema, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  Sampler sampler(w.db, w.constraints, &gen, /*seed=*/1);
  ApproxOcaResult result = sampler.EstimateOcaWithWalks(*q, 20);
  EXPECT_DOUBLE_EQ(result.Estimate({Const("c")}), 1.0);
  EXPECT_DOUBLE_EQ(result.Estimate({Const("b")}), 0.0);
}

TEST(SamplerTest, WalkStepCountsPolynomialInViolations) {
  // Prop. 10: Sample terminates after polynomially many steps. For a key
  // workload with v violating groups, deletion walks need ≤ v·(group-1)
  // single steps (pair deletions shorten it further).
  gen::Workload w = gen::MakeKeyViolationWorkload(10, 5, 2, /*seed=*/3);
  UniformChainGenerator gen;
  Sampler sampler(w.db, w.constraints, &gen, /*seed=*/4);
  for (int i = 0; i < 20; ++i) {
    WalkResult walk = sampler.RunWalk();
    EXPECT_TRUE(walk.successful);
    EXPECT_LE(walk.steps, 5u);
    EXPECT_GE(walk.steps, 1u);
  }
}

}  // namespace
}  // namespace opcqa
