// Tests for SQL execution, the Section 5 rewriter and the approximation
// runner.

#include <gtest/gtest.h>

#include "engine/algebra.h"
#include "sql/approx_runner.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/rewriter.h"

namespace opcqa {
namespace sql {
namespace {

using engine::Relation;
using engine::Row;

Row MakeRow(std::initializer_list<const char*> names) {
  Row row;
  for (const char* n : names) row.push_back(Const(n));
  return row;
}

std::set<Row> RowSet(const Relation& relation) {
  return std::set<Row>(relation.rows().begin(), relation.rows().end());
}

class SqlExecutorTest : public ::testing::Test {
 protected:
  SqlExecutorTest() {
    Relation emp("emp", {"id", "name", "dept"});
    emp.Add(MakeRow({"1", "ann", "d1"}));
    emp.Add(MakeRow({"2", "bob", "d1"}));
    emp.Add(MakeRow({"3", "carol", "d2"}));
    catalog_.Register("emp", std::move(emp));

    Relation dept("dept", {"id", "city"});
    dept.Add(MakeRow({"d1", "rome"}));
    dept.Add(MakeRow({"d2", "oslo"}));
    catalog_.Register("dept", std::move(dept));

    Relation nums("nums", {"k", "v"});
    nums.Add(MakeRow({"a", "1"}));
    nums.Add(MakeRow({"a", "3"}));
    nums.Add(MakeRow({"b", "10"}));
    nums.Add(MakeRow({"b", "20"}));
    nums.Add(MakeRow({"b", "30"}));
    catalog_.Register("nums", std::move(nums));
  }

  Result<Relation> Run(std::string_view sql) {
    return ExecuteSql(sql, catalog_);
  }

  Catalog catalog_;
};

TEST_F(SqlExecutorTest, SelectStarSingleTable) {
  auto result = Run("SELECT * FROM emp");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 3u);
  // Single-table star output uses bare column names.
  EXPECT_EQ(result.value().columns(),
            (std::vector<std::string>{"id", "name", "dept"}));
}

TEST_F(SqlExecutorTest, ProjectionAndLiteralFilter) {
  auto result = Run("SELECT name FROM emp WHERE dept = 'd1'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"ann"}), MakeRow({"bob"})}));
}

TEST_F(SqlExecutorTest, EquiJoinThroughWhere) {
  auto result = Run(
      "SELECT e.name, d.city FROM emp e, dept d WHERE e.dept = d.id");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"ann", "rome"}), MakeRow({"bob", "rome"}),
                           MakeRow({"carol", "oslo"})}));
}

TEST_F(SqlExecutorTest, JoinWithAdditionalFilter) {
  auto result = Run(
      "SELECT e.name FROM emp e, dept d "
      "WHERE e.dept = d.id AND d.city = 'rome'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"ann"}), MakeRow({"bob"})}));
}

TEST_F(SqlExecutorTest, SelfJoinWithAliases) {
  auto result = Run(
      "SELECT a.name, b.name FROM emp a, emp b "
      "WHERE a.dept = b.dept AND a.id < b.id");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"ann", "bob"})}));
}

TEST_F(SqlExecutorTest, NumericVersusLexicographicComparison) {
  // 9 < 10 numerically even though "9" > "10" lexicographically.
  auto result = Run("SELECT v FROM nums WHERE v < 10");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"1"}), MakeRow({"3"})}));
  // String comparison for non-numeric values.
  result = Run("SELECT name FROM emp WHERE name < 'bob'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"ann"})}));
}

TEST_F(SqlExecutorTest, OrAndNotFallbackPath) {
  auto result = Run(
      "SELECT name FROM emp WHERE dept = 'd2' OR name = 'ann'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"ann"}), MakeRow({"carol"})}));

  result = Run("SELECT name FROM emp WHERE NOT dept = 'd1'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"carol"})}));
}

TEST_F(SqlExecutorTest, ConjunctiveAndGenericPathsAgree) {
  // The same join evaluated via the fast path and via the fallback (by
  // wrapping the condition in a redundant OR) must coincide.
  auto fast = Run(
      "SELECT e.name, d.city FROM emp e, dept d WHERE e.dept = d.id");
  auto slow = Run(
      "SELECT e.name, d.city FROM emp e, dept d "
      "WHERE e.dept = d.id OR e.dept = d.id");
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(RowSet(fast.value()), RowSet(slow.value()));
}

TEST_F(SqlExecutorTest, UnionExceptIntersect) {
  auto result = Run(
      "SELECT dept FROM emp WHERE name = 'ann' "
      "UNION SELECT dept FROM emp WHERE name = 'carol'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);

  result = Run(
      "SELECT dept FROM emp EXCEPT SELECT dept FROM emp WHERE name='carol'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"d1"})}));

  result = Run(
      "SELECT id FROM dept INTERSECT SELECT dept FROM emp "
      "WHERE name = 'carol'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"d2"})}));
}

TEST_F(SqlExecutorTest, SetOperationArityMismatchIsAnError) {
  auto result = Run("SELECT id FROM dept UNION SELECT id, city FROM dept");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlExecutorTest, DerivedTable) {
  auto result = Run(
      "SELECT t.name FROM (SELECT name, dept FROM emp "
      "WHERE dept = 'd1') AS t WHERE t.name <> 'bob'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"ann"})}));
}

TEST_F(SqlExecutorTest, GroupByWithAggregates) {
  auto result = Run(
      "SELECT k, COUNT(*) AS n, SUM(v) AS total, MIN(v) AS lo, "
      "MAX(v) AS hi FROM nums GROUP BY k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().columns(),
            (std::vector<std::string>{"k", "n", "total", "lo", "hi"}));
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"a", "2", "4", "1", "3"}),
                           MakeRow({"b", "3", "60", "10", "30"})}));
}

TEST_F(SqlExecutorTest, GlobalAggregatesWithoutGroupBy) {
  auto result = Run("SELECT COUNT(*), SUM(v) FROM nums");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value().rows()[0], MakeRow({"5", "64"}));
}

TEST_F(SqlExecutorTest, AvgIsExactRational) {
  auto result = Run("SELECT k, AVG(v) FROM nums GROUP BY k");
  ASSERT_TRUE(result.ok());
  // a: (1+3)/2 = 2; b: (10+20+30)/3 = 20 — both exact integers here.
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"a", "2"}), MakeRow({"b", "20"})}));
  // A non-integer average renders as an exact fraction.
  result = Run("SELECT AVG(v) FROM nums WHERE k = 'b' AND v < 30");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0], MakeRow({"15"}));
  result = Run("SELECT AVG(v) FROM nums WHERE v < 20");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0], MakeRow({"14/3"}));
}

TEST_F(SqlExecutorTest, SumOverNonNumericIsAnError) {
  auto result = Run("SELECT SUM(name) FROM emp");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlExecutorTest, BareColumnOutsideGroupByIsAnError) {
  auto result = Run("SELECT v, COUNT(*) FROM nums GROUP BY k");
  ASSERT_FALSE(result.ok());
}

TEST_F(SqlExecutorTest, CountColumnCountsDistinctValues) {
  Relation dup("dup", {"k", "v"});
  dup.Add(MakeRow({"a", "1"}));
  dup.Add(MakeRow({"b", "1"}));
  dup.Add(MakeRow({"c", "2"}));
  catalog_.Register("dup", std::move(dup));
  auto result = Run("SELECT COUNT(v) FROM dup");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0], MakeRow({"2"}));
}

TEST_F(SqlExecutorTest, UnknownTableAndColumnErrors) {
  EXPECT_EQ(Run("SELECT x FROM ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Run("SELECT ghost FROM emp").status().code(),
            StatusCode::kNotFound);
}

TEST_F(SqlExecutorTest, AmbiguousColumnIsAnError) {
  auto result = Run("SELECT id FROM emp, dept");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlExecutorTest, DuplicateAliasIsAnError) {
  auto result = Run("SELECT a.id FROM emp a, dept a");
  ASSERT_FALSE(result.ok());
}

TEST_F(SqlExecutorTest, ProductBudgetIsEnforced) {
  ExecOptions options;
  options.max_intermediate_rows = 4;
  auto result = ExecuteSql("SELECT e.name FROM emp e, dept d", catalog_,
                           options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SqlExecutorTest, ConstantFalseWhereYieldsEmpty) {
  auto result = Run("SELECT name FROM emp WHERE 1 = 2");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(SqlCatalog, FromDatabaseUsesSchemaNames) {
  Schema schema;
  PredId r = schema.AddRelation("R", 2);
  Database db(&schema);
  db.Insert(Fact(r, {Const("a"), Const("b")}));
  Catalog catalog = Catalog::FromDatabase(db, {{"R", {"x", "y"}}});
  ASSERT_TRUE(catalog.Contains("R"));
  EXPECT_EQ(catalog.Find("R")->columns(),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(catalog.Find("R")->size(), 1u);
}

TEST(SqlCompareConstants, NumericWhenBothNumeric) {
  EXPECT_LT(CompareConstants(Const("9"), Const("10")), 0);
  EXPECT_GT(CompareConstants(Const("-3"), Const("-10")), 0);
  EXPECT_EQ(CompareConstants(Const("7"), Const("7")), 0);
  // Mixed: lexicographic.
  EXPECT_LT(CompareConstants(Const("10"), Const("9x")), 0);
  EXPECT_LT(CompareConstants(Const("abc"), Const("abd")), 0);
}

// ---------------------------------------------------------------------
// Rewriter
// ---------------------------------------------------------------------

TEST(SqlRewriter, ReplacesBaseTablesWithDifference) {
  auto stmt = Parse("SELECT e.name FROM emp e WHERE e.dept = 'd1'");
  ASSERT_TRUE(stmt.ok());
  StatementPtr rewritten =
      RewriteWithDeletions(stmt.value(), {{"emp", "emp__del"}});
  std::string sql = rewritten->ToString();
  EXPECT_NE(sql.find("EXCEPT"), std::string::npos);
  EXPECT_NE(sql.find("emp__del"), std::string::npos);
  // The alias is preserved so WHERE still resolves.
  EXPECT_NE(sql.find("AS e"), std::string::npos);
}

TEST(SqlRewriter, LeavesUnmappedTablesAlone) {
  auto stmt = Parse("SELECT d.city FROM dept d");
  ASSERT_TRUE(stmt.ok());
  StatementPtr rewritten =
      RewriteWithDeletions(stmt.value(), {{"emp", "emp__del"}});
  // Structural sharing: nothing changed, same root node.
  EXPECT_EQ(rewritten, stmt.value());
}

TEST(SqlRewriter, RewritesInsideDerivedTablesAndSetOps) {
  auto stmt = Parse(
      "SELECT t.x FROM (SELECT dept AS x FROM emp) AS t "
      "UNION SELECT id AS x FROM dept");
  ASSERT_TRUE(stmt.ok());
  StatementPtr rewritten =
      RewriteWithDeletions(stmt.value(), {{"emp", "emp__del"}});
  std::string sql = rewritten->ToString();
  EXPECT_NE(sql.find("emp__del"), std::string::npos);
  // dept is untouched.
  EXPECT_EQ(sql.find("dept__del"), std::string::npos);
}

TEST(SqlRewriter, RewrittenQueryStillParses) {
  auto stmt = Parse(
      "SELECT e.name, d.city FROM emp e, dept d WHERE e.dept = d.id");
  ASSERT_TRUE(stmt.ok());
  StatementPtr rewritten = RewriteWithDeletions(
      stmt.value(), {{"emp", "emp__del"}, {"dept", "dept__del"}});
  auto reparsed = Parse(rewritten->ToString());
  ASSERT_TRUE(reparsed.ok()) << rewritten->ToString();
  EXPECT_EQ(reparsed.value()->ToString(), rewritten->ToString());
}

TEST(SqlRewriter, ExecutesEquivalentlyToManualDifference) {
  Catalog catalog;
  Relation r("r", {"k", "v"});
  r.Add(MakeRow({"1", "x"}));
  r.Add(MakeRow({"1", "y"}));
  r.Add(MakeRow({"2", "z"}));
  catalog.Register("r", r);
  Relation del("r__del", {"k", "v"});
  del.Add(MakeRow({"1", "y"}));
  catalog.Register("r__del", std::move(del));

  auto stmt = Parse("SELECT v FROM r");
  ASSERT_TRUE(stmt.ok());
  StatementPtr rewritten =
      RewriteWithDeletions(stmt.value(), {{"r", "r__del"}});
  auto via_rewrite = Execute(*rewritten, catalog);
  ASSERT_TRUE(via_rewrite.ok());
  auto direct = ExecuteSql(
      "SELECT v FROM (SELECT * FROM r EXCEPT SELECT * FROM r__del) AS r",
      catalog);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(RowSet(via_rewrite.value()), RowSet(direct.value()));
  EXPECT_EQ(RowSet(via_rewrite.value()),
            (std::set<Row>{MakeRow({"x"}), MakeRow({"z"})}));
}

// ---------------------------------------------------------------------
// Approximation runner (the Section 5 loop)
// ---------------------------------------------------------------------

class SqlApproxTest : public ::testing::Test {
 protected:
  SqlApproxTest() {
    // R(k, v): key k. Key "1" has two conflicting tuples; key "2" is clean.
    Relation r("r", {"k", "v"});
    r.Add(MakeRow({"1", "x"}));
    r.Add(MakeRow({"1", "y"}));
    r.Add(MakeRow({"2", "z"}));
    catalog_.Register("r", std::move(r));
  }
  Catalog catalog_;
};

TEST_F(SqlApproxTest, NumRoundsMatchesPaper) {
  // ε = δ = 0.1 → n = 150, the number quoted in Section 5.
  EXPECT_EQ(SqlApproxRunner::NumRounds(0.1, 0.1), 150u);
  EXPECT_EQ(SqlApproxRunner::NumRounds(0.05, 0.1), 600u);
}

TEST_F(SqlApproxTest, SampledDeletionsKeepExactlyOnePerGroup) {
  SqlApproxRunner runner(catalog_, {TableKey{"r", {0}}}, /*seed=*/7);
  for (int trial = 0; trial < 20; ++trial) {
    auto deletions = runner.SampleDeletions();
    ASSERT_EQ(deletions.size(), 1u);
    const Relation& del = deletions.at("r");
    // Exactly one of the two conflicting tuples is deleted; "2" never is.
    EXPECT_EQ(del.size(), 1u);
    EXPECT_EQ(del.rows()[0][0], Const("1"));
  }
}

TEST_F(SqlApproxTest, CleanTupleHasFrequencyOne) {
  SqlApproxRunner runner(catalog_, {TableKey{"r", {0}}}, /*seed=*/7);
  auto result = runner.Run("SELECT v FROM r", 100);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().Frequency(MakeRow({"z"})), 1.0);
}

TEST_F(SqlApproxTest, ConflictingTuplesSplitTheMass) {
  SqlApproxRunner runner(catalog_, {TableKey{"r", {0}}}, /*seed=*/13);
  auto result = runner.Run("SELECT v FROM r", 2000);
  ASSERT_TRUE(result.ok());
  double fx = result.value().Frequency(MakeRow({"x"}));
  double fy = result.value().Frequency(MakeRow({"y"}));
  // Each conflicting tuple survives in half of the sampled repairs.
  EXPECT_NEAR(fx, 0.5, 0.05);
  EXPECT_NEAR(fy, 0.5, 0.05);
  EXPECT_DOUBLE_EQ(fx + fy, 1.0);  // exactly one survives per round
}

TEST_F(SqlApproxTest, KeepNoneProbabilityLowersSurvival) {
  SqlApproxOptions options;
  options.keep_none_probability = 0.5;
  SqlApproxRunner runner(catalog_, {TableKey{"r", {0}}}, /*seed=*/29,
                         options);
  auto result = runner.Run("SELECT v FROM r", 2000);
  ASSERT_TRUE(result.ok());
  double fx = result.value().Frequency(MakeRow({"x"}));
  double fy = result.value().Frequency(MakeRow({"y"}));
  // Survival per tuple is (1 − keep_none)/2 = 0.25.
  EXPECT_NEAR(fx, 0.25, 0.05);
  EXPECT_NEAR(fy, 0.25, 0.05);
}

TEST_F(SqlApproxTest, JoinQueryOverRepairedRelations) {
  Relation s("s", {"v", "w"});
  s.Add(MakeRow({"x", "wx"}));
  s.Add(MakeRow({"z", "wz"}));
  catalog_.Register("s", std::move(s));

  SqlApproxRunner runner(catalog_, {TableKey{"r", {0}}}, /*seed=*/3);
  auto result = runner.Run(
      "SELECT s.w FROM r, s WHERE r.v = s.v", 500);
  ASSERT_TRUE(result.ok());
  // (z,wz) always joins; (x,wx) only when x survives (~1/2).
  EXPECT_DOUBLE_EQ(result.value().Frequency(MakeRow({"wz"})), 1.0);
  EXPECT_NEAR(result.value().Frequency(MakeRow({"wx"})), 0.5, 0.07);
  // The rewritten SQL mentions the deletion table.
  EXPECT_NE(result.value().rewritten_sql.find("r__del"), std::string::npos);
}

TEST_F(SqlApproxTest, InvalidSqlPropagatesStatus) {
  SqlApproxRunner runner(catalog_, {TableKey{"r", {0}}}, /*seed=*/3);
  auto result = runner.Run("SELECT FROM WHERE", 10);
  ASSERT_FALSE(result.ok());
}

// ---------------------------------------------------------------------
// Broader executor coverage.
// ---------------------------------------------------------------------

class SqlExecutorMoreTest : public SqlExecutorTest {};

TEST_F(SqlExecutorMoreTest, MultiColumnGroupBy) {
  Relation sales("sales", {"region", "product", "units"});
  sales.Add(MakeRow({"eu", "bolts", "5"}));
  sales.Add(MakeRow({"eu", "bolts", "7"}));
  sales.Add(MakeRow({"eu", "nuts", "2"}));
  sales.Add(MakeRow({"us", "bolts", "4"}));
  catalog_.Register("sales", std::move(sales));
  auto result = Run(
      "SELECT region, product, SUM(units) AS total FROM sales "
      "GROUP BY region, product");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"eu", "bolts", "12"}),
                           MakeRow({"eu", "nuts", "2"}),
                           MakeRow({"us", "bolts", "4"})}));
}

TEST_F(SqlExecutorMoreTest, NestedDerivedTables) {
  auto result = Run(
      "SELECT u.n FROM (SELECT t.name AS n FROM "
      "(SELECT name, dept FROM emp WHERE dept = 'd1') AS t) AS u "
      "WHERE u.n <> 'ann'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"bob"})}));
}

TEST_F(SqlExecutorMoreTest, SetOpOverDerivedAndAggregated) {
  auto result = Run(
      "SELECT dept FROM emp WHERE name = 'ann' "
      "UNION SELECT id FROM dept WHERE city = 'oslo' "
      "EXCEPT SELECT dept FROM emp WHERE name = 'carol'");
  ASSERT_TRUE(result.ok());
  // ({d1} ∪ {d2}) − {d2} = {d1} under left associativity.
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"d1"})}));
}

TEST_F(SqlExecutorMoreTest, ParenthesizedSetOpsOverrideAssociativity) {
  auto result = Run(
      "SELECT dept FROM emp WHERE name = 'ann' "
      "UNION (SELECT id FROM dept WHERE city = 'oslo' "
      "EXCEPT SELECT dept FROM emp WHERE name = 'carol')");
  ASSERT_TRUE(result.ok());
  // {d1} ∪ ({d2} − {d2}) = {d1}; same value, different shape — also
  // checks '(' statements parse inside set expressions.
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"d1"})}));
}

TEST_F(SqlExecutorMoreTest, WhereMixingJoinAndDisjunction) {
  // Non-conjunctive WHERE over a join exercises the product-then-filter
  // fallback with multiple tables.
  auto result = Run(
      "SELECT e.name FROM emp e, dept d "
      "WHERE e.dept = d.id AND (d.city = 'oslo' OR e.name = 'ann')");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"ann"}), MakeRow({"carol"})}));
}

TEST_F(SqlExecutorMoreTest, ComparisonBetweenColumnsOfOneTable) {
  Relation pairs("pairs", {"lo", "hi"});
  pairs.Add(MakeRow({"1", "2"}));
  pairs.Add(MakeRow({"5", "3"}));
  pairs.Add(MakeRow({"4", "4"}));
  catalog_.Register("pairs", std::move(pairs));
  auto result = Run("SELECT lo FROM pairs WHERE lo < hi");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"1"})}));
  result = Run("SELECT lo FROM pairs WHERE lo >= hi");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"4"}), MakeRow({"5"})}));
}

TEST_F(SqlExecutorMoreTest, CrossTableInequalityIsResidualFiltered) {
  // An inequality across tables cannot become a hash join; it must be
  // applied after the (cartesian) join as a residual conjunct.
  auto result = Run(
      "SELECT e.name, d.id FROM emp e, dept d WHERE e.dept <> d.id");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 3u);  // each emp joins the other dept
}

TEST_F(SqlExecutorMoreTest, MinMaxOverStringsUseLexicographicOrder) {
  auto result = Run("SELECT MIN(name), MAX(name) FROM emp");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows()[0], MakeRow({"ann", "carol"}));
}

TEST_F(SqlExecutorMoreTest, DistinctKeywordIsAcceptedSetSemantics) {
  auto with = Run("SELECT DISTINCT dept FROM emp");
  auto without = Run("SELECT dept FROM emp");
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(RowSet(with.value()), RowSet(without.value()));
  EXPECT_EQ(with.value().size(), 2u);
}

TEST_F(SqlExecutorMoreTest, TableAliasShadowsTableName) {
  // `emp d` makes "d" refer to emp; dept columns are unreachable via d.
  auto result = Run("SELECT d.name FROM emp d WHERE d.dept = 'd2'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()), (std::set<Row>{MakeRow({"carol"})}));
}

TEST_F(SqlExecutorMoreTest, GlobalAggregatesOverEmptyInput) {
  Relation empty("void", {"v"});
  catalog_.Register("void", std::move(empty));
  // COUNT/SUM of nothing are 0.
  auto result = Run("SELECT COUNT(*), SUM(v) FROM void");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value().rows()[0], MakeRow({"0", "0"}));
  // MIN/MAX/AVG of nothing: no row (no NULLs in this dialect).
  result = Run("SELECT MIN(v) FROM void");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
  result = Run("SELECT AVG(v), COUNT(*) FROM void");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
  // GROUP BY over empty input: no groups, no rows.
  result = Run("SELECT v, COUNT(*) FROM void GROUP BY v");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST_F(SqlExecutorMoreTest, GroupByQualifiedColumnAcrossJoin) {
  auto result = Run(
      "SELECT d.city, COUNT(*) AS staff FROM emp e, dept d "
      "WHERE e.dept = d.id GROUP BY d.city");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowSet(result.value()),
            (std::set<Row>{MakeRow({"rome", "2"}), MakeRow({"oslo", "1"})}));
}

}  // namespace
}  // namespace sql
}  // namespace opcqa
