// Tests for the weak-acyclicity checker (chase termination criterion).

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "constraints/weak_acyclicity.h"

namespace opcqa {
namespace {

class WeakAcyclicityTest : public ::testing::Test {
 protected:
  WeakAcyclicityTest() {
    r_ = schema_.AddRelation("R", 2);
    s_ = schema_.AddRelation("S", 2);
    t_ = schema_.AddRelation("T", 1);
  }

  ConstraintSet Parse(std::string_view text) {
    Result<ConstraintSet> constraints = ParseConstraints(schema_, text);
    EXPECT_TRUE(constraints.ok()) << constraints.status().ToString();
    return constraints.value();
  }

  Schema schema_;
  PredId r_, s_, t_;
};

TEST_F(WeakAcyclicityTest, EmptySetIsWeaklyAcyclic) {
  EXPECT_TRUE(IsWeaklyAcyclic(schema_, {}));
}

TEST_F(WeakAcyclicityTest, DenialOnlySetsHaveNoEdges) {
  ConstraintSet constraints = Parse(
      "R(x,y), R(x,z) -> y = z\n"
      "R(x,y), R(y,x) -> false");
  PositionGraph graph = BuildPositionGraph(schema_, constraints);
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_TRUE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, FullTgdHasOnlyRegularEdges) {
  ConstraintSet constraints = Parse("R(x,y) -> S(x,y)");
  PositionGraph graph = BuildPositionGraph(schema_, constraints);
  ASSERT_EQ(graph.edges.size(), 2u);
  for (const PositionEdge& edge : graph.edges) {
    EXPECT_FALSE(edge.special);
  }
  EXPECT_TRUE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, ExistentialHeadCreatesSpecialEdges) {
  ConstraintSet constraints = Parse("R(x,y) -> exists z: S(x,z)");
  PositionGraph graph = BuildPositionGraph(schema_, constraints);
  // Regular: R[0] → S[0]. Special: R[0] → S[1] (x is propagated).
  bool saw_regular = false, saw_special = false;
  for (const PositionEdge& edge : graph.edges) {
    if (edge.special) {
      saw_special = true;
      EXPECT_EQ(edge.to, (Position{s_, 1}));
    } else {
      saw_regular = true;
      EXPECT_EQ(edge.from, (Position{r_, 0}));
      EXPECT_EQ(edge.to, (Position{s_, 0}));
    }
  }
  EXPECT_TRUE(saw_regular);
  EXPECT_TRUE(saw_special);
  EXPECT_TRUE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, SelfFeedingExistentialIsNotWeaklyAcyclic) {
  // The classic non-terminating chase: every R-tuple demands a fresh
  // successor. Special edge R[1] → R[1] (via y propagated to R[0]... the
  // cycle R[1] → R[0]? — precisely: y occurs in body position R[1], is
  // propagated to head position R[0], and the existential z sits in head
  // position R[1]; the special edge R[1] → R[1] closes a cycle.
  ConstraintSet constraints = Parse("R(x,y) -> exists z: R(y,z)");
  EXPECT_FALSE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, TwoStepExistentialCycleIsDetected) {
  ConstraintSet constraints = Parse(
      "R(x,y) -> exists z: S(y,z)\n"
      "S(x,y) -> exists w: R(y,w)");
  EXPECT_FALSE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, RegularCycleAloneIsFine) {
  // R and S copy into each other — a cycle, but with no special edge.
  ConstraintSet constraints = Parse(
      "R(x,y) -> S(x,y)\n"
      "S(x,y) -> R(x,y)");
  EXPECT_TRUE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, RegularCyclePlusDisjointExistentialIsFine) {
  // The existential feeds T, which feeds nothing: no cycle through the
  // special edge.
  ConstraintSet constraints = Parse(
      "R(x,y) -> S(x,y)\n"
      "S(x,y) -> R(x,y)\n"
      "R(x,y) -> exists z: T(z)");
  EXPECT_TRUE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, ExistentialIntoRegularCycleIsStillAcyclic) {
  // T(x) → ∃z R(x,z): the special edge enters the R/S copy cycle but no
  // cycle passes through the special edge itself (nothing feeds back
  // into T).
  ConstraintSet constraints = Parse(
      "T(x) -> exists z: R(x,z)\n"
      "R(x,y) -> S(x,y)\n"
      "S(x,y) -> R(x,y)");
  EXPECT_TRUE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, FeedbackThroughSpecialEdgeIsRejected) {
  // S's second position flows back into R's body, and R creates fresh
  // values in that very position: cycle through a special edge.
  ConstraintSet constraints = Parse(
      "R(x,y) -> exists z: S(x,z)\n"
      "S(x,y) -> R(y,x)");
  EXPECT_FALSE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, UnpropagatedVariablesCreateNoSpecialEdges) {
  // x does not occur in the head: per the FKMP definition it contributes
  // no edges at all.
  ConstraintSet constraints = Parse("R(x,y) -> exists z: T(z)");
  PositionGraph graph = BuildPositionGraph(schema_, constraints);
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_TRUE(IsWeaklyAcyclic(schema_, constraints));
}

TEST_F(WeakAcyclicityTest, GraphToStringMentionsSpecialEdges) {
  ConstraintSet constraints = Parse("R(x,y) -> exists z: S(x,z)");
  PositionGraph graph = BuildPositionGraph(schema_, constraints);
  std::string rendered = graph.ToString(schema_);
  EXPECT_NE(rendered.find("-*->"), std::string::npos);
  EXPECT_NE(rendered.find("R[0]"), std::string::npos);
}

}  // namespace
}  // namespace opcqa
