// Failure-injection / robustness suites: every parser entry point must
// return a Status on malformed input — never crash, hang, or silently
// accept garbage. The sweeps mutate valid inputs deterministically
// (seeded), so failures are reproducible.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "constraints/constraint_parser.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "repair/memo.h"
#include "server/trace.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/canonical.h"
#include "util/random.h"

namespace opcqa {
namespace {

/// Deterministic single-character mutations of `text`.
std::vector<std::string> Mutations(const std::string& text, uint64_t seed,
                                   size_t count) {
  const std::string kNoise = "()[]{},.;:'\"!@#$%^&*<>=|\\~` \t\n";
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string mutated = text;
    size_t kind = rng.UniformInt(3);
    size_t position = rng.UniformInt(mutated.size());
    char noise = kNoise[rng.UniformInt(kNoise.size())];
    switch (kind) {
      case 0:  // replace
        mutated[position] = noise;
        break;
      case 1:  // insert
        mutated.insert(position, 1, noise);
        break;
      default:  // delete
        mutated.erase(position, 1);
        break;
    }
    out.push_back(std::move(mutated));
  }
  return out;
}

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() {
    schema_.AddRelation("R", 2);
    schema_.AddRelation("S", 3);
  }
  Schema schema_;
};

TEST_F(RobustnessTest, SqlParserNeverCrashesOnMutations) {
  const std::string kValid =
      "SELECT a.x, COUNT(*) FROM r AS a, (SELECT y FROM s) AS b "
      "WHERE a.x = b.y AND NOT (a.z < 3 OR a.z >= 'v') GROUP BY a.x";
  ASSERT_TRUE(sql::Parse(kValid).ok());
  size_t rejected = 0;
  for (const std::string& mutated : Mutations(kValid, 0xF00D, 400)) {
    Result<sql::StatementPtr> result = sql::Parse(mutated);  // must return
    if (!result.ok()) {
      ++rejected;
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // Most single-character mutations of this query are syntax errors.
  EXPECT_GT(rejected, 100u);
}

TEST_F(RobustnessTest, SqlParserHandlesPathologicalInputs) {
  const char* kInputs[] = {
      "", ";", "(((((((((", "SELECT", "SELECT SELECT SELECT",
      "SELECT * FROM", "FROM WHERE GROUP BY", "'unterminated",
      "SELECT * FROM r WHERE", "SELECT * FROM r GROUP", "))))",
      "SELECT COUNT( FROM r", "UNION UNION", "SELECT * FROM r r r r",
  };
  for (const char* input : kInputs) {
    Result<sql::StatementPtr> result = sql::Parse(input);
    EXPECT_FALSE(result.ok()) << "accepted garbage: " << input;
  }
}

TEST_F(RobustnessTest, DeeplyNestedSqlParses) {
  // 60 levels of parenthesized sub-selects: recursion must neither crash
  // nor reject structurally valid input.
  std::string query = "SELECT x FROM t";
  for (int depth = 0; depth < 60; ++depth) {
    query = "SELECT x FROM (" + query + ") AS t";
  }
  EXPECT_TRUE(sql::Parse(query).ok());
}

TEST_F(RobustnessTest, ConstraintParserNeverCrashesOnMutations) {
  const std::string kValid = "mykey: R(x,y), R(x,z) -> y = z";
  ASSERT_TRUE(ParseConstraint(schema_, kValid).ok());
  for (const std::string& mutated : Mutations(kValid, 0xBEEF, 400)) {
    (void)ParseConstraint(schema_, mutated);  // must return, not crash
  }
}

TEST_F(RobustnessTest, ConstraintParserRejectsGarbage) {
  const char* kInputs[] = {
      "", "->", "R(x,y) ->", "-> S(x,y,z)", "R(x,y) -> y = ",
      "Unknown(x) -> false", "R(x) -> false",  // wrong arity
      "R(x,y) R(x,z) -> y = z",                // missing comma
      "R(x,y) -> exists: S(x,y,z)",            // no variable list
  };
  for (const char* input : kInputs) {
    EXPECT_FALSE(ParseConstraint(schema_, input).ok())
        << "accepted garbage: " << input;
  }
}

TEST_F(RobustnessTest, QueryParserNeverCrashesOnMutations) {
  const std::string kValid =
      "Q(x) := forall y (not R(x,y) or exists z (S(x,y,z), x = z))";
  ASSERT_TRUE(ParseQuery(schema_, kValid).ok());
  for (const std::string& mutated : Mutations(kValid, 0xCAFE, 400)) {
    (void)ParseQuery(schema_, mutated);
  }
}

TEST_F(RobustnessTest, FactParserRejectsGarbage) {
  const char* kInputs[] = {
      "R(a)",        // wrong arity
      "Ghost(a,b)",  // unknown relation
      "R(a,b",       // unterminated
      "R a b",       // no parens
      "(a,b)",       // no relation
  };
  for (const char* input : kInputs) {
    EXPECT_FALSE(ParseFact(schema_, input).ok())
        << "accepted garbage: " << input;
  }
}

TEST_F(RobustnessTest, FactParserNeverCrashesOnMutations) {
  const std::string kValid = "R(a,b). S(a,b,c). R(c,d).";
  ASSERT_TRUE(ParseDatabase(schema_, kValid).ok());
  for (const std::string& mutated : Mutations(kValid, 0xD00D, 400)) {
    (void)ParseDatabase(schema_, mutated);
  }
}

TEST_F(RobustnessTest, TraceParserNeverCrashesOnMutations) {
  // The serve-trace request log is user-supplied input (opcqa_cli
  // --serve-trace): every line must parse to a Request or a Status.
  const std::string kValid =
      "# trace header comment\n"
      "t0 answer exact uniform 0 Q(x,y) := R(x,y)\n"
      "t1 insert exact - 0 R(a,b)\n"
      "t0 certain exact uniform 8 Q(x) := exists y R(x,y)\n"
      "t1 topk anytime uniform 0 2\n"
      "t0 erase exact - 0 R(a,b)\n";
  ASSERT_TRUE(server::ParseTrace(schema_, kValid).ok());
  size_t rejected = 0;
  for (const std::string& mutated : Mutations(kValid, 0x7ACE, 400)) {
    Result<std::vector<server::Request>> result =
        server::ParseTrace(schema_, mutated);  // must return, not crash
    if (!result.ok()) {
      ++rejected;
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // Mutations hitting the fixed fields (kind, mode, deadline, arity) are
  // structural errors; only query-text edits can stay well-formed.
  EXPECT_GT(rejected, 50u);
}

/// Byte-level mutations (the snapshot format is binary, so printable
/// noise is not enough): replace/insert/erase a random byte, or truncate
/// at a random offset.
std::vector<std::string> ByteMutations(const std::string& bytes,
                                       uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string mutated = bytes;
    size_t kind = rng.UniformInt(4);
    size_t position = rng.UniformInt(mutated.size());
    char noise = static_cast<char>(rng.UniformInt(256));
    switch (kind) {
      case 0:
        mutated[position] = noise;
        break;
      case 1:
        mutated.insert(position, 1, noise);
        break;
      case 2:
        mutated.erase(position, 1);
        break;
      default:
        mutated.resize(position);
        break;
    }
    out.push_back(std::move(mutated));
  }
  return out;
}

TEST_F(RobustnessTest, SnapshotDecoderNeverCrashesOnMutations) {
  // Snapshot bytes cross process boundaries (any earlier run, any other
  // writer may have produced them), so the loader's framing, CRC and
  // identity checks must turn arbitrary damage into a Status — never an
  // abort, a hang, or a silently-wrong table.
  Result<Database> db = ParseDatabase(schema_, "R(a,b). R(a,c). R(d,e).");
  ASSERT_TRUE(db.ok());
  Result<Constraint> key =
      ParseConstraint(schema_, "key: R(x,y), R(x,z) -> y = z");
  ASSERT_TRUE(key.ok());
  ConstraintSet constraints{*key};

  TranspositionTable table;
  auto outcome = std::make_shared<MemoOutcome>();
  outcome->states = 3;
  table.Insert(StateKey{11, 22}, std::set<FactId>{}, ViolationSet{},
               outcome);

  storage::SnapshotIdentity identity;
  identity.db_text = db->ToString();
  identity.constraints_digest =
      storage::RenderConstraints(schema_, constraints);
  identity.generator_identity = "robustness-sweep|v1";
  std::string bytes = storage::EncodeSnapshot(identity, *db, table);
  ASSERT_TRUE(
      storage::DecodeSnapshot(bytes, identity, *db, constraints, 0, 0)
          .ok());

  size_t rejected = 0;
  for (const std::string& mutated : ByteMutations(bytes, 0x5A5A, 400)) {
    Result<std::shared_ptr<TranspositionTable>> decoded =
        storage::DecodeSnapshot(mutated, identity, *db, constraints, 0, 0);
    if (!decoded.ok()) {
      ++rejected;
      EXPECT_FALSE(decoded.status().message().empty());
    }
  }
  // CRCs cover every region, so only no-op mutations (replacing a byte
  // with itself) may still decode.
  EXPECT_GT(rejected, 350u);
}

TEST_F(RobustnessTest, ExecutorSurvivesMutatedButParseableSql) {
  // Mutations that still parse must execute to a value or a Status —
  // never crash. Uses a real catalog so name resolution runs.
  engine::Relation r("r", {"x", "z"});
  engine::Row row;
  row.push_back(Const("a"));
  row.push_back(Const("1"));
  r.Add(row);
  sql::Catalog catalog;
  catalog.Register("r", std::move(r));

  const std::string kValid = "SELECT x FROM r WHERE z < 5 OR x = 'a'";
  size_t executed = 0;
  for (const std::string& mutated : Mutations(kValid, 0xABBA, 400)) {
    Result<sql::StatementPtr> parsed = sql::Parse(mutated);
    if (!parsed.ok()) continue;
    (void)sql::Execute(*parsed.value(), catalog);
    ++executed;
  }
  EXPECT_GT(executed, 10u);  // some mutations stay well-formed
}

}  // namespace
}  // namespace opcqa
