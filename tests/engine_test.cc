// Tests for the relational-algebra engine.

#include <gtest/gtest.h>

#include "engine/algebra.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"

namespace opcqa {
namespace engine {
namespace {

Row MakeRow(std::initializer_list<const char*> names) {
  Row row;
  for (const char* n : names) row.push_back(Const(n));
  return row;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : r_("R", {"a", "b"}) {
    r_.Add(MakeRow({"x1", "y1"}));
    r_.Add(MakeRow({"x1", "y2"}));
    r_.Add(MakeRow({"x2", "y1"}));
  }
  Relation r_;
};

TEST_F(EngineTest, RelationBasics) {
  EXPECT_EQ(r_.name(), "R");
  EXPECT_EQ(r_.arity(), 2u);
  EXPECT_EQ(r_.size(), 3u);
  EXPECT_EQ(r_.ColumnIndex("a"), 0u);
  EXPECT_EQ(r_.ColumnIndex("b"), 1u);
  EXPECT_EQ(r_.ColumnIndex("zzz"), Relation::kNotFound);
}

TEST_F(EngineTest, NormalizeSortsAndDeduplicates) {
  Relation rel("X", {"c"});
  rel.Add(MakeRow({"v2"}));
  rel.Add(MakeRow({"v1"}));
  rel.Add(MakeRow({"v2"}));
  rel.Normalize();
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(std::is_sorted(rel.rows().begin(), rel.rows().end()));
}

TEST_F(EngineTest, SelectByPredicateAndEquality) {
  Relation sel = SelectEq(r_, "a", Const("x1"));
  EXPECT_EQ(sel.size(), 2u);
  Relation sel2 = Select(r_, [](const Row& row) {
    return row[1] == Const("y1");
  });
  EXPECT_EQ(sel2.size(), 2u);
}

TEST_F(EngineTest, ProjectEliminatesDuplicates) {
  Relation proj = Project(r_, {"a"});
  EXPECT_EQ(proj.size(), 2u);  // x1, x2
  EXPECT_EQ(proj.columns(), std::vector<std::string>{"a"});
}

TEST_F(EngineTest, ProjectReorders) {
  Relation proj = Project(r_, {"b", "a"});
  EXPECT_EQ(proj.arity(), 2u);
  EXPECT_EQ(proj.rows()[0].size(), 2u);
}

TEST_F(EngineTest, RenameKeepsRows) {
  Relation renamed = Rename(r_, {"u", "v"});
  EXPECT_EQ(renamed.size(), 3u);
  EXPECT_EQ(renamed.ColumnIndex("u"), 0u);
}

TEST_F(EngineTest, NaturalJoinOnSharedColumn) {
  Relation s("S", {"b", "c"});
  s.Add(MakeRow({"y1", "z1"}));
  s.Add(MakeRow({"y1", "z2"}));
  Relation joined = NaturalJoin(r_, s);
  // R rows with b=y1: (x1,y1), (x2,y1); each joins 2 S rows → 4.
  EXPECT_EQ(joined.size(), 4u);
  EXPECT_EQ(joined.arity(), 3u);
}

TEST_F(EngineTest, NaturalJoinNoSharedColumnsIsCartesian) {
  Relation s("S", {"c"});
  s.Add(MakeRow({"z1"}));
  s.Add(MakeRow({"z2"}));
  EXPECT_EQ(NaturalJoin(r_, s).size(), 6u);
}

TEST_F(EngineTest, UnionAndDifference) {
  Relation other("R", {"a", "b"});
  other.Add(MakeRow({"x1", "y1"}));
  other.Add(MakeRow({"x9", "y9"}));
  Relation u = Union(r_, other);
  EXPECT_EQ(u.size(), 4u);  // 3 + 2 − 1 duplicate
  Relation d = Difference(r_, other);
  EXPECT_EQ(d.size(), 2u);
  for (const Row& row : d.rows()) {
    EXPECT_NE(row, MakeRow({"x1", "y1"}));
  }
}

TEST_F(EngineTest, DifferenceWithEmptyRightIsIdentity) {
  Relation empty("R", {"a", "b"});
  EXPECT_EQ(Difference(r_, empty).size(), r_.size());
}

TEST_F(EngineTest, CountDistinct) {
  Relation dup("X", {"c"});
  dup.Add(MakeRow({"v1"}));
  dup.Add(MakeRow({"v1"}));
  EXPECT_EQ(CountDistinct(dup), 1u);
}

TEST_F(EngineTest, FromDatabaseLoadsFacts) {
  Schema schema;
  PredId pred = schema.AddRelation("R", 2);
  Database db = *ParseDatabase(schema, "R(a,b). R(a,c).");
  Relation rel = Relation::FromDatabase(db, pred);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.columns(), (std::vector<std::string>{"c0", "c1"}));
}

class ExecuteCqTest : public ::testing::Test {
 protected:
  ExecuteCqTest() {
    r_pred_ = schema_.AddRelation("R", 2);
    s_pred_ = schema_.AddRelation("S", 2);
    db_ = *ParseDatabase(schema_,
                         "R(a,b). R(b,c). R(a,a). S(b,p). S(c,q).");
    r_rel_ = Relation::FromDatabase(db_, r_pred_);
    s_rel_ = Relation::FromDatabase(db_, s_pred_);
    relations_[r_pred_] = &r_rel_;
    relations_[s_pred_] = &s_rel_;
  }
  Schema schema_;
  PredId r_pred_, s_pred_;
  Database db_;
  Relation r_rel_, s_rel_;
  std::map<PredId, const Relation*> relations_;
};

TEST_F(ExecuteCqTest, SingleAtomScan) {
  Result<Query> q = ParseQuery(schema_, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  Relation result = ExecuteConjunctive(*q, relations_);
  EXPECT_EQ(result.size(), 3u);
}

TEST_F(ExecuteCqTest, ConstantSelection) {
  Result<Query> q = ParseQuery(schema_, "Q(y) := R(a, y)");
  ASSERT_TRUE(q.ok());
  Relation result = ExecuteConjunctive(*q, relations_);
  EXPECT_EQ(result.size(), 2u);  // b and a
}

TEST_F(ExecuteCqTest, RepeatedVariableSelection) {
  Result<Query> q = ParseQuery(schema_, "Q(x) := R(x, x)");
  ASSERT_TRUE(q.ok());
  Relation result = ExecuteConjunctive(*q, relations_);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.rows()[0], MakeRow({"a"}));
}

TEST_F(ExecuteCqTest, JoinMatchesLogicEvaluation) {
  Result<Query> q =
      ParseQuery(schema_, "Q(x,z) := exists y (R(x,y), S(y,z))");
  ASSERT_TRUE(q.ok());
  Relation engine_result = ExecuteConjunctive(*q, relations_);
  std::set<Tuple> engine_tuples(engine_result.rows().begin(),
                                engine_result.rows().end());
  EXPECT_EQ(engine_tuples, q->Evaluate(db_));
}

TEST_F(ExecuteCqTest, TriangleJoinMatchesLogicEvaluation) {
  Result<Query> q = ParseQuery(
      schema_, "Q(x) := exists y,z (R(x,y), R(y,z), S(z, q))");
  ASSERT_TRUE(q.ok());
  Relation engine_result = ExecuteConjunctive(*q, relations_);
  std::set<Tuple> engine_tuples(engine_result.rows().begin(),
                                engine_result.rows().end());
  EXPECT_EQ(engine_tuples, q->Evaluate(db_));
}

TEST_F(ExecuteCqTest, EmptyResultWhenNoMatch) {
  Result<Query> q = ParseQuery(schema_, "Q(y) := S(a, y)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(ExecuteConjunctive(*q, relations_).empty());
}

// ---------------------------------------------------------------------
// EquiJoin / Intersect (added for the SQL front-end).
// ---------------------------------------------------------------------

class EquiJoinTest : public ::testing::Test {
 protected:
  EquiJoinTest() : left_("L", {"a", "b"}), right_("R", {"c", "d"}) {
    left_.Add(MakeRow({"x1", "k1"}));
    left_.Add(MakeRow({"x2", "k2"}));
    left_.Add(MakeRow({"x3", "k1"}));
    right_.Add(MakeRow({"k1", "y1"}));
    right_.Add(MakeRow({"k1", "y2"}));
    right_.Add(MakeRow({"k3", "y3"}));
  }
  Relation left_, right_;
};

TEST_F(EquiJoinTest, JoinsOnDifferentlyNamedColumns) {
  Relation joined = EquiJoin(left_, right_, {{"b", "c"}});
  // x1 and x3 match k1's two right rows; x2 matches nothing.
  EXPECT_EQ(joined.size(), 4u);
  EXPECT_EQ(joined.arity(), 4u);  // all columns of both sides
  EXPECT_EQ(joined.columns(),
            (std::vector<std::string>{"a", "b", "c", "d"}));
  for (const Row& row : joined.rows()) {
    EXPECT_EQ(row[1], row[2]);  // the join condition holds per row
  }
}

TEST_F(EquiJoinTest, EmptyPairListIsCartesianProduct) {
  Relation product = EquiJoin(left_, right_, {});
  EXPECT_EQ(product.size(), left_.size() * right_.size());
}

TEST_F(EquiJoinTest, MultiColumnJoin) {
  Relation l("L2", {"a", "b"});
  l.Add(MakeRow({"p", "q"}));
  l.Add(MakeRow({"p", "r"}));
  Relation r("R2", {"c", "d"});
  r.Add(MakeRow({"p", "q"}));
  Relation joined = EquiJoin(l, r, {{"a", "c"}, {"b", "d"}});
  EXPECT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined.rows()[0], MakeRow({"p", "q", "p", "q"}));
}

TEST_F(EquiJoinTest, AgreesWithNaturalJoinAfterRename) {
  // EquiJoin(L, R, b=c) projected on L's columns equals the natural join
  // of L with R renamed so the join columns share a name.
  Relation joined = EquiJoin(left_, right_, {{"b", "c"}});
  Relation projected = Project(joined, {"a", "b", "d"});
  Relation renamed = Rename(right_, {"b", "d"});
  Relation natural = NaturalJoin(left_, renamed);
  Relation natural_sorted = Project(natural, {"a", "b", "d"});
  std::set<Row> lhs(projected.rows().begin(), projected.rows().end());
  std::set<Row> rhs(natural_sorted.rows().begin(),
                    natural_sorted.rows().end());
  EXPECT_EQ(lhs, rhs);
}

TEST(IntersectTest, KeepsCommonRowsOnly) {
  Relation a("A", {"x"});
  a.Add(MakeRow({"1"}));
  a.Add(MakeRow({"2"}));
  a.Add(MakeRow({"3"}));
  Relation b("B", {"x"});
  b.Add(MakeRow({"2"}));
  b.Add(MakeRow({"3"}));
  b.Add(MakeRow({"4"}));
  Relation common = Intersect(a, b);
  EXPECT_EQ(common.size(), 2u);
  std::set<Row> rows(common.rows().begin(), common.rows().end());
  EXPECT_EQ(rows, (std::set<Row>{MakeRow({"2"}), MakeRow({"3"})}));
}

TEST(IntersectTest, IdentitiesHold) {
  Relation a("A", {"x"});
  a.Add(MakeRow({"1"}));
  a.Add(MakeRow({"2"}));
  // A ∩ A = A; A ∩ ∅ = ∅; A − (A − B) = A ∩ B.
  EXPECT_EQ(Intersect(a, a).size(), a.size());
  Relation empty("E", {"x"});
  EXPECT_TRUE(Intersect(a, empty).empty());
  Relation b("B", {"x"});
  b.Add(MakeRow({"2"}));
  Relation via_difference = Difference(a, Difference(a, b));
  std::set<Row> lhs(via_difference.rows().begin(),
                    via_difference.rows().end());
  Relation direct = Intersect(a, b);
  std::set<Row> rhs(direct.rows().begin(), direct.rows().end());
  EXPECT_EQ(lhs, rhs);
}

}  // namespace
}  // namespace engine
}  // namespace opcqa
