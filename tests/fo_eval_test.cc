// Tests for first-order formula construction and active-domain evaluation.

#include <gtest/gtest.h>

#include "logic/fo_eval.h"
#include "logic/query.h"
#include "relational/fact_parser.h"

namespace opcqa {
namespace {

class FoEvalTest : public ::testing::Test {
 protected:
  FoEvalTest() {
    pref_ = schema_.AddRelation("Pref", 2);
    s_ = schema_.AddRelation("S", 1);
    db_ = *ParseDatabase(schema_, "Pref(a,b). Pref(a,c). Pref(b,c). S(a).");
  }

  FormulaPtr PrefAtom(Term t1, Term t2) {
    return Formula::MakeAtom(Atom(pref_, {t1, t2}));
  }

  Schema schema_;
  PredId pref_, s_;
  Database db_;
};

TEST_F(FoEvalTest, TrueFalseConstants) {
  EXPECT_TRUE(EvalFormula(*Formula::True(), db_, Assignment()));
  EXPECT_FALSE(EvalFormula(*Formula::False(), db_, Assignment()));
}

TEST_F(FoEvalTest, GroundAtom) {
  FormulaPtr f = PrefAtom(Term::MakeConst("a"), Term::MakeConst("b"));
  EXPECT_TRUE(EvalFormula(*f, db_, Assignment()));
  FormulaPtr g = PrefAtom(Term::MakeConst("b"), Term::MakeConst("a"));
  EXPECT_FALSE(EvalFormula(*g, db_, Assignment()));
}

TEST_F(FoEvalTest, AtomUnderAssignment) {
  FormulaPtr f = PrefAtom(Term::MakeVar("x"), Term::MakeConst("b"));
  Assignment env;
  env.Bind(Var("x"), Const("a"));
  EXPECT_TRUE(EvalFormula(*f, db_, env));
  env.Unbind(Var("x"));
  env.Bind(Var("x"), Const("c"));
  EXPECT_FALSE(EvalFormula(*f, db_, env));
}

TEST_F(FoEvalTest, EqualityAndNegation) {
  FormulaPtr eq = Formula::Equals(Term::MakeConst("a"), Term::MakeConst("a"));
  EXPECT_TRUE(EvalFormula(*eq, db_, Assignment()));
  FormulaPtr neq =
      Formula::Not(Formula::Equals(Term::MakeConst("a"), Term::MakeConst("b")));
  EXPECT_TRUE(EvalFormula(*neq, db_, Assignment()));
}

TEST_F(FoEvalTest, ConjunctionDisjunction) {
  FormulaPtr t = Formula::True();
  FormulaPtr f = Formula::False();
  EXPECT_FALSE(EvalFormula(*Formula::And({t, f}), db_, Assignment()));
  EXPECT_TRUE(EvalFormula(*Formula::Or({t, f}), db_, Assignment()));
  EXPECT_TRUE(EvalFormula(*Formula::And({t, t}), db_, Assignment()));
  EXPECT_FALSE(EvalFormula(*Formula::Or({f, f}), db_, Assignment()));
}

TEST_F(FoEvalTest, ImpliesDesugarsToNotOr) {
  FormulaPtr impl = Formula::Implies(Formula::True(), Formula::False());
  EXPECT_FALSE(EvalFormula(*impl, db_, Assignment()));
  FormulaPtr impl2 = Formula::Implies(Formula::False(), Formula::False());
  EXPECT_TRUE(EvalFormula(*impl2, db_, Assignment()));
}

TEST_F(FoEvalTest, ExistentialQuantifier) {
  // ∃x Pref(x, c) — true (a and b both work).
  FormulaPtr f = Formula::Exists(
      {Var("x")}, PrefAtom(Term::MakeVar("x"), Term::MakeConst("c")));
  EXPECT_TRUE(EvalFormula(*f, db_, Assignment()));
  // ∃x Pref(c, x) — false.
  FormulaPtr g = Formula::Exists(
      {Var("x")}, PrefAtom(Term::MakeConst("c"), Term::MakeVar("x")));
  EXPECT_FALSE(EvalFormula(*g, db_, Assignment()));
}

TEST_F(FoEvalTest, UniversalQuantifier) {
  // ∀y (Pref(a,y) ∨ a=y) — the Example 7 shape; here dom = {a,b,c} and
  // Pref(a,b), Pref(a,c) hold, so it is true for x=a.
  FormulaPtr body = Formula::Or(
      {PrefAtom(Term::MakeConst("a"), Term::MakeVar("y")),
       Formula::Equals(Term::MakeConst("a"), Term::MakeVar("y"))});
  FormulaPtr f = Formula::Forall({Var("y")}, body);
  EXPECT_TRUE(EvalFormula(*f, db_, Assignment()));
  // Same for b: Pref(b,a) missing → false.
  FormulaPtr body_b = Formula::Or(
      {PrefAtom(Term::MakeConst("b"), Term::MakeVar("y")),
       Formula::Equals(Term::MakeConst("b"), Term::MakeVar("y"))});
  EXPECT_FALSE(EvalFormula(*Formula::Forall({Var("y")}, body_b), db_,
                           Assignment()));
}

TEST_F(FoEvalTest, NestedQuantifiers) {
  // ∀x (S(x) → ∃y Pref(x,y)): S = {a} and Pref(a,·) exists → true.
  FormulaPtr inner = Formula::Exists(
      {Var("y")}, PrefAtom(Term::MakeVar("x"), Term::MakeVar("y")));
  FormulaPtr body = Formula::Implies(
      Formula::MakeAtom(Atom(s_, {Term::MakeVar("x")})), inner);
  EXPECT_TRUE(EvalFormula(*Formula::Forall({Var("x")}, body), db_,
                          Assignment()));
}

TEST_F(FoEvalTest, QuantifierShadowingRestoresOuterBinding) {
  // With x bound to a, evaluate ∃x Pref(b, x) and then use outer x again.
  Assignment env;
  env.Bind(Var("x"), Const("a"));
  FormulaPtr f = Formula::Exists(
      {Var("x")}, PrefAtom(Term::MakeConst("b"), Term::MakeVar("x")));
  EXPECT_TRUE(EvalFormula(*f, db_, env));
  // env must be unchanged for the caller.
  EXPECT_EQ(*env.Get(Var("x")), Const("a"));
}

TEST_F(FoEvalTest, FreeVariablesComputed) {
  FormulaPtr f = Formula::Exists(
      {Var("y")}, Formula::And({PrefAtom(Term::MakeVar("x"),
                                         Term::MakeVar("y")),
                                PrefAtom(Term::MakeVar("y"),
                                         Term::MakeVar("z"))}));
  EXPECT_EQ(f->FreeVariables(), (std::vector<VarId>{Var("x"), Var("z")}));
}

TEST_F(FoEvalTest, EmptyDomainUniversalVacuouslyTrue) {
  Database empty(&schema_);
  FormulaPtr f = Formula::Forall(
      {Var("x")}, PrefAtom(Term::MakeVar("x"), Term::MakeVar("x")));
  EXPECT_TRUE(EvalFormula(*f, empty, Assignment()));
  FormulaPtr g = Formula::Exists(
      {Var("x")}, PrefAtom(Term::MakeVar("x"), Term::MakeVar("x")));
  EXPECT_FALSE(EvalFormula(*g, empty, Assignment()));
}

// ---- Query evaluation ----

TEST_F(FoEvalTest, QueryEvaluateConjunctiveFastPath) {
  Conjunction body;
  body.Add(Atom(pref_, {Term::MakeVar("x"), Term::MakeVar("y")}));
  Query q("Q", {Var("x"), Var("y")}, Formula::FromConjunction(body));
  EXPECT_TRUE(q.IsConjunctive());
  EXPECT_EQ(q.Evaluate(db_).size(), 3u);
}

TEST_F(FoEvalTest, QueryEvaluateProjection) {
  Conjunction body;
  body.Add(Atom(pref_, {Term::MakeVar("x"), Term::MakeVar("y")}));
  Query q("Q", {Var("x")},
          Formula::Exists({Var("y")}, Formula::FromConjunction(body)));
  EXPECT_TRUE(q.IsConjunctive());
  std::set<Tuple> answers = q.Evaluate(db_);
  EXPECT_EQ(answers.size(), 2u);  // a and b are sources
}

TEST_F(FoEvalTest, QueryGenericPathMatchesConjunctivePath) {
  // Same query evaluated generically (via a redundant Or wrapper).
  Conjunction body;
  body.Add(Atom(pref_, {Term::MakeVar("x"), Term::MakeVar("y")}));
  FormulaPtr cq = Formula::FromConjunction(body);
  Query fast("Qf", {Var("x"), Var("y")}, cq);
  Query slow("Qs", {Var("x"), Var("y")}, Formula::Or({cq, Formula::False()}));
  EXPECT_TRUE(fast.IsConjunctive());
  EXPECT_FALSE(slow.IsConjunctive());
  EXPECT_EQ(fast.Evaluate(db_), slow.Evaluate(db_));
}

TEST_F(FoEvalTest, QueryContains) {
  Conjunction body;
  body.Add(Atom(pref_, {Term::MakeVar("x"), Term::MakeVar("y")}));
  Query q("Q", {Var("x"), Var("y")}, Formula::FromConjunction(body));
  EXPECT_TRUE(q.Contains(db_, {Const("a"), Const("b")}));
  EXPECT_FALSE(q.Contains(db_, {Const("b"), Const("a")}));
  // Constants outside dom(D) are never answers.
  EXPECT_FALSE(q.Contains(db_, {Const("zzz_unknown"), Const("b")}));
}

TEST_F(FoEvalTest, BooleanQuery) {
  Conjunction body;
  body.Add(Atom(pref_, {Term::MakeConst("a"), Term::MakeConst("b")}));
  Query q("Q", {}, Formula::FromConjunction(body));
  std::set<Tuple> answers = q.Evaluate(db_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers.begin()->empty());
  EXPECT_TRUE(q.Contains(db_, {}));
}

TEST_F(FoEvalTest, BooleanQueryFalse) {
  Conjunction body;
  body.Add(Atom(pref_, {Term::MakeConst("c"), Term::MakeConst("a")}));
  Query q("Q", {}, Formula::FromConjunction(body));
  EXPECT_TRUE(q.Evaluate(db_).empty());
  EXPECT_FALSE(q.Contains(db_, {}));
}

}  // namespace
}  // namespace opcqa
