// Tests for repair localization: component structure, factored
// distribution exactness against the monolithic enumerator, and sampling.

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/localization.h"
#include "repair/ocqa.h"
#include "repair/trust_generator.h"

namespace opcqa {
namespace {

TEST(ConflictComponentsTest, IndependentKeyGroupsAreSeparateComponents) {
  gen::Workload w = gen::MakeKeyViolationWorkload(6, 3, 2, /*seed=*/50);
  std::vector<std::vector<Fact>> components =
      ConflictComponents(w.db, w.constraints);
  ASSERT_EQ(components.size(), 3u);
  for (const auto& component : components) {
    EXPECT_EQ(component.size(), 2u);
  }
}

TEST(ConflictComponentsTest, PreferenceExampleHasTwoComponents) {
  gen::Workload w = gen::PaperPreferenceExample();
  std::vector<std::vector<Fact>> components =
      ConflictComponents(w.db, w.constraints);
  EXPECT_EQ(components.size(), 2u);  // {(a,b),(b,a)} and {(a,c),(c,a)}
}

TEST(ConflictComponentsTest, OverlappingViolationsMerge) {
  // R(a,b), R(a,c), R(a,d): one component of three facts.
  Schema schema;
  schema.AddRelation("R", 2);
  Database db(&schema);
  db.Insert(Fact::Make(schema, "R", {"a", "b"}));
  db.Insert(Fact::Make(schema, "R", {"a", "c"}));
  db.Insert(Fact::Make(schema, "R", {"a", "d"}));
  ConstraintSet sigma =
      *ParseConstraints(schema, "R(x,y), R(x,z) -> y = z");
  std::vector<std::vector<Fact>> components =
      ConflictComponents(db, sigma);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 3u);
}

TEST(ConflictComponentsTest, ConsistentDatabaseHasNoComponents) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 0, 2, /*seed=*/51);
  EXPECT_TRUE(ConflictComponents(w.db, w.constraints).empty());
}

TEST(LocalizationTest, RejectsTgdConstraints) {
  gen::Workload w = gen::PaperExample1();
  UniformChainGenerator gen;
  Result<LocalizedRepairs> localized =
      LocalizeAndEnumerate(w.db, w.constraints, gen);
  EXPECT_FALSE(localized.ok());
  EXPECT_EQ(localized.status().code(), StatusCode::kInvalidArgument);
}

TEST(LocalizationTest, UntouchedFactsSurviveWithProbabilityOne) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 2, 2, /*seed=*/52);
  UniformChainGenerator gen;
  Result<LocalizedRepairs> localized =
      LocalizeAndEnumerate(w.db, w.constraints, gen);
  ASSERT_TRUE(localized.ok()) << localized.status().ToString();
  EXPECT_EQ(localized->untouched().size(), 3u);  // the 3 clean keys
  for (const Fact& fact : localized->untouched().AllFacts()) {
    EXPECT_EQ(localized->FactSurvivalProbability(fact), Rational(1));
  }
  // A fact that is not in D at all.
  Fact foreign = Fact::Make(*w.schema, "R", {"zz_no", "zz_no"});
  EXPECT_TRUE(localized->FactSurvivalProbability(foreign).is_zero());
}

// The heart of the matter: factored marginals equal monolithic CP values.
class LocalizationExactnessTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(LocalizationExactnessTest, MarginalsMatchMonolithicEnumeration) {
  gen::Workload w =
      gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/GetParam());
  UniformChainGenerator gen;
  Result<LocalizedRepairs> localized =
      LocalizeAndEnumerate(w.db, w.constraints, gen);
  ASSERT_TRUE(localized.ok());
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult monolithic = ComputeOca(w.db, w.constraints, gen, *q);
  for (const Fact& fact : w.db.AllFacts()) {
    Tuple tuple(fact.args());
    EXPECT_EQ(localized->FactSurvivalProbability(fact),
              monolithic.Probability(tuple))
        << fact.ToString(*w.schema);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalizationExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(LocalizationTest, TrustGeneratorMarginalsMatchMonolithic) {
  gen::TrustWorkload tw = gen::MakeTrustWorkload(4, 2, 2, /*seed=*/53);
  TrustChainGenerator gen(tw.trust);
  Result<LocalizedRepairs> localized = LocalizeAndEnumerate(
      tw.workload.db, tw.workload.constraints, gen);
  ASSERT_TRUE(localized.ok());
  Result<Query> q = ParseQuery(*tw.workload.schema, "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult monolithic =
      ComputeOca(tw.workload.db, tw.workload.constraints, gen, *q);
  for (const Fact& fact : tw.workload.db.AllFacts()) {
    EXPECT_EQ(localized->FactSurvivalProbability(fact),
              monolithic.Probability(Tuple(fact.args())))
        << fact.ToString(*tw.workload.schema);
  }
}

TEST(LocalizationTest, CombinationCountIsProductOfComponents) {
  gen::Workload w = gen::MakeKeyViolationWorkload(5, 3, 2, /*seed=*/54);
  UniformChainGenerator gen;
  Result<LocalizedRepairs> localized =
      LocalizeAndEnumerate(w.db, w.constraints, gen);
  ASSERT_TRUE(localized.ok());
  // 3 components × 3 repairs each (keep-left / keep-right / drop-both).
  EXPECT_EQ(localized->NumRepairCombinations(), BigInt(27));
  EXPECT_EQ(localized->MaxComponentSize(), 2u);
  // The monolithic enumerator materializes exactly that many repairs.
  EnumerationResult mono = EnumerateRepairs(w.db, w.constraints, gen);
  EXPECT_EQ(BigInt(static_cast<uint64_t>(mono.repairs.size())),
            localized->NumRepairCombinations());
}

TEST(LocalizationTest, SampledRepairsAreConsistentAndComplete) {
  gen::Workload w = gen::MakeKeyViolationWorkload(6, 3, 3, /*seed=*/55);
  UniformChainGenerator gen;
  Result<LocalizedRepairs> localized =
      LocalizeAndEnumerate(w.db, w.constraints, gen);
  ASSERT_TRUE(localized.ok());
  Rng rng(56);
  for (int i = 0; i < 30; ++i) {
    Database repair = localized->SampleRepair(&rng);
    EXPECT_TRUE(Satisfies(repair, w.constraints));
    // Untouched facts always present.
    for (const Fact& fact : localized->untouched().AllFacts()) {
      EXPECT_TRUE(repair.Contains(fact));
    }
  }
}

TEST(LocalizationTest, SampledMarginalsConvergeToExact) {
  gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/57);
  UniformChainGenerator gen;
  Result<LocalizedRepairs> localized =
      LocalizeAndEnumerate(w.db, w.constraints, gen);
  ASSERT_TRUE(localized.ok());
  Rng rng(58);
  std::map<Fact, size_t> counts;
  const int kSamples = 3000;
  for (int i = 0; i < kSamples; ++i) {
    Database repair = localized->SampleRepair(&rng);
    for (const Fact& fact : repair.AllFacts()) ++counts[fact];
  }
  for (const Fact& fact : w.db.AllFacts()) {
    double observed =
        static_cast<double>(counts[fact]) / static_cast<double>(kSamples);
    double exact = localized->FactSurvivalProbability(fact).ToDouble();
    EXPECT_NEAR(observed, exact, 0.04) << fact.ToString(*w.schema);
  }
}

}  // namespace
}  // namespace opcqa
