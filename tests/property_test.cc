// Cross-cutting property suites: the framework's invariants checked over a
// grid of (workload seed × chain generator) combinations rather than on
// hand-picked instances.
//
//   * Definition 5 stochasticity: generator distributions sum to 1 at
//     every state reached by a random walk;
//   * Proposition 2: repairing sequences stay finite / polynomially long;
//   * Proposition 3: the hitting distribution exists — success and failing
//     masses sum to exactly 1;
//   * Proposition 4: ABC repairs ⊆ operational repairs under M^u;
//   * Proposition 8: deletion-only generators never fail;
//   * Definition 4 legality of every ValidExtensions() result;
//   * sampler unbiasedness against the exact distribution;
//   * localization: factored == monolithic for local generators.

#include <gtest/gtest.h>

#include <set>

#include "constraints/satisfaction.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/abc.h"
#include "repair/localization.h"
#include "repair/null_chase.h"
#include "repair/ocqa.h"
#include "repair/priority_generator.h"
#include "repair/sampler.h"
#include "repair/top_k.h"
#include "repair/trust_generator.h"
#include "util/random.h"

namespace opcqa {
namespace {

// ---------------------------------------------------------------------
// Workload grid.
// ---------------------------------------------------------------------

enum class WorkloadKind { kPreference, kKey, kTrustKey, kInclusion };

struct GridParam {
  WorkloadKind kind;
  uint64_t seed;
};

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  const char* kind = "";
  switch (info.param.kind) {
    case WorkloadKind::kPreference: kind = "Preference"; break;
    case WorkloadKind::kKey: kind = "Key"; break;
    case WorkloadKind::kTrustKey: kind = "TrustKey"; break;
    case WorkloadKind::kInclusion: kind = "Inclusion"; break;
  }
  return std::string(kind) + "Seed" + std::to_string(info.param.seed);
}

gen::Workload MakeWorkload(const GridParam& param) {
  switch (param.kind) {
    case WorkloadKind::kPreference:
      return gen::MakePreferenceWorkload(6, 10, 0.5, param.seed);
    case WorkloadKind::kKey:
    case WorkloadKind::kTrustKey:
      return gen::MakeKeyViolationWorkload(4, 2, 2, param.seed);
    case WorkloadKind::kInclusion:
      return gen::MakeInclusionWorkload(3, 0.7, param.seed);
  }
  OPCQA_CHECK(false);
  return {};
}

class ChainPropertyTest : public ::testing::TestWithParam<GridParam> {
 protected:
  ChainPropertyTest() : w_(MakeWorkload(GetParam())) {}

  gen::Workload w_;
  UniformChainGenerator uniform_;
};

TEST_P(ChainPropertyTest, GeneratorDistributionsSumToOneAlongWalks) {
  auto context = RepairContext::Make(w_.db, w_.constraints);
  Rng rng(GetParam().seed ^ 0xABCDEF);
  for (int walk = 0; walk < 10; ++walk) {
    RepairingState state(context);
    while (true) {
      std::vector<Operation> extensions = state.ValidExtensions();
      if (extensions.empty()) break;
      // CheckedProbabilities CHECK-fails unless the distribution is valid.
      std::vector<Rational> probabilities =
          CheckedProbabilities(uniform_, state, extensions);
      Rational total(0);
      for (const Rational& p : probabilities) {
        ASSERT_FALSE(p.is_negative());
        total += p;
      }
      ASSERT_EQ(total, Rational(1));
      state.ApplyTrusted(extensions[rng.UniformInt(extensions.size())]);
    }
  }
}

TEST_P(ChainPropertyTest, SequencesAreShortAndLegal) {
  auto context = RepairContext::Make(w_.db, w_.constraints);
  // Proposition 2 bound: a repairing sequence eliminates ≥ 1 violation per
  // step and never resurrects, so |s| ≤ total violations ever seen — for
  // these workloads comfortably ≤ |D| + |V(D,Σ)| + a margin.
  size_t initial_violations =
      ComputeViolations(w_.db, w_.constraints).size();
  size_t bound = 2 * (w_.db.size() + initial_violations) + 4;
  Rng rng(GetParam().seed ^ 0x5A5A);
  for (int walk = 0; walk < 10; ++walk) {
    RepairingState state(context);
    size_t steps = 0;
    while (true) {
      std::vector<Operation> extensions = state.ValidExtensions();
      if (extensions.empty()) break;
      const Operation& op = extensions[rng.UniformInt(extensions.size())];
      // Every advertised extension must be accepted by the validator.
      ASSERT_TRUE(state.CanApply(op)) << op.ToString(*w_.schema);
      state.Apply(op);
      ASSERT_LE(++steps, bound) << "sequence exceeded the Prop. 2 bound";
    }
    // Complete sequences are successful or failing, never neither.
    ASSERT_TRUE(state.IsSuccessful() || state.IsFailing());
  }
}

// Delta-state property: at every state of a random walk, applying any
// valid extension and reverting restores current(), violations() and the
// hash exactly.
TEST_P(ChainPropertyTest, ApplyRevertRoundTripsEveryReachedState) {
  auto context = RepairContext::Make(w_.db, w_.constraints);
  Rng rng(GetParam().seed ^ 0xC0FFEE);
  for (int walk = 0; walk < 5; ++walk) {
    RepairingState state(context);
    while (true) {
      std::vector<Operation> extensions = state.ValidExtensions();
      if (extensions.empty()) break;
      Database db_before = state.Snapshot();
      ViolationSet violations_before = state.violations();
      size_t hash_before = state.current().Hash();
      size_t depth_before = state.depth();
      for (const Operation& op : extensions) {
        state.ApplyTrusted(op);
        state.Revert();
        ASSERT_TRUE(state.current() == db_before);
        ASSERT_EQ(state.current().Hash(), hash_before);
        ASSERT_EQ(state.violations(), violations_before);
        ASSERT_EQ(state.depth(), depth_before);
      }
      ASSERT_EQ(state.ValidExtensions(), extensions)
          << "probing extensions must not disturb the state";
      state.ApplyTrusted(extensions[rng.UniformInt(extensions.size())]);
    }
  }
}

TEST_P(ChainPropertyTest, HittingDistributionSumsToOne) {
  EnumerationResult result =
      EnumerateRepairs(w_.db, w_.constraints, uniform_);
  ASSERT_FALSE(result.truncated);
  EXPECT_EQ(result.success_mass + result.failing_mass, Rational(1));
  Rational repair_mass(0);
  for (const RepairInfo& info : result.repairs) {
    EXPECT_GT(info.probability, Rational(0));
    repair_mass += info.probability;
  }
  EXPECT_EQ(repair_mass, result.success_mass);
}

TEST_P(ChainPropertyTest, Proposition4AbcContainment) {
  auto abc = AbcRepairs(w_.db, w_.constraints);
  ASSERT_TRUE(abc.ok()) << abc.status().ToString();
  EnumerationResult chain =
      EnumerateRepairs(w_.db, w_.constraints, uniform_);
  ASSERT_FALSE(chain.truncated);
  std::set<Database> operational;
  for (const RepairInfo& info : chain.repairs) {
    operational.insert(info.repair);
  }
  for (const Database& repair : abc.value()) {
    EXPECT_TRUE(operational.count(repair))
        << "ABC repair missing from M^u repairs: " << repair.ToString();
  }
}

TEST_P(ChainPropertyTest, Proposition8DeletionOnlyNeverFails) {
  DeletionOnlyUniformGenerator deletions_only;
  EnumerationResult result =
      EnumerateRepairs(w_.db, w_.constraints, deletions_only);
  ASSERT_FALSE(result.truncated);
  EXPECT_TRUE(result.failing_mass.is_zero());
  EXPECT_EQ(result.success_mass, Rational(1));
}

TEST_P(ChainPropertyTest, SamplerMatchesExactDistribution) {
  // Denial-only workloads: CP is not conditional (success mass 1), and
  // 3000 walks must land within a loose additive envelope of exact CP.
  if (!IsDenialOnly(w_.constraints)) GTEST_SKIP();
  Result<Query> q = ParseQuery(
      *w_.schema, GetParam().kind == WorkloadKind::kPreference
                      ? "Q(x,y) := Pref(x,y)"
                      : "Q(x,y) := R(x,y)");
  ASSERT_TRUE(q.ok());
  OcaResult exact = ComputeOca(w_.db, w_.constraints, uniform_, *q);
  Sampler sampler(w_.db, w_.constraints, &uniform_,
                  /*seed=*/GetParam().seed * 31 + 7);
  ApproxOcaResult approx = sampler.EstimateOcaWithWalks(*q, 3000);
  EXPECT_EQ(approx.failing_walks, 0u);
  for (const auto& [tuple, p] : exact.answers) {
    EXPECT_NEAR(approx.Estimate(tuple), p.ToDouble(), 0.05)
        << TupleToString(tuple);
  }
}

TEST_P(ChainPropertyTest, ExhaustiveTopKEqualsEnumeration) {
  TopKResult top =
      TopKRepairs(w_.db, w_.constraints, uniform_, /*k=*/1u << 20);
  EnumerationResult exact =
      EnumerateRepairs(w_.db, w_.constraints, uniform_);
  ASSERT_FALSE(exact.truncated);
  ASSERT_TRUE(top.exact);
  ASSERT_EQ(top.repairs.size(), exact.repairs.size());
  for (size_t i = 0; i < top.repairs.size(); ++i) {
    EXPECT_EQ(top.repairs[i].repair, exact.repairs[i].repair);
    EXPECT_EQ(top.repairs[i].probability, exact.repairs[i].probability);
  }
  EXPECT_EQ(top.explored_failing_mass, exact.failing_mass);
}

TEST_P(ChainPropertyTest, ChaseAlwaysReachesConsistency) {
  Rng rng(GetParam().seed ^ 0xC0FFEE);
  for (int run = 0; run < 10; ++run) {
    Rng child = rng.Fork();
    auto chased = ChaseRepair(w_.db, w_.constraints, &child);
    ASSERT_TRUE(chased.ok()) << chased.status().ToString();
    EXPECT_TRUE(Satisfies(chased.value().db, w_.constraints));
    // Denial-only constraints never need nulls.
    if (IsDenialOnly(w_.constraints)) {
      EXPECT_EQ(chased.value().nulls_created, 0u);
    }
  }
}

TEST_P(ChainPropertyTest, LocalizationMatchesMonolithic) {
  if (!IsDenialOnly(w_.constraints)) GTEST_SKIP();
  auto localized = LocalizeAndEnumerate(w_.db, w_.constraints, uniform_);
  ASSERT_TRUE(localized.ok()) << localized.status().ToString();
  EnumerationResult monolithic =
      EnumerateRepairs(w_.db, w_.constraints, uniform_);
  ASSERT_FALSE(monolithic.truncated);
  // Per-fact survival marginals must agree exactly.
  for (const Fact& fact : w_.db.AllFacts()) {
    Rational direct(0);
    for (const RepairInfo& info : monolithic.repairs) {
      if (info.repair.Contains(fact)) direct += info.probability;
    }
    EXPECT_EQ(localized.value().FactSurvivalProbability(fact), direct)
        << fact.ToString(*w_.schema);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChainPropertyTest,
    ::testing::Values(GridParam{WorkloadKind::kPreference, 1},
                      GridParam{WorkloadKind::kPreference, 2},
                      GridParam{WorkloadKind::kPreference, 3},
                      GridParam{WorkloadKind::kKey, 1},
                      GridParam{WorkloadKind::kKey, 2},
                      GridParam{WorkloadKind::kKey, 3},
                      GridParam{WorkloadKind::kTrustKey, 4},
                      GridParam{WorkloadKind::kInclusion, 1},
                      GridParam{WorkloadKind::kInclusion, 2}),
    GridName);

// ---------------------------------------------------------------------
// Generator-specific sweeps on one fixed instance.
// ---------------------------------------------------------------------

class GeneratorSweepTest
    : public ::testing::TestWithParam<const ChainGenerator*> {};

const UniformChainGenerator kUniform;
const DeletionOnlyUniformGenerator kDeletionsOnly;

TEST_P(GeneratorSweepTest, DistributionInvariantsOnKeyWorkload) {
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 2, 2, /*seed=*/13);
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, *GetParam());
  ASSERT_FALSE(result.truncated);
  EXPECT_EQ(result.success_mass + result.failing_mass, Rational(1));
  // Denial-only: every leaf is consistent regardless of generator.
  EXPECT_TRUE(result.failing_mass.is_zero());
  EXPECT_GE(result.repairs.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Generators, GeneratorSweepTest,
                         ::testing::Values(&kUniform, &kDeletionsOnly));

// ---------------------------------------------------------------------
// Trust-generator sweep: survival monotone in trust (Example 5 shape).
// ---------------------------------------------------------------------

TEST(TrustSweepProperty, SurvivalIsMonotoneInTrust) {
  gen::Workload w = gen::PaperKeyPairExample();
  Fact ab = Fact::Make(*w.schema, "R", {"a", "b"});
  Fact ac = Fact::Make(*w.schema, "R", {"a", "c"});
  double previous = -1;
  for (int tenths = 1; tenths <= 9; ++tenths) {
    std::map<Fact, Rational> trust = {{ab, Rational(tenths, 10)},
                                      {ac, Rational(10 - tenths, 10)}};
    TrustChainGenerator generator(trust, Rational(1, 2));
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    Database keep_ab(w.schema.get());
    keep_ab.Insert(ab);
    double survival = result.ProbabilityOf(keep_ab).ToDouble();
    EXPECT_GT(survival, previous) << "trust " << tenths << "/10";
    previous = survival;
  }
}

// Priority generator: minimal-change ranking prunes pair deletions.
TEST(PrioritySweepProperty, MinimalChangePrefersSingletons) {
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 3, 2, /*seed=*/21);
  PriorityChainGenerator generator = PriorityChainGenerator::MinimalChange();
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, generator);
  ASSERT_FALSE(result.truncated);
  // Every reached repair deletes exactly one fact per conflicting group —
  // i.e. has |D| − 3 facts; the pair-deletion repairs carry zero mass.
  for (const RepairInfo& info : result.repairs) {
    EXPECT_EQ(info.repair.size(), w.db.size() - 3);
  }
}

}  // namespace
}  // namespace opcqa
