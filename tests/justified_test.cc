// Tests for justified operations — Definition 3, Proposition 1, and the
// worked Example 1 of the paper.

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "gen/workloads.h"
#include "relational/fact_parser.h"
#include "repair/justified.h"

namespace opcqa {
namespace {

// Fixture around the paper's Example 1:
// D = {R(a,b), R(a,c), T(a,b)}, σ = R(x,y) → ∃z S(x,y,z),
// η = R(x,y), R(x,z) → y = z.
class Example1Test : public ::testing::Test {
 protected:
  Example1Test()
      : w_(gen::PaperExample1()),
        base_(BaseSpec::ForDatabase(w_.db, ConstantsOf(w_.constraints))),
        violations_(ComputeViolations(w_.db, w_.constraints)) {}

  Fact R(const char* a, const char* b) {
    return Fact::Make(*w_.schema, "R", {a, b});
  }
  Fact S(const char* a, const char* b, const char* c) {
    return Fact::Make(*w_.schema, "S", {a, b, c});
  }
  Fact T(const char* a, const char* b) {
    return Fact::Make(*w_.schema, "T", {a, b});
  }

  bool Has(const std::vector<Operation>& ops, const Operation& op) {
    return std::find(ops.begin(), ops.end(), op) != ops.end();
  }

  gen::Workload w_;
  BaseSpec base_;
  ViolationSet violations_;
};

TEST_F(Example1Test, SingleAtomTgdCompletionIsJustified) {
  // +S(a,b,c) is fixing and justified (adds exactly one witness).
  EXPECT_TRUE(IsJustified(w_.db, w_.constraints, base_,
                          Operation::Add({S("a", "b", "c")})));
}

TEST_F(Example1Test, OversizedAdditionIsNotJustified) {
  // op1 = +{S(a,b,c), S(a,a,a)} is fixing but NOT justified: the paper's
  // point — there is no justification for adding S(a,a,a).
  EXPECT_FALSE(IsJustified(w_.db, w_.constraints, base_,
                           Operation::Add({S("a", "b", "c"),
                                           S("a", "a", "a")})));
}

TEST_F(Example1Test, DeletionWithUninvolvedFactIsNotJustified) {
  // op2 = −{R(a,b), T(a,b)} is fixing but unjustified: T(a,b) does not
  // contribute to any violation.
  EXPECT_FALSE(IsJustified(w_.db, w_.constraints, base_,
                           Operation::Remove({R("a", "b"), T("a", "b")})));
}

TEST_F(Example1Test, PaperListedJustifiedDeletions) {
  // The example names −R(a,b), −R(a,c) and −{R(a,b), R(a,c)} as justified.
  EXPECT_TRUE(IsJustified(w_.db, w_.constraints, base_,
                          Operation::Remove({R("a", "b")})));
  EXPECT_TRUE(IsJustified(w_.db, w_.constraints, base_,
                          Operation::Remove({R("a", "c")})));
  EXPECT_TRUE(IsJustified(w_.db, w_.constraints, base_,
                          Operation::Remove({R("a", "b"), R("a", "c")})));
}

TEST_F(Example1Test, DeletingUninvolvedFactAloneIsNotJustified) {
  EXPECT_FALSE(IsJustified(w_.db, w_.constraints, base_,
                           Operation::Remove({T("a", "b")})));
}

TEST_F(Example1Test, EnumerationContainsExactlyTheJustifiedOps) {
  std::vector<Operation> ops =
      JustifiedOperations(w_.db, w_.constraints, violations_, base_);
  // Deletions: subsets of {R(a,b)}, {R(a,c)} (σ violations, single-fact
  // images) and of {R(a,b),R(a,c)} (η): −R(a,b), −R(a,c), −{both} → 3.
  EXPECT_TRUE(Has(ops, Operation::Remove({R("a", "b")})));
  EXPECT_TRUE(Has(ops, Operation::Remove({R("a", "c")})));
  EXPECT_TRUE(Has(ops, Operation::Remove({R("a", "b"), R("a", "c")})));
  // Every enumerated op passes the decision procedure.
  for (const Operation& op : ops) {
    EXPECT_TRUE(IsJustified(w_.db, w_.constraints, base_, op))
        << op.ToString(*w_.schema);
  }
  // No addition ever includes more than one S-fact (single-atom head).
  for (const Operation& op : ops) {
    if (op.is_add()) {
      EXPECT_EQ(op.size(), 1u) << op.ToString(*w_.schema);
    }
  }
}

TEST_F(Example1Test, AdditionWitnessesRangeOverBaseDomain) {
  std::vector<Operation> ops =
      JustifiedOperations(w_.db, w_.constraints, violations_, base_);
  // dom(B) = {a,b,c}; σ violated for (a,b) and (a,c): 3 witnesses each.
  size_t additions = 0;
  for (const Operation& op : ops) {
    if (!op.is_add()) continue;
    ++additions;
    for (const Fact& fact : op.facts()) {
      EXPECT_TRUE(base_.Contains(fact));
    }
  }
  EXPECT_EQ(additions, 6u);
}

TEST_F(Example1Test, JustifiedDeletionsSubsetOfJustifiedOperations) {
  std::vector<Operation> deletions =
      JustifiedDeletions(w_.db, w_.constraints, violations_);
  std::vector<Operation> all =
      JustifiedOperations(w_.db, w_.constraints, violations_, base_);
  for (const Operation& op : deletions) {
    EXPECT_TRUE(op.is_remove());
    EXPECT_TRUE(Has(all, op)) << op.ToString(*w_.schema);
  }
}

TEST_F(Example1Test, NothingJustifiedOnConsistentDatabase) {
  Database consistent = *ParseDatabase(
      *w_.schema, "R(a,b). S(a,b,c).");
  ViolationSet none = ComputeViolations(consistent, w_.constraints);
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(JustifiedOperations(consistent, w_.constraints, none, base_)
                  .empty());
  EXPECT_FALSE(IsJustified(consistent, w_.constraints, base_,
                           Operation::Remove({R("a", "b")})));
}

// Multi-atom head TGDs: the paper notes single-atom insertions may not
// suffice — justified additions must add the full missing witness set.
TEST(JustifiedMultiHeadTest, MultiAtomHeadAddsSetOfAtoms) {
  Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 3);
  schema.AddRelation("T", 2);
  Database db = *ParseDatabase(schema, "R(a,b).");
  ConstraintSet sigma = *opcqa::ParseConstraints(
      schema, "R(x,y) -> exists z: S(x,y,z), T(x,z)");
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  ViolationSet violations = ComputeViolations(db, sigma);
  ASSERT_EQ(violations.size(), 1u);
  std::vector<Operation> ops =
      JustifiedOperations(db, sigma, violations, base);
  ASSERT_FALSE(ops.empty());
  size_t additions = 0;
  for (const Operation& op : ops) {
    if (!op.is_add()) continue;  // the deletion −R(a,b) is justified too
    ++additions;
    EXPECT_EQ(op.size(), 2u) << op.ToString(schema);  // S-fact + T-fact
  }
  EXPECT_GT(additions, 0u);
}

// Partial witnesses shrink the completion: only the missing atoms count.
TEST(JustifiedMultiHeadTest, PartialWitnessYieldsSmallerCompletion) {
  Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 3);
  schema.AddRelation("T", 2);
  Database db = *ParseDatabase(schema, "R(a,b). T(a,b).");
  ConstraintSet sigma = *opcqa::ParseConstraints(
      schema, "R(x,y) -> exists z: S(x,y,z), T(x,z)");
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  ViolationSet violations = ComputeViolations(db, sigma);
  std::vector<Operation> ops =
      JustifiedOperations(db, sigma, violations, base);
  // Completions over dom(B) = {a,b}: witness z=b reuses the present T(a,b)
  // and adds only S(a,b,b); witness z=a needs {S(a,b,a), T(a,a)}. The two
  // are ⊆-incomparable, so both are justified (minimality is subset-, not
  // size-based). Plus the deletion −R(a,b).
  ASSERT_EQ(ops.size(), 3u);
  bool found_single_add = false, found_double_add = false;
  for (const Operation& op : ops) {
    if (!op.is_add()) continue;
    if (op.size() == 1) {
      EXPECT_EQ(op.facts()[0], Fact::Make(schema, "S", {"a", "b", "b"}));
      found_single_add = true;
    } else {
      EXPECT_EQ(op.size(), 2u);
      found_double_add = true;
    }
  }
  EXPECT_TRUE(found_single_add);
  EXPECT_TRUE(found_double_add);
}

TEST(DeletionCandidateIndexTest, MatchesJustifiedDeletionsOnEverySubset) {
  // The index must reproduce JustifiedDeletions byte-for-byte — same
  // operations, same order — for every violation subset a denial-only
  // walk can reach (violations only disappear along deletion chains).
  gen::Workload w = gen::MakeKeyViolationWorkload(3, 2, 2, /*seed=*/9);
  ViolationSet all = ComputeViolations(w.db, w.constraints);
  ASSERT_GE(all.size(), 3u);
  ASSERT_LE(all.size(), 12u);  // keep the 2^n subset sweep fast
  std::shared_ptr<const DeletionCandidateIndex> index =
      DeletionCandidateIndex::Build(w.constraints, all);
  EXPECT_EQ(index->num_violations(), all.size());

  std::vector<Violation> ordered(all.begin(), all.end());
  for (size_t mask = 0; mask < (size_t{1} << ordered.size()); ++mask) {
    ViolationSet subset;
    for (size_t i = 0; i < ordered.size(); ++i) {
      if (mask & (size_t{1} << i)) subset.insert(ordered[i]);
    }
    std::vector<Operation> indexed;
    ASSERT_TRUE(index->AppendFor(subset, &indexed));
    EXPECT_EQ(indexed, JustifiedDeletions(w.db, w.constraints, subset));
  }
}

TEST(DeletionCandidateIndexTest, UnindexedViolationFallsBack) {
  gen::Workload w = gen::MakeKeyViolationWorkload(2, 2, 2, /*seed=*/1);
  ViolationSet all = ComputeViolations(w.db, w.constraints);
  ASSERT_GE(all.size(), 2u);
  // Index only the first violation; asking for both must refuse (the
  // caller then recomputes from scratch) and leave the output untouched.
  ViolationSet first_only;
  first_only.insert(*all.begin());
  std::shared_ptr<const DeletionCandidateIndex> index =
      DeletionCandidateIndex::Build(w.constraints, first_only);
  std::vector<Operation> ops;
  EXPECT_FALSE(index->AppendFor(all, &ops));
  EXPECT_TRUE(ops.empty());
  EXPECT_TRUE(index->AppendFor(first_only, &ops));
  EXPECT_EQ(ops, JustifiedDeletions(w.db, w.constraints, first_only));
}

TEST(JustifiedEgdTest, EgdAdmitsOnlyDeletions) {
  Schema schema;
  schema.AddRelation("R", 2);
  Database db = *ParseDatabase(schema, "R(a,b). R(a,c).");
  ConstraintSet sigma =
      *opcqa::ParseConstraints(schema, "R(x,y), R(x,z) -> y = z");
  BaseSpec base = BaseSpec::ForDatabase(db, {});
  ViolationSet violations = ComputeViolations(db, sigma);
  std::vector<Operation> ops =
      JustifiedOperations(db, sigma, violations, base);
  EXPECT_EQ(ops.size(), 3u);
  for (const Operation& op : ops) {
    EXPECT_TRUE(op.is_remove());
  }
}

}  // namespace
}  // namespace opcqa
