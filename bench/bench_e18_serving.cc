// Experiment 18 — multi-tenant serving over one shared repair-space
// cache (src/server/ocqa_server.h). No counterpart in the paper: the
// paper proves exact OCQA is FP^#P-hard per query, which is precisely
// why a *service* cannot afford to pay the chain walk per request.
//
// The load generator replays a root-skewed mixed trace (reads, certain
// queries, top-k, a few mutations) through three execution models:
//
//   per-request baseline   a fresh session (cold private cache) per
//                          request — what N independent CLI callers pay
//   single-session replay  one session per tenant, strictly serial —
//                          the byte-identity reference
//   OcqaServer             concurrent units over the shared cache, with
//                          root-level batching and the planner fast lane
//
// Headline claim (ISSUE 7): batched serving ≥3x the aggregate
// throughput of the per-request baseline, answers byte-identical to the
// single-session serial replay. On a single-core machine the speedup is
// pure cache amortization (one memoized walk per root instead of one
// walk per request); extra cores add concurrency across tenants on top.
//
// Sweep (OPCQA_BENCH_SWEEP=1) → BENCH_e18_serving_latency.json with
// throughput and p50/p95/p99 per worker count, plus the PR 10 registry
// overhead A/B (metrics on vs off, hard-gated at 3%). The
// google-benchmark rows (BM_Serving*) feed the pr7_serve_p95_ms and
// pr10_obs_overhead_ms regression gates
// (bench/results/BENCH_e18_serving.json, bench/check_regression.py).
//
// Failpoint builds (-DOPCQA_FAILPOINTS=ON) additionally expose the
// chaos-recovery section (OPCQA_BENCH_CHAOS=1 → pr8_chaos_recovery_ms):
// the same served trace with ~10% of disk-tier spill attempts failing
// transiently must answer byte-identically and stay within 2x the clean
// serve+persist wall clock. The CI failpoints job runs it; stock builds
// compile none of it.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/workloads.h"
#include "server/ocqa_server.h"
#include "server/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace {

using namespace opcqa;

// ---------------------------------------------------------------------
// Workload spec: database scale + traffic shape (tenant count,
// read/write mix, root skew) + client pipeline depth.
// ---------------------------------------------------------------------

struct ServingWorkloadSpec {
  // Database scale: MakeKeyViolationWorkload(keys, violating, group).
  // (5,4,2) keeps a full cold walk in the low milliseconds, so the
  // per-request baseline finishes in seconds while the cache gap stays
  // far above timer noise.
  size_t keys = 5;
  size_t violating = 4;
  size_t group = 2;
  uint64_t db_seed = 7;
  /// Traffic shape; see server/trace.h.
  server::TraceSpec trace;
  /// Closed-loop client pipeline depth: each tenant's client submits
  /// `burst` requests before waiting. A burst of same-root reads is
  /// exactly the window root-level batching amortizes.
  size_t burst = 4;
};

ServingWorkloadSpec MixedRootSkewSpec() {
  ServingWorkloadSpec spec;
  spec.trace.tenants = 6;
  spec.trace.requests = 96;
  spec.trace.write_fraction = 0.05;
  spec.trace.certain_fraction = 0.2;
  spec.trace.topk_fraction = 0.05;
  spec.trace.hot_root_fraction = 0.85;
  spec.trace.seed = 18;
  return spec;
}

server::ServerOptions ServingOptions(size_t workers) {
  server::ServerOptions options;
  options.workers = workers;
  // The trace alternates insert/erase, so tenants oscillate between the
  // shared base root and a few per-tenant variants; 32 roots keeps them
  // all resident (pressure behavior is bench-irrelevant here and has its
  // own test, tests/server_test.cc).
  options.cache.max_roots = 32;
  return options;
}

// ---------------------------------------------------------------------
// Closed-loop burst clients.
// ---------------------------------------------------------------------

struct LoadResult {
  std::vector<server::Response> responses;
  std::vector<double> latencies_ms;  // burst submit → response observed
  double wall_ms = 0;
};

/// One client thread per tenant, submitting its trace slice in bursts
/// and waiting the burst out before the next — a pipelined client, the
/// shape real serving traffic has. Latency is measured per request from
/// its burst's submit instant to its future resolving.
LoadResult RunLoad(server::OcqaServer& srv,
                   const std::vector<server::Request>& trace, size_t burst) {
  std::map<std::string, std::vector<server::Request>> per_tenant;
  for (const server::Request& request : trace) {
    per_tenant[request.tenant].push_back(request);
  }

  LoadResult out;
  std::mutex mutex;
  bench::Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(per_tenant.size());
  for (auto& [tenant, requests] : per_tenant) {
    std::vector<server::Request>* slice = &requests;
    clients.emplace_back([&srv, &mutex, &out, slice, burst] {
      std::vector<server::Response> responses;
      std::vector<double> latencies;
      responses.reserve(slice->size());
      latencies.reserve(slice->size());
      for (size_t i = 0; i < slice->size(); i += burst) {
        size_t end = std::min(slice->size(), i + burst);
        std::vector<std::future<server::Response>> futures;
        futures.reserve(end - i);
        auto start = std::chrono::steady_clock::now();
        for (size_t j = i; j < end; ++j) {
          futures.push_back(srv.Submit((*slice)[j]));
        }
        for (std::future<server::Response>& future : futures) {
          responses.push_back(future.get());
          latencies.push_back(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
        }
      }
      std::lock_guard<std::mutex> lock(mutex);
      for (server::Response& response : responses) {
        out.responses.push_back(std::move(response));
      }
      out.latencies_ms.insert(out.latencies_ms.end(), latencies.begin(),
                              latencies.end());
    });
  }
  for (std::thread& client : clients) client.join();
  out.wall_ms = wall.ElapsedMs();
  return out;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p / 100.0 *
                                     static_cast<double>(values.size()));
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

double ThroughputPerSec(size_t requests, double wall_ms) {
  return wall_ms <= 0 ? 0 : 1000.0 * static_cast<double>(requests) / wall_ms;
}

// ---------------------------------------------------------------------
// Sweep: throughput + latency percentiles per worker count, vs the two
// serial replays (→ BENCH_e18_serving_latency.json).
// ---------------------------------------------------------------------

void RecordServingSweep() {
  bench::Header("e18_serving_latency",
                "Multi-tenant serving: throughput and latency vs the "
                "sequential per-request baseline (root-skewed mixed "
                "trace, 6 tenants)");
  bench::MarkThreadSweep();  // worker counts vary across rows

  ServingWorkloadSpec spec = MixedRootSkewSpec();
  gen::Workload w = gen::MakeKeyViolationWorkload(
      spec.keys, spec.violating, spec.group, spec.db_seed);
  std::vector<server::Request> trace = server::GenerateTrace(w, spec.trace);

  // Sequential per-request baseline: every request pays a fresh session.
  double per_request_ms = 1e300;
  std::string baseline_rendered;
  for (int rep = 0; rep < 3; ++rep) {
    bench::Timer timer;
    std::vector<server::Response> responses = server::ReplaySerial(
        w, trace, server::ReplayMode::kSessionPerRequest);
    per_request_ms = std::min(per_request_ms, timer.ElapsedMs());
    baseline_rendered = server::RenderResponses(std::move(responses));
  }
  char measured[160];
  std::snprintf(measured, sizeof(measured), "%.2f ms (%.0f req/s)",
                per_request_ms,
                ThroughputPerSec(trace.size(), per_request_ms));
  bench::Row("serial per-request baseline", "n/a (ours)", measured);

  // Single-session serial replay: the byte-identity reference.
  double replay_ms = 1e300;
  std::string reference_rendered;
  for (int rep = 0; rep < 3; ++rep) {
    bench::Timer timer;
    std::vector<server::Response> responses = server::ReplaySerial(
        w, trace, server::ReplayMode::kSessionPerTenant);
    replay_ms = std::min(replay_ms, timer.ElapsedMs());
    reference_rendered = server::RenderResponses(std::move(responses));
  }
  OPCQA_CHECK(baseline_rendered == reference_rendered)
      << "the two serial replays disagree — the cache changed answers";
  std::snprintf(measured, sizeof(measured), "%.2f ms (%.0f req/s)",
                replay_ms, ThroughputPerSec(trace.size(), replay_ms));
  bench::Row("serial single-session replay", "n/a (ours)", measured);

  double best_speedup = 0;
  for (size_t workers : {1, 2, 4}) {
    double wall_ms = 1e300;
    LoadResult best;
    uint64_t batches = 0, walks = 0, replays = 0, fast = 0;
    for (int rep = 0; rep < 3; ++rep) {
      server::OcqaServer srv(w.db, w.constraints, ServingOptions(workers));
      LoadResult load = RunLoad(srv, trace, spec.burst);
      std::string rendered = server::RenderResponses(load.responses);
      OPCQA_CHECK(rendered == reference_rendered)
          << "served answers diverge from the serial replay "
          << "(workers=" << workers << ")";
      if (load.wall_ms < wall_ms) {
        wall_ms = load.wall_ms;
        best = std::move(load);
        server::ServerStats stats = srv.Stats();
        batches = stats.batches;
        walks = stats.walks;
        replays = stats.replays;
        fast = stats.rewriting_fast_path;
      }
    }
    double speedup = per_request_ms / wall_ms;
    best_speedup = std::max(best_speedup, speedup);
    std::snprintf(measured, sizeof(measured),
                  "%.2f ms (%.0f req/s, %.1fx vs per-request)", wall_ms,
                  ThroughputPerSec(trace.size(), wall_ms), speedup);
    bench::Row("OcqaServer workers=" + std::to_string(workers),
               "n/a (ours)", measured);
    std::snprintf(measured, sizeof(measured), "%.2f / %.2f / %.2f ms",
                  Percentile(best.latencies_ms, 50),
                  Percentile(best.latencies_ms, 95),
                  Percentile(best.latencies_ms, 99));
    bench::Row("  latency p50/p95/p99 (workers=" + std::to_string(workers) +
                   ")",
               "n/a (ours)", measured);
    if (workers == 1) {
      std::snprintf(measured, sizeof(measured),
                    "%llu batches, %llu walks, %llu replays, %llu "
                    "rewriting fast-path",
                    static_cast<unsigned long long>(batches),
                    static_cast<unsigned long long>(walks),
                    static_cast<unsigned long long>(replays),
                    static_cast<unsigned long long>(fast));
      bench::Row("  amortization (workers=1)", "n/a (ours)", measured);
    }
  }

  OPCQA_CHECK(best_speedup >= 3.0)
      << "serving speedup fell below the 3x acceptance floor: "
      << best_speedup << "x";

  // Registry overhead A/B (PR 10): the metrics registry is always on in
  // production, so its cost must stay within 3% of serving wall clock.
  // Same trace, registry enabled vs the set_enabled(false) kill switch
  // (the switch exists only for this measurement), min-of-5 each. The
  // +3 ms floor keeps the ratio meaningful when the wall clock is down
  // in scheduler-noise territory.
  {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    auto serve_wall = [&]() {
      double wall = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        server::OcqaServer srv(w.db, w.constraints, ServingOptions(2));
        LoadResult load = RunLoad(srv, trace, spec.burst);
        OPCQA_CHECK(server::RenderResponses(load.responses) ==
                    reference_rendered)
            << "served answers diverged during the registry A/B";
        wall = std::min(wall, load.wall_ms);
      }
      return wall;
    };
    double on_ms = serve_wall();
    registry.set_enabled(false);
    double off_ms = serve_wall();
    registry.set_enabled(true);
    std::snprintf(measured, sizeof(measured),
                  "%.2f ms on vs %.2f ms off (%+.2f%%)", on_ms, off_ms,
                  100.0 * (on_ms / std::max(off_ms, 1e-6) - 1.0));
    bench::Row("pr10_obs_overhead_ms (registry on/off)", "n/a (ours)",
               measured);
    OPCQA_CHECK(on_ms <= off_ms * 1.03 + 3.0)
        << "metrics registry overhead exceeded the 3% budget: " << on_ms
        << " ms on vs " << off_ms << " ms off";
  }

  bench::Note("answers byte-identical across all three execution models "
              "(checked every run above; also tests/server_test.cc and "
              "the CI serve-trace e2e)");
  bench::Note("single-core machines get the full cache-amortization "
              "speedup (one walk per root, then replays); worker counts "
              "beyond 1 only add wall-clock once hardware_concurrency "
              "> 1 — see the single_core field of this file");
}

// ---------------------------------------------------------------------
// Chaos recovery (failpoint builds only): serving with a disk tier whose
// spill path fails ~10% of the time must degrade in counters, not in
// answers or wall clock (pr8_chaos_recovery_ms, gated at 2x clean).
// ---------------------------------------------------------------------

#ifdef OPCQA_FAILPOINTS

void RecordChaosRecovery() {
  bench::Header("e18_chaos_recovery",
                "Serving under injected faults: mixed trace + disk tier "
                "with ~10% of spill attempts failing transiently, vs the "
                "same run clean (pr8_chaos_recovery_ms)");

  ServingWorkloadSpec spec = MixedRootSkewSpec();
  gen::Workload w = gen::MakeKeyViolationWorkload(
      spec.keys, spec.violating, spec.group, spec.db_seed);
  std::vector<server::Request> trace = server::GenerateTrace(w, spec.trace);
  std::string reference = server::RenderResponses(server::ReplaySerial(
      w, trace, server::ReplayMode::kSessionPerTenant));

  namespace fs = std::filesystem;
  const fs::path tier =
      fs::temp_directory_path() /
      ("opcqa-bench-chaos-" + std::to_string(static_cast<long>(::getpid())));

  // One serve-and-persist pass over a cold disk tier. The wall clock
  // covers the load AND the spills — the injected faults land on the
  // spill path, so excluding persistence would hide exactly the cost the
  // gate is about.
  struct ChaosRun {
    double wall_ms = 0;
    uint64_t spills = 0;
    uint64_t failed_spills = 0;
  };
  auto serve_once = [&]() {
    std::error_code ec;
    fs::remove_all(tier, ec);  // cold tier every rep: equal work
    server::ServerOptions options = ServingOptions(2);
    options.cache.snapshot_dir = tier.string();
    server::OcqaServer srv(w.db, w.constraints, options);
    bench::Timer timer;
    LoadResult load = RunLoad(srv, trace, spec.burst);
    srv.PersistCache();
    ChaosRun run;
    run.wall_ms = timer.ElapsedMs();
    server::ServerStats stats = srv.Stats();
    run.spills = stats.disk.spills;
    run.failed_spills = stats.disk.failed_spills;
    OPCQA_CHECK(server::RenderResponses(load.responses) == reference)
        << "served answers diverged from the serial replay under "
        << (run.failed_spills > 0 ? "injected spill faults" : "a clean run");
    return run;
  };

  char measured[160];
  double clean_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    clean_ms = std::min(clean_ms, serve_once().wall_ms);
  }
  std::snprintf(measured, sizeof(measured), "%.2f ms", clean_ms);
  bench::Row("clean serve + persist", "n/a (ours)", measured);

  FailpointSpec fault;
  fault.action = FailpointAction::kError;
  fault.probability = 0.10;
  double faulty_ms = 1e300;
  uint64_t failed = 0, attempts = 0;
  for (int rep = 0; rep < 3; ++rep) {
    // Fresh seed per rep: different spill attempts fail each time, but
    // each rep is reproducible from its (seed, spec) pair.
    FailpointRegistry::Global().SetSeed(0x18C0 +
                                        static_cast<uint64_t>(rep));
    FailpointScope scope("repair_cache.spill", fault);
    ChaosRun run = serve_once();
    faulty_ms = std::min(faulty_ms, run.wall_ms);
    failed += run.failed_spills;
    attempts += run.spills + run.failed_spills;
  }
  std::error_code ec;
  fs::remove_all(tier, ec);

  std::snprintf(measured, sizeof(measured),
                "%.2f ms (%.2fx clean; %llu/%llu spill attempts failed "
                "across 3 reps)",
                faulty_ms, faulty_ms / std::max(clean_ms, 1e-6),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(attempts));
  bench::Row("pr8_chaos_recovery_ms", "n/a (ours)", measured);

  // Hard gate: degradation must be graceful in time, not just in
  // answers. The +5 ms floor keeps the ratio meaningful when the clean
  // wall is down in scheduler-noise territory.
  OPCQA_CHECK(faulty_ms <= 2.0 * clean_ms + 5.0)
      << "chaos recovery exceeded the 2x ceiling: " << faulty_ms
      << " ms faulted vs " << clean_ms << " ms clean";
  bench::Note("answers byte-identical to the serial replay in every run "
              "above, clean and faulted alike; failed spills are counted "
              "(failed_spills) and the affected roots restore cold in the "
              "next process instead of warm");
}

#endif  // OPCQA_FAILPOINTS

// ---------------------------------------------------------------------
// google-benchmark rows — the CI bench-smoke + regression-gate surface.
// ---------------------------------------------------------------------

// Aggregate serving throughput, whole trace per iteration (server build
// included: a serving iteration that hid warmup would overstate
// steady-state throughput less than it would understate cold start).
void BM_ServingThroughput(benchmark::State& state) {
  ServingWorkloadSpec spec = MixedRootSkewSpec();
  gen::Workload w = gen::MakeKeyViolationWorkload(
      spec.keys, spec.violating, spec.group, spec.db_seed);
  std::vector<server::Request> trace = server::GenerateTrace(w, spec.trace);
  std::vector<double> latencies;
  for (auto _ : state) {
    server::OcqaServer srv(
        w.db, w.constraints,
        ServingOptions(static_cast<size_t>(state.range(0))));
    LoadResult load = RunLoad(srv, trace, spec.burst);
    latencies = std::move(load.latencies_ms);
    benchmark::DoNotOptimize(load.responses);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(trace.size() * state.iterations()));
  state.counters["workers"] = static_cast<double>(state.range(0));
  state.counters["p50_ms"] = Percentile(latencies, 50);
  state.counters["p95_ms"] = Percentile(latencies, 95);
  state.counters["p99_ms"] = Percentile(latencies, 99);
}
BENCHMARK(BM_ServingThroughput)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The sequential per-request baseline the 3x claim divides by.
void BM_ServingSerialPerRequest(benchmark::State& state) {
  ServingWorkloadSpec spec = MixedRootSkewSpec();
  gen::Workload w = gen::MakeKeyViolationWorkload(
      spec.keys, spec.violating, spec.group, spec.db_seed);
  std::vector<server::Request> trace = server::GenerateTrace(w, spec.trace);
  for (auto _ : state) {
    std::vector<server::Response> responses = server::ReplaySerial(
        w, trace, server::ReplayMode::kSessionPerRequest);
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(trace.size() * state.iterations()));
}
BENCHMARK(BM_ServingSerialPerRequest)->Unit(benchmark::kMillisecond);

// p95 request latency as the measured time (manual timing), so the
// regression gate watches the latency tail itself, not just aggregate
// throughput — batching bugs that stall individual requests show up
// here first.
void BM_ServingP95(benchmark::State& state) {
  ServingWorkloadSpec spec = MixedRootSkewSpec();
  gen::Workload w = gen::MakeKeyViolationWorkload(
      spec.keys, spec.violating, spec.group, spec.db_seed);
  std::vector<server::Request> trace = server::GenerateTrace(w, spec.trace);
  for (auto _ : state) {
    server::OcqaServer srv(w.db, w.constraints, ServingOptions(1));
    LoadResult load = RunLoad(srv, trace, spec.burst);
    state.SetIterationTime(Percentile(load.latencies_ms, 95) / 1000.0);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(trace.size() * state.iterations()));
}
BENCHMARK(BM_ServingP95)->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace

int main(int argc, char** argv) {
  const char* sweep = std::getenv("OPCQA_BENCH_SWEEP");
  if (sweep != nullptr && *sweep != '\0' && *sweep != '0') {
    RecordServingSweep();
  }
#ifdef OPCQA_FAILPOINTS
  const char* chaos = std::getenv("OPCQA_BENCH_CHAOS");
  if (chaos != nullptr && *chaos != '\0' && *chaos != '0') {
    RecordChaosRecovery();
  }
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
