// E2 — Reproduces Example 6: the four operational repairs of the
// preference database and their exact probabilities.

#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "repair/preference_generator.h"
#include "repair/repair_enumerator.h"

int main() {
  using namespace opcqa;
  bench::Header("E2", "Example 6: repair distribution [[D]]_MΣ");

  gen::Workload w = gen::PaperPreferenceExample();
  PreferenceChainGenerator generator(w.schema->RelationOrDie("Pref"));
  EnumerationResult result =
      EnumerateRepairs(w.db, w.constraints, generator);

  bench::Note("paper (Example 6):");
  bench::Note("  P(D-{(a,b),(a,c)}) = 2/9·1/3 + 1/9·2/4");
  bench::Note("  P(D-{(a,b),(c,a)}) = 2/9·2/3 + 3/9·2/5");
  bench::Note("  P(D-{(b,a),(a,c)}) = 3/9·1/4 + 1/9·2/4");
  bench::Note("  P(D-{(b,a),(c,a)}) = 3/9·3/4 + 3/9·3/5 = 9/20 = 0.45");
  std::printf("\nmeasured ([[D]]_MΣ, most probable first):\n");
  for (const RepairInfo& info : result.repairs) {
    std::printf("  p = %-8s (≈ %.6f, via %zu sequences): { %s }\n",
                info.probability.ToString().c_str(),
                info.probability.ToDouble(), info.num_sequences,
                info.repair.ToString().c_str());
  }
  std::printf("\n  success mass  = %s\n",
              result.success_mass.ToString().c_str());
  std::printf("  failing mass  = %s\n",
              result.failing_mass.ToString().c_str());
  std::printf("  chain states  = %zu, absorbing = %zu, max depth = %zu\n",
              result.states_visited, result.absorbing_states,
              result.max_depth);

  // Cross-check the headline number.
  Rational headline = Rational(3, 9) * Rational(3, 4) +
                      Rational(3, 9) * Rational(3, 5);
  bench::Row("P(D - {Pref(b,a), Pref(c,a)})", "0.45",
             result.repairs.front().probability.ToString() + " = " +
                 std::to_string(result.repairs.front().probability.ToDouble()));
  if (result.repairs.front().probability != headline) {
    bench::Note("MISMATCH against Example 6!");
    return 1;
  }
  return 0;
}
