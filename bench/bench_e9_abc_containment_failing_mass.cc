// E9 — Proposition 4 (every ABC repair is an operational repair under the
// uniform generator) and Proposition 8 (deletion-only generators are
// non-failing), plus the failing-mass behaviour that motivates the
// non-failing restriction of Theorem 9.

#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "repair/abc.h"
#include "repair/ocqa.h"

int main() {
  using namespace opcqa;
  bench::Header("E9", "Prop. 4 containment & Prop. 8 failing mass");

  struct Named {
    const char* name;
    gen::Workload (*maker)();
  };
  const Named instances[] = {
      {"preference (Section 3)", &gen::PaperPreferenceExample},
      {"key pair (introduction)", &gen::PaperKeyPairExample},
      {"Example 1 (TGD + key)", &gen::PaperExample1},
      {"Example 2 (T⊆R + key)", &gen::PaperExample2},
      {"failing instance", &gen::PaperFailingExample},
      {"tiny inclusion", &gen::TinyInclusionExample},
  };

  std::printf("%-26s %8s %8s %12s %14s %14s\n", "instance", "#ABC",
              "#op-rep", "ABC⊆op?", "fail mass M^u",
              "fail mass del-only");
  UniformChainGenerator uniform;
  DeletionOnlyUniformGenerator deletions;
  bool all_contained = true;
  for (const Named& inst : instances) {
    gen::Workload w = inst.maker();
    EnumerationResult op = EnumerateRepairs(w.db, w.constraints, uniform);
    EnumerationResult del = EnumerateRepairs(w.db, w.constraints, deletions);
    Result<std::vector<Database>> abc = AbcRepairs(w.db, w.constraints);
    if (!abc.ok()) {
      std::printf("%-26s ABC error: %s\n", inst.name,
                  abc.status().ToString().c_str());
      continue;
    }
    bool contained = true;
    for (const Database& repair : *abc) {
      if (op.ProbabilityOf(repair).is_zero()) contained = false;
    }
    all_contained = all_contained && contained;
    std::printf("%-26s %8zu %8zu %12s %14s %14s\n", inst.name, abc->size(),
                op.repairs.size(), contained ? "yes" : "NO",
                op.failing_mass.ToString().c_str(),
                del.failing_mass.ToString().c_str());
  }
  bench::Note("paper: Prop. 4 ⇒ the ABC⊆op column is all-yes; Prop. 8 ⇒ "
              "the deletion-only failing mass column is all-zero.");

  // Failing mass as insertions become more attractive: interpolate between
  // deletion-only and uniform on the failing instance.
  bench::Header("E9b", "failing mass vs insertion preference (failing "
                "instance)");
  gen::Workload w = gen::PaperFailingExample();
  std::printf("%10s %14s\n", "add-weight", "failing mass");
  for (int tenth = 0; tenth <= 10; ++tenth) {
    Rational add_weight(tenth, 10);
    LambdaChainGenerator gen(
        "biased",
        [&](const RepairingState&, const std::vector<Operation>& ops) {
          // Split mass: `add_weight` to additions (uniformly), rest to
          // deletions; degrade gracefully when one side is absent.
          size_t adds = 0, dels = 0;
          for (const Operation& op : ops) (op.is_add() ? adds : dels)++;
          Rational add_share = adds == 0 ? Rational(0) : add_weight;
          Rational del_share = Rational(1) - add_share;
          if (dels == 0) {
            add_share = Rational(1);
            del_share = Rational(0);
          }
          std::vector<Rational> probs;
          for (const Operation& op : ops) {
            probs.push_back(op.is_add()
                                ? add_share /
                                      Rational(static_cast<int64_t>(adds))
                                : del_share /
                                      Rational(static_cast<int64_t>(dels)));
          }
          return probs;
        });
    EnumerationResult result = EnumerateRepairs(w.db, w.constraints, gen);
    std::printf("%10.1f %14.4f\n", tenth / 10.0,
                result.failing_mass.ToDouble());
  }
  bench::Note("the failing mass grows linearly with the insertion bias — "
              "the reason Theorem 9 restricts to non-failing generators "
              "(the CP denominator stays 1).");
  return all_contained ? 0 : 1;
}
