// E15 — Null-based TGD repairs (Section 6, "Null Values"): the grounded
// operational framework loses probability mass to failing sequences when
// TGD witnesses clash with other constraints, while the chase with marked
// nulls (weak acyclicity permitting) always reaches a consistent
// database. Also reports chase cost scaling on inclusion-dependency
// workloads.

#include <cstdio>

#include "bench_common.h"
#include "constraints/weak_acyclicity.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/null_chase.h"
#include "repair/repair_enumerator.h"

int main() {
  using namespace opcqa;
  bench::Header("E15", "null-chase repairs vs grounded failing mass");

  // The paper's failing instance: R(a) with R(x) → T(x), T(x) → ⊥.
  {
    gen::Workload w = gen::PaperFailingExample();
    UniformChainGenerator generator;
    EnumerationResult chain = EnumerateRepairs(w.db, w.constraints, generator);
    bench::Row("grounded chain failing mass (Sec. 3 instance)",
               "> 0 (has failing seq)", chain.failing_mass.ToString());
    Rng rng(3);
    auto chase = ChaseRepair(w.db, w.constraints, &rng);
    bench::Row("chase reaches consistency", "yes (deletes its way out)",
               chase.ok() ? "yes" : "no");
  }

  // Inclusion workload: grounded additions may fail when the base lacks
  // a coherent witness; the chase invents one. Kept tiny so the grounded
  // chain enumerates exactly (grounded TGD chains explode fast).
  {
    gen::Workload w = gen::MakeInclusionWorkload(4, 0.5, /*seed=*/21);
    bench::Row("inclusion Σ weakly acyclic",
               "yes (chase terminates)",
               IsWeaklyAcyclic(*w.schema, w.constraints) ? "yes" : "no");
    UniformChainGenerator generator;
    EnumerationOptions options;
    options.max_states = 1u << 20;
    EnumerationResult chain =
        EnumerateRepairs(w.db, w.constraints, generator, options);
    std::printf("  grounded chain: %zu repairs, success %s, failing %s%s\n",
                chain.repairs.size(), chain.success_mass.ToString().c_str(),
                chain.failing_mass.ToString().c_str(),
                chain.truncated ? " (truncated)" : "");
    ChaseOcaResult chase = EstimateChaseOca(
        w.db, w.constraints,
        ParseQuery(*w.schema, "Q(x,y) := R(x,y)").value(),
        /*runs=*/200, /*seed=*/4);
    std::printf("  chase: %zu/%zu runs consistent, mean %.1f steps, "
                "mean %.1f fresh nulls\n",
                chase.runs - chase.failed_runs, chase.runs,
                chase.mean_steps, chase.mean_nulls);
    bench::Note("every R-fact is certain under the chase (insert-only "
                "repairs): frequencies are 1.");
  }

  // Chase cost scaling (weakly acyclic inclusion chains).
  std::printf("\n  chase scaling on inclusion workloads:\n");
  std::printf("  %8s %10s %12s %12s\n", "R-facts", "steps", "nulls",
              "time (ms)");
  for (size_t facts : {50, 200, 800}) {
    gen::Workload w = gen::MakeInclusionWorkload(facts, 0.5, /*seed=*/31);
    Rng rng(9);
    bench::Timer timer;
    auto chase = ChaseRepair(w.db, w.constraints, &rng);
    if (!chase.ok()) return 1;
    std::printf("  %8zu %10zu %12zu %12.1f\n", facts,
                chase.value().steps, chase.value().nulls_created,
                timer.ElapsedMs());
  }
  bench::Note("polynomial chase growth — the weak-acyclicity bound in "
              "action; the grounded exact chain is exponential on the "
              "same instances (E5).");
  return 0;
}
