// E5 — Theorem 5's observable consequence: exact OCQA is FP#P-complete,
// so the exact chain enumeration blows up exponentially with the number of
// key conflicts, while each individual chain walk stays polynomial.
// google-benchmark over the key-violation workload family.

#include <benchmark/benchmark.h>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"

namespace {

using namespace opcqa;

void BM_ExactEnumeration(benchmark::State& state) {
  size_t violating_keys = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      violating_keys + 2, violating_keys, 2, /*seed=*/100);
  UniformChainGenerator generator;
  size_t states_visited = 0;
  size_t repairs = 0;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    states_visited = result.states_visited;
    repairs = result.repairs.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["chain_states"] = static_cast<double>(states_visited);
  state.counters["repairs"] = static_cast<double>(repairs);
}
// n = 6 already needs ~7·10^5 chain states (each extra conflict multiplies
// the state count by ~15: 3 resolution choices × interleavings); n = 7
// would truncate the 2^22-state budget.
BENCHMARK(BM_ExactEnumeration)->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);

void BM_ExactOcqaQuery(benchmark::State& state) {
  size_t violating_keys = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      violating_keys + 2, violating_keys, 2, /*seed=*/100);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  for (auto _ : state) {
    OcaResult oca = ComputeOca(w.db, w.constraints, generator, *q);
    benchmark::DoNotOptimize(oca);
  }
}
BENCHMARK(BM_ExactOcqaQuery)->DenseRange(1, 5, 1)->Unit(benchmark::kMillisecond);

// Group size sweep: wider conflicts explode the branching factor.
void BM_ExactEnumerationGroupSize(benchmark::State& state) {
  size_t group = static_cast<size_t>(state.range(0));
  gen::Workload w =
      gen::MakeKeyViolationWorkload(3, 2, group, /*seed=*/101);
  UniformChainGenerator generator;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExactEnumerationGroupSize)
    ->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
