// E5 — Theorem 5's observable consequence: exact OCQA is FP#P-complete,
// so the exact chain enumeration blows up exponentially with the number of
// key conflicts, while each individual chain walk stays polynomial.
// google-benchmark over the key-violation workload family.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"

namespace {

using namespace opcqa;

void BM_ExactEnumeration(benchmark::State& state) {
  size_t violating_keys = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      violating_keys + 2, violating_keys, 2, /*seed=*/100);
  UniformChainGenerator generator;
  size_t states_visited = 0;
  size_t repairs = 0;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    states_visited = result.states_visited;
    repairs = result.repairs.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["chain_states"] = static_cast<double>(states_visited);
  state.counters["repairs"] = static_cast<double>(repairs);
}
// n = 6 already needs ~7·10^5 chain states (each extra conflict multiplies
// the state count by ~15: 3 resolution choices × interleavings); n = 7
// would truncate the 2^22-state budget.
BENCHMARK(BM_ExactEnumeration)->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);

void BM_ExactOcqaQuery(benchmark::State& state) {
  size_t violating_keys = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      violating_keys + 2, violating_keys, 2, /*seed=*/100);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  for (auto _ : state) {
    OcaResult oca = ComputeOca(w.db, w.constraints, generator, *q);
    benchmark::DoNotOptimize(oca);
  }
}
BENCHMARK(BM_ExactOcqaQuery)->DenseRange(1, 5, 1)->Unit(benchmark::kMillisecond);

// Group size sweep: wider conflicts explode the branching factor.
void BM_ExactEnumerationGroupSize(benchmark::State& state) {
  size_t group = static_cast<size_t>(state.range(0));
  gen::Workload w =
      gen::MakeKeyViolationWorkload(3, 2, group, /*seed=*/101);
  UniformChainGenerator generator;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExactEnumerationGroupSize)
    ->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond);

// Work-sharded enumeration: the root's extension set partitioned across
// threads, results bit-identical to serial (state.range(0) = threads).
void BM_ParallelEnumeration(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  UniformChainGenerator generator;
  EnumerationOptions options;
  options.threads = threads;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelEnumeration)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Thread sweep recorded via bench_common (→ BENCH_e5_parallel_scaling.json)
// so per-thread-count wall-clock timings accumulate in bench/results.
// Opt-in via OPCQA_BENCH_SWEEP=1: filtered/list-only benchmark runs should
// neither pay for the sweep nor overwrite its JSON artifact.
void RecordParallelSweep() {
  bench::Header("e5_parallel_scaling",
                "Exact enumeration wall-clock vs worker threads "
                "(n=5 key conflicts, ~7e4 chain states)");
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  UniformChainGenerator generator;
  double serial_ms = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    EnumerationOptions options;
    options.threads = threads;
    double best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      bench::Timer timer;
      EnumerationResult result =
          EnumerateRepairs(w.db, w.constraints, generator, options);
      double ms = timer.ElapsedMs();
      if (ms < best_ms) best_ms = ms;
      benchmark::DoNotOptimize(result);
    }
    if (threads == 1) serial_ms = best_ms;
    char measured[64];
    std::snprintf(measured, sizeof(measured), "%.2f ms (%.2fx vs serial)",
                  best_ms, serial_ms / best_ms);
    bench::Row("EnumerateRepairs threads=" + std::to_string(threads),
               "n/a (ours)", measured);
  }
  bench::Note("best of 3 runs; speedup is bounded by the machine's core "
              "count (see hardware_concurrency in this file)");
}

}  // namespace

int main(int argc, char** argv) {
  const char* sweep = std::getenv("OPCQA_BENCH_SWEEP");
  if (sweep != nullptr && *sweep != '\0' && *sweep != '0') {
    RecordParallelSweep();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
