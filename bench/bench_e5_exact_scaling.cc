// E5 — Theorem 5's observable consequence: exact OCQA is FP#P-complete,
// so the exact chain enumeration blows up exponentially with the number of
// key conflicts, while each individual chain walk stays polynomial.
// google-benchmark over the key-violation workload family.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench_common.h"
#include "engine/ocqa_session.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"
#include "repair/repair_cache.h"

namespace {

using namespace opcqa;

// The PR-4 multi-query workload: N distinct queries over ONE fixed
// inconsistent database — the uniform-operational-CQA serving shape. The
// repair space is the same for every query; only the cross-query cache
// exploits that.
std::vector<Query> PersistQueries(const Schema& schema) {
  const char* texts[] = {
      "Q(x,y) := R(x,y)",
      "Q(x) := exists y: R(x,y)",
      "Q(y) := exists x: R(x,y)",
      "Q(y) := R(k0, y)",
      "Q(y) := R(k1, y)",
      "Q(x,u) := exists y: (R(x,y), R(u,y))",
      "Q(x) := exists y: (R(x,y), R(k0, y))",
      "Q(x) := R(x, x)",
  };
  std::vector<Query> queries;
  for (const char* text : texts) {
    Result<Query> query = ParseQuery(schema, text);
    OPCQA_CHECK(query.ok()) << text;
    queries.push_back(std::move(query.value()));
  }
  return queries;
}

void BM_ExactEnumeration(benchmark::State& state) {
  size_t violating_keys = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      violating_keys + 2, violating_keys, 2, /*seed=*/100);
  UniformChainGenerator generator;
  size_t states_visited = 0;
  size_t repairs = 0;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    states_visited = result.states_visited;
    repairs = result.repairs.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["chain_states"] = static_cast<double>(states_visited);
  state.counters["repairs"] = static_cast<double>(repairs);
}
// n = 6 already needs ~7·10^5 chain states (each extra conflict multiplies
// the state count by ~15: 3 resolution choices × interleavings); n = 7
// would truncate the 2^22-state budget.
BENCHMARK(BM_ExactEnumeration)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMillisecond);

void BM_ExactOcqaQuery(benchmark::State& state) {
  size_t violating_keys = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      violating_keys + 2, violating_keys, 2, /*seed=*/100);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  for (auto _ : state) {
    OcaResult oca = ComputeOca(w.db, w.constraints, generator, *q);
    benchmark::DoNotOptimize(oca);
  }
}
BENCHMARK(BM_ExactOcqaQuery)
    ->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMillisecond);

// Transposition-table memoization: the same workload family with shared
// suffixes collapsed to distinct states (state.range(0) = conflicts, as in
// BM_ExactEnumeration; results are byte-identical to the unmemoized runs).
void BM_MemoizedEnumeration(benchmark::State& state) {
  size_t violating_keys = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      violating_keys + 2, violating_keys, 2, /*seed=*/100);
  UniformChainGenerator generator;
  EnumerationOptions options;
  options.memoize = true;
  size_t virtual_states = 0;
  size_t real_states = 0;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator, options);
    virtual_states = result.states_visited;
    real_states = static_cast<size_t>(result.memo_stats.misses);
    benchmark::DoNotOptimize(result);
  }
  state.counters["chain_states"] = static_cast<double>(virtual_states);
  state.counters["walked_states"] = static_cast<double>(real_states);
}
BENCHMARK(BM_MemoizedEnumeration)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMillisecond);

// Cross-query repair-space persistence (PR 4): 8 distinct queries against
// one database, with the RepairSpaceCache off (state.range(0) = 0: every
// query rebuilds its per-call table) vs on (1: the first query records
// the chain, the rest replay it from the shared root entry). Answers are
// byte-identical either way.
void BM_PersistentCacheQueries(benchmark::State& state) {
  bool persist = state.range(0) != 0;
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  std::vector<Query> queries = PersistQueries(*w.schema);
  UniformChainGenerator generator;
  double hit_rate = 0;
  for (auto _ : state) {
    RepairSpaceCache cache;
    EnumerationOptions options;
    options.memoize = true;
    if (persist) options.cache = &cache;
    uint64_t hits = 0;
    uint64_t probes = 0;
    for (const Query& query : queries) {
      OcaResult oca =
          ComputeOca(w.db, w.constraints, generator, query, options);
      hits += oca.enumeration.memo_stats.hits;
      probes += oca.enumeration.memo_stats.hits +
                oca.enumeration.memo_stats.misses;
      benchmark::DoNotOptimize(oca);
    }
    hit_rate = probes == 0 ? 0.0 : static_cast<double>(hits) / probes;
  }
  state.counters["queries"] = 8;
  state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_PersistentCacheQueries)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Disk-tier warm start (PR 5): the 8-query workload as two *processes*.
// /0 (cold) models the first process: an empty snapshot directory, full
// chain walks, and the close-time spill. /1 (warm) models the rerun: a
// fresh RepairSpaceCache over the populated directory restores the
// canonical snapshot (storage/canonical.h) instead of walking the chain.
// Answers are byte-identical either way (tests/storage_test.cc, including
// a real fork+exec cross-process check).
void BM_DiskWarmStart(benchmark::State& state) {
  bool warm = state.range(0) != 0;
  namespace fs = std::filesystem;
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  std::vector<Query> queries = PersistQueries(*w.schema);
  UniformChainGenerator generator;
  fs::path dir = fs::temp_directory_path() /
                 (std::string("opcqa_bench_disk_") + (warm ? "warm" : "cold"));
  fs::remove_all(dir);
  RepairCacheOptions disk;
  disk.snapshot_dir = dir.string();
  auto run_queries = [&](RepairSpaceCache& cache) {
    EnumerationOptions options;
    options.memoize = true;
    options.cache = &cache;
    for (const Query& query : queries) {
      OcaResult oca =
          ComputeOca(w.db, w.constraints, generator, query, options);
      benchmark::DoNotOptimize(oca);
    }
  };
  if (warm) {
    // Populate the directory once: the "first process" outside timing.
    RepairSpaceCache cache(disk);
    run_queries(cache);
  }
  uint64_t restores = 0;
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      fs::remove_all(dir);
      state.ResumeTiming();
    }
    // Both phases time one whole cache lifetime — construction, the 8
    // queries, and the destructor spill — so cold vs warm isolates
    // exactly "walk the chain" vs "restore the snapshot".
    RepairSpaceCache cache(disk);
    run_queries(cache);
    restores += cache.disk_stats().restores;
  }
  state.counters["queries"] = 8;
  state.counters["restores"] = static_cast<double>(restores);
  fs::remove_all(dir);
}
BENCHMARK(BM_DiskWarmStart)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Delta spills (PR 9): one long-lived session keeps growing a single
// root's table and checkpoints (Persist) after every growth step — the
// mutating-workload shape where full-base rewrites hurt. /0 disables
// delta spills: every checkpoint rewrites the whole base snapshot, v1
// style. /1 appends only the entries added since the last spill to the
// per-root delta log (storage/canonical.h), compacting once the log
// outgrows log_compaction_ratio of the base. Table growth is anytime
// enumeration: each step raises the max_states budget, and each budget
// runs twice so the twice-missed admission filter admits that step's
// re-reached subtrees. bytes_written is DiskTierStats::compressed_bytes —
// every byte the tier wrote in the v2 encoding; the >=3x write cut is
// asserted deterministically in tests/storage_v2_test.cc, this benchmark
// gates the wall-clock of the checkpointing session (pr9_disk_delta_ms).
void BM_DiskDeltaSpill(benchmark::State& state) {
  bool delta = state.range(0) != 0;
  namespace fs = std::filesystem;
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  UniformChainGenerator generator;
  fs::path dir = fs::temp_directory_path() /
                 (std::string("opcqa_bench_delta_") + (delta ? "on" : "off"));
  RepairCacheOptions disk;
  disk.snapshot_dir = dir.string();
  disk.delta_spill = delta;
  constexpr size_t kBudgets[] = {3000,  6000,  9000,  12000, 15000, 18000,
                                 21000, 24000, 27000, 30000, 36000, 1u << 22};
  uint64_t bytes_written = 0;
  uint64_t appends = 0;
  uint64_t compactions = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    state.ResumeTiming();
    RepairSpaceCache cache(disk);
    for (size_t budget : kBudgets) {
      EnumerationOptions options;
      options.memoize = true;
      options.cache = &cache;
      options.max_states = budget;
      for (int rep = 0; rep < 2; ++rep) {
        EnumerationResult result =
            EnumerateRepairs(w.db, w.constraints, generator, options);
        benchmark::DoNotOptimize(result);
      }
      cache.Persist();
    }
    DiskTierStats stats = cache.disk_stats();
    bytes_written = stats.compressed_bytes;
    appends = stats.delta_appends;
    compactions = stats.compactions;
  }
  state.counters["checkpoints"] = std::size(kBudgets);
  state.counters["bytes_written"] = static_cast<double>(bytes_written);
  state.counters["delta_appends"] = static_cast<double>(appends);
  state.counters["compactions"] = static_cast<double>(compactions);
  fs::remove_all(dir);
}
BENCHMARK(BM_DiskDeltaSpill)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Planner dispatch (PR 6): certain answers for an FO-rewritable query on
// the n=5 conflict workload, walk vs rewriting. /0 forces the chain walk
// (PlanMode::kWalk) and is primed outside timing, so every timed call is
// the *warm* memoized walk — the cross-query cache replays the recorded
// chain. /1 lets the planner classify (PlanMode::kAuto): the query is
// quantifier-free and self-join-free with an acyclic attack graph, so the
// certainty coincidence holds and the rewriting answers without touching
// the repair space at all. Answers are byte-identical (tests/planner_test).
void BM_PlannerDispatch(benchmark::State& state) {
  bool rewrite = state.range(0) != 0;
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  UniformChainGenerator generator;
  engine::SessionOptions options;
  options.plan =
      rewrite ? planner::PlanMode::kAuto : planner::PlanMode::kWalk;
  engine::OcqaSession session(w.db, w.constraints, options);
  // Prime: the walk arm records the chain (later calls replay it warm),
  // the rewrite arm fills the plan cache. Both arms therefore time the
  // steady serving state, not first-query cost.
  Result<engine::CertainAnswersResult> primed =
      session.CertainAnswers(generator, *q);
  OPCQA_CHECK(primed.ok()) << primed.status().message();
  size_t answers = 0;
  for (auto _ : state) {
    Result<engine::CertainAnswersResult> result =
        session.CertainAnswers(generator, *q);
    answers = result->answers.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["rewrite_plans"] =
      static_cast<double>(session.PlanStats().rewrite_plans);
}
BENCHMARK(BM_PlannerDispatch)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Group size sweep: wider conflicts explode the branching factor.
void BM_ExactEnumerationGroupSize(benchmark::State& state) {
  size_t group = static_cast<size_t>(state.range(0));
  gen::Workload w =
      gen::MakeKeyViolationWorkload(3, 2, group, /*seed=*/101);
  UniformChainGenerator generator;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExactEnumerationGroupSize)
    ->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond);

// Work-sharded enumeration: the root's extension set partitioned across
// threads, results bit-identical to serial (state.range(0) = threads).
void BM_ParallelEnumeration(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  UniformChainGenerator generator;
  EnumerationOptions options;
  options.threads = threads;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelEnumeration)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Thread sweep recorded via bench_common (→ BENCH_e5_parallel_scaling.json)
// so per-thread-count wall-clock timings accumulate in bench/results.
// Opt-in via OPCQA_BENCH_SWEEP=1: filtered/list-only benchmark runs should
// neither pay for the sweep nor overwrite its JSON artifact.
void RecordParallelSweep() {
  bench::Header("e5_parallel_scaling",
                "Exact enumeration wall-clock vs worker threads "
                "(n=5 key conflicts, ~7e4 chain states)");
  bench::MarkThreadSweep();
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  UniformChainGenerator generator;
  double serial_ms = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    EnumerationOptions options;
    options.threads = threads;
    double best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      bench::Timer timer;
      EnumerationResult result =
          EnumerateRepairs(w.db, w.constraints, generator, options);
      double ms = timer.ElapsedMs();
      if (ms < best_ms) best_ms = ms;
      benchmark::DoNotOptimize(result);
    }
    if (threads == 1) serial_ms = best_ms;
    char measured[64];
    std::snprintf(measured, sizeof(measured), "%.2f ms (%.2fx vs serial)",
                  best_ms, serial_ms / best_ms);
    bench::Row("EnumerateRepairs threads=" + std::to_string(threads),
               "n/a (ours)", measured);
  }
  bench::Note("best of 3 runs; speedup is bounded by the machine's core "
              "count (see hardware_concurrency in this file)");
}

// Memoization sweep recorded via bench_common (→ BENCH_e5_memo_scaling.json):
// wall-clock with the transposition table off vs on across the conflict
// range, plus the distinct-state collapse that explains the gap. Opt-in via
// OPCQA_BENCH_SWEEP=1 like the parallel sweep.
void RecordMemoSweep() {
  bench::Header("e5_memo_scaling",
                "Exact enumeration wall-clock, transposition-table "
                "memoization off vs on (key-conflict family, group 2)");
  UniformChainGenerator generator;
  for (size_t n : {4, 5, 6}) {
    gen::Workload w =
        gen::MakeKeyViolationWorkload(n + 2, n, 2, /*seed=*/100);
    double times[2] = {0, 0};
    size_t virtual_states = 0;
    size_t walked_states = 0;
    for (int memo = 0; memo < 2; ++memo) {
      EnumerationOptions options;
      options.memoize = memo != 0;
      double best_ms = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        bench::Timer timer;
        EnumerationResult result =
            EnumerateRepairs(w.db, w.constraints, generator, options);
        double ms = timer.ElapsedMs();
        if (ms < best_ms) best_ms = ms;
        if (memo != 0) {
          virtual_states = result.states_visited;
          walked_states = static_cast<size_t>(result.memo_stats.misses);
        }
        benchmark::DoNotOptimize(result);
      }
      times[memo] = best_ms;
    }
    char measured[128];
    std::snprintf(measured, sizeof(measured),
                  "off %.2f ms / on %.2f ms (%.2fx; %zu states -> %zu "
                  "walked)",
                  times[0], times[1], times[0] / times[1], virtual_states,
                  walked_states);
    bench::Row("EnumerateRepairs n=" + std::to_string(n), "n/a (ours)",
               measured);
  }
  bench::Note("best of 3 runs; memo-on results are byte-identical to "
              "memo-off (asserted in tests/memo_test.cc) — the table only "
              "collapses shared suffixes onto their first computation");
}

// Cross-query persistence sweep (PR 4), appended to the e5_memo_scaling
// section (no new Header): the 8-query/one-database workload with the
// RepairSpaceCache off vs on, with per-query hit rates and the cache's
// delta-compression counters.
void RecordPersistSweep() {
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  std::vector<Query> queries = PersistQueries(*w.schema);
  UniformChainGenerator generator;
  double times[2] = {0, 0};
  std::string hit_rates;
  MemoStats cache_stats;
  for (int persist = 0; persist < 2; ++persist) {
    double best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      RepairSpaceCache cache;
      EnumerationOptions options;
      options.memoize = true;
      if (persist != 0) options.cache = &cache;
      std::string rates;
      bench::Timer timer;
      for (const Query& query : queries) {
        OcaResult oca =
            ComputeOca(w.db, w.constraints, generator, query, options);
        const MemoStats& memo = oca.enumeration.memo_stats;
        uint64_t probes = memo.hits + memo.misses;
        char rate[16];
        std::snprintf(rate, sizeof(rate), "%s%.0f%%", rates.empty() ? "" : " ",
                      probes == 0 ? 0.0 : 100.0 * memo.hits / probes);
        rates += rate;
        benchmark::DoNotOptimize(oca);
      }
      double ms = timer.ElapsedMs();
      if (ms < best_ms) {
        best_ms = ms;
        if (persist != 0) {
          hit_rates = std::move(rates);
          cache_stats = cache.TotalStats();
        }
      }
    }
    times[persist] = best_ms;
  }
  char measured[160];
  std::snprintf(measured, sizeof(measured),
                "per-call %.2f ms / persistent %.2f ms (%.2fx aggregate)",
                times[0], times[1], times[0] / times[1]);
  bench::Row("8 queries, 1 database (n=5)", "n/a (ours)", measured);
  bench::Row("per-query hit rate (persistent)", "n/a (ours)", hit_rates);
  char counters[200];
  std::snprintf(counters, sizeof(counters),
                "%zu entries, %zu bytes; delta payloads %zu B vs %zu B "
                "full copies (%.1fx), %llu evictions",
                cache_stats.entries, cache_stats.bytes,
                cache_stats.payload_bytes, cache_stats.full_payload_bytes,
                cache_stats.payload_bytes == 0
                    ? 0.0
                    : static_cast<double>(cache_stats.full_payload_bytes) /
                          static_cast<double>(cache_stats.payload_bytes),
                static_cast<unsigned long long>(cache_stats.evictions));
  bench::Row("persistent cache counters", "n/a (ours)", counters);
  // Delta compression headline on a depth-bounded chain: a large, mostly
  // clean database (40 keys, 4 violating) where removed-id deltas are
  // depth-sized but the PR-3 Database copies were |D|-sized.
  {
    gen::Workload big = gen::MakeKeyViolationWorkload(40, 4, 2, /*seed=*/100);
    RepairSpaceCache cache;
    EnumerationOptions options;
    options.memoize = true;
    options.cache = &cache;
    EnumerationResult result =
        EnumerateRepairs(big.db, big.constraints, generator, options);
    benchmark::DoNotOptimize(result);
    MemoStats stats = cache.TotalStats();
    char compression[200];
    std::snprintf(
        compression, sizeof(compression),
        "|D|=%zu, %zu entries: delta payloads %zu B vs %zu B full copies "
        "(%.1fx; per entry %zu B -> %zu B)",
        big.db.size(), stats.entries, stats.payload_bytes,
        stats.full_payload_bytes,
        stats.payload_bytes == 0
            ? 0.0
            : static_cast<double>(stats.full_payload_bytes) /
                  static_cast<double>(stats.payload_bytes),
        stats.entries == 0 ? 0 : stats.full_payload_bytes / stats.entries,
        stats.entries == 0 ? 0 : stats.payload_bytes / stats.entries);
    bench::Row("delta compression (depth-bounded, 40 keys / 4 conflicts)",
               "n/a (ours)", compression);
  }
  bench::Note("persistent: one RepairSpaceCache across the 8 queries — "
              "the admission filter (PR 5) defers a subtree until its key "
              "is seen twice, so query 1 records the re-reached suffixes, "
              "query 2 admits the chain root, and queries 3..8 replay it "
              "from the root entry in 1 probe each; answers byte-identical "
              "to per-call tables (tests/repair_cache_test.cc)");
}

// Disk-tier warm start sweep (PR 5), appended to the e5_memo_scaling
// section: the 8-query workload as a cold "first process" (walk + spill)
// vs a warm "second process" (restore from the snapshot directory), plus
// the disk-tier counters behind the gap.
void RecordDiskSweep() {
  namespace fs = std::filesystem;
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  std::vector<Query> queries = PersistQueries(*w.schema);
  UniformChainGenerator generator;
  fs::path dir = fs::temp_directory_path() / "opcqa_bench_disk_sweep";
  RepairCacheOptions disk;
  disk.snapshot_dir = dir.string();
  auto run_queries = [&](RepairSpaceCache& cache) {
    EnumerationOptions options;
    options.memoize = true;
    options.cache = &cache;
    for (const Query& query : queries) {
      OcaResult oca =
          ComputeOca(w.db, w.constraints, generator, query, options);
      benchmark::DoNotOptimize(oca);
    }
  };
  double cold_ms = 1e300;
  double warm_ms = 1e300;
  DiskTierStats warm_disk;
  MemoStats warm_stats;
  size_t snapshot_bytes = 0;
  for (int rep = 0; rep < 3; ++rep) {
    {
      fs::remove_all(dir);
      bench::Timer timer;
      RepairSpaceCache cache(disk);
      run_queries(cache);
      cache.Persist();
      cold_ms = std::min(cold_ms, timer.ElapsedMs());
    }
    {
      bench::Timer timer;
      RepairSpaceCache cache(disk);
      run_queries(cache);
      double ms = timer.ElapsedMs();
      if (ms < warm_ms) {
        warm_ms = ms;
        warm_disk = cache.disk_stats();
        warm_stats = cache.TotalStats();
      }
    }
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      snapshot_bytes += static_cast<size_t>(entry.file_size());
    }
  }
  fs::remove_all(dir);
  char measured[160];
  std::snprintf(measured, sizeof(measured),
                "cold (walk+spill) %.2f ms / warm (restore) %.2f ms "
                "(%.1fx), fresh cache per run",
                cold_ms, warm_ms, cold_ms / warm_ms);
  bench::Row("8 queries via disk tier (n=5)", "n/a (ours)", measured);
  char counters[200];
  std::snprintf(counters, sizeof(counters),
                "%llu restore (%llu B read, %zu B snapshot on disk), "
                "%llu hits / %llu misses, %llu admission deferrals",
                static_cast<unsigned long long>(warm_disk.restores),
                static_cast<unsigned long long>(warm_disk.restore_bytes),
                snapshot_bytes,
                static_cast<unsigned long long>(warm_stats.hits),
                static_cast<unsigned long long>(warm_stats.misses),
                static_cast<unsigned long long>(
                    warm_stats.admission_deferred));
  bench::Row("disk tier counters (warm run)", "n/a (ours)", counters);
  bench::Note("disk tier: cold pays the full chain walks plus one "
              "canonical-snapshot spill; warm restores the snapshot and "
              "replays all 8 queries from the root entry — answers "
              "byte-identical, verified cross-process by fork+exec in "
              "tests/storage_test.cc and by the CLI e2e in CI");
}

// Delta-spill sweep (PR 9), appended to the e5_memo_scaling section: the
// checkpointing session from BM_DiskDeltaSpill run once per arm, with the
// disk-tier counters that explain the write cut.
void RecordDeltaSweep() {
  namespace fs = std::filesystem;
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  UniformChainGenerator generator;
  fs::path dir = fs::temp_directory_path() / "opcqa_bench_delta_sweep";
  constexpr size_t kBudgets[] = {3000,  6000,  9000,  12000, 15000, 18000,
                                 21000, 24000, 27000, 30000, 36000, 1u << 22};
  double ms[2] = {0, 0};
  DiskTierStats stats[2];
  for (int delta = 0; delta < 2; ++delta) {
    RepairCacheOptions disk;
    disk.snapshot_dir = dir.string();
    disk.delta_spill = delta != 0;
    double best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      fs::remove_all(dir);
      bench::Timer timer;
      RepairSpaceCache cache(disk);
      for (size_t budget : kBudgets) {
        EnumerationOptions options;
        options.memoize = true;
        options.cache = &cache;
        options.max_states = budget;
        for (int pass = 0; pass < 2; ++pass) {
          EnumerationResult result =
              EnumerateRepairs(w.db, w.constraints, generator, options);
          benchmark::DoNotOptimize(result);
        }
        cache.Persist();
      }
      double elapsed = timer.ElapsedMs();
      if (elapsed < best_ms) {
        best_ms = elapsed;
        stats[delta] = cache.disk_stats();
      }
    }
    ms[delta] = best_ms;
  }
  fs::remove_all(dir);
  char measured[200];
  std::snprintf(
      measured, sizeof(measured),
      "full rewrites %.2f ms / delta spills %.2f ms; %llu -> %llu B "
      "written (%.1fx fewer)",
      ms[0], ms[1],
      static_cast<unsigned long long>(stats[0].compressed_bytes),
      static_cast<unsigned long long>(stats[1].compressed_bytes),
      static_cast<double>(stats[0].compressed_bytes) /
          static_cast<double>(std::max<uint64_t>(
              stats[1].compressed_bytes, 1)));
  bench::Row("12 anytime checkpoints, delta off vs on (n=5)", "n/a (ours)",
             measured);
  char counters[160];
  std::snprintf(counters, sizeof(counters),
                "off: %llu spills / on: %llu spills + %llu delta appends, "
                "%llu compactions",
                static_cast<unsigned long long>(stats[0].spills),
                static_cast<unsigned long long>(stats[1].spills),
                static_cast<unsigned long long>(stats[1].delta_appends),
                static_cast<unsigned long long>(stats[1].compactions));
  bench::Row("delta-spill counters", "n/a (ours)", counters);
  bench::Note("each checkpoint = one anytime enumeration budget run twice "
              "(the admission filter admits on the second pass) + "
              "Persist; delta spills append only the entries added since "
              "the last spill — the >=3x byte cut is asserted "
              "deterministically in tests/storage_v2_test.cc");
}

}  // namespace

int main(int argc, char** argv) {
  const char* sweep = std::getenv("OPCQA_BENCH_SWEEP");
  if (sweep != nullptr && *sweep != '\0' && *sweep != '0') {
    RecordParallelSweep();
    RecordMemoSweep();
    RecordPersistSweep();  // appends to the e5_memo_scaling section
    RecordDiskSweep();     // likewise
    RecordDeltaSweep();    // likewise
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
