// E6 — Theorem 9 / Proposition 10: the additive-error approximation.
// Verifies n(ε,δ) (paper: 150 for ε=δ=0.1), measures actual estimation
// error against exact CP values for an (ε,δ) grid, and reports the
// fraction of runs violating the ε bound (must be ≲ δ).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"
#include "repair/sampler.h"

int main() {
  using namespace opcqa;
  bench::Header("E6", "Theorem 9: additive-error approximation scheme");

  bench::Row("n(0.1, 0.1) = ceil(ln(2/δ)/(2ε²))", "150",
             std::to_string(Sampler::NumSamples(0.1, 0.1)));

  gen::Workload w = gen::MakeKeyViolationWorkload(5, 3, 2, /*seed=*/200);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  OcaResult exact = ComputeOca(w.db, w.constraints, generator, *q);
  std::printf("\nworkload: %zu facts, %zu exact answer tuples, success "
              "mass %s\n",
              w.db.size(), exact.answers.size(),
              exact.success_mass.ToString().c_str());

  const double grid[][2] = {{0.2, 0.2}, {0.1, 0.1}, {0.05, 0.1},
                            {0.05, 0.05}, {0.02, 0.05}};
  std::printf("\n%8s %8s %8s %12s %14s %12s\n", "eps", "delta", "n",
              "max|err|", "mean|err|", "violations");
  for (const auto& [eps, delta] : grid) {
    size_t n = Sampler::NumSamples(eps, delta);
    const int kTrials = 20;
    int violations = 0;
    double max_err = 0, sum_err = 0;
    size_t comparisons = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Sampler sampler(w.db, w.constraints, &generator,
                      /*seed=*/300 + trial);
      ApproxOcaResult approx = sampler.EstimateOcaWithWalks(*q, n);
      bool violated = false;
      for (const auto& [tuple, p] : exact.answers) {
        double err = std::fabs(approx.Estimate(tuple) - p.ToDouble());
        max_err = std::max(max_err, err);
        sum_err += err;
        ++comparisons;
        if (err > eps) violated = true;
      }
      if (violated) ++violations;
    }
    std::printf("%8.2f %8.2f %8zu %12.4f %14.4f %9d/%d\n", eps, delta, n,
                max_err, sum_err / comparisons, violations, kTrials);
  }
  bench::Note("per-tuple violations of |est − CP| ≤ ε must occur in ≲ δ "
              "fraction of trials (Hoeffding bound; per-tuple, not "
              "simultaneous).");

  // Error vs n curve (fixed workload, tuple with CP = 1/3).
  std::printf("\nerror vs n (tuple CP target = first exact answer):\n");
  const auto& [target_tuple, target_p] = *exact.answers.begin();
  std::printf("%8s %12s %16s\n", "n", "mean|err|", "hoeffding eps@δ=0.1");
  for (size_t n : {10u, 30u, 100u, 300u, 1000u, 3000u}) {
    double sum_err = 0;
    const int kTrials = 10;
    for (int trial = 0; trial < kTrials; ++trial) {
      Sampler sampler(w.db, w.constraints, &generator, 500 + trial);
      ApproxOcaResult approx = sampler.EstimateOcaWithWalks(*q, n);
      sum_err += std::fabs(approx.Estimate(target_tuple) -
                           target_p.ToDouble());
    }
    double hoeffding_eps = std::sqrt(std::log(2.0 / 0.1) / (2.0 * n));
    std::printf("%8zu %12.4f %16.4f\n", n, sum_err / kTrials,
                hoeffding_eps);
  }
  bench::Note("mean error decays ~ 1/sqrt(n), inside the Hoeffding "
              "envelope — the Theorem 9 guarantee.");
  return 0;
}
