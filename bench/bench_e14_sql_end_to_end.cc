// E14 — The Section 5 practical scheme end to end at the SQL level:
// parse an SQL join query, rewrite every keyed relation R to
// (SELECT * FROM R EXCEPT SELECT * FROM R_del), run the n(ε,δ)-round
// sampling loop, and compare (a) the estimates against the exact chain
// probabilities and (b) the rewritten query's runtime against the
// original's — the paper's "performance is quite similar" claim, here on
// the SQL front-end rather than the bare algebra (which E8 covers).

#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/chain_generator.h"
#include "repair/ocqa.h"
#include "sql/approx_runner.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/rewriter.h"

int main() {
  using namespace opcqa;
  bench::Header("E14", "Section 5 scheme over the SQL front-end");

  // Small instance where the exact distribution is computable: compare
  // SQL-loop estimates with exact CP (keep-one chain == the scheme).
  {
    Schema schema;
    PredId r = schema.AddRelation("R", 2);
    Database db(&schema);
    auto add = [&](const char* k, const char* v) {
      db.Insert(Fact(r, {Const(k), Const(v)}));
    };
    add("k1", "x");
    add("k1", "y");
    add("k2", "z");
    sql::Catalog catalog =
        sql::Catalog::FromDatabase(db, {{"R", {"k", "v"}}});
    sql::SqlApproxRunner runner(catalog, {sql::TableKey{"R", {0}}},
                                /*seed=*/77);
    size_t rounds = sql::SqlApproxRunner::NumRounds(0.1, 0.1);
    bench::Row("n(0.1, 0.1)", "150", std::to_string(rounds));
    auto result = runner.Run("SELECT v FROM R", rounds).value();
    bench::Row("estimate for clean tuple (z)", "1.0",
               std::to_string(result.Frequency({Const("z")})));
    bench::Row("estimate for conflicted (x)", "0.5 +/- 0.1",
               std::to_string(result.Frequency({Const("x")})));
    bench::Row("estimate for conflicted (y)", "0.5 +/- 0.1",
               std::to_string(result.Frequency({Const("y")})));
    std::printf("  rewritten SQL: %s\n", result.rewritten_sql.c_str());
  }

  // Runtime: original vs rewritten three-way join, growing sizes.
  std::printf("\n  Q vs Q[R -> R EXCEPT R_del] on R ⋈ S ⋈ T (SQL path):\n");
  std::printf("  %8s %14s %14s %8s\n", "rows", "original ms", "rewritten ms",
              "ratio");
  const char* kJoinSql =
      "SELECT r.a, t.d FROM R r, S s, T t "
      "WHERE r.b = s.b AND s.c = t.c";
  for (size_t rows : {200, 800, 3200, 12800}) {
    gen::Workload w = gen::MakeJoinWorkload(rows, rows / 10, /*seed=*/5);
    sql::Catalog catalog = sql::Catalog::FromDatabase(
        w.db, {{"R", {"a", "b"}}, {"S", {"b", "c"}}, {"T", {"c", "d"}}});
    // One fixed sampled deletion set per relation (the per-round state).
    sql::SqlApproxRunner runner(catalog,
                                {sql::TableKey{"R", {0}},
                                 sql::TableKey{"S", {0}},
                                 sql::TableKey{"T", {0}}},
                                /*seed=*/13);
    for (auto& [table, del] : runner.SampleDeletions()) {
      catalog.Register(table + "__del", std::move(del));
    }
    auto original = sql::Parse(kJoinSql).value();
    auto rewritten = sql::RewriteWithDeletions(
        original, {{"R", "R__del"}, {"S", "S__del"}, {"T", "T__del"}});

    // Warm up once, then time a few repetitions of each.
    (void)sql::Execute(*original, catalog);
    (void)sql::Execute(*rewritten, catalog);
    constexpr int kReps = 5;
    bench::Timer t_orig;
    for (int i = 0; i < kReps; ++i) {
      auto out = sql::Execute(*original, catalog);
      if (!out.ok()) return 1;
    }
    double ms_orig = t_orig.ElapsedMs() / kReps;
    bench::Timer t_rew;
    for (int i = 0; i < kReps; ++i) {
      auto out = sql::Execute(*rewritten, catalog);
      if (!out.ok()) return 1;
    }
    double ms_rew = t_rew.ElapsedMs() / kReps;
    std::printf("  %8zu %14.2f %14.2f %8.2f\n", rows, ms_orig, ms_rew,
                ms_rew / ms_orig);
  }
  bench::Note("paper: 'performance is quite similar to that of the "
              "original query' — the rewriting adds one EXCEPT per "
              "relation, a constant-factor overhead.");
  return 0;
}
