// E3 — Reproduces Example 7: the operational consistent answers to
// Q(x) = ∀y (Pref(x,y) ∨ x=y) are {(a, 0.45)} while the ABC certain
// answers are empty — "information the traditional CQA approach cannot
// provide".

#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/abc.h"
#include "repair/ocqa.h"
#include "repair/preference_generator.h"

int main() {
  using namespace opcqa;
  bench::Header("E3", "Example 7: OCA vs ABC certain answers");

  gen::Workload w = gen::PaperPreferenceExample();
  PreferenceChainGenerator generator(w.schema->RelationOrDie("Pref"));
  Result<Query> q =
      ParseQuery(*w.schema, "Q(x) := forall y (Pref(x,y) | x = y)");
  if (!q.ok()) {
    std::printf("query parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("Q: %s\n\n", q->ToString(*w.schema).c_str());

  OcaResult oca = ComputeOca(w.db, w.constraints, generator, *q);
  std::string measured;
  for (const auto& [tuple, p] : oca.answers) {
    measured += TupleToString(tuple) + " @ " + p.ToString() + " ";
  }
  bench::Row("OCA_MΣ(D,Q)", "{(a, 0.45)}", measured);

  Result<std::vector<Database>> abc = AbcRepairs(w.db, w.constraints);
  if (!abc.ok()) {
    std::printf("ABC error: %s\n", abc.status().ToString().c_str());
    return 1;
  }
  std::set<Tuple> certain = CertainAnswers(*abc, *q);
  bench::Row("ABC certain answers", "{} (empty)",
             certain.empty() ? "{} (empty)"
                             : std::to_string(certain.size()) + " tuples");
  bench::Row("# ABC repairs", "4 (Example 6)",
             std::to_string(abc->size()));

  // The per-repair view the example walks through.
  std::printf("\nper-repair evaluation of Q:\n");
  for (const Database& repair : *abc) {
    std::set<Tuple> answers = q->Evaluate(repair);
    std::printf("  { %s } -> %zu answer(s)\n", repair.ToString().c_str(),
                answers.size());
  }
  bool ok = oca.answers.size() == 1 &&
            oca.Probability({Const("a")}) == Rational(9, 20) &&
            certain.empty();
  std::printf("\n%s\n", ok ? "E3 REPRODUCED" : "E3 MISMATCH");
  return ok ? 0 : 1;
}
