#!/usr/bin/env python3
"""Bench regression gate: fresh google-benchmark JSON vs committed baseline.

Usage:
  check_regression.py --fresh bench_e5.json \
      --baseline bench/results/BENCH_e5_exact_scaling.json \
      --series pr3_plain_ms,pr3_memo_ms --series pr6_plan_ms \
      [--threshold 1.25] [--min-ms 1.0]

The committed baselines (bench/results/BENCH_*.json) record per-benchmark
wall-clock milliseconds measured on the PR author's machine; CI runners are
different hardware, so absolute ratios would gate on machine speed, not on
code. Instead the gate normalizes: it computes fresh/baseline ratios for
every benchmark, takes their median as the machine-speed factor, and fails
only when some benchmark is more than --threshold (default 1.25 = the >25%
budget) slower than that factor predicts — i.e. when a benchmark regressed
*relative to the suite*, which is exactly what a code regression looks like
and what uniform machine slowdown does not. Benchmarks with baseline times
under --min-ms are reported but never gate (sub-millisecond timings are
noise-dominated on shared runners).

--series is a *list* (repeatable, comma-separated): every named series is
gated against the same fresh run, each with its own normalizer, so a new
PR's gate rides alongside the previous ones instead of replacing them.

Thread sweeps: a baseline recorded by bench_common with
"thread_sweep": true and "single_core": true (hardware_concurrency == 1)
is skipped with a notice — a 1-core sweep measures scheduling overhead,
not speedup, and would gate future multi-core runners on noise.

Exit status: 0 = pass, 1 = regression, 2 = usage/format error.
"""

import argparse
import json
import re
import statistics
import sys


def load_fresh(path):
    """google-benchmark --benchmark_format=json → {name: real_time_ms}.

    The OPCQA_BENCH_SWEEP sections print human-readable tables to stdout
    before google-benchmark emits its JSON document, so parsing starts at
    the first line that opens the JSON object.
    """
    with open(path) as f:
        text = f.read()
    lines = text.splitlines(keepends=True)
    for i, line in enumerate(lines):
        if line.lstrip().startswith("{"):
            doc = json.loads("".join(lines[i:]))
            break
    else:
        raise ValueError(f"{path} contains no JSON document")
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        # Strip google-benchmark decorations ("/real_time", etc.) so names
        # match the baseline rows.
        for suffix in ("/real_time", "/process_time", "/manual_time"):
            if name.endswith(suffix):
                name = name[: -len(suffix)]
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit)
        if scale is None:
            raise ValueError(f"unknown time_unit {unit!r} for {name}")
        times[name] = bench["real_time"] * scale
    return times


def load_baseline_doc(path):
    with open(path) as f:
        return json.load(f)


def baseline_times(doc, path, series):
    """Baseline doc → {benchmark: <series> ms}.

    Understands both baseline shapes: hand-authored gate files (rows keyed
    by "benchmark" with one column per series) and bench_common sweep
    recordings (rows keyed by "what" with a "measured" string whose
    leading number is milliseconds; their series name is "measured_ms").
    """
    times = {}
    for row in doc.get("rows", []):
        name = row.get("benchmark", row.get("what"))
        if name is None:
            continue
        if series in row:
            times[name] = float(row[series])
        elif series == "measured_ms" and "measured" in row:
            match = re.match(r"\s*([0-9.]+)\s*ms", row["measured"])
            if match:
                times[name] = float(match.group(1))
    if not times:
        raise ValueError(f"baseline {path} has no rows with series {series!r}")
    return times


def gate_series(fresh, baseline, series, threshold, min_ms):
    """One series' normalized comparison. Returns the failing names."""
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        raise ValueError(
            f"fresh run and baseline share no benchmark names ({series})")

    ratios = {name: fresh[name] / baseline[name] for name in shared
              if baseline[name] > 0}
    if not ratios:
        raise ValueError(
            f"every shared benchmark has a zero baseline time ({series})")
    gateable = [name for name in ratios if baseline[name] >= min_ms]
    # The machine-speed factor is the median over ALL shared rows (the
    # median is robust to the noisy sub-min-ms ones), not just the gated
    # subset: with few gateable rows a regressing benchmark would
    # otherwise drag its own normalizer and half-absorb itself.
    machine_factor = statistics.median(ratios.values())

    print(f"series {series}: {len(shared)} shared benchmarks; "
          f"machine-speed factor (median ratio): {machine_factor:.3f}")
    print(f"{'benchmark':46s} {'base ms':>10s} {'fresh ms':>10s} "
          f"{'rel':>6s}  gate")
    failures = []
    for name in shared:
        if name not in ratios:  # zero baseline: report, never gate
            print(f"{name:46s} {baseline[name]:10.3f} {fresh[name]:10.3f} "
                  f"{'n/a':>6s}  (zero baseline)")
            continue
        rel = ratios[name] / machine_factor
        gates = name in gateable
        verdict = "ok"
        if gates and rel > threshold:
            verdict = "REGRESSION"
            failures.append(name)
        elif not gates:
            verdict = "(too fast to gate)"
        print(f"{name:46s} {baseline[name]:10.3f} {fresh[name]:10.3f} "
              f"{rel:6.2f}  {verdict}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--series", required=True, action="append",
                        help="baseline row key(s) holding milliseconds, "
                             "e.g. pr3_plain_ms; repeatable and "
                             "comma-separated — every named series gates")
    parser.add_argument("--threshold", type=float, default=1.25)
    parser.add_argument("--min-ms", type=float, default=1.0,
                        help="baseline floor below which rows never gate")
    args = parser.parse_args()
    series_list = [s for arg in args.series for s in arg.split(",") if s]

    try:
        fresh = load_fresh(args.fresh)
        doc = load_baseline_doc(args.baseline)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    hw = doc.get("hardware_concurrency")
    single_core = doc.get("single_core", hw == 1)
    if doc.get("thread_sweep") and single_core:
        print(f"SKIPPED: {args.baseline} is a thread sweep recorded on a "
              "single-core machine — its timings show scheduling overhead, "
              "not speedup, and do not gate (re-record on a multi-core "
              "runner to arm this gate)")
        return 0

    failures = []
    for series in series_list:
        try:
            baseline = baseline_times(doc, args.baseline, series)
            failures += gate_series(fresh, baseline, series,
                                    args.threshold, args.min_ms)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print()

    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed more than "
              f"{(args.threshold - 1) * 100:.0f}% relative to the suite: "
              + ", ".join(sorted(set(failures))), file=sys.stderr)
        return 1
    print(f"PASS: no benchmark regressed beyond the "
          f"{(args.threshold - 1) * 100:.0f}% budget "
          f"({', '.join(series_list)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
