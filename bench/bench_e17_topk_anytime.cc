// E17 — Anytime MAP-repair ablation (engine-level "Optimizations"
// companion, Section 6): best-first top-k search certifies the most
// probable repair(s) after expanding a fraction of the chain that full
// enumeration (E5's FP^#P path) must walk entirely — and degrades
// gracefully to exact enumeration when mass is spread uniformly.

#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "repair/top_k.h"
#include "repair/trust_generator.h"

int main() {
  using namespace opcqa;
  bench::Header("E17", "anytime top-k repair search vs full enumeration");

  // Skewed trust: one repair dominates; certification should be early.
  std::printf("  skewed trust chains (winner trust 0.9, losers 0.1):\n");
  std::printf("  %8s %14s %16s %12s %10s\n", "groups", "full states",
              "top-1 states", "certified", "speedup");
  for (size_t groups : {2, 3, 4, 5}) {
    gen::TrustWorkload tw =
        gen::MakeTrustWorkload(groups, groups, 2, /*seed=*/5);
    // Override the random trust with a deterministic 0.9-vs-0.1 skew: the
    // lexicographically first member of each group wins.
    std::map<Fact, Rational> trust;
    bool first_in_group = true;
    Fact previous;
    for (const Fact& fact : tw.workload.db.AllFacts()) {
      bool same_key = !first_in_group &&
                      fact.args()[0] == previous.args()[0];
      trust[fact] = same_key ? Rational(1, 10) : Rational(9, 10);
      previous = fact;
      first_in_group = false;
    }
    TrustChainGenerator generator(trust, Rational(1, 2));

    bench::Timer t_full;
    EnumerationResult full =
        EnumerateRepairs(tw.workload.db, tw.workload.constraints, generator);
    double ms_full = t_full.ElapsedMs();

    bench::Timer t_top;
    TopKResult top = TopKRepairs(tw.workload.db, tw.workload.constraints,
                                 generator, /*k=*/1);
    double ms_top = t_top.ElapsedMs();

    // Sanity: same winner.
    if (!(top.Map().repair == full.repairs.front().repair)) {
      std::printf("  WINNER MISMATCH at %zu groups\n", groups);
      return 1;
    }
    std::printf("  %8zu %14zu %16zu %12s %9.1fx\n", groups,
                full.states_visited, top.states_expanded,
                top.certified ? "yes" : "no",
                ms_top > 0 ? ms_full / ms_top : 0.0);
  }
  bench::Note("the MAP repair is certified after a fraction of the "
              "states the exact distribution needs.");

  // Uniform chains: no skew to exploit — the honest worst case.
  std::printf("\n  uniform chains (no skew — worst case):\n");
  std::printf("  %8s %14s %16s %12s\n", "groups", "full states",
              "top-1 states", "certified");
  UniformChainGenerator uniform;
  for (size_t groups : {2, 3, 4}) {
    gen::Workload w =
        gen::MakeKeyViolationWorkload(groups, groups, 2, /*seed=*/9);
    EnumerationResult full =
        EnumerateRepairs(w.db, w.constraints, uniform);
    TopKResult top = TopKRepairs(w.db, w.constraints, uniform, /*k=*/1);
    std::printf("  %8zu %14zu %16zu %12s\n", groups, full.states_visited,
                top.states_expanded, top.certified ? "yes" : "no");
  }
  bench::Note("with uniform mass nothing can be pruned — anytime search "
              "honestly degrades to full enumeration (certified only at "
              "exhaustion).");
  return 0;
}
