// E16 — Update-based repairs (Section 6, "Different Types of Updates",
// after Wijsen): the three repair families side by side on key-violating
// data. Deletion repairs can lose a key entirely (the Example 5 "trust
// neither" case), update repairs never do — key-presence queries are
// certain under updates, graded under deletions. Also measures the
// sampling cost of update repairs vs chain walks.

#include <cstdio>

#include "bench_common.h"
#include "constraints/constraint_parser.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/null_chase.h"
#include "repair/ocqa.h"
#include "repair/sampler.h"
#include "repair/update_repair.h"

int main() {
  using namespace opcqa;
  bench::Header("E16", "deletion vs update vs chase repairs on keys");

  // The introduction's two-fact conflict.
  {
    gen::Workload w = gen::PaperKeyPairExample();
    Query exists_a =
        ParseQuery(*w.schema, "Q() := exists y: R(a,y)").value();
    UniformChainGenerator uniform;
    Rational deletion_cp = ComputeTupleProbability(
        w.db, w.constraints, uniform, exists_a, Tuple{});
    auto keys = ExtractKeyEgds(*w.schema, w.constraints).value();
    UpdateOcaResult updates = EstimateUpdateOca(w.db, keys, exists_a,
                                                /*runs=*/500, /*seed=*/3);
    ChaseOcaResult chase = EstimateChaseOca(w.db, w.constraints, exists_a,
                                            /*runs=*/500, /*seed=*/5);
    bench::Row("P(key a survives), deletion chain", "2/3 (loses -both)",
               deletion_cp.ToString());
    bench::Row("P(key a survives), update repairs", "1 (keys never die)",
               std::to_string(updates.Frequency({})));
    bench::Row("P(key a survives), chase repairs", "2/3 (same choices)",
               std::to_string(chase.Frequency({})));
  }

  // Per-value frequencies on a 3-wide group, uniform vs trust-weighted.
  {
    Schema schema;
    PredId r = schema.AddRelation("R", 2);
    Database db(&schema);
    db.Insert(Fact(r, {Const("k"), Const("v1")}));
    db.Insert(Fact(r, {Const("k"), Const("v2")}));
    db.Insert(Fact(r, {Const("k"), Const("v3")}));
    ConstraintSet sigma =
        ParseConstraints(schema, "key: R(x,y), R(x,z) -> y = z").value();
    auto keys = ExtractKeyEgds(schema, sigma).value();
    Query q = ParseQuery(schema, "Q(y) := R(k,y)").value();

    UpdateOcaResult uniform_updates =
        EstimateUpdateOca(db, keys, q, /*runs=*/3000, /*seed=*/7);
    std::map<Fact, double> trust = {
        {Fact(r, {Const("k"), Const("v1")}), 6.0},
        {Fact(r, {Const("k"), Const("v2")}), 3.0},
        {Fact(r, {Const("k"), Const("v3")}), 1.0},
    };
    UpdateOcaResult trusted_updates =
        EstimateUpdateOca(db, keys, q, /*runs=*/3000, /*seed=*/9, trust);
    std::printf("\n  3-way conflict, survivor frequencies:\n");
    std::printf("  %8s %12s %16s\n", "value", "uniform", "trust 6:3:1");
    for (const char* value : {"v1", "v2", "v3"}) {
      std::printf("  %8s %12.3f %16.3f\n", value,
                  uniform_updates.Frequency({Const(value)}),
                  trusted_updates.Frequency({Const(value)}));
    }
    bench::Note("update repairs reproduce the keep-one distribution "
                "without ever losing the key; trust weights skew the "
                "surviving value exactly as in Example 5.");
  }

  // Cost: update-repair sampling vs chain-walk sampling, growing sizes.
  // Chain walks pay per-step violation maintenance (quadratic-ish in the
  // instance), so the sweep stays modest.
  std::printf("\n  50-sample cost, update repairs vs chain walks:\n");
  std::printf("  %8s %8s %16s %16s\n", "keys", "groups", "updates (ms)",
              "chain walks (ms)");
  for (size_t keys_n : {20, 40, 80, 160}) {
    gen::Workload w =
        gen::MakeKeyViolationWorkload(keys_n, keys_n / 2, 2, /*seed=*/41);
    Query q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)").value();
    auto keys = ExtractKeyEgds(*w.schema, w.constraints).value();
    bench::Timer t_updates;
    UpdateOcaResult updates =
        EstimateUpdateOca(w.db, keys, q, /*runs=*/50, /*seed=*/43);
    double ms_updates = t_updates.ElapsedMs();

    UniformChainGenerator uniform;
    Sampler sampler(w.db, w.constraints, &uniform, /*seed=*/45);
    bench::Timer t_chain;
    ApproxOcaResult chain = sampler.EstimateOcaWithWalks(q, 50);
    double ms_chain = t_chain.ElapsedMs();
    std::printf("  %8zu %8zu %16.1f %16.1f\n", keys_n, keys_n / 2,
                ms_updates, ms_chain);
    (void)updates;
    (void)chain;
  }
  bench::Note("update sampling is one group-collapse pass per round "
              "(near-linear); chain walks recompute violations and "
              "extensions per step, so their per-sample cost grows "
              "super-linearly with the instance.");
  return 0;
}
