// E7 — The point of Section 5: one Sample walk is polynomial in |D| while
// exact enumeration is exponential in the number of conflicts. Times both
// on the same workload family (google-benchmark).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"
#include "repair/sampler.h"

namespace {

using namespace opcqa;

// One random walk of the chain; |D| grows, conflicts grow linearly.
void BM_SampleWalk(benchmark::State& state) {
  size_t keys = static_cast<size_t>(state.range(0));
  gen::Workload w =
      gen::MakeKeyViolationWorkload(keys, keys / 2, 2, /*seed=*/400);
  UniformChainGenerator generator;
  Sampler sampler(w.db, w.constraints, &generator, /*seed=*/401);
  size_t steps = 0;
  for (auto _ : state) {
    WalkResult walk = sampler.RunWalk();
    steps = walk.steps;
    benchmark::DoNotOptimize(walk);
  }
  state.counters["facts"] = static_cast<double>(w.db.size());
  state.counters["walk_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_SampleWalk)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMillisecond);

// Full additive-error OCQA at ε=δ=0.1 (150 walks) vs exact enumeration on
// the same instance: the crossover the paper's approach is about.
void BM_ApproxOcqa150Walks(benchmark::State& state) {
  size_t conflicts = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      conflicts + 2, conflicts, 2, /*seed=*/402);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  for (auto _ : state) {
    Sampler sampler(w.db, w.constraints, &generator, /*seed=*/403);
    ApproxOcaResult result = sampler.EstimateOcaWithWalks(*q, 150);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ApproxOcqa150Walks)
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMillisecond);

void BM_ExactOcqaSameInstances(benchmark::State& state) {
  size_t conflicts = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      conflicts + 2, conflicts, 2, /*seed=*/402);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  for (auto _ : state) {
    OcaResult result = ComputeOca(w.db, w.constraints, generator, *q);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExactOcqaSameInstances)
    ->DenseRange(1, 5, 2)
    ->Unit(benchmark::kMillisecond);

// Parallel estimation: walks sharded across threads on per-walk RNG
// streams, estimates bit-identical to serial (state.range(0) = threads).
void BM_ParallelApproxOcqa(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(11, 9, 2, /*seed=*/402);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  SamplerOptions options;
  options.threads = threads;
  Sampler sampler(w.db, w.constraints, &generator, /*seed=*/403, options);
  for (auto _ : state) {
    ApproxOcaResult result = sampler.EstimateOcaWithWalks(*q, 500);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelApproxOcqa)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Thread sweep recorded via bench_common (→ BENCH_e7_parallel_scaling.json).
// Opt-in via OPCQA_BENCH_SWEEP=1, like the e5 sweep.
void RecordParallelSweep() {
  bench::Header("e7_parallel_scaling",
                "Approximate OCQA wall-clock vs worker threads "
                "(9 key conflicts, 2000 walks)");
  bench::MarkThreadSweep();
  gen::Workload w = gen::MakeKeyViolationWorkload(11, 9, 2, /*seed=*/402);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  double serial_ms = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    SamplerOptions options;
    options.threads = threads;
    Sampler sampler(w.db, w.constraints, &generator, /*seed=*/403, options);
    double best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      bench::Timer timer;
      ApproxOcaResult result = sampler.EstimateOcaWithWalks(*q, 2000);
      double ms = timer.ElapsedMs();
      if (ms < best_ms) best_ms = ms;
      benchmark::DoNotOptimize(result);
    }
    if (threads == 1) serial_ms = best_ms;
    char measured[64];
    std::snprintf(measured, sizeof(measured), "%.2f ms (%.2fx vs serial)",
                  best_ms, serial_ms / best_ms);
    bench::Row("EstimateOcaWithWalks(2000) threads=" + std::to_string(threads),
               "n/a (ours)", measured);
  }
  bench::Note("best of 3 runs; estimates are bit-identical across thread "
              "counts (per-walk RNG streams), so this sweep measures pure "
              "scheduling overhead/speedup");
}

}  // namespace

int main(int argc, char** argv) {
  const char* sweep = std::getenv("OPCQA_BENCH_SWEEP");
  if (sweep != nullptr && *sweep != '\0' && *sweep != '0') {
    RecordParallelSweep();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
