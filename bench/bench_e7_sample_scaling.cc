// E7 — The point of Section 5: one Sample walk is polynomial in |D| while
// exact enumeration is exponential in the number of conflicts. Times both
// on the same workload family (google-benchmark).

#include <benchmark/benchmark.h>

#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/ocqa.h"
#include "repair/sampler.h"

namespace {

using namespace opcqa;

// One random walk of the chain; |D| grows, conflicts grow linearly.
void BM_SampleWalk(benchmark::State& state) {
  size_t keys = static_cast<size_t>(state.range(0));
  gen::Workload w =
      gen::MakeKeyViolationWorkload(keys, keys / 2, 2, /*seed=*/400);
  UniformChainGenerator generator;
  Sampler sampler(w.db, w.constraints, &generator, /*seed=*/401);
  size_t steps = 0;
  for (auto _ : state) {
    WalkResult walk = sampler.RunWalk();
    steps = walk.steps;
    benchmark::DoNotOptimize(walk);
  }
  state.counters["facts"] = static_cast<double>(w.db.size());
  state.counters["walk_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_SampleWalk)->RangeMultiplier(2)->Range(4, 64)->Unit(benchmark::kMillisecond);

// Full additive-error OCQA at ε=δ=0.1 (150 walks) vs exact enumeration on
// the same instance: the crossover the paper's approach is about.
void BM_ApproxOcqa150Walks(benchmark::State& state) {
  size_t conflicts = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      conflicts + 2, conflicts, 2, /*seed=*/402);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  for (auto _ : state) {
    Sampler sampler(w.db, w.constraints, &generator, /*seed=*/403);
    ApproxOcaResult result = sampler.EstimateOcaWithWalks(*q, 150);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ApproxOcqa150Walks)
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMillisecond);

void BM_ExactOcqaSameInstances(benchmark::State& state) {
  size_t conflicts = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      conflicts + 2, conflicts, 2, /*seed=*/402);
  UniformChainGenerator generator;
  Result<Query> q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)");
  for (auto _ : state) {
    OcaResult result = ComputeOca(w.db, w.constraints, generator, *q);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExactOcqaSameInstances)
    ->DenseRange(1, 5, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
