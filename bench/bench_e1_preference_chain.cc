// E1 — Reproduces the Section 3 figure: the tree-shaped repairing Markov
// chain of the preference example, with all edge probabilities.

#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "repair/preference_generator.h"
#include "repair/repair_enumerator.h"

int main() {
  using namespace opcqa;
  bench::Header("E1", "Section 3 figure: preference repairing Markov chain");

  gen::Workload w = gen::PaperPreferenceExample();
  std::printf("D  = { %s }\n", w.db.ToString().c_str());
  std::printf("Σ  = { %s }\n\n", w.constraints[0].ToString(*w.schema).c_str());

  PreferenceChainGenerator generator(w.schema->RelationOrDie("Pref"));
  std::printf("%s\n",
              RenderChainTree(w.db, w.constraints, generator).c_str());

  // The figure's twelve edge probabilities, verified programmatically.
  auto context = RepairContext::Make(w.db, w.constraints);
  RepairingState root(context);
  std::vector<Operation> exts = root.ValidExtensions();
  std::vector<Rational> probs =
      CheckedProbabilities(generator, root, exts);
  bench::Note("root edges (paper: -(a,b):2/9  -(b,a):3/9  -(a,c):1/9  "
              "-(c,a):3/9):");
  for (size_t i = 0; i < exts.size(); ++i) {
    if (probs[i].is_zero()) continue;
    std::printf("    P(ε → %s) = %s\n",
                exts[i].ToString(*w.schema).c_str(),
                probs[i].ToString().c_str());
  }
  return 0;
}
