// E13 — Consistent scalar aggregation (Section 6, "More Expressive
// Languages", after the scalar-aggregation TCS'03 paper): classical range
// semantics [glb, lub] next to the operational refinement — the full
// distribution of the aggregate with expectation and variance — plus the
// sampled estimator converging to the exact expectation.

#include <cstdio>

#include "bench_common.h"
#include "constraints/constraint_parser.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/aggregation.h"

int main() {
  using namespace opcqa;
  bench::Header("E13", "consistent aggregation: range vs distribution");

  // Accounts with conflicting balances (a classic inconsistent-DB story):
  // R(k, v) with key k; two groups are disputed.
  Schema schema;
  schema.AddRelation("R", 2);
  Database db(&schema);
  PredId r = schema.RelationOrDie("R");
  auto add = [&](const char* k, const char* v) {
    db.Insert(Fact(r, {Const(k), Const(v)}));
  };
  add("acc1", "100");
  add("acc1", "140");   // disputed
  add("acc2", "50");
  add("acc3", "10");
  add("acc3", "70");    // disputed
  ConstraintSet sigma =
      ParseConstraints(schema, "key: R(x,y), R(x,z) -> y = z").value();
  Query q = ParseQuery(schema, "Q(x,y) := R(x,y)").value();

  UniformChainGenerator generator;
  EnumerationResult chain = EnumerateRepairs(db, sigma, generator);
  std::printf("  %zu operational repairs; success mass %s\n",
              chain.repairs.size(), chain.success_mass.ToString().c_str());

  const struct {
    AggregateKind kind;
    const char* range_claim;
  } kAggregates[] = {
      {AggregateKind::kSum, "[50, 260]"},
      {AggregateKind::kCount, "[1, 3]"},
      {AggregateKind::kMin, "[10, 50]"},
      {AggregateKind::kMax, "[50, 140]"},
      {AggregateKind::kAvg, "[30, 95]"},
  };
  for (const auto& aggregate : kAggregates) {
    auto dist =
        ComputeAggregateDistribution(chain, q, aggregate.kind, 1).value();
    std::string range = "[" + dist.glb->ToString() + ", " +
                        dist.lub->ToString() + "]";
    bench::Row(std::string(AggregateKindName(aggregate.kind)) +
                   " range [glb, lub]",
               aggregate.range_claim, range);
    std::printf("      E = %-10s Var = %-12s support = %zu values, "
                "undefined mass = %s\n",
                dist.expectation.ToString().c_str(),
                dist.variance.ToString().c_str(), dist.distribution.size(),
                dist.undefined_mass.ToString().c_str());
  }
  bench::Note("range semantics collapses the whole distribution to two "
              "numbers; the operational semantics keeps the shape "
              "(e.g. how much mass sits at the classical glb/lub).");

  // Sampled estimator vs exact expectation on a larger instance (small
  // enough that the exact chain does not truncate: 4 conflict groups ≈
  // 2.7k states; 8 groups would need ~10^8).
  std::printf("\n  sampled E[COUNT] vs exact (key workload, 4 conflicts):\n");
  gen::Workload w = gen::MakeKeyViolationWorkload(8, 4, 2, /*seed=*/9);
  Query wq = ParseQuery(*w.schema, "Q(x,y) := R(x,y)").value();
  // Values v<k>_<i> are not numeric, so aggregate COUNT (always defined).
  EnumerationResult wchain = EnumerateRepairs(w.db, w.constraints, generator);
  if (wchain.truncated) {
    std::printf("  exact enumeration truncated — instance too large\n");
    return 1;
  }
  auto exact =
      ComputeAggregateDistribution(wchain, wq, AggregateKind::kCount, 0)
          .value();
  std::printf("  exact E[COUNT] = %s (~%.4f)\n",
              exact.expectation.ToString().c_str(),
              exact.expectation.ToDouble());
  std::printf("  %8s %14s %10s\n", "walks", "est E[COUNT]", "abs err");
  for (size_t walks : {50, 150, 600, 2400}) {
    Sampler sampler(w.db, w.constraints, &generator, /*seed=*/123);
    auto estimate = EstimateExpectedAggregate(sampler, wq,
                                              AggregateKind::kCount, 0,
                                              walks)
                        .value();
    std::printf("  %8zu %14.4f %10.4f\n", walks, estimate.expectation,
                std::abs(estimate.expectation -
                         exact.expectation.ToDouble()));
  }
  bench::Note("Hoeffding-style 1/sqrt(n) convergence carries over to "
              "bounded aggregates.");
  return 0;
}
