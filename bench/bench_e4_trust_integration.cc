// E4 — Reproduces Example 5 / the introduction's data-integration
// numbers: with two 50%-reliable sources, the conflicting pair is fixed by
// removing either fact with probability 0.375 and both with 0.25; sweeps
// the trust level to show how the distribution shifts.

#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "repair/ocqa.h"
#include "repair/trust_generator.h"

int main() {
  using namespace opcqa;
  bench::Header("E4", "Example 5: trust-based integration generator");

  gen::Workload w = gen::PaperKeyPairExample();
  Fact ab = Fact::Make(*w.schema, "R", {"a", "b"});
  Fact ac = Fact::Make(*w.schema, "R", {"a", "c"});

  {
    TrustChainGenerator generator({}, Rational(1, 2));
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    Database keep_ab(w.schema.get());
    keep_ab.Insert(ab);
    Database keep_ac(w.schema.get());
    keep_ac.Insert(ac);
    Database keep_none(w.schema.get());
    bench::Row("P(remove R(a,c)) [trust 0.5/0.5]", "0.375",
               result.ProbabilityOf(keep_ab).ToString());
    bench::Row("P(remove R(a,b)) [trust 0.5/0.5]", "0.375",
               result.ProbabilityOf(keep_ac).ToString());
    bench::Row("P(remove both)   [trust 0.5/0.5]", "0.25",
               result.ProbabilityOf(keep_none).ToString());
  }

  std::printf("\ntrust sweep for tr(R(a,b)) = t, tr(R(a,c)) = 1-t:\n");
  std::printf("%6s %14s %14s %14s\n", "t", "P(keep ab)", "P(keep ac)",
              "P(keep none)");
  for (int tenth = 1; tenth <= 9; ++tenth) {
    TrustChainGenerator generator(
        {{ab, Rational(tenth, 10)}, {ac, Rational(10 - tenth, 10)}});
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    Database keep_ab(w.schema.get());
    keep_ab.Insert(ab);
    Database keep_ac(w.schema.get());
    keep_ac.Insert(ac);
    Database keep_none(w.schema.get());
    std::printf("%6.1f %14.4f %14.4f %14.4f\n", tenth / 10.0,
                result.ProbabilityOf(keep_ab).ToDouble(),
                result.ProbabilityOf(keep_ac).ToDouble(),
                result.ProbabilityOf(keep_none).ToDouble());
  }
  bench::Note("shape check: higher trust in R(a,b) ⇒ it survives more "
              "often; 'remove both' peaks at balanced distrust (paper's "
              "flexibility claim vs ABC, which never removes both).");

  // Larger integrated instance: exact distribution over a seeded trust
  // workload, to show the generator scales beyond the two-fact example.
  gen::TrustWorkload tw = gen::MakeTrustWorkload(4, 2, 2, /*seed=*/20);
  TrustChainGenerator generator(tw.trust);
  EnumerationResult result = EnumerateRepairs(
      tw.workload.db, tw.workload.constraints, generator);
  std::printf("\nseeded integration instance (%zu facts, 2 conflicting "
              "keys): %zu repairs, success mass = %s\n",
              tw.workload.db.size(), result.repairs.size(),
              result.success_mass.ToString().c_str());
  return 0;
}
