// E10 — Ablation for the Section 6 "Optimizations" direction (repair
// localization, after [15]): exact per-fact marginals via the monolithic
// chain (exponential in the number of conflicts, because the chain
// interleaves independent components) versus the factored per-component
// enumeration (linear in the number of components). Results are identical;
// only the cost differs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "gen/workloads.h"
#include "repair/localization.h"
#include "repair/ocqa.h"

namespace {

using namespace opcqa;

void BM_MonolithicExact(benchmark::State& state) {
  size_t conflicts = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      conflicts + 2, conflicts, 2, /*seed=*/600);
  UniformChainGenerator generator;
  for (auto _ : state) {
    EnumerationResult result =
        EnumerateRepairs(w.db, w.constraints, generator);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MonolithicExact)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMillisecond);

void BM_LocalizedExact(benchmark::State& state) {
  size_t conflicts = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      conflicts + 2, conflicts, 2, /*seed=*/600);
  UniformChainGenerator generator;
  for (auto _ : state) {
    Result<LocalizedRepairs> result =
        LocalizeAndEnumerate(w.db, w.constraints, generator);
    benchmark::DoNotOptimize(result);
  }
  gen::Workload check = gen::MakeKeyViolationWorkload(
      conflicts + 2, conflicts, 2, /*seed=*/600);
  Result<LocalizedRepairs> localized =
      LocalizeAndEnumerate(check.db, check.constraints, generator);
  state.counters["components"] =
      static_cast<double>(localized->components().size());
  state.counters["repair_combinations"] =
      localized->NumRepairCombinations().ToDouble();
}
BENCHMARK(BM_LocalizedExact)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMillisecond);

// The localized engine keeps scaling where the monolithic one stopped:
// hundreds of conflicts.
void BM_LocalizedExactLarge(benchmark::State& state) {
  size_t conflicts = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeKeyViolationWorkload(
      conflicts + 10, conflicts, 2, /*seed=*/601);
  UniformChainGenerator generator;
  for (auto _ : state) {
    Result<LocalizedRepairs> result =
        LocalizeAndEnumerate(w.db, w.constraints, generator);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LocalizedExactLarge)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMillisecond);

// Correctness gate run once at exit of the benchmark binary: the factored
// marginals equal the monolithic CPs on a verifiable size.
void BM_EqualityGate(benchmark::State& state) {
  gen::Workload w = gen::MakeKeyViolationWorkload(6, 4, 2, /*seed=*/602);
  UniformChainGenerator generator;
  bool equal = true;
  for (auto _ : state) {
    EnumerationResult mono = EnumerateRepairs(w.db, w.constraints, generator);
    Result<LocalizedRepairs> localized =
        LocalizeAndEnumerate(w.db, w.constraints, generator);
    for (const Fact& fact : w.db.AllFacts()) {
      Rational mono_p;
      for (const RepairInfo& info : mono.repairs) {
        if (info.repair.Contains(fact)) mono_p += info.probability;
      }
      mono_p /= mono.success_mass;
      if (localized->FactSurvivalProbability(fact) != mono_p) equal = false;
    }
    benchmark::DoNotOptimize(equal);
  }
  state.counters["marginals_equal"] = equal ? 1 : 0;
}
BENCHMARK(BM_EqualityGate)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
