// E11 — Compares the three uncertainty semantics the paper discusses:
//   * ABC certain answers (the classical yes/no baseline, Section 2);
//   * operational CP under the hitting distribution (Definition 7);
//   * equally-likely-repair proportions (Section 6, after Greco &
//     Molinaro [21]).
// The paper's qualitative claim (Example 7): the operational semantics
// grades answers the classical semantics discards, and the two
// probabilistic semantics differ whenever the chain visits repairs with
// unequal likelihood.

#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "repair/abc.h"
#include "repair/counting.h"
#include "repair/ocqa.h"
#include "repair/preference_generator.h"

int main() {
  using namespace opcqa;
  bench::Header("E11", "semantics comparison: certain vs CP vs counting");

  // Part 1: the paper's own instance (Example 7).
  {
    gen::Workload w = gen::PaperPreferenceExample();
    PreferenceChainGenerator generator(w.schema->RelationOrDie("Pref"));
    Query q = ParseQuery(*w.schema,
                         "Q(x) := forall y (Pref(x,y) | x = y)").value();
    EnumerationResult chain = EnumerateRepairs(w.db, w.constraints, generator);
    OcaResult oca = OcaFromEnumeration(chain, q);
    CountingOcaResult counting = CountingOcaFromEnumeration(chain, q);
    auto abc = AbcRepairs(w.db, w.constraints);
    std::set<Tuple> certain = CertainAnswers(abc.value(), q);

    bench::Row("ABC certain answers", "{} (empty)",
               certain.empty() ? "{} (empty)" : "non-empty");
    bench::Row("operational CP(a)", "0.45 (Example 7)",
               oca.Probability({Const("a")}).ToString());
    bench::Row("equally-likely proportion of a", "1/4 (1 of 4 repairs)",
               counting.Proportion({Const("a")}).ToString());
    bench::Note("CP(a) = 9/20 > 1/4: the preference chain makes the "
                "a-top repair more likely than uniform counting does.");
  }

  // Part 2: synthetic key workload — all three semantics side by side.
  {
    gen::Workload w = gen::MakeKeyViolationWorkload(4, 2, 2, /*seed=*/77);
    UniformChainGenerator generator;
    Query q = ParseQuery(*w.schema, "Q(x,y) := R(x,y)").value();
    EnumerationResult chain = EnumerateRepairs(w.db, w.constraints, generator);
    OcaResult oca = OcaFromEnumeration(chain, q);
    CountingOcaResult counting = CountingOcaFromEnumeration(chain, q);
    auto abc = AbcRepairs(w.db, w.constraints);
    std::set<Tuple> certain = CertainAnswers(abc.value(), q);

    std::printf("\n  uniform chain over 2 key conflicts (%zu repairs, "
                "%zu ABC repairs):\n",
                chain.repairs.size(), abc.value().size());
    std::printf("  %-18s %10s %14s %12s\n", "tuple", "certain?", "CP",
                "proportion");
    for (const auto& [tuple, cp] : oca.answers) {
      std::printf("  %-18s %10s %14s %12s\n", TupleToString(tuple).c_str(),
                  certain.count(tuple) ? "yes" : "no",
                  cp.ToString().c_str(),
                  counting.Proportion(tuple).ToString().c_str());
    }
    bench::Note("clean tuples: certain + CP = 1; conflicting tuples: not "
                "certain, CP grades them; counting differs from CP "
                "because pair-deletions make repairs non-uniform.");
    bench::Note("E[|Q|] = " +
                ExpectedAnswerCount(chain, q).ToString() +
                " (= Σ_t CP(t), the linearity bridge).");
  }
  return 0;
}
