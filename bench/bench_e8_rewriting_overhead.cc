// E8 — The Section 5 implementation sketch's measurement: "modified
// queries in which relations R are replaced with R − R_del ... their
// performance is quite similar to that of the original query". Times the
// original CQ against the rewritten one on the algebra engine
// (google-benchmark) across database sizes.

#include <benchmark/benchmark.h>

#include "engine/key_repair_executor.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"

namespace {

using namespace opcqa;
using namespace opcqa::engine;

struct JoinFixture {
  gen::Workload w;
  Query query;
  std::map<PredId, Relation> dirty;
  std::map<PredId, Relation> repaired;

  explicit JoinFixture(size_t rows)
      : w(gen::MakeJoinWorkload(rows, rows / 10 + 1, /*seed=*/500)),
        query(*ParseQuery(*w.schema,
                          "Q(x,u) := exists y,z (R(x,y), S(y,z), T(z,u))")) {
    for (PredId p = 0; p < w.schema->size(); ++p) {
      dirty.emplace(p, Relation::FromDatabase(w.db, p));
    }
    KeyRepairExecutor executor(
        w.db,
        {KeySpec{w.schema->RelationOrDie("R"), {0}},
         KeySpec{w.schema->RelationOrDie("S"), {0}},
         KeySpec{w.schema->RelationOrDie("T"), {0}}},
        /*seed=*/501);
    repaired = executor.SampleRepairedRelations();
  }

  std::map<PredId, const Relation*> Pointers(
      const std::map<PredId, Relation>& rels) const {
    std::map<PredId, const Relation*> out;
    for (const auto& [p, rel] : rels) out[p] = &rel;
    return out;
  }
};

void BM_OriginalQuery(benchmark::State& state) {
  JoinFixture fixture(static_cast<size_t>(state.range(0)));
  auto pointers = fixture.Pointers(fixture.dirty);
  for (auto _ : state) {
    Relation result = ExecuteConjunctive(fixture.query, pointers);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows_per_rel"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_OriginalQuery)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Unit(benchmark::kMillisecond);

// The rewritten query runs over R − R_del (already materialized the way a
// DBMS would pipeline the anti-join); includes the difference cost.
void BM_RewrittenQueryWithDifference(benchmark::State& state) {
  JoinFixture fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    // Materialize R_del = R − survivors, then run over R − R_del, exactly
    // the plan shape of the paper's loop.
    std::map<PredId, Relation> reduced;
    for (const auto& [p, rel] : fixture.dirty) {
      Relation r_del = Difference(rel, fixture.repaired.at(p));
      reduced.emplace(p, Difference(rel, r_del));
    }
    std::map<PredId, const Relation*> pointers;
    for (const auto& [p, rel] : reduced) pointers[p] = &rel;
    Relation result = ExecuteConjunctive(fixture.query, pointers);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RewrittenQueryWithDifference)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Unit(benchmark::kMillisecond);

// One full sampling round (repair sampling + rewritten query), the unit
// the n-round loop repeats.
void BM_FullSamplingRound(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeJoinWorkload(rows, rows / 10 + 1, /*seed=*/502);
  Query query = *ParseQuery(
      *w.schema, "Q(x,u) := exists y,z (R(x,y), S(y,z), T(z,u))");
  KeyRepairExecutor executor(
      w.db,
      {KeySpec{w.schema->RelationOrDie("R"), {0}},
       KeySpec{w.schema->RelationOrDie("S"), {0}},
       KeySpec{w.schema->RelationOrDie("T"), {0}}},
      /*seed=*/503);
  for (auto _ : state) {
    std::map<PredId, Relation> repaired = executor.SampleRepairedRelations();
    std::map<PredId, const Relation*> pointers;
    for (const auto& [p, rel] : repaired) pointers[p] = &rel;
    Relation result = ExecuteConjunctive(query, pointers);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullSamplingRound)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
