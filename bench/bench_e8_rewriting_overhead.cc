// E8 — The Section 5 implementation sketch's measurement: "modified
// queries in which relations R are replaced with R − R_del ... their
// performance is quite similar to that of the original query". Times the
// original CQ against the rewritten one on the algebra engine
// (google-benchmark) across database sizes.

#include <benchmark/benchmark.h>

#include "engine/key_repair_executor.h"
#include "engine/ocqa_session.h"
#include "gen/workloads.h"
#include "logic/formula_parser.h"
#include "planner/planner.h"
#include "repair/ocqa.h"
#include "repair/repair_cache.h"

namespace {

using namespace opcqa;
using namespace opcqa::engine;

struct JoinFixture {
  gen::Workload w;
  Query query;
  std::map<PredId, Relation> dirty;
  std::map<PredId, Relation> repaired;

  explicit JoinFixture(size_t rows)
      : w(gen::MakeJoinWorkload(rows, rows / 10 + 1, /*seed=*/500)),
        query(*ParseQuery(*w.schema,
                          "Q(x,u) := exists y,z (R(x,y), S(y,z), T(z,u))")) {
    for (PredId p = 0; p < w.schema->size(); ++p) {
      dirty.emplace(p, Relation::FromDatabase(w.db, p));
    }
    KeyRepairExecutor executor(
        w.db,
        {KeySpec{w.schema->RelationOrDie("R"), {0}},
         KeySpec{w.schema->RelationOrDie("S"), {0}},
         KeySpec{w.schema->RelationOrDie("T"), {0}}},
        /*seed=*/501);
    repaired = executor.SampleRepairedRelations();
  }

  std::map<PredId, const Relation*> Pointers(
      const std::map<PredId, Relation>& rels) const {
    std::map<PredId, const Relation*> out;
    for (const auto& [p, rel] : rels) out[p] = &rel;
    return out;
  }
};

void BM_OriginalQuery(benchmark::State& state) {
  JoinFixture fixture(static_cast<size_t>(state.range(0)));
  auto pointers = fixture.Pointers(fixture.dirty);
  for (auto _ : state) {
    Relation result = ExecuteConjunctive(fixture.query, pointers);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows_per_rel"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_OriginalQuery)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Unit(benchmark::kMillisecond);

// The rewritten query runs over R − R_del (already materialized the way a
// DBMS would pipeline the anti-join); includes the difference cost.
void BM_RewrittenQueryWithDifference(benchmark::State& state) {
  JoinFixture fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    // Materialize R_del = R − survivors, then run over R − R_del, exactly
    // the plan shape of the paper's loop.
    std::map<PredId, Relation> reduced;
    for (const auto& [p, rel] : fixture.dirty) {
      Relation r_del = Difference(rel, fixture.repaired.at(p));
      reduced.emplace(p, Difference(rel, r_del));
    }
    std::map<PredId, const Relation*> pointers;
    for (const auto& [p, rel] : reduced) pointers[p] = &rel;
    Relation result = ExecuteConjunctive(fixture.query, pointers);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RewrittenQueryWithDifference)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Unit(benchmark::kMillisecond);

// One full sampling round (repair sampling + rewritten query), the unit
// the n-round loop repeats.
void BM_FullSamplingRound(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  gen::Workload w = gen::MakeJoinWorkload(rows, rows / 10 + 1, /*seed=*/502);
  Query query = *ParseQuery(
      *w.schema, "Q(x,u) := exists y,z (R(x,y), S(y,z), T(z,u))");
  KeyRepairExecutor executor(
      w.db,
      {KeySpec{w.schema->RelationOrDie("R"), {0}},
       KeySpec{w.schema->RelationOrDie("S"), {0}},
       KeySpec{w.schema->RelationOrDie("T"), {0}}},
      /*seed=*/503);
  for (auto _ : state) {
    std::map<PredId, Relation> repaired = executor.SampleRepairedRelations();
    std::map<PredId, const Relation*> pointers;
    for (const auto& [p, rel] : repaired) pointers[p] = &rel;
    Relation result = ExecuteConjunctive(query, pointers);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullSamplingRound)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

// --- PR-6 dispatcher overhead -------------------------------------------
//
// The planner's decision must be near-free on the slice it cannot help:
// queries that end up walking anyway. Both arms below run the *identical*
// warm memoized walk (shared RepairSpaceCache, primed outside timing);
// /1 additionally pays a fresh planner decision every iteration
// (Invalidate() defeats the plan cache — the worst case; steady-state
// dispatch is a single hash-map probe). Overhead = time(/1)/time(/0) − 1,
// gated < 5% by the committed note in BENCH_e5_exact_scaling.json.
// /2 times the fresh decision *alone* (no walk): the numerator of the
// overhead ratio, robust to walk-time noise.
void BM_NonRewritableDispatch(benchmark::State& state) {
  bool dispatch = state.range(0) != 0;
  bool decision_only = state.range(0) == 2;
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  // Existential over the conflicted relation: in the FO-rewritable
  // fragment, but outside the proven-coincidence gates — the planner must
  // classify, conflict-check R, and still choose the walk.
  Query query = *ParseQuery(*w.schema, "Q(x) := exists y: R(x,y)");
  UniformChainGenerator generator;
  RepairSpaceCache cache;
  EnumerationOptions options;
  options.memoize = true;
  options.cache = &cache;
  planner::QueryPlanner planner;
  auto walk = [&]() {
    OcaResult oca =
        ComputeOca(w.db, w.constraints, generator, query, options);
    std::vector<Tuple> certain = oca.AnswersAtLeast(Rational(1));
    benchmark::DoNotOptimize(certain);
  };
  walk();  // prime the cross-query cache: timed walks replay the chain
  size_t walk_plans = 0;
  for (auto _ : state) {
    if (dispatch) {
      planner.Invalidate();  // force a full re-classification
      Result<planner::QueryPlan> plan =
          planner.Plan(w.db, w.constraints, generator, query);
      benchmark::DoNotOptimize(plan);
    }
    if (!decision_only) walk();
  }
  walk_plans = planner.stats().walk_plans;
  state.counters["walk_plans"] = static_cast<double>(walk_plans);
}
BENCHMARK(BM_NonRewritableDispatch)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// The serving mix: 4 certain-answer queries against one session — two
// rewritable (quantifier-free), two not (existential over the conflicted
// R; a self-join) — dispatched with the planner off (/0, walk forced) vs
// on (/1, kAuto). The planner pays its decisions only once (plan cache),
// rewrites what it can prove, and walks the rest.
void BM_DispatcherMix(benchmark::State& state) {
  bool planner_on = state.range(0) != 0;
  gen::Workload w = gen::MakeKeyViolationWorkload(7, 5, 2, /*seed=*/100);
  const char* texts[] = {
      "Q(x,y) := R(x,y)",                  // rewritable (quantifier-free)
      "Q(y) := R(k0, y)",                  // rewritable (quantifier-free)
      "Q(x) := exists y: R(x,y)",          // walks: conflicted + existential
      "Q(x) := exists y: (R(x,y), R(y,x))" // walks: self-join
  };
  std::vector<Query> queries;
  for (const char* text : texts) {
    queries.push_back(*ParseQuery(*w.schema, text));
  }
  UniformChainGenerator generator;
  engine::SessionOptions options;
  options.plan =
      planner_on ? planner::PlanMode::kAuto : planner::PlanMode::kWalk;
  engine::OcqaSession session(w.db, w.constraints, options);
  for (const Query& q : queries) {  // prime: record chains, fill plan cache
    Result<engine::CertainAnswersResult> primed =
        session.CertainAnswers(generator, q);
    OPCQA_CHECK(primed.ok()) << primed.status().message();
  }
  for (auto _ : state) {
    for (const Query& q : queries) {
      Result<engine::CertainAnswersResult> result =
          session.CertainAnswers(generator, q);
      benchmark::DoNotOptimize(result);
    }
  }
  state.counters["queries"] = 4;
  state.counters["rewrite_plans"] =
      static_cast<double>(session.PlanStats().rewrite_plans);
  state.counters["walk_plans"] =
      static_cast<double>(session.PlanStats().walk_plans);
}
BENCHMARK(BM_DispatcherMix)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
