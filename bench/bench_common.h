// Shared helpers for the experiment harnesses: section headers and
// paper-vs-measured rows with a uniform format, so EXPERIMENTS.md can be
// cross-checked against raw bench output.

#ifndef OPCQA_BENCH_BENCH_COMMON_H_
#define OPCQA_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <string>

namespace opcqa {
namespace bench {

inline void Header(const std::string& experiment_id,
                   const std::string& title) {
  std::printf("\n====================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("====================================================\n");
}

inline void Row(const std::string& what, const std::string& paper,
                const std::string& measured) {
  std::printf("%-46s | paper: %-18s | measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace opcqa

#endif  // OPCQA_BENCH_BENCH_COMMON_H_
