// Shared helpers for the experiment harnesses: section headers and
// paper-vs-measured rows with a uniform format, so EXPERIMENTS.md can be
// cross-checked against raw bench output.
//
// Every Header/Row/Note call is also recorded and flushed at process exit
// to BENCH_<experiment_id>.json in the working directory (one JSON object
// per experiment section), so the perf trajectory accumulates in
// machine-readable form. The google-benchmark harnesses additionally
// support --benchmark_format=json natively.

#ifndef OPCQA_BENCH_BENCH_COMMON_H_
#define OPCQA_BENCH_BENCH_COMMON_H_

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace opcqa {
namespace bench {

/// Thread knob for the parallel harness sections: OPCQA_BENCH_THREADS when
/// set to a positive integer, else std::thread::hardware_concurrency().
/// Recorded (with the hardware concurrency) in every emitted BENCH_*.json
/// so per-thread-count timings stay interpretable across machines.
inline size_t Threads() {
  if (const char* env = std::getenv("OPCQA_BENCH_THREADS")) {
    long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<size_t>(value);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

namespace internal {

struct JsonRecorder {
  std::string experiment_id;
  std::string title;
  // The Threads() env/hardware knob at Header() time. Sweep sections that
  // drive explicit thread counts record those per row; this field is the
  // harness default, not a claim about every row.
  size_t threads = 1;
  // Set via MarkThreadSweep(): this section varies worker-thread counts,
  // so its timings are only meaningful on a multi-core recorder. Together
  // with the emitted single_core field it lets bench/check_regression.py
  // refuse to gate a thread sweep whose baseline shows scheduling
  // overhead instead of speedup (recorded with hardware_concurrency==1).
  bool thread_sweep = false;
  // (what, paper, measured) rows and free-form notes, in emission order.
  std::vector<std::array<std::string, 3>> rows;
  std::vector<std::string> notes;

  static std::string Escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  void Flush() {
    if (experiment_id.empty()) return;
    std::string path = "BENCH_" + experiment_id + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"experiment\": \"%s\",\n  \"title\": \"%s\",\n",
                 Escape(experiment_id).c_str(), Escape(title).c_str());
    unsigned hw = std::thread::hardware_concurrency();
    std::fprintf(f,
                 "  \"threads_knob\": %zu,\n  \"hardware_concurrency\": %u,\n",
                 threads, hw == 0 ? 1u : hw);
    std::fprintf(f, "  \"single_core\": %s,\n  \"thread_sweep\": %s,\n",
                 hw <= 1 ? "true" : "false",
                 thread_sweep ? "true" : "false");
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "    {\"what\": \"%s\", \"paper\": \"%s\", "
                   "\"measured\": \"%s\"}%s\n",
                   Escape(rows[i][0]).c_str(), Escape(rows[i][1]).c_str(),
                   Escape(rows[i][2]).c_str(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"notes\": [\n");
    for (size_t i = 0; i < notes.size(); ++i) {
      std::fprintf(f, "    \"%s\"%s\n", Escape(notes[i]).c_str(),
                   i + 1 < notes.size() ? "," : "");
    }
    // End-of-run metrics-registry snapshot (PR 10): lets a perf
    // investigation correlate a timing shift with counter movement
    // (cache hit rate, breaker trips, …) without rerunning the bench.
    const obs::MetricsSnapshot metrics =
        obs::MetricsRegistry::Global().Snapshot();
    std::fprintf(f, "  ],\n  \"metrics\": {\n    \"counters\": {");
    const char* sep = "";
    for (const auto& [name, value] : metrics.counters) {
      std::fprintf(f, "%s\n      \"%s\": %llu", sep, Escape(name).c_str(),
                   static_cast<unsigned long long>(value));
      sep = ",";
    }
    std::fprintf(f, "\n    },\n    \"gauges\": {");
    sep = "";
    for (const auto& [name, value] : metrics.gauges) {
      std::fprintf(f, "%s\n      \"%s\": %lld", sep, Escape(name).c_str(),
                   static_cast<long long>(value));
      sep = ",";
    }
    std::fprintf(f, "\n    },\n    \"histograms\": {");
    sep = "";
    for (const auto& [name, hist] : metrics.histograms) {
      std::fprintf(f,
                   "%s\n      \"%s\": {\"count\": %llu, \"sum_ms\": %.3f, "
                   "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                   "\"max_ms\": %.3f}",
                   sep, Escape(name).c_str(),
                   static_cast<unsigned long long>(hist.count), hist.sum_ms,
                   hist.p50_ms, hist.p95_ms, hist.p99_ms, hist.max_ms);
      sep = ",";
    }
    std::fprintf(f, "\n    }\n  }\n}\n");
    std::fclose(f);
  }
};

inline JsonRecorder& Recorder() {
  // Flushed by atexit so harnesses need no explicit teardown call.
  static JsonRecorder* recorder = [] {
    auto* r = new JsonRecorder();
    std::atexit([] { Recorder().Flush(); });
    return r;
  }();
  return *recorder;
}

}  // namespace internal

inline void Header(const std::string& experiment_id,
                   const std::string& title) {
  std::printf("\n====================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("====================================================\n");
  internal::JsonRecorder& recorder = internal::Recorder();
  recorder.Flush();  // one JSON file per experiment section
  recorder.rows.clear();
  recorder.notes.clear();
  recorder.experiment_id = experiment_id;
  recorder.title = title;
  recorder.threads = Threads();
  recorder.thread_sweep = false;
}

/// Tags the current section as a worker-thread sweep (timings vs thread
/// count). check_regression.py skips such series when the recording
/// machine was single-core — a 1-core sweep measures scheduling overhead,
/// not speedup, and would gate future runners on noise.
inline void MarkThreadSweep() { internal::Recorder().thread_sweep = true; }

inline void Row(const std::string& what, const std::string& paper,
                const std::string& measured) {
  std::printf("%-46s | paper: %-18s | measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
  internal::Recorder().rows.push_back({what, paper, measured});
}

inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
  internal::Recorder().notes.push_back(text);
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace opcqa

#endif  // OPCQA_BENCH_BENCH_COMMON_H_
