// E12 — The Proposition 7 NP-hardness gadget in action: 3-SAT encoded as
// key repairs, TPC (is CP > 0?) separating satisfiable from unsatisfiable
// instances, exact cost exploding with the variable count while the
// Theorem 9 sampler stays polynomial (and, per Theorem 6, can miss
// low-probability positives — no FPRAS).

#include <cstdio>

#include "bench_common.h"
#include "gen/workloads.h"
#include "repair/ocqa.h"
#include "repair/sampler.h"

int main() {
  using namespace opcqa;
  bench::Header("E12", "Prop. 7 hardness gadget: 3-SAT as key repairs");

  UniformChainGenerator generator;

  // TPC on satisfiable vs unsatisfiable instances.
  {
    gen::SatWorkload sat = gen::MakePlantedSatWorkload(3, 5, /*seed=*/2);
    Query q = gen::SatQuery(sat.workload);
    Rational cp = ComputeTupleProbability(
        sat.workload.db, sat.workload.constraints, generator, q, Tuple{});
    bench::Row("CP(()) on planted-SAT (3 vars, 5 clauses)", "> 0",
               cp.ToString());

    gen::SatWorkload unsat = gen::MakeUnsatWorkload(2);
    Query uq = gen::SatQuery(unsat.workload);
    Rational ucp = ComputeTupleProbability(unsat.workload.db,
                                           unsat.workload.constraints,
                                           generator, uq, Tuple{});
    bench::Row("CP(()) on all-clauses UNSAT (2 vars)", "0 (exactly)",
               ucp.ToString());
  }

  // Exact cost vs variable count (the FP#P wall).
  std::printf("\n  exact enumeration cost (planted SAT, 2·vars clauses):\n");
  std::printf("  %6s %12s %14s %12s\n", "vars", "CP(())", "chain states",
              "time (ms)");
  for (size_t vars = 3; vars <= 6; ++vars) {
    gen::SatWorkload sat =
        gen::MakePlantedSatWorkload(vars, 2 * vars, /*seed=*/31);
    Query q = gen::SatQuery(sat.workload);
    bench::Timer timer;
    OcaResult oca = ComputeOca(sat.workload.db, sat.workload.constraints,
                               generator, q);
    std::printf("  %6zu %12s %14zu %12.1f\n", vars,
                oca.Probability(Tuple{}).ToString().c_str(),
                oca.enumeration.states_visited, timer.ElapsedMs());
  }

  // The sampler scales but only certifies "probably positive": the
  // Theorem 6 no-FPRAS phenomenon is that small CP can be missed.
  std::printf("\n  sampler on larger instances (150 walks, eps=delta=0.1):\n");
  std::printf("  %6s %10s %14s %12s\n", "vars", "clauses", "est CP(())",
              "time (ms)");
  for (size_t vars : {6, 9, 12, 15}) {
    gen::SatWorkload sat =
        gen::MakePlantedSatWorkload(vars, 2 * vars, /*seed=*/55);
    Query q = gen::SatQuery(sat.workload);
    Sampler sampler(sat.workload.db, sat.workload.constraints, &generator,
                    /*seed=*/7);
    bench::Timer timer;
    double estimate = sampler.EstimateTuple(q, Tuple{}, 0.1, 0.1);
    std::printf("  %6zu %10zu %14.3f %12.1f\n", vars, 2 * vars, estimate,
                timer.ElapsedMs());
  }
  bench::Note("additive error ±0.1 cannot distinguish CP = 0 from "
              "CP = 2^-n: deciding TPC exactly stays NP-hard "
              "(Theorem 6: no FPRAS unless RP = NP).");
  return 0;
}
