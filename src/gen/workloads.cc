#include "gen/workloads.h"

#include <algorithm>
#include <set>

#include "constraints/constraint_parser.h"
#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {
namespace gen {

namespace {

// Builds a workload from schema declarations + textual facts/constraints.
// All fixture/generator code funnels through here so parsing is exercised
// constantly.
Workload Build(std::shared_ptr<Schema> schema, std::string_view facts,
               std::string_view constraints) {
  Result<Database> db = ParseDatabase(*schema, facts);
  OPCQA_CHECK(db.ok()) << db.status().ToString();
  Result<ConstraintSet> sigma = ParseConstraints(*schema, constraints);
  OPCQA_CHECK(sigma.ok()) << sigma.status().ToString();
  return Workload{std::move(schema), std::move(db).value(),
                  std::move(sigma).value()};
}

}  // namespace

Workload PaperPreferenceExample() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("Pref", 2);
  return Build(schema,
               "Pref(a,b). Pref(a,c). Pref(a,d). "
               "Pref(b,a). Pref(b,d). Pref(c,a).",
               "nosym: Pref(x,y), Pref(y,x) -> false");
}

Workload PaperExample1() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  schema->AddRelation("S", 3);
  schema->AddRelation("T", 2);
  return Build(schema, "R(a,b). R(a,c). T(a,b).",
               "sigma: R(x,y) -> exists z: S(x,y,z)\n"
               "eta: R(x,y), R(x,z) -> y = z");
}

Workload PaperExample2() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  schema->AddRelation("S", 3);
  schema->AddRelation("T", 2);
  return Build(schema, "R(a,b). R(a,c). T(a,b).",
               "sigma: T(x,y) -> R(x,y)\n"
               "eta: R(x,y), R(x,z) -> y = z");
}

Workload PaperFailingExample() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 1);
  schema->AddRelation("T", 1);
  return Build(schema, "R(a).",
               "grow: R(x) -> T(x)\n"
               "deny: T(x) -> false");
}

Workload PaperKeyPairExample() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  return Build(schema, "R(a,b). R(a,c).", "key: R(x,y), R(x,z) -> y = z");
}

Workload TinyInclusionExample() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("U", 1);
  schema->AddRelation("V", 1);
  return Build(schema, "U(a).", "incl: U(x) -> V(x)");
}

Workload MakePreferenceWorkload(size_t products, size_t edges,
                                double conflict_fraction, uint64_t seed) {
  OPCQA_CHECK_GE(products, 2u);
  auto schema = std::make_shared<Schema>();
  PredId pref = schema->AddRelation("Pref", 2);
  Database db(schema.get());
  Rng rng(seed);
  std::set<std::pair<size_t, size_t>> used;
  auto product = [](size_t i) { return Const(StrCat("p", i)); };
  size_t attempts = 0;
  while (used.size() < edges && attempts < edges * 50) {
    ++attempts;
    size_t u = rng.UniformInt(products);
    size_t v = rng.UniformInt(products);
    if (u == v) continue;
    // Never create a symmetric conflict by accident — conflicts are
    // injected explicitly below so that conflict_fraction = 0 yields a
    // consistent instance.
    if (used.count({v, u}) > 0) continue;
    if (!used.emplace(u, v).second) continue;
    db.Insert(Fact(pref, {product(u), product(v)}));
    // With the given probability also insert the symmetric conflict edge.
    if (rng.UniformDouble() < conflict_fraction &&
        used.emplace(v, u).second) {
      db.Insert(Fact(pref, {product(v), product(u)}));
    }
  }
  Result<ConstraintSet> sigma =
      ParseConstraints(*schema, "nosym: Pref(x,y), Pref(y,x) -> false");
  OPCQA_CHECK(sigma.ok());
  return Workload{std::move(schema), std::move(db),
                  std::move(sigma).value()};
}

Workload MakeKeyViolationWorkload(size_t keys, size_t violating_keys,
                                  size_t group_size, uint64_t seed) {
  OPCQA_CHECK_LE(violating_keys, keys);
  OPCQA_CHECK_GE(group_size, 2u);
  auto schema = std::make_shared<Schema>();
  PredId r = schema->AddRelation("R", 2);
  Database db(schema.get());
  Rng rng(seed);
  (void)rng;  // key/value layout is deterministic; rng reserved for shuffles
  for (size_t k = 0; k < keys; ++k) {
    ConstId key = Const(StrCat("k", k));
    size_t copies = k < violating_keys ? group_size : 1;
    for (size_t i = 0; i < copies; ++i) {
      db.Insert(Fact(r, {key, Const(StrCat("v", k, "_", i))}));
    }
  }
  Result<ConstraintSet> sigma =
      ParseConstraints(*schema, "key: R(x,y), R(x,z) -> y = z");
  OPCQA_CHECK(sigma.ok());
  return Workload{std::move(schema), std::move(db),
                  std::move(sigma).value()};
}

TrustWorkload MakeTrustWorkload(size_t keys, size_t violating_keys,
                                size_t group_size, uint64_t seed) {
  TrustWorkload result;
  result.workload =
      MakeKeyViolationWorkload(keys, violating_keys, group_size, seed);
  Rng rng(seed ^ 0x5eedULL);
  for (const Fact& fact : result.workload.db.AllFacts()) {
    int64_t tenths = 1 + static_cast<int64_t>(rng.UniformInt(9));
    result.trust.emplace(fact, Rational(tenths, 10));
  }
  return result;
}

Workload MakeInclusionWorkload(size_t r_facts, double missing_fraction,
                               uint64_t seed) {
  auto schema = std::make_shared<Schema>();
  PredId r = schema->AddRelation("R", 2);
  PredId s = schema->AddRelation("S", 2);
  Database db(schema.get());
  Rng rng(seed);
  for (size_t i = 0; i < r_facts; ++i) {
    ConstId x = Const(StrCat("x", i));
    ConstId y = Const(StrCat("y", i));
    db.Insert(Fact(r, {x, y}));
    if (rng.UniformDouble() >= missing_fraction) {
      db.Insert(Fact(s, {y, Const(StrCat("w", i))}));
    }
  }
  Result<ConstraintSet> sigma =
      ParseConstraints(*schema, "incl: R(x,y) -> exists z: S(y,z)");
  OPCQA_CHECK(sigma.ok());
  return Workload{std::move(schema), std::move(db),
                  std::move(sigma).value()};
}

Workload MakeJoinWorkload(size_t rows, size_t violating_keys, uint64_t seed) {
  auto schema = std::make_shared<Schema>();
  PredId r = schema->AddRelation("R", 2);
  PredId s = schema->AddRelation("S", 2);
  PredId t = schema->AddRelation("T", 2);
  Database db(schema.get());
  Rng rng(seed);
  auto fill = [&](PredId pred, const char* prefix_left,
                  const char* prefix_right) {
    for (size_t i = 0; i < rows; ++i) {
      ConstId left = Const(StrCat(prefix_left, i));
      // Chain joins: the right value of R matches the left value of S, etc.
      ConstId right = Const(StrCat(prefix_right, rng.UniformInt(rows)));
      db.Insert(Fact(pred, {left, right}));
      if (i < violating_keys) {
        // A second, conflicting tuple for the same key.
        db.Insert(Fact(
            pred, {left, Const(StrCat(prefix_right, rng.UniformInt(rows)))}));
      }
    }
  };
  fill(r, "a", "b");
  fill(s, "b", "c");
  fill(t, "c", "d");
  Result<ConstraintSet> sigma = ParseConstraints(
      *schema,
      "keyR: R(x,y), R(x,z) -> y = z\n"
      "keyS: S(x,y), S(x,z) -> y = z\n"
      "keyT: T(x,y), T(x,z) -> y = z");
  OPCQA_CHECK(sigma.ok());
  return Workload{std::move(schema), std::move(db),
                  std::move(sigma).value()};
}

namespace {

/// Shared scaffolding of the SAT gadgets: schema, Assign pairs with the
/// value key, and the Clause/Lit encoding of the given clause list. A
/// clause is a list of (variable index, sign) literals.
SatWorkload BuildSatWorkload(
    size_t vars, const std::vector<std::vector<std::pair<size_t, bool>>>&
                     clauses) {
  auto schema = std::make_shared<Schema>();
  PredId assign = schema->AddRelation("Assign", 2);
  PredId clause_rel = schema->AddRelation("Clause", 1);
  PredId lit = schema->AddRelation("Lit", 3);

  Database db(schema.get());
  for (size_t v = 0; v < vars; ++v) {
    ConstId var = Const(StrCat("var", v));
    db.Insert(Fact(assign, {var, Const("0")}));
    db.Insert(Fact(assign, {var, Const("1")}));
  }
  for (size_t c = 0; c < clauses.size(); ++c) {
    ConstId clause = Const(StrCat("cl", c));
    db.Insert(Fact(clause_rel, {clause}));
    for (const auto& [v, sign] : clauses[c]) {
      OPCQA_CHECK_LT(v, vars);
      db.Insert(Fact(
          lit, {clause, Const(StrCat("var", v)), Const(sign ? "1" : "0")}));
    }
  }
  Result<ConstraintSet> sigma = ParseConstraints(
      *schema, "value: Assign(x,y), Assign(x,z) -> y = z");
  OPCQA_CHECK(sigma.ok());

  SatWorkload result;
  result.workload = Workload{std::move(schema), std::move(db),
                             std::move(sigma).value()};
  result.num_vars = vars;
  result.num_clauses = clauses.size();
  return result;
}

}  // namespace

SatWorkload MakePlantedSatWorkload(size_t vars, size_t clauses,
                                   uint64_t seed) {
  OPCQA_CHECK_GE(vars, 3u) << "3-SAT clauses need at least 3 variables";
  Rng rng(seed);
  std::map<size_t, bool> assignment;
  for (size_t v = 0; v < vars; ++v) assignment[v] = rng.Bernoulli(0.5);

  std::vector<std::vector<std::pair<size_t, bool>>> clause_list;
  clause_list.reserve(clauses);
  for (size_t c = 0; c < clauses; ++c) {
    // Three distinct variables.
    std::set<size_t> chosen;
    while (chosen.size() < 3) chosen.insert(rng.UniformInt(vars));
    std::vector<std::pair<size_t, bool>> clause;
    for (size_t v : chosen) clause.emplace_back(v, rng.Bernoulli(0.5));
    // Plant satisfiability: force one literal true under the assignment.
    size_t witness = rng.UniformInt(3);
    clause[witness].second = assignment[clause[witness].first];
    clause_list.push_back(std::move(clause));
  }
  SatWorkload result = BuildSatWorkload(vars, clause_list);
  result.planted_assignment = std::move(assignment);
  return result;
}

SatWorkload MakeUnsatWorkload(size_t vars) {
  OPCQA_CHECK(vars >= 1 && vars <= 3) << "unsat gadget supports 1..3 vars";
  std::vector<std::vector<std::pair<size_t, bool>>> clause_list;
  for (size_t mask = 0; mask < (size_t{1} << vars); ++mask) {
    std::vector<std::pair<size_t, bool>> clause;
    for (size_t v = 0; v < vars; ++v) {
      // The clause falsified exactly by `mask`: literal asks for the
      // opposite of mask's bit.
      clause.emplace_back(v, (mask & (size_t{1} << v)) == 0);
    }
    clause_list.push_back(std::move(clause));
  }
  return BuildSatWorkload(vars, clause_list);
}

Query SatQuery(const Workload& workload) {
  Result<Query> q = ParseQuery(
      *workload.schema,
      "Q() := forall x1 (not Clause(x1) or "
      "exists x2 (exists x3 (Lit(x1,x2,x3), Assign(x2,x3))))");
  OPCQA_CHECK(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

}  // namespace gen
}  // namespace opcqa
