// Workload generators and the paper's worked-example fixtures.
//
// The paper publishes no datasets; these seeded generators produce the
// scenario families its narrative is built on (asymmetric-preference
// graphs, key-violating integrations with trusted sources, inclusion
// dependencies), plus byte-exact reconstructions of the instances used in
// Section 3 and Examples 1–7.

#ifndef OPCQA_GEN_WORKLOADS_H_
#define OPCQA_GEN_WORKLOADS_H_

#include <map>
#include <memory>

#include "constraints/constraint.h"
#include "logic/query.h"
#include "relational/database.h"
#include "util/random.h"
#include "util/rational.h"

namespace opcqa {
namespace gen {

/// A self-contained workload: schema (owned), dirty database, constraints.
struct Workload {
  std::shared_ptr<Schema> schema;
  Database db;
  ConstraintSet constraints;
};

// ---------------------------------------------------------------------
// Paper fixtures (exact instances from the text).
// ---------------------------------------------------------------------

/// Section 3 preference scenario: D = {Pref(a,b), Pref(a,c), Pref(a,d),
/// Pref(b,a), Pref(b,d), Pref(c,a)}, Σ = {Pref(x,y), Pref(y,x) → ⊥}.
Workload PaperPreferenceExample();

/// Example 1: D = {R(a,b), R(a,c), T(a,b)},
/// Σ = { R(x,y) → ∃z S(x,y,z);  R(x,y), R(x,z) → y=z }.
Workload PaperExample1();

/// Example 2's constraint set over Example 1's database:
/// Σ′ = { T(x,y) → R(x,y);  R(x,y), R(x,z) → y=z }.
Workload PaperExample2();

/// The failing-sequence instance of Section 3: D = {R(a)},
/// Σ = { R(x) → T(x);  T(x) → ⊥ }.
Workload PaperFailingExample();

/// Introduction's integration instance: D = {R(a,b), R(a,c)} with the key
/// R(x,y), R(x,z) → y = z.
Workload PaperKeyPairExample();

/// Minimal TGD instance for brute-force ABC cross-checks: D = {U(a)} with
/// U(x) → V(x). ABC repairs: ∅ (delete) and {U(a), V(a)} (insert).
Workload TinyInclusionExample();

// ---------------------------------------------------------------------
// Synthetic generators (seeded, deterministic).
// ---------------------------------------------------------------------

/// Random preference digraph over `products` products with `edges` distinct
/// edges of which roughly `conflict_fraction` participate in symmetric
/// conflicts; constraint Pref(x,y), Pref(y,x) → ⊥.
Workload MakePreferenceWorkload(size_t products, size_t edges,
                                double conflict_fraction, uint64_t seed);

/// Key-violation workload: relation R(k,v) with `keys` distinct key values,
/// of which `violating_keys` have `group_size` conflicting tuples each;
/// constraint R(x,y), R(x,z) → y = z.
Workload MakeKeyViolationWorkload(size_t keys, size_t violating_keys,
                                  size_t group_size, uint64_t seed);

/// Like MakeKeyViolationWorkload but also draws per-fact trust levels
/// uniformly from {1/10, ..., 9/10}.
struct TrustWorkload {
  Workload workload;
  std::map<Fact, Rational> trust;
};
TrustWorkload MakeTrustWorkload(size_t keys, size_t violating_keys,
                                size_t group_size, uint64_t seed);

/// Inclusion-dependency workload: R(x,y) → ∃z S(y,z) with `r_facts` R-facts
/// and S-witnesses missing for roughly `missing_fraction` of them (the
/// repairing chain then contains additions).
Workload MakeInclusionWorkload(size_t r_facts, double missing_fraction,
                               uint64_t seed);

/// Join workload for the Section 5 rewriting experiment: relations
/// R(a,b), S(b,c), T(c,d) with `rows` rows each and `violating_keys`
/// key-violating groups in each relation (keys: first attribute).
Workload MakeJoinWorkload(size_t rows, size_t violating_keys, uint64_t seed);

/// The NP-hardness gadget family behind Proposition 7 (TPC is NP-hard),
/// encoding 3-SAT into key repairs:
///   * Assign(v, b) holds candidate truth values; the key on v makes each
///     repair choose at most one of Assign(v,0) / Assign(v,1);
///   * Clause(c) and Lit(c, v, b) spell out the formula (literal (v,b) is
///     satisfied when Assign(v,b) survives).
/// SatQuery builds the Boolean query
///   Q() := forall c (¬Clause(c) ∨ ∃v,b (Lit(c,v,b) ∧ Assign(v,b)))
/// so CP(()) > 0 iff some repair satisfies every clause iff the formula
/// is satisfiable (repairs deleting both values only shrink the answer).
struct SatWorkload {
  Workload workload;
  size_t num_vars = 0;
  size_t num_clauses = 0;
  /// A satisfying assignment when the instance was planted; empty for
  /// unsatisfiable instances.
  std::map<size_t, bool> planted_assignment;
};

/// Random planted-satisfiable 3-SAT instance: draws a hidden assignment,
/// then `clauses` random 3-literal clauses, each containing at least one
/// literal that is true under it.
SatWorkload MakePlantedSatWorkload(size_t vars, size_t clauses,
                                   uint64_t seed);

/// A canonical unsatisfiable instance: all 2^vars full-width clauses over
/// the first `vars` variables (every assignment falsifies one). `vars`
/// must be in {1, 2, 3}.
SatWorkload MakeUnsatWorkload(size_t vars);

/// The Boolean satisfiability query for a SAT workload (see above).
Query SatQuery(const Workload& workload);

}  // namespace gen
}  // namespace opcqa

#endif  // OPCQA_GEN_WORKLOADS_H_
