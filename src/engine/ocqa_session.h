// OcqaSession — engine-level owner of a database, its constraints and the
// cross-query repair-space cache.
//
// The multi-query workload (many queries, one fixed inconsistent
// database — the setting of arXiv:2204.10592 / 2312.08038 and of any
// OCQA service) is what the session models: it holds (D, Σ) plus a
// RepairSpaceCache, threads the cache into every exact computation it
// runs, and invalidates eagerly when the database is mutated through it.
// Answers are byte-identical to the free functions in repair/ — the
// session only changes how fast repeated queries arrive.
//
// Mutation model: InsertFact/EraseFact change D in place. The cache keys
// roots by database content, so post-mutation queries fingerprint to a
// fresh root even without invalidation; the session still drops the
// superseded roots immediately (incremental invalidation — roots over
// *other* databases, e.g. localized sub-instances, survive) so memory is
// reclaimed before the root LRU would get to it.
//
// Multiplexed sessions: SessionOptions::shared_cache hands the session an
// externally-owned cache instead of its private one — the OcqaServer
// (server/ocqa_server.h) wiring, where many logical sessions serve over
// one repair space. A shared-cache session skips the eager drop on
// mutation: another logical session may still be serving the
// pre-mutation content, and content-keyed fingerprints keep the stale
// root harmless until the owner's LRU reclaims it.

#ifndef OPCQA_ENGINE_OCQA_SESSION_H_
#define OPCQA_ENGINE_OCQA_SESSION_H_

#include <cstdint>

#include "planner/planner.h"
#include "repair/counting.h"
#include "repair/ocqa.h"
#include "repair/repair_cache.h"
#include "repair/top_k.h"

namespace opcqa {
namespace engine {

struct SessionOptions {
  /// Defaults for every per-query enumeration: threads, state budget,
  /// memoization. `memoize` defaults to on — the session exists to share
  /// repair spaces (individual calls can still override).
  EnumerationOptions enumeration;
  /// Budgets of the owned RepairSpaceCache (unused with shared_cache).
  RepairCacheOptions cache;
  /// Master switch for cross-query persistence; off = every query gets a
  /// per-call scratch table (the PR-3 behaviour).
  bool persist = true;
  /// Backend dispatch for CertainAnswers(): kAuto classifies each query
  /// (planner/planner.h) and uses the FO rewriting where it provably
  /// matches the walk; kWalk forces the chain walk; kRewrite errors on
  /// out-of-fragment queries. Distribution-level APIs (Answer, Count,
  /// Enumerate, TopK) always walk — only certainty has a rewriting.
  planner::PlanMode plan = planner::PlanMode::kAuto;
  /// Externally-owned cache this session multiplexes over instead of its
  /// private one (not owned; must outlive the session). The serving
  /// setup: many sessions, one repair space, so a root one tenant walked
  /// warms every tenant with the same database content.
  RepairSpaceCache* shared_cache = nullptr;

  SessionOptions() { enumeration.memoize = true; }
};

/// Per-call overrides on top of the session defaults.
struct CallOptions {
  /// Chain-state budget for this call only (0 = session default) — the
  /// deadline knob: enumeration truncates beyond it exactly as the free
  /// functions do, independent of cache warmth or thread count.
  size_t max_states = 0;
  /// Redirects this call's enumeration to a different cache (not owned).
  /// The server's pressure-bypass path: a new root under memory pressure
  /// computes on a private per-batch cache instead of evicting a live
  /// root from the shared one.
  RepairSpaceCache* cache = nullptr;
};

/// Certain answers (CP = 1 tuples) plus how they were computed.
struct CertainAnswersResult {
  /// The certain tuples, sorted — byte-identical whichever backend ran.
  std::vector<Tuple> answers;
  planner::PlanKind plan = planner::PlanKind::kMemoizedWalk;
  /// The planner's decision rationale for this query.
  std::string plan_reason;
};

class OcqaSession {
 public:
  OcqaSession(Database db, ConstraintSet constraints,
              SessionOptions options = {});

  const Database& database() const { return db_; }
  const ConstraintSet& constraints() const { return constraints_; }
  const SessionOptions& options() const { return options_; }

  /// Exact OCA (repair/ocqa.h) under this session's cache.
  OcaResult Answer(const ChainGenerator& generator, const Query& query,
                   const CallOptions& call = {});
  /// Exact CP of a single tuple.
  Rational TupleProbability(const ChainGenerator& generator,
                            const Query& query, const Tuple& tuple);
  /// Counting (equally-likely-repairs) semantics under the cache.
  CountingOcaResult Count(const ChainGenerator& generator,
                          const Query& query, const CallOptions& call = {});
  /// Full repair distribution under the cache.
  EnumerationResult Enumerate(const ChainGenerator& generator,
                              const CallOptions& call = {});
  /// Anytime top-k, consuming subtrees earlier queries recorded.
  TopKResult TopK(const ChainGenerator& generator, size_t k,
                  const CallOptions& call = {});

  /// The planner's decision for `query` — the CertainAnswers dispatch,
  /// exposed so front ends (OcqaServer) can route rewriting-planned
  /// requests around the walk without paying for it.
  Result<planner::QueryPlan> Plan(const ChainGenerator& generator,
                                  const Query& query);

  /// Tuples with CP = 1 ("certain under the operational semantics"),
  /// dispatched through the query planner: FO-rewritable queries inside
  /// the coincidence gates skip the chain walk entirely; everything else
  /// runs Answer() and filters. Errors when the walk truncates or when
  /// SessionOptions::plan forces an impossible rewriting.
  Result<CertainAnswersResult> CertainAnswers(const ChainGenerator& generator,
                                              const Query& query,
                                              const CallOptions& call = {});

  /// Mutate the session database; returns whether it changed. Both drop
  /// the now-stale cache roots of the previous database content (private
  /// cache only — see the multiplexed-sessions note above).
  bool InsertFact(const Fact& fact);
  bool EraseFact(const Fact& fact);

  /// Spills every live cache root to the disk tier and blocks until the
  /// snapshots are durable. No-op unless the active cache names a
  /// snapshot_dir. (Session destruction also spills — see
  /// repair/repair_cache.h — so calling this is only needed for an
  /// explicit durability point mid-session.)
  void Persist() { active_cache().Persist(); }

  /// The cache queries run against: the shared one when configured,
  /// otherwise the session-owned one.
  RepairSpaceCache& cache() { return active_cache(); }
  /// Aggregated cache counters (hit rate, bytes, evictions, compression).
  MemoStats CacheStats() const { return active_cache().TotalStats(); }
  /// Disk-tier counters (spills, restores, rejected snapshots).
  DiskTierStats DiskStats() const { return active_cache().disk_stats(); }
  /// Planner decision counters (plans, cache hits, invalidations).
  const planner::PlannerStats& PlanStats() const { return planner_.stats(); }

 private:
  EnumerationOptions QueryOptions(const CallOptions& call);
  RepairSpaceCache& active_cache() const {
    return options_.shared_cache != nullptr ? *options_.shared_cache
                                            : cache_;
  }

  Database db_;
  ConstraintSet constraints_;
  SessionOptions options_;
  mutable RepairSpaceCache cache_;
  planner::QueryPlanner planner_;
};

}  // namespace engine
}  // namespace opcqa

#endif  // OPCQA_ENGINE_OCQA_SESSION_H_
