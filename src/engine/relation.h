// Column-named relations for the execution engine.
//
// The repair core works on Database (sets of facts); the engine works on
// Relation (named columns, vector of rows) because the Section 5 scheme is
// about *query plans*: Q versus Q[R ↦ R − R_del]. Rows use the same
// interned ConstId values as facts.

#ifndef OPCQA_ENGINE_RELATION_H_
#define OPCQA_ENGINE_RELATION_H_

#include <string>
#include <vector>

#include "logic/query.h"
#include "relational/database.h"

namespace opcqa {
namespace engine {

using Row = Tuple;

class Relation {
 public:
  Relation() = default;
  Relation(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row; CHECK-fails on arity mismatch.
  void Add(Row row);

  /// Index of a column by name, or npos.
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t ColumnIndex(const std::string& column) const;

  /// Sorts rows and removes duplicates (set semantics normalization).
  void Normalize();

  /// Loads all facts of one relation symbol of a database, naming columns
  /// c0, c1, ... unless `columns` is given.
  static Relation FromDatabase(const Database& db, PredId pred,
                               std::vector<std::string> columns = {});

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace engine
}  // namespace opcqa

#endif  // OPCQA_ENGINE_RELATION_H_
