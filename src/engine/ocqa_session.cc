#include "engine/ocqa_session.h"

#include "util/failpoint.h"

namespace opcqa {
namespace engine {

OcqaSession::OcqaSession(Database db, ConstraintSet constraints,
                         SessionOptions options)
    : db_(std::move(db)),
      constraints_(std::move(constraints)),
      options_(options),
      cache_(options.cache),
      planner_(options.plan) {}

EnumerationOptions OcqaSession::QueryOptions(const CallOptions& call) {
  EnumerationOptions query_options = options_.enumeration;
  if (options_.persist) query_options.cache = &active_cache();
  if (call.cache != nullptr) query_options.cache = call.cache;
  if (call.max_states != 0) query_options.max_states = call.max_states;
  return query_options;
}

OcaResult OcqaSession::Answer(const ChainGenerator& generator,
                              const Query& query, const CallOptions& call) {
  // Read path only: a crash injected here simulates the chain walk dying
  // mid-flight and must be containable by the server's per-unit
  // isolation without diverging any later (mutation-dependent) answer.
  OPCQA_FAILPOINT_HIT("engine.session.enumerate");
  return ComputeOca(db_, constraints_, generator, query, QueryOptions(call));
}

Rational OcqaSession::TupleProbability(const ChainGenerator& generator,
                                       const Query& query,
                                       const Tuple& tuple) {
  return ComputeTupleProbability(db_, constraints_, generator, query, tuple,
                                 QueryOptions({}));
}

CountingOcaResult OcqaSession::Count(const ChainGenerator& generator,
                                     const Query& query,
                                     const CallOptions& call) {
  CountingOptions counting;
  counting.enumeration = QueryOptions(call);
  return CountingOca(db_, constraints_, generator, query, counting);
}

EnumerationResult OcqaSession::Enumerate(const ChainGenerator& generator,
                                         const CallOptions& call) {
  OPCQA_FAILPOINT_HIT("engine.session.enumerate");
  return EnumerateRepairs(db_, constraints_, generator, QueryOptions(call));
}

TopKResult OcqaSession::TopK(const ChainGenerator& generator, size_t k,
                             const CallOptions& call) {
  TopKOptions top_k;
  top_k.max_states = call.max_states != 0 ? call.max_states
                                          : options_.enumeration.max_states;
  top_k.memoize = options_.enumeration.memoize;
  if (options_.persist) top_k.cache = &active_cache();
  if (call.cache != nullptr) top_k.cache = call.cache;
  return TopKRepairs(db_, constraints_, generator, k, top_k);
}

Result<planner::QueryPlan> OcqaSession::Plan(const ChainGenerator& generator,
                                             const Query& query) {
  return planner_.Plan(db_, constraints_, generator, query);
}

Result<CertainAnswersResult> OcqaSession::CertainAnswers(
    const ChainGenerator& generator, const Query& query,
    const CallOptions& call) {
  Result<planner::QueryPlan> plan =
      planner_.Plan(db_, constraints_, generator, query);
  if (!plan.ok()) return plan.status();
  CertainAnswersResult result;
  result.plan = plan->kind;
  result.plan_reason = plan->reason;
  if (plan->kind == planner::PlanKind::kRewriting) {
    std::set<Tuple> certain =
        planner::EvaluateCertain(db_, query, plan->rewritten);
    result.answers.assign(certain.begin(), certain.end());
    return result;
  }
  OcaResult oca = Answer(generator, query, call);
  if (oca.enumeration.truncated) {
    return Status::ResourceExhausted(
        "chain too large for exact certain answers (raise max_states or "
        "use the sampler)");
  }
  result.answers = oca.AnswersAtLeast(Rational(1));
  return result;
}

bool OcqaSession::InsertFact(const Fact& fact) {
  size_t old_hash = db_.Hash();
  if (!db_.Insert(fact)) return false;
  // Shared caches are left to their owner's LRU: another logical session
  // may still be serving a database with the pre-mutation content, and
  // content-keyed fingerprints already make the old roots unreachable
  // from this session.
  if (options_.shared_cache == nullptr) {
    cache_.InvalidateDatabaseHash(old_hash);
  }
  planner_.Invalidate();
  return true;
}

bool OcqaSession::EraseFact(const Fact& fact) {
  size_t old_hash = db_.Hash();
  if (!db_.Erase(fact)) return false;
  if (options_.shared_cache == nullptr) {
    cache_.InvalidateDatabaseHash(old_hash);
  }
  planner_.Invalidate();
  return true;
}

}  // namespace engine
}  // namespace opcqa
