// Relational-algebra operators and conjunctive-query execution.
//
// Implements the plan shapes the Section 5 scheme needs: scans, selections,
// projections, hash joins, set difference (for R − R_del) and union. All
// operators are pure functions Relation → Relation with set semantics.

#ifndef OPCQA_ENGINE_ALGEBRA_H_
#define OPCQA_ENGINE_ALGEBRA_H_

#include <functional>
#include <map>

#include "engine/relation.h"

namespace opcqa {
namespace engine {

/// σ: rows satisfying `predicate`.
Relation Select(const Relation& input,
                const std::function<bool(const Row&)>& predicate);

/// σ_{column = value}.
Relation SelectEq(const Relation& input, const std::string& column,
                  ConstId value);

/// π over named columns (with duplicate elimination).
Relation Project(const Relation& input,
                 const std::vector<std::string>& columns);

/// ρ: renames all columns (arity must match).
Relation Rename(const Relation& input, std::vector<std::string> columns);

/// Natural join on the shared column names (hash join; cartesian product
/// when no columns are shared).
Relation NaturalJoin(const Relation& left, const Relation& right);

/// Hash join on explicit column pairs (left column, right column); the
/// output keeps every column of both inputs. Column names need not match —
/// this is the SQL front-end's `l.a = r.b` join. With no pairs it degrades
/// to a cartesian product.
Relation EquiJoin(const Relation& left, const Relation& right,
                  const std::vector<std::pair<std::string, std::string>>&
                      join_columns);

/// Set intersection (schemas must match).
Relation Intersect(const Relation& left, const Relation& right);

/// Set union (schemas must match).
Relation Union(const Relation& left, const Relation& right);

/// Set difference left − right (schemas must match). This is the `R − R_del`
/// operator of the paper's implementation sketch.
Relation Difference(const Relation& left, const Relation& right);

/// Number of distinct rows.
size_t CountDistinct(const Relation& input);

/// Executes a *conjunctive* query over engine relations: every atom becomes
/// a scan of `relations[pred]` with constant selections and variable-named
/// columns, atoms are joined naturally, and the head variables are
/// projected. CHECK-fails when the query is not conjunctive (engine
/// execution exists for the CQ-over-keys scheme of Section 5).
Relation ExecuteConjunctive(const Query& query,
                            const std::map<PredId, const Relation*>& relations);

}  // namespace engine
}  // namespace opcqa

#endif  // OPCQA_ENGINE_ALGEBRA_H_
