#include "engine/algebra.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {
namespace engine {

Relation Select(const Relation& input,
                const std::function<bool(const Row&)>& predicate) {
  Relation out(input.name(), input.columns());
  for (const Row& row : input.rows()) {
    if (predicate(row)) out.Add(row);
  }
  return out;
}

Relation SelectEq(const Relation& input, const std::string& column,
                  ConstId value) {
  size_t index = input.ColumnIndex(column);
  OPCQA_CHECK_NE(index, Relation::kNotFound)
      << "unknown column " << column << " in " << input.name();
  return Select(input, [index, value](const Row& row) {
    return row[index] == value;
  });
}

Relation Project(const Relation& input,
                 const std::vector<std::string>& columns) {
  std::vector<size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& column : columns) {
    size_t index = input.ColumnIndex(column);
    OPCQA_CHECK_NE(index, Relation::kNotFound)
        << "unknown column " << column << " in " << input.name();
    indices.push_back(index);
  }
  Relation out(input.name(), columns);
  for (const Row& row : input.rows()) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t index : indices) projected.push_back(row[index]);
    out.Add(std::move(projected));
  }
  out.Normalize();
  return out;
}

Relation Rename(const Relation& input, std::vector<std::string> columns) {
  OPCQA_CHECK_EQ(columns.size(), input.arity());
  Relation out(input.name(), std::move(columns));
  for (const Row& row : input.rows()) out.Add(row);
  return out;
}

Relation NaturalJoin(const Relation& left, const Relation& right) {
  // Shared columns and their indices on both sides.
  std::vector<std::pair<size_t, size_t>> shared;
  std::vector<size_t> right_extra;
  for (size_t j = 0; j < right.arity(); ++j) {
    size_t i = left.ColumnIndex(right.columns()[j]);
    if (i != Relation::kNotFound) {
      shared.emplace_back(i, j);
    } else {
      right_extra.push_back(j);
    }
  }
  std::vector<std::string> out_columns = left.columns();
  for (size_t j : right_extra) out_columns.push_back(right.columns()[j]);
  Relation out(StrCat(left.name(), "⋈", right.name()),
               std::move(out_columns));

  // Hash the smaller side on the shared-key projection.
  auto key_of = [&](const Row& row, bool is_left) {
    Row key;
    key.reserve(shared.size());
    for (const auto& [i, j] : shared) key.push_back(row[is_left ? i : j]);
    return key;
  };
  struct RowVecHash {
    size_t operator()(const Row& row) const {
      size_t h = 0;
      for (ConstId c : row) {
        h ^= c + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<Row, std::vector<const Row*>, RowVecHash> index;
  for (const Row& row : right.rows()) {
    index[key_of(row, /*is_left=*/false)].push_back(&row);
  }
  for (const Row& lrow : left.rows()) {
    auto it = index.find(key_of(lrow, /*is_left=*/true));
    if (it == index.end()) continue;
    for (const Row* rrow : it->second) {
      Row combined = lrow;
      for (size_t j : right_extra) combined.push_back((*rrow)[j]);
      out.Add(std::move(combined));
    }
  }
  return out;
}

Relation Union(const Relation& left, const Relation& right) {
  OPCQA_CHECK(left.columns() == right.columns())
      << "union of incompatible schemas";
  Relation out(left.name(), left.columns());
  for (const Row& row : left.rows()) out.Add(row);
  for (const Row& row : right.rows()) out.Add(row);
  out.Normalize();
  return out;
}

Relation Difference(const Relation& left, const Relation& right) {
  OPCQA_CHECK(left.columns() == right.columns())
      << "difference of incompatible schemas";
  std::set<Row> removed(right.rows().begin(), right.rows().end());
  Relation out(left.name(), left.columns());
  for (const Row& row : left.rows()) {
    if (removed.count(row) == 0) out.Add(row);
  }
  return out;
}

Relation EquiJoin(const Relation& left, const Relation& right,
                  const std::vector<std::pair<std::string, std::string>>&
                      join_columns) {
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(join_columns.size());
  for (const auto& [lname, rname] : join_columns) {
    size_t li = left.ColumnIndex(lname);
    size_t ri = right.ColumnIndex(rname);
    OPCQA_CHECK_NE(li, Relation::kNotFound)
        << "unknown join column " << lname << " in " << left.name();
    OPCQA_CHECK_NE(ri, Relation::kNotFound)
        << "unknown join column " << rname << " in " << right.name();
    pairs.emplace_back(li, ri);
  }
  std::vector<std::string> out_columns = left.columns();
  out_columns.insert(out_columns.end(), right.columns().begin(),
                     right.columns().end());
  Relation out(StrCat(left.name(), "⋈", right.name()),
               std::move(out_columns));

  struct RowVecHash {
    size_t operator()(const Row& row) const {
      size_t h = 0;
      for (ConstId c : row) {
        h ^= c + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  auto key_of = [&](const Row& row, bool is_left) {
    Row key;
    key.reserve(pairs.size());
    for (const auto& [li, ri] : pairs) key.push_back(row[is_left ? li : ri]);
    return key;
  };
  std::unordered_map<Row, std::vector<const Row*>, RowVecHash> index;
  for (const Row& row : right.rows()) {
    index[key_of(row, /*is_left=*/false)].push_back(&row);
  }
  for (const Row& lrow : left.rows()) {
    auto it = index.find(key_of(lrow, /*is_left=*/true));
    if (it == index.end()) continue;
    for (const Row* rrow : it->second) {
      Row combined = lrow;
      combined.insert(combined.end(), rrow->begin(), rrow->end());
      out.Add(std::move(combined));
    }
  }
  return out;
}

Relation Intersect(const Relation& left, const Relation& right) {
  OPCQA_CHECK(left.columns() == right.columns())
      << "intersection of incompatible schemas";
  std::set<Row> kept(right.rows().begin(), right.rows().end());
  Relation out(left.name(), left.columns());
  for (const Row& row : left.rows()) {
    if (kept.count(row) != 0) out.Add(row);
  }
  out.Normalize();
  return out;
}

size_t CountDistinct(const Relation& input) {
  std::set<Row> distinct(input.rows().begin(), input.rows().end());
  return distinct.size();
}

Relation ExecuteConjunctive(
    const Query& query, const std::map<PredId, const Relation*>& relations) {
  OPCQA_CHECK(query.IsConjunctive())
      << "engine execution supports conjunctive queries";
  const ConjunctiveView& view = *query.conjunctive_view();
  Relation accumulated;
  bool first = true;
  for (const Atom& atom : view.body.atoms()) {
    auto it = relations.find(atom.pred());
    OPCQA_CHECK(it != relations.end())
        << "no relation registered for predicate " << atom.pred();
    const Relation& stored = *it->second;
    OPCQA_CHECK_EQ(stored.arity(), atom.arity());
    // Select on constants and repeated variables, then project+rename to
    // variable-named columns.
    Relation scan = Select(stored, [&](const Row& row) {
      std::map<VarId, ConstId> seen;
      for (size_t i = 0; i < atom.arity(); ++i) {
        const Term& t = atom.terms()[i];
        if (t.is_const()) {
          if (row[i] != t.constant()) return false;
        } else {
          auto [pos, inserted] = seen.emplace(t.var(), row[i]);
          if (!inserted && pos->second != row[i]) return false;
        }
      }
      return true;
    });
    // Keep one column per distinct variable, named after it.
    std::vector<std::string> var_columns;
    std::vector<size_t> keep;
    std::set<VarId> used;
    for (size_t i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.terms()[i];
      if (t.is_var() && used.insert(t.var()).second) {
        var_columns.push_back(VarName(t.var()));
        keep.push_back(i);
      }
    }
    Relation projected(stored.name(), var_columns);
    for (const Row& row : scan.rows()) {
      Row out_row;
      out_row.reserve(keep.size());
      for (size_t i : keep) out_row.push_back(row[i]);
      projected.Add(std::move(out_row));
    }
    projected.Normalize();
    accumulated = first ? std::move(projected)
                        : NaturalJoin(accumulated, projected);
    first = false;
  }
  std::vector<std::string> head_columns;
  head_columns.reserve(query.head().size());
  for (VarId v : query.head()) head_columns.push_back(VarName(v));
  Relation result = Project(accumulated, head_columns);
  return Rename(result, head_columns);
}

}  // namespace engine
}  // namespace opcqa
