#include "engine/relation.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {
namespace engine {

void Relation::Add(Row row) {
  OPCQA_CHECK_EQ(row.size(), columns_.size())
      << "arity mismatch adding row to " << name_;
  rows_.push_back(std::move(row));
}

size_t Relation::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return i;
  }
  return kNotFound;
}

void Relation::Normalize() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

Relation Relation::FromDatabase(const Database& db, PredId pred,
                                std::vector<std::string> columns) {
  const Schema& schema = db.schema();
  uint32_t arity = schema.Arity(pred);
  if (columns.empty()) {
    for (uint32_t i = 0; i < arity; ++i) {
      columns.push_back(StrCat("c", i));
    }
  }
  OPCQA_CHECK_EQ(columns.size(), arity);
  Relation rel(schema.RelationName(pred), std::move(columns));
  const FactStore& store = FactStore::Global();
  for (FactId id : db.FactsOf(pred)) {
    // Materialize the scan row straight from the interned argument span.
    FactView fact = store.View(id);
    rel.Add(Row(fact.args, fact.args + fact.arity));
  }
  return rel;
}

std::string Relation::ToString() const {
  std::string out = name_ + "(" + Join(columns_, ",") + ") {";
  for (const Row& row : rows_) {
    out += " " + TupleToString(row);
  }
  out += " }";
  return out;
}

}  // namespace engine
}  // namespace opcqa
