#include "engine/key_repair_executor.h"

#include <cmath>

#include "repair/sampler.h"
#include "util/logging.h"

namespace opcqa {
namespace engine {

KeyRepairExecutor::KeyRepairExecutor(const Database& db,
                                     std::vector<KeySpec> keys, uint64_t seed,
                                     ExecutorOptions options)
    : schema_(&db.schema()),
      keys_(std::move(keys)),
      options_(std::move(options)),
      rng_(seed) {
  for (PredId pred = 0; pred < schema_->size(); ++pred) {
    relations_.emplace(pred, Relation::FromDatabase(db, pred));
  }
  for (const KeySpec& key : keys_) {
    const Relation& rel = relations_.at(key.pred);
    std::map<Row, std::vector<size_t>> by_key;
    for (size_t i = 0; i < rel.rows().size(); ++i) {
      Row key_value;
      key_value.reserve(key.key_positions.size());
      for (size_t pos : key.key_positions) {
        OPCQA_CHECK_LT(pos, rel.arity());
        key_value.push_back(rel.rows()[i][pos]);
      }
      by_key[std::move(key_value)].push_back(i);
    }
    std::vector<std::vector<size_t>> groups;
    for (auto& [key_value, indices] : by_key) {
      if (indices.size() >= 2) groups.push_back(std::move(indices));
    }
    violating_groups_[key.pred] = std::move(groups);
  }
}

const Relation& KeyRepairExecutor::RelationOf(PredId pred) const {
  return relations_.at(pred);
}

std::map<PredId, Relation> KeyRepairExecutor::SampleRepairedRelations() {
  std::map<PredId, Relation> repaired;
  for (const auto& [pred, rel] : relations_) {
    auto groups_it = violating_groups_.find(pred);
    if (groups_it == violating_groups_.end() || groups_it->second.empty()) {
      repaired.emplace(pred, rel);
      continue;
    }
    // Collect the indices deleted this round (R_del).
    std::vector<bool> deleted(rel.rows().size(), false);
    for (const std::vector<size_t>& group : groups_it->second) {
      size_t survivor = group.size();  // sentinel: none survives
      switch (options_.policy) {
        case SurvivorPolicy::kKeepOneUniform:
          survivor = rng_.UniformInt(group.size());
          break;
        case SurvivorPolicy::kTrustWeighted: {
          if (options_.keep_none_probability > 0.0 &&
              rng_.Bernoulli(options_.keep_none_probability)) {
            break;  // keep none
          }
          std::vector<double> weights;
          weights.reserve(group.size());
          for (size_t index : group) {
            auto it = options_.trust.find(rel.rows()[index]);
            weights.push_back(it == options_.trust.end() ? 1.0 : it->second);
          }
          survivor = rng_.WeightedIndex(weights);
          break;
        }
      }
      for (size_t k = 0; k < group.size(); ++k) {
        if (k != survivor) deleted[group[k]] = true;
      }
    }
    // R − R_del without materializing R_del separately.
    Relation reduced(rel.name(), rel.columns());
    for (size_t i = 0; i < rel.rows().size(); ++i) {
      if (!deleted[i]) reduced.Add(rel.rows()[i]);
    }
    repaired.emplace(pred, std::move(reduced));
  }
  return repaired;
}

ApproxAnswers KeyRepairExecutor::Run(const Query& query, size_t rounds) {
  OPCQA_CHECK_GT(rounds, 0u);
  std::map<Tuple, size_t> counts;  // the temporary table T
  for (size_t round = 0; round < rounds; ++round) {
    std::map<PredId, Relation> repaired = SampleRepairedRelations();
    std::map<PredId, const Relation*> pointers;
    for (const auto& [pred, rel] : repaired) pointers[pred] = &rel;
    Relation answers = ExecuteConjunctive(query, pointers);
    std::set<Row> distinct(answers.rows().begin(), answers.rows().end());
    for (const Row& row : distinct) ++counts[row];
  }
  ApproxAnswers result;
  result.rounds = rounds;
  for (const auto& [tuple, count] : counts) {
    result.frequency[tuple] =
        static_cast<double>(count) / static_cast<double>(rounds);
  }
  return result;
}

ApproxAnswers KeyRepairExecutor::RunWithGuarantee(const Query& query,
                                                  double epsilon,
                                                  double delta) {
  return Run(query, Sampler::NumSamples(epsilon, delta));
}

}  // namespace engine
}  // namespace opcqa
