// The practical approximation scheme sketched at the end of Section 5.
//
// "The user sets ε and δ and computes n = 1/(2ε²)·ln(2/δ). We then do the
//  following n times: from each group of tuples in relation R that violate
//  a key, randomly pick at most one tuple to be left there, and collect
//  others in a relation R_del. Then run the original query Q in which each
//  relation R is replaced with R − R_del, and append the outcome to a
//  temporary table T. [...] for each tuple t̄, return n_t̄ / n."
//
// KeyRepairExecutor implements exactly that loop over the in-repo algebra
// engine. Two survivor policies:
//   * kKeepOneUniform — classical subset-repair sampling (each group keeps
//     one uniformly-chosen tuple);
//   * kTrustWeighted  — survivors sampled proportionally to trust weights,
//     with an optional "keep none" probability per group (the Example 5
//     behaviour where neither conflicting source is trusted).

#ifndef OPCQA_ENGINE_KEY_REPAIR_EXECUTOR_H_
#define OPCQA_ENGINE_KEY_REPAIR_EXECUTOR_H_

#include <map>
#include <vector>

#include "engine/algebra.h"
#include "util/random.h"

namespace opcqa {
namespace engine {

/// Key constraint on one relation: the positions forming the key.
struct KeySpec {
  PredId pred;
  std::vector<size_t> key_positions;
};

enum class SurvivorPolicy { kKeepOneUniform, kTrustWeighted };

struct ExecutorOptions {
  SurvivorPolicy policy = SurvivorPolicy::kKeepOneUniform;
  /// kTrustWeighted: per-row weights; missing rows default to 1.
  std::map<Row, double> trust;
  /// kTrustWeighted: probability of keeping *no* tuple from a group of
  /// conflicting tuples.
  double keep_none_probability = 0.0;
};

struct ApproxAnswers {
  /// tuple → n_t / n.
  std::map<Tuple, double> frequency;
  size_t rounds = 0;

  double Frequency(const Tuple& tuple) const {
    auto it = frequency.find(tuple);
    return it == frequency.end() ? 0.0 : it->second;
  }
};

class KeyRepairExecutor {
 public:
  /// `db` is the dirty database; `keys` the key constraints per relation.
  KeyRepairExecutor(const Database& db, std::vector<KeySpec> keys,
                    uint64_t seed, ExecutorOptions options = {});

  /// Materialized dirty relation for `pred`.
  const Relation& RelationOf(PredId pred) const;

  /// Samples one R_del per keyed relation and returns the map
  /// pred → R − R_del (non-keyed relations are returned unchanged).
  std::map<PredId, Relation> SampleRepairedRelations();

  /// The paper's n-round loop for a conjunctive query.
  ApproxAnswers Run(const Query& query, size_t rounds);

  /// n(ε,δ) = ⌈ln(2/δ)/(2ε²)⌉, then Run.
  ApproxAnswers RunWithGuarantee(const Query& query, double epsilon,
                                 double delta);

 private:
  const Schema* schema_;
  std::vector<KeySpec> keys_;
  std::map<PredId, Relation> relations_;
  // Per keyed relation: groups of row indices sharing a key value, only for
  // groups of size ≥ 2 (the violating ones).
  std::map<PredId, std::vector<std::vector<size_t>>> violating_groups_;
  ExecutorOptions options_;
  Rng rng_;
};

}  // namespace engine
}  // namespace opcqa

#endif  // OPCQA_ENGINE_KEY_REPAIR_EXECUTOR_H_
