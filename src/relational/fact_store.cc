#include "relational/fact_store.h"

#include <algorithm>

#include "util/logging.h"

namespace opcqa {

namespace {

size_t HashFact(PredId pred, const ConstId* args, size_t arity) {
  // Must match Fact::Hash() — Database::Hash combines the cached values.
  size_t h = pred * 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < arity; ++i) {
    h ^= args[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

// Shard selection uses high hash bits so it stays decorrelated from the
// unordered_multimap's low-bit bucketing within the shard.
uint32_t ShardOf(size_t hash) {
  return static_cast<uint32_t>(hash >> 57) & (FactStore::kNumShards - 1);
}

}  // namespace

FactStore& FactStore::Global() {
  static FactStore* store = new FactStore();
  return *store;
}

FactStore::~FactStore() {
  for (Shard& shard : shards_) {
    for (auto& block : shard.blocks) {
      delete[] block.load(std::memory_order_relaxed);
    }
  }
}

FactId FactStore::Intern(PredId pred, const ConstId* args, size_t arity) {
  size_t hash = HashFact(pred, args, arity);
  uint32_t shard_index = ShardOf(hash);
  Shard& shard = shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [begin, end] = shard.index.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    FactId id = it->second;
    const Record& r = record(id);
    if (r.pred == pred && r.arity == arity &&
        std::equal(args, args + arity,
                   r.arity <= kInlineArgs ? r.small : r.wide)) {
      return id;
    }
  }
  uint32_t index = shard.count.load(std::memory_order_relaxed);
  OPCQA_CHECK_LE(index, kMaxPerShard) << "fact store shard overflow";
  FactId id = (index << kShardBits) | shard_index;
  uint32_t s, block, offset;
  Locate(id, &s, &block, &offset);
  Record* records = shard.blocks[block].load(std::memory_order_relaxed);
  if (records == nullptr) {
    records = new Record[kBaseBlockSize << block];
    // Release-publish the block: a reader that acquires this pointer (from
    // any thread) sees fully-constructed storage.
    shard.blocks[block].store(records, std::memory_order_release);
  }
  Record& r = records[offset];
  r.pred = pred;
  r.arity = static_cast<uint32_t>(arity);
  r.hash = hash;
  if (arity <= kInlineArgs) {
    std::copy(args, args + arity, r.small);
  } else {
    auto wide = std::make_unique<ConstId[]>(arity);
    std::copy(args, args + arity, wide.get());
    r.wide = wide.get();
    shard.wide_args.push_back(std::move(wide));
  }
  // The record itself becomes visible to other threads only through the id
  // handoff (which synchronizes) or through this shard's index (guarded by
  // the mutex we hold); the count is for size() readers.
  shard.count.store(index + 1, std::memory_order_release);
  shard.index.emplace(hash, id);
  return id;
}

FactId FactStore::Find(PredId pred, const ConstId* args, size_t arity) const {
  size_t hash = HashFact(pred, args, arity);
  const Shard& shard = shards_[ShardOf(hash)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [begin, end] = shard.index.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    FactId id = it->second;
    const Record& r = record(id);
    if (r.pred == pred && r.arity == arity &&
        std::equal(args, args + arity,
                   r.arity <= kInlineArgs ? r.small : r.wide)) {
      return id;
    }
  }
  return kNotFound;
}

Fact FactStore::ToFact(FactId id) const {
  FactView v = View(id);
  return Fact(v.pred, std::vector<ConstId>(v.args, v.args + v.arity));
}

int FactStore::Compare(FactId a, FactId b) const {
  if (a == b) return 0;
  FactView va = View(a);
  FactView vb = View(b);
  if (va.pred != vb.pred) return va.pred < vb.pred ? -1 : 1;
  size_t n = std::min(va.arity, vb.arity);
  for (size_t i = 0; i < n; ++i) {
    if (va.args[i] != vb.args[i]) return va.args[i] < vb.args[i] ? -1 : 1;
  }
  if (va.arity != vb.arity) return va.arity < vb.arity ? -1 : 1;
  return 0;
}

size_t FactStore::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace opcqa
