#include "relational/fact_store.h"

#include <algorithm>

#include "util/logging.h"

namespace opcqa {

namespace {

size_t HashFact(PredId pred, const ConstId* args, size_t arity) {
  // Must match Fact::Hash() — Database::Hash combines the cached values.
  size_t h = pred * 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < arity; ++i) {
    h ^= args[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

FactStore& FactStore::Global() {
  static FactStore* store = new FactStore();
  return *store;
}

FactId FactStore::Intern(PredId pred, const ConstId* args, size_t arity) {
  size_t hash = HashFact(pred, args, arity);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    FactId id = it->second;
    const Record& r = records_[id];
    if (r.pred == pred && r.arity == arity &&
        std::equal(args, args + arity,
                   r.arity <= kInlineArgs ? r.small : pool_.data() + r.offset)) {
      return id;
    }
  }
  OPCQA_CHECK_LT(records_.size(), static_cast<size_t>(kNotFound))
      << "fact store overflow";
  Record record;
  record.pred = pred;
  record.arity = static_cast<uint32_t>(arity);
  record.hash = hash;
  if (arity <= kInlineArgs) {
    std::copy(args, args + arity, record.small);
  } else {
    record.offset = static_cast<uint32_t>(pool_.size());
    pool_.insert(pool_.end(), args, args + arity);
  }
  FactId id = static_cast<FactId>(records_.size());
  records_.push_back(record);
  index_.emplace(hash, id);
  return id;
}

FactId FactStore::Find(PredId pred, const ConstId* args, size_t arity) const {
  size_t hash = HashFact(pred, args, arity);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    FactId id = it->second;
    const Record& r = records_[id];
    if (r.pred == pred && r.arity == arity &&
        std::equal(args, args + arity,
                   r.arity <= kInlineArgs ? r.small : pool_.data() + r.offset)) {
      return id;
    }
  }
  return kNotFound;
}

Fact FactStore::ToFact(FactId id) const {
  FactView v = View(id);
  return Fact(v.pred, std::vector<ConstId>(v.args, v.args + v.arity));
}

int FactStore::Compare(FactId a, FactId b) const {
  if (a == b) return 0;
  FactView va = View(a);
  FactView vb = View(b);
  if (va.pred != vb.pred) return va.pred < vb.pred ? -1 : 1;
  size_t n = std::min(va.arity, vb.arity);
  for (size_t i = 0; i < n; ++i) {
    if (va.args[i] != vb.args[i]) return va.args[i] < vb.args[i] ? -1 : 1;
  }
  if (va.arity != vb.arity) return va.arity < vb.arity ? -1 : 1;
  return 0;
}

size_t FactStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

}  // namespace opcqa
