#include "relational/base.h"

#include <algorithm>

#include "util/logging.h"

namespace opcqa {

BaseSpec::BaseSpec(const Schema* schema, std::vector<ConstId> domain)
    : schema_(schema), domain_(std::move(domain)) {
  OPCQA_CHECK(schema_ != nullptr);
  std::sort(domain_.begin(), domain_.end());
  domain_.erase(std::unique(domain_.begin(), domain_.end()), domain_.end());
}

BaseSpec BaseSpec::ForDatabase(const Database& db,
                               const std::vector<ConstId>& extra_constants) {
  std::vector<ConstId> domain = db.ActiveDomain();
  domain.insert(domain.end(), extra_constants.begin(), extra_constants.end());
  return BaseSpec(&db.schema(), std::move(domain));
}

bool BaseSpec::Contains(const Fact& fact) const {
  if (fact.pred() >= schema_->size()) return false;
  if (fact.arity() != schema_->Arity(fact.pred())) return false;
  for (ConstId c : fact.args()) {
    if (!std::binary_search(domain_.begin(), domain_.end(), c)) return false;
  }
  return true;
}

bool BaseSpec::ContainsAll(const Database& db) const {
  for (const Fact& fact : db.AllFacts()) {
    if (!Contains(fact)) return false;
  }
  return true;
}

BigInt BaseSpec::Size() const {
  BigInt total(int64_t{0});
  BigInt n(static_cast<uint64_t>(domain_.size()));
  for (PredId p = 0; p < schema_->size(); ++p) {
    total += n.Pow(schema_->Arity(p));
  }
  return total;
}

bool BaseSpec::EnumerateTuples(
    size_t arity,
    const std::function<bool(const std::vector<ConstId>&)>& callback,
    size_t budget) const {
  if (domain_.empty()) return true;
  std::vector<size_t> index(arity, 0);
  std::vector<ConstId> tuple(arity);
  size_t produced = 0;
  for (;;) {
    if (produced >= budget) return false;
    for (size_t i = 0; i < arity; ++i) tuple[i] = domain_[index[i]];
    ++produced;
    if (!callback(tuple)) return true;
    // Odometer increment.
    size_t i = arity;
    while (i > 0) {
      --i;
      if (++index[i] < domain_.size()) break;
      index[i] = 0;
      if (i == 0) return true;  // wrapped around: done
    }
    if (arity == 0) return true;
  }
}

bool BaseSpec::Enumerate(const std::function<bool(const Fact&)>& callback,
                         size_t budget) const {
  size_t remaining = budget;
  for (PredId p = 0; p < schema_->size(); ++p) {
    bool stop = false;
    bool complete = EnumerateTuples(
        schema_->Arity(p),
        [&](const std::vector<ConstId>& tuple) {
          --remaining;
          if (!callback(Fact(p, tuple))) {
            stop = true;
            return false;
          }
          return true;
        },
        remaining);
    if (stop) return true;
    if (!complete) return false;
  }
  return true;
}

}  // namespace opcqa
