#include "relational/fact.h"

#include "util/logging.h"

namespace opcqa {

Fact Fact::Make(const Schema& schema, std::string_view relation,
                const std::vector<std::string>& constants) {
  PredId pred = schema.RelationOrDie(relation);
  OPCQA_CHECK_EQ(schema.Arity(pred), constants.size())
      << "arity mismatch building fact over " << relation;
  std::vector<ConstId> args;
  args.reserve(constants.size());
  for (const std::string& c : constants) args.push_back(Const(c));
  return Fact(pred, std::move(args));
}

std::string Fact::ToString(const Schema& schema) const {
  std::string out = schema.RelationName(pred_);
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ",";
    out += ConstName(args_[i]);
  }
  out += ")";
  return out;
}

size_t Fact::Hash() const {
  size_t h = pred_ * 0x9e3779b97f4a7c15ULL;
  for (ConstId c : args_) {
    h ^= c + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace opcqa
