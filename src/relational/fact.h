// Facts: ground atoms R(c1, ..., cn).

#ifndef OPCQA_RELATIONAL_FACT_H_
#define OPCQA_RELATIONAL_FACT_H_

#include <compare>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/symbol_table.h"

namespace opcqa {

class Fact {
 public:
  Fact() = default;
  Fact(PredId pred, std::vector<ConstId> args)
      : pred_(pred), args_(std::move(args)) {}

  /// Convenience: builds a fact interning constant names in the global
  /// symbol table, e.g. MakeFact(schema, "R", {"a", "b"}).
  static Fact Make(const Schema& schema, std::string_view relation,
                   const std::vector<std::string>& constants);

  PredId pred() const { return pred_; }
  const std::vector<ConstId>& args() const { return args_; }
  size_t arity() const { return args_.size(); }

  auto operator<=>(const Fact&) const = default;

  /// "R(a,b)" using the global symbol table for constant names.
  std::string ToString(const Schema& schema) const;

  size_t Hash() const;

 private:
  PredId pred_ = 0;
  std::vector<ConstId> args_;
};

struct FactHash {
  size_t operator()(const Fact& fact) const { return fact.Hash(); }
};

}  // namespace opcqa

#endif  // OPCQA_RELATIONAL_FACT_H_
