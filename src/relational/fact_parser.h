// Text format for facts and databases.
//
//   fact     := RelationName '(' const (',' const)* ')'
//   const    := identifier | integer
//   database := (fact '.')*   -- whitespace/newlines between facts;
//                                '#' starts a line comment
//
// Example: "Pref(a,b). Pref(b,a). # conflicting preferences"

#ifndef OPCQA_RELATIONAL_FACT_PARSER_H_
#define OPCQA_RELATIONAL_FACT_PARSER_H_

#include <string_view>

#include "relational/database.h"
#include "util/status.h"

namespace opcqa {

/// Parses a single fact like "R(a,b)" against `schema`.
Result<Fact> ParseFact(const Schema& schema, std::string_view text);

/// Parses a whole database: facts terminated by '.', '#' comments allowed.
Result<Database> ParseDatabase(const Schema& schema, std::string_view text);

}  // namespace opcqa

#endif  // OPCQA_RELATIONAL_FACT_PARSER_H_
