// Relational schemas: finite sets of relation symbols with arities.

#ifndef OPCQA_RELATIONAL_SCHEMA_H_
#define OPCQA_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace opcqa {

/// Dense handle for a relation symbol within one Schema.
using PredId = uint32_t;

class Schema {
 public:
  Schema() = default;

  /// Adds relation `name` with the given arity and returns its id.
  /// CHECK-fails if the name is already declared (use FindRelation first) or
  /// if arity is zero (the paper requires n > 0).
  PredId AddRelation(std::string_view name, uint32_t arity);

  static constexpr PredId kNotFound = UINT32_MAX;
  /// Id of relation `name`, or kNotFound.
  PredId FindRelation(std::string_view name) const;

  /// CHECK-failing lookup for code paths where the relation must exist.
  PredId RelationOrDie(std::string_view name) const;

  const std::string& RelationName(PredId id) const;
  uint32_t Arity(PredId id) const;

  /// Number of relation symbols.
  size_t size() const { return relations_.size(); }

  std::string ToString() const;

 private:
  struct Relation {
    std::string name;
    uint32_t arity;
  };
  std::vector<Relation> relations_;
  std::unordered_map<std::string, PredId> index_;
};

}  // namespace opcqa

#endif  // OPCQA_RELATIONAL_SCHEMA_H_
