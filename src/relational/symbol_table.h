// Interning of constant symbols.
//
// Database elements (the countably infinite set C of the paper) are interned
// strings; all tuples, facts and homomorphisms work with dense ConstId
// handles. The table is process-global: constants such as "a" denote the
// same element in every database, schema and constraint.
//
// Thread-safety: every member locks one mutex; the table is append-only and
// ids are stable for the process lifetime. See the concurrency contract in
// relational/fact_store.h, which covers all process-global interners.

#ifndef OPCQA_RELATIONAL_SYMBOL_TABLE_H_
#define OPCQA_RELATIONAL_SYMBOL_TABLE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace opcqa {

/// Dense handle for an interned constant.
using ConstId = uint32_t;

class SymbolTable {
 public:
  /// The process-global table.
  static SymbolTable& Global();

  /// Returns the id for `name`, interning it on first use.
  ConstId Intern(std::string_view name);

  /// Returns the id for `name` or npos if it was never interned.
  static constexpr ConstId kNotFound = UINT32_MAX;
  ConstId Find(std::string_view name) const;

  /// Name of an interned constant; CHECK-fails for unknown ids.
  const std::string& NameOf(ConstId id) const;

  /// Number of interned constants.
  size_t size() const;

 private:
  SymbolTable() = default;

  mutable std::mutex mutex_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, ConstId> index_;
};

/// Convenience: intern in the global table.
ConstId Const(std::string_view name);

/// Convenience: name of a constant in the global table.
const std::string& ConstName(ConstId id);

}  // namespace opcqa

#endif  // OPCQA_RELATIONAL_SYMBOL_TABLE_H_
