// The base B(D,Σ): all facts R(c1,...,cn) with R in the schema and every ci
// drawn from dom(D) ∪ dom(Σ) (Definition 1 of the paper). Operations and
// repairs live inside P(B(D,Σ)).
//
// The base is exponentially large in arity, so it is represented by a
// BaseSpec (schema + constant pool) supporting membership tests, counting,
// and budgeted enumeration, never by materializing all facts.

#ifndef OPCQA_RELATIONAL_BASE_H_
#define OPCQA_RELATIONAL_BASE_H_

#include <functional>
#include <vector>

#include "relational/database.h"
#include "util/bigint.h"

namespace opcqa {

class BaseSpec {
 public:
  /// `domain` is deduplicated and sorted internally.
  BaseSpec(const Schema* schema, std::vector<ConstId> domain);

  /// Base of a database plus extra constants (e.g. those in Σ).
  static BaseSpec ForDatabase(const Database& db,
                              const std::vector<ConstId>& extra_constants);

  const Schema& schema() const { return *schema_; }
  const std::vector<ConstId>& domain() const { return domain_; }

  /// True when the fact's relation is in the schema and all its constants
  /// are in the base domain.
  bool Contains(const Fact& fact) const;

  /// True when every fact of `db` is in the base.
  bool ContainsAll(const Database& db) const;

  /// |B(D,Σ)| = Σ_R |domain|^arity(R); exact (may be astronomically large).
  BigInt Size() const;

  /// Enumerates base facts in deterministic order, stopping early when the
  /// callback returns false or after `budget` facts. Returns false when the
  /// enumeration was truncated by the budget.
  bool Enumerate(const std::function<bool(const Fact&)>& callback,
                 size_t budget) const;

  /// Enumerates all tuples over the base domain of the given arity
  /// (candidate query answers range over dom(B(D,Σ))^k). Same budget
  /// semantics as Enumerate.
  bool EnumerateTuples(
      size_t arity,
      const std::function<bool(const std::vector<ConstId>&)>& callback,
      size_t budget) const;

 private:
  const Schema* schema_;
  std::vector<ConstId> domain_;
};

}  // namespace opcqa

#endif  // OPCQA_RELATIONAL_BASE_H_
