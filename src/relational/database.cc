#include "relational/database.h"

#include <algorithm>
#include <set>

#include "util/hash.h"
#include "util/logging.h"

namespace opcqa {

namespace {

const std::vector<FactId> kEmptyBucket;

// Position of `id` in a value-sorted bucket (insertion point if absent).
std::vector<FactId>::const_iterator LowerBound(
    const std::vector<FactId>& bucket, FactId id) {
  const FactStore& store = FactStore::Global();
  return std::lower_bound(bucket.begin(), bucket.end(), id,
                          [&store](FactId a, FactId b) {
                            return store.Less(a, b);
                          });
}

}  // namespace

Database::Database(const Schema* schema) : schema_(schema) {
  OPCQA_CHECK(schema != nullptr);
  facts_.resize(schema->size());
}

const Schema& Database::schema() const {
  OPCQA_CHECK(schema_ != nullptr) << "default-constructed Database used";
  return *schema_;
}

bool Database::Insert(const Fact& fact) {
  OPCQA_CHECK_LT(fact.pred(), facts_.size());
  OPCQA_CHECK_EQ(fact.arity(), schema().Arity(fact.pred()))
      << "arity mismatch inserting into " << schema().RelationName(fact.pred());
  return InsertId(FactStore::Global().Intern(fact));
}

bool Database::InsertId(FactId id) {
  PredId pred = FactStore::Global().pred(id);
  OPCQA_CHECK_LT(pred, facts_.size());
  std::vector<FactId>& bucket = facts_[pred];
  auto it = LowerBound(bucket, id);
  if (it != bucket.end() && *it == id) return false;
  bucket.insert(it, id);
  ++size_;
  hash_ += HashMix64(FactStore::Global().hash(id));
  return true;
}

void Database::InsertAll(const std::vector<Fact>& facts) {
  for (const Fact& fact : facts) Insert(fact);
}

bool Database::Erase(const Fact& fact) {
  OPCQA_CHECK_LT(fact.pred(), facts_.size());
  FactId id = FactStore::Global().Find(fact);
  if (id == FactStore::kNotFound) return false;
  return EraseId(id);
}

bool Database::EraseId(FactId id) {
  PredId pred = FactStore::Global().pred(id);
  OPCQA_CHECK_LT(pred, facts_.size());
  std::vector<FactId>& bucket = facts_[pred];
  auto it = LowerBound(bucket, id);
  if (it == bucket.end() || *it != id) return false;
  bucket.erase(it);
  --size_;
  hash_ -= HashMix64(FactStore::Global().hash(id));
  return true;
}

bool Database::Contains(const Fact& fact) const {
  if (fact.pred() >= facts_.size()) return false;
  FactId id = FactStore::Global().Find(fact);
  if (id == FactStore::kNotFound) return false;
  return ContainsId(id);
}

bool Database::ContainsId(FactId id) const {
  PredId pred = FactStore::Global().pred(id);
  if (pred >= facts_.size()) return false;
  const std::vector<FactId>& bucket = facts_[pred];
  auto it = LowerBound(bucket, id);
  return it != bucket.end() && *it == id;
}

const std::vector<FactId>& Database::FactsOf(PredId pred) const {
  OPCQA_CHECK_LT(pred, facts_.size());
  return facts_[pred];
}

std::vector<FactId> Database::AllFactIds() const {
  std::vector<FactId> all;
  all.reserve(size_);
  for (const auto& bucket : facts_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  return all;
}

std::vector<Fact> Database::AllFacts() const {
  const FactStore& store = FactStore::Global();
  std::vector<Fact> all;
  all.reserve(size_);
  for (const auto& bucket : facts_) {
    for (FactId id : bucket) all.push_back(store.ToFact(id));
  }
  return all;
}

std::vector<ConstId> Database::ActiveDomain() const {
  const FactStore& store = FactStore::Global();
  std::set<ConstId> domain;
  for (const auto& bucket : facts_) {
    for (FactId id : bucket) {
      FactView v = store.View(id);
      domain.insert(v.args, v.args + v.arity);
    }
  }
  return std::vector<ConstId>(domain.begin(), domain.end());
}

void Database::SymmetricDifferenceIds(const Database& other,
                                      std::vector<FactId>* only_here,
                                      std::vector<FactId>* only_there) const {
  const FactStore& store = FactStore::Global();
  only_here->clear();
  only_there->clear();
  size_t buckets = std::max(facts_.size(), other.facts_.size());
  for (size_t p = 0; p < buckets; ++p) {
    const std::vector<FactId>& mine =
        p < facts_.size() ? facts_[p] : kEmptyBucket;
    const std::vector<FactId>& theirs =
        p < other.facts_.size() ? other.facts_[p] : kEmptyBucket;
    // Merge walk; equal values share an id, so the equality test is id ==.
    size_t i = 0, j = 0;
    while (i < mine.size() && j < theirs.size()) {
      if (mine[i] == theirs[j]) {
        ++i;
        ++j;
        continue;
      }
      if (store.Less(mine[i], theirs[j])) {
        only_here->push_back(mine[i++]);
      } else {
        only_there->push_back(theirs[j++]);
      }
    }
    only_here->insert(only_here->end(), mine.begin() + i, mine.end());
    only_there->insert(only_there->end(), theirs.begin() + j, theirs.end());
  }
}

void Database::SymmetricDifference(const Database& other,
                                   std::vector<Fact>* only_here,
                                   std::vector<Fact>* only_there) const {
  const FactStore& store = FactStore::Global();
  std::vector<FactId> here_ids, there_ids;
  SymmetricDifferenceIds(other, &here_ids, &there_ids);
  only_here->clear();
  only_there->clear();
  only_here->reserve(here_ids.size());
  only_there->reserve(there_ids.size());
  for (FactId id : here_ids) only_here->push_back(store.ToFact(id));
  for (FactId id : there_ids) only_there->push_back(store.ToFact(id));
}

size_t Database::SymmetricDifferenceSize(const Database& other) const {
  std::vector<FactId> here, there;
  SymmetricDifferenceIds(other, &here, &there);
  return here.size() + there.size();
}

bool Database::operator==(const Database& other) const {
  // Interned + value-sorted ⇒ set equality is id-vector equality.
  if (size_ != other.size_) return false;
  size_t buckets = std::max(facts_.size(), other.facts_.size());
  for (size_t p = 0; p < buckets; ++p) {
    const std::vector<FactId>& mine =
        p < facts_.size() ? facts_[p] : kEmptyBucket;
    const std::vector<FactId>& theirs =
        p < other.facts_.size() ? other.facts_[p] : kEmptyBucket;
    if (mine != theirs) return false;
  }
  return true;
}

bool Database::operator<(const Database& other) const {
  // Same order as the former vector<set<Fact>> lexicographic comparison.
  const FactStore& store = FactStore::Global();
  size_t buckets = std::min(facts_.size(), other.facts_.size());
  for (size_t p = 0; p < buckets; ++p) {
    const std::vector<FactId>& mine = facts_[p];
    const std::vector<FactId>& theirs = other.facts_[p];
    size_t n = std::min(mine.size(), theirs.size());
    for (size_t i = 0; i < n; ++i) {
      if (mine[i] == theirs[i]) continue;
      return store.Less(mine[i], theirs[i]);
    }
    if (mine.size() != theirs.size()) return mine.size() < theirs.size();
  }
  return facts_.size() < other.facts_.size();
}

std::string Database::ToString() const {
  const FactStore& store = FactStore::Global();
  std::string out;
  for (const auto& bucket : facts_) {
    for (FactId id : bucket) {
      if (!out.empty()) out += " ";
      out += store.ToFact(id).ToString(schema());
      out += ".";
    }
  }
  return out;
}

}  // namespace opcqa
