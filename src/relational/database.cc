#include "relational/database.h"

#include <algorithm>

#include "util/logging.h"

namespace opcqa {

Database::Database(const Schema* schema) : schema_(schema) {
  OPCQA_CHECK(schema != nullptr);
  facts_.resize(schema->size());
}

const Schema& Database::schema() const {
  OPCQA_CHECK(schema_ != nullptr) << "default-constructed Database used";
  return *schema_;
}

bool Database::Insert(const Fact& fact) {
  OPCQA_CHECK_LT(fact.pred(), facts_.size());
  OPCQA_CHECK_EQ(fact.arity(), schema().Arity(fact.pred()))
      << "arity mismatch inserting into " << schema().RelationName(fact.pred());
  bool inserted = facts_[fact.pred()].insert(fact).second;
  if (inserted) ++size_;
  return inserted;
}

void Database::InsertAll(const std::vector<Fact>& facts) {
  for (const Fact& fact : facts) Insert(fact);
}

bool Database::Erase(const Fact& fact) {
  OPCQA_CHECK_LT(fact.pred(), facts_.size());
  bool erased = facts_[fact.pred()].erase(fact) > 0;
  if (erased) --size_;
  return erased;
}

bool Database::Contains(const Fact& fact) const {
  if (fact.pred() >= facts_.size()) return false;
  return facts_[fact.pred()].count(fact) > 0;
}

const std::set<Fact>& Database::FactsOf(PredId pred) const {
  OPCQA_CHECK_LT(pred, facts_.size());
  return facts_[pred];
}

std::vector<Fact> Database::AllFacts() const {
  std::vector<Fact> all;
  all.reserve(size_);
  for (const auto& bucket : facts_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  return all;
}

std::vector<ConstId> Database::ActiveDomain() const {
  std::set<ConstId> domain;
  for (const auto& bucket : facts_) {
    for (const Fact& fact : bucket) {
      domain.insert(fact.args().begin(), fact.args().end());
    }
  }
  return std::vector<ConstId>(domain.begin(), domain.end());
}

void Database::SymmetricDifference(const Database& other,
                                   std::vector<Fact>* only_here,
                                   std::vector<Fact>* only_there) const {
  only_here->clear();
  only_there->clear();
  size_t buckets = std::max(facts_.size(), other.facts_.size());
  static const std::set<Fact> kEmpty;
  for (size_t p = 0; p < buckets; ++p) {
    const std::set<Fact>& mine = p < facts_.size() ? facts_[p] : kEmpty;
    const std::set<Fact>& theirs =
        p < other.facts_.size() ? other.facts_[p] : kEmpty;
    std::set_difference(mine.begin(), mine.end(), theirs.begin(), theirs.end(),
                        std::back_inserter(*only_here));
    std::set_difference(theirs.begin(), theirs.end(), mine.begin(), mine.end(),
                        std::back_inserter(*only_there));
  }
}

size_t Database::SymmetricDifferenceSize(const Database& other) const {
  std::vector<Fact> here, there;
  SymmetricDifference(other, &here, &there);
  return here.size() + there.size();
}

bool Database::operator==(const Database& other) const {
  return facts_ == other.facts_;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& bucket : facts_) {
    for (const Fact& fact : bucket) {
      if (!out.empty()) out += " ";
      out += fact.ToString(schema());
      out += ".";
    }
  }
  return out;
}

size_t Database::Hash() const {
  size_t h = 0;
  for (const auto& bucket : facts_) {
    for (const Fact& fact : bucket) {
      h ^= fact.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
  }
  return h;
}

}  // namespace opcqa
