// Interning of ground facts.
//
// Every ground fact R(c1,...,cn) that enters a Database is interned exactly
// once in a process-global FactStore and afterwards handled through a
// 32-bit FactId. Databases, operations and repairing states then work at
// the id level: copies are uint32 vector copies, membership is id
// membership, and hashes/comparisons reuse the values cached at intern time
// instead of re-walking argument vectors.
//
// Argument storage is inline-small: facts of arity ≤ 2 (the common case for
// the paper's key/preference workloads) keep their constants directly inside
// the per-fact record; wider facts spill into per-shard arena allocations.
//
// ## Concurrency contract (all process-global interners)
//
// This is the authoritative statement for FactStore, SymbolTable
// (relational/symbol_table.h) and the variable interner VarTable
// (logic/term.cc). All three are append-only: an interned entity is never
// reallocated, moved or removed, and its id is stable for the process
// lifetime.
//
//  * FactStore — sharded for parallel repair exploration. A FactId is
//    shard-tagged: the low kShardBits select one of kNumShards shards and
//    the high bits are a dense per-shard index. Intern()/Find() hash the
//    fact, lock only that shard's mutex, and probe the shard's hash index;
//    concurrent interning of distinct facts proceeds in parallel, and
//    interning the same fact from any number of threads returns one id.
//    The read accessors (pred/arity/args/hash/View/ToFact/Compare/Less)
//    NEVER lock: records live in append-only per-shard blocks whose
//    pointers are published with release stores and read with acquire
//    loads, so any thread holding a FactId — necessarily handed over after
//    the Intern() that created it — reads fully-initialized data. size()
//    is lock-free and monotone (a lower bound while writers are active).
//
//  * SymbolTable / VarTable — fully mutex-serialized (Intern, Find, NameOf
//    all lock). They sit on setup and rendering paths only, never on the
//    exploration hot path, so a single mutex each is sufficient. Safe to
//    call from any thread.
//
//  * Determinism — no observable ordering in the system depends on raw id
//    values: Database, Operation and the enumerator order facts by *value*
//    (pred, then args; see Compare()). Interleaving-dependent id
//    assignment under concurrent interning therefore never changes repair
//    distributions, which stay bit-identical to single-threaded runs.

#ifndef OPCQA_RELATIONAL_FACT_STORE_H_
#define OPCQA_RELATIONAL_FACT_STORE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "relational/fact.h"

namespace opcqa {

/// Handle for an interned ground fact: low kShardBits = shard, high bits =
/// dense index within the shard.
using FactId = uint32_t;

/// A non-owning view of an interned fact (pred + argument span). Valid as
/// long as the process-global store lives.
struct FactView {
  PredId pred;
  uint32_t arity;
  const ConstId* args;
};

class FactStore {
 public:
  /// The process-global store.
  static FactStore& Global();

  static constexpr FactId kNotFound = UINT32_MAX;

  static constexpr uint32_t kShardBits = 4;
  static constexpr uint32_t kNumShards = 1u << kShardBits;

  /// Returns the id for `fact`, interning it on first use. Thread-safe;
  /// locks one shard.
  FactId Intern(const Fact& fact) {
    return Intern(fact.pred(), fact.args().data(), fact.args().size());
  }
  FactId Intern(PredId pred, const ConstId* args, size_t arity);

  /// Returns the id of an already-interned fact, or kNotFound. Facts that
  /// were never interned cannot be members of any Database. Thread-safe;
  /// locks one shard.
  FactId Find(const Fact& fact) const {
    return Find(fact.pred(), fact.args().data(), fact.args().size());
  }
  FactId Find(PredId pred, const ConstId* args, size_t arity) const;

  // Lock-free read accessors (see the concurrency contract above).
  PredId pred(FactId id) const { return record(id).pred; }
  uint32_t arity(FactId id) const { return record(id).arity; }
  const ConstId* args(FactId id) const {
    const Record& r = record(id);
    return r.arity <= kInlineArgs ? r.small : r.wide;
  }
  /// Equal to Fact::Hash() of the interned fact, cached at intern time.
  size_t hash(FactId id) const { return record(id).hash; }

  FactView View(FactId id) const {
    const Record& r = record(id);
    return FactView{r.pred, r.arity,
                    r.arity <= kInlineArgs ? r.small : r.wide};
  }

  /// Materializes the interned fact as a value-type Fact.
  Fact ToFact(FactId id) const;

  /// Value order (pred, then args lexicographically) — the order facts sort
  /// in inside a std::set<Fact>. Equal values always share one id.
  int Compare(FactId a, FactId b) const;
  bool Less(FactId a, FactId b) const { return Compare(a, b) < 0; }

  /// Number of interned facts (sum over shards; a monotone lower bound
  /// while concurrent writers are active).
  size_t size() const;

 private:
  static constexpr uint32_t kInlineArgs = 2;
  static constexpr uint32_t kIndexBits = 32 - kShardBits;
  // Reserve the all-ones pattern so no valid id equals kNotFound.
  static constexpr uint32_t kMaxPerShard = (1u << kIndexBits) - 2;

  // Per-shard records live in append-only blocks of geometrically growing
  // capacity: block b holds kBaseBlockSize << b records, so 22 blocks cover
  // the whole 2^28 per-shard id space while small runs allocate one 24 KiB
  // block. Block pointers are published with release stores; records are
  // never moved, which is what makes the read accessors lock-free.
  static constexpr uint32_t kBaseBlockBits = 10;
  static constexpr uint32_t kBaseBlockSize = 1u << kBaseBlockBits;
  static constexpr uint32_t kBlockCount = 22;

  struct Record {
    PredId pred;
    uint32_t arity;
    union {
      ConstId small[kInlineArgs];  // arity ≤ kInlineArgs
      const ConstId* wide;         // else a shard-arena allocation
    };
    size_t hash;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::atomic<Record*> blocks[kBlockCount] = {};
    std::atomic<uint32_t> count{0};
    // hash → candidate ids (collisions resolved by argument comparison).
    // Guarded by mutex, as is wide_args.
    std::unordered_multimap<size_t, FactId> index;
    std::vector<std::unique_ptr<ConstId[]>> wide_args;
  };

  FactStore() = default;
  ~FactStore();

  static void Locate(FactId id, uint32_t* shard, uint32_t* block,
                     uint32_t* offset) {
    *shard = id & (kNumShards - 1);
    uint32_t index = id >> kShardBits;
    uint32_t u = (index >> kBaseBlockBits) + 1;
    *block = static_cast<uint32_t>(std::bit_width(u)) - 1;
    *offset = index - (((1u << *block) - 1) << kBaseBlockBits);
  }

  const Record& record(FactId id) const {
    uint32_t shard, block, offset;
    Locate(id, &shard, &block, &offset);
    return shards_[shard].blocks[block].load(std::memory_order_acquire)[offset];
  }

  Shard shards_[kNumShards];
};

/// Convenience: intern in the global store.
inline FactId InternFact(const Fact& fact) {
  return FactStore::Global().Intern(fact);
}

/// Comparator ordering ids by interned fact value via the global store.
struct FactIdValueLess {
  bool operator()(FactId a, FactId b) const {
    return FactStore::Global().Less(a, b);
  }
};

}  // namespace opcqa

#endif  // OPCQA_RELATIONAL_FACT_STORE_H_
