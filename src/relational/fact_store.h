// Interning of ground facts.
//
// Every ground fact R(c1,...,cn) that enters a Database is interned exactly
// once in a process-global FactStore and afterwards handled through a dense
// 32-bit FactId. Databases, operations and repairing states then work at the
// id level: copies are uint32 vector copies, membership is id membership,
// and hashes/comparisons reuse the values cached at intern time instead of
// re-walking argument vectors.
//
// Argument storage is inline-small: facts of arity ≤ 2 (the common case for
// the paper's key/preference workloads) keep their constants directly inside
// the per-fact record; wider facts spill into a shared argument pool.
//
// Like SymbolTable, the store only grows. Interning takes a lock; the read
// accessors are lock-free and rely on ids never being reallocated away —
// concurrent readers are safe against each other but not against a writer
// (all current callers are single-threaded; revisit for parallel
// enumeration).

#ifndef OPCQA_RELATIONAL_FACT_STORE_H_
#define OPCQA_RELATIONAL_FACT_STORE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "relational/fact.h"

namespace opcqa {

/// Dense handle for an interned ground fact.
using FactId = uint32_t;

/// A non-owning view of an interned fact (pred + argument span). Valid as
/// long as the process-global store lives.
struct FactView {
  PredId pred;
  uint32_t arity;
  const ConstId* args;
};

class FactStore {
 public:
  /// The process-global store.
  static FactStore& Global();

  static constexpr FactId kNotFound = UINT32_MAX;

  /// Returns the id for `fact`, interning it on first use.
  FactId Intern(const Fact& fact) {
    return Intern(fact.pred(), fact.args().data(), fact.args().size());
  }
  FactId Intern(PredId pred, const ConstId* args, size_t arity);

  /// Returns the id of an already-interned fact, or kNotFound. Facts that
  /// were never interned cannot be members of any Database.
  FactId Find(const Fact& fact) const {
    return Find(fact.pred(), fact.args().data(), fact.args().size());
  }
  FactId Find(PredId pred, const ConstId* args, size_t arity) const;

  PredId pred(FactId id) const { return records_[id].pred; }
  uint32_t arity(FactId id) const { return records_[id].arity; }
  const ConstId* args(FactId id) const {
    const Record& r = records_[id];
    return r.arity <= kInlineArgs ? r.small : pool_.data() + r.offset;
  }
  /// Equal to Fact::Hash() of the interned fact, cached at intern time.
  size_t hash(FactId id) const { return records_[id].hash; }

  FactView View(FactId id) const {
    const Record& r = records_[id];
    return FactView{r.pred, r.arity,
                    r.arity <= kInlineArgs ? r.small : pool_.data() + r.offset};
  }

  /// Materializes the interned fact as a value-type Fact.
  Fact ToFact(FactId id) const;

  /// Value order (pred, then args lexicographically) — the order facts sort
  /// in inside a std::set<Fact>. Equal values always share one id.
  int Compare(FactId a, FactId b) const;
  bool Less(FactId a, FactId b) const { return Compare(a, b) < 0; }

  /// Number of interned facts.
  size_t size() const;

 private:
  static constexpr uint32_t kInlineArgs = 2;

  struct Record {
    PredId pred;
    uint32_t arity;
    union {
      ConstId small[kInlineArgs];  // arity ≤ kInlineArgs
      uint32_t offset;             // else index into pool_
    };
    size_t hash;
  };

  FactStore() = default;

  mutable std::mutex mutex_;
  std::vector<Record> records_;
  std::vector<ConstId> pool_;
  // hash → candidate ids (collisions resolved by argument comparison).
  std::unordered_multimap<size_t, FactId> index_;
};

/// Convenience: intern in the global store.
inline FactId InternFact(const Fact& fact) {
  return FactStore::Global().Intern(fact);
}

/// Comparator ordering ids by interned fact value via the global store.
struct FactIdValueLess {
  bool operator()(FactId a, FactId b) const {
    return FactStore::Global().Less(a, b);
  }
};

}  // namespace opcqa

#endif  // OPCQA_RELATIONAL_FACT_STORE_H_
