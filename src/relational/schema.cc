#include "relational/schema.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

PredId Schema::AddRelation(std::string_view name, uint32_t arity) {
  OPCQA_CHECK_GT(arity, 0u) << "relations must have positive arity: " << name;
  OPCQA_CHECK(index_.find(std::string(name)) == index_.end())
      << "relation declared twice: " << name;
  PredId id = static_cast<PredId>(relations_.size());
  relations_.push_back(Relation{std::string(name), arity});
  index_.emplace(std::string(name), id);
  return id;
}

PredId Schema::FindRelation(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNotFound : it->second;
}

PredId Schema::RelationOrDie(std::string_view name) const {
  PredId id = FindRelation(name);
  OPCQA_CHECK_NE(id, kNotFound) << "unknown relation: " << name;
  return id;
}

const std::string& Schema::RelationName(PredId id) const {
  OPCQA_CHECK_LT(id, relations_.size());
  return relations_[id].name;
}

uint32_t Schema::Arity(PredId id) const {
  OPCQA_CHECK_LT(id, relations_.size());
  return relations_[id].arity;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(relations_.size());
  for (const Relation& r : relations_) {
    parts.push_back(StrCat(r.name, "/", r.arity));
  }
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace opcqa
