#include "relational/symbol_table.h"

#include "util/logging.h"

namespace opcqa {

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

ConstId SymbolTable::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  ConstId id = static_cast<ConstId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

ConstId SymbolTable::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& SymbolTable::NameOf(ConstId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  OPCQA_CHECK_LT(id, names_.size()) << "unknown ConstId";
  return names_[id];
}

size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_.size();
}

ConstId Const(std::string_view name) {
  return SymbolTable::Global().Intern(name);
}

const std::string& ConstName(ConstId id) {
  return SymbolTable::Global().NameOf(id);
}

}  // namespace opcqa
