#include "relational/fact_parser.h"

#include <cctype>

#include "util/string_util.h"

namespace opcqa {

namespace {

bool IsConstantToken(std::string_view text) {
  if (text.empty()) return false;
  if (IsIdentifier(text)) return true;
  // Signed integers are also permitted as constants.
  size_t start = (text[0] == '-' || text[0] == '+') ? 1 : 0;
  if (start == text.size()) return false;
  for (char c : text.substr(start)) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

Result<Fact> ParseFact(const Schema& schema, std::string_view text) {
  std::string_view trimmed = TrimView(text);
  size_t open = trimmed.find('(');
  if (open == std::string_view::npos || trimmed.back() != ')') {
    return Status::InvalidArgument(
        StrCat("malformed fact (expected R(c1,...,cn)): ", text));
  }
  std::string_view name = TrimView(trimmed.substr(0, open));
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument(StrCat("invalid relation name: ", name));
  }
  PredId pred = schema.FindRelation(name);
  if (pred == Schema::kNotFound) {
    return Status::NotFound(StrCat("unknown relation: ", name));
  }
  std::string_view args_text =
      trimmed.substr(open + 1, trimmed.size() - open - 2);
  std::vector<std::string> pieces = SplitTopLevel(args_text, ',');
  std::vector<ConstId> args;
  args.reserve(pieces.size());
  for (const std::string& piece : pieces) {
    std::string_view token = TrimView(piece);
    if (!IsConstantToken(token)) {
      return Status::InvalidArgument(StrCat("invalid constant: '", token,
                                            "' in fact: ", text));
    }
    args.push_back(Const(token));
  }
  if (args.size() != schema.Arity(pred)) {
    return Status::InvalidArgument(
        StrCat("arity mismatch for ", name, ": expected ", schema.Arity(pred),
               " got ", args.size()));
  }
  return Fact(pred, std::move(args));
}

Result<Database> ParseDatabase(const Schema& schema, std::string_view text) {
  Database db(&schema);
  std::string cleaned;
  cleaned.reserve(text.size());
  // Strip '#' comments line by line.
  for (const std::string& line : Split(text, '\n')) {
    size_t hash = line.find('#');
    cleaned += hash == std::string::npos ? line : line.substr(0, hash);
    cleaned += '\n';
  }
  for (const std::string& piece : SplitTopLevel(cleaned, '.')) {
    std::string_view fact_text = TrimView(piece);
    if (fact_text.empty()) continue;
    Result<Fact> fact = ParseFact(schema, fact_text);
    if (!fact.ok()) return fact.status();
    db.Insert(fact.value());
  }
  return db;
}

}  // namespace opcqa
