// Database instances: finite sets of facts over a schema.
//
// Storage is an ordered set per relation symbol, which gives deterministic
// iteration, O(log n) membership, and cheap value comparison — databases act
// as map keys when aggregating operational repairs (Definition 6).

#ifndef OPCQA_RELATIONAL_DATABASE_H_
#define OPCQA_RELATIONAL_DATABASE_H_

#include <set>
#include <string>
#include <vector>

#include "relational/fact.h"
#include "relational/schema.h"

namespace opcqa {

class Database {
 public:
  Database() : schema_(nullptr) {}
  explicit Database(const Schema* schema);

  const Schema& schema() const;

  /// Inserts a fact; returns true if it was not already present.
  bool Insert(const Fact& fact);
  /// Inserts many facts.
  void InsertAll(const std::vector<Fact>& facts);
  /// Removes a fact; returns true if it was present.
  bool Erase(const Fact& fact);

  bool Contains(const Fact& fact) const;
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Facts of one relation, in sorted order.
  const std::set<Fact>& FactsOf(PredId pred) const;

  /// All facts, grouped by relation, in sorted order.
  std::vector<Fact> AllFacts() const;

  /// The active domain dom(D): constants occurring in the instance, sorted.
  std::vector<ConstId> ActiveDomain() const;

  /// Symmetric difference ∆(D, D') as (only-in-this, only-in-other).
  void SymmetricDifference(const Database& other,
                           std::vector<Fact>* only_here,
                           std::vector<Fact>* only_there) const;

  /// Total size |∆(D, D')|.
  size_t SymmetricDifferenceSize(const Database& other) const;

  /// True when ∆(this, other) ⊆ ∆(this, reference) strictly (used for
  /// checking ⊆-minimality of classical repairs w.r.t. a dirty instance).
  bool operator==(const Database& other) const;
  bool operator<(const Database& other) const { return facts_ < other.facts_; }

  /// "R(a,b). R(a,c). S(d)." — deterministic, usable as a canonical key.
  std::string ToString() const;

  size_t Hash() const;

 private:
  const Schema* schema_;
  std::vector<std::set<Fact>> facts_;  // indexed by PredId
  size_t size_ = 0;
};

struct DatabaseHash {
  size_t operator()(const Database& db) const { return db.Hash(); }
};

}  // namespace opcqa

#endif  // OPCQA_RELATIONAL_DATABASE_H_
