// Database instances: finite sets of facts over a schema.
//
// Storage is one FactId vector per relation symbol, kept sorted in fact
// value order against the process-global FactStore. This gives the same
// deterministic iteration as the former per-relation std::set<Fact> while
// making copies (DFS branching, repair aggregation keys) plain uint32
// vector copies, membership an id binary search, and equality/hash pure
// id-level operations over hashes cached at intern time.

#ifndef OPCQA_RELATIONAL_DATABASE_H_
#define OPCQA_RELATIONAL_DATABASE_H_

#include <string>
#include <vector>

#include "relational/fact.h"
#include "relational/fact_store.h"
#include "relational/schema.h"

namespace opcqa {

class Database {
 public:
  Database() : schema_(nullptr) {}
  explicit Database(const Schema* schema);

  const Schema& schema() const;

  /// Inserts a fact; returns true if it was not already present.
  bool Insert(const Fact& fact);
  /// Inserts an already-interned fact by id.
  bool InsertId(FactId id);
  /// Inserts many facts.
  void InsertAll(const std::vector<Fact>& facts);
  /// Removes a fact; returns true if it was present.
  bool Erase(const Fact& fact);
  bool EraseId(FactId id);

  bool Contains(const Fact& fact) const;
  bool ContainsId(FactId id) const;
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Fact ids of one relation, sorted in fact value order.
  const std::vector<FactId>& FactsOf(PredId pred) const;

  /// All fact ids, grouped by relation, in sorted order.
  std::vector<FactId> AllFactIds() const;

  /// All facts materialized, grouped by relation, in sorted order.
  std::vector<Fact> AllFacts() const;

  /// The active domain dom(D): constants occurring in the instance, sorted.
  std::vector<ConstId> ActiveDomain() const;

  /// Symmetric difference ∆(D, D') as (only-in-this, only-in-other). The
  /// ⊆-minimality checks of classical (ABC) repairs compare these deltas.
  void SymmetricDifference(const Database& other,
                           std::vector<Fact>* only_here,
                           std::vector<Fact>* only_there) const;

  /// Id-level symmetric difference (a sorted-vector merge walk).
  void SymmetricDifferenceIds(const Database& other,
                              std::vector<FactId>* only_here,
                              std::vector<FactId>* only_there) const;

  /// Total size |∆(D, D')|.
  size_t SymmetricDifferenceSize(const Database& other) const;

  /// Set equality of the stored facts (an id-vector comparison).
  bool operator==(const Database& other) const;
  bool operator<(const Database& other) const;

  /// "R(a,b). R(a,c). S(d)." — deterministic, usable as a canonical key.
  std::string ToString() const;

  /// Set fingerprint: the commutative sum of mixed per-fact hashes cached
  /// at intern time, maintained incrementally by InsertId/EraseId — O(1)
  /// to read, O(1) to update per fact. Equal fact sets always hash equal;
  /// distinct sets collide only as ordinary 64-bit hash collisions (the
  /// repair-space transposition table verifies against the real id sets).
  size_t Hash() const { return hash_; }

 private:
  const Schema* schema_;
  std::vector<std::vector<FactId>> facts_;  // per PredId, value-sorted
  size_t size_ = 0;
  size_t hash_ = 0;
};

struct DatabaseHash {
  size_t operator()(const Database& db) const { return db.Hash(); }
};

}  // namespace opcqa

#endif  // OPCQA_RELATIONAL_DATABASE_H_
