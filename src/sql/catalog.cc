#include "sql/catalog.h"

#include "util/logging.h"

namespace opcqa {
namespace sql {

void Catalog::Register(std::string name, engine::Relation relation) {
  tables_.insert_or_assign(std::move(name), std::move(relation));
}

void Catalog::Unregister(const std::string& name) { tables_.erase(name); }

const engine::Relation* Catalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

bool Catalog::Contains(const std::string& name) const {
  return tables_.count(name) != 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Catalog Catalog::FromDatabase(
    const Database& db,
    const std::map<std::string, std::vector<std::string>>& columns) {
  Catalog catalog;
  const Schema& schema = db.schema();
  for (PredId pred = 0; pred < schema.size(); ++pred) {
    const std::string& name = schema.RelationName(pred);
    std::vector<std::string> table_columns;
    auto it = columns.find(name);
    if (it != columns.end()) {
      OPCQA_CHECK_EQ(it->second.size(), schema.Arity(pred))
          << "column list arity mismatch for " << name;
      table_columns = it->second;
    }
    catalog.Register(
        name, engine::Relation::FromDatabase(db, pred, table_columns));
  }
  return catalog;
}

}  // namespace sql
}  // namespace opcqa
