// End-to-end implementation of the Section 5 practical scheme over SQL.
//
// "The user sets numbers ε and δ, and computes the number n of samples from
//  it as 1/2ε² · ln(2/δ). We then do the following n times: from each group
//  of tuples in relation R that violate a key, randomly pick at most one
//  tuple to be left there, and collect others in a relation R_del. Then run
//  the original query Q in which each relation R is replaced with R − R_del,
//  and append the outcome to a temporary table T […] for each tuple t̄ we
//  compute the number of times n_t̄ it occurs […] and return n_t̄ / n."
//
// SqlApproxRunner executes that loop literally: per round it samples R_del
// for every keyed table, registers the R_del tables in a scratch catalog,
// executes the rewritten statement produced by RewriteWithDeletions, and
// tallies result rows. Each returned frequency estimates the probability
// that the tuple is an answer over a uniformly sampled key repair, with the
// additive Hoeffding guarantee of Theorem 9.

#ifndef OPCQA_SQL_APPROX_RUNNER_H_
#define OPCQA_SQL_APPROX_RUNNER_H_

#include <map>
#include <string>
#include <vector>

#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/rewriter.h"
#include "util/random.h"

namespace opcqa {
namespace sql {

/// Key constraint at the SQL level: the key columns of a table (by index).
struct TableKey {
  std::string table;
  std::vector<size_t> key_positions;
};

struct SqlApproxOptions {
  /// Probability of keeping *no* tuple from a violating group — the
  /// Example 5 "trust neither source" case; 0 reproduces the classical
  /// subset-repair sampling.
  double keep_none_probability = 0.0;
  ExecOptions exec;
};

struct SqlApproxResult {
  /// Result row → n_t / n.
  std::map<engine::Row, double> frequency;
  /// Output column names of the query.
  std::vector<std::string> columns;
  size_t rounds = 0;
  /// The rewritten SQL actually executed (for display/debugging).
  std::string rewritten_sql;

  double Frequency(const engine::Row& row) const;
};

class SqlApproxRunner {
 public:
  /// `catalog` holds the dirty tables; `keys` lists the key constraints.
  /// Tables named "<table>__del" are reserved for the sampled deletions.
  SqlApproxRunner(Catalog catalog, std::vector<TableKey> keys, uint64_t seed,
                  SqlApproxOptions options = {});

  /// n(ε,δ) = ⌈ln(2/δ) / (2ε²)⌉.
  static size_t NumRounds(double epsilon, double delta);

  /// Runs the n-round loop for `sql`.
  Result<SqlApproxResult> Run(std::string_view sql, size_t rounds);

  /// Computes n from (ε,δ), then runs.
  Result<SqlApproxResult> RunWithGuarantee(std::string_view sql,
                                           double epsilon, double delta);

  /// Samples one set of R_del tables (one entry per keyed table, possibly
  /// empty). Exposed for tests.
  std::map<std::string, engine::Relation> SampleDeletions();

 private:
  Catalog catalog_;
  std::vector<TableKey> keys_;
  // Per keyed table: violating groups as row-index lists (size ≥ 2).
  std::map<std::string, std::vector<std::vector<size_t>>> groups_;
  SqlApproxOptions options_;
  Rng rng_;
};

}  // namespace sql
}  // namespace opcqa

#endif  // OPCQA_SQL_APPROX_RUNNER_H_
