// Exact SQL answering over the operational repair distribution — the SQL
// face of the cross-query repair-space cache.
//
// Where SqlApproxRunner implements the Section 5 sampling scheme (n
// rounds, additive Hoeffding error), SqlExactRunner computes the exact
// conditional probability CP(row) of every result row: the key
// constraints given as TableKeys become EGDs, the repairing chain over
// (D, Σ_keys) is enumerated under the uniform generator, and the SQL
// statement is evaluated on each operational repair with its probability
// mass. Because the repair space depends only on (D, Σ) — never on the
// statement — the runner owns a RepairSpaceCache: the first query pays
// for the enumeration, every further query over the same database
// replays it from the cache (typically a single root-entry hit).
//
// Exactness makes this FP^#P-hard in the worst case (Theorem 5); the
// enumeration budget applies, and callers with large conflict sets
// should fall back to SqlApproxRunner.

#ifndef OPCQA_SQL_EXACT_RUNNER_H_
#define OPCQA_SQL_EXACT_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "planner/planner.h"
#include "repair/repair_cache.h"
#include "repair/repair_enumerator.h"
#include "sql/approx_runner.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "util/rational.h"

namespace opcqa {
namespace sql {

struct SqlExactOptions {
  /// Chain-walk knobs (state budget, threads, memoize). `memoize`
  /// defaults to on — it is what makes repeated queries cheap.
  EnumerationOptions enumeration;
  /// Budgets of the owned RepairSpaceCache.
  RepairCacheOptions cache;
  /// Master switch for cross-query persistence (off = per-call tables).
  bool persist = true;
  ExecOptions exec;
  /// Backend dispatch for RunCertain() (see planner/planner.h). Run()
  /// always walks — only certainty has a rewriting.
  planner::PlanMode plan = planner::PlanMode::kAuto;

  SqlExactOptions() { enumeration.memoize = true; }
};

struct SqlExactResult {
  /// Output column names of the query.
  std::vector<std::string> columns;
  /// Result row → exact CP (Σ probability of repairs answering it,
  /// normalized by the success mass). Only rows with CP > 0 appear.
  std::map<engine::Row, Rational> probability;
  /// Mass of successful / failing sequences of the underlying chain.
  Rational success_mass;
  Rational failing_mass;
  /// Distinct operational repairs the statement was evaluated on.
  size_t num_repairs = 0;
  /// This query's transposition-table counter deltas (hit-rate ≈ warm).
  MemoStats memo_stats;

  Rational Probability(const engine::Row& row) const;
};

/// Certain rows of a SQL statement (CP = 1 over the operational repairs),
/// plus which backend produced them.
struct SqlCertainResult {
  std::vector<std::string> columns;
  /// The certain rows, sorted and distinct — byte-identical whichever
  /// backend ran.
  std::vector<engine::Row> rows;
  planner::PlanKind plan = planner::PlanKind::kMemoizedWalk;
  std::string plan_reason;
};

class SqlExactRunner {
 public:
  /// `db` is the dirty database; `keys` the per-table key constraints
  /// (as in SqlApproxRunner). Fails on unknown tables or out-of-range
  /// key positions.
  static Result<SqlExactRunner> Make(Database db, std::vector<TableKey> keys,
                                     SqlExactOptions options = {});

  /// Evaluates `sql` exactly over the operational repairs. Repeated calls
  /// share the cached repair space.
  Result<SqlExactResult> Run(std::string_view sql);

  /// Certain rows of `sql` through the query planner: statements that
  /// translate to a self-join-free CQ inside the proven-coincident FO
  /// fragment are answered by the Koutris–Wijsen rewriting over the dirty
  /// database (no repair enumeration); everything else runs Run() and
  /// keeps the rows with probability exactly 1.
  Result<SqlCertainResult> RunCertain(std::string_view sql);

  /// The EGDs derived from the table keys.
  const ConstraintSet& constraints() const { return constraints_; }
  const Database& database() const { return db_; }
  /// Aggregated cache counters across all queries so far.
  MemoStats CacheStats() const { return cache_->TotalStats(); }
  /// Disk-tier counters (SqlExactOptions::cache.snapshot_dir).
  DiskTierStats DiskStats() const { return cache_->disk_stats(); }
  /// Planner decision counters for RunCertain().
  const planner::PlannerStats& PlanStats() const { return planner_.stats(); }
  /// Spills the cached repair space to the disk tier now (no-op without
  /// a snapshot_dir; destruction also spills).
  void Persist() { cache_->Persist(); }

 private:
  SqlExactRunner(Database db, ConstraintSet constraints,
                 SqlExactOptions options);

  Database db_;
  ConstraintSet constraints_;
  SqlExactOptions options_;
  UniformChainGenerator generator_;
  planner::QueryPlanner planner_;
  // Owned via pointer so the runner stays movable (the cache holds a
  // mutex) for Result<SqlExactRunner>.
  std::unique_ptr<RepairSpaceCache> cache_;
};

}  // namespace sql
}  // namespace opcqa

#endif  // OPCQA_SQL_EXACT_RUNNER_H_
