// SQL parser: token stream → Statement AST.
//
// Grammar (case-insensitive keywords; '*' starred items optional):
//
//   statement   := set_term ((UNION | EXCEPT) set_term)*
//   set_term    := select_stmt (INTERSECT select_stmt)*
//   select_stmt := SELECT [DISTINCT] select_list FROM from_list
//                  [WHERE condition] [GROUP BY column_list]
//                | '(' statement ')'
//   select_list := '*' | select_item (',' select_item)*
//   select_item := (aggregate | operand) [[AS] name]
//   aggregate   := (COUNT|SUM|MIN|MAX|AVG) '(' ('*' | column_ref) ')'
//   from_list   := from_item (',' from_item)*
//   from_item   := name [[AS] alias] | '(' statement ')' [AS] alias
//   condition   := or_cond
//   or_cond     := and_cond (OR and_cond)*
//   and_cond    := not_cond (AND not_cond)*
//   not_cond    := NOT not_cond | '(' condition ')' | comparison
//   comparison  := operand ('='|'<>'|'!='|'<'|'<='|'>'|'>=') operand
//   operand     := column_ref | string | number
//   column_ref  := name ['.' name]
//
// An unparenthesized condition starting with '(' is disambiguated by
// looking ahead: "(a.x = 1) AND …" parses as a parenthesized condition,
// "(SELECT …)" as a sub-statement is only valid in FROM.

#ifndef OPCQA_SQL_PARSER_H_
#define OPCQA_SQL_PARSER_H_

#include <string_view>

#include "sql/ast.h"
#include "util/status.h"

namespace opcqa {
namespace sql {

/// Parses one statement (an optional trailing ';' is allowed). Errors carry
/// line/column positions.
Result<StatementPtr> Parse(std::string_view text);

}  // namespace sql
}  // namespace opcqa

#endif  // OPCQA_SQL_PARSER_H_
