// SQL token model shared by the lexer and the parser.
//
// The supported dialect is the fragment the Section 5 scheme needs:
// SELECT [DISTINCT] ... FROM ... [WHERE ...] [GROUP BY ...], derived tables,
// UNION / EXCEPT / INTERSECT, the aggregates COUNT/SUM/MIN/MAX/AVG, integer
// and string literals. Identifiers are case-preserving; keywords are
// recognized case-insensitively.

#ifndef OPCQA_SQL_TOKEN_H_
#define OPCQA_SQL_TOKEN_H_

#include <string>
#include <string_view>

namespace opcqa {
namespace sql {

enum class TokenKind {
  kIdentifier,   // relation / column / alias names
  kString,       // 'text' (quotes stripped, '' unescaped)
  kNumber,       // integer literal
  // Keywords.
  kSelect, kDistinct, kFrom, kWhere, kGroup, kBy, kAs, kAnd, kOr, kNot,
  kUnion, kExcept, kIntersect, kAll,
  kCount, kSum, kMin, kMax, kAvg,
  // Punctuation / operators.
  kComma, kDot, kStar, kLParen, kRParen,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kSemicolon,
  kEnd,
};

/// Printable token-kind name for diagnostics, e.g. "SELECT" or "','".
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Original text for identifiers/strings/numbers (unquoted for strings).
  std::string text;
  /// 1-based position in the input, for error messages.
  size_t line = 1;
  size_t column = 1;
};

/// Keyword lookup (case-insensitive); returns kIdentifier when `word` is
/// not a keyword.
TokenKind KeywordOrIdentifier(std::string_view word);

}  // namespace sql
}  // namespace opcqa

#endif  // OPCQA_SQL_TOKEN_H_
