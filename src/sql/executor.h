// SQL execution over the relational-algebra engine.
//
// Binding and evaluation in one pass: FROM items are materialized with
// alias-qualified column names, WHERE is decomposed into conjuncts when
// possible (single-table predicates are pushed below the joins and
// equality predicates become hash equi-joins; non-conjunctive conditions
// fall back to product-then-filter), and the SELECT list is evaluated as a
// projection or a grouped aggregation.
//
// Semantics: set semantics throughout (the paper's relational model);
// DISTINCT is therefore always implied. Values are interned constants;
// ordering comparisons and SUM/AVG interpret a constant numerically when
// its name is a decimal integer, otherwise ordering is lexicographic and
// SUM/AVG report an error. AVG returns the exact rational, rendered
// canonically (e.g. "7/2").

#ifndef OPCQA_SQL_EXECUTOR_H_
#define OPCQA_SQL_EXECUTOR_H_

#include "sql/ast.h"
#include "sql/catalog.h"

namespace opcqa {
namespace sql {

struct ExecOptions {
  /// Upper bound on the rows of any intermediate product (guards the
  /// non-conjunctive fallback path). Exceeding it is ResourceExhausted.
  size_t max_intermediate_rows = 10'000'000;
};

/// Executes a statement against a catalog.
Result<engine::Relation> Execute(const Statement& statement,
                                 const Catalog& catalog,
                                 const ExecOptions& options = {});

/// Parses and executes in one step.
Result<engine::Relation> ExecuteSql(std::string_view text,
                                    const Catalog& catalog,
                                    const ExecOptions& options = {});

/// Three-way comparison of two interned constants: numeric when both names
/// are decimal integers, lexicographic otherwise. Exposed for tests.
int CompareConstants(ConstId a, ConstId b);

}  // namespace sql
}  // namespace opcqa

#endif  // OPCQA_SQL_EXECUTOR_H_
