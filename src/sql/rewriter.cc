#include "sql/rewriter.h"

#include "util/logging.h"

namespace opcqa {
namespace sql {
namespace {

/// Builds SELECT * FROM <table>.
StatementPtr SelectStarFrom(const std::string& table) {
  SelectCore core;
  core.select_star = true;
  FromItem item;
  item.table = table;
  item.alias = table;
  core.from.push_back(std::move(item));
  return Statement::MakeSelect(std::move(core));
}

}  // namespace

StatementPtr RewriteWithDeletions(
    const StatementPtr& statement,
    const std::map<std::string, std::string>& deletions) {
  OPCQA_CHECK(statement != nullptr);
  switch (statement->kind) {
    case Statement::Kind::kSelect: {
      SelectCore core = statement->select;  // copy; items/where are shared
      bool changed = false;
      for (FromItem& item : core.from) {
        if (item.is_derived()) {
          StatementPtr rewritten =
              RewriteWithDeletions(item.derived, deletions);
          if (rewritten != item.derived) {
            item.derived = rewritten;
            changed = true;
          }
          continue;
        }
        auto it = deletions.find(item.table);
        if (it == deletions.end()) continue;
        // R AS alias  →  (SELECT * FROM R EXCEPT SELECT * FROM R_del) AS alias
        StatementPtr difference = Statement::MakeSetOp(
            Statement::Kind::kExcept, SelectStarFrom(item.table),
            SelectStarFrom(it->second));
        item.derived = difference;
        item.table.clear();
        changed = true;
      }
      if (!changed) return statement;
      return Statement::MakeSelect(std::move(core));
    }
    case Statement::Kind::kUnion:
    case Statement::Kind::kExcept:
    case Statement::Kind::kIntersect: {
      StatementPtr left = RewriteWithDeletions(statement->left, deletions);
      StatementPtr right = RewriteWithDeletions(statement->right, deletions);
      if (left == statement->left && right == statement->right) {
        return statement;
      }
      return Statement::MakeSetOp(statement->kind, left, right);
    }
  }
  return statement;
}

}  // namespace sql
}  // namespace opcqa
