// The Section 5 rewriting at the SQL level.
//
// "… run the original query Q in which each relation R is replaced with
//  R − R_del …"
//
// RewriteWithDeletions replaces every FROM reference to a table R that has
// a registered deletion table R_del with the derived table
//
//   (SELECT * FROM R EXCEPT SELECT * FROM R_del) AS <original alias>
//
// preserving aliases so the rest of the query is untouched. The transform
// is purely syntactic; the rewritten statement can be printed, re-parsed
// and executed like any other.

#ifndef OPCQA_SQL_REWRITER_H_
#define OPCQA_SQL_REWRITER_H_

#include <map>
#include <string>

#include "sql/ast.h"

namespace opcqa {
namespace sql {

/// `deletions` maps base-table name → deletion-table name. Tables not in
/// the map are left alone. Derived tables are rewritten recursively.
StatementPtr RewriteWithDeletions(
    const StatementPtr& statement,
    const std::map<std::string, std::string>& deletions);

}  // namespace sql
}  // namespace opcqa

#endif  // OPCQA_SQL_REWRITER_H_
