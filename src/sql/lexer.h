// SQL lexer: text → token stream.

#ifndef OPCQA_SQL_LEXER_H_
#define OPCQA_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace opcqa {
namespace sql {

/// Tokenizes `text`. The result always ends with a kEnd token. Errors
/// (unterminated string, stray character) carry line/column context.
Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace sql
}  // namespace opcqa

#endif  // OPCQA_SQL_LEXER_H_
