#include "sql/exact_runner.h"

#include <string>

#include "constraints/constraint_parser.h"
#include "sql/parser.h"

namespace opcqa {
namespace sql {

namespace {

/// One EGD per non-key position of `key`: the two atoms share a variable
/// at every key position and assert equality position-wise elsewhere —
/// the textbook functional-dependency encoding, routed through the
/// constraint parser so it stays in lockstep with the repair core.
Status AppendKeyEgds(const Schema& schema, const TableKey& key,
                     ConstraintSet* constraints) {
  PredId pred = schema.FindRelation(key.table);
  if (pred == Schema::kNotFound) {
    return Status::NotFound("unknown table in keys: " + key.table);
  }
  size_t arity = schema.Arity(pred);
  if (key.key_positions.empty()) {
    return Status::InvalidArgument("empty key position list for " +
                                   key.table);
  }
  std::vector<bool> is_key(arity, false);
  for (size_t position : key.key_positions) {
    if (position >= arity) {
      return Status::OutOfRange("key position out of range for " +
                                key.table + ": " +
                                std::to_string(position));
    }
    is_key[position] = true;
  }
  auto atom = [&](char nonkey_prefix) {
    std::string text = key.table + "(";
    for (size_t i = 0; i < arity; ++i) {
      if (i > 0) text += ',';
      text += is_key[i] ? "x" + std::to_string(i)
                        : nonkey_prefix + std::to_string(i);
    }
    return text + ")";
  };
  for (size_t j = 0; j < arity; ++j) {
    if (is_key[j]) continue;
    std::string text = "key_" + key.table + "_" + std::to_string(j) + ": " +
                       atom('y') + ", " + atom('z') + " -> y" +
                       std::to_string(j) + " = z" + std::to_string(j);
    Result<Constraint> constraint = ParseConstraint(schema, text);
    if (!constraint.ok()) return constraint.status();
    constraints->push_back(std::move(constraint.value()));
  }
  return Status::Ok();
}

}  // namespace

Rational SqlExactResult::Probability(const engine::Row& row) const {
  auto it = probability.find(row);
  return it == probability.end() ? Rational(0) : it->second;
}

SqlExactRunner::SqlExactRunner(Database db, ConstraintSet constraints,
                               SqlExactOptions options)
    : db_(std::move(db)),
      constraints_(std::move(constraints)),
      options_(options),
      cache_(std::make_unique<RepairSpaceCache>(options.cache)) {}

Result<SqlExactRunner> SqlExactRunner::Make(Database db,
                                            std::vector<TableKey> keys,
                                            SqlExactOptions options) {
  if (keys.empty()) {
    return Status::InvalidArgument("no key constraints declared");
  }
  ConstraintSet constraints;
  for (const TableKey& key : keys) {
    Status appended = AppendKeyEgds(db.schema(), key, &constraints);
    if (!appended.ok()) return appended;
  }
  return SqlExactRunner(std::move(db), std::move(constraints), options);
}

Result<SqlExactResult> SqlExactRunner::Run(std::string_view sql) {
  Result<StatementPtr> statement = Parse(sql);
  if (!statement.ok()) return statement.status();

  // Validate the statement (and learn its output columns) against the
  // dirty database before paying for the enumeration.
  Catalog dirty_catalog = Catalog::FromDatabase(db_);
  Result<engine::Relation> dirty_run =
      Execute(**statement, dirty_catalog, options_.exec);
  if (!dirty_run.ok()) return dirty_run.status();

  EnumerationOptions enum_options = options_.enumeration;
  if (options_.persist) enum_options.cache = cache_.get();
  EnumerationResult enumeration =
      EnumerateRepairs(db_, constraints_, generator_, enum_options);
  if (enumeration.truncated) {
    return Status::ResourceExhausted(
        "chain too large for exact SQL answering; use SqlApproxRunner");
  }

  SqlExactResult result;
  result.columns = dirty_run->columns();
  result.success_mass = enumeration.success_mass;
  result.failing_mass = enumeration.failing_mass;
  result.num_repairs = enumeration.repairs.size();
  result.memo_stats = enumeration.memo_stats;
  if (enumeration.success_mass.is_zero()) return result;

  for (const RepairInfo& info : enumeration.repairs) {
    Catalog catalog = Catalog::FromDatabase(info.repair);
    Result<engine::Relation> evaluated =
        Execute(**statement, catalog, options_.exec);
    if (!evaluated.ok()) return evaluated.status();
    for (const engine::Row& row : evaluated->rows()) {
      result.probability[row] += info.probability;
    }
  }
  for (auto& [row, mass] : result.probability) {
    mass /= enumeration.success_mass;
  }
  return result;
}

}  // namespace sql
}  // namespace opcqa
