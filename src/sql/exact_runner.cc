#include "sql/exact_runner.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>

#include "constraints/constraint_parser.h"
#include "sql/parser.h"
#include "util/string_util.h"

namespace opcqa {
namespace sql {

namespace {

/// One EGD per non-key position of `key`: the two atoms share a variable
/// at every key position and assert equality position-wise elsewhere —
/// the textbook functional-dependency encoding, routed through the
/// constraint parser so it stays in lockstep with the repair core.
Status AppendKeyEgds(const Schema& schema, const TableKey& key,
                     ConstraintSet* constraints) {
  PredId pred = schema.FindRelation(key.table);
  if (pred == Schema::kNotFound) {
    return Status::NotFound("unknown table in keys: " + key.table);
  }
  size_t arity = schema.Arity(pred);
  if (key.key_positions.empty()) {
    return Status::InvalidArgument("empty key position list for " +
                                   key.table);
  }
  std::vector<bool> is_key(arity, false);
  for (size_t position : key.key_positions) {
    if (position >= arity) {
      return Status::OutOfRange("key position out of range for " +
                                key.table + ": " +
                                std::to_string(position));
    }
    is_key[position] = true;
  }
  auto atom = [&](char nonkey_prefix) {
    std::string text = key.table + "(";
    for (size_t i = 0; i < arity; ++i) {
      if (i > 0) text += ',';
      text += is_key[i] ? "x" + std::to_string(i)
                        : nonkey_prefix + std::to_string(i);
    }
    return text + ")";
  };
  for (size_t j = 0; j < arity; ++j) {
    if (is_key[j]) continue;
    std::string text = "key_" + key.table + "_" + std::to_string(j) + ": " +
                       atom('y') + ", " + atom('z') + " -> y" +
                       std::to_string(j) + " = z" + std::to_string(j);
    Result<Constraint> constraint = ParseConstraint(schema, text);
    if (!constraint.ok()) return constraint.status();
    constraints->push_back(std::move(constraint.value()));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// SQL → conjunctive-query bridge (the planner's front door for SQL).
//
// The translatable slice is one SELECT block over base tables whose WHERE
// is a conjunction of equalities — exactly the statements that are
// self-join-free CQs when no table repeats. Set operations, derived
// tables, aggregates, grouping, non-equality predicates and constant
// output columns all decline translation (the caller falls back to the
// walk, which handles the full fragment).
// ---------------------------------------------------------------------

/// A column slot: (FROM-item index, column position).
struct Slot {
  size_t item = 0;
  size_t position = 0;
  auto operator<=>(const Slot&) const = default;
};

/// Union-find over slots with an optional constant per class.
class SlotClasses {
 public:
  explicit SlotClasses(const std::vector<size_t>& arities) {
    for (size_t i = 0; i < arities.size(); ++i) {
      for (size_t j = 0; j < arities[i]; ++j) {
        size_t id = ids_.size();
        index_[Slot{i, j}] = id;
        ids_.push_back(id);
        constants_.emplace_back();
      }
    }
  }

  size_t Find(size_t id) {
    while (ids_[id] != id) id = ids_[id] = ids_[ids_[id]];
    return id;
  }
  size_t Of(const Slot& slot) { return Find(index_.at(slot)); }

  /// Merges two classes; false on a constant clash (unsatisfiable WHERE).
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (constants_[a] && constants_[b] && *constants_[a] != *constants_[b]) {
      return false;
    }
    if (!constants_[a]) constants_[a] = constants_[b];
    ids_[b] = a;
    return true;
  }
  /// Pins a class to a constant; false on a clash.
  bool Pin(size_t id, ConstId value) {
    id = Find(id);
    if (constants_[id] && *constants_[id] != value) return false;
    constants_[id] = value;
    return true;
  }
  const std::optional<ConstId>& ConstantOf(size_t id) {
    return constants_[Find(id)];
  }

 private:
  std::map<Slot, size_t> index_;
  std::vector<size_t> ids_;
  std::vector<std::optional<ConstId>> constants_;
};

/// Flattens a WHERE tree into kEq comparisons; false when anything else
/// (OR, NOT, non-equality) appears.
bool CollectEqualities(const ConditionPtr& condition,
                       std::vector<const Condition*>* out) {
  if (condition == nullptr) return true;
  switch (condition->kind) {
    case Condition::Kind::kCompare:
      if (condition->op != CompareOp::kEq) return false;
      out->push_back(condition.get());
      return true;
    case Condition::Kind::kAnd:
      for (const ConditionPtr& child : condition->children) {
        if (!CollectEqualities(child, out)) return false;
      }
      return true;
    default:
      return false;
  }
}

/// Translates `statement` into a conjunctive Query over `schema`, or
/// declines with a reason. Translation never guesses: ambiguous column
/// references and constant output columns decline rather than risk a
/// resolution that differs from the executor's.
std::optional<Query> TranslateToConjunctive(const Statement& statement,
                                            const Schema& schema,
                                            std::string* why) {
  if (statement.kind != Statement::Kind::kSelect) {
    *why = "set operations";
    return std::nullopt;
  }
  const SelectCore& core = statement.select;
  if (!core.group_by.empty()) {
    *why = "GROUP BY";
    return std::nullopt;
  }
  for (const SelectItem& item : core.items) {
    if (item.agg != AggregateFn::kNone) {
      *why = "aggregates";
      return std::nullopt;
    }
    if (!item.operand.is_column()) {
      *why = "literal SELECT item";
      return std::nullopt;
    }
  }
  std::vector<PredId> preds;
  std::vector<size_t> arities;
  for (const FromItem& item : core.from) {
    if (item.is_derived()) {
      *why = "derived tables";
      return std::nullopt;
    }
    PredId pred = schema.FindRelation(item.table);
    if (pred == Schema::kNotFound) {
      *why = StrCat("unknown table ", item.table);
      return std::nullopt;
    }
    preds.push_back(pred);
    arities.push_back(schema.Arity(pred));
  }

  // Resolve a column operand to its slot. Catalog::FromDatabase names
  // columns c0, c1, …; an unqualified name must match exactly one alias.
  auto resolve = [&](const Operand& operand) -> std::optional<Slot> {
    std::optional<Slot> found;
    for (size_t i = 0; i < core.from.size(); ++i) {
      if (!operand.table.empty() && operand.table != core.from[i].alias) {
        continue;
      }
      for (size_t j = 0; j < arities[i]; ++j) {
        if (operand.column != StrCat("c", j)) continue;
        if (found.has_value()) return std::nullopt;  // ambiguous
        found = Slot{i, j};
      }
    }
    return found;
  };

  SlotClasses classes(arities);
  std::vector<const Condition*> equalities;
  if (!CollectEqualities(core.where, &equalities)) {
    *why = "WHERE is not a conjunction of equalities";
    return std::nullopt;
  }
  for (const Condition* eq : equalities) {
    const Operand& lhs = eq->lhs;
    const Operand& rhs = eq->rhs;
    bool ok = true;
    if (lhs.is_column() && rhs.is_column()) {
      std::optional<Slot> a = resolve(lhs), b = resolve(rhs);
      if (!a || !b) {
        *why = "unresolvable column in WHERE";
        return std::nullopt;
      }
      ok = classes.Union(classes.Of(*a), classes.Of(*b));
    } else if (lhs.is_column() || rhs.is_column()) {
      const Operand& column = lhs.is_column() ? lhs : rhs;
      const Operand& literal = lhs.is_column() ? rhs : lhs;
      std::optional<Slot> slot = resolve(column);
      if (!slot) {
        *why = "unresolvable column in WHERE";
        return std::nullopt;
      }
      ok = classes.Pin(classes.Of(*slot), Const(literal.literal));
    } else if (lhs.literal != rhs.literal) {
      ok = false;
    }
    if (!ok) {
      *why = "unsatisfiable WHERE equalities";
      return std::nullopt;
    }
  }

  // One variable per (non-constant) class, named after its root slot.
  auto term_of = [&](const Slot& slot) {
    size_t root = classes.Of(slot);
    const std::optional<ConstId>& constant = classes.ConstantOf(root);
    if (constant.has_value()) return Term::MakeConst(*constant);
    return Term::MakeVar(Var(StrCat("sq", root)));
  };

  Conjunction body;
  for (size_t i = 0; i < core.from.size(); ++i) {
    std::vector<Term> terms;
    for (size_t j = 0; j < arities[i]; ++j) {
      terms.push_back(term_of(Slot{i, j}));
    }
    body.Add(Atom(preds[i], std::move(terms)));
  }

  std::vector<Operand> outputs;
  if (core.select_star) {
    for (size_t i = 0; i < core.from.size(); ++i) {
      for (size_t j = 0; j < arities[i]; ++j) {
        outputs.push_back(
            Operand::Column(core.from[i].alias, StrCat("c", j)));
      }
    }
  } else {
    for (const SelectItem& item : core.items) outputs.push_back(item.operand);
  }
  std::vector<VarId> head;
  for (const Operand& operand : outputs) {
    std::optional<Slot> slot = resolve(operand);
    if (!slot) {
      *why = StrCat("unresolvable output column ", operand.ToString());
      return std::nullopt;
    }
    Term term = term_of(*slot);
    if (!term.is_var()) {
      *why = "output column pinned to a constant";
      return std::nullopt;
    }
    head.push_back(term.var());
  }

  std::vector<VarId> existential;
  for (VarId var : body.Variables()) {
    if (std::find(head.begin(), head.end(), var) == head.end()) {
      existential.push_back(var);
    }
  }
  FormulaPtr formula = Formula::FromConjunction(body);
  if (!existential.empty()) {
    formula = Formula::Exists(std::move(existential), std::move(formula));
  }
  return Query("CERTAIN", std::move(head), std::move(formula));
}

}  // namespace

Rational SqlExactResult::Probability(const engine::Row& row) const {
  auto it = probability.find(row);
  return it == probability.end() ? Rational(0) : it->second;
}

SqlExactRunner::SqlExactRunner(Database db, ConstraintSet constraints,
                               SqlExactOptions options)
    : db_(std::move(db)),
      constraints_(std::move(constraints)),
      options_(options),
      planner_(options.plan),
      cache_(std::make_unique<RepairSpaceCache>(options.cache)) {}

Result<SqlExactRunner> SqlExactRunner::Make(Database db,
                                            std::vector<TableKey> keys,
                                            SqlExactOptions options) {
  if (keys.empty()) {
    return Status::InvalidArgument("no key constraints declared");
  }
  ConstraintSet constraints;
  for (const TableKey& key : keys) {
    Status appended = AppendKeyEgds(db.schema(), key, &constraints);
    if (!appended.ok()) return appended;
  }
  return SqlExactRunner(std::move(db), std::move(constraints), options);
}

Result<SqlExactResult> SqlExactRunner::Run(std::string_view sql) {
  Result<StatementPtr> statement = Parse(sql);
  if (!statement.ok()) return statement.status();

  // Validate the statement (and learn its output columns) against the
  // dirty database before paying for the enumeration.
  Catalog dirty_catalog = Catalog::FromDatabase(db_);
  Result<engine::Relation> dirty_run =
      Execute(**statement, dirty_catalog, options_.exec);
  if (!dirty_run.ok()) return dirty_run.status();

  EnumerationOptions enum_options = options_.enumeration;
  if (options_.persist) enum_options.cache = cache_.get();
  EnumerationResult enumeration =
      EnumerateRepairs(db_, constraints_, generator_, enum_options);
  if (enumeration.truncated) {
    return Status::ResourceExhausted(
        "chain too large for exact SQL answering; use SqlApproxRunner");
  }

  SqlExactResult result;
  result.columns = dirty_run->columns();
  result.success_mass = enumeration.success_mass;
  result.failing_mass = enumeration.failing_mass;
  result.num_repairs = enumeration.repairs.size();
  result.memo_stats = enumeration.memo_stats;
  if (enumeration.success_mass.is_zero()) return result;

  for (const RepairInfo& info : enumeration.repairs) {
    Catalog catalog = Catalog::FromDatabase(info.repair);
    Result<engine::Relation> evaluated =
        Execute(**statement, catalog, options_.exec);
    if (!evaluated.ok()) return evaluated.status();
    for (const engine::Row& row : evaluated->rows()) {
      result.probability[row] += info.probability;
    }
  }
  for (auto& [row, mass] : result.probability) {
    mass /= enumeration.success_mass;
  }
  return result;
}

Result<SqlCertainResult> SqlExactRunner::RunCertain(std::string_view sql) {
  Result<StatementPtr> statement = Parse(sql);
  if (!statement.ok()) return statement.status();
  Catalog dirty_catalog = Catalog::FromDatabase(db_);
  Result<engine::Relation> dirty_run =
      Execute(**statement, dirty_catalog, options_.exec);
  if (!dirty_run.ok()) return dirty_run.status();

  SqlCertainResult result;
  result.columns = dirty_run->columns();

  std::string why;
  std::optional<Query> query =
      TranslateToConjunctive(**statement, db_.schema(), &why);
  if (query.has_value()) {
    Result<planner::QueryPlan> plan =
        planner_.Plan(db_, constraints_, generator_, *query);
    if (!plan.ok()) return plan.status();  // forced-rewrite mismatch
    result.plan_reason = plan->reason;
    if (plan->kind == planner::PlanKind::kRewriting) {
      std::set<Tuple> certain =
          planner::EvaluateCertain(db_, *query, plan->rewritten);
      result.plan = planner::PlanKind::kRewriting;
      result.rows.assign(certain.begin(), certain.end());
      return result;
    }
  } else {
    result.plan_reason =
        StrCat("not translatable to a conjunctive query: ", why);
    if (options_.plan == planner::PlanMode::kRewrite) {
      return Status::InvalidArgument(
          StrCat("--plan=rewrite forced but the statement is ",
                 result.plan_reason));
    }
  }

  // Walk backend: certain rows = rows present in *every* operational
  // repair (intersection of per-repair row sets — set semantics, so a
  // duplicated row inside one repair cannot masquerade as certain).
  EnumerationOptions enum_options = options_.enumeration;
  if (options_.persist) enum_options.cache = cache_.get();
  EnumerationResult enumeration =
      EnumerateRepairs(db_, constraints_, generator_, enum_options);
  if (enumeration.truncated) {
    return Status::ResourceExhausted(
        "chain too large for exact SQL answering; use SqlApproxRunner");
  }
  result.plan = planner::PlanKind::kMemoizedWalk;
  if (enumeration.success_mass.is_zero()) return result;

  std::set<engine::Row> certain;
  bool first = true;
  for (const RepairInfo& info : enumeration.repairs) {
    Result<engine::Relation> evaluated =
        Execute(**statement, Catalog::FromDatabase(info.repair),
                options_.exec);
    if (!evaluated.ok()) return evaluated.status();
    std::set<engine::Row> rows(evaluated->rows().begin(),
                               evaluated->rows().end());
    if (first) {
      certain = std::move(rows);
      first = false;
    } else {
      std::set<engine::Row> kept;
      std::set_intersection(certain.begin(), certain.end(), rows.begin(),
                            rows.end(), std::inserter(kept, kept.end()));
      certain = std::move(kept);
    }
    if (certain.empty()) break;
  }
  result.rows.assign(certain.begin(), certain.end());
  return result;
}

}  // namespace sql
}  // namespace opcqa
