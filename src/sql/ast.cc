#include "sql/ast.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {
namespace sql {
namespace {

/// Quotes a literal back into SQL syntax. Bare integers stay bare; anything
/// else becomes a single-quoted string with '' escaping.
std::string QuoteLiteral(const std::string& text) {
  if (!text.empty()) {
    bool all_digits = true;
    for (char c : text) {
      if (c < '0' || c > '9') {
        all_digits = false;
        break;
      }
    }
    if (all_digits) return text;
  }
  std::string out = "'";
  for (char c : text) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

}  // namespace

std::string Operand::ToString() const {
  if (kind == Kind::kLiteral) return QuoteLiteral(literal);
  if (table.empty()) return column;
  return StrCat(table, ".", column);
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNeq: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

ConditionPtr Condition::Compare(CompareOp op, Operand lhs, Operand rhs) {
  auto cond = std::make_shared<Condition>();
  cond->kind = Kind::kCompare;
  cond->op = op;
  cond->lhs = std::move(lhs);
  cond->rhs = std::move(rhs);
  return cond;
}

ConditionPtr Condition::And(std::vector<ConditionPtr> children) {
  OPCQA_CHECK_GE(children.size(), 2u);
  auto cond = std::make_shared<Condition>();
  cond->kind = Kind::kAnd;
  cond->children = std::move(children);
  return cond;
}

ConditionPtr Condition::Or(std::vector<ConditionPtr> children) {
  OPCQA_CHECK_GE(children.size(), 2u);
  auto cond = std::make_shared<Condition>();
  cond->kind = Kind::kOr;
  cond->children = std::move(children);
  return cond;
}

ConditionPtr Condition::Not(ConditionPtr child) {
  OPCQA_CHECK(child != nullptr);
  auto cond = std::make_shared<Condition>();
  cond->kind = Kind::kNot;
  cond->children = {std::move(child)};
  return cond;
}

std::string Condition::ToString() const {
  switch (kind) {
    case Kind::kCompare:
      return StrCat(lhs.ToString(), " ", CompareOpName(op), " ",
                    rhs.ToString());
    case Kind::kAnd: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const auto& child : children) {
        parts.push_back(StrCat("(", child->ToString(), ")"));
      }
      return Join(parts, " AND ");
    }
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const auto& child : children) {
        parts.push_back(StrCat("(", child->ToString(), ")"));
      }
      return Join(parts, " OR ");
    }
    case Kind::kNot:
      return StrCat("NOT (", children[0]->ToString(), ")");
  }
  return "?";
}

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kNone: return "";
    case AggregateFn::kCount: return "COUNT";
    case AggregateFn::kCountStar: return "COUNT";
    case AggregateFn::kSum: return "SUM";
    case AggregateFn::kMin: return "MIN";
    case AggregateFn::kMax: return "MAX";
    case AggregateFn::kAvg: return "AVG";
  }
  return "?";
}

std::string SelectItem::ToString() const {
  std::string expr;
  if (agg == AggregateFn::kCountStar) {
    expr = "COUNT(*)";
  } else if (agg != AggregateFn::kNone) {
    expr = StrCat(AggregateFnName(agg), "(", operand.ToString(), ")");
  } else {
    expr = operand.ToString();
  }
  if (!alias.empty()) return StrCat(expr, " AS ", alias);
  return expr;
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  switch (agg) {
    case AggregateFn::kNone:
      return operand.column;
    case AggregateFn::kCountStar:
      return "count";
    case AggregateFn::kCount:
      return StrCat("count_", operand.column);
    case AggregateFn::kSum:
      return StrCat("sum_", operand.column);
    case AggregateFn::kMin:
      return StrCat("min_", operand.column);
    case AggregateFn::kMax:
      return StrCat("max_", operand.column);
    case AggregateFn::kAvg:
      return StrCat("avg_", operand.column);
  }
  return "?";
}

std::string FromItem::ToString() const {
  if (is_derived()) return StrCat("(", derived->ToString(), ") AS ", alias);
  if (alias != table) return StrCat(table, " AS ", alias);
  return table;
}

std::string SelectCore::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select_star) {
    out += "*";
  } else {
    std::vector<std::string> parts;
    parts.reserve(items.size());
    for (const SelectItem& item : items) parts.push_back(item.ToString());
    out += Join(parts, ", ");
  }
  out += " FROM ";
  std::vector<std::string> tables;
  tables.reserve(from.size());
  for (const FromItem& item : from) tables.push_back(item.ToString());
  out += Join(tables, ", ");
  if (where != nullptr) out += StrCat(" WHERE ", where->ToString());
  if (!group_by.empty()) {
    std::vector<std::string> cols;
    cols.reserve(group_by.size());
    for (const Operand& col : group_by) cols.push_back(col.ToString());
    out += StrCat(" GROUP BY ", Join(cols, ", "));
  }
  return out;
}

StatementPtr Statement::MakeSelect(SelectCore core) {
  auto stmt = std::make_shared<Statement>();
  stmt->kind = Kind::kSelect;
  stmt->select = std::move(core);
  return stmt;
}

StatementPtr Statement::MakeSetOp(Kind kind, StatementPtr left,
                                  StatementPtr right) {
  OPCQA_CHECK(kind != Kind::kSelect);
  OPCQA_CHECK(left != nullptr && right != nullptr);
  auto stmt = std::make_shared<Statement>();
  stmt->kind = kind;
  stmt->left = std::move(left);
  stmt->right = std::move(right);
  return stmt;
}

std::string Statement::ToString() const {
  switch (kind) {
    case Kind::kSelect:
      return select.ToString();
    case Kind::kUnion:
      return StrCat(left->ToString(), " UNION ", right->ToString());
    case Kind::kExcept:
      return StrCat(left->ToString(), " EXCEPT ", right->ToString());
    case Kind::kIntersect:
      return StrCat(left->ToString(), " INTERSECT ", right->ToString());
  }
  return "?";
}

}  // namespace sql
}  // namespace opcqa
