#include "sql/lexer.h"

#include <cctype>
#include <string>
#include <unordered_map>

#include "util/string_util.h"

namespace opcqa {
namespace sql {
namespace {

std::string ToUpperAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

TokenKind KeywordOrIdentifier(std::string_view word) {
  static const std::unordered_map<std::string, TokenKind> kKeywords = {
      {"SELECT", TokenKind::kSelect},     {"DISTINCT", TokenKind::kDistinct},
      {"FROM", TokenKind::kFrom},         {"WHERE", TokenKind::kWhere},
      {"GROUP", TokenKind::kGroup},       {"BY", TokenKind::kBy},
      {"AS", TokenKind::kAs},             {"AND", TokenKind::kAnd},
      {"OR", TokenKind::kOr},             {"NOT", TokenKind::kNot},
      {"UNION", TokenKind::kUnion},       {"EXCEPT", TokenKind::kExcept},
      {"INTERSECT", TokenKind::kIntersect}, {"ALL", TokenKind::kAll},
      {"COUNT", TokenKind::kCount},       {"SUM", TokenKind::kSum},
      {"MIN", TokenKind::kMin},           {"MAX", TokenKind::kMax},
      {"AVG", TokenKind::kAvg},
  };
  auto it = kKeywords.find(ToUpperAscii(word));
  return it == kKeywords.end() ? TokenKind::kIdentifier : it->second;
}

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kString: return "string literal";
    case TokenKind::kNumber: return "number";
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kDistinct: return "DISTINCT";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kGroup: return "GROUP";
    case TokenKind::kBy: return "BY";
    case TokenKind::kAs: return "AS";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kUnion: return "UNION";
    case TokenKind::kExcept: return "EXCEPT";
    case TokenKind::kIntersect: return "INTERSECT";
    case TokenKind::kAll: return "ALL";
    case TokenKind::kCount: return "COUNT";
    case TokenKind::kSum: return "SUM";
    case TokenKind::kMin: return "MIN";
    case TokenKind::kMax: return "MAX";
    case TokenKind::kAvg: return "AVG";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  size_t line = 1;
  size_t column = 1;
  size_t i = 0;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < text.size() && text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  auto push = [&](TokenKind kind, std::string token_text, size_t tok_line,
                  size_t tok_column) {
    tokens.push_back(Token{kind, std::move(token_text), tok_line, tok_column});
  };

  while (i < text.size()) {
    char c = text[i];
    size_t tok_line = line, tok_column = column;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comment: -- to end of line.
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        advance(1);
      }
      std::string word(text.substr(start, i - start));
      TokenKind kind = KeywordOrIdentifier(word);  // before the move below
      push(kind, std::move(word), tok_line, tok_column);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        advance(1);
      }
      push(TokenKind::kNumber, std::string(text.substr(start, i - start)),
           tok_line, tok_column);
      continue;
    }
    if (c == '\'') {
      advance(1);
      std::string value;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\'') {
          if (i + 1 < text.size() && text[i + 1] == '\'') {
            value.push_back('\'');  // '' escapes a quote
            advance(2);
            continue;
          }
          advance(1);
          closed = true;
          break;
        }
        value.push_back(text[i]);
        advance(1);
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrCat("unterminated string literal at line ", tok_line,
                   ", column ", tok_column));
      }
      push(TokenKind::kString, std::move(value), tok_line, tok_column);
      continue;
    }
    switch (c) {
      case ',':
        push(TokenKind::kComma, ",", tok_line, tok_column);
        advance(1);
        continue;
      case '.':
        push(TokenKind::kDot, ".", tok_line, tok_column);
        advance(1);
        continue;
      case '*':
        push(TokenKind::kStar, "*", tok_line, tok_column);
        advance(1);
        continue;
      case '(':
        push(TokenKind::kLParen, "(", tok_line, tok_column);
        advance(1);
        continue;
      case ')':
        push(TokenKind::kRParen, ")", tok_line, tok_column);
        advance(1);
        continue;
      case ';':
        push(TokenKind::kSemicolon, ";", tok_line, tok_column);
        advance(1);
        continue;
      case '=':
        push(TokenKind::kEq, "=", tok_line, tok_column);
        advance(1);
        continue;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kNeq, "!=", tok_line, tok_column);
          advance(2);
          continue;
        }
        return Status::InvalidArgument(
            StrCat("stray '!' at line ", tok_line, ", column ", tok_column));
      case '<':
        if (i + 1 < text.size() && text[i + 1] == '>') {
          push(TokenKind::kNeq, "<>", tok_line, tok_column);
          advance(2);
        } else if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kLe, "<=", tok_line, tok_column);
          advance(2);
        } else {
          push(TokenKind::kLt, "<", tok_line, tok_column);
          advance(1);
        }
        continue;
      case '>':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kGe, ">=", tok_line, tok_column);
          advance(2);
        } else {
          push(TokenKind::kGt, ">", tok_line, tok_column);
          advance(1);
        }
        continue;
      default:
        return Status::InvalidArgument(StrCat(
            "unexpected character '", std::string(1, c), "' at line ",
            tok_line, ", column ", tok_column));
    }
  }
  tokens.push_back(Token{TokenKind::kEnd, "", line, column});
  return tokens;
}

}  // namespace sql
}  // namespace opcqa
