#include "sql/executor.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>

#include "engine/algebra.h"
#include "sql/parser.h"
#include "util/rational.h"
#include "util/string_util.h"

namespace opcqa {
namespace sql {
namespace {

using engine::Relation;
using engine::Row;

/// Parses a constant's name as a decimal integer (optional leading '-').
std::optional<int64_t> AsInteger(ConstId id) {
  const std::string& name = ConstName(id);
  if (name.empty()) return std::nullopt;
  size_t start = name[0] == '-' ? 1 : 0;
  if (start == name.size()) return std::nullopt;
  int64_t value = 0;
  for (size_t i = start; i < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    if (value > (INT64_MAX - (c - '0')) / 10) return std::nullopt;  // overflow
    value = value * 10 + (c - '0');
  }
  return start == 1 ? -value : value;
}

/// A bound operand: either a constant or a column index of the working
/// relation.
struct BoundOperand {
  bool is_constant = false;
  ConstId constant = 0;
  size_t column_index = 0;

  ConstId ValueIn(const Row& row) const {
    return is_constant ? constant : row[column_index];
  }
};

/// One evaluated FROM item.
struct BoundTable {
  std::string alias;
  Relation relation;  // columns are "alias.col"
};

class SelectEvaluator {
 public:
  SelectEvaluator(const SelectCore& core, const Catalog& catalog,
                  const ExecOptions& options)
      : core_(core), catalog_(catalog), options_(options) {}

  Result<Relation> Run();

 private:
  // -- Binding helpers -------------------------------------------------

  /// Resolves a column operand against the columns of `relation`.
  /// Unqualified names match any "alias.name"; ambiguity is an error.
  Result<size_t> ResolveColumn(const Operand& operand,
                               const Relation& relation) const {
    OPCQA_CHECK(operand.is_column());
    if (!operand.table.empty()) {
      std::string full = StrCat(operand.table, ".", operand.column);
      size_t index = relation.ColumnIndex(full);
      if (index == Relation::kNotFound) {
        return Status::NotFound(StrCat("unknown column ", full));
      }
      return index;
    }
    size_t found = Relation::kNotFound;
    for (size_t i = 0; i < relation.arity(); ++i) {
      const std::string& name = relation.columns()[i];
      size_t dot = name.rfind('.');
      std::string_view bare =
          dot == std::string::npos
              ? std::string_view(name)
              : std::string_view(name).substr(dot + 1);
      if (bare == operand.column) {
        if (found != Relation::kNotFound) {
          return Status::InvalidArgument(
              StrCat("ambiguous column ", operand.column));
        }
        found = i;
      }
    }
    if (found == Relation::kNotFound) {
      return Status::NotFound(StrCat("unknown column ", operand.column));
    }
    return found;
  }

  Result<BoundOperand> Bind(const Operand& operand,
                            const Relation& relation) const {
    BoundOperand bound;
    if (!operand.is_column()) {
      bound.is_constant = true;
      bound.constant = Const(operand.literal);
      return bound;
    }
    Result<size_t> index = ResolveColumn(operand, relation);
    if (!index.ok()) return index.status();
    bound.column_index = index.value();
    return bound;
  }

  /// Evaluates a condition on one row of `relation`.
  Result<bool> EvalCondition(const Condition& condition,
                             const Relation& relation, const Row& row) const {
    switch (condition.kind) {
      case Condition::Kind::kCompare: {
        Result<BoundOperand> lhs = Bind(condition.lhs, relation);
        if (!lhs.ok()) return lhs.status();
        Result<BoundOperand> rhs = Bind(condition.rhs, relation);
        if (!rhs.ok()) return rhs.status();
        return EvalCompare(condition.op, lhs.value().ValueIn(row),
                           rhs.value().ValueIn(row));
      }
      case Condition::Kind::kAnd:
        for (const ConditionPtr& child : condition.children) {
          Result<bool> v = EvalCondition(*child, relation, row);
          if (!v.ok()) return v;
          if (!v.value()) return false;
        }
        return true;
      case Condition::Kind::kOr:
        for (const ConditionPtr& child : condition.children) {
          Result<bool> v = EvalCondition(*child, relation, row);
          if (!v.ok()) return v;
          if (v.value()) return true;
        }
        return false;
      case Condition::Kind::kNot: {
        Result<bool> v = EvalCondition(*condition.children[0], relation, row);
        if (!v.ok()) return v;
        return !v.value();
      }
    }
    return Status::Internal("unreachable condition kind");
  }

  static bool EvalCompare(CompareOp op, ConstId a, ConstId b) {
    switch (op) {
      case CompareOp::kEq: return a == b;
      case CompareOp::kNeq: return a != b;
      case CompareOp::kLt: return CompareConstants(a, b) < 0;
      case CompareOp::kLe: return CompareConstants(a, b) <= 0;
      case CompareOp::kGt: return CompareConstants(a, b) > 0;
      case CompareOp::kGe: return CompareConstants(a, b) >= 0;
    }
    return false;
  }

  /// Splits `condition` into conjuncts when it is a pure conjunction of
  /// comparisons; returns false when it contains OR / NOT anywhere.
  static bool CollectConjuncts(const ConditionPtr& condition,
                               std::vector<const Condition*>* out) {
    if (condition == nullptr) return true;
    switch (condition->kind) {
      case Condition::Kind::kCompare:
        out->push_back(condition.get());
        return true;
      case Condition::Kind::kAnd:
        for (const ConditionPtr& child : condition->children) {
          if (!CollectConjuncts(child, out)) return false;
        }
        return true;
      default:
        return false;
    }
  }

  // -- Phases -----------------------------------------------------------

  Result<std::vector<BoundTable>> EvaluateFromItems() const {
    std::vector<BoundTable> tables;
    std::set<std::string> aliases;
    for (const FromItem& item : core_.from) {
      if (!aliases.insert(item.alias).second) {
        return Status::InvalidArgument(
            StrCat("duplicate table alias ", item.alias));
      }
      Relation relation;
      if (item.is_derived()) {
        Result<Relation> derived = Execute(*item.derived, catalog_, options_);
        if (!derived.ok()) return derived.status();
        relation = std::move(derived).value();
      } else {
        const Relation* stored = catalog_.Find(item.table);
        if (stored == nullptr) {
          return Status::NotFound(StrCat("unknown table ", item.table));
        }
        relation = *stored;
      }
      // Qualify all columns with the alias. Derived-table outputs may
      // already carry a qualifier; strip it first.
      std::vector<std::string> qualified;
      qualified.reserve(relation.arity());
      for (const std::string& column : relation.columns()) {
        size_t dot = column.rfind('.');
        std::string bare =
            dot == std::string::npos ? column : column.substr(dot + 1);
        qualified.push_back(StrCat(item.alias, ".", bare));
      }
      tables.push_back(
          BoundTable{item.alias, engine::Rename(relation, qualified)});
    }
    return tables;
  }

  /// The conjunctive fast path: per-table filters, then hash equi-joins in
  /// FROM order, then residual filters. `conjuncts` must all be kCompare.
  Result<Relation> JoinConjunctive(
      std::vector<BoundTable> tables,
      const std::vector<const Condition*>& conjuncts) const {
    // Classify conjuncts. A conjunct is table-local when all its column
    // operands resolve within one table; it is a join edge when it is an
    // equality between columns of two distinct tables.
    std::vector<const Condition*> residual;
    struct JoinEdge {
      size_t left_table, right_table;
      std::string left_column, right_column;
    };
    std::vector<JoinEdge> edges;

    auto owner_of = [&](const Operand& operand) -> Result<size_t> {
      size_t owner = SIZE_MAX;
      for (size_t t = 0; t < tables.size(); ++t) {
        Result<size_t> index = ResolveColumn(operand, tables[t].relation);
        if (index.ok()) {
          if (owner != SIZE_MAX) {
            return Status::InvalidArgument(
                StrCat("ambiguous column ", operand.ToString()));
          }
          owner = t;
        } else if (index.status().code() == StatusCode::kInvalidArgument) {
          return index.status();  // ambiguous within one table
        }
      }
      if (owner == SIZE_MAX) {
        return Status::NotFound(
            StrCat("unknown column ", operand.ToString()));
      }
      return owner;
    };

    for (const Condition* conjunct : conjuncts) {
      const Operand& lhs = conjunct->lhs;
      const Operand& rhs = conjunct->rhs;
      if (lhs.is_column() && rhs.is_column()) {
        Result<size_t> lt = owner_of(lhs);
        if (!lt.ok()) return lt.status();
        Result<size_t> rt = owner_of(rhs);
        if (!rt.ok()) return rt.status();
        if (lt.value() != rt.value() && conjunct->op == CompareOp::kEq) {
          Result<size_t> li =
              ResolveColumn(lhs, tables[lt.value()].relation);
          Result<size_t> ri =
              ResolveColumn(rhs, tables[rt.value()].relation);
          edges.push_back(JoinEdge{
              lt.value(), rt.value(),
              tables[lt.value()].relation.columns()[li.value()],
              tables[rt.value()].relation.columns()[ri.value()]});
          continue;
        }
        if (lt.value() == rt.value()) {
          // Table-local comparison: filter that table now.
          size_t t = lt.value();
          const Relation& rel = tables[t].relation;
          Result<BoundOperand> bl = Bind(lhs, rel);
          if (!bl.ok()) return bl.status();
          Result<BoundOperand> br = Bind(rhs, rel);
          if (!br.ok()) return br.status();
          CompareOp op = conjunct->op;
          BoundOperand lb = bl.value(), rb = br.value();
          tables[t].relation =
              engine::Select(rel, [op, lb, rb](const Row& row) {
                return EvalCompare(op, lb.ValueIn(row), rb.ValueIn(row));
              });
          continue;
        }
        residual.push_back(conjunct);  // cross-table non-equality
        continue;
      }
      if (lhs.is_column() != rhs.is_column()) {
        // column vs literal: local filter.
        const Operand& column = lhs.is_column() ? lhs : rhs;
        Result<size_t> t = owner_of(column);
        if (!t.ok()) return t.status();
        const Relation& rel = tables[t.value()].relation;
        Result<BoundOperand> bl = Bind(lhs, rel);
        if (!bl.ok()) return bl.status();
        Result<BoundOperand> br = Bind(rhs, rel);
        if (!br.ok()) return br.status();
        CompareOp op = conjunct->op;
        BoundOperand lb = bl.value(), rb = br.value();
        tables[t.value()].relation =
            engine::Select(rel, [op, lb, rb](const Row& row) {
              return EvalCompare(op, lb.ValueIn(row), rb.ValueIn(row));
            });
        continue;
      }
      // literal vs literal: constant condition.
      bool value = EvalCompare(conjunct->op, Const(lhs.literal),
                               Const(rhs.literal));
      if (!value) {
        // Constant-false WHERE: empty result with the product schema.
        std::vector<std::string> columns;
        for (const BoundTable& table : tables) {
          columns.insert(columns.end(), table.relation.columns().begin(),
                         table.relation.columns().end());
        }
        return Relation("empty", columns);
      }
    }

    // Join in FROM order, using every edge whose two sides are available.
    Relation joined = tables[0].relation;
    std::set<size_t> in_join = {0};
    for (size_t t = 1; t < tables.size(); ++t) {
      std::vector<std::pair<std::string, std::string>> pairs;
      for (const JoinEdge& edge : edges) {
        if (edge.right_table == t && in_join.count(edge.left_table)) {
          pairs.emplace_back(edge.left_column, edge.right_column);
        } else if (edge.left_table == t && in_join.count(edge.right_table)) {
          pairs.emplace_back(edge.right_column, edge.left_column);
        }
      }
      size_t bound = pairs.empty()
                         ? joined.size() * tables[t].relation.size()
                         : joined.size() + tables[t].relation.size();
      if (bound > options_.max_intermediate_rows) {
        return Status::ResourceExhausted(
            StrCat("intermediate product of ", joined.size(), " x ",
                   tables[t].relation.size(), " rows exceeds the budget"));
      }
      joined = engine::EquiJoin(joined, tables[t].relation, pairs);
      in_join.insert(t);
    }

    // Residual cross-table comparisons.
    for (const Condition* conjunct : residual) {
      Result<BoundOperand> bl = Bind(conjunct->lhs, joined);
      if (!bl.ok()) return bl.status();
      Result<BoundOperand> br = Bind(conjunct->rhs, joined);
      if (!br.ok()) return br.status();
      CompareOp op = conjunct->op;
      BoundOperand lb = bl.value(), rb = br.value();
      joined = engine::Select(joined, [op, lb, rb](const Row& row) {
        return EvalCompare(op, lb.ValueIn(row), rb.ValueIn(row));
      });
    }
    return joined;
  }

  /// Fallback: full product, then generic condition filter.
  Result<Relation> JoinGeneric(const std::vector<BoundTable>& tables) const {
    Relation joined = tables[0].relation;
    for (size_t t = 1; t < tables.size(); ++t) {
      if (joined.size() * tables[t].relation.size() >
          options_.max_intermediate_rows) {
        return Status::ResourceExhausted(
            StrCat("product of ", joined.size(), " x ",
                   tables[t].relation.size(), " rows exceeds the budget"));
      }
      joined = engine::EquiJoin(joined, tables[t].relation, {});
    }
    if (core_.where == nullptr) return joined;
    Relation filtered(joined.name(), joined.columns());
    for (const Row& row : joined.rows()) {
      Result<bool> keep = EvalCondition(*core_.where, joined, row);
      if (!keep.ok()) return keep.status();
      if (keep.value()) filtered.Add(row);
    }
    return filtered;
  }

  Result<Relation> ProjectPlain(const Relation& joined) const {
    if (core_.select_star) {
      Relation out = joined;
      if (core_.from.size() == 1) {
        // Single table: strip the alias qualifier for usability.
        std::vector<std::string> bare;
        bare.reserve(out.arity());
        for (const std::string& column : out.columns()) {
          size_t dot = column.rfind('.');
          bare.push_back(dot == std::string::npos ? column
                                                  : column.substr(dot + 1));
        }
        out = engine::Rename(out, bare);
      }
      out.Normalize();
      return out;
    }
    std::vector<size_t> indices;
    std::vector<std::string> names;
    for (const SelectItem& item : core_.items) {
      Result<size_t> index = ResolveColumn(item.operand, joined);
      if (!index.ok()) return index.status();
      indices.push_back(index.value());
      names.push_back(item.OutputName());
    }
    Relation out("result", names);
    for (const Row& row : joined.rows()) {
      Row projected;
      projected.reserve(indices.size());
      for (size_t index : indices) projected.push_back(row[index]);
      out.Add(std::move(projected));
    }
    out.Normalize();
    return out;
  }

  Result<Relation> Aggregate(const Relation& joined) const {
    // Resolve grouping columns.
    std::vector<size_t> group_indices;
    for (const Operand& column : core_.group_by) {
      Result<size_t> index = ResolveColumn(column, joined);
      if (!index.ok()) return index.status();
      group_indices.push_back(index.value());
    }
    // Validate the select list: plain items must be grouping columns.
    struct ItemPlan {
      AggregateFn agg;
      size_t index = 0;  // column index (not used by kCountStar)
    };
    std::vector<ItemPlan> plans;
    std::vector<std::string> names;
    for (const SelectItem& item : core_.items) {
      ItemPlan plan{item.agg, 0};
      if (item.agg != AggregateFn::kCountStar) {
        Result<size_t> index = ResolveColumn(item.operand, joined);
        if (!index.ok()) return index.status();
        plan.index = index.value();
        if (item.agg == AggregateFn::kNone &&
            std::find(group_indices.begin(), group_indices.end(),
                      plan.index) == group_indices.end()) {
          return Status::InvalidArgument(
              StrCat("column ", item.operand.ToString(),
                     " must appear in GROUP BY or inside an aggregate"));
        }
      }
      plans.push_back(plan);
      names.push_back(item.OutputName());
    }

    // Group rows.
    std::map<Row, std::vector<const Row*>> groups;
    if (group_indices.empty()) {
      groups[{}] = {};
      for (const Row& row : joined.rows()) groups[{}].push_back(&row);
    } else {
      for (const Row& row : joined.rows()) {
        Row key;
        key.reserve(group_indices.size());
        for (size_t index : group_indices) key.push_back(row[index]);
        groups[std::move(key)].push_back(&row);
      }
    }

    Relation out("result", names);
    for (const auto& [key, rows] : groups) {
      if (rows.empty()) {
        // Only the global (no GROUP BY) group can be empty. COUNT/SUM of
        // nothing are 0; MIN/MAX/AVG of nothing are undefined — without
        // SQL NULLs the result is simply no row.
        bool all_defined_on_empty = true;
        for (const ItemPlan& plan : plans) {
          if (plan.agg != AggregateFn::kCountStar &&
              plan.agg != AggregateFn::kCount &&
              plan.agg != AggregateFn::kSum) {
            all_defined_on_empty = false;
          }
        }
        if (!all_defined_on_empty) continue;
        Row zero_row;
        zero_row.reserve(plans.size());
        for (size_t i = 0; i < plans.size(); ++i) {
          zero_row.push_back(Const("0"));
        }
        out.Add(std::move(zero_row));
        continue;
      }
      Row out_row;
      out_row.reserve(plans.size());
      for (const ItemPlan& plan : plans) {
        switch (plan.agg) {
          case AggregateFn::kNone:
            out_row.push_back((*rows.front())[plan.index]);
            break;
          case AggregateFn::kCountStar:
            out_row.push_back(Const(StrCat(rows.size())));
            break;
          case AggregateFn::kCount: {
            std::set<ConstId> distinct;
            for (const Row* row : rows) distinct.insert((*row)[plan.index]);
            out_row.push_back(Const(StrCat(distinct.size())));
            break;
          }
          case AggregateFn::kMin:
          case AggregateFn::kMax: {
            ConstId best = (*rows.front())[plan.index];
            for (const Row* row : rows) {
              ConstId v = (*row)[plan.index];
              int cmp = CompareConstants(v, best);
              if ((plan.agg == AggregateFn::kMin && cmp < 0) ||
                  (plan.agg == AggregateFn::kMax && cmp > 0)) {
                best = v;
              }
            }
            out_row.push_back(best);
            break;
          }
          case AggregateFn::kSum:
          case AggregateFn::kAvg: {
            BigInt sum(0);
            for (const Row* row : rows) {
              std::optional<int64_t> v = AsInteger((*row)[plan.index]);
              if (!v.has_value()) {
                return Status::InvalidArgument(
                    StrCat("SUM/AVG over non-numeric value '",
                           ConstName((*row)[plan.index]), "'"));
              }
              sum = sum + BigInt(*v);
            }
            if (plan.agg == AggregateFn::kSum) {
              out_row.push_back(Const(sum.ToString()));
            } else {
              Rational avg(sum, BigInt(static_cast<int64_t>(rows.size())));
              out_row.push_back(Const(avg.ToString()));
            }
            break;
          }
        }
      }
      out.Add(std::move(out_row));
    }
    out.Normalize();
    return out;
  }

  const SelectCore& core_;
  const Catalog& catalog_;
  const ExecOptions& options_;
};

Result<Relation> SelectEvaluator::Run() {
  if (core_.from.empty()) {
    return Status::InvalidArgument("FROM list must not be empty");
  }
  Result<std::vector<BoundTable>> tables = EvaluateFromItems();
  if (!tables.ok()) return tables.status();

  bool has_aggregate = false;
  for (const SelectItem& item : core_.items) {
    if (item.agg != AggregateFn::kNone) has_aggregate = true;
  }
  if (core_.select_star && (has_aggregate || !core_.group_by.empty())) {
    return Status::InvalidArgument("SELECT * cannot be combined with "
                                   "aggregation or GROUP BY");
  }

  std::vector<const Condition*> conjuncts;
  Relation joined;
  if (CollectConjuncts(core_.where, &conjuncts)) {
    Result<Relation> result =
        JoinConjunctive(std::move(tables).value(), conjuncts);
    if (!result.ok()) return result.status();
    joined = std::move(result).value();
  } else {
    Result<Relation> result = JoinGeneric(tables.value());
    if (!result.ok()) return result.status();
    joined = std::move(result).value();
  }

  if (has_aggregate || !core_.group_by.empty()) {
    return Aggregate(joined);
  }
  return ProjectPlain(joined);
}

}  // namespace

int CompareConstants(ConstId a, ConstId b) {
  if (a == b) return 0;
  std::optional<int64_t> na = AsInteger(a);
  std::optional<int64_t> nb = AsInteger(b);
  if (na.has_value() && nb.has_value()) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  const std::string& sa = ConstName(a);
  const std::string& sb = ConstName(b);
  if (sa < sb) return -1;
  if (sa > sb) return 1;
  return 0;
}

Result<Relation> Execute(const Statement& statement, const Catalog& catalog,
                         const ExecOptions& options) {
  switch (statement.kind) {
    case Statement::Kind::kSelect: {
      SelectEvaluator evaluator(statement.select, catalog, options);
      return evaluator.Run();
    }
    case Statement::Kind::kUnion:
    case Statement::Kind::kExcept:
    case Statement::Kind::kIntersect: {
      Result<Relation> left = Execute(*statement.left, catalog, options);
      if (!left.ok()) return left;
      Result<Relation> right = Execute(*statement.right, catalog, options);
      if (!right.ok()) return right;
      if (left.value().arity() != right.value().arity()) {
        return Status::InvalidArgument(
            StrCat("set operation over different arities: ",
                   left.value().arity(), " vs ", right.value().arity()));
      }
      // Column names follow the left side (standard SQL behaviour).
      Relation aligned =
          engine::Rename(right.value(), left.value().columns());
      switch (statement.kind) {
        case Statement::Kind::kUnion:
          return engine::Union(left.value(), aligned);
        case Statement::Kind::kExcept:
          return engine::Difference(left.value(), aligned);
        default:
          return engine::Intersect(left.value(), aligned);
      }
    }
  }
  return Status::Internal("unreachable statement kind");
}

Result<Relation> ExecuteSql(std::string_view text, const Catalog& catalog,
                            const ExecOptions& options) {
  Result<StatementPtr> statement = Parse(text);
  if (!statement.ok()) return statement.status();
  return Execute(*statement.value(), catalog, options);
}

}  // namespace sql
}  // namespace opcqa
