// Catalog: named tables for SQL execution.
//
// A catalog maps table names to engine relations. `FromDatabase` loads every
// relation symbol of a Database, with user-supplied or generated column
// names — the bridge between the repair core (fact sets) and the SQL layer.

#ifndef OPCQA_SQL_CATALOG_H_
#define OPCQA_SQL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "engine/relation.h"
#include "util/status.h"

namespace opcqa {
namespace sql {

class Catalog {
 public:
  Catalog() = default;

  /// Registers (or replaces) a table under `name`.
  void Register(std::string name, engine::Relation relation);

  /// Removes a table; no-op when absent.
  void Unregister(const std::string& name);

  const engine::Relation* Find(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Loads all relations of `db` as tables named after their relation
  /// symbols. `columns` optionally names the columns of specific relations
  /// (by relation name); others get c0, c1, ....
  static Catalog FromDatabase(
      const Database& db,
      const std::map<std::string, std::vector<std::string>>& columns = {});

 private:
  std::map<std::string, engine::Relation> tables_;
};

}  // namespace sql
}  // namespace opcqa

#endif  // OPCQA_SQL_CATALOG_H_
