#include "sql/approx_runner.h"

#include <cmath>

#include "sql/parser.h"
#include "util/string_util.h"

namespace opcqa {
namespace sql {

double SqlApproxResult::Frequency(const engine::Row& row) const {
  auto it = frequency.find(row);
  return it == frequency.end() ? 0.0 : it->second;
}

SqlApproxRunner::SqlApproxRunner(Catalog catalog, std::vector<TableKey> keys,
                                 uint64_t seed, SqlApproxOptions options)
    : catalog_(std::move(catalog)),
      keys_(std::move(keys)),
      options_(std::move(options)),
      rng_(seed) {
  // Precompute the violating groups of every keyed table.
  for (const TableKey& key : keys_) {
    const engine::Relation* table = catalog_.Find(key.table);
    OPCQA_CHECK(table != nullptr) << "unknown keyed table " << key.table;
    for (size_t position : key.key_positions) {
      OPCQA_CHECK_LT(position, table->arity())
          << "key position out of range for " << key.table;
    }
    std::map<engine::Row, std::vector<size_t>> by_key;
    const auto& rows = table->rows();
    for (size_t i = 0; i < rows.size(); ++i) {
      engine::Row key_value;
      key_value.reserve(key.key_positions.size());
      for (size_t position : key.key_positions) {
        key_value.push_back(rows[i][position]);
      }
      by_key[std::move(key_value)].push_back(i);
    }
    std::vector<std::vector<size_t>> violating;
    for (auto& [key_value, indices] : by_key) {
      if (indices.size() >= 2) violating.push_back(std::move(indices));
    }
    groups_[key.table] = std::move(violating);
  }
}

size_t SqlApproxRunner::NumRounds(double epsilon, double delta) {
  OPCQA_CHECK_GT(epsilon, 0.0);
  OPCQA_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

std::map<std::string, engine::Relation> SqlApproxRunner::SampleDeletions() {
  std::map<std::string, engine::Relation> deletions;
  for (const TableKey& key : keys_) {
    const engine::Relation* table = catalog_.Find(key.table);
    engine::Relation del(StrCat(key.table, "__del"), table->columns());
    for (const std::vector<size_t>& group : groups_[key.table]) {
      // "randomly pick at most one tuple to be left there, and collect the
      // others in R_del".
      size_t survivor = group.size();  // out of range = keep none
      if (!rng_.Bernoulli(options_.keep_none_probability)) {
        survivor = rng_.UniformInt(group.size());
      }
      for (size_t i = 0; i < group.size(); ++i) {
        if (i != survivor) del.Add(table->rows()[group[i]]);
      }
    }
    deletions.emplace(key.table, std::move(del));
  }
  return deletions;
}

Result<SqlApproxResult> SqlApproxRunner::Run(std::string_view sql,
                                             size_t rounds) {
  OPCQA_CHECK_GT(rounds, 0u);
  Result<StatementPtr> parsed = Parse(sql);
  if (!parsed.ok()) return parsed.status();

  std::map<std::string, std::string> deletion_names;
  for (const TableKey& key : keys_) {
    deletion_names[key.table] = StrCat(key.table, "__del");
  }
  StatementPtr rewritten = RewriteWithDeletions(parsed.value(),
                                                deletion_names);

  SqlApproxResult result;
  result.rounds = rounds;
  result.rewritten_sql = rewritten->ToString();

  std::map<engine::Row, size_t> counts;
  for (size_t round = 0; round < rounds; ++round) {
    Catalog scratch = catalog_;
    for (auto& [table, del] : SampleDeletions()) {
      scratch.Register(StrCat(table, "__del"), std::move(del));
    }
    Result<engine::Relation> answer =
        Execute(*rewritten, scratch, options_.exec);
    if (!answer.ok()) return answer.status();
    if (result.columns.empty()) result.columns = answer.value().columns();
    for (const engine::Row& row : answer.value().rows()) ++counts[row];
  }
  for (const auto& [row, count] : counts) {
    result.frequency[row] =
        static_cast<double>(count) / static_cast<double>(rounds);
  }
  return result;
}

Result<SqlApproxResult> SqlApproxRunner::RunWithGuarantee(
    std::string_view sql, double epsilon, double delta) {
  return Run(sql, NumRounds(epsilon, delta));
}

}  // namespace sql
}  // namespace opcqa
