#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace opcqa {
namespace sql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementPtr> ParseStatement() {
    Result<StatementPtr> stmt = ParseSetExpression();
    if (!stmt.ok()) return stmt;
    if (Peek().kind == TokenKind::kSemicolon) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error(StrCat("unexpected ", TokenKindName(Peek().kind),
                          " after end of statement"));
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;  // kEnd
    return tokens_[index];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }
  Status Error(std::string message) const {
    const Token& token = Peek();
    return Status::InvalidArgument(StrCat(message, " at line ", token.line,
                                          ", column ", token.column));
  }
  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::Ok();
    return Error(StrCat("expected ", TokenKindName(kind), ", found ",
                        TokenKindName(Peek().kind)));
  }

  // statement := set_term ((UNION | EXCEPT) set_term)*
  Result<StatementPtr> ParseSetExpression() {
    Result<StatementPtr> left = ParseSetTerm();
    if (!left.ok()) return left;
    StatementPtr result = left.value();
    while (Peek().kind == TokenKind::kUnion ||
           Peek().kind == TokenKind::kExcept) {
      Statement::Kind kind = Peek().kind == TokenKind::kUnion
                                 ? Statement::Kind::kUnion
                                 : Statement::Kind::kExcept;
      Advance();
      if (Peek().kind == TokenKind::kAll) {
        return Error("UNION/EXCEPT ALL is not supported (set semantics)");
      }
      Result<StatementPtr> right = ParseSetTerm();
      if (!right.ok()) return right;
      result = Statement::MakeSetOp(kind, result, right.value());
    }
    return result;
  }

  // set_term := select_stmt (INTERSECT select_stmt)*
  Result<StatementPtr> ParseSetTerm() {
    Result<StatementPtr> left = ParseSelectOrParen();
    if (!left.ok()) return left;
    StatementPtr result = left.value();
    while (Peek().kind == TokenKind::kIntersect) {
      Advance();
      if (Peek().kind == TokenKind::kAll) {
        return Error("INTERSECT ALL is not supported (set semantics)");
      }
      Result<StatementPtr> right = ParseSelectOrParen();
      if (!right.ok()) return right;
      result = Statement::MakeSetOp(Statement::Kind::kIntersect, result,
                                    right.value());
    }
    return result;
  }

  Result<StatementPtr> ParseSelectOrParen() {
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      Result<StatementPtr> inner = ParseSetExpression();
      if (!inner.ok()) return inner;
      Status closed = Expect(TokenKind::kRParen);
      if (!closed.ok()) return closed;
      return inner;
    }
    return ParseSelect();
  }

  Result<StatementPtr> ParseSelect() {
    Status status = Expect(TokenKind::kSelect);
    if (!status.ok()) return status;

    SelectCore core;
    core.distinct = Match(TokenKind::kDistinct);

    if (Match(TokenKind::kStar)) {
      core.select_star = true;
    } else {
      while (true) {
        Result<SelectItem> item = ParseSelectItem();
        if (!item.ok()) return item.status();
        core.items.push_back(item.value());
        if (!Match(TokenKind::kComma)) break;
      }
    }

    status = Expect(TokenKind::kFrom);
    if (!status.ok()) return status;
    while (true) {
      Result<FromItem> item = ParseFromItem();
      if (!item.ok()) return item.status();
      core.from.push_back(item.value());
      if (!Match(TokenKind::kComma)) break;
    }

    if (Match(TokenKind::kWhere)) {
      Result<ConditionPtr> where = ParseCondition();
      if (!where.ok()) return where.status();
      core.where = where.value();
    }

    if (Match(TokenKind::kGroup)) {
      status = Expect(TokenKind::kBy);
      if (!status.ok()) return status;
      while (true) {
        Result<Operand> column = ParseOperand();
        if (!column.ok()) return column.status();
        if (!column.value().is_column()) {
          return Error("GROUP BY expects column references");
        }
        core.group_by.push_back(column.value());
        if (!Match(TokenKind::kComma)) break;
      }
    }
    return Statement::MakeSelect(std::move(core));
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    switch (Peek().kind) {
      case TokenKind::kCount:
      case TokenKind::kSum:
      case TokenKind::kMin:
      case TokenKind::kMax:
      case TokenKind::kAvg: {
        TokenKind fn = Advance().kind;
        Status status = Expect(TokenKind::kLParen);
        if (!status.ok()) return status;
        if (fn == TokenKind::kCount && Match(TokenKind::kStar)) {
          item.agg = AggregateFn::kCountStar;
        } else {
          Result<Operand> operand = ParseOperand();
          if (!operand.ok()) return operand.status();
          if (!operand.value().is_column()) {
            return Error("aggregate argument must be a column");
          }
          item.operand = operand.value();
          switch (fn) {
            case TokenKind::kCount: item.agg = AggregateFn::kCount; break;
            case TokenKind::kSum: item.agg = AggregateFn::kSum; break;
            case TokenKind::kMin: item.agg = AggregateFn::kMin; break;
            case TokenKind::kMax: item.agg = AggregateFn::kMax; break;
            case TokenKind::kAvg: item.agg = AggregateFn::kAvg; break;
            default: break;
          }
        }
        status = Expect(TokenKind::kRParen);
        if (!status.ok()) return status;
        break;
      }
      default: {
        Result<Operand> operand = ParseOperand();
        if (!operand.ok()) return operand.status();
        item.operand = operand.value();
        break;
      }
    }
    // Optional [AS] alias.
    if (Match(TokenKind::kAs)) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected alias name after AS");
      }
      item.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier) {
      item.alias = Advance().text;
    }
    return item;
  }

  Result<FromItem> ParseFromItem() {
    FromItem item;
    if (Match(TokenKind::kLParen)) {
      Result<StatementPtr> derived = ParseSetExpression();
      if (!derived.ok()) return derived.status();
      Status status = Expect(TokenKind::kRParen);
      if (!status.ok()) return status;
      item.derived = derived.value();
      Match(TokenKind::kAs);
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("derived table requires an alias");
      }
      item.alias = Advance().text;
      return item;
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(StrCat("expected table name, found ",
                          TokenKindName(Peek().kind)));
    }
    item.table = Advance().text;
    item.alias = item.table;
    if (Match(TokenKind::kAs)) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected alias name after AS");
      }
      item.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier) {
      item.alias = Advance().text;
    }
    return item;
  }

  // or_cond := and_cond (OR and_cond)*
  Result<ConditionPtr> ParseCondition() {
    Result<ConditionPtr> left = ParseAndCondition();
    if (!left.ok()) return left;
    std::vector<ConditionPtr> parts = {left.value()};
    while (Match(TokenKind::kOr)) {
      Result<ConditionPtr> next = ParseAndCondition();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    if (parts.size() == 1) return parts[0];
    return Condition::Or(std::move(parts));
  }

  Result<ConditionPtr> ParseAndCondition() {
    Result<ConditionPtr> left = ParseNotCondition();
    if (!left.ok()) return left;
    std::vector<ConditionPtr> parts = {left.value()};
    while (Match(TokenKind::kAnd)) {
      Result<ConditionPtr> next = ParseNotCondition();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    if (parts.size() == 1) return parts[0];
    return Condition::And(std::move(parts));
  }

  Result<ConditionPtr> ParseNotCondition() {
    if (Match(TokenKind::kNot)) {
      Result<ConditionPtr> inner = ParseNotCondition();
      if (!inner.ok()) return inner;
      return Condition::Not(inner.value());
    }
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      Result<ConditionPtr> inner = ParseCondition();
      if (!inner.ok()) return inner;
      Status status = Expect(TokenKind::kRParen);
      if (!status.ok()) return status;
      return inner;
    }
    return ParseComparison();
  }

  Result<ConditionPtr> ParseComparison() {
    Result<Operand> lhs = ParseOperand();
    if (!lhs.ok()) return lhs.status();
    CompareOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = CompareOp::kEq; break;
      case TokenKind::kNeq: op = CompareOp::kNeq; break;
      case TokenKind::kLt: op = CompareOp::kLt; break;
      case TokenKind::kLe: op = CompareOp::kLe; break;
      case TokenKind::kGt: op = CompareOp::kGt; break;
      case TokenKind::kGe: op = CompareOp::kGe; break;
      default:
        return Error(StrCat("expected comparison operator, found ",
                            TokenKindName(Peek().kind)));
    }
    Advance();
    Result<Operand> rhs = ParseOperand();
    if (!rhs.ok()) return rhs.status();
    return Condition::Compare(op, lhs.value(), rhs.value());
  }

  Result<Operand> ParseOperand() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kString:
        Advance();
        return Operand::Literal(token.text);
      case TokenKind::kNumber:
        Advance();
        return Operand::Literal(token.text);
      case TokenKind::kIdentifier: {
        std::string first = Advance().text;
        if (Match(TokenKind::kDot)) {
          if (Peek().kind != TokenKind::kIdentifier) {
            return Error("expected column name after '.'");
          }
          return Operand::Column(first, Advance().text);
        }
        return Operand::Column("", std::move(first));
      }
      default:
        return Error(StrCat("expected column or literal, found ",
                            TokenKindName(token.kind)));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatementPtr> Parse(std::string_view text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace opcqa
