// Abstract syntax trees for the SQL fragment.
//
// The fragment is what the Section 5 scheme manipulates: SELECT-FROM-WHERE
// blocks with derived tables, set operations (UNION / EXCEPT / INTERSECT),
// grouping and the five standard aggregates. Trees are immutable and shared
// (the rewriter produces new trees that share unchanged subtrees).

#ifndef OPCQA_SQL_AST_H_
#define OPCQA_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace opcqa {
namespace sql {

struct Statement;
using StatementPtr = std::shared_ptr<const Statement>;

/// A scalar operand: qualified/unqualified column reference or a literal.
struct Operand {
  enum class Kind { kColumn, kLiteral };

  Kind kind = Kind::kColumn;
  std::string table;    // optional qualifier (kColumn)
  std::string column;   // kColumn
  std::string literal;  // kLiteral: the constant's text (already unquoted)

  static Operand Column(std::string table, std::string column) {
    Operand op;
    op.kind = Kind::kColumn;
    op.table = std::move(table);
    op.column = std::move(column);
    return op;
  }
  static Operand Literal(std::string text) {
    Operand op;
    op.kind = Kind::kLiteral;
    op.literal = std::move(text);
    return op;
  }

  bool is_column() const { return kind == Kind::kColumn; }
  std::string ToString() const;
};

enum class CompareOp { kEq, kNeq, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// WHERE condition tree.
struct Condition;
using ConditionPtr = std::shared_ptr<const Condition>;

struct Condition {
  enum class Kind { kCompare, kAnd, kOr, kNot };

  Kind kind = Kind::kCompare;
  // kCompare:
  CompareOp op = CompareOp::kEq;
  Operand lhs, rhs;
  // kAnd / kOr (n-ary, n ≥ 2) and kNot (exactly one child):
  std::vector<ConditionPtr> children;

  static ConditionPtr Compare(CompareOp op, Operand lhs, Operand rhs);
  static ConditionPtr And(std::vector<ConditionPtr> children);
  static ConditionPtr Or(std::vector<ConditionPtr> children);
  static ConditionPtr Not(ConditionPtr child);

  std::string ToString() const;
};

enum class AggregateFn { kNone, kCount, kCountStar, kSum, kMin, kMax, kAvg };

const char* AggregateFnName(AggregateFn fn);

/// One item of the SELECT list.
struct SelectItem {
  AggregateFn agg = AggregateFn::kNone;
  Operand operand;    // ignored for kCountStar
  std::string alias;  // output column name; derived when empty

  std::string ToString() const;
  /// The output column name: alias, else a canonical derived name.
  std::string OutputName() const;
};

/// One item of the FROM list: a base table or a derived table, with alias.
struct FromItem {
  std::string table;     // base-table name; empty for derived tables
  StatementPtr derived;  // sub-select; null for base tables
  std::string alias;     // never empty after parsing (defaults to table)

  bool is_derived() const { return derived != nullptr; }
  std::string ToString() const;
};

/// A single SELECT block.
struct SelectCore {
  bool distinct = false;
  bool select_star = false;       // SELECT *
  std::vector<SelectItem> items;  // empty iff select_star
  std::vector<FromItem> from;     // non-empty
  ConditionPtr where;             // may be null
  std::vector<Operand> group_by;  // column operands only

  std::string ToString() const;
};

/// A statement: one SELECT block or a set operation over two statements.
struct Statement {
  enum class Kind { kSelect, kUnion, kExcept, kIntersect };

  Kind kind = Kind::kSelect;
  SelectCore select;         // kSelect
  StatementPtr left, right;  // set operations

  static StatementPtr MakeSelect(SelectCore core);
  static StatementPtr MakeSetOp(Kind kind, StatementPtr left,
                                StatementPtr right);

  /// Renders canonical SQL (parseable by the parser; used in round-trip
  /// tests and to show users what the rewriter produced).
  std::string ToString() const;
};

}  // namespace sql
}  // namespace opcqa

#endif  // OPCQA_SQL_AST_H_
