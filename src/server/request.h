// Request/Response types of the OCQA serving front end.
//
// A Request is one logical operation of one tenant: a query under a named
// chain generator (exact OCA, counting semantics, certain answers, or
// anytime top-k), or a mutation of the tenant's database. Responses carry
// a *canonical text payload* — the same rendering whether the request ran
// batched on the server, serially on a shared session, or on a fresh
// per-request session — so byte-for-byte diffs of rendered responses are
// the serving layer's correctness check (server/trace.h drives them).

#ifndef OPCQA_SERVER_REQUEST_H_
#define OPCQA_SERVER_REQUEST_H_

#include <cstdint>
#include <string>

#include "logic/query.h"
#include "relational/fact.h"
#include "util/status.h"

namespace opcqa {
namespace server {

enum class RequestKind {
  kAnswer,   // exact OCA: every tuple with CP > 0
  kCount,    // equally-likely-repairs proportions
  kCertain,  // CP = 1 tuples (planner-dispatched; may skip the walk)
  kTopK,     // anytime top-k repairs
  kInsert,   // mutate the tenant database
  kErase,
};

/// What a deadline (state-budget) overrun means for this request.
enum class ExecMode {
  /// Truncation is an error: the response carries ResourceExhausted
  /// instead of a lower-bound distribution. kCertain always behaves this
  /// way (a truncated walk cannot certify CP = 1).
  kExact,
  /// Truncation is an answer: masses/probabilities are exact lower
  /// bounds over the explored prefix, flagged `truncated`. Note that a
  /// truncated prefix depends on cache warmth for top-k (see
  /// repair/top_k.h) — anytime responses are not replay-stable, unlike
  /// everything kExact returns.
  kAnytime,
};

const char* RequestKindName(RequestKind kind);
const char* ExecModeName(ExecMode mode);
Result<RequestKind> ParseRequestKind(std::string_view text);
Result<ExecMode> ParseExecMode(std::string_view text);

struct Request {
  /// Caller correlation id; echoed in the Response (trace replay renders
  /// responses in id order). Id 0 means "unattributed": the span tracer
  /// uses it for out-of-request work, so GenerateTrace/ParseTrace assign
  /// ids from 1.
  uint64_t id = 0;
  /// Logical session this request belongs to. Requests of one tenant are
  /// served in submission order with respect to mutations; tenants are
  /// created on first use.
  std::string tenant;
  RequestKind kind = RequestKind::kAnswer;
  /// Registered generator name (OcqaServer::RegisterGenerator); ignored
  /// by mutations.
  std::string generator = "uniform-deletions";
  /// Query for kAnswer/kCount/kCertain, plus its source text so traces
  /// round-trip without a printer/parser fixpoint.
  Query query;
  std::string query_text;
  /// kTopK only.
  size_t top_k = 1;
  /// kInsert/kErase only.
  Fact fact;
  std::string fact_text;
  ExecMode mode = ExecMode::kExact;
  /// Per-request chain-state budget (the deadline knob); 0 = the
  /// tenant's default budget, which 0 in turn defers to the engine
  /// default. Enumeration truncates beyond the budget exactly as the
  /// free functions do.
  size_t deadline_states = 0;
};

struct Response {
  uint64_t id = 0;
  std::string tenant;
  Status status;
  /// Canonical rendering of the result (empty on error). Identical for
  /// every execution strategy of the same per-tenant timeline — the
  /// serving layer can change how fast answers arrive, never what they
  /// are (kAnytime truncated payloads excepted; see ExecMode).
  std::string payload;
  /// The kAnytime truncation flag (kExact responses either ran to
  /// completion or carry an error status).
  bool truncated = false;

  /// How the request was executed — observability only, never part of
  /// the payload.
  enum class Path {
    kWalk,       // enumerated the chain (cold or partially warm root)
    kReplay,     // served entirely from the shared repair-space cache
    kRewriting,  // planner fast lane: FO rewriting, no walk at all
    kMutation,
    kError,
  };
  Path path = Path::kWalk;
};

const char* PathName(Response::Path path);

}  // namespace server
}  // namespace opcqa

#endif  // OPCQA_SERVER_REQUEST_H_
