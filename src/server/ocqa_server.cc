#include "server/ocqa_server.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace opcqa {
namespace server {

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kAnswer: return "answer";
    case RequestKind::kCount: return "count";
    case RequestKind::kCertain: return "certain";
    case RequestKind::kTopK: return "topk";
    case RequestKind::kInsert: return "insert";
    case RequestKind::kErase: return "erase";
  }
  return "?";
}

const char* ExecModeName(ExecMode mode) {
  return mode == ExecMode::kExact ? "exact" : "anytime";
}

Result<RequestKind> ParseRequestKind(std::string_view text) {
  if (text == "answer") return RequestKind::kAnswer;
  if (text == "count") return RequestKind::kCount;
  if (text == "certain") return RequestKind::kCertain;
  if (text == "topk") return RequestKind::kTopK;
  if (text == "insert") return RequestKind::kInsert;
  if (text == "erase") return RequestKind::kErase;
  return Status::InvalidArgument("unknown request kind '" +
                                 std::string(text) + "'");
}

Result<ExecMode> ParseExecMode(std::string_view text) {
  if (text == "exact") return ExecMode::kExact;
  if (text == "anytime") return ExecMode::kAnytime;
  return Status::InvalidArgument("unknown exec mode '" + std::string(text) +
                                 "'");
}

const char* PathName(Response::Path path) {
  switch (path) {
    case Response::Path::kWalk: return "walk";
    case Response::Path::kReplay: return "replay";
    case Response::Path::kRewriting: return "rewriting";
    case Response::Path::kMutation: return "mutation";
    case Response::Path::kError: return "error";
  }
  return "?";
}

namespace {

void AppendTupleProbabilities(const std::map<Tuple, Rational>& answers,
                              std::string* out) {
  for (const auto& entry : answers) {
    *out += TupleToString(entry.first) + "=" + entry.second.ToString() + "\n";
  }
}

Status DeadlineExceeded(const Request& request) {
  return Status::ResourceExhausted(
      std::string("deadline exceeded: the chain walk truncated and mode=") +
      ExecModeName(request.mode) +
      " does not accept lower bounds (raise deadline_states or use anytime)");
}

}  // namespace

Response ExecuteOnSession(engine::OcqaSession& session,
                          const ChainGenerator* generator,
                          const Request& request,
                          const engine::CallOptions& call,
                          ExecOutcome* outcome) {
  Response response;
  response.id = request.id;
  response.tenant = request.tenant;
  ExecOutcome scratch;
  ExecOutcome& out = outcome != nullptr ? *outcome : scratch;
  out = ExecOutcome();

  if (request.kind == RequestKind::kInsert ||
      request.kind == RequestKind::kErase) {
    bool changed = request.kind == RequestKind::kInsert
                       ? session.InsertFact(request.fact)
                       : session.EraseFact(request.fact);
    response.payload = std::string("changed=") + (changed ? "1" : "0") + "\n";
    response.path = Response::Path::kMutation;
    return response;
  }
  if (generator == nullptr) {
    response.status = Status::InvalidArgument("unknown generator '" +
                                              request.generator + "'");
    response.path = Response::Path::kError;
    return response;
  }

  switch (request.kind) {
    case RequestKind::kAnswer: {
      OcaResult oca = session.Answer(*generator, request.query, call);
      out.enumerated = true;
      out.memo = oca.enumeration.memo_stats;
      out.truncated = oca.enumeration.truncated;
      if (oca.enumeration.truncated && request.mode == ExecMode::kExact) {
        response.status = DeadlineExceeded(request);
        response.path = Response::Path::kError;
        return response;
      }
      response.truncated = oca.enumeration.truncated;
      response.payload = "success_mass=" + oca.success_mass.ToString() +
                         " failing_mass=" + oca.failing_mass.ToString() + "\n";
      AppendTupleProbabilities(oca.answers, &response.payload);
      break;
    }
    case RequestKind::kCount: {
      // Enumerate + fold (what CountingOca does internally) so the
      // per-call memo delta and the truncation flag stay observable.
      EnumerationResult chain = session.Enumerate(*generator, call);
      out.enumerated = true;
      out.memo = chain.memo_stats;
      out.truncated = chain.truncated;
      if (chain.truncated && request.mode == ExecMode::kExact) {
        response.status = DeadlineExceeded(request);
        response.path = Response::Path::kError;
        return response;
      }
      CountingOcaResult counts =
          CountingOcaFromEnumeration(chain, request.query);
      response.truncated = chain.truncated;
      response.payload =
          "repairs=" + std::to_string(counts.num_repairs) + "\n";
      AppendTupleProbabilities(counts.answers, &response.payload);
      break;
    }
    case RequestKind::kCertain: {
      // The session's CertainAnswers, unbundled: plan first (so the
      // server's fast lane and this serial core make the same decision),
      // then either the rewriting or the walk.
      Result<planner::QueryPlan> plan = session.Plan(*generator,
                                                     request.query);
      if (!plan.ok()) {
        response.status = plan.status();
        response.path = Response::Path::kError;
        return response;
      }
      response.payload =
          std::string("plan=") + planner::PlanKindName(plan->kind) + "\n";
      if (plan->kind == planner::PlanKind::kRewriting) {
        std::set<Tuple> certain = planner::EvaluateCertain(
            session.database(), request.query, plan->rewritten);
        for (const Tuple& tuple : certain) {
          response.payload += TupleToString(tuple) + "\n";
        }
        response.path = Response::Path::kRewriting;
        return response;
      }
      OcaResult oca = session.Answer(*generator, request.query, call);
      out.enumerated = true;
      out.memo = oca.enumeration.memo_stats;
      out.truncated = oca.enumeration.truncated;
      if (oca.enumeration.truncated) {
        // A truncated walk cannot certify CP = 1, whatever the mode.
        response.status = DeadlineExceeded(request);
        response.path = Response::Path::kError;
        return response;
      }
      for (const Tuple& tuple : oca.AnswersAtLeast(Rational(1))) {
        response.payload += TupleToString(tuple) + "\n";
      }
      break;
    }
    case RequestKind::kTopK: {
      TopKResult top = session.TopK(*generator, request.top_k, call);
      out.truncated = !top.exact;
      if (!top.exact && request.mode == ExecMode::kExact) {
        // Lower bounds under a drained-frontier cutoff depend on cache
        // warmth (repair/top_k.h) — only the exact distribution is
        // replay-stable, so kExact insists on it.
        response.status = DeadlineExceeded(request);
        response.path = Response::Path::kError;
        return response;
      }
      response.truncated = !top.exact;
      response.payload = std::string("exact=") + (top.exact ? "1" : "0") +
                         " certified=" + (top.certified ? "1" : "0") + "\n";
      for (const RepairInfo& info : top.repairs) {
        response.payload += "p=" + info.probability.ToString() + " " +
                            info.repair.ToString() + "\n";
      }
      break;
    }
    case RequestKind::kInsert:
    case RequestKind::kErase:
      break;  // handled above
  }
  if (out.enumerated) {
    response.path = out.memo.hits > 0 && out.memo.misses == 0
                        ? Response::Path::kReplay
                        : Response::Path::kWalk;
  }
  return response;
}

namespace {

RepairCacheOptions SharedCacheOptions(RepairCacheOptions options) {
  options.admission_filter = false;  // batching: the first walk admits all
  return options;
}

bool IsMutation(const Request& request) {
  return request.kind == RequestKind::kInsert ||
         request.kind == RequestKind::kErase;
}

}  // namespace

OcqaServer::OcqaServer(Database base, ConstraintSet constraints,
                       ServerOptions options)
    : options_(options),
      constraints_(std::move(constraints)),
      base_(std::move(base)),
      cache_(SharedCacheOptions(options.cache)),
      pool_(std::make_unique<ThreadPool>(
          options.workers != 0 ? options.workers : DefaultThreads())) {
  RegisterGenerator("uniform", std::make_shared<UniformChainGenerator>());
  RegisterGenerator("uniform-deletions",
                    std::make_shared<DeletionOnlyUniformGenerator>());
}

OcqaServer::~OcqaServer() {
  Drain();
  pool_.reset();  // join workers before anything they touch dies
}

void OcqaServer::RegisterGenerator(
    const std::string& name, std::shared_ptr<const ChainGenerator> generator) {
  std::lock_guard<std::mutex> lock(mutex_);
  generators_[name] = std::move(generator);
}

void OcqaServer::AddTenant(const std::string& name, TenantOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantFor(name).options = options;
}

OcqaServer::Tenant& OcqaServer::TenantFor(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    auto tenant = std::make_unique<Tenant>();
    engine::SessionOptions session_options;
    session_options.enumeration = options_.enumeration;
    session_options.plan = options_.plan;
    session_options.shared_cache = &cache_;
    tenant->session = std::make_unique<engine::OcqaSession>(
        base_, constraints_, session_options);
    tenant->options = options_.tenant_defaults;
    it = tenants_.emplace(name, std::move(tenant)).first;
  }
  return *it->second;
}

Response OcqaServer::ShedResponse(const Request& request) {
  Response shed;
  shed.id = request.id;
  shed.tenant = request.tenant;
  shed.status = Status::Unavailable("server shutting down");
  shed.path = Response::Path::kError;
  return shed;
}

std::future<Response> OcqaServer::Submit(Request request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutting_down_) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(ShedResponse(request));
    return future;
  }
  Tenant& tenant = TenantFor(request.tenant);
  if (tenant.in_flight >= tenant.options.max_in_flight) {
    rejected_admission_.fetch_add(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    Response rejected;
    rejected.id = request.id;
    rejected.tenant = request.tenant;
    rejected.status = Status::ResourceExhausted(
        "tenant '" + request.tenant + "' over its admission budget (" +
        std::to_string(tenant.options.max_in_flight) + " in flight)");
    rejected.path = Response::Path::kError;
    promise.set_value(std::move(rejected));
    return future;
  }
  ++tenant.in_flight;
  PendingRequest pending;
  pending.request = std::move(request);
  pending.promise = std::move(promise);
  tenant.queue.push_back(std::move(pending));
  PumpLocked();
  return future;
}

std::vector<Response> OcqaServer::SubmitAll(std::vector<Request> requests) {
  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  for (Request& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  std::vector<Response> responses;
  responses.reserve(futures.size());
  for (std::future<Response>& future : futures) {
    responses.push_back(future.get());
  }
  return responses;
}

void OcqaServer::Drain() { inflight_units_.Wait(); }

bool OcqaServer::AllIdleLocked() const {
  for (const auto& entry : tenants_) {
    if (entry.second->busy || !entry.second->queue.empty()) return false;
  }
  return true;
}

void OcqaServer::Shutdown(std::chrono::milliseconds deadline) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;  // Submit() now answers Unavailable
    // Drain phase: units keep executing and pumping while we wait.
    bool drained = drained_cv_.wait_for(lock, deadline,
                                        [this] { return AllIdleLocked(); });
    if (!drained) {
      // Deadline passed with work still queued: every queued-but-
      // unstarted request gets an Unavailable response — shed, not
      // dropped. Running units are past shedding and finish below.
      size_t shed_count = 0;
      for (auto& entry : tenants_) {
        Tenant& tenant = *entry.second;
        while (!tenant.queue.empty()) {
          PendingRequest pending = std::move(tenant.queue.front());
          tenant.queue.pop_front();
          OPCQA_CHECK_GE(tenant.in_flight, 1u);
          --tenant.in_flight;
          shed_.fetch_add(1, std::memory_order_relaxed);
          ++shed_count;
          pending.promise.set_value(ShedResponse(pending.request));
        }
        // A unit handed to the pool but not yet picked up by a worker is
        // equally unstarted — and with every worker occupied it might
        // only start after the very callers this Shutdown is blocking.
        // Resolve its requests now; the worker later finds the empty
        // husk and just releases the slot (ExecuteUnit's entry check).
        if (tenant.scheduled != nullptr) {
          for (PendingRequest& pending : *tenant.scheduled) {
            OPCQA_CHECK_GE(tenant.in_flight, 1u);
            --tenant.in_flight;
            shed_.fetch_add(1, std::memory_order_relaxed);
            ++shed_count;
            pending.promise.set_value(ShedResponse(pending.request));
          }
          tenant.scheduled->clear();
          tenant.scheduled.reset();
        }
      }
      if (shed_count > 0) {
        OPCQA_LOG(Warning) << "shutdown deadline passed; shed " << shed_count
                           << " queued request(s) with Unavailable";
      }
    }
  }
  // Units already on workers run to completion — their callers get real
  // answers, and the pool stays healthy for a later (idempotent) call.
  inflight_units_.Wait();
}

void OcqaServer::PumpLocked() {
  for (auto& entry : tenants_) {
    Tenant& tenant = *entry.second;
    if (tenant.busy || tenant.queue.empty()) continue;
    auto unit = std::make_shared<Unit>(NextUnitLocked(tenant));
    tenant.busy = true;
    tenant.scheduled = unit;  // sheddable until a worker picks it up
    inflight_units_.Add();
    Tenant* tenant_ptr = &tenant;  // stable: tenants are never removed
    pool_->Submit(
        [this, tenant_ptr, unit] { ExecuteUnit(tenant_ptr, unit); });
  }
}

OcqaServer::Unit OcqaServer::NextUnitLocked(Tenant& tenant) {
  Unit unit;
  unit.push_back(std::move(tenant.queue.front()));
  tenant.queue.pop_front();
  if (IsMutation(unit.front().request) || !options_.batching) return unit;
  // Copy, not reference: push_back below reallocates `unit`.
  const std::string head_generator = unit.front().request.generator;
  // Pull every same-generator read out of the read prefix: between here
  // and the first queued mutation the tenant database is fixed, so the
  // same generator means the same chain root, and reads commute.
  for (auto it = tenant.queue.begin(); it != tenant.queue.end();) {
    if (IsMutation(it->request)) break;
    if (it->request.generator == head_generator) {
      unit.push_back(std::move(*it));
      it = tenant.queue.erase(it);
    } else {
      ++it;
    }
  }
  return unit;
}

const ChainGenerator* OcqaServer::FindGenerator(
    const std::string& name) const {
  auto it = generators_.find(name);
  return it == generators_.end() ? nullptr : it->second.get();
}

void OcqaServer::ExecuteUnit(Tenant* tenant, std::shared_ptr<Unit> unit) {
  // Resolve the unit's generator before touching the session: mutex_ and
  // session_mutex are only ever nested mutex_-first (Stats), so taking
  // mutex_ under session_mutex here could deadlock.
  std::shared_ptr<const ChainGenerator> generator;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Started: from here on Shutdown's deadline pass can't shed us.
    if (tenant->scheduled == unit) tenant->scheduled.reset();
    if (unit->empty()) {
      // Shutdown shed the whole unit before any worker picked it up —
      // its promises are already resolved and its requests already
      // uncounted from in_flight. Release the tenant slot and the unit.
      tenant->busy = false;
      PumpLocked();
      if (AllIdleLocked()) drained_cv_.notify_all();
    } else {
      auto it = generators_.find(unit->front().request.generator);
      if (it != generators_.end()) generator = it->second;
    }
  }
  if (unit->empty()) {
    inflight_units_.Done();
    return;
  }

  {
    OPCQA_TRACE_SPAN("server.unit");
    static obs::Histogram* const unit_latency =
        obs::MetricsRegistry::Global().GetHistogram("server.unit_ms");
    obs::ScopedTimer unit_timer(unit_latency);
    std::lock_guard<std::mutex> session_lock(tenant->session_mutex);
    engine::OcqaSession& session = *tenant->session;
    const bool read_batch = !IsMutation(unit->front().request);
    if (read_batch && unit->size() >= 2) {
      batches_.fetch_add(1, std::memory_order_relaxed);
      batched_requests_.fetch_add(unit->size(), std::memory_order_relaxed);
    }

    // Panic isolation: an exception escaping a member — a defect in the
    // engine, a throwing user generator, an injected failpoint crash —
    // becomes that member's Internal response. It never unwinds into the
    // pool worker (whose bodies must not throw; util/parallel.h) and
    // never poisons another member or tenant.
    auto run_isolated = [&](PendingRequest& pending,
                            const engine::CallOptions& call,
                            ExecOutcome* outcome) -> Response {
      try {
        // The span and the histogram time the same scope, so the trace
        // coverage gate (span sum vs server.request_ms sum) holds by
        // construction. Both record during unwind on the panic path too.
        OPCQA_TRACE_REQUEST(pending.request.id, pending.request.tenant);
        OPCQA_TRACE_SPAN("server.request");
        static obs::Histogram* const request_latency =
            obs::MetricsRegistry::Global().GetHistogram("server.request_ms");
        obs::ScopedTimer request_timer(request_latency);
        if (!IsMutation(pending.request)) OPCQA_FAILPOINT_HIT("server.unit");
        return ExecuteOnSession(session, generator.get(), pending.request,
                                call, outcome);
      } catch (const std::exception& e) {
        panics_.fetch_add(1, std::memory_order_relaxed);
        OPCQA_LOG(Warning) << "isolated a panic in tenant '"
                           << pending.request.tenant
                           << "' unit: " << e.what();
        if (outcome != nullptr) *outcome = ExecOutcome();
        Response response;
        response.id = pending.request.id;
        response.tenant = pending.request.tenant;
        response.status =
            Status::Internal(std::string("worker panic: ") + e.what());
        response.path = Response::Path::kError;
        return response;
      }
    };

    std::vector<bool> done(unit->size(), false);
    // Planner fast lane: kCertain members inside the rewritable fragment
    // answer via pure FO evaluation before any member pays for a walk.
    if (read_batch && generator != nullptr) {
      for (size_t i = 0; i < unit->size(); ++i) {
        PendingRequest& pending = (*unit)[i];
        if (pending.request.kind != RequestKind::kCertain) continue;
        Result<planner::QueryPlan> plan =
            session.Plan(*generator, pending.request.query);
        if (!plan.ok() || plan->kind != planner::PlanKind::kRewriting) {
          continue;  // walks (or errors) run in queue order below
        }
        Response response = run_isolated(pending, {}, nullptr);
        if (response.status.ok()) {
          rewriting_fast_path_.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors_.fetch_add(1, std::memory_order_relaxed);
          failed_.fetch_add(1, std::memory_order_relaxed);
        }
        completed_.fetch_add(1, std::memory_order_relaxed);
        pending.promise.set_value(std::move(response));
        done[i] = true;
      }
    }

    // Cache-pressure probe: a cold root while the shared cache is at
    // budget computes on a unit-private cache (batching still amortizes
    // inside the unit) instead of evicting a live shared root.
    std::unique_ptr<RepairSpaceCache> bypass;
    if (read_batch && generator != nullptr &&
        !generator->cache_identity().empty()) {
      bool any_walk_member = false;
      for (size_t i = 0; i < unit->size(); ++i) {
        any_walk_member |= !done[i];
      }
      const bool resident = cache_.HasRoot(
          session.database(), session.constraints(), *generator,
          session.options().enumeration.prune_zero_probability);
      MemoStats shared = cache_.TotalStats();
      const bool pressured =
          cache_.roots() >= options_.cache.max_roots ||
          (options_.max_cache_bytes != 0 &&
           shared.bytes >= options_.max_cache_bytes);
      if (any_walk_member && !resident && pressured) {
        RepairCacheOptions ephemeral = options_.cache;
        ephemeral.max_roots = 1;
        ephemeral.admission_filter = false;
        ephemeral.snapshot_dir.clear();  // nothing durable about a bypass
        bypass = std::make_unique<RepairSpaceCache>(ephemeral);
        pressure_bypasses_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    for (size_t i = 0; i < unit->size(); ++i) {
      if (done[i]) continue;
      PendingRequest& pending = (*unit)[i];
      engine::CallOptions call;
      call.max_states = pending.request.deadline_states != 0
                            ? pending.request.deadline_states
                            : tenant->options.deadline_states;
      call.cache = bypass.get();
      ExecOutcome outcome;
      Response response = run_isolated(pending, call, &outcome);
      if (IsMutation(pending.request)) {
        mutations_.fetch_add(1, std::memory_order_relaxed);
      } else if (pending.request.kind == RequestKind::kTopK) {
        topk_searches_.fetch_add(1, std::memory_order_relaxed);
      } else if (response.path == Response::Path::kRewriting) {
        rewriting_fast_path_.fetch_add(1, std::memory_order_relaxed);
      } else if (outcome.enumerated) {
        if (outcome.memo.hits > 0 && outcome.memo.misses == 0) {
          replays_.fetch_add(1, std::memory_order_relaxed);
        } else {
          walks_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (outcome.truncated) {
        deadline_truncations_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!response.status.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        // Deadline misses are the only ResourceExhausted produced during
        // execution (admission rejections never reach a unit).
        if (response.status.code() == StatusCode::kResourceExhausted) {
          timed_out_.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      pending.promise.set_value(std::move(response));
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    tenant->busy = false;
    OPCQA_CHECK_GE(tenant->in_flight, unit->size());
    tenant->in_flight -= unit->size();
    PumpLocked();  // successors are in flight before this unit's Done()
    if (AllIdleLocked()) drained_cv_.notify_all();  // Shutdown's drain wait
  }
  inflight_units_.Done();
}

ServerStats OcqaServer::Stats() {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.rejected_admission =
      rejected_admission_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  stats.walks = walks_.load(std::memory_order_relaxed);
  stats.replays = replays_.load(std::memory_order_relaxed);
  stats.rewriting_fast_path =
      rewriting_fast_path_.load(std::memory_order_relaxed);
  stats.topk_searches = topk_searches_.load(std::memory_order_relaxed);
  stats.mutations = mutations_.load(std::memory_order_relaxed);
  stats.pressure_bypasses =
      pressure_bypasses_.load(std::memory_order_relaxed);
  stats.deadline_truncations =
      deadline_truncations_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.timed_out = timed_out_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.panics = panics_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.tenants = tenants_.size();
    for (auto& entry : tenants_) {
      std::lock_guard<std::mutex> session_lock(entry.second->session_mutex);
      const planner::PlannerStats& p = entry.second->session->PlanStats();
      stats.planner.rewrite_plans += p.rewrite_plans;
      stats.planner.walk_plans += p.walk_plans;
      stats.planner.plan_cache_hits += p.plan_cache_hits;
      stats.planner.plan_cache_misses += p.plan_cache_misses;
      stats.planner.invalidations += p.invalidations;
    }
  }
  stats.cache = cache_.TotalStats();
  stats.disk = cache_.disk_stats();
  return stats;
}

}  // namespace server
}  // namespace opcqa
