// Serving traces: workload-spec driven request generation, a text wire
// format, serial replay baselines, and canonical response rendering.
//
// A trace is a flat request list over a gen/workloads.h instance. The
// same trace can run three ways —
//   * batched on an OcqaServer,
//   * serially on one private-cache session per tenant,
//   * serially on a fresh session per request (the pre-server baseline:
//     every caller pays its own cold cache)
// — and for kExact requests the rendered responses must match
// byte-for-byte: per-tenant timelines are identical, and caches change
// speed, never answers. RenderResponses + a string compare is therefore
// the end-to-end correctness check of the serving layer (tests/ and the
// CLI --serve-trace mode both use it).

#ifndef OPCQA_SERVER_TRACE_H_
#define OPCQA_SERVER_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "engine/ocqa_session.h"
#include "gen/workloads.h"
#include "server/request.h"

namespace opcqa {
namespace server {

/// Workload shape of a generated trace (all draws seeded).
struct TraceSpec {
  size_t tenants = 4;
  size_t requests = 64;
  /// Fraction of requests that mutate (alternating insert/erase of
  /// per-tenant spare facts, so erases really erase).
  double write_fraction = 0.05;
  /// Of the reads: fraction planned through CertainAnswers and fraction
  /// running the anytime top-k search (the rest split between exact OCA
  /// and counting semantics).
  double certain_fraction = 0.2;
  double topk_fraction = 0.05;
  /// Root skew: probability a read uses the hot generator
  /// ("uniform-deletions") instead of the cold one ("uniform"). High
  /// skew means most reads share one chain root per tenant — the
  /// batching sweet spot.
  double hot_root_fraction = 0.8;
  /// Per-request chain-state budget stamped on every read (0 = none).
  size_t deadline_states = 0;
  ExecMode mode = ExecMode::kExact;
  uint64_t seed = 1;
};

/// Generates `spec.requests` requests over `workload` (ids 0..n-1 in
/// submission order). Queries are templates over the key-violation
/// relation R(k,v).
std::vector<Request> GenerateTrace(const gen::Workload& workload,
                                   const TraceSpec& spec);

/// One request per line:
///   <tenant> <kind> <mode> <generator> <deadline> <query|fact|k>
/// '#' starts a comment. FormatTrace(ParseTrace(t)) round-trips.
std::string FormatTrace(const std::vector<Request>& requests);
Result<std::vector<Request>> ParseTrace(const Schema& schema,
                                        std::string_view text);

/// Canonical rendering for byte-for-byte diffs: responses sorted by
/// request id; execution-strategy-dependent fields (Response::path) are
/// deliberately excluded.
std::string RenderResponses(std::vector<Response> responses);

enum class ReplayMode {
  /// One long-lived session (private cache) per tenant — the serial
  /// shared-session baseline and the byte-identity reference.
  kSessionPerTenant,
  /// A fresh session per request — the pre-server status quo the
  /// ISSUE's ≥3x target is measured against: every request pays its own
  /// cold cache. Mutations persist in a per-tenant database between
  /// requests.
  kSessionPerRequest,
};

/// Executes the trace serially in submission order. `session_options`
/// configures the created sessions (shared_cache is ignored/forced off —
/// this is the no-server baseline); `default_deadline_states` mirrors
/// TenantOptions::deadline_states so budgets resolve as the server
/// would.
std::vector<Response> ReplaySerial(const gen::Workload& workload,
                                   const std::vector<Request>& requests,
                                   ReplayMode mode,
                                   engine::SessionOptions session_options = {},
                                   size_t default_deadline_states = 0);

}  // namespace server
}  // namespace opcqa

#endif  // OPCQA_SERVER_TRACE_H_
