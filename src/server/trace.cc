#include "server/trace.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "logic/formula_parser.h"
#include "relational/fact_parser.h"
#include "server/ocqa_server.h"
#include "util/random.h"
#include "util/string_util.h"

namespace opcqa {
namespace server {

namespace {

struct QueryTemplate {
  const char* text;
};

// Templates over the key-violation relation R(k,v): the quantifier-free
// full table (inside the planner's FO-rewritable certain fragment), and
// two existential probes over the conflicted relation (outside it — they
// keep the walk path of CertainAnswers exercised).
constexpr QueryTemplate kTemplates[] = {
    {"QAll(x,y) := R(x,y)"},
    {"QKeys(x) := exists y R(x,y)"},
    {"QBool() := exists x exists y R(x,y)"},
};
constexpr size_t kNumTemplates = sizeof(kTemplates) / sizeof(kTemplates[0]);

Query MustParse(const Schema& schema, const char* text) {
  Result<Query> query = ParseQuery(schema, text);
  OPCQA_CHECK(query.ok()) << "bad trace query template '" << text
                          << "': " << query.status().ToString();
  return *query;
}

const std::map<std::string, std::shared_ptr<const ChainGenerator>>&
BuiltinGenerators() {
  static const auto* generators =
      new std::map<std::string, std::shared_ptr<const ChainGenerator>>{
          {"uniform", std::make_shared<UniformChainGenerator>()},
          {"uniform-deletions",
           std::make_shared<DeletionOnlyUniformGenerator>()},
      };
  return *generators;
}

}  // namespace

std::vector<Request> GenerateTrace(const gen::Workload& workload,
                                   const TraceSpec& spec) {
  const Schema& schema = *workload.schema;
  std::vector<Query> templates;
  templates.reserve(kNumTemplates);
  for (const QueryTemplate& t : kTemplates) {
    templates.push_back(MustParse(schema, t.text));
  }

  Rng rng(spec.seed);
  std::vector<size_t> tenant_mutations(spec.tenants, 0);
  std::vector<Request> trace;
  trace.reserve(spec.requests);
  for (size_t i = 0; i < spec.requests; ++i) {
    Request request;
    request.id = i + 1;  // id 0 = unattributed (request.h)
    size_t tenant = rng.UniformInt(spec.tenants == 0 ? 1 : spec.tenants);
    request.tenant = StrCat("t", tenant);
    request.mode = spec.mode;
    if (rng.Bernoulli(spec.write_fraction)) {
      // Alternate insert/erase of per-tenant spare facts, so every erase
      // removes the fact the tenant inserted one mutation earlier.
      size_t m = tenant_mutations[tenant]++;
      request.kind = m % 2 == 0 ? RequestKind::kInsert : RequestKind::kErase;
      request.fact_text = StrCat("R(w", tenant, "_", m / 2, ",wv)");
      Result<Fact> fact = ParseFact(schema, request.fact_text);
      OPCQA_CHECK(fact.ok()) << fact.status().ToString();
      request.fact = *fact;
      trace.push_back(std::move(request));
      continue;
    }
    request.generator = rng.Bernoulli(spec.hot_root_fraction)
                            ? "uniform-deletions"
                            : "uniform";
    request.deadline_states = spec.deadline_states;
    if (rng.Bernoulli(spec.topk_fraction)) {
      request.kind = RequestKind::kTopK;
      request.top_k = 1 + rng.UniformInt(3);
      trace.push_back(std::move(request));
      continue;
    }
    size_t which = rng.UniformInt(kNumTemplates);
    request.query = templates[which];
    request.query_text = kTemplates[which].text;
    request.kind = rng.Bernoulli(spec.certain_fraction)
                       ? RequestKind::kCertain
                       : (rng.Bernoulli(0.5) ? RequestKind::kAnswer
                                             : RequestKind::kCount);
    trace.push_back(std::move(request));
  }
  return trace;
}

std::string FormatTrace(const std::vector<Request>& requests) {
  std::string out = "# opcqa serve trace v1\n";
  for (const Request& request : requests) {
    out += request.tenant;
    out += ' ';
    out += RequestKindName(request.kind);
    out += ' ';
    out += ExecModeName(request.mode);
    out += ' ';
    switch (request.kind) {
      case RequestKind::kInsert:
      case RequestKind::kErase:
        out += StrCat("- 0 ", request.fact_text);
        break;
      case RequestKind::kTopK:
        out += StrCat(request.generator, " ", request.deadline_states, " ",
                      request.top_k);
        break;
      default:
        out += StrCat(request.generator, " ", request.deadline_states, " ",
                      request.query_text);
        break;
    }
    out += '\n';
  }
  return out;
}

Result<std::vector<Request>> ParseTrace(const Schema& schema,
                                        std::string_view text) {
  std::vector<Request> requests;
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    // Five whitespace-separated fields, then the rest of the line.
    std::vector<std::string> fields;
    std::string rest;
    size_t pos = 0;
    while (fields.size() < 5 && pos < line.size()) {
      size_t end = line.find(' ', pos);
      if (end == std::string::npos) end = line.size();
      if (end > pos) fields.push_back(line.substr(pos, end - pos));
      pos = end + 1;
    }
    if (pos < line.size()) rest = Trim(line.substr(pos));
    if (fields.size() < 5) {
      return Status::InvalidArgument(
          StrCat("trace line ", line_no,
                 ": expected '<tenant> <kind> <mode> <generator> "
                 "<deadline> <payload>'"));
    }
    Request request;
    request.id = requests.size() + 1;  // id 0 = unattributed (request.h)
    request.tenant = fields[0];
    Result<RequestKind> kind = ParseRequestKind(fields[1]);
    if (!kind.ok()) return kind.status();
    request.kind = *kind;
    Result<ExecMode> mode = ParseExecMode(fields[2]);
    if (!mode.ok()) return mode.status();
    request.mode = *mode;
    request.generator = fields[3];
    request.deadline_states =
        static_cast<size_t>(std::strtoull(fields[4].c_str(), nullptr, 10));
    switch (request.kind) {
      case RequestKind::kInsert:
      case RequestKind::kErase: {
        Result<Fact> fact = ParseFact(schema, rest);
        if (!fact.ok()) return fact.status();
        request.fact = *fact;
        request.fact_text = rest;
        break;
      }
      case RequestKind::kTopK: {
        request.top_k =
            static_cast<size_t>(std::strtoull(rest.c_str(), nullptr, 10));
        if (request.top_k == 0) {
          return Status::InvalidArgument(
              StrCat("trace line ", line_no, ": topk needs k >= 1"));
        }
        break;
      }
      default: {
        Result<Query> query = ParseQuery(schema, rest);
        if (!query.ok()) return query.status();
        request.query = *query;
        request.query_text = rest;
        break;
      }
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

std::string RenderResponses(std::vector<Response> responses) {
  std::sort(responses.begin(), responses.end(),
            [](const Response& a, const Response& b) { return a.id < b.id; });
  std::string out;
  for (const Response& response : responses) {
    out += StrCat("#", response.id, " tenant=", response.tenant,
                  " status=", response.status.ToString(),
                  " truncated=", response.truncated ? 1 : 0, "\n");
    out += response.payload;
  }
  return out;
}

std::vector<Response> ReplaySerial(const gen::Workload& workload,
                                   const std::vector<Request>& requests,
                                   ReplayMode mode,
                                   engine::SessionOptions session_options,
                                   size_t default_deadline_states) {
  session_options.shared_cache = nullptr;  // the no-server baseline
  const auto& generators = BuiltinGenerators();
  auto find_generator = [&](const std::string& name) -> const ChainGenerator* {
    auto it = generators.find(name);
    return it == generators.end() ? nullptr : it->second.get();
  };

  std::vector<Response> responses;
  responses.reserve(requests.size());
  if (mode == ReplayMode::kSessionPerTenant) {
    std::map<std::string, std::unique_ptr<engine::OcqaSession>> sessions;
    for (const Request& request : requests) {
      std::unique_ptr<engine::OcqaSession>& session = sessions[request.tenant];
      if (session == nullptr) {
        session = std::make_unique<engine::OcqaSession>(
            workload.db, workload.constraints, session_options);
      }
      engine::CallOptions call;
      call.max_states = request.deadline_states != 0 ? request.deadline_states
                                                     : default_deadline_states;
      responses.push_back(ExecuteOnSession(
          *session, find_generator(request.generator), request, call));
    }
    return responses;
  }
  // kSessionPerRequest: each request pays a fresh session (cold private
  // cache); only the mutated database carries over per tenant.
  std::map<std::string, Database> databases;
  for (const Request& request : requests) {
    auto it = databases.emplace(request.tenant, workload.db).first;
    engine::OcqaSession session(it->second, workload.constraints,
                                session_options);
    engine::CallOptions call;
    call.max_states = request.deadline_states != 0 ? request.deadline_states
                                                   : default_deadline_states;
    responses.push_back(ExecuteOnSession(
        session, find_generator(request.generator), request, call));
    if (request.kind == RequestKind::kInsert ||
        request.kind == RequestKind::kErase) {
      it->second = session.database();
    }
  }
  return responses;
}

}  // namespace server
}  // namespace opcqa
