// OcqaServer — batched, multi-tenant OCQA serving over one shared
// repair-space cache.
//
// The engine made one session fast across *its own* queries
// (engine/ocqa_session.h); a service hosts many logical sessions at
// once, and with one private cache per caller every tenant pays the
// FP^#P chain walk again. OcqaServer multiplexes every tenant over a
// single RepairSpaceCache (and the process-global FactStore), so the
// first walk of a root — db content ⊕ constraints ⊕ generator identity —
// warms all of them.
//
// ## Threading model
//
// Requests enter a per-tenant FIFO through Submit() (thread-safe, any
// number of callers). A tenant executes at most one *unit* at a time — a
// unit is either a single mutation or a batch of reads — so each
// tenant's timeline is serial: its responses are byte-identical to a
// single-session serial replay of its requests, no matter how many
// tenants run concurrently (the shared cache is verified-keyed and can
// only change speed, never answers; repair/repair_cache.h). Units from
// different tenants run concurrently on a private util/parallel.h
// ThreadPool; nested ParallelFor inside the enumerator detects the pool
// worker and runs inline, so server workers never deadlock the pool.
//
// ## Root-level batching
//
// When a tenant's queue holds several reads against the same chain root
// (between two mutations the tenant's database is fixed, so same
// generator ⇒ same root fingerprint), the server pulls the whole
// same-generator read prefix into one unit: the first member walks the
// chain cold and — with the cache's twice-miss admission filter off —
// records every completed subtree, so each later member collapses to a
// root-entry replay. One memoized walk amortizes across the batch.
// Reads commute (they share one immutable database state), so executing
// the prefix out of queue order is observationally equivalent; a
// mutation is a batch barrier and runs as a singleton unit, which also
// makes it a drain fence: it cannot start until the tenant's in-flight
// readers finished, and no later read starts before it completes.
//
// ## Planner fast lane
//
// kCertain members are planned first (engine planner); a request inside
// the proven-coincident FO fragment is answered by the rewriting before
// the batch's walk members run — it never waits on, or pays for, a
// chain walk.
//
// ## Cache pressure
//
// A read whose root is not resident while the shared cache is at its
// root/byte budget would evict a live root that other tenants are
// replaying from. Under pressure the unit instead computes on a private
// single-root cache that dies with the unit (batching still amortizes
// within the unit) — new cold roots degrade to uncached compute instead
// of thrashing the shared tier.
//
// ## QoS
//
// Per-tenant admission caps the queued + running requests
// (TenantOptions::max_in_flight; excess submissions complete immediately
// with ResourceExhausted), and per-request deadlines bound chain states
// through the enumerator's budget machinery (Request::deadline_states,
// default per tenant) — kExact requests fail the deadline loudly,
// kAnytime requests return truncated lower bounds.
//
// ## Robustness
//
// Shutdown(deadline) stops admission (Submit answers Unavailable),
// drains queued units for up to the deadline, then fails every
// queued-but-unstarted request with Unavailable — a caller always gets
// a response, never a dropped future. Each unit member executes under
// panic isolation: an exception (a defect, or an injected
// failpoint crash) poisons only that member's response — an Internal
// error — never the worker pool or another tenant's unit. Stats()
// separates the failure buckets: `shed` never executed (admission cap
// or shutdown), `timed_out` hit its deadline, `failed` everything else.

#ifndef OPCQA_SERVER_OCQA_SERVER_H_
#define OPCQA_SERVER_OCQA_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/ocqa_session.h"
#include "server/request.h"
#include "util/parallel.h"

namespace opcqa {
namespace server {

struct TenantOptions {
  /// Admission budget: maximum queued + running requests of this tenant;
  /// submissions beyond it are rejected with ResourceExhausted.
  size_t max_in_flight = 64;
  /// Default chain-state budget for this tenant's requests (0 = engine
  /// default); Request::deadline_states overrides per request.
  size_t deadline_states = 0;
};

struct ServerOptions {
  /// Worker threads executing units (0 = DefaultThreads()). The server
  /// owns its pool, so several servers with different widths coexist in
  /// one process.
  size_t workers = 0;
  /// Budgets of the shared repair-space cache. The twice-miss admission
  /// filter is forced off regardless of what this says: batching relies
  /// on the first walk admitting the whole chain.
  RepairCacheOptions cache;
  /// Byte-pressure threshold for the uncached-compute bypass (0 = only
  /// the max_roots budget signals pressure).
  size_t max_cache_bytes = 0;
  /// Same-root batching (off = every read is a singleton unit; answers
  /// are identical either way, only walk counts differ).
  bool batching = true;
  /// Per-tenant session defaults (threads, memoize, base max_states).
  EnumerationOptions enumeration;
  planner::PlanMode plan = planner::PlanMode::kAuto;
  /// Applied to tenants created implicitly by Submit(); AddTenant sets
  /// explicit ones.
  TenantOptions tenant_defaults;

  ServerOptions() { enumeration.memoize = true; }  // serving IS sharing
};

/// Point-in-time server counters. Request/batch counters are exact;
/// walk/replay classification comes from per-call memo deltas on the
/// shared cache, so concurrent same-root units can shift a replay to a
/// walk label (never the reverse) — observability, not semantics.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected_admission = 0;  // admission-cap rejections
  uint64_t errors = 0;              // completed with non-OK status
  /// Load-shed buckets (disjoint): `shed` requests never executed —
  /// admission cap, Submit() during shutdown, or queued-but-unstarted at
  /// the shutdown deadline (all answered ResourceExhausted/Unavailable);
  /// `timed_out` executed but exceeded their state deadline in kExact
  /// mode; `failed` executed and failed for any other reason (unknown
  /// generator, isolated panics, ...). errors == timed_out + failed.
  uint64_t shed = 0;
  uint64_t timed_out = 0;
  uint64_t failed = 0;
  /// Exceptions caught by per-unit-member isolation (subset of failed).
  uint64_t panics = 0;
  uint64_t batches = 0;             // read units with ≥ 2 members
  uint64_t batched_requests = 0;    // members riding in those units
  uint64_t walks = 0;    // enumerating members that missed in the cache
  uint64_t replays = 0;  // enumerating members served purely from it
  uint64_t rewriting_fast_path = 0;  // kCertain answered by the rewriting
  uint64_t topk_searches = 0;        // kTopK members (not walk-classified)
  uint64_t mutations = 0;
  uint64_t pressure_bypasses = 0;       // units run on a private cache
  uint64_t deadline_truncations = 0;    // responses that hit their budget
  size_t tenants = 0;
  /// Shared-cache / disk-tier / planner counters aggregated across every
  /// tenant session, one coherent snapshot.
  MemoStats cache;
  DiskTierStats disk;
  planner::PlannerStats planner;
};

class OcqaServer {
 public:
  /// Every tenant starts from a copy of `base` (content-identical
  /// databases fingerprint to the same cache root, which is where
  /// cross-tenant amortization comes from) and diverges through its own
  /// mutations. "uniform" and "uniform-deletions" generators are
  /// pre-registered.
  OcqaServer(Database base, ConstraintSet constraints,
             ServerOptions options = {});
  /// Drains in-flight units, then joins the workers.
  ~OcqaServer();

  OcqaServer(const OcqaServer&) = delete;
  OcqaServer& operator=(const OcqaServer&) = delete;

  /// Makes `name` resolvable from Request::generator. The generator must
  /// be safe for concurrent Probabilities() calls (all built-ins are).
  /// Not callable once requests are in flight.
  void RegisterGenerator(const std::string& name,
                         std::shared_ptr<const ChainGenerator> generator);

  /// Creates a tenant with explicit QoS options (idempotent; options of
  /// an existing tenant are updated).
  void AddTenant(const std::string& name, TenantOptions options);

  /// Enqueues one request; the future resolves when it executes (or
  /// immediately, on admission rejection — which is a resolved Response
  /// with ResourceExhausted, not a broken future).
  std::future<Response> Submit(Request request);

  /// Submits a whole trace and waits for every response; results are in
  /// input order regardless of execution interleaving.
  std::vector<Response> SubmitAll(std::vector<Request> requests);

  /// Blocks until every queued unit has executed. Concurrent Submit()
  /// during a drain extends it.
  void Drain();

  /// Graceful shutdown: stops admission (further Submit() calls complete
  /// immediately with Unavailable), lets queued units drain for up to
  /// `deadline`, then fails every request that has not *started
  /// executing* — queued in a tenant FIFO or scheduled on the pool but
  /// not yet picked up by a worker — with Unavailable, and waits for the
  /// actually-running units to finish. Every accepted request gets a
  /// response — nothing is silently dropped. Idempotent; submissions
  /// stay rejected afterwards.
  void Shutdown(std::chrono::milliseconds deadline);

  /// One coherent snapshot across the queue, the shared cache and every
  /// tenant session.
  ServerStats Stats();

  /// Spills every dirty shared-cache root to the disk tier now (no-op
  /// without a snapshot_dir), so a Stats() read afterwards reflects what
  /// the next process will restore — destruction would otherwise spill
  /// after the caller last looks at the counters.
  void PersistCache() { cache_.Persist(); }

  const RepairSpaceCache& cache() const { return cache_; }

 private:
  struct PendingRequest {
    Request request;
    std::promise<Response> promise;
  };
  using Unit = std::vector<PendingRequest>;

  struct Tenant {
    std::unique_ptr<engine::OcqaSession> session;
    /// Serializes session access: unit execution and Stats() aggregation
    /// (planner counters mutate during planning).
    std::mutex session_mutex;
    TenantOptions options;
    // Queue state below is guarded by the server mutex_.
    std::deque<PendingRequest> queue;
    bool busy = false;       // a unit of this tenant is running
    size_t in_flight = 0;    // queued + running requests (admission gauge)
    /// The unit handed to the pool but not yet picked up by a worker
    /// (ExecuteUnit clears this first thing). Shutdown's deadline pass
    /// sheds it like queued work: with every worker occupied it might
    /// only ever start after the callers Shutdown is blocking on.
    std::shared_ptr<Unit> scheduled;
  };

  Tenant& TenantFor(const std::string& name);  // mutex_ held
  /// Starts a unit for every idle tenant with queued work. mutex_ held.
  void PumpLocked();
  /// Forms the next unit of `tenant` (front mutation, or the
  /// same-generator read prefix). mutex_ held.
  Unit NextUnitLocked(Tenant& tenant);
  /// Executes a unit on a worker: planner fast lane, pressure probe,
  /// then members in order on the tenant session.
  void ExecuteUnit(Tenant* tenant, std::shared_ptr<Unit> unit);
  const ChainGenerator* FindGenerator(const std::string& name) const;

  /// True when every tenant is idle with an empty queue. mutex_ held.
  bool AllIdleLocked() const;
  /// The Unavailable response shed requests complete with. mutex_ held
  /// (only for the counters' sake — it touches no shared state).
  static Response ShedResponse(const Request& request);

  ServerOptions options_;
  ConstraintSet constraints_;
  Database base_;
  RepairSpaceCache cache_;

  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  bool shutting_down_ = false;
  /// Signaled (under mutex_) whenever a unit completes and everything is
  /// idle — Shutdown's drain wait.
  std::condition_variable drained_cv_;
  std::map<std::string, std::shared_ptr<const ChainGenerator>> generators_;

  TaskGroup inflight_units_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_admission_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::atomic<uint64_t> walks_{0};
  std::atomic<uint64_t> replays_{0};
  std::atomic<uint64_t> rewriting_fast_path_{0};
  std::atomic<uint64_t> topk_searches_{0};
  std::atomic<uint64_t> mutations_{0};
  std::atomic<uint64_t> pressure_bypasses_{0};
  std::atomic<uint64_t> deadline_truncations_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> panics_{0};

  /// Last member, so the pool (whose threads the destructor joins first)
  /// outlives everything units touch.
  std::unique_ptr<ThreadPool> pool_;
};

/// The serial execution core shared by server workers and the sequential
/// baselines (server/trace.h): runs one request on `session` under
/// `generator` (may be null for mutations) with the resolved per-call
/// options, and renders the canonical payload. `outcome`, when non-null,
/// receives the per-call memo delta for walk/replay classification.
struct ExecOutcome {
  bool enumerated = false;  // memo delta below is meaningful
  MemoStats memo;
  bool truncated = false;
};
Response ExecuteOnSession(engine::OcqaSession& session,
                          const ChainGenerator* generator,
                          const Request& request,
                          const engine::CallOptions& call,
                          ExecOutcome* outcome = nullptr);

}  // namespace server
}  // namespace opcqa

#endif  // OPCQA_SERVER_OCQA_SERVER_H_
