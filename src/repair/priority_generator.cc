#include "repair/priority_generator.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace opcqa {

std::vector<Rational> PriorityChainGenerator::Probabilities(
    const RepairingState& state,
    const std::vector<Operation>& extensions) const {
  std::vector<int64_t> ranks;
  ranks.reserve(extensions.size());
  for (const Operation& op : extensions) {
    ranks.push_back(rank_(state, op));
  }
  int64_t best = *std::max_element(ranks.begin(), ranks.end());
  size_t winners = 0;
  for (int64_t rank : ranks) {
    if (rank == best) ++winners;
  }
  OPCQA_CHECK_GT(winners, 0u);
  Rational share(1, static_cast<int64_t>(winners));
  std::vector<Rational> probs;
  probs.reserve(extensions.size());
  for (int64_t rank : ranks) {
    probs.push_back(rank == best ? share : Rational(0));
  }
  return probs;
}

PriorityChainGenerator PriorityChainGenerator::MinimalChange() {
  return PriorityChainGenerator(
      "minimal-change",
      [](const RepairingState&, const Operation& op) {
        return -static_cast<int64_t>(op.size());
      },
      /*deletions_only=*/false, /*memoryless=*/true,
      /*cache_identity=*/"priority:minimal-change");
}

PriorityChainGenerator PriorityChainGenerator::DeleteLowestScoreFirst(
    std::map<Fact, int64_t> scores, int64_t default_score) {
  // Serialize every parameter the rank closes over (facts via their
  // pred/arg ids) so equal identities imply equal rank functions.
  std::string identity = "priority:lowest-score:";
  for (const auto& [fact, score] : scores) {
    identity += std::to_string(fact.pred());
    identity += '(';
    for (size_t i = 0; i < fact.args().size(); ++i) {
      if (i > 0) identity += ',';
      identity += std::to_string(fact.args()[i]);
    }
    identity += ")=";
    identity += std::to_string(score);
    identity += ';';
  }
  identity += "default=" + std::to_string(default_score);
  return PriorityChainGenerator(
      "delete-lowest-score",
      [scores = std::move(scores),
       default_score](const RepairingState&, const Operation& op) -> int64_t {
        if (op.is_add()) return std::numeric_limits<int64_t>::min() / 2;
        int64_t worst = std::numeric_limits<int64_t>::min();
        for (const Fact& fact : op.facts()) {
          auto it = scores.find(fact);
          int64_t score = it == scores.end() ? default_score : it->second;
          worst = std::max(worst, score);
        }
        // Deleting low-score facts is preferred → rank is the negated
        // highest score touched.
        return -worst;
      },
      /*deletions_only=*/false, /*memoryless=*/true, std::move(identity));
}

}  // namespace opcqa
