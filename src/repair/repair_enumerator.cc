#include "repair/repair_enumerator.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "repair/repair_cache.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace opcqa {

namespace {

// Aggregation map: frozen repair database → (mass, #sequences).
using AggregateMap = std::map<Database, std::pair<Rational, size_t>>;

// Partial result of walking one subtree (or the whole tree, serially).
// Counters mirror EnumerationResult; `hit_cap` reports that the walker's
// local state budget ran out mid-subtree.
struct SubtreeResult {
  AggregateMap aggregated;
  Rational success_mass;
  Rational failing_mass;
  size_t states_visited = 0;
  size_t absorbing_states = 0;
  size_t successful_sequences = 0;
  size_t failing_sequences = 0;
  size_t max_depth = 0;
  bool hit_cap = false;
};

// Delta-based DFS over one subtree: one state is threaded through the whole
// subtree with apply → recurse → revert instead of copying it per branch.
// `budget` bounds states_visited exactly like the serial enumerator's
// global max_states check (the state that exceeds the budget is counted but
// not expanded), so re-walking a branch with the serially-remaining budget
// reproduces serial truncation byte-for-byte. `shared_budget`, when given,
// additionally caps the *aggregate* states claimed by all concurrent
// walkers: once the whole enumeration is certainly truncating, speculative
// branches stop early instead of each burning a full budget. A shared-cap
// bail sets hit_cap, which only routes the branch to the deterministic
// serial re-walk — it never changes the merged result.
//
// With a TranspositionTable the walker memoizes: a state whose completed
// subtree outcome is already recorded is *replayed* — all counters advance
// by the virtual subtree (states_visited included, so budget/truncation
// semantics are unchanged) and the stored relative masses are scaled by the
// entering path mass, which exact Rational arithmetic makes byte-identical
// to walking the subtree. A replay is taken only when the whole virtual
// subtree fits the remaining budget; otherwise the real walk runs and
// truncates exactly like the unmemoized one. Completed subtrees are
// recorded on the way out via counter snapshots plus a leaf-contribution
// log (compressed to per-repair shares as frames close, so it stays
// bounded by distinct repairs × depth, not by leaf count).
class SubtreeWalker {
 public:
  SubtreeWalker(const ChainGenerator& generator,
                const EnumerationOptions& options, size_t budget,
                TranspositionTable* memo,
                std::atomic<size_t>* shared_budget = nullptr)
      : generator_(generator),
        options_(options),
        budget_(budget),
        memo_(memo),
        shared_budget_(shared_budget) {}

  /// Returns the depth of the subtree below `state` (0 when absorbing);
  /// the value is meaningless after a cap bail.
  size_t Visit(RepairingState& state, const Rational& mass) {
    if (out_.hit_cap) return 0;
    StateKey key;
    if (memo_ != nullptr) {
      key = KeyOf(state);
      std::shared_ptr<const MemoOutcome> cached =
          memo_->Lookup(key, state.removed(), state.eliminated());
      if (cached != nullptr && Replay(*cached, state, mass)) {
        return cached->depth_below;
      }
    }
    Frame frame;
    if (memo_ != nullptr) frame = OpenFrame();
    ++out_.states_visited;
    if (out_.states_visited > budget_) {
      out_.hit_cap = true;
      return 0;
    }
    if (shared_budget_ != nullptr &&
        shared_budget_->fetch_add(1, std::memory_order_relaxed) >=
            options_.max_states) {
      out_.hit_cap = true;
      return 0;
    }
    out_.max_depth = std::max(out_.max_depth, state.depth());
    std::vector<Operation> extensions = state.ValidExtensions();
    size_t depth_below = 0;
    if (extensions.empty()) {
      // Absorbing state (complete sequence).
      ++out_.absorbing_states;
      if (state.IsConsistent()) {
        ++out_.successful_sequences;
        out_.success_mass += mass;
        // try_emplace freezes the key by copying on first insert.
        auto [it, inserted] = out_.aggregated.try_emplace(state.current());
        it->second.first += mass;
        it->second.second += 1;
        if (memo_ != nullptr) log_.push_back(LeafShare{&it->first, mass, 1});
      } else {
        ++out_.failing_sequences;
        out_.failing_mass += mass;
      }
    } else {
      std::vector<Rational> probs =
          CheckedProbabilities(generator_, state, extensions);
      for (size_t i = 0; i < extensions.size(); ++i) {
        if (options_.prune_zero_probability && probs[i].is_zero()) continue;
        state.ApplyTrusted(extensions[i]);
        size_t below = Visit(state, mass * probs[i]);
        state.Revert();
        if (out_.hit_cap) return 0;
        depth_below = std::max(depth_below, below + 1);
      }
    }
    if (memo_ != nullptr) CloseFrame(key, state, mass, frame, depth_below);
    return depth_below;
  }

  SubtreeResult Take() { return std::move(out_); }

 private:
  // One logged leaf contribution: the frozen repair (a stable pointer into
  // out_.aggregated — std::map nodes never move) with the absolute mass
  // and sequence count it received.
  struct LeafShare {
    const Database* repair;
    Rational mass;
    size_t sequences;
  };

  // Counter snapshot taken on entering a state; the subtree outcome is the
  // exact delta accumulated until the matching CloseFrame.
  struct Frame {
    size_t log_pos = 0;
    size_t states_visited = 0;
    size_t absorbing_states = 0;
    size_t successful_sequences = 0;
    size_t failing_sequences = 0;
    Rational success_mass;
    Rational failing_mass;
  };

  Frame OpenFrame() const {
    Frame frame;
    frame.log_pos = log_.size();
    frame.states_visited = out_.states_visited;
    frame.absorbing_states = out_.absorbing_states;
    frame.successful_sequences = out_.successful_sequences;
    frame.failing_sequences = out_.failing_sequences;
    frame.success_mass = out_.success_mass;
    frame.failing_mass = out_.failing_mass;
    return frame;
  }

  // Replays a recorded subtree when it fits the remaining budget. All
  // counters advance exactly as the real walk would, so budgets, shared
  // speculation accounting and truncation stay byte-identical.
  bool Replay(const MemoOutcome& outcome, const RepairingState& state,
              const Rational& mass) {
    if (out_.states_visited + outcome.states > budget_) return false;
    out_.states_visited += outcome.states;
    if (shared_budget_ != nullptr) {
      shared_budget_->fetch_add(outcome.states, std::memory_order_relaxed);
    }
    out_.absorbing_states += outcome.absorbing_states;
    out_.successful_sequences += outcome.successful_sequences;
    out_.failing_sequences += outcome.failing_sequences;
    out_.success_mass += outcome.success_mass * mass;
    out_.failing_mass += outcome.failing_mass * mass;
    out_.max_depth =
        std::max(out_.max_depth, state.depth() + outcome.depth_below);
    for (const MemoOutcome::RepairShare& share : outcome.repairs) {
      // Shares store the ids deleted below this state (repair/memo.h):
      // reconstruct the repair from the live database — the same id-vector
      // copy the aggregation key needed under full-payload storage.
      auto [it, inserted] =
          out_.aggregated.try_emplace(ReconstructRepair(state, share));
      Rational contribution = share.mass * mass;
      it->second.first += contribution;
      it->second.second += share.num_sequences;
      // Enclosing frames see the replayed subtree as leaf contributions.
      log_.push_back(
          LeafShare{&it->first, std::move(contribution), share.num_sequences});
    }
    return true;
  }

  // Completed subtree: derive the outcome (relative to the entering mass)
  // from the counter deltas and the frame's log segment, record it, and
  // compress the segment to one entry per distinct repair.
  void CloseFrame(const StateKey& key, const RepairingState& state,
                  const Rational& mass, const Frame& frame,
                  size_t depth_below) {
    // Group the segment by repair. Equal repairs share one map node, so
    // grouping needs only pointer identity — cheap — and the full
    // Database value comparisons are saved for the (much smaller)
    // compressed list, whose deterministic value order the stored entry
    // and the log replacement both use.
    std::vector<LeafShare> grouped(log_.begin() + frame.log_pos, log_.end());
    std::sort(grouped.begin(), grouped.end(),
              [](const LeafShare& a, const LeafShare& b) {
                return a.repair < b.repair;
              });
    std::vector<LeafShare> compressed;
    for (LeafShare& share : grouped) {
      if (!compressed.empty() && compressed.back().repair == share.repair) {
        compressed.back().mass += share.mass;
        compressed.back().sequences += share.sequences;
      } else {
        compressed.push_back(std::move(share));
      }
    }
    std::sort(compressed.begin(), compressed.end(),
              [](const LeafShare& a, const LeafShare& b) {
                return *a.repair < *b.repair;
              });
    log_.resize(frame.log_pos);
    log_.insert(log_.end(), compressed.begin(), compressed.end());
    // Zero-mass subtrees (reachable only with pruning disabled) cannot be
    // normalized; they are simply not recorded. Absorbing leaves are not
    // worth an entry either: replaying one saves a single near-trivial
    // Visit (a consistent leaf's ValidExtensions is O(1)) while the entry
    // costs two id-set copies — and under the entry cap, leaf entries
    // filling bottom-up would crowd out the deep shared suffixes that
    // carry all the speedup. Leaves are replayed as part of their
    // memoized ancestors instead.
    size_t subtree_states = out_.states_visited - frame.states_visited;
    if (mass.is_zero() || subtree_states < 2) return;
    auto outcome = std::make_shared<MemoOutcome>();
    outcome->states = subtree_states;
    outcome->absorbing_states =
        out_.absorbing_states - frame.absorbing_states;
    outcome->successful_sequences =
        out_.successful_sequences - frame.successful_sequences;
    outcome->failing_sequences =
        out_.failing_sequences - frame.failing_sequences;
    outcome->success_mass = (out_.success_mass - frame.success_mass) / mass;
    outcome->failing_mass = (out_.failing_mass - frame.failing_mass) / mass;
    outcome->depth_below = depth_below;
    outcome->repairs.reserve(compressed.size());
    std::vector<FactId> removed_below, resurrected;
    for (const LeafShare& share : compressed) {
      // Store the repair as its removed-id delta below this state
      // (repair/memo.h): on the deletion-only chains memoization is
      // gated to, every leaf database is a subset of this subtree root.
      state.current().SymmetricDifferenceIds(*share.repair, &removed_below,
                                             &resurrected);
      OPCQA_CHECK(resurrected.empty())
          << "memoized subtree contains a non-deletion edge";
      // Copy at exact size: moving the reused scratch vector would carry
      // its high-water capacity into every stored share.
      outcome->repairs.push_back(MemoOutcome::RepairShare{
          std::vector<FactId>(removed_below), share.mass / mass,
          share.sequences});
    }
    memo_->Insert(key, state.removed(), state.eliminated(),
                  std::move(outcome));
  }

  const ChainGenerator& generator_;
  const EnumerationOptions& options_;
  size_t budget_;
  TranspositionTable* memo_;
  std::atomic<size_t>* shared_budget_;
  SubtreeResult out_;
  std::vector<LeafShare> log_;  // only populated when memo_ != nullptr
};

// Accumulates a subtree's counters and aggregation map into the merged
// whole-tree result. Rational sums are exact, so accumulation in root-branch
// index order yields the same values as the serial DFS order.
void Accumulate(SubtreeResult&& partial, EnumerationResult* result,
                AggregateMap* aggregated) {
  result->states_visited += partial.states_visited;
  result->absorbing_states += partial.absorbing_states;
  result->successful_sequences += partial.successful_sequences;
  result->failing_sequences += partial.failing_sequences;
  result->success_mass += partial.success_mass;
  result->failing_mass += partial.failing_mass;
  result->max_depth = std::max(result->max_depth, partial.max_depth);
  for (auto& [repair, info] : partial.aggregated) {
    auto& slot = (*aggregated)[repair];
    slot.first += info.first;
    slot.second += info.second;
  }
}

// Sorts the aggregated repairs into the result (most probable first, ties
// by database order) and builds the binary-search index for ProbabilityOf.
void Assemble(AggregateMap&& aggregated, EnumerationResult* result) {
  result->repairs.reserve(aggregated.size());
  for (auto& [repair, info] : aggregated) {
    result->repairs.push_back(RepairInfo{repair, info.first, info.second});
  }
  std::sort(result->repairs.begin(), result->repairs.end(),
            [](const RepairInfo& a, const RepairInfo& b) {
              int cmp = a.probability.Compare(b.probability);
              if (cmp != 0) return cmp > 0;
              return a.repair < b.repair;
            });
  result->repairs_by_database.resize(result->repairs.size());
  std::iota(result->repairs_by_database.begin(),
            result->repairs_by_database.end(), 0u);
  std::sort(result->repairs_by_database.begin(),
            result->repairs_by_database.end(),
            [&](uint32_t a, uint32_t b) {
              return result->repairs[a].repair < result->repairs[b].repair;
            });
}

// One branch of the root: extension index (for probabilities) and the
// operation to apply on a fork of the root state.
struct RootBranch {
  size_t extension_index;
  Rational mass;  // edge probability out of ε
};

EnumerationResult EnumerateSerial(RepairingState& root,
                                  const ChainGenerator& generator,
                                  const EnumerationOptions& options,
                                  TranspositionTable* memo) {
  SubtreeWalker walker(generator, options, options.max_states, memo);
  walker.Visit(root, Rational(1));
  SubtreeResult partial = walker.Take();
  EnumerationResult result;
  result.truncated = partial.hit_cap;
  AggregateMap aggregated;
  Accumulate(std::move(partial), &result, &aggregated);
  Assemble(std::move(aggregated), &result);
  return result;
}

EnumerationResult EnumerateParallel(RepairingState& root,
                                    const ChainGenerator& generator,
                                    const EnumerationOptions& options,
                                    size_t threads,
                                    TranspositionTable* memo) {
  // Replicate the serial root frame: count ε, then branch.
  EnumerationResult result;
  result.states_visited = 1;
  if (result.states_visited > options.max_states) {
    result.truncated = true;
    Assemble(AggregateMap(), &result);
    return result;
  }
  std::vector<Operation> extensions = root.ValidExtensions();
  if (extensions.empty()) {
    // Absorbing root: ε is already complete.
    result.absorbing_states = 1;
    AggregateMap aggregated;
    if (root.IsConsistent()) {
      result.successful_sequences = 1;
      result.success_mass = Rational(1);
      aggregated[root.current()] = {Rational(1), 1};
    } else {
      result.failing_sequences = 1;
      result.failing_mass = Rational(1);
    }
    Assemble(std::move(aggregated), &result);
    return result;
  }
  std::vector<Rational> probs =
      CheckedProbabilities(generator, root, extensions);
  std::vector<RootBranch> branches;
  branches.reserve(extensions.size());
  for (size_t i = 0; i < extensions.size(); ++i) {
    if (options.prune_zero_probability && probs[i].is_zero()) continue;
    branches.push_back(RootBranch{i, probs[i]});
  }
  // Speculative pass: every branch walks its subtree on its own forked
  // state. Work is claimed dynamically, results land at branch index. Two
  // caps bound the speculation: per-branch max_states (the largest budget
  // any branch could be entitled to) and the shared aggregate budget, which
  // keeps a truncating enumeration near ~max_states total states instead of
  // letting every branch burn a full budget.
  std::atomic<size_t> shared_budget{result.states_visited};  // root counted
  std::vector<SubtreeResult> partials =
      ParallelMap<SubtreeResult>(branches.size(), threads, [&](size_t k) {
        RepairingState state = root.Fork();
        state.ApplyTrusted(extensions[branches[k].extension_index]);
        // All workers share one striped-lock transposition table; entry
        // values are functions of their keys, so cross-worker hits are
        // deterministic in effect regardless of which worker published.
        SubtreeWalker walker(generator, options, options.max_states, memo,
                             &shared_budget);
        walker.Visit(state, branches[k].mass);
        return walker.Take();
      });
  // Deterministic budget replay in branch order: a branch whose full count
  // fits the serially-remaining budget is merged as-is; a branch that was
  // capped (by its own or the shared budget) or does not fit is re-walked
  // serially with exactly the remaining budget, reproducing serial
  // truncation byte-for-byte. Once a re-walk truncates, the serial
  // enumerator would have stopped — later branches were never reached.
  AggregateMap aggregated;
  for (size_t k = 0; k < branches.size(); ++k) {
    size_t budget_left = options.max_states - result.states_visited;
    if (!partials[k].hit_cap && partials[k].states_visited <= budget_left) {
      Accumulate(std::move(partials[k]), &result, &aggregated);
      continue;
    }
    RepairingState state = root.Fork();
    state.ApplyTrusted(extensions[branches[k].extension_index]);
    SubtreeWalker walker(generator, options, budget_left, memo);
    walker.Visit(state, branches[k].mass);
    SubtreeResult rewalked = walker.Take();
    bool truncated_here = rewalked.hit_cap;
    Accumulate(std::move(rewalked), &result, &aggregated);
    if (truncated_here) {
      result.truncated = true;
      break;
    }
  }
  Assemble(std::move(aggregated), &result);
  return result;
}

}  // namespace

Rational EnumerationResult::ProbabilityOf(const Database& repair) const {
  if (repairs_by_database.size() == repairs.size()) {
    auto it = std::lower_bound(
        repairs_by_database.begin(), repairs_by_database.end(), repair,
        [&](uint32_t index, const Database& target) {
          return repairs[index].repair < target;
        });
    if (it != repairs_by_database.end() && repairs[*it].repair == repair) {
      return repairs[*it].probability;
    }
    return Rational(0);
  }
  // Hand-assembled result without the index.
  for (const RepairInfo& info : repairs) {
    if (info.repair == repair) return info.probability;
  }
  return Rational(0);
}

EnumerationResult EnumerateRepairs(const Database& db,
                                   const ConstraintSet& constraints,
                                   const ChainGenerator& generator,
                                   const EnumerationOptions& options) {
  OPCQA_TRACE_SPAN("engine.enumerate");
  static obs::Histogram* const latency =
      obs::MetricsRegistry::Global().GetHistogram("engine.enumerate_ms");
  obs::ScopedTimer timer(latency);
  auto context = RepairContext::Make(db, constraints);
  RepairingState root(context);
  std::shared_ptr<TranspositionTable> memo;
  if (options.memoize &&
      MemoizationApplicable(*context, generator,
                            options.prune_zero_probability)) {
    if (options.cache != nullptr) {
      // Persistent root-keyed table: later queries over the same
      // (db, Σ, generator) replay this walk's completed subtrees.
      memo = options.cache->TableFor(db, constraints, generator,
                                     options.prune_zero_probability);
    }
    if (memo == nullptr) {
      memo = std::make_shared<TranspositionTable>(options.memo_max_entries,
                                                  options.memo_max_bytes);
      memo->SetRootShape(db.size(), db.schema().size());
    }
  }
  MemoStats stats_before;
  if (memo != nullptr) stats_before = memo->stats();
  size_t threads = options.threads == 0 ? DefaultThreads() : options.threads;
  EnumerationResult result =
      threads > 1
          ? EnumerateParallel(root, generator, options, threads, memo.get())
          : EnumerateSerial(root, generator, options, memo.get());
  // Per-call view: counters accrued by this enumeration even when the
  // table is shared and outlives the call.
  if (memo != nullptr) {
    result.memo_stats = memo->stats().DeltaSince(stats_before);
  }
  return result;
}

namespace {

void RenderNode(RepairingState& state, const ChainGenerator& generator,
                const std::string& edge_label, size_t depth, size_t max_depth,
                std::string* out) {
  const Schema& schema = state.context().initial.schema();
  for (size_t i = 0; i < depth; ++i) *out += "  ";
  if (depth == 0) {
    *out += "ε";
  } else {
    *out += edge_label;
  }
  std::vector<Operation> extensions = state.ValidExtensions();
  if (extensions.empty()) {
    *out += state.IsConsistent() ? "  [repair: " : "  [FAILING: ";
    *out += state.current().ToString();
    *out += "]";
  }
  *out += "\n";
  if (extensions.empty() || depth >= max_depth) return;
  std::vector<Rational> probs =
      CheckedProbabilities(generator, state, extensions);
  for (size_t i = 0; i < extensions.size(); ++i) {
    if (probs[i].is_zero()) continue;
    state.ApplyTrusted(extensions[i]);
    std::string label = StrCat(extensions[i].ToString(schema), "  (p=",
                               probs[i].ToString(), ")");
    RenderNode(state, generator, label, depth + 1, max_depth, out);
    state.Revert();
  }
}

}  // namespace

std::string RenderChainTree(const Database& db,
                            const ConstraintSet& constraints,
                            const ChainGenerator& generator,
                            size_t max_depth) {
  auto context = RepairContext::Make(db, constraints);
  RepairingState root(context);
  std::string out;
  RenderNode(root, generator, "", 0, max_depth, &out);
  return out;
}

}  // namespace opcqa
