#include "repair/repair_enumerator.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

namespace {

class Enumerator {
 public:
  Enumerator(const ConstraintSet& constraints, const ChainGenerator& generator,
             const EnumerationOptions& options)
      : constraints_(constraints), generator_(generator), options_(options) {}

  EnumerationResult Run(const Database& db) {
    auto context = RepairContext::Make(db, constraints_);
    RepairingState root(context);
    Visit(root, Rational(1));
    // Assemble the result.
    EnumerationResult result = std::move(result_);
    for (auto& [repair, info] : aggregated_) {
      result.repairs.push_back(RepairInfo{repair, info.first, info.second});
    }
    std::sort(result.repairs.begin(), result.repairs.end(),
              [](const RepairInfo& a, const RepairInfo& b) {
                int cmp = a.probability.Compare(b.probability);
                if (cmp != 0) return cmp > 0;
                return a.repair < b.repair;
              });
    return result;
  }

 private:
  // Delta-based DFS: one state is threaded through the whole tree with
  // apply → recurse → revert instead of copying it per branch.
  void Visit(RepairingState& state, const Rational& mass) {
    if (result_.truncated) return;
    ++result_.states_visited;
    if (result_.states_visited > options_.max_states) {
      result_.truncated = true;
      return;
    }
    result_.max_depth = std::max(result_.max_depth, state.depth());
    std::vector<Operation> extensions = state.ValidExtensions();
    if (extensions.empty()) {
      // Absorbing state (complete sequence).
      ++result_.absorbing_states;
      if (state.IsConsistent()) {
        ++result_.successful_sequences;
        result_.success_mass += mass;
        // map operator[] freezes the key by copying on first insert.
        auto& slot = aggregated_[state.current()];
        slot.first += mass;
        slot.second += 1;
      } else {
        ++result_.failing_sequences;
        result_.failing_mass += mass;
      }
      return;
    }
    std::vector<Rational> probs =
        CheckedProbabilities(generator_, state, extensions);
    for (size_t i = 0; i < extensions.size(); ++i) {
      if (options_.prune_zero_probability && probs[i].is_zero()) continue;
      state.ApplyTrusted(extensions[i]);
      Visit(state, mass * probs[i]);
      state.Revert();
      if (result_.truncated) return;
    }
  }

  const ConstraintSet& constraints_;
  const ChainGenerator& generator_;
  const EnumerationOptions& options_;
  EnumerationResult result_;
  std::map<Database, std::pair<Rational, size_t>> aggregated_;
};

}  // namespace

Rational EnumerationResult::ProbabilityOf(const Database& repair) const {
  for (const RepairInfo& info : repairs) {
    if (info.repair == repair) return info.probability;
  }
  return Rational(0);
}

EnumerationResult EnumerateRepairs(const Database& db,
                                   const ConstraintSet& constraints,
                                   const ChainGenerator& generator,
                                   const EnumerationOptions& options) {
  Enumerator enumerator(constraints, generator, options);
  return enumerator.Run(db);
}

namespace {

void RenderNode(RepairingState& state, const ChainGenerator& generator,
                const std::string& edge_label, size_t depth, size_t max_depth,
                std::string* out) {
  const Schema& schema = state.context().initial.schema();
  for (size_t i = 0; i < depth; ++i) *out += "  ";
  if (depth == 0) {
    *out += "ε";
  } else {
    *out += edge_label;
  }
  std::vector<Operation> extensions = state.ValidExtensions();
  if (extensions.empty()) {
    *out += state.IsConsistent() ? "  [repair: " : "  [FAILING: ";
    *out += state.current().ToString();
    *out += "]";
  }
  *out += "\n";
  if (extensions.empty() || depth >= max_depth) return;
  std::vector<Rational> probs =
      CheckedProbabilities(generator, state, extensions);
  for (size_t i = 0; i < extensions.size(); ++i) {
    if (probs[i].is_zero()) continue;
    state.ApplyTrusted(extensions[i]);
    std::string label = StrCat(extensions[i].ToString(schema), "  (p=",
                               probs[i].ToString(), ")");
    RenderNode(state, generator, label, depth + 1, max_depth, out);
    state.Revert();
  }
}

}  // namespace

std::string RenderChainTree(const Database& db,
                            const ConstraintSet& constraints,
                            const ChainGenerator& generator,
                            size_t max_depth) {
  auto context = RepairContext::Make(db, constraints);
  RepairingState root(context);
  std::string out;
  RenderNode(root, generator, "", 0, max_depth, &out);
  return out;
}

}  // namespace opcqa
