#include "repair/counting.h"

namespace opcqa {

Rational CountingOcaResult::Proportion(const Tuple& tuple) const {
  auto it = answers.find(tuple);
  return it == answers.end() ? Rational(0) : it->second;
}

CountingOcaResult CountingOca(const Database& db,
                              const ConstraintSet& constraints,
                              const ChainGenerator& generator,
                              const Query& query,
                              const CountingOptions& options) {
  EnumerationResult enumeration =
      EnumerateRepairs(db, constraints, generator, options.enumeration);
  return CountingOcaFromEnumeration(enumeration, query);
}

CountingOcaResult CountingOcaFromEnumeration(
    const EnumerationResult& enumeration, const Query& query) {
  std::vector<Database> repairs;
  repairs.reserve(enumeration.repairs.size());
  for (const RepairInfo& info : enumeration.repairs) {
    repairs.push_back(info.repair);
  }
  return CountingOcaFromRepairs(repairs, query);
}

CountingOcaResult CountingOcaFromRepairs(const std::vector<Database>& repairs,
                                         const Query& query) {
  CountingOcaResult result;
  result.num_repairs = repairs.size();
  if (repairs.empty()) return result;
  std::map<Tuple, size_t> counts;
  for (const Database& repair : repairs) {
    for (const Tuple& tuple : query.Evaluate(repair)) {
      ++counts[tuple];
    }
  }
  Rational denominator(static_cast<int64_t>(repairs.size()));
  for (const auto& [tuple, count] : counts) {
    result.answers[tuple] =
        Rational(static_cast<int64_t>(count)) / denominator;
  }
  return result;
}

Rational ExpectedAnswerCount(const EnumerationResult& enumeration,
                             const Query& query) {
  if (enumeration.success_mass.is_zero()) return Rational(0);
  Rational total;
  for (const RepairInfo& info : enumeration.repairs) {
    total += info.probability *
             Rational(static_cast<int64_t>(query.Evaluate(info.repair).size()));
  }
  return total / enumeration.success_mass;
}

}  // namespace opcqa
