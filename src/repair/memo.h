// Transposition-table memoization of the repair space.
//
// Many distinct repairing sequences pass through the *same* intermediate
// database: resolving n independent key conflicts yields n! interleavings
// over only 𝒪(cⁿ) distinct states, and the exact enumerator, counter and
// top-k search all recompute every shared suffix from scratch. The
// uniform-operational-CQA line (Calautti et al., arXiv:2204.10592,
// 2312.08038) obtains its tractable counting results precisely by
// collapsing equivalent states; this table is the engine-level analogue.
//
// ## Soundness (when two states share their future)
//
// The subtree below a repairing state is a function of the pair
//
//     (current database  D^s_i,  eliminated-violation set)
//
// whenever the chain is deletion-only and the generator is history
// independent (MemoizationApplicable):
//   * no additions ⇒ the addition records and the added-fact set are
//     empty, so Local/Global Justification and No Cancellation depend on
//     nothing path-specific (the removed-fact set is D − D^s_i);
//   * req2 depends only on the eliminated set;
//   * a history-independent generator assigns edge probabilities from the
//     state alone (ChainGenerator::history_independent).
// Under denial-only Σ the eliminated set is itself V(D,Σ) − V(D^s_i,Σ),
// but it stays part of the key so the TGD-with-deletion-only-generator
// case is covered too.
//
// ## Keys, collisions, determinism
//
// States are keyed on the (database hash, eliminated-set hash) pair both
// maintained incrementally under ApplyTrusted/Revert — keying is O(1),
// never O(|D|). Hash equality is only a candidate match: every lookup
// verifies the stored real sets before a hit, so hash collisions degrade
// performance, never correctness. Entries store the *completed* subtree
// outcome with masses relative to the subtree root; replaying an entry
// multiplies by the entering path mass, and exact Rational arithmetic
// makes the replayed totals — masses, counters, truncation —
// byte-identical to the unmemoized walk. The table is shared across the
// PR-2 worker threads through striped locks; because an entry's value is
// a function of its key, the publication race is benign and results stay
// deterministic for every thread count.
//
// ## Delta-compressed payloads (PR 4)
//
// Memoization only ever applies to deletion-only chains, so every state
// of a table is the chain root D minus its removed-fact set, and every
// repair below an entry is the entry's database minus further deletions.
// Entries therefore store
//   * the verification key as the sorted removed-id set against D
//     (≈ depth-sized instead of |D|-sized), and
//   * each per-repair mass share as the ids removed *below* the entry
//     state (again depth-sized)
// — never a full id-vector Database copy. Replaying reconstructs each
// repair from the live state's database (one id-vector copy plus
// depth-many erases), which is exactly the copy the aggregation map
// needed anyway. One table must only ever be used underneath a single
// chain root (RepairSpaceCache verifies the root database before handing
// a table out; scratch tables are per-call by construction).
//
// ## Cost-aware eviction
//
// The PR-3 table stopped inserting once full; this table instead evicts
// under an entry and/or byte budget with a second-chance (CLOCK-style)
// sweep weighted by the virtual-subtree size an entry replays: entries
// whose subtrees are cheap to recompute start with zero protection
// credits and go first, deep shared suffixes — the entries carrying the
// speedup — survive longest, and a verified hit refreshes an entry's
// credits. Eviction only ever costs recomputation (a later walk misses
// and re-records); results stay byte-identical by the replay argument
// above.
//
// ## Admission filter for persistent tables (PR 5)
//
// A table that outlives one enumeration (repair/repair_cache.h) fills up
// with states that were completed once and never reached again — PR 4's
// sweep then spends its passes churning through them. With the admission
// filter enabled, an Insert is only admitted once its key has *missed
// twice*: the first miss parks the key in a small per-stripe probational
// set (a few bytes instead of a full entry), and only a key that provably
// re-occurs earns a real entry, at the price of walking its subtree one
// extra time. Results stay byte-identical — a declined insert is
// indistinguishable from an eviction. Scratch (per-call) tables never
// enable the filter, so single-query behavior is exactly PR 4's. Entries
// restored from a disk snapshot bypass the filter: they already proved
// their worth in a previous process.

#ifndef OPCQA_REPAIR_MEMO_H_
#define OPCQA_REPAIR_MEMO_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "repair/chain_generator.h"
#include "repair/repairing_state.h"
#include "util/rational.h"

namespace opcqa {

/// O(1) fingerprint of a repairing state (see file comment). Equal states
/// always produce equal keys; unequal states are told apart by the
/// table's removed/eliminated-set verification.
struct StateKey {
  size_t db_hash = 0;
  size_t eliminated_hash = 0;

  bool operator==(const StateKey&) const = default;
  size_t Combined() const;
};

StateKey KeyOf(const RepairingState& state);

/// True when memoizing subtrees keyed on StateKey is sound for this
/// combination (see the file comment): the generator must be history
/// independent, and the chain must be deletion-only — guaranteed by a
/// denial-only Σ, or by a deletions-only generator together with
/// zero-probability pruning (which keeps addition edges out of the tree).
bool MemoizationApplicable(const RepairContext& context,
                           const ChainGenerator& generator,
                           bool prune_zero_probability);

/// The complete subtree outcome below a state, conditioned on entering the
/// state with path mass 1 (multiply by the actual entering mass to
/// replay). Only completed subtrees are stored — a walk that hit a state
/// budget inside the subtree records nothing ("completed-subtree marker"
/// by construction).
struct MemoOutcome {
  struct RepairShare {
    /// Ids removed below the entry state: the repair is the entry state's
    /// database minus these facts (deletion-only chains; see file
    /// comment). Sorted in fact value order.
    std::vector<FactId> removed;
    Rational mass;          // Σ leaf masses relative to the subtree root
    size_t num_sequences;   // successful leaves mapping to this repair
  };
  /// Distinct successful leaf databases, in database (value) order.
  std::vector<RepairShare> repairs;
  Rational success_mass;    // Σ over repairs (relative)
  Rational failing_mass;    // Σ over failing leaves (relative)
  size_t states = 0;        // subtree states, including the root
  size_t absorbing_states = 0;
  size_t successful_sequences = 0;
  size_t failing_sequences = 0;
  size_t depth_below = 0;   // deepest leaf depth − subtree-root depth
};

/// Decodes one RepairShare against the live state it was recorded under:
/// the repair is the state's database minus the share's removed ids. The
/// single definition of the delta encoding's read side, shared by the
/// enumerator's replay and the top-k fold.
Database ReconstructRepair(const RepairingState& state,
                           const MemoOutcome::RepairShare& share);

/// Aggregate table counters. hits…evictions are monotone; entries, bytes
/// and full_payload_bytes are point-in-time gauges.
struct MemoStats {
  uint64_t hits = 0;        // verified lookups
  uint64_t misses = 0;      // no entry under the key
  uint64_t collisions = 0;  // hash match whose verified sets differed
  uint64_t inserts = 0;
  uint64_t rejected_full = 0;  // inserts too large for any budget
  uint64_t evictions = 0;      // entries removed by the budget sweep
  /// Inserts declined by the persistent-tier admission filter (the key
  /// had not missed twice yet). Always 0 on scratch tables.
  uint64_t admission_deferred = 0;
  size_t entries = 0;
  /// Approximate heap footprint of the live entries (delta-compressed) —
  /// the gauge the byte budget enforces.
  size_t bytes = 0;
  /// Of `bytes`, what the removed-id delta payloads occupy (the
  /// verification keys and per-repair shares).
  size_t payload_bytes = 0;
  /// What those same payloads would occupy under the PR-3 representation
  /// (a full id-vector Database copy per key and per repair share);
  /// full_payload_bytes / payload_bytes is the measured compression
  /// ratio, which grows like |D| / depth on depth-bounded chains.
  size_t full_payload_bytes = 0;

  /// Counters accrued since `earlier` (monotone fields diffed, gauges
  /// kept) — the per-call view over a persistent shared table.
  MemoStats DeltaSince(const MemoStats& earlier) const;
};

/// Striped-lock transposition table: StateKey → verified MemoOutcome.
/// Thread-safe for concurrent Lookup/Insert (one stripe locked per call);
/// outcomes are immutable once published. All states passed in must
/// belong to one chain root (their removed sets are deltas against it).
class TranspositionTable {
 public:
  static constexpr size_t kDefaultMaxEntries = 1u << 20;
  /// Lock striping factor; budgets are enforced per stripe (an entry
  /// budget of N allows max(1, N/kNumStripes) entries per stripe).
  /// Public so tests can construct same-stripe contention.
  static constexpr size_t kNumStripes = 16;

  /// `max_bytes` = 0 disables the byte budget (the entry cap remains).
  explicit TranspositionTable(size_t max_entries = kDefaultMaxEntries,
                              size_t max_bytes = 0);

  /// Shape of the chain root this table memoizes under — |D| and the
  /// schema's relation count — used only to estimate full_payload_bytes
  /// (the PR-3 representation) for the compression-ratio counters.
  void SetRootShape(size_t root_facts, size_t num_relations);

  /// The outcome recorded for this exact state, or nullptr. `removed` and
  /// `eliminated` are the verification payloads: a candidate entry whose
  /// stored sets differ is a counted hash collision, never a hit. A
  /// verified hit refreshes the entry's eviction-protection credits.
  std::shared_ptr<const MemoOutcome> Lookup(const StateKey& key,
                                            const std::set<FactId>& removed,
                                            const ViolationSet& eliminated);
  std::shared_ptr<const MemoOutcome> Lookup(const RepairingState& state) {
    return Lookup(KeyOf(state), state.removed(), state.eliminated());
  }

  /// Records the completed-subtree outcome below (key, removed,
  /// eliminated). Re-inserting an already-present state keeps the first
  /// entry (the outcomes are equal by soundness); exceeding the budgets
  /// triggers the cost-aware eviction sweep, in which the new entry
  /// competes on its own credits — a cheap newcomer never displaces an
  /// expensive resident.
  void Insert(const StateKey& key, const std::set<FactId>& removed,
              ViolationSet eliminated,
              std::shared_ptr<const MemoOutcome> outcome);
  void Insert(const RepairingState& state,
              std::shared_ptr<const MemoOutcome> outcome) {
    Insert(KeyOf(state), state.removed(), state.eliminated(),
           std::move(outcome));
  }

  /// Turns on the twice-missed admission filter (see file comment). Call
  /// before the table is shared across threads — the flag itself is not
  /// synchronized. Intended for persistent tables only; scratch tables
  /// keep the always-admit PR-4 behavior.
  void EnableAdmissionFilter() { admission_filter_ = true; }

  /// Inserts an entry reconstructed from a disk snapshot
  /// (storage/canonical.h): bypasses the admission filter — the entry
  /// proved its replay value in a previous process — but still competes
  /// under the budgets. `removed` must be sorted in ascending id order
  /// (the verification order of Lookup).
  void RestoreEntry(const StateKey& key, std::vector<FactId> removed,
                    ViolationSet eliminated,
                    std::shared_ptr<const MemoOutcome> outcome);

  /// Invokes `fn` on a point-in-time view of every entry, one stripe at a
  /// time (safe concurrently with Lookup/Insert; entries inserted during
  /// the sweep may or may not be seen). The spill path of the disk tier.
  void ForEach(
      const std::function<void(const std::vector<FactId>& removed,
                               const ViolationSet& eliminated,
                               const MemoOutcome& outcome)>& fn) const;

  /// Monotone admission clock: every entry that wins residency (Insert
  /// past the filter, or RestoreEntry) is stamped with the next tick.
  /// `sequence()` is the newest stamp handed out — the high-water mark a
  /// delta spill captures. Evictions never rewind it, so "nothing new
  /// since sequence S" is exactly "no entry carries a stamp > S".
  uint64_t sequence() const {
    return sequence_.load(std::memory_order_relaxed);
  }

  /// ForEach restricted to entries stamped in (since, upto] — the
  /// still-resident entries admitted after a previous spill captured
  /// `since` and before this spill captured `upto = sequence()`. Entries
  /// admitted mid-sweep carry stamps > upto and are excluded, so the view
  /// is a consistent delta even under concurrent inserts. An entry both
  /// admitted and evicted inside the window is simply absent (sound: the
  /// disk tier only ever under-remembers, never mis-remembers).
  void ForEachSince(
      uint64_t since, uint64_t upto,
      const std::function<void(const std::vector<FactId>& removed,
                               const ViolationSet& eliminated,
                               const MemoOutcome& outcome)>& fn) const;

  size_t size() const;
  MemoStats stats() const;

 private:
  struct Entry {
    StateKey key;
    std::vector<FactId> removed;  // verification payload (vs chain root)
    ViolationSet eliminated;
    std::shared_ptr<const MemoOutcome> outcome;
    /// Second-chance credits: decremented by the eviction sweep, evicted
    /// at zero, refreshed to the cost tier on every verified hit.
    uint8_t chances = 0;
    /// Admission stamp from sequence_ (see ForEachSince).
    uint64_t sequence = 0;
    size_t entry_bytes = 0;    // cached EntryBytes(*this)
    size_t payload_bytes = 0;  // cached delta-payload share of entry_bytes
    size_t full_bytes = 0;     // cached PR-3-equivalent payload footprint
  };
  struct Stripe {
    mutable std::mutex mutex;
    // Combined() → entries; same-bucket entries disambiguated by payload.
    std::unordered_multimap<size_t, Entry> map;
    size_t bytes = 0;
    size_t payload_bytes = 0;
    size_t full_bytes = 0;
    // Admission filter: Combined() → miss count. Hash-bucket granularity
    // is deliberate (a collision can only admit early, never corrupt —
    // Insert still verifies the real sets); bounded by kProbationCap — a
    // full set displaces one arbitrary resident per new key (never a
    // wholesale wipe, which would starve admission on large roots).
    std::unordered_map<size_t, uint8_t> probation;
  };

  Stripe& StripeFor(const StateKey& key) {
    return stripes_[key.Combined() % kNumStripes];
  }

  /// Protection credits by replay value: the bigger the virtual subtree an
  /// entry collapses, the more sweep passes it survives.
  static uint8_t CostTier(const MemoOutcome& outcome);
  static size_t EntryBytes(const Entry& entry);
  static size_t PayloadBytes(const Entry& entry);
  size_t FullPayloadBytes(const Entry& entry) const;
  /// Evicts zero-credit entries (decrementing the rest) until `stripe`
  /// fits its per-stripe share of both budgets. The just-inserted entry
  /// competes on its own credits — a cheap newcomer never displaces an
  /// expensive resident (cost-aware admission).
  void EvictUntilWithinBudget(Stripe& stripe);
  /// Shared insert tail: dedups against resident entries, sizes the
  /// entry, applies the too-big rejection and the eviction sweep.
  void EmplaceEntry(Stripe& stripe, Entry entry);

  /// Probational keys tracked per stripe before the set resets.
  static constexpr size_t kProbationCap = 4096;

  size_t max_entries_;
  size_t max_bytes_;
  /// Set once before the table is shared (EnableAdmissionFilter).
  bool admission_filter_ = false;
  std::atomic<size_t> root_facts_{0};
  std::atomic<size_t> num_relations_{0};
  std::atomic<size_t> entries_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> collisions_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> rejected_full_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> admission_deferred_{0};
  /// Admission clock (see sequence()); stamped inside EmplaceEntry.
  std::atomic<uint64_t> sequence_{0};
  Stripe stripes_[kNumStripes];
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_MEMO_H_
