// Transposition-table memoization of the repair space.
//
// Many distinct repairing sequences pass through the *same* intermediate
// database: resolving n independent key conflicts yields n! interleavings
// over only 𝒪(cⁿ) distinct states, and the exact enumerator, counter and
// top-k search all recompute every shared suffix from scratch. The
// uniform-operational-CQA line (Calautti et al., arXiv:2204.10592,
// 2312.08038) obtains its tractable counting results precisely by
// collapsing equivalent states; this table is the engine-level analogue.
//
// ## Soundness (when two states share their future)
//
// The subtree below a repairing state is a function of the pair
//
//     (current database  D^s_i,  eliminated-violation set)
//
// whenever the chain is deletion-only and the generator is history
// independent (MemoizationApplicable):
//   * no additions ⇒ the addition records and the added-fact set are
//     empty, so Local/Global Justification and No Cancellation depend on
//     nothing path-specific (the removed-fact set is D − D^s_i);
//   * req2 depends only on the eliminated set;
//   * a history-independent generator assigns edge probabilities from the
//     state alone (ChainGenerator::history_independent).
// Under denial-only Σ the eliminated set is itself V(D,Σ) − V(D^s_i,Σ),
// but it stays part of the key so the TGD-with-deletion-only-generator
// case is covered too.
//
// ## Keys, collisions, determinism
//
// States are keyed on the (database hash, eliminated-set hash) pair both
// maintained incrementally under ApplyTrusted/Revert — keying is O(1),
// never O(|D|). Hash equality is only a candidate match: every lookup
// verifies the stored real id-sets before a hit, so hash collisions
// degrade performance, never correctness. Entries store the *completed*
// subtree outcome with masses relative to the subtree root; replaying an
// entry multiplies by the entering path mass, and exact Rational
// arithmetic makes the replayed totals — masses, counters, truncation —
// byte-identical to the unmemoized walk. The table is shared across the
// PR-2 worker threads through striped locks; because an entry's value is
// a function of its key, the publication race is benign and results stay
// deterministic for every thread count.

#ifndef OPCQA_REPAIR_MEMO_H_
#define OPCQA_REPAIR_MEMO_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "repair/chain_generator.h"
#include "repair/repairing_state.h"
#include "util/rational.h"

namespace opcqa {

/// O(1) fingerprint of a repairing state (see file comment). Equal states
/// always produce equal keys; unequal states are told apart by the
/// table's id-set verification.
struct StateKey {
  size_t db_hash = 0;
  size_t eliminated_hash = 0;

  bool operator==(const StateKey&) const = default;
  size_t Combined() const;
};

StateKey KeyOf(const RepairingState& state);

/// True when memoizing subtrees keyed on StateKey is sound for this
/// combination (see the file comment): the generator must be history
/// independent, and the chain must be deletion-only — guaranteed by a
/// denial-only Σ, or by a deletions-only generator together with
/// zero-probability pruning (which keeps addition edges out of the tree).
bool MemoizationApplicable(const RepairContext& context,
                           const ChainGenerator& generator,
                           bool prune_zero_probability);

/// The complete subtree outcome below a state, conditioned on entering the
/// state with path mass 1 (multiply by the actual entering mass to
/// replay). Only completed subtrees are stored — a walk that hit a state
/// budget inside the subtree records nothing ("completed-subtree marker"
/// by construction).
struct MemoOutcome {
  struct RepairShare {
    Database repair;
    Rational mass;          // Σ leaf masses relative to the subtree root
    size_t num_sequences;   // successful leaves mapping to this repair
  };
  /// Distinct successful leaf databases, in database (value) order.
  std::vector<RepairShare> repairs;
  Rational success_mass;    // Σ over repairs (relative)
  Rational failing_mass;    // Σ over failing leaves (relative)
  size_t states = 0;        // subtree states, including the root
  size_t absorbing_states = 0;
  size_t successful_sequences = 0;
  size_t failing_sequences = 0;
  size_t depth_below = 0;   // deepest leaf depth − subtree-root depth
};

/// Aggregate table counters (monotone; read with stats()).
struct MemoStats {
  uint64_t hits = 0;        // verified lookups
  uint64_t misses = 0;      // no entry under the key
  uint64_t collisions = 0;  // hash match whose id-sets differed
  uint64_t inserts = 0;
  uint64_t rejected_full = 0;  // inserts dropped by the entry cap
  size_t entries = 0;
};

/// Striped-lock transposition table: StateKey → verified MemoOutcome.
/// Thread-safe for concurrent Lookup/Insert (one stripe locked per call);
/// outcomes are immutable once published.
class TranspositionTable {
 public:
  static constexpr size_t kDefaultMaxEntries = 1u << 20;

  explicit TranspositionTable(size_t max_entries = kDefaultMaxEntries);

  /// The outcome recorded for this exact state, or nullptr. `db` and
  /// `eliminated` are the verification payloads: a candidate entry whose
  /// stored id-sets differ is a counted hash collision, never a hit.
  std::shared_ptr<const MemoOutcome> Lookup(const StateKey& key,
                                            const Database& db,
                                            const ViolationSet& eliminated);
  std::shared_ptr<const MemoOutcome> Lookup(const RepairingState& state) {
    return Lookup(KeyOf(state), state.current(), state.eliminated());
  }

  /// Records the completed-subtree outcome below (key, db, eliminated).
  /// Re-inserting an already-present state keeps the first entry (the
  /// outcomes are equal by soundness); inserts beyond `max_entries` are
  /// dropped (existing entries keep serving hits).
  void Insert(const StateKey& key, const Database& db,
              ViolationSet eliminated,
              std::shared_ptr<const MemoOutcome> outcome);
  void Insert(const RepairingState& state,
              std::shared_ptr<const MemoOutcome> outcome) {
    Insert(KeyOf(state), state.current(), state.eliminated(),
           std::move(outcome));
  }

  size_t size() const;
  MemoStats stats() const;

 private:
  struct Entry {
    StateKey key;
    Database db;              // verification payloads
    ViolationSet eliminated;
    std::shared_ptr<const MemoOutcome> outcome;
  };
  struct Stripe {
    mutable std::mutex mutex;
    // Combined() → entries; same-bucket entries disambiguated by payload.
    std::unordered_multimap<size_t, Entry> map;
  };
  static constexpr size_t kNumStripes = 16;

  Stripe& StripeFor(const StateKey& key) {
    return stripes_[key.Combined() % kNumStripes];
  }

  size_t max_entries_;
  std::atomic<size_t> entries_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> collisions_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> rejected_full_{0};
  Stripe stripes_[kNumStripes];
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_MEMO_H_
