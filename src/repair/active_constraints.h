// Active integrity constraints — the "More Expressive Languages" direction
// of Section 6, after Caroprese, Greco & Zumpano, "Active integrity
// constraints for database consistency maintenance" (TKDE 2009).
//
// An active constraint pairs a static constraint with *preferred repair
// actions*: when the constraint is violated, some of the operations that
// could fix it are declared preferred (e.g. "on a key violation of R,
// prefer deleting the second conflicting tuple", or "on an inclusion
// violation, prefer inserting the missing fact over deleting the premise").
//
// ActiveConstraintGenerator turns a list of such preferences into a
// repairing-chain generator: at every state, each valid extension is
// weighted by the best-matching preference of any violation it fixes
// (default weight 1), and the weights are normalized into a distribution.
// Weight 0 prunes an operation from the chain entirely — the "only the
// suggested actions are allowed" reading of active constraints.

#ifndef OPCQA_REPAIR_ACTIVE_CONSTRAINTS_H_
#define OPCQA_REPAIR_ACTIVE_CONSTRAINTS_H_

#include <optional>
#include <vector>

#include "repair/chain_generator.h"

namespace opcqa {

/// One action preference attached to a constraint.
struct ActionPreference {
  /// Index of the constraint in the ConstraintSet this applies to.
  size_t constraint_index = 0;
  /// Which operation kind the preference concerns.
  Operation::Kind kind = Operation::Kind::kRemove;
  /// For deletions: restrict to operations deleting exactly the image of
  /// this body atom (by index into the constraint's body). nullopt matches
  /// any deletion fixing the violation.
  std::optional<size_t> body_atom_index;
  /// Relative weight; ≥ 0. Weight 0 forbids matching operations (unless no
  /// extension has positive weight, in which case the generator falls back
  /// to uniform to remain a Markov chain).
  Rational weight = Rational(1);
};

class ActiveConstraintGenerator : public ChainGenerator {
 public:
  /// `default_weight` applies to extensions matched by no preference.
  ActiveConstraintGenerator(std::vector<ActionPreference> preferences,
                            Rational default_weight = Rational(1))
      : preferences_(std::move(preferences)),
        default_weight_(std::move(default_weight)) {}

  std::vector<Rational> Probabilities(
      const RepairingState& state,
      const std::vector<Operation>& extensions) const override;

  std::string name() const override { return "active-constraints"; }

  /// Weight assigned to `op` at `state` (the unnormalized probability);
  /// exposed for tests.
  Rational WeightOf(const RepairingState& state, const Operation& op) const;

 private:
  std::vector<ActionPreference> preferences_;
  Rational default_weight_;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_ACTIVE_CONSTRAINTS_H_
